package octant_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestAPIBaseline is the apidiff-style compatibility gate for the public
// facade: every exported root-package symbol recorded in api/baseline.txt
// must still exist unless its baseline entry was already marked
// deprecated (i.e. a symbol may only disappear after shipping at least
// one release deprecated). New exported symbols must be recorded before
// they ship, so the baseline always reflects the published surface.
//
// Regenerate the baseline after an intentional surface change with:
//
//	OCTANT_UPDATE_API=1 go test -run TestAPIBaseline .
func TestAPIBaseline(t *testing.T) {
	current, err := exportedRootSymbols(".")
	if err != nil {
		t.Fatal(err)
	}

	const baselinePath = "api/baseline.txt"
	if os.Getenv("OCTANT_UPDATE_API") != "" {
		names := make([]string, 0, len(current))
		for name := range current {
			names = append(names, name)
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString("# Exported symbols of the root octant package, one per line.\n")
		b.WriteString("# Symbols marked 'deprecated' may be removed in a later change;\n")
		b.WriteString("# unmarked symbols removed without a deprecation cycle fail CI\n")
		b.WriteString("# (TestAPIBaseline). Regenerate: OCTANT_UPDATE_API=1 go test -run TestAPIBaseline .\n")
		for _, name := range names {
			b.WriteString(name)
			if current[name] {
				b.WriteString(" deprecated")
			}
			b.WriteByte('\n')
		}
		if err := os.MkdirAll("api", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(baselinePath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d symbols)", baselinePath, len(names))
		return
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("%v — generate it with OCTANT_UPDATE_API=1 go test -run TestAPIBaseline .", err)
	}
	baseline := map[string]bool{} // name → deprecated at baseline time
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		baseline[fields[0]] = len(fields) > 1 && fields[1] == "deprecated"
	}

	for name, wasDeprecated := range baseline {
		if _, ok := current[name]; !ok && !wasDeprecated {
			t.Errorf("exported symbol %s removed without a deprecation cycle: mark it Deprecated for at least one release first", name)
		}
	}
	var missing []string
	for name := range current {
		if _, ok := baseline[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Errorf("new exported symbols not recorded in %s: %s\n(regenerate with OCTANT_UPDATE_API=1 go test -run TestAPIBaseline .)",
			baselinePath, strings.Join(missing, ", "))
	}
}

// exportedRootSymbols parses the package in dir and returns its exported
// top-level identifiers mapped to whether their doc marks them
// deprecated.
func exportedRootSymbols(dir string) (map[string]bool, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	pkg, ok := pkgs["octant"]
	if !ok {
		return nil, fmt.Errorf("no octant package in %s", dir)
	}
	out := map[string]bool{}
	record := func(name string, doc *ast.CommentGroup) {
		if !ast.IsExported(name) {
			return
		}
		out[name] = isDeprecated(doc)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil { // methods live on internal types
					record(d.Name.Name, d.Doc)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc
						}
						record(s.Name.Name, doc)
					case *ast.ValueSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc
						}
						for _, n := range s.Names {
							record(n.Name, doc)
						}
					}
				}
			}
		}
	}
	return out, nil
}

func isDeprecated(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), "Deprecated:")
}
