module octant

go 1.22
