// Benchmark harness: one testing.B benchmark per figure in the paper's
// evaluation section, plus ablation benches for the design choices called
// out in DESIGN.md and micro-benchmarks of the geometric kernels.
//
// The figure benches both measure cost and print the reproduced series via
// b.Log on the first iteration, so `go test -bench . -benchmem` regenerates
// every figure's data (also available via cmd/octant-eval).
package octant_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"octant/internal/baselines"
	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/eval"
	"octant/internal/geo"
	"octant/internal/geodb"
	"octant/internal/measure"
	"octant/internal/netsim"
	"octant/internal/probe"
)

var (
	deployOnce sync.Once
	deployment *eval.Deployment
	deployErr  error
)

func sharedDeployment(b *testing.B) *eval.Deployment {
	b.Helper()
	deployOnce.Do(func() {
		deployment, deployErr = eval.NewDeployment(1)
	})
	if deployErr != nil {
		b.Fatal(deployErr)
	}
	return deployment
}

// BenchmarkFig1RegionCombination measures the Figure 1 operation: combining
// positive and negative constraints into a non-convex, possibly disjoint
// weighted region.
func BenchmarkFig1RegionCombination(b *testing.B) {
	pr := geo.NewProjection(geo.Pt(41.8, -74.0))
	cons := []core.Constraint{
		core.PositiveDisk(pr, geo.Pt(42.44, -76.50), 260, 1.0, "a"),
		core.NegativeDisk(pr, geo.Pt(42.44, -76.50), 60, 1.0, "a/neg"),
		core.PositiveDisk(pr, geo.Pt(40.71, -74.01), 240, 0.9, "b"),
		core.NegativeDisk(pr, geo.Pt(40.71, -74.01), 70, 0.9, "b/neg"),
		core.PositiveDisk(pr, geo.Pt(42.36, -71.06), 340, 0.8, "c"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := core.Solve(cons, core.SolverOpts{MinAreaKm2: 1500})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Region.IsEmpty() {
			b.Fatal("empty region")
		}
	}
}

// TestFig1AllocRegression pins the allocation budget of the Figure 1
// solve: the edge-table rewrite landed at 148 allocs/op and the pooled
// rasterizer buffers of the unit-vector PR cut it further; any climb back
// above the 148 mark is a regression.
func TestFig1AllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("testing.Benchmark run is not short")
	}
	res := testing.Benchmark(BenchmarkFig1RegionCombination)
	const maxAllocs = 148
	if a := res.AllocsPerOp(); a > maxAllocs {
		t.Errorf("Fig1RegionCombination allocates %d allocs/op, budget is %d", a, maxAllocs)
	}
}

// BenchmarkConstraintBuild measures bare disk-constraint construction —
// the unit-vector fast path plus adaptive polygonalization — across the
// radius regimes that occur in practice: 30 km city pins, 300 km metro
// bounds, 3000 km continental latency disks.
func BenchmarkConstraintBuild(b *testing.B) {
	pr := geo.NewProjection(geo.Pt(41.8, -74.0))
	lm := geo.Pt(42.44, -76.50)
	for _, radius := range []float64{30, 300, 3000} {
		b.Run(fmt.Sprintf("PositiveDisk-%.0fkm", radius), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if core.PositiveDisk(pr, lm, radius, 1, "bench").Region.IsEmpty() {
					b.Fatal("empty disk")
				}
			}
		})
		b.Run(fmt.Sprintf("NegativeDisk-%.0fkm", radius), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if core.NegativeDisk(pr, lm, radius, 1, "bench").Region.IsEmpty() {
					b.Fatal("empty disk")
				}
			}
		})
	}
}

// BenchmarkFig2Calibration measures one landmark's §2.1 calibration build
// and reports the hull/percentile/spline series of Figure 2.
func BenchmarkFig2Calibration(b *testing.B) {
	d := sharedDeployment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := d.RunFig2("rochester")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Fig2: %d scatter points, ρ=%.1fms, %d upper facets, %d lower facets",
				len(f.Scatter), f.Rho, len(f.UpperFacets), len(f.LowerFacets))
		}
	}
}

// BenchmarkFig3ErrorCDF measures the full four-technique comparison on a
// subset of targets (step 5 → 11 of 51) and reports the medians; run
// cmd/octant-eval -fig 3 for the full 51-target version.
func BenchmarkFig3ErrorCDF(b *testing.B) {
	d := sharedDeployment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.RunFig3(core.Config{}, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range res.Summaries() {
				b.Logf("Fig3 %-9s median %6.1f mi  worst %6.1f mi", s.Name, s.Median, s.Worst)
			}
		}
	}
}

// BenchmarkFig4LandmarkSweep measures the containment-vs-landmark-count
// sweep on two representative counts; cmd/octant-eval -fig 4 runs the full
// 10..50 sweep.
func BenchmarkFig4LandmarkSweep(b *testing.B) {
	d := sharedDeployment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := d.RunFig4(core.Config{}, []int{15, 40}, 1, 7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.Logf("Fig4 k=%2d Octant %.0f%% GeoLim %.0f%%", p.Landmarks, p.OctantPct, p.GeoLimPct)
			}
		}
	}
}

// ablationBench localizes a fixed target under a config variant; the
// b.Log line reports the accuracy effect of the ablated mechanism.
func ablationBench(b *testing.B, cfg core.Config) {
	d := sharedDeployment(b)
	const ti = 2 // rochester
	target := d.Landmarks[ti]
	idx := make([]int, 0, len(d.Landmarks)-1)
	for i := range d.Landmarks {
		if i != ti {
			idx = append(idx, i)
		}
	}
	sub, err := d.Survey.Subset(idx)
	if err != nil {
		b.Fatal(err)
	}
	loc := core.NewLocalizer(d.Prober, sub, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := loc.Localize(target.Addr)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			errMi := res.Point.DistanceMiles(target.Loc)
			if math.IsNaN(errMi) {
				b.Logf("ablation: empty region (brittle config)")
			} else {
				b.Logf("ablation: error %.1f mi, area %.0f km², contains=%v",
					errMi, res.AreaKm2, res.ContainsTruth(target.Loc))
			}
		}
	}
}

// BenchmarkAblationBaseline is the full default pipeline (§2.1–2.5).
func BenchmarkAblationBaseline(b *testing.B) { ablationBench(b, core.Config{}) }

// BenchmarkAblationHeights disables §2.2 queuing-delay compensation.
func BenchmarkAblationHeights(b *testing.B) { ablationBench(b, core.Config{DisableHeights: true}) }

// BenchmarkAblationNegative disables negative constraints (positive-only,
// the prior-work regime).
func BenchmarkAblationNegative(b *testing.B) { ablationBench(b, core.Config{DisableNegative: true}) }

// BenchmarkAblationPiecewise disables §2.3 router localization.
func BenchmarkAblationPiecewise(b *testing.B) {
	ablationBench(b, core.Config{DisablePiecewise: true})
}

// BenchmarkAblationWeights uses the brittle discrete (unweighted) solver
// §2.4 argues against.
func BenchmarkAblationWeights(b *testing.B) { ablationBench(b, core.Config{Unweighted: true}) }

// BenchmarkAblationGeoConstraints disables §2.5 WHOIS + ocean constraints.
func BenchmarkAblationGeoConstraints(b *testing.B) {
	ablationBench(b, core.Config{DisableWhois: true, DisableOceans: true})
}

// BenchmarkAblationSolverEngine uses the exact arrangement solver on a
// reduced landmark set (the exact engine is exponential in constraints).
func BenchmarkAblationSolverEngine(b *testing.B) {
	d := sharedDeployment(b)
	target := d.Landmarks[2]
	idx := []int{0, 5, 10, 20, 30, 40, 50}
	sub, err := d.Survey.Subset(idx)
	if err != nil {
		b.Fatal(err)
	}
	loc := core.NewLocalizer(d.Prober, sub, core.Config{
		Exact:            true,
		DisablePiecewise: true,
		DisableOceans:    true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.Localize(target.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

// pacedProber adds a fixed delay to every Ping call, emulating the
// wire-time a real measurement spends waiting on the network (the
// simulator itself answers instantly). This is the latency the batch
// engine exists to overlap: with it in place, worker scaling reflects
// deployment behavior instead of single-core solver throughput.
type pacedProber struct {
	probe.Prober
	delay time.Duration
}

func (p pacedProber) Ping(src, dst string, n int) ([]float64, error) {
	time.Sleep(p.delay)
	return p.Prober.Ping(src, dst, n)
}

var (
	batchFixOnce      sync.Once
	batchFixLoc       *core.Localizer // paced: 5 ms wire time per ping train
	batchFixSerialLoc *core.Localizer // paced + legacy serialized probe loop
	batchFixRawLoc    *core.Localizer // unpaced: pure solver CPU and allocs
	batchFixTargets   []string
	batchFixErr       error
)

// batchFixture holds 8 hosts out of the survey as targets and builds a
// localizer whose prober pays 5 ms of wire time per ping train (plus a
// serialized-measurement twin for the fan-out speedup gate and an
// unpaced twin for allocation measurements).
func batchFixture(b testing.TB) (*core.Localizer, []string) {
	b.Helper()
	batchFixOnce.Do(func() {
		world := netsim.NewWorld(netsim.Config{Seed: 1})
		prober := probe.NewSimProber(world)
		hosts := world.HostNodes()
		const nTargets = 8
		targets := make([]string, nTargets)
		for i := 0; i < nTargets; i++ {
			targets[i] = hosts[i].Name
		}
		var lms []core.Landmark
		for _, h := range hosts[nTargets:] {
			lms = append(lms, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
		}
		// The survey itself builds on the unpaced prober (its O(n²) pings
		// are not what this benchmark measures).
		survey, err := core.NewSurvey(prober, lms, core.SurveyOpts{UseHeights: true})
		if err != nil {
			batchFixErr = err
			return
		}
		paced := pacedProber{Prober: prober, delay: 5 * time.Millisecond}
		batchFixLoc = core.NewLocalizer(paced, survey, core.Config{})
		batchFixSerialLoc = core.NewLocalizer(paced, survey, core.Config{MeasureWorkers: -1})
		batchFixRawLoc = core.NewLocalizer(prober, survey, core.Config{})
		batchFixTargets = targets
	})
	if batchFixErr != nil {
		b.Fatal(batchFixErr)
	}
	return batchFixLoc, batchFixTargets
}

// BenchmarkBatchLocalize compares sequential Localize against the batch
// engine at 1, 4, and 8 workers over the same 8 held-out targets, under
// realistic per-probe wire time. The reported targets/s metric is the
// serving throughput; the engine's cache is disabled so every iteration
// measures real localizations.
func BenchmarkBatchLocalize(b *testing.B) {
	loc, targets := batchFixture(b)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, t := range targets {
				if _, err := loc.Localize(t); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(targets)*b.N)/b.Elapsed().Seconds(), "targets/s")
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			eng := batch.New(loc, batch.Options{Workers: workers, CacheSize: -1})
			for i := 0; i < b.N; i++ {
				_, errs := eng.Collect(context.Background(), targets)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(targets)*b.N)/b.Elapsed().Seconds(), "targets/s")
		})
	}
}

// BenchmarkLocalizeBatchFused measures the fused multi-target solve over
// the same paced fixture as BenchmarkBatchLocalize, so the two reports are
// directly comparable: the CI bulk gate requires workers-8 here to beat
// BenchmarkBatchLocalize/sequential by ≥ 5× on ns/op. The fused path skips
// the batch engine entirely — no cache, no flight table — so this is the
// floor cost of a homogeneous group.
func BenchmarkLocalizeBatchFused(b *testing.B) {
	loc, targets := batchFixture(b)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errs := loc.LocalizeBatchWith(context.Background(), targets, workers, nil)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(targets)*b.N)/b.Elapsed().Seconds(), "targets/s")
		})
	}
}

// BenchmarkLocalizePacedSerial is the single-target latency of the
// pre-scheduler measurement loop under 5 ms of wire time per ping train:
// every landmark's train is paid for serially, so one localization costs
// roughly landmarks × 5 ms before the solver even starts.
func BenchmarkLocalizePacedSerial(b *testing.B) {
	batchFixture(b)
	loc, targets := batchFixSerialLoc, batchFixTargets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.Localize(targets[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalizePacedParallel is the same single-target workload with
// the concurrent measurement scheduler fanning the landmark probes out.
// CI gates it against BenchmarkLocalizePacedSerial in the same report:
// the fan-out must cut paced latency by ≥ 4×.
func BenchmarkLocalizePacedParallel(b *testing.B) {
	loc, targets := batchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.Localize(targets[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureFanout isolates the scheduler itself: one full
// landmark fan-out (min-filtered ping trains from every landmark to one
// target, 1 ms wire time each) per iteration, no solver. Tracks the
// scheduler's dispatch overhead and wall-time win over its history.
func BenchmarkMeasureFanout(b *testing.B) {
	world := netsim.NewWorld(netsim.Config{Seed: 1})
	paced := pacedProber{Prober: probe.NewSimProber(world), delay: time.Millisecond}
	hosts := world.HostNodes()
	target := hosts[0].Name
	srcs := make([]string, 0, len(hosts)-1)
	for _, h := range hosts[1:] {
		srcs = append(srcs, h.Name)
	}
	sched := measure.New(measure.Config{})
	out := make([]float64, len(srcs))
	errs := make([]error, len(srcs))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.PingMinInto(ctx, paced, srcs, target, 10, 0, out, errs)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestLocalizeBatchAllocRegression pins the fused path's steady-state
// allocation budget at ≤ 300 allocs per target — the point of the batch
// arena and the shared-rasterization reuse (a cold single-target Localize
// sat at ~1530 allocs before this work). Measured unpaced so the count is
// pure solver work, with one warmup batch so land-mask masters and pool
// buffers exist before counting starts.
func TestLocalizeBatchAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state benchmark run under -short")
	}
	batchFixture(t)
	loc, targets := batchFixRawLoc, batchFixTargets
	ctx := context.Background()
	run := func(b *testing.B) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, errs := loc.LocalizeBatchWith(ctx, targets, 8, nil)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	res := testing.Benchmark(run)
	perTarget := res.AllocsPerOp() / int64(len(targets))
	const maxAllocsPerTarget = 300
	if perTarget > maxAllocsPerTarget {
		t.Errorf("fused batch allocates %d allocs/target steady-state, budget is %d",
			perTarget, maxAllocsPerTarget)
	}
	t.Logf("fused batch: %d allocs/target over %d-target batches", perTarget, len(targets))
}

// --- substrate micro-benchmarks ---

// BenchmarkSurveyBuild measures the full 50-landmark survey: O(n²) pings,
// heights solve, 50 convex-hull calibrations.
func BenchmarkSurveyBuild(b *testing.B) {
	w := netsim.NewWorld(netsim.Config{Seed: 1})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	var lms []core.Landmark
	for _, h := range hosts[1:] {
		lms = append(lms, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSurvey(p, lms, core.SurveyOpts{UseHeights: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// localizeFixture builds the single-target localization workload both
// BenchmarkLocalize and BenchmarkLocalizeV2 measure — one shared setup,
// so the CI parity gate (LocalizeV2=Localize) always compares the
// identical workload.
func localizeFixture(b *testing.B) (*core.Localizer, string) {
	b.Helper()
	d := sharedDeployment(b)
	target := d.Landmarks[0]
	idx := make([]int, 0, len(d.Landmarks)-1)
	for i := 1; i < len(d.Landmarks); i++ {
		idx = append(idx, i)
	}
	sub, err := d.Survey.Subset(idx)
	if err != nil {
		b.Fatal(err)
	}
	return core.NewLocalizer(d.Prober, sub, core.Config{}), target.Addr
}

// BenchmarkLocalize measures one end-to-end localization (50 landmarks,
// full default pipeline) against a pre-built survey, through the
// deprecated v1 shim.
func BenchmarkLocalize(b *testing.B) {
	loc, target := localizeFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.Localize(target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalizeV2 measures the identical workload through the
// context-first options entry point with default options. CI gates it
// two ways: against its own history (like BenchmarkLocalize) and against
// BenchmarkLocalize in the same report via octant-eval -bench-within —
// the options plumbing must cost <2% ns/op and 0 extra allocs.
func BenchmarkLocalizeV2(b *testing.B) {
	loc, target := localizeFixture(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.LocalizeContext(ctx, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalizeWithHints measures one end-to-end localization with
// the hint-rich stages live: the target carries a gazetteer-matching
// reverse name (rDNS hint → RTT cross-validation → weighted disk) and a
// synthetic geo-DB provider answers for it. CI gates it against
// BenchmarkLocalize in the same report via octant-eval -bench-within —
// the two extra evidence stages must cost <5% ns/op on an unpaced solve.
func BenchmarkLocalizeWithHints(b *testing.B) {
	w := netsim.NewWorld(netsim.Config{Seed: 1, HostRDNSHintFrac: 0.85})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	// Pick a hint-bearing target so the bench pays the full pipeline:
	// parse, cross-validate, and apply — not an early "no hint" skip.
	targetIdx := -1
	for i, h := range hosts {
		if w.ReverseName(h.ID) != h.Name {
			targetIdx = i
			break
		}
	}
	if targetIdx < 0 {
		b.Fatal("no hint-bearing host in the bench world")
	}
	var lms []core.Landmark
	for i, h := range hosts {
		if i == targetIdx {
			continue
		}
		lms = append(lms, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	survey, err := core.NewSurvey(p, lms, core.SurveyOpts{UseHeights: true})
	if err != nil {
		b.Fatal(err)
	}
	loc := core.NewLocalizer(p, survey, core.Config{
		GeoDB: geodb.NewSynth(w, geodb.SynthOpts{Seed: 1}),
	})
	target := hosts[targetIdx].Name
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.Localize(target); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLocalizeV2AllocParity is the in-suite form of the bench gate: the
// default-options v2 path must allocate exactly what the deprecated
// Localize shim does (which itself must stay at the PR 4 envelope,
// pinned by TestFig1AllocRegression and the CI bench gate). Steady-state
// benchmark counts are used rather than testing.AllocsPerRun — the
// solver's sync.Pools make single-shot counts oscillate by ±1.
func TestLocalizeV2AllocParity(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state benchmark run under -short")
	}
	r1 := testing.Benchmark(BenchmarkLocalize)
	r2 := testing.Benchmark(BenchmarkLocalizeV2)
	if r2.AllocsPerOp() > r1.AllocsPerOp() {
		t.Errorf("default-options LocalizeContext allocates %d/op, Localize %d/op — options plumbing must add 0 allocs",
			r2.AllocsPerOp(), r1.AllocsPerOp())
	}
}

// BenchmarkRegionIntersectClip measures exact pairwise disk intersection.
func BenchmarkRegionIntersectClip(b *testing.B) {
	r1 := geo.Disk(geo.V2(0, 0), 100, 128)
	r2 := geo.Disk(geo.V2(120, 0), 100, 128)
	opts := &geo.BoolOpts{Engine: geo.EngineClip}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if geo.Intersect(r1, r2, opts).IsEmpty() {
			b.Fatal("unexpected empty")
		}
	}
}

// BenchmarkRegionIntersectRaster measures raster-engine disk intersection.
func BenchmarkRegionIntersectRaster(b *testing.B) {
	r1 := geo.Disk(geo.V2(0, 0), 100, 128)
	r2 := geo.Disk(geo.V2(120, 0), 100, 128)
	opts := &geo.BoolOpts{Engine: geo.EngineRaster}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if geo.Intersect(r1, r2, opts).IsEmpty() {
			b.Fatal("unexpected empty")
		}
	}
}

// BenchmarkRegionBuffer measures morphological dilation (secondary
// landmark positive constraints).
func BenchmarkRegionBuffer(b *testing.B) {
	r := geo.Disk(geo.V2(0, 0), 80, 96)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if geo.Buffer(r, 40, 2).IsEmpty() {
			b.Fatal("unexpected empty")
		}
	}
}

// BenchmarkBezierFit measures fitting a 256-vertex ring with cubic Beziers.
func BenchmarkBezierFit(b *testing.B) {
	ring := geo.Disk(geo.V2(0, 0), 100, 256).Rings[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(geo.FitBeziers(ring, 0.5)) == 0 {
			b.Fatal("no fit")
		}
	}
}

// BenchmarkPing measures the simulator's measurement path (route lookup +
// 10 jittered probes).
func BenchmarkPing(b *testing.B) {
	w := netsim.NewWorld(netsim.Config{Seed: 1})
	a, c := w.Hosts[0], w.Hosts[25]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.MinPing(a, c, 10) <= 0 {
			b.Fatal("bad rtt")
		}
	}
}

// BenchmarkGeoLim measures the CBG baseline end to end.
func BenchmarkGeoLim(b *testing.B) {
	d := sharedDeployment(b)
	target := d.Landmarks[0]
	idx := make([]int, 0, len(d.Landmarks)-1)
	for i := 1; i < len(d.Landmarks); i++ {
		idx = append(idx, i)
	}
	sub, err := d.Survey.Subset(idx)
	if err != nil {
		b.Fatal(err)
	}
	gl := baselines.NewGeoLim(sub)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gl.Localize(d.Prober, target.Addr, 10); err != nil {
			b.Fatal(err)
		}
	}
}
