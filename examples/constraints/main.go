// Constraints: a Figure 1-style composition of positive and negative
// constraints, including a secondary landmark whose own position is only
// known as a region, and §2.5 geographic constraints. Demonstrates the
// region algebra the framework is built on and exports the result as
// GeoJSON for inspection on geojson.io.
//
//	go run ./examples/constraints
package main

import (
	"fmt"
	"log"
	"os"

	"octant"
)

func main() {
	log.SetFlags(0)

	// Work in a projection centred between the landmarks.
	ithaca := octant.Pt(42.4440, -76.5019)
	nyc := octant.Pt(40.7128, -74.0060)
	boston := octant.Pt(42.3601, -71.0589)
	pr := octant.NewProjection(octant.Pt(41.8, -74.0))

	// Primary landmarks with pinpoint positions contribute annuli:
	// "between r and R km from me" (§2).
	cons := []octant.Constraint{
		octant.PositiveDisk(pr, ithaca, 260, 1.0, "ithaca"),
		octant.NegativeDisk(pr, ithaca, 60, 1.0, "ithaca/neg"),
		octant.PositiveDisk(pr, nyc, 240, 0.9, "nyc"),
		octant.NegativeDisk(pr, nyc, 70, 0.9, "nyc/neg"),
		octant.PositiveDisk(pr, boston, 340, 0.8, "boston"),
	}

	// A secondary landmark: a router localized earlier, its position
	// known only as a 70 km-radius region near Albany. Its positive
	// constraint is the dilation of that region (§2: ⋃ of disks); its
	// negative constraint is the intersection (⋂ of disks).
	albany := octant.Pt(42.6526, -73.7562)
	beta := octant.Disk(pr.Forward(albany), 70, 64)
	cons = append(cons,
		octant.PositiveFromRegion(beta, 160, 0.7, "router-region"),
		octant.NegativeFromRegion(beta, 90, 0.7, "router-region/neg"),
	)

	fmt.Println("constraint system:")
	for _, c := range cons {
		fmt.Printf("  %v\n", c)
	}

	sol, err := octant.Solve(cons, octant.SolverOpts{MinAreaKm2: 1500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nestimated location region: %.0f km², %d ring(s), best weight %.2f\n",
		sol.Region.Area(), len(sol.Region.Rings), sol.Weight)
	fmt.Printf("point estimate: %s\n", pr.Inverse(sol.Point))

	// Region algebra directly (Figure 1's boolean composition).
	a := octant.Disk(pr.Forward(ithaca), 250, 96)
	b := octant.Disk(pr.Forward(nyc), 250, 96)
	lens := octant.Intersect(a, b, nil)
	ring := octant.Subtract(lens, octant.Disk(pr.Forward(ithaca), 120, 96), nil)
	fmt.Printf("\nregion algebra: |A∩B| = %.0f km², |A∩B \\ C| = %.0f km² (%d rings)\n",
		lens.Area(), ring.Area(), len(ring.Rings))

	// Morphology for secondary landmarks.
	grown := octant.Buffer(lens, 50, 0)
	shrunk := octant.Buffer(lens, -50, 0)
	fmt.Printf("morphology: dilate(+50km) = %.0f km², erode(−50km) = %.0f km²\n",
		grown.Area(), shrunk.Area())

	// Export the solution for visual inspection.
	js, err := sol.Region.ToGeoJSON(pr, map[string]any{"name": "estimated location region"})
	if err != nil {
		log.Fatal(err)
	}
	out := "region.geojson"
	if err := os.WriteFile(out, js, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d bytes) — drop it on geojson.io to view\n", out, len(js))
}
