// Realprobe: measure real round-trip times with the TCP-handshake prober
// (the unprivileged ICMP substitute) against local listeners, and show the
// latency→distance conversion Octant would apply. This exercises the real
// net.Dialer code path end to end without needing the Internet.
//
// Note that TCP handshakes complete in the kernel, so loopback RTTs here
// measure genuine stack traversal time — microseconds, corresponding to a
// "distance" bound of a few hundred metres, which is exactly what the
// physics says about a host on the same machine.
//
//	go run ./examples/realprobe
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"octant"
)

func main() {
	log.SetFlags(0)

	// Two local "hosts": plain TCP listeners on loopback.
	a := listen()
	defer a.Close()
	b := listen()
	defer b.Close()

	prober := octant.NewTCPProber()
	prober.Spacing = 2 * time.Millisecond

	for _, tgt := range []struct {
		name string
		addr string
	}{
		{"host-a", a.Addr().String()},
		{"host-b", b.Addr().String()},
	} {
		samples, err := prober.Ping("", tgt.addr, 8)
		if err != nil {
			log.Fatal(err)
		}
		min, max := samples[0], samples[0]
		var sum float64
		for _, s := range samples {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
			sum += s
		}
		// The conservative 2/3·c bound Octant starts from (§2.1) before
		// calibration tightens it.
		maxKm := octant.LatencyToMaxDistanceKm(min)
		fmt.Printf("%-8s %-22s RTT min/avg/max %7.3f/%7.3f/%7.3f ms → ≤ %7.2f km away\n",
			tgt.name, tgt.addr, min, sum/float64(len(samples)), max, maxKm)
	}

	// Unreachable hosts error instead of returning garbage.
	if _, err := prober.Ping("", "127.0.0.1:1", 1); err != nil {
		fmt.Printf("\nclosed port errors as expected: %v\n", err)
	}

	fmt.Println("\nwith root (raw ICMP) this prober would be swapped for a ping/traceroute")
	fmt.Println("implementation; the Localizer is agnostic — it only sees the Prober interface")
}

// listen starts a loopback listener that accepts and immediately closes
// connections.
func listen() net.Listener {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()
	return l
}
