// Quickstart: localize one host in the simulated Internet with the full
// Octant pipeline, using only the public octant API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"octant"
)

func main() {
	log.SetFlags(0)

	// A deterministic simulated Internet: 51 PlanetLab-style sites,
	// backbone POPs, policy routing, queuing delay, WHOIS records.
	world := octant.NewWorld(octant.WorldConfig{Seed: 1})
	prober := octant.NewSimProber(world)
	hosts := world.HostNodes()

	// The first host is our target; everyone else is a landmark.
	target := hosts[0]
	var landmarks []octant.Landmark
	for _, h := range hosts[1:] {
		landmarks = append(landmarks, octant.Landmark{
			Addr: h.Name, Name: h.Inst, Loc: h.Loc,
		})
	}

	// Survey: pairwise pings, §2.2 heights, §2.1 convex-hull calibration.
	survey, err := octant.NewSurvey(prober, landmarks, octant.SurveyOpts{UseHeights: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surveyed %d landmarks (route inflation κ=%.2f)\n", survey.N(), survey.Kappa)

	// Localize with the paper's default mechanisms: weighted positive and
	// negative constraints, piecewise router localization, WHOIS, oceans.
	// LocalizeContext is the request-scoped v2 entry point — pass
	// octant.LocalizeOption values here to tune a single request.
	loc := octant.NewLocalizer(prober, survey, octant.Config{})
	res, err := loc.LocalizeContext(context.Background(), target.Name)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target          %s (%s)\n", target.Name, target.City)
	fmt.Printf("point estimate  %s\n", res.Point)
	fmt.Printf("true location   %s\n", target.Loc)
	fmt.Printf("error           %.1f miles\n", res.Point.DistanceMiles(target.Loc))
	fmt.Printf("region          %.0f km² in %d ring(s); contains truth: %v\n",
		res.AreaKm2, len(res.Region.Rings), res.ContainsTruth(target.Loc))

	// The region's compact Bezier boundary (the paper's representation).
	paths := res.Region.BezierBoundary(2.0)
	segs := 0
	for _, p := range paths {
		segs += len(p)
	}
	fmt.Printf("boundary        %d Bezier segments across %d path(s)\n", segs, len(paths))
}
