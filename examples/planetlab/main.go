// PlanetLab evaluation: reproduce the paper's §3 comparison (Figure 3) on
// the simulated 51-node deployment — Octant vs GeoLim vs GeoPing vs
// GeoTrack, leave-one-out — and print the accuracy table.
//
//	go run ./examples/planetlab          # every 3rd node (fast)
//	go run ./examples/planetlab -all     # all 51 nodes
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"octant"
)

func main() {
	log.SetFlags(0)
	all := flag.Bool("all", false, "localize all 51 nodes (slower)")
	flag.Parse()

	world := octant.NewWorld(octant.WorldConfig{Seed: 1})
	prober := octant.NewSimProber(world)
	hosts := world.HostNodes()

	step := 3
	if *all {
		step = 1
	}

	var full []octant.Landmark
	for _, h := range hosts {
		full = append(full, octant.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	fullSurvey, err := octant.NewSurvey(prober, full, octant.SurveyOpts{UseHeights: true})
	if err != nil {
		log.Fatal(err)
	}

	errs := map[string][]float64{}
	for ti := 0; ti < len(hosts); ti += step {
		target := hosts[ti]
		idx := make([]int, 0, len(hosts)-1)
		for i := range hosts {
			if i != ti {
				idx = append(idx, i)
			}
		}
		survey, err := fullSurvey.Subset(idx)
		if err != nil {
			log.Fatal(err)
		}

		if res, err := octant.NewLocalizer(prober, survey, octant.Config{}).Localize(target.Name); err == nil {
			errs["Octant"] = append(errs["Octant"], res.Point.DistanceMiles(target.Loc))
		}
		if res, err := octant.NewGeoLim(survey).Localize(prober, target.Name, 10); err == nil {
			errs["GeoLim"] = append(errs["GeoLim"], res.Point.DistanceMiles(target.Loc))
		}
		if res, err := octant.NewGeoPing(survey).Localize(prober, target.Name, 10); err == nil {
			errs["GeoPing"] = append(errs["GeoPing"], res.Point.DistanceMiles(target.Loc))
		}
		if res, err := octant.NewGeoTrack(survey).Localize(prober, target.Name, 10); err == nil {
			errs["GeoTrack"] = append(errs["GeoTrack"], res.Point.DistanceMiles(target.Loc))
		}
	}

	fmt.Printf("%-10s %8s %10s %10s\n", "technique", "n", "median mi", "worst mi")
	for _, name := range []string{"Octant", "GeoLim", "GeoPing", "GeoTrack"} {
		es := append([]float64(nil), errs[name]...)
		sort.Float64s(es)
		med := es[len(es)/2]
		fmt.Printf("%-10s %8d %10.1f %10.1f\n", name, len(es), med, es[len(es)-1])
	}
	fmt.Println("\n(paper, real 2006 PlanetLab: Octant 22 / GeoLim 89 / GeoPing 68 / GeoTrack 97 median miles)")
}
