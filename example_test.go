package octant_test

import (
	"context"
	"fmt"

	"octant"
)

// ExampleLocalizer demonstrates a complete localization against the
// simulated Internet: build a world, survey the landmarks, and localize a
// target. Everything is deterministic for a given seed.
func Example() {
	world := octant.NewWorld(octant.WorldConfig{Seed: 1})
	prober := octant.NewSimProber(world)
	hosts := world.HostNodes()

	target := hosts[1] // planetlab2.cs.cornell.edu
	var landmarks []octant.Landmark
	for i, h := range hosts {
		if i == 1 {
			continue
		}
		landmarks = append(landmarks, octant.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}

	survey, err := octant.NewSurvey(prober, landmarks, octant.SurveyOpts{UseHeights: true})
	if err != nil {
		panic(err)
	}
	loc := octant.NewLocalizer(prober, survey, octant.Config{})
	res, err := loc.Localize(target.Name)
	if err != nil {
		panic(err)
	}
	fmt.Printf("landmarks: %d\n", survey.N())
	fmt.Printf("region is non-empty: %v\n", !res.Region.IsEmpty())
	fmt.Printf("error under 350 miles: %v\n", res.Point.DistanceMiles(target.Loc) < 350)
	// Output:
	// landmarks: 50
	// region is non-empty: true
	// error under 350 miles: true
}

// ExampleBatchEngine localizes several targets concurrently through the
// public facade: the batch engine fans them across a worker pool sharing
// one survey, and results come back in submission order via Collect.
func ExampleBatchEngine() {
	world := octant.NewWorld(octant.WorldConfig{Seed: 1})
	prober := octant.NewSimProber(world)
	hosts := world.HostNodes()

	targets := []string{hosts[0].Name, hosts[1].Name, hosts[2].Name}
	var landmarks []octant.Landmark
	for _, h := range hosts[3:] {
		landmarks = append(landmarks, octant.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	survey, err := octant.NewSurvey(prober, landmarks, octant.SurveyOpts{UseHeights: true})
	if err != nil {
		panic(err)
	}
	loc := octant.NewLocalizer(prober, survey, octant.Config{})

	results, errs := octant.LocalizeAll(context.Background(), loc, targets, 4)
	for i, t := range targets {
		fmt.Printf("%s ok: %v\n", t, errs[i] == nil && !results[i].Region.IsEmpty())
	}
	// Output:
	// planetlab1.csail.mit.edu ok: true
	// planetlab2.cs.cornell.edu ok: true
	// planetlab1.cs.rochester.edu ok: true
}

// ExampleSolve shows the constraint algebra directly: an annulus around a
// landmark ("between 40 and 150 km away"), solved for a region.
func ExampleSolve() {
	pr := octant.NewProjection(octant.Pt(42.44, -76.50))
	cons := []octant.Constraint{
		octant.PositiveDisk(pr, octant.Pt(42.44, -76.50), 150, 1, "landmark"),
		octant.NegativeDisk(pr, octant.Pt(42.44, -76.50), 40, 1, "landmark/neg"),
	}
	sol, err := octant.Solve(cons, octant.SolverOpts{MinAreaKm2: 100})
	if err != nil {
		panic(err)
	}
	fmt.Printf("annulus excludes the centre: %v\n", !sol.Region.Contains(pr.Forward(octant.Pt(42.44, -76.50))))
	// Output:
	// annulus excludes the centre: true
}
