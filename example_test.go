package octant_test

import (
	"context"
	"fmt"

	"octant"
)

// ExampleLocalizer demonstrates a complete localization against the
// simulated Internet: build a world, survey the landmarks, and localize a
// target. Everything is deterministic for a given seed.
func Example() {
	world := octant.NewWorld(octant.WorldConfig{Seed: 1})
	prober := octant.NewSimProber(world)
	hosts := world.HostNodes()

	target := hosts[1] // planetlab2.cs.cornell.edu
	var landmarks []octant.Landmark
	for i, h := range hosts {
		if i == 1 {
			continue
		}
		landmarks = append(landmarks, octant.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}

	survey, err := octant.NewSurvey(prober, landmarks, octant.SurveyOpts{UseHeights: true})
	if err != nil {
		panic(err)
	}
	loc := octant.NewLocalizer(prober, survey, octant.Config{})
	res, err := loc.LocalizeContext(context.Background(), target.Name)
	if err != nil {
		panic(err)
	}
	fmt.Printf("landmarks: %d\n", survey.N())
	fmt.Printf("region is non-empty: %v\n", !res.Region.IsEmpty())
	fmt.Printf("error under 350 miles: %v\n", res.Point.DistanceMiles(target.Loc) < 350)
	// Output:
	// landmarks: 50
	// region is non-empty: true
	// error under 350 miles: true
}

// registrySource is a custom EvidenceSource: an internal asset registry
// that knows roughly where some hosts are racked. Sources observe the
// request's measurement state (RTTs, heights, the shared projection) and
// return weighted constraints; the pipeline handles weighting options
// and provenance.
type registrySource struct {
	db map[string]octant.Point
}

func (r registrySource) Name() string { return "registry" }

func (r registrySource) Constraints(_ context.Context, req *octant.EvidenceRequest) ([]octant.Constraint, octant.SourceReport, error) {
	rep := octant.SourceReport{Source: "registry"}
	loc, ok := r.db[req.Target]
	if !ok {
		rep.Skipped = "no registry record"
		return nil, rep, nil
	}
	c := octant.PositiveDisk(req.PCtx.Proj, loc, 80, 0.7, "registry:"+req.Target)
	return []octant.Constraint{c}, rep, nil
}

// ExampleEvidenceSource plugs a custom evidence source into one request:
// the registry's positive prior joins the latency, router, and WHOIS
// constraints in the same weighted system, and WithExplain shows it in
// the provenance.
func ExampleEvidenceSource() {
	world := octant.NewWorld(octant.WorldConfig{Seed: 1})
	prober := octant.NewSimProber(world)
	hosts := world.HostNodes()

	target := hosts[0]
	var landmarks []octant.Landmark
	for _, h := range hosts[1:] {
		landmarks = append(landmarks, octant.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	survey, err := octant.NewSurvey(prober, landmarks, octant.SurveyOpts{UseHeights: true})
	if err != nil {
		panic(err)
	}
	loc := octant.NewLocalizer(prober, survey, octant.Config{})

	registry := registrySource{db: map[string]octant.Point{target.Name: target.Loc}}
	res, err := loc.LocalizeContext(context.Background(), target.Name,
		octant.WithEvidenceSource(registry),
		octant.WithExplain(),
	)
	if err != nil {
		panic(err)
	}
	for _, rep := range res.Provenance.Sources {
		if rep.Source == "registry" {
			fmt.Printf("registry contributed %d constraint(s)\n", rep.Constraints)
		}
	}
	fmt.Printf("error under 200 miles: %v\n", res.Point.DistanceMiles(target.Loc) < 200)
	// Output:
	// registry contributed 1 constraint(s)
	// error under 200 miles: true
}

// ExampleBatchEngine localizes several targets concurrently through the
// public facade: the batch engine fans them across a worker pool sharing
// one survey, and results come back in submission order via Collect.
func ExampleBatchEngine() {
	world := octant.NewWorld(octant.WorldConfig{Seed: 1})
	prober := octant.NewSimProber(world)
	hosts := world.HostNodes()

	targets := []string{hosts[0].Name, hosts[1].Name, hosts[2].Name}
	var landmarks []octant.Landmark
	for _, h := range hosts[3:] {
		landmarks = append(landmarks, octant.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	survey, err := octant.NewSurvey(prober, landmarks, octant.SurveyOpts{UseHeights: true})
	if err != nil {
		panic(err)
	}
	loc := octant.NewLocalizer(prober, survey, octant.Config{})

	results, errs := octant.LocalizeAll(context.Background(), loc, targets, 4)
	for i, t := range targets {
		fmt.Printf("%s ok: %v\n", t, errs[i] == nil && !results[i].Region.IsEmpty())
	}
	// Output:
	// planetlab1.csail.mit.edu ok: true
	// planetlab2.cs.cornell.edu ok: true
	// planetlab1.cs.rochester.edu ok: true
}

// ExampleSolve shows the constraint algebra directly: an annulus around a
// landmark ("between 40 and 150 km away"), solved for a region.
func ExampleSolve() {
	pr := octant.NewProjection(octant.Pt(42.44, -76.50))
	cons := []octant.Constraint{
		octant.PositiveDisk(pr, octant.Pt(42.44, -76.50), 150, 1, "landmark"),
		octant.NegativeDisk(pr, octant.Pt(42.44, -76.50), 40, 1, "landmark/neg"),
	}
	sol, err := octant.Solve(cons, octant.SolverOpts{MinAreaKm2: 100})
	if err != nil {
		panic(err)
	}
	fmt.Printf("annulus excludes the centre: %v\n", !sol.Region.Contains(pr.Forward(octant.Pt(42.44, -76.50))))
	// Output:
	// annulus excludes the centre: true
}
