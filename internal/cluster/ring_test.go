package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("target-%d.example.net", i)
	}
	return out
}

func owners(r *Ring, ks []string) map[string]string {
	out := make(map[string]string, len(ks))
	for _, k := range ks {
		o, ok := r.Owner(k)
		if !ok {
			panic("empty ring")
		}
		out[k] = o
	}
	return out
}

// TestRingDeterminism: two rings built from the same member names agree
// on every owner — the property that lets front doors be replicated
// without coordination.
func TestRingDeterminism(t *testing.T) {
	a, b := NewRing(RingConfig{}), NewRing(RingConfig{})
	for _, n := range []string{"node-2", "node-0", "node-1"} {
		a.Add(n)
	}
	for _, n := range []string{"node-0", "node-1", "node-2"} { // different insert order
		b.Add(n)
	}
	for _, k := range keys(500) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("rings disagree on %q: %s vs %s", k, oa, ob)
		}
	}
}

// TestRingMovementOnJoinLeave is the minimal-rebalancing property test:
// adding a member moves ≈ 1/(n+1) of the keys — all of them TO the new
// member — and removing it restores the exact prior assignment. Removing
// an original member moves only the keys it owned.
func TestRingMovementOnJoinLeave(t *testing.T) {
	const nKeys = 10000
	ks := keys(nKeys)
	r := NewRing(RingConfig{VNodes: 128})
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	before := owners(r, ks)

	r.Add("node-4")
	after := owners(r, ks)
	moved := 0
	for _, k := range ks {
		if before[k] != after[k] {
			moved++
			if after[k] != "node-4" {
				t.Fatalf("join: %q moved %s → %s, not to the joining node", k, before[k], after[k])
			}
		}
	}
	// Expected movement is nKeys/5 = 2000; allow generous variance for
	// vnode placement luck but fail on anything structurally wrong
	// (a naive mod-N hash would move ~80% here).
	if moved == 0 || moved > 2*nKeys/5 {
		t.Errorf("join moved %d/%d keys, want ≈ %d", moved, nKeys, nKeys/5)
	}

	r.Remove("node-4")
	restored := owners(r, ks)
	for _, k := range ks {
		if restored[k] != before[k] {
			t.Fatalf("leave did not restore %q: %s vs %s", k, restored[k], before[k])
		}
	}

	r.Remove("node-0")
	final := owners(r, ks)
	for _, k := range ks {
		if before[k] != "node-0" && final[k] != before[k] {
			t.Fatalf("removing node-0 moved %q owned by %s", k, before[k])
		}
		if final[k] == "node-0" {
			t.Fatalf("%q still owned by removed node", k)
		}
	}
}

// TestRingBoundedLoad: a single hot key spills to other members once the
// owner hits the load ceiling, and never does when the bound is off.
func TestRingBoundedLoad(t *testing.T) {
	bounded := NewRing(RingConfig{VNodes: 64, LoadFactor: 1.25})
	for i := 0; i < 4; i++ {
		bounded.Add(fmt.Sprintf("node-%d", i))
	}
	var releases []func()
	for i := 0; i < 100; i++ {
		node, release, err := bounded.Acquire("hot-key", nil)
		if err != nil {
			t.Fatal(err)
		}
		if node == "" {
			t.Fatal("empty assignment")
		}
		releases = append(releases, release)
	}
	loads := bounded.Loads()
	busy := 0
	for _, l := range loads {
		if l > 0 {
			busy++
		}
		// Ceiling for the final acquire: ⌈1.25 · 100/4⌉ = 32 (+1 for the
		// walk happening before the increment).
		if l > 33 {
			t.Errorf("bounded ring let a node reach load %d (loads %v)", l, loads)
		}
	}
	if busy < 3 {
		t.Errorf("hot key spilled to only %d nodes: %v", busy, loads)
	}
	for _, rel := range releases {
		rel()
	}
	for n, l := range bounded.Loads() {
		if l != 0 {
			t.Errorf("load leak on %s: %d after all releases", n, l)
		}
	}

	unbounded := NewRing(RingConfig{VNodes: 64, LoadFactor: -1})
	for i := 0; i < 4; i++ {
		unbounded.Add(fmt.Sprintf("node-%d", i))
	}
	first, rel, err := unbounded.Acquire("hot-key", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	for i := 0; i < 50; i++ {
		n, rel, err := unbounded.Acquire("hot-key", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer rel()
		if n != first {
			t.Fatalf("unbounded ring moved the hot key: %s vs %s", n, first)
		}
	}
}

// TestRingAcquireEligibility: the eligibility filter routes around
// rejected members and errors when nothing is eligible.
func TestRingAcquireEligibility(t *testing.T) {
	r := NewRing(RingConfig{VNodes: 64})
	r.Add("node-0")
	r.Add("node-1")
	owner, _ := r.Owner("some-key")
	n, rel, err := r.Acquire("some-key", func(name string) bool { return name != owner })
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if n == owner {
		t.Errorf("acquire returned ineligible owner %s", n)
	}
	if _, _, err := r.Acquire("some-key", func(string) bool { return false }); err == nil {
		t.Error("acquire with nothing eligible should error")
	}
}
