package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"octant/internal/geo"
	"octant/internal/serve"
	"octant/internal/stats"
)

// ChaosConfig shapes a RunChaos soak: a real LocalFleet fronted by a
// Router, hammered by load workers while the harness injects and heals
// faults at both layers the paper's deployment would suffer — landmark
// measurement loss (netsim node-down) and serving-node crashes
// (listener kill/revive).
type ChaosConfig struct {
	// Seed derives the simulated world.
	Seed uint64
	// Nodes is the serving-fleet size (0 = default 3; min 3 so a node
	// kill always leaves a quorum of the fleet serving).
	Nodes int
	// Workers is how many concurrent load workers hammer the front door
	// (0 = default 4).
	Workers int
	// Duration is the total injected-fault load window, split evenly
	// across the landmark-fault, node-kill, and recovery phases
	// (0 = default 2s).
	Duration time.Duration
	// LandmarkFrac is the fraction of survey landmarks downed during the
	// landmark-fault phase (0 = default 0.2).
	LandmarkFrac float64
	// Quorum is the min_landmarks every request carries (0 = default 3).
	Quorum int
	// Log, when set, receives progress lines (the -chaos CLI wires it to
	// stdout; tests usually leave it nil).
	Log func(format string, args ...any)
}

// ChaosReport is what a chaos soak measured. RunChaos only returns it
// alongside a nil error when every invariant held: zero client-visible
// errors, degraded-mode results actually observed during landmark
// faults, bounded accuracy degradation, and a fully-recovered fleet.
type ChaosReport struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// Degraded counts results served from partial evidence while
	// landmarks were down — the quorum path doing its job.
	Degraded uint64 `json:"degraded"`
	// HealthyMedianKm / ChaosMedianKm are median localization errors
	// against the simulator's ground truth, before faults and across the
	// whole fault window.
	HealthyMedianKm float64 `json:"healthy_median_km"`
	ChaosMedianKm   float64 `json:"chaos_median_km"`
	// LandmarksDowned and NodeKills describe the injected faults.
	LandmarksDowned int `json:"landmarks_downed"`
	NodeKills       int `json:"node_kills"`
	// Cluster is the front door's final merged stats (breaker opens,
	// failovers, degraded counts all visible here).
	Cluster ClusterStats `json:"cluster"`
}

// RunChaos builds a fleet, takes a healthy accuracy baseline, then runs
// load workers against the router while killing and reviving landmarks
// and serving nodes. Caches are disabled at every tier so each request
// exercises routing and measurement for real. It returns an error if
// any client saw an error, if no degraded result was ever served (the
// quorum path went unexercised), if accuracy degraded beyond
// 3×healthy + 300 km, or if the fleet did not return to full readiness.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 3
	}
	if cfg.Nodes < 3 {
		return nil, fmt.Errorf("chaos: need ≥ 3 nodes so a kill leaves the fleet serving, got %d", cfg.Nodes)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.LandmarkFrac <= 0 {
		cfg.LandmarkFrac = 0.2
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 3
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	const holdout = 8
	fleet, err := StartLocalFleet(FleetConfig{
		Nodes:   cfg.Nodes,
		Seed:    cfg.Seed,
		Holdout: holdout,
		// Engine caches off: a cached answer would mask a landmark fault.
		CacheSize: -1,
		// Retries absorb transient loss below the quorum layer; tiny
		// backoffs because the simulated wire has nothing to wait out.
		RetryAttempts: 3,
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()

	router, err := NewRouter(fleet.Clients(), RouterConfig{
		CacheSize:        -1, // L1 off: every request must route
		ReadyTTL:         50 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  150 * time.Millisecond,
		FailoverBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	truth := make(map[string]geo.Point, holdout)
	for _, h := range fleet.World.HostNodes()[:holdout] {
		truth[h.Name] = h.Loc
	}
	wo := &serve.WireOptions{MinLandmarks: cfg.Quorum}
	ctx := context.Background()

	// Healthy baseline: every holdout target once, no faults anywhere.
	var healthyKm []float64
	for _, tgt := range fleet.Targets {
		tr, err := router.Localize(ctx, tgt, wo)
		if err != nil {
			return nil, fmt.Errorf("chaos: healthy baseline %s: %w", tgt, err)
		}
		if tr.Degraded || tr.Lat == nil {
			return nil, fmt.Errorf("chaos: healthy baseline %s came back degraded or empty", tgt)
		}
		healthyKm = append(healthyKm, truth[tgt].DistanceKm(geo.Pt(*tr.Lat, *tr.Lon)))
	}
	healthyMedian := stats.Median(healthyKm)
	logf("healthy baseline: median error %.0f km over %d targets", healthyMedian, len(healthyKm))

	// Load workers: continuous localizations (every 5th a 3-target
	// batch) against the front door for the whole fault window. Every
	// error a worker sees is client-visible by construction — the router
	// was supposed to absorb the fault.
	var (
		requests, degraded, errCount atomic.Uint64
		firstErr                     atomic.Value // string
		mu                           sync.Mutex
		chaosKm                      []float64
	)
	record := func(tr serve.TargetResultV2) {
		requests.Add(1)
		if tr.Degraded {
			degraded.Add(1)
		}
		if tr.Lat != nil {
			km := truth[tr.Target].DistanceKm(geo.Pt(*tr.Lat, *tr.Lon))
			mu.Lock()
			chaosKm = append(chaosKm, km)
			mu.Unlock()
		}
	}
	fail := func(err error) {
		requests.Add(1)
		errCount.Add(1)
		firstErr.CompareAndSwap(nil, err.Error())
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := w; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				reqCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
				if seq%5 == 4 {
					batch := []string{
						fleet.Targets[seq%len(fleet.Targets)],
						fleet.Targets[(seq+1)%len(fleet.Targets)],
						fleet.Targets[(seq+2)%len(fleet.Targets)],
					}
					results, err := router.Batch(reqCtx, batch, wo)
					if err != nil {
						fail(err)
					} else {
						for _, tr := range results {
							record(tr)
						}
					}
				} else {
					tr, err := router.Localize(reqCtx, fleet.Targets[seq%len(fleet.Targets)], wo)
					if err != nil {
						fail(err)
					} else {
						record(tr)
					}
				}
				cancel()
			}
		}(w)
	}

	phase := cfg.Duration / 3

	// Phase 1: landmark faults. Down LandmarkFrac of the survey's
	// landmark hosts in the simulator — their pings now fail outright —
	// and let quorum absorb it.
	hosts := fleet.World.HostNodes()
	landmarks := hosts[holdout:]
	nDown := int(float64(len(landmarks))*cfg.LandmarkFrac + 0.5)
	if nDown < 1 {
		nDown = 1
	}
	if maxDown := len(landmarks) - cfg.Quorum; nDown > maxDown {
		nDown = maxDown
	}
	logf("phase 1: downing %d/%d landmarks for %v", nDown, len(landmarks), phase)
	for _, lm := range landmarks[:nDown] {
		fleet.World.SetNodeDown(lm.ID, true)
	}
	time.Sleep(phase)
	for _, lm := range landmarks[:nDown] {
		fleet.World.SetNodeDown(lm.ID, false)
	}

	// Phase 2: serving-node crashes. Kill and revive each node in turn
	// (one at a time, so ≥ Nodes-1 stay up); the router must fail over
	// without surfacing a single error.
	kills := 0
	nodePhase := phase / time.Duration(cfg.Nodes)
	for _, node := range fleet.Nodes {
		logf("phase 2: killing %s for %v", node.Name, nodePhase)
		node.Kill()
		kills++
		time.Sleep(nodePhase)
		if err := node.Revive(); err != nil {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("chaos: %w", err)
		}
	}

	// Phase 3: recovery. No faults; breakers should close and the fleet
	// should end fully ready.
	logf("phase 3: recovery for %v", phase)
	time.Sleep(phase)
	close(stop)
	wg.Wait()

	report := &ChaosReport{
		Requests:        requests.Load(),
		Errors:          errCount.Load(),
		Degraded:        degraded.Load(),
		HealthyMedianKm: healthyMedian,
		LandmarksDowned: nDown,
		NodeKills:       kills,
	}
	mu.Lock()
	if len(chaosKm) > 0 {
		report.ChaosMedianKm = stats.Median(chaosKm)
	}
	mu.Unlock()

	// Recovery check: every node answers ready again (the revived ones
	// through fresh listeners), within a bounded wait.
	clients := fleet.Clients()
	deadline := time.Now().Add(5 * time.Second)
	for _, c := range clients {
		for {
			rd, err := c.Ready(ctx)
			if err == nil && rd.Ready {
				break
			}
			if time.Now().After(deadline) {
				report.Cluster = router.Stats(ctx)
				return report, fmt.Errorf("chaos: node %s not ready after recovery phase", c.Name)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	report.Cluster = router.Stats(ctx)

	if report.Errors > 0 {
		return report, fmt.Errorf("chaos: %d/%d requests saw client-visible errors (first: %s)",
			report.Errors, report.Requests, firstErr.Load())
	}
	if report.Degraded == 0 {
		return report, fmt.Errorf("chaos: no degraded result was ever served — the landmark-fault phase did not exercise quorum")
	}
	if bound := 3*healthyMedian + 300; report.ChaosMedianKm > bound {
		return report, fmt.Errorf("chaos: median error %.0f km under faults exceeds bound %.0f km (healthy %.0f km)",
			report.ChaosMedianKm, bound, healthyMedian)
	}
	logf("chaos: %d requests, 0 errors, %d degraded, median %.0f km (healthy %.0f km), %d breaker opens",
		report.Requests, report.Degraded, report.ChaosMedianKm, healthyMedian, report.Cluster.Router.BreakerOpens)
	return report, nil
}
