package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"octant/internal/batch"
	"octant/internal/lifecycle"
	"octant/internal/serve"
)

// NodeClient speaks the internal/serve wire protocol to one fleet
// member. It is the only place the cluster tier touches HTTP details, so
// the router and coordinator read as protocol logic.
type NodeClient struct {
	// Name is the member's ring identity (stable across restarts; the
	// ring hashes it, so renaming a node reshards its keys).
	Name string
	// BaseURL is the node's root, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// HTTP is the client used for every call (nil = http.DefaultClient).
	HTTP *http.Client
}

func (n *NodeClient) client() *http.Client {
	if n.HTTP != nil {
		return n.HTTP
	}
	return http.DefaultClient
}

// apiError is a node's JSON error envelope surfaced as a Go error with
// its HTTP status attached.
type apiError struct {
	Status  int
	Message string
}

func (e *apiError) Error() string { return e.Message }

// decodeError turns a non-2xx response into an *apiError.
func decodeError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	return &apiError{Status: resp.StatusCode, Message: msg}
}

func (n *NodeClient) postJSON(ctx context.Context, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.BaseURL+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (n *NodeClient) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := n.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// LocalizeV2 runs one localization on the node.
func (n *NodeClient) LocalizeV2(ctx context.Context, target string, opts *serve.WireOptions) (serve.TargetResultV2, error) {
	var tr serve.TargetResultV2
	err := n.postJSON(ctx, "/v2/localize", map[string]any{"target": target, "options": opts}, &tr)
	return tr, err
}

// BatchV2 streams a batch through the node, invoking fn for every NDJSON
// line in arrival order. fn returning an error aborts the stream.
func (n *NodeClient) BatchV2(ctx context.Context, targets []string, opts *serve.WireOptions, fn func(serve.TargetResultV2) error) error {
	b, err := json.Marshal(map[string]any{"targets": targets, "options": opts})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.BaseURL+"/v2/localize/batch", bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var tr serve.TargetResultV2
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			return fmt.Errorf("%s: bad batch line: %w", n.Name, err)
		}
		if err := fn(tr); err != nil {
			return err
		}
	}
	return sc.Err()
}

// CacheLookup probes the node's result cache for key without triggering
// any measurement. ok is false on a clean miss.
func (n *NodeClient) CacheLookup(ctx context.Context, key Key) (serve.TargetResultV2, bool, error) {
	q := url.Values{}
	q.Set("target", key.Target)
	if key.Fingerprint != "" {
		q.Set("fp", key.Fingerprint)
	}
	q.Set("epoch", strconv.FormatUint(key.Epoch, 10))
	var tr serve.TargetResultV2
	err := n.getJSON(ctx, "/v1/cache/lookup?"+q.Encode(), &tr)
	if err != nil {
		var ae *apiError
		if asAPIError(err, &ae) && ae.Status == http.StatusNotFound {
			return serve.TargetResultV2{}, false, nil
		}
		return serve.TargetResultV2{}, false, err
	}
	return tr, true, nil
}

// asAPIError is errors.As without the import dance for the one local type.
func asAPIError(err error, out **apiError) bool {
	ae, ok := err.(*apiError)
	if ok {
		*out = ae
	}
	return ok
}

// Ready fetches the node's readiness. A 503 is a valid (not-ready)
// answer, not an error; err is reserved for transport trouble.
func (n *NodeClient) Ready(ctx context.Context) (serve.Readiness, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.BaseURL+"/v1/readyz", nil)
	if err != nil {
		return serve.Readiness{}, err
	}
	resp, err := n.client().Do(req)
	if err != nil {
		return serve.Readiness{}, err
	}
	defer resp.Body.Close()
	var rd serve.Readiness
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		return serve.Readiness{}, err
	}
	return rd, nil
}

// Stats fetches the node's engine counters.
func (n *NodeClient) Stats(ctx context.Context) (batch.Stats, error) {
	var st batch.Stats
	err := n.getJSON(ctx, "/v1/stats", &st)
	return st, err
}

// Snapshot pulls the node's current survey epoch in snapshot form.
func (n *NodeClient) Snapshot(ctx context.Context) ([]byte, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.BaseURL+"/v1/survey/snapshot", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := n.client().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, decodeError(resp)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("Octant-Epoch"), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: bad Octant-Epoch header: %w", n.Name, err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return data, epoch, nil
}

// Install stages a snapshot on the node for a later Activate.
func (n *NodeClient) Install(ctx context.Context, snapshot []byte) (staged uint64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.BaseURL+"/v1/survey/install", bytes.NewReader(snapshot))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeError(resp)
	}
	var out struct {
		Staged uint64 `json:"staged_epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Staged, nil
}

// Activate drains the node and swaps its staged epoch in.
func (n *NodeClient) Activate(ctx context.Context) (uint64, error) {
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := n.postJSON(ctx, "/v1/survey/activate", nil, &out); err != nil {
		return 0, err
	}
	return out.Epoch, nil
}

// Refresh triggers a full reprobe + recalibration on the node.
func (n *NodeClient) Refresh(ctx context.Context) (lifecycle.RefreshReport, error) {
	var rep lifecycle.RefreshReport
	err := n.postJSON(ctx, "/v1/survey/refresh", map[string]any{}, &rep)
	return rep, err
}
