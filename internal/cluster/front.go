package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"octant/internal/serve"
)

// Front is the cluster front door's HTTP surface: the client-facing
// localization API (served through the Router) plus the operator surface
// (merged stats, ring view, rollout trigger). It deliberately speaks the
// same /v2 wire format as a single node, so clients cannot tell a fleet
// from one process.
//
// Endpoints:
//
//	POST /v2/localize        {"target", "options"}  → routed result
//	POST /v2/localize/batch  {"targets", "options"} → NDJSON stream (epoch-coherent)
//	GET  /v1/stats                                  → merged router + per-node stats
//	GET  /v1/cluster                                → ring members, loads, readiness
//	POST /v1/rollout         {"skip_refresh"?}      → coordinated epoch rollout
//	GET  /v1/healthz                                → front-door liveness
//	GET  /v1/readyz                                 → 200 when ≥ 1 node is ready
type Front struct {
	router *Router
	coord  *Coordinator
}

// NewFront wires the front door over a router and a coordinator.
func NewFront(router *Router, coord *Coordinator) *Front {
	return &Front{router: router, coord: coord}
}

// Handler builds the front door's route table.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/localize", f.handleLocalize)
	mux.HandleFunc("/v2/localize/batch", f.handleBatch)
	mux.HandleFunc("/v1/stats", f.handleStats)
	mux.HandleFunc("/v1/cluster", f.handleCluster)
	mux.HandleFunc("/v1/rollout", f.handleRollout)
	mux.HandleFunc("/v1/healthz", f.handleHealthz)
	mux.HandleFunc("/v1/readyz", f.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeRouteError maps a router failure onto the wire.
func writeRouteError(w http.ResponseWriter, err error) {
	if re, ok := err.(*RouteError); ok {
		writeError(w, re.Status, "%s", re.Message)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

func (f *Front) handleLocalize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Target  string             `json:"target"`
		Options *serve.WireOptions `json:"options"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	tr, err := f.router.Localize(r.Context(), req.Target, req.Options)
	if err != nil {
		writeRouteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (f *Front) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Targets []string           `json:"targets"`
		Options *serve.WireOptions `json:"options"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// The router gathers before emitting (epoch coherence needs the whole
	// response in hand), so the stream starts only once the batch is
	// complete — same wire shape as a node, different latency profile.
	results, err := f.router.Batch(r.Context(), req.Targets, req.Options)
	if err != nil {
		writeRouteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, tr := range results {
		if err := enc.Encode(tr); err != nil {
			return
		}
	}
}

func (f *Front) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.router.Stats(r.Context()))
}

// clusterView is the /v1/cluster wire shape: ring membership with live
// routing state.
type clusterView struct {
	Epoch uint64         `json:"epoch"`
	Nodes []clusterNode  `json:"nodes"`
	Loads map[string]int `json:"loads"`
}

type clusterNode struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Ready bool   `json:"ready"`
	Epoch uint64 `json:"epoch,omitempty"`
}

func (f *Front) handleCluster(w http.ResponseWriter, r *http.Request) {
	view := clusterView{Epoch: f.router.Epoch(), Loads: f.router.Ring().Loads()}
	for _, name := range f.router.Ring().Nodes() {
		node := f.router.nodes[name]
		cn := clusterNode{Name: name, URL: node.BaseURL}
		if rd, err := node.Ready(r.Context()); err == nil {
			cn.Ready, cn.Epoch = rd.Ready, rd.Epoch
		}
		view.Nodes = append(view.Nodes, cn)
	}
	writeJSON(w, http.StatusOK, view)
}

func (f *Front) handleRollout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		SkipRefresh bool `json:"skip_refresh"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	report, err := f.coord.Rollout(r.Context(), RolloutOptions{SkipRefresh: req.SkipRefresh})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "rollout failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"nodes":  f.router.Ring().Len(),
		"epoch":  f.router.Epoch(),
	})
}

// handleReadyz reports the front door ready when at least one fleet
// member is ready to take traffic.
func (f *Front) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), f.router.cfg.ReadyTTL)
	defer cancel()
	for _, name := range f.router.Ring().Nodes() {
		if f.router.isReady(ctx, name) {
			writeJSON(w, http.StatusOK, serve.Readiness{Ready: true, Epoch: f.router.Epoch()})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, serve.Readiness{Ready: false, Reason: "no ready nodes"})
}
