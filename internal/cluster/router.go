package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/serve"
)

// RouterConfig tunes a Router. The zero value is usable.
type RouterConfig struct {
	// VNodes and LoadFactor configure the consistent-hash ring
	// (see RingConfig).
	VNodes     int
	LoadFactor float64
	// CacheSize is the front door's L1 result-cache capacity
	// (0 = default 4096, negative disables).
	CacheSize int
	// MaxBatch bounds targets per batch request (0 = default 1024).
	MaxBatch int
	// ReadyTTL is how long a node's readiness verdict is trusted before
	// the router re-probes /v1/readyz (0 = default 500ms). Shorter means
	// rolling swaps shed traffic faster; longer means fewer probe
	// round-trips per request.
	ReadyTTL time.Duration
	// Retries bounds how many distinct nodes one request may be
	// dispatched to before the router reports failure (0 = every node).
	Retries int
	// BreakerThreshold is how many consecutive dispatch failures open a
	// node's circuit breaker (0 = default 3, negative disables breakers).
	// An open breaker sheds the node's traffic without probing it; after
	// BreakerCooldown one half-open trial re-probes readiness fresh.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects its node before
	// admitting the half-open trial (0 = default 1s).
	BreakerCooldown time.Duration
	// FailoverBackoff is the pause before re-dispatching after a node
	// failure, doubling per consecutive failure up to 8× the base
	// (0 = default 25ms, negative disables). It keeps a failover storm
	// from hammering the surviving nodes in a tight loop.
	FailoverBackoff time.Duration
}

// RouterStats counts the front door's own activity, alongside the
// per-node engine stats in ClusterStats.
type RouterStats struct {
	// L1Hits / L1Misses are front-door result-cache outcomes for
	// cacheable requests.
	L1Hits   uint64 `json:"l1_hits"`
	L1Misses uint64 `json:"l1_misses"`
	// L1Len / L1Cap are the front-door cache's occupancy and capacity.
	L1Len int `json:"l1_len"`
	L1Cap int `json:"l1_cap"`
	// PeerFetches counts results served from a peer node's cache (L2)
	// when the request was routed to a different node.
	PeerFetches uint64 `json:"peer_fetches"`
	// Dispatched counts localizations actually sent to a node.
	Dispatched uint64 `json:"dispatched"`
	// Failovers counts dispatches retried on another node after a node
	// error.
	Failovers uint64 `json:"failovers"`
	// EpochRepairs counts batch results recomputed because they answered
	// at an older epoch than the rest of their batch (the mixed-epoch
	// guard during rolling swaps).
	EpochRepairs uint64 `json:"epoch_repairs"`
	// Bypassed counts non-cacheable requests that skipped every cache
	// tier.
	Bypassed uint64 `json:"bypassed"`
	// BreakerOpens counts circuit-breaker open transitions (including a
	// failed half-open trial re-opening), and BreakerTrials the half-open
	// trial probes admitted after a cooldown.
	BreakerOpens  uint64 `json:"breaker_opens"`
	BreakerTrials uint64 `json:"breaker_trials"`
	// Degraded counts results served from partial evidence (quorum held
	// but some landmarks failed). Degraded results are served to the
	// caller but never cached — see core.Result.Degraded.
	Degraded uint64 `json:"degraded"`
	// Breakers is each node's current breaker state
	// (closed / open / half-open); omitted when breakers are disabled.
	Breakers map[string]string `json:"breakers,omitempty"`
}

// ClusterStats is the front door's merged view: its own counters plus
// every reachable node's engine stats.
type ClusterStats struct {
	// Epoch is the newest survey epoch the router has observed.
	Epoch  uint64                 `json:"epoch"`
	Router RouterStats            `json:"router"`
	Nodes  map[string]batch.Stats `json:"nodes"`
	// Unreachable lists nodes whose stats fetch failed.
	Unreachable []string `json:"unreachable,omitempty"`
}

// readyState is one node's cached readiness verdict.
type readyState struct {
	ready bool
	at    time.Time
}

// Router is the cluster front door's brain: it owns the ring, routes
// every (target, fingerprint) key to its owner node, consults the
// cluster result cache before dispatching, and keeps batch responses
// epoch-coherent during rolling swaps. It is safe for concurrent use.
type Router struct {
	ring  *Ring
	nodes map[string]*NodeClient
	cache *Cache
	cfg   RouterConfig
	// breakers holds one circuit breaker per node (nil when disabled).
	// The map is immutable after NewRouter; each breaker locks itself.
	breakers map[string]*breaker

	// epoch is the newest epoch observed in any node response; cache
	// lookups key on it, so the front door converges to a new epoch as
	// soon as the first post-swap response arrives.
	epoch atomic.Uint64

	mu    sync.Mutex
	ready map[string]readyState

	l1Hits, l1Misses, peerFetches atomic.Uint64
	dispatched, failovers         atomic.Uint64
	epochRepairs, bypassed        atomic.Uint64
	breakerOpens, breakerTrials   atomic.Uint64
	degradedServed                atomic.Uint64
}

// NewRouter builds a router over the given fleet members.
func NewRouter(nodes []*NodeClient, cfg RouterConfig) (*Router, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.ReadyTTL <= 0 {
		cfg.ReadyTTL = 500 * time.Millisecond
	}
	if cfg.Retries <= 0 || cfg.Retries > len(nodes) {
		cfg.Retries = len(nodes)
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.FailoverBackoff == 0 {
		cfg.FailoverBackoff = 25 * time.Millisecond
	}
	r := &Router{
		ring:  NewRing(RingConfig{VNodes: cfg.VNodes, LoadFactor: cfg.LoadFactor}),
		nodes: make(map[string]*NodeClient, len(nodes)),
		cache: NewCache(cfg.CacheSize),
		cfg:   cfg,
		ready: make(map[string]readyState, len(nodes)),
	}
	if cfg.BreakerThreshold > 0 {
		r.breakers = make(map[string]*breaker, len(nodes))
	}
	for _, n := range nodes {
		if _, dup := r.nodes[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		r.nodes[n.Name] = n
		r.ring.Add(n.Name)
		if r.breakers != nil {
			r.breakers[n.Name] = &breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown}
		}
	}
	return r, nil
}

// Ring exposes the router's ring (the /v1/cluster view reads it).
func (r *Router) Ring() *Ring { return r.ring }

// Epoch returns the newest epoch the router has observed.
func (r *Router) Epoch() uint64 { return r.epoch.Load() }

// observeEpoch advances the router's epoch watermark.
func (r *Router) observeEpoch(e uint64) {
	for {
		cur := r.epoch.Load()
		if e <= cur || r.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// markReady records a readiness verdict for a node.
func (r *Router) markReady(name string, ready bool) {
	r.mu.Lock()
	r.ready[name] = readyState{ready: ready, at: time.Now()}
	r.mu.Unlock()
}

// isReady returns the node's cached readiness, re-probing /v1/readyz
// when the verdict is older than ReadyTTL. Probe failures count as
// not-ready (and stay cached, so a dead node costs one probe per TTL,
// not one per request).
func (r *Router) isReady(ctx context.Context, name string) bool {
	r.mu.Lock()
	st, ok := r.ready[name]
	r.mu.Unlock()
	if ok && time.Since(st.at) < r.cfg.ReadyTTL {
		return st.ready
	}
	return r.probeReady(ctx, name)
}

// probeReady re-probes the node's /v1/readyz right now, ignoring any
// cached verdict, and caches the fresh one. Breaker half-open trials
// call it directly so a revived node re-enters rotation on the
// breaker's cooldown clock even while the TTL cache still says down.
func (r *Router) probeReady(ctx context.Context, name string) bool {
	// The probe deadline is decoupled from the TTL: a short TTL means
	// "re-check often", not "give up fast", and a loopback round-trip can
	// exceed a millisecond-scale TTL under instrumentation.
	timeout := r.cfg.ReadyTTL
	if timeout < 250*time.Millisecond {
		timeout = 250 * time.Millisecond
	}
	probeCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	rd, err := r.nodes[name].Ready(probeCtx)
	ready := err == nil && rd.Ready
	if err == nil {
		r.observeEpoch(rd.Epoch)
	}
	r.markReady(name, ready)
	return ready
}

// admit decides whether name may receive a dispatch: the circuit
// breaker gates first, then readiness. The one call that flips a
// cooled-down breaker to half-open verifies the node with a fresh
// readiness probe (bypassing the TTL cache); a failed trial re-opens
// the breaker immediately instead of waiting for a dispatch to fail.
func (r *Router) admit(ctx context.Context, name string) bool {
	b := r.breakers[name]
	if b == nil {
		return r.isReady(ctx, name)
	}
	ok, trial := b.allow(time.Now())
	if !ok {
		return false
	}
	if trial {
		r.breakerTrials.Add(1)
		if r.probeReady(ctx, name) {
			return true
		}
		if b.failure(time.Now()) {
			r.breakerOpens.Add(1)
		}
		return false
	}
	return r.isReady(ctx, name)
}

// breakerAllows is admit without the readiness check — the gate for the
// desperation fallback paths that run when every node looks not-ready
// mid-swap. An open breaker still keeps its node out even there; a
// half-open transition is settled by the dispatch outcome instead of a
// probe.
func (r *Router) breakerAllows(name string) bool {
	b := r.breakers[name]
	if b == nil {
		return true
	}
	ok, trial := b.allow(time.Now())
	if trial {
		r.breakerTrials.Add(1)
	}
	return ok
}

// noteDispatch reports a dispatch outcome to the node's breaker.
func (r *Router) noteDispatch(name string, ok bool) {
	b := r.breakers[name]
	if b == nil {
		return
	}
	if ok {
		b.success()
		return
	}
	if b.failure(time.Now()) {
		r.breakerOpens.Add(1)
	}
}

// failoverSleep pauses before the next dispatch after a node failure:
// FailoverBackoff doubled per consecutive failure, capped at 8× the
// base. It returns the context's error if cancelled mid-sleep.
func (r *Router) failoverSleep(ctx context.Context, failures int) error {
	d := r.cfg.FailoverBackoff
	if d <= 0 || failures <= 0 {
		return nil
	}
	for i := 1; i < failures && d < 8*r.cfg.FailoverBackoff; i++ {
		d *= 2
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// freshEpoch returns the router's epoch watermark after making sure it
// is no staler than ReadyTTL: a readiness probe of the given node
// (TTL-cached, so at most one round-trip per node per TTL) carries the
// node's current epoch, so even a 100%-cache-hit workload observes a
// rolling swap within one TTL instead of serving the old epoch forever.
func (r *Router) freshEpoch(ctx context.Context, node string) uint64 {
	r.isReady(ctx, node)
	return r.epoch.Load()
}

// routeKey is the composite the ring hashes: target plus options
// fingerprint, so differently-tuned requests for one target can land on
// different owners but identical requests always converge.
func routeKey(target, fp string) string {
	if fp == "" {
		return target
	}
	return target + "\x1f" + fp
}

// RouteError is a front-door failure with the HTTP status the cluster
// handler should answer with.
type RouteError struct {
	Status  int
	Message string
}

func (e *RouteError) Error() string { return e.Message }

func routeErrorf(status int, format string, args ...any) *RouteError {
	return &RouteError{Status: status, Message: fmt.Sprintf(format, args...)}
}

// resolveWire validates wire options and derives the cache identity the
// cluster tiers key on. It mirrors the batch engine's resolveOpts: ""
// fingerprint for a default request, cacheable unless the options carry
// state that cannot be fingerprinted.
func resolveWire(wo *serve.WireOptions) (fp string, cacheable bool, err error) {
	opts, err := wo.Options()
	if err != nil {
		return "", false, err
	}
	if len(opts) == 0 {
		return "", true, nil
	}
	o := core.NewLocalizeOptions(opts...)
	return o.Fingerprint(), o.Cacheable(), nil
}

// Localize routes one localization through the cluster: L1 front-door
// cache, L2 owner-cache peer fetch (when the dispatch node differs from
// the key's owner), then a bounded-load, readiness-filtered dispatch
// with failover. Errors are *RouteError with the status to serve.
func (r *Router) Localize(ctx context.Context, target string, wo *serve.WireOptions) (serve.TargetResultV2, error) {
	if target == "" {
		return serve.TargetResultV2{}, routeErrorf(http.StatusBadRequest, "missing target")
	}
	fp, cacheable, err := resolveWire(wo)
	if err != nil {
		return serve.TargetResultV2{}, routeErrorf(http.StatusBadRequest, "bad options: %v", err)
	}
	return r.route(ctx, target, wo, fp, cacheable)
}

// route is Localize after validation; tests drive it directly to
// exercise the non-cacheable bypass, which wire options cannot express.
func (r *Router) route(ctx context.Context, target string, wo *serve.WireOptions, fp string, cacheable bool) (serve.TargetResultV2, error) {
	key := routeKey(target, fp)
	owner, _ := r.ring.Owner(key)
	epoch := r.freshEpoch(ctx, owner)
	if cacheable {
		if res, ok := r.cache.Get(Key{Target: target, Fingerprint: fp, Epoch: epoch}); ok {
			r.l1Hits.Add(1)
			return res, nil
		}
		r.l1Misses.Add(1)
	} else {
		r.bypassed.Add(1)
	}

	var lastErr error
	failures := 0
	tried := make(map[string]bool, r.cfg.Retries)
	for attempt := 0; attempt < r.cfg.Retries; attempt++ {
		if lastErr != nil {
			// Back off before re-dispatching so a failover storm doesn't
			// hammer the surviving nodes in a tight loop.
			if serr := r.failoverSleep(ctx, failures); serr != nil {
				return serve.TargetResultV2{}, routeErrorf(http.StatusBadGateway,
					"cancelled during failover backoff: %v", serr)
			}
		}
		node, release, err := r.ring.Acquire(key, func(name string) bool {
			return !tried[name] && r.admit(ctx, name)
		})
		if err != nil {
			// Readiness can be transiently all-false mid-swap (one node
			// draining while another's probe times out); fall back to any
			// untried node whose breaker admits it rather than failing the
			// request outright.
			node, release, err = r.ring.Acquire(key, func(name string) bool {
				return !tried[name] && r.breakerAllows(name)
			})
			if err != nil {
				break // every node tried or breaker-rejected
			}
		}
		tried[node] = true

		// L2: the key's owner holds the cluster's canonical cached copy.
		// When load or readiness routed us elsewhere, probe the owner's
		// cache before computing — even a draining owner still answers
		// lookups. Dispatching to the owner itself makes the probe
		// redundant (its engine checks the same LRU first).
		if cacheable && node != owner {
			if res, ok, err := r.nodes[owner].CacheLookup(ctx, Key{Target: target, Fingerprint: fp, Epoch: epoch}); err == nil && ok {
				release()
				r.peerFetches.Add(1)
				r.cache.Put(Key{Target: target, Fingerprint: fp, Epoch: epoch}, res)
				return res, nil
			}
		}

		r.dispatched.Add(1)
		tr, err := r.nodes[node].LocalizeV2(ctx, target, wo)
		release()
		if err == nil {
			r.noteDispatch(node, true)
			r.observeEpoch(tr.Epoch)
			if tr.Degraded {
				// Served from partial evidence: hand it to the caller but
				// never cache it — the faults it reflects are transient.
				r.degradedServed.Add(1)
			} else if cacheable {
				r.cache.Put(Key{Target: target, Fingerprint: fp, Epoch: tr.Epoch}, tr)
			}
			return tr, nil
		}
		var ae *apiError
		if asAPIError(err, &ae) && ae.Status < http.StatusInternalServerError && ae.Status != http.StatusServiceUnavailable {
			// The node understood the request and rejected it (bad target,
			// bad options): another node will say the same thing.
			return serve.TargetResultV2{}, routeErrorf(ae.Status, "%s", ae.Message)
		}
		// Node trouble: mark it not-ready, tell its breaker, and fail over.
		r.markReady(node, false)
		r.noteDispatch(node, false)
		r.failovers.Add(1)
		failures++
		lastErr = err
	}
	if lastErr != nil {
		return serve.TargetResultV2{}, routeErrorf(http.StatusBadGateway, "all nodes failed: %v", lastErr)
	}
	return serve.TargetResultV2{}, routeErrorf(http.StatusServiceUnavailable, "no ready node")
}

// Batch scatter-gathers a batch across the fleet: cacheable targets are
// served from the front-door cache where possible, the rest are grouped
// by owner node and dispatched as per-node sub-batches, and the merged
// response is epoch-repaired so one batch never mixes survey epochs —
// the per-node engines guarantee that within a node, and the repair pass
// extends it across nodes mid-rollout. Results come back in submission
// order.
func (r *Router) Batch(ctx context.Context, targets []string, wo *serve.WireOptions) ([]serve.TargetResultV2, error) {
	if len(targets) == 0 {
		return nil, routeErrorf(http.StatusBadRequest, "missing targets")
	}
	if len(targets) > r.cfg.MaxBatch {
		return nil, routeErrorf(http.StatusRequestEntityTooLarge,
			"%d targets exceeds the %d per-request limit", len(targets), r.cfg.MaxBatch)
	}
	fp, cacheable, err := resolveWire(wo)
	if err != nil {
		return nil, routeErrorf(http.StatusBadRequest, "bad options: %v", err)
	}

	for i, tgt := range targets {
		if tgt == "" {
			return nil, routeErrorf(http.StatusBadRequest, "empty target at index %d", i)
		}
	}
	results := make([]serve.TargetResultV2, len(targets))
	filled := make([]bool, len(targets))
	firstOwner, _ := r.ring.Owner(routeKey(targets[0], fp))
	epoch := r.freshEpoch(ctx, firstOwner)
	var pending []int
	for i, tgt := range targets {
		if cacheable {
			if res, ok := r.cache.Get(Key{Target: tgt, Fingerprint: fp, Epoch: epoch}); ok {
				r.l1Hits.Add(1)
				results[i], filled[i] = res, true
				continue
			}
			r.l1Misses.Add(1)
		} else {
			r.bypassed.Add(1)
		}
		pending = append(pending, i)
	}

	if err := r.scatter(ctx, targets, wo, fp, pending, results, filled); err != nil {
		return nil, err
	}

	// Epoch repair: if a rolling swap landed mid-batch, some lines carry
	// the old epoch (computed or cached). Recompute them, pinned to the
	// fleet's newest epoch, until the whole response is single-epoch.
	for round := 0; round < 4; round++ {
		maxE := uint64(0)
		for _, res := range results {
			if res.Epoch > maxE {
				maxE = res.Epoch
			}
		}
		var stale []int
		for i, res := range results {
			if res.Epoch < maxE {
				stale = append(stale, i)
				filled[i] = false
			}
		}
		if len(stale) == 0 {
			break
		}
		r.epochRepairs.Add(uint64(len(stale)))
		r.observeEpoch(maxE)
		if err := r.scatter(ctx, targets, wo, fp, stale, results, filled); err != nil {
			return nil, err
		}
	}
	maxE := uint64(0)
	for _, res := range results {
		if res.Epoch > maxE {
			maxE = res.Epoch
		}
	}
	for _, res := range results {
		if res.Epoch != maxE {
			return nil, routeErrorf(http.StatusBadGateway,
				"fleet would not converge on one epoch (%d vs %d)", res.Epoch, maxE)
		}
	}
	for _, res := range results {
		if res.Degraded {
			// Served from partial evidence: delivered, never cached.
			r.degradedServed.Add(1)
		} else if cacheable {
			r.cache.Put(Key{Target: res.Target, Fingerprint: fp, Epoch: res.Epoch}, res)
		}
	}
	return results, nil
}

// scatter dispatches the pending target indices as per-owner sub-batches
// and fills results. Node failures re-group the node's targets onto the
// rest of the fleet; it fails only when every node is unusable.
func (r *Router) scatter(ctx context.Context, targets []string, wo *serve.WireOptions, fp string, pending []int, results []serve.TargetResultV2, filled []bool) error {
	excluded := make(map[string]bool)
	for attempt := 0; attempt <= len(r.nodes); attempt++ {
		var left []int
		for _, i := range pending {
			if !filled[i] {
				left = append(left, i)
			}
		}
		if len(left) == 0 {
			return nil
		}
		groups := make(map[string][]int)
		for _, i := range left {
			var node string
			for _, cand := range r.ring.Preference(routeKey(targets[i], fp), len(r.nodes)) {
				if !excluded[cand] && r.admit(ctx, cand) {
					node = cand
					break
				}
			}
			if node == "" {
				// Readiness may be transiently all-false mid-swap; fall back
				// to any non-excluded node whose breaker admits it rather
				// than failing the batch.
				for _, cand := range r.ring.Preference(routeKey(targets[i], fp), len(r.nodes)) {
					if !excluded[cand] && r.breakerAllows(cand) {
						node = cand
						break
					}
				}
			}
			if node == "" {
				return routeErrorf(http.StatusBadGateway, "no usable node for %s", targets[i])
			}
			groups[node] = append(groups[node], i)
		}

		type groupResult struct {
			node string
			err  error
		}
		var wg sync.WaitGroup
		resc := make(chan groupResult, len(groups))
		for node, idxs := range groups {
			wg.Add(1)
			go func(node string, idxs []int) {
				defer wg.Done()
				byTarget := make(map[string][]int, len(idxs))
				sub := make([]string, 0, len(idxs))
				for _, i := range idxs {
					if prior := byTarget[targets[i]]; len(prior) == 0 {
						sub = append(sub, targets[i])
					}
					byTarget[targets[i]] = append(byTarget[targets[i]], i)
				}
				r.dispatched.Add(uint64(len(sub)))
				err := r.nodes[node].BatchV2(ctx, sub, wo, func(tr serve.TargetResultV2) error {
					for _, i := range byTarget[tr.Target] {
						results[i], filled[i] = tr, true
					}
					return nil
				})
				resc <- groupResult{node: node, err: err}
			}(node, idxs)
		}
		wg.Wait()
		close(resc)
		anyErr := false
		for gr := range resc {
			if gr.err != nil {
				var ae *apiError
				if asAPIError(gr.err, &ae) && ae.Status < http.StatusInternalServerError && ae.Status != http.StatusServiceUnavailable {
					return routeErrorf(ae.Status, "%s", ae.Message)
				}
				r.markReady(gr.node, false)
				r.noteDispatch(gr.node, false)
				r.failovers.Add(1)
				excluded[gr.node] = true
				anyErr = true
			} else {
				r.noteDispatch(gr.node, true)
			}
		}
		if anyErr && len(excluded) >= len(r.nodes) {
			return routeErrorf(http.StatusBadGateway, "all nodes failed")
		}
		// Observe the newest epoch the sub-batches reported.
		for _, i := range pending {
			if filled[i] {
				r.observeEpoch(results[i].Epoch)
			}
		}
		if anyErr {
			// Back off before re-grouping the failed node's targets so the
			// retry round doesn't land while the fleet is still unwell.
			if serr := r.failoverSleep(ctx, len(excluded)); serr != nil {
				return routeErrorf(http.StatusBadGateway, "cancelled during failover backoff: %v", serr)
			}
		}
	}
	return routeErrorf(http.StatusBadGateway, "batch did not complete")
}

// Stats merges the router's counters with every node's engine stats.
func (r *Router) Stats(ctx context.Context) ClusterStats {
	hits, misses := r.cache.Counters()
	cs := ClusterStats{
		Epoch: r.epoch.Load(),
		Router: RouterStats{
			L1Hits:       hits,
			L1Misses:     misses,
			L1Len:        r.cache.Len(),
			L1Cap:        r.cfg.CacheSize,
			PeerFetches:   r.peerFetches.Load(),
			Dispatched:    r.dispatched.Load(),
			Failovers:     r.failovers.Load(),
			EpochRepairs:  r.epochRepairs.Load(),
			Bypassed:      r.bypassed.Load(),
			BreakerOpens:  r.breakerOpens.Load(),
			BreakerTrials: r.breakerTrials.Load(),
			Degraded:      r.degradedServed.Load(),
		},
		Nodes: make(map[string]batch.Stats, len(r.nodes)),
	}
	if r.breakers != nil {
		cs.Router.Breakers = make(map[string]string, len(r.breakers))
		for name, b := range r.breakers {
			cs.Router.Breakers[name] = b.current()
		}
	}
	for name, node := range r.nodes {
		st, err := node.Stats(ctx)
		if err != nil {
			cs.Unreachable = append(cs.Unreachable, name)
			continue
		}
		cs.Nodes[name] = st
	}
	sort.Strings(cs.Unreachable)
	return cs
}
