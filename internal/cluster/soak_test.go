package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"octant/internal/serve"
)

// soakRecord is one observed wire result, keyed for bit-identity checks.
type soakKey struct {
	target string
	fp     string
	epoch  uint64
}

type soakVal struct {
	lat, lon, area float64
}

// TestClusterSoak is the rolling-swap acceptance test: a 2-node fleet
// under continuous single + batch load takes a full coordinated epoch
// rollout (drift → refresh on the source → snapshot push → drain →
// activate) and must sustain it with zero request errors, no batch
// response ever mixing epochs, and bit-identical results per
// (target, fingerprint, epoch) across every node that answered.
func TestClusterSoak(t *testing.T) {
	fleet, err := StartLocalFleet(FleetConfig{
		Nodes:         2,
		Seed:          21,
		Holdout:       40,
		ActivateDrain: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	router, err := NewRouter(fleet.Clients(), RouterConfig{ReadyTTL: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(fleet.Clients())
	if err != nil {
		t.Fatal(err)
	}

	targets := fleet.Targets[:6]
	// Two option variants → two fingerprints, so the soak exercises
	// fingerprint-qualified keys through every tier, not just defaults.
	variants := []struct {
		label string
		opts  *serve.WireOptions
	}{
		{label: "", opts: nil},
		{label: "tuned", opts: &serve.WireOptions{Weights: map[string]float64{"router": 0.5}}},
	}

	var (
		mu       sync.Mutex
		seen     = make(map[soakKey]soakVal)
		soakErrs []string
	)
	record := func(target, fpLabel string, epoch uint64, lat, lon, area float64) {
		mu.Lock()
		defer mu.Unlock()
		k := soakKey{target: target, fp: fpLabel, epoch: epoch}
		v := soakVal{lat: lat, lon: lon, area: area}
		if prev, ok := seen[k]; ok {
			if prev != v {
				soakErrs = append(soakErrs, fmt.Sprintf(
					"bit-identity violation for %+v: %+v vs %+v", k, v, prev))
			}
			return
		}
		seen[k] = v
	}
	fail := func(format string, args ...any) {
		mu.Lock()
		soakErrs = append(soakErrs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				v := variants[(w+i)%len(variants)]
				if i%3 == 0 {
					// Batch leg: three targets, response must be single-epoch.
					batchTargets := []string{
						targets[i%len(targets)],
						targets[(i+1)%len(targets)],
						targets[(i+2)%len(targets)],
					}
					results, err := router.Batch(ctx, batchTargets, v.opts)
					if err != nil {
						if ctx.Err() == nil {
							fail("worker %d batch: %v", w, err)
						}
						return
					}
					for _, res := range results {
						if res.Error != "" {
							fail("worker %d batch %s: %s", w, res.Target, res.Error)
							continue
						}
						if res.Epoch != results[0].Epoch {
							fail("worker %d: mixed epochs in one batch (%d vs %d)",
								w, res.Epoch, results[0].Epoch)
						}
						if res.Lat != nil {
							record(res.Target, v.label, res.Epoch, *res.Lat, *res.Lon, res.AreaKm2)
						}
					}
					continue
				}
				tgt := targets[(w+i)%len(targets)]
				res, err := router.Localize(ctx, tgt, v.opts)
				if err != nil {
					if ctx.Err() == nil {
						fail("worker %d localize %s: %v", w, tgt, err)
					}
					return
				}
				if res.Error != "" {
					fail("worker %d localize %s: %s", w, tgt, res.Error)
				} else if res.Lat != nil {
					record(tgt, v.label, res.Epoch, *res.Lat, *res.Lon, res.AreaKm2)
				}
			}
		}(w)
	}

	// Let the load warm both epoch-0 caches, then drift the world and
	// roll the fleet to epoch 1 under fire.
	time.Sleep(150 * time.Millisecond)
	survey := fleet.Nodes[0].Server.Manager().Current().Survey
	a, _ := fleet.World.HostByName(survey.Landmarks[0].Addr)
	b, _ := fleet.World.HostByName(survey.Landmarks[1].Addr)
	fleet.World.SetPairDriftMs(a.ID, b.ID, 25)

	report, err := coord.Rollout(ctx, RolloutOptions{})
	if err != nil {
		cancel()
		wg.Wait()
		t.Fatalf("rollout under load: %v", err)
	}
	if !report.Refreshed || report.Epoch != 1 {
		t.Errorf("rollout report = %+v, want refreshed to epoch 1", report)
	}

	// Keep serving on the new epoch before winding down.
	time.Sleep(200 * time.Millisecond)
	cancel()
	wg.Wait()

	if len(soakErrs) > 0 {
		for i, e := range soakErrs {
			if i == 10 {
				t.Errorf("… and %d more", len(soakErrs)-10)
				break
			}
			t.Error(e)
		}
	}

	// Every node converged to the pushed epoch and is ready.
	for _, client := range fleet.Clients() {
		rd, err := client.Ready(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", client.Name, err)
		}
		if !rd.Ready || rd.Epoch != 1 {
			t.Errorf("%s: ready=%v epoch=%d after rollout, want ready at 1", client.Name, rd.Ready, rd.Epoch)
		}
	}
	// The soak must actually have spanned both epochs to prove anything.
	mu.Lock()
	defer mu.Unlock()
	epochs := make(map[uint64]bool)
	for k := range seen {
		epochs[k.epoch] = true
	}
	if !epochs[0] || !epochs[1] {
		t.Errorf("soak observed epochs %v, want both 0 and 1", epochs)
	}
}
