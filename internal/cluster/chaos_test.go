package cluster

import (
	"context"
	"testing"
	"time"
)

// TestBreakerKillRevive is the node-recovery acceptance check: with a
// readiness TTL far longer than the test, a killed node's return to
// rotation must be driven by the breaker's half-open trial probe — not
// by waiting out the stale not-ready verdict.
func TestBreakerKillRevive(t *testing.T) {
	fleet := startFleet(t, 3, 19)
	ctx := context.Background()
	r, err := NewRouter(fleet.Clients(), RouterConfig{
		// So long that recovery cannot come from TTL expiry.
		ReadyTTL:         time.Minute,
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Millisecond,
		FailoverBackoff:  -1, // no sleeps; this test measures state, not pacing
	})
	if err != nil {
		t.Fatal(err)
	}
	target := fleet.Targets[0]
	ownerName, _ := r.Ring().Owner(routeKey(target, ""))
	owner := nodeByName(t, fleet, ownerName)

	// Warm: the owner serves and is cached ready for the next minute.
	if _, err := r.route(ctx, target, nil, "", false); err != nil {
		t.Fatalf("warm localize: %v", err)
	}

	// Kill the owner. The cached verdict still says ready, so the next
	// request dispatches to it, fails, opens the breaker (threshold 1),
	// and fails over — with no client-visible error.
	owner.Kill()
	if _, err := r.route(ctx, target, nil, "", false); err != nil {
		t.Fatalf("localize during owner outage: %v", err)
	}
	st := r.Stats(ctx)
	if got := st.Router.Breakers[ownerName]; got != "open" {
		t.Fatalf("after failed dispatch, breaker[%s] = %q, want open", ownerName, got)
	}
	if st.Router.BreakerOpens == 0 {
		t.Fatal("breaker opened but BreakerOpens counter is zero")
	}
	if st.Router.Failovers == 0 {
		t.Fatal("owner dispatch failed but Failovers counter is zero")
	}

	// Revive, inside the cooldown: the breaker still sheds the owner and
	// another node serves.
	if err := owner.Revive(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.route(ctx, target, nil, "", false); err != nil {
		t.Fatalf("localize right after revive: %v", err)
	}

	// After the cooldown, the half-open trial re-probes readiness fresh
	// (bypassing the minute-long TTL cache), sees the revived node, and
	// one successful dispatch closes the breaker.
	time.Sleep(50 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := r.route(ctx, target, nil, "", false); err != nil {
			t.Fatalf("localize after cooldown: %v", err)
		}
		st = r.Stats(ctx)
		if st.Router.Breakers[ownerName] == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker[%s] never closed after revive+cooldown (state %q, trials %d)",
				ownerName, st.Router.Breakers[ownerName], st.Router.BreakerTrials)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Router.BreakerTrials == 0 {
		t.Fatal("breaker closed without any recorded half-open trial")
	}
}

// TestChaosSoak runs the full chaos harness: landmark faults, serving-
// node kill/revive, and a recovery phase under continuous load. RunChaos
// itself asserts the invariants (zero client-visible errors, degraded
// results observed, bounded accuracy loss, full recovery) and returns an
// error when any fails.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	report, err := RunChaos(ChaosConfig{
		Seed:     11,
		Duration: 1500 * time.Millisecond,
		Log:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("chaos soak issued no requests")
	}
	if report.Cluster.Router.Failovers == 0 {
		t.Error("node kills happened but the router never failed over")
	}
	t.Logf("chaos: %d requests, %d degraded, healthy %.0f km vs chaos %.0f km, %d failovers, %d breaker opens",
		report.Requests, report.Degraded, report.HealthyMedianKm, report.ChaosMedianKm,
		report.Cluster.Router.Failovers, report.Cluster.Router.BreakerOpens)
}
