// Package cluster is Octant's sharded serving tier: a consistent-hash
// fleet router that assigns every (target, options-fingerprint) key a
// stable owner node, a cluster-wide result cache layered over the
// per-node LRUs, and a rollout coordinator that pushes survey epochs
// through a fleet as a rolling wave. One octant-serve process scales to
// one machine's cores; this package is what lets a fleet of them behave
// like one cache-coherent, epoch-coherent service.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// RingConfig tunes a Ring. The zero value is usable.
type RingConfig struct {
	// VNodes is how many virtual nodes each member projects onto the ring
	// (0 = default 128). More vnodes smooth the key distribution and
	// shrink per-join movement variance at the cost of a larger table.
	VNodes int
	// LoadFactor is the bounded-load ceiling c: no node is assigned more
	// than ⌈c · load/n⌉ concurrently routed keys (0 = default 1.25,
	// negative = unbounded). Bounding keeps one hot shard from pinning a
	// node while the rest of the fleet idles.
	LoadFactor float64
}

const (
	defaultVNodes     = 128
	defaultLoadFactor = 1.25
)

// Ring is a consistent-hash ring with virtual nodes and bounded-load
// assignment. Hashes are FNV-64a of plain strings, so two processes
// building rings from the same member names agree on every owner —
// front doors can be replicated without coordination.
type Ring struct {
	mu     sync.RWMutex
	cfg    RingConfig
	points []ringPoint // sorted by hash
	nodes  map[string]bool
	// load tracks keys currently checked out via Acquire, for the
	// bounded-load walk.
	load  map[string]int
	total int
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring.
func NewRing(cfg RingConfig) *Ring {
	if cfg.VNodes <= 0 {
		cfg.VNodes = defaultVNodes
	}
	if cfg.LoadFactor == 0 {
		cfg.LoadFactor = defaultLoadFactor
	}
	return &Ring{cfg: cfg, nodes: make(map[string]bool), load: make(map[string]int)}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a member. Adding an existing member is a no-op.
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[name] {
		return
	}
	r.nodes[name] = true
	for i := 0; i < r.cfg.VNodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(name + "#" + strconv.Itoa(i)), node: name})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member; keys it owned redistribute to their next
// points clockwise, and no key owned by a surviving member moves.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[name] {
		return
	}
	delete(r.nodes, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the key's owner: the member of the first virtual node at
// or clockwise of the key's hash. It ignores load — use Acquire for the
// bounded-load assignment.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(hash64(key))].node, true
}

// search returns the index of the first point at or clockwise of h.
// Callers hold at least the read lock.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Preference returns up to n distinct members in the key's clockwise
// order: the owner first, then each successive failover choice. Every
// front door computes the same list for the same key, so retries across
// replicas converge on the same fallback nodes (and their caches).
func (r *Ring) Preference(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(hash64(key)); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Acquire checks out the key against the bounded-load rule: walk the
// key's preference order, skip members the eligible filter rejects
// (nil = all eligible), and take the first whose checked-out load stays
// within ⌈LoadFactor · (total+1)/n⌉. The returned release must be called
// when the routed work completes. With a non-positive LoadFactor it
// degenerates to readiness-filtered consistent hashing.
func (r *Ring) Acquire(key string, eligible func(string) bool) (string, func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.points) == 0 {
		return "", nil, fmt.Errorf("ring is empty")
	}
	limit := 0
	if r.cfg.LoadFactor > 0 {
		limit = int(r.cfg.LoadFactor * float64(r.total+1) / float64(len(r.nodes)))
		if limit < 1 {
			limit = 1
		}
	}
	start := r.search(hash64(key))
	pick, fallback := "", ""
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(seen) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if eligible != nil && !eligible(p.node) {
			continue
		}
		if fallback == "" {
			fallback = p.node
		}
		if limit == 0 || r.load[p.node] < limit {
			pick = p.node
			break
		}
	}
	if pick == "" {
		// Every eligible member is at the ceiling (tiny fleets, bursty
		// load): fall back to the owner-most eligible node rather than
		// failing the request.
		pick = fallback
	}
	if pick == "" {
		return "", nil, fmt.Errorf("no eligible node for key")
	}
	r.load[pick]++
	r.total++
	var once sync.Once
	release := func() {
		once.Do(func() {
			r.mu.Lock()
			r.load[pick]--
			r.total--
			r.mu.Unlock()
		})
	}
	return pick, release, nil
}

// Loads returns a snapshot of checked-out load per member.
func (r *Ring) Loads() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.load))
	for n, l := range r.load {
		out[n] = l
	}
	return out
}
