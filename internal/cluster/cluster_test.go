package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"octant/internal/core"
	"octant/internal/serve"
)

// startFleet builds a small fleet with cleanup registered.
func startFleet(t *testing.T, n int, seed uint64) *LocalFleet {
	t.Helper()
	fleet, err := StartLocalFleet(FleetConfig{Nodes: n, Seed: seed, Holdout: 40})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	return fleet
}

func nodeByName(t *testing.T, fleet *LocalFleet, name string) *FleetNode {
	t.Helper()
	for _, n := range fleet.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no fleet node %q", name)
	return nil
}

// TestClusterCacheComputedOnAServedForB is the shared-cache acceptance
// check: a result computed on the key's owner node is later served, for
// the same key, through a different node's request path via the L2 peer
// fetch — no recomputation, no measurement.
func TestClusterCacheComputedOnAServedForB(t *testing.T) {
	fleet := startFleet(t, 2, 7)
	ctx := context.Background()
	cfg := RouterConfig{ReadyTTL: 15 * time.Millisecond}

	r1, err := NewRouter(fleet.Clients(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := fleet.Targets[0]
	ownerName, _ := r1.Ring().Owner(routeKey(target, ""))
	owner := nodeByName(t, fleet, ownerName)

	first, err := r1.Localize(ctx, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first localization reported cached")
	}
	if got := owner.Server.Engine().Stats().Requests; got == 0 {
		t.Fatalf("owner %s did not compute the first request", ownerName)
	}

	// Take the owner out of rotation (draining, as during a rolling swap)
	// and route the same key through a fresh front door with a cold L1.
	owner.Server.SetDraining(true)
	defer owner.Server.SetDraining(false)

	r2, err := NewRouter(fleet.Clients(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var other *FleetNode
	for _, n := range fleet.Nodes {
		if n.Name != ownerName {
			other = n
		}
	}
	beforeRequests := other.Server.Engine().Stats().Requests
	beforePings := fleet.World.PingCalls()

	second, err := r2.Localize(ctx, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("peer-fetched result not marked cached")
	}
	if second.Lat == nil || first.Lat == nil || *second.Lat != *first.Lat || *second.Lon != *first.Lon ||
		second.AreaKm2 != first.AreaKm2 || second.Epoch != first.Epoch {
		t.Errorf("peer-fetched result differs: %+v vs %+v", second, first)
	}
	if got := r2.peerFetches.Load(); got != 1 {
		t.Errorf("peer fetches = %d, want 1", got)
	}
	if got := other.Server.Engine().Stats().Requests - beforeRequests; got != 0 {
		t.Errorf("node %s recomputed a peer-cached key (%d requests)", other.Name, got)
	}
	if got := fleet.World.PingCalls() - beforePings; got != 0 {
		t.Errorf("peer fetch issued %d probes, want 0", got)
	}
	// The owner's engine counts the lookup as a peer hit.
	if got := owner.Server.Engine().Stats().PeerHits; got == 0 {
		t.Error("owner engine recorded no peer hit")
	}
}

// nopSource is a trivial custom evidence source — present only to make a
// request non-cacheable.
type nopSource struct{}

func (nopSource) Name() string { return "nop" }
func (nopSource) Constraints(ctx context.Context, req *core.Request) ([]core.Constraint, core.SourceReport, error) {
	return nil, core.SourceReport{Source: "nop"}, nil
}

// TestNonCacheableNeverEntersSharedTier checks the bypass in both
// directions: a non-cacheable result computed by a node's engine is
// unreachable through the peer-cache surface, and a non-cacheable
// request through the router touches no cache tier.
func TestNonCacheableNeverEntersSharedTier(t *testing.T) {
	fleet := startFleet(t, 2, 9)
	ctx := context.Background()
	node := fleet.Nodes[0]
	target := fleet.Targets[0]

	// Direction 1: engine → shared tier. Compute with a custom evidence
	// source; neither Peek nor /v1/cache/lookup may ever serve it.
	item := node.Server.Engine().LocalizeItem(ctx, target, core.WithEvidenceSource(nopSource{}))
	if item.Err != nil {
		t.Fatal(item.Err)
	}
	o := core.NewLocalizeOptions(core.WithEvidenceSource(nopSource{}))
	if o.Cacheable() {
		t.Fatal("options with a custom source report cacheable")
	}
	fp := o.Fingerprint()
	if _, ok := node.Server.Engine().Peek(target, fp, item.Epoch); ok {
		t.Error("non-cacheable result served from the engine LRU")
	}
	client := fleet.Clients()[0]
	if _, ok, err := client.CacheLookup(ctx, Key{Target: target, Fingerprint: fp, Epoch: item.Epoch}); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("non-cacheable result served over /v1/cache/lookup")
	}

	// Direction 2: router → shared tier. A request flagged non-cacheable
	// skips L1 and L2 entirely and inserts nothing.
	r, err := NewRouter(fleet.Clients(), RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.route(ctx, target, nil, fp, false); err != nil {
		t.Fatal(err)
	}
	if got := r.cache.Len(); got != 0 {
		t.Errorf("non-cacheable request left %d entries in the front-door cache", got)
	}
	hits, misses := r.cache.Counters()
	if hits+misses != 0 {
		t.Errorf("non-cacheable request consulted the front-door cache (%d hits, %d misses)", hits, misses)
	}
	if got := r.bypassed.Load(); got != 1 {
		t.Errorf("bypassed = %d, want 1", got)
	}
	// Running it again must dispatch again, not hit any cache.
	tr, err := r.route(ctx, target, nil, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.dispatched.Load(); got != 2 {
		t.Errorf("dispatched = %d, want 2 (no cache short-circuit)", got)
	}
	_ = tr
}

// TestRouterBatchScatterGather: a batch through the router spans the
// fleet, returns results in submission order, stays single-epoch, and is
// bit-identical to a sequential localization of the same targets.
func TestRouterBatchScatterGather(t *testing.T) {
	fleet := startFleet(t, 2, 11)
	ctx := context.Background()
	r, err := NewRouter(fleet.Clients(), RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	targets := fleet.Targets[:8]

	results, err := r.Batch(ctx, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(targets) {
		t.Fatalf("got %d results for %d targets", len(results), len(targets))
	}
	loc := fleet.Nodes[0].Server.Manager().CurrentLocalizer()
	for i, res := range results {
		if res.Target != targets[i] {
			t.Fatalf("result %d is %q, want %q (submission order)", i, res.Target, targets[i])
		}
		if res.Error != "" {
			t.Fatalf("%s: %s", res.Target, res.Error)
		}
		if res.Epoch != results[0].Epoch {
			t.Fatalf("mixed epochs in one batch: %d vs %d", res.Epoch, results[0].Epoch)
		}
		want, err := loc.Localize(targets[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Lat == nil || *res.Lat != want.Point.Lat || *res.Lon != want.Point.Lon || res.AreaKm2 != want.AreaKm2 {
			t.Errorf("%s: cluster result differs from sequential", res.Target)
		}
	}

	// The ring decides the split; verify each node that owns targets did
	// serve them.
	wantNodes := make(map[string]bool)
	for _, tgt := range targets {
		owner, _ := r.Ring().Owner(routeKey(tgt, ""))
		wantNodes[owner] = true
	}
	for name := range wantNodes {
		if got := nodeByName(t, fleet, name).Server.Engine().Stats().Requests; got == 0 {
			t.Errorf("node %s owns batch targets but served none", name)
		}
	}

	// A repeat of the same batch is served entirely from the front-door
	// L1 — zero extra dispatches.
	before := r.dispatched.Load()
	again, err := r.Batch(ctx, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.dispatched.Load() - before; got != 0 {
		t.Errorf("repeat batch dispatched %d targets, want 0 (L1)", got)
	}
	for i := range again {
		if *again[i].Lat != *results[i].Lat {
			t.Errorf("%s: cached repeat differs", again[i].Target)
		}
	}
}

// TestFrontDoorHTTP smoke-tests the cluster front door's wire surface
// over a real fleet: localize, batch NDJSON, stats, cluster view, and a
// no-op rollout.
func TestFrontDoorHTTP(t *testing.T) {
	fleet := startFleet(t, 2, 13)
	r, err := NewRouter(fleet.Clients(), RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(fleet.Clients())
	if err != nil {
		t.Fatal(err)
	}
	h := NewFront(r, coord).Handler()

	post := func(path string, body any) *httptest.ResponseRecorder {
		b, _ := json.Marshal(body)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b)))
		return rec
	}

	rec := post("/v2/localize", map[string]any{"target": fleet.Targets[0]})
	if rec.Code != http.StatusOK {
		t.Fatalf("localize: %d %s", rec.Code, rec.Body)
	}
	var tr serve.TargetResultV2
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Target != fleet.Targets[0] || tr.Lat == nil {
		t.Errorf("localize = %+v", tr)
	}

	if rec := post("/v2/localize", map[string]any{"target": "no.such.host"}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown target through front door: %d, want 422", rec.Code)
	}
	if rec := post("/v2/localize", map[string]any{"target": fleet.Targets[0], "options": map[string]any{"disable": []string{"sonar"}}}); rec.Code != http.StatusBadRequest {
		t.Errorf("bad options through front door: %d, want 400", rec.Code)
	}

	rec = post("/v2/localize/batch", map[string]any{"targets": fleet.Targets[:3]})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("batch content type %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var cs ClusterStats
	if err := json.Unmarshal(rec.Body.Bytes(), &cs); err != nil {
		t.Fatal(err)
	}
	if len(cs.Nodes) != 2 || cs.Router.Dispatched == 0 {
		t.Errorf("cluster stats = %+v", cs)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cluster", nil))
	var view clusterView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Nodes) != 2 || !view.Nodes[0].Ready {
		t.Errorf("cluster view = %+v", view)
	}

	// A skip-refresh rollout with an already-coherent fleet is a no-op
	// that still reports per-node state.
	rec = post("/v1/rollout", map[string]any{"skip_refresh": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("rollout: %d %s", rec.Code, rec.Body)
	}
	var report RolloutReport
	if err := json.Unmarshal(rec.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.Refreshed || len(report.Nodes) != 1 || !report.Nodes[0].Skipped {
		t.Errorf("no-op rollout report = %+v", report)
	}
}
