package cluster

import (
	"sync"
	"time"
)

// breakerState is a circuit breaker's position.
type breakerState int

const (
	// breakerClosed: the node is trusted; dispatches flow normally.
	breakerClosed breakerState = iota
	// breakerOpen: the node accumulated Threshold consecutive failures;
	// dispatches are rejected without probing until the cooldown expires.
	breakerOpen
	// breakerHalfOpen: the cooldown expired and one caller has been
	// admitted to verify the node. A success closes the breaker, a
	// failure re-opens it with a fresh cooldown.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker is one node's circuit breaker. It replaces the bare
// markReady(false) discipline for dispatch failures: consecutive
// failures open the circuit, an open circuit sheds every request for
// the node without a probe round-trip, and recovery happens through a
// half-open trial after the cooldown — so a revived node re-enters
// rotation on the breaker's clock, not by waiting out a stale
// readiness-cache TTL.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	failures int // consecutive failures while closed
	openedAt time.Time
}

// allow reports whether a dispatch to the node may be attempted now.
// trial is true for exactly the call that transitions the breaker from
// open to half-open: that caller is expected to verify the node (the
// router re-probes readiness, bypassing the TTL cache) and report the
// outcome via success or failure. Later half-open callers are admitted
// as ordinary traffic — the first settled outcome decides the state.
func (b *breaker) allow(now time.Time) (ok, trial bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		return true, true
	default: // half-open
		return true, false
	}
}

// success records a successful dispatch, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// failure records a failed dispatch. It returns true when this failure
// opened (or re-opened) the breaker, so the router can count opens.
func (b *breaker) failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// The trial failed: back to open with a fresh cooldown.
		b.state = breakerOpen
		b.openedAt = now
		return true
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
		return false
	default: // already open (a concurrent failure raced the transition)
		return false
	}
}

// current returns the state name for stats reporting.
func (b *breaker) current() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
