package cluster

import (
	"context"
	"fmt"
	"time"

	"octant/internal/lifecycle"
)

// RolloutOptions tunes a coordinated epoch rollout.
type RolloutOptions struct {
	// SkipRefresh converges the fleet to the source node's current epoch
	// without triggering a reprobe first — recovery mode for a fleet that
	// diverged (a node restarted on an old snapshot, a push that failed
	// half way).
	SkipRefresh bool
	// SettleTimeout bounds how long the coordinator waits for each node
	// to come back ready at the new epoch after activation
	// (0 = default 10s).
	SettleTimeout time.Duration
}

// NodeRollout is one fleet member's leg of a rollout.
type NodeRollout struct {
	Node string `json:"node"`
	// FromEpoch/ToEpoch bracket the node's swap; equal when the node was
	// already current and was skipped.
	FromEpoch uint64  `json:"from_epoch"`
	ToEpoch   uint64  `json:"to_epoch"`
	Skipped   bool    `json:"skipped,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// RolloutReport is the coordinator's account of one rollout.
type RolloutReport struct {
	// Source is the node that measured (or already held) the new epoch.
	Source string `json:"source"`
	// Epoch is the fleet-wide epoch after the rollout.
	Epoch uint64 `json:"epoch"`
	// Refreshed reports whether the source published a new epoch for this
	// rollout (false: the mesh had not drifted, or SkipRefresh).
	Refreshed bool `json:"refreshed"`
	// Refresh is the source's refresh report when one ran.
	Refresh   *lifecycle.RefreshReport `json:"refresh,omitempty"`
	Nodes     []NodeRollout            `json:"nodes"`
	ElapsedMs float64                  `json:"elapsed_ms"`
}

// Coordinator pushes survey epochs through a fleet as a rolling wave:
// refresh on one source node (the only node that probes), pull its
// snapshot, then stage → drain → activate on each replica in turn.
// Probing cost stays O(n²) once per epoch for the whole fleet instead
// of per node, and because snapshot adoption refits calibrations
// deterministically, every node serves bit-identical results for the
// epoch. At most one node is draining at any moment, so a router that
// honors readiness keeps the fleet serving throughout.
type Coordinator struct {
	nodes []*NodeClient
}

// NewCoordinator builds a coordinator over the fleet. The first node is
// the refresh source.
func NewCoordinator(nodes []*NodeClient) (*Coordinator, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes to coordinate")
	}
	return &Coordinator{nodes: nodes}, nil
}

// Rollout runs one coordinated epoch push. It returns a report even on
// the no-op path (source refreshed but nothing drifted and every node is
// already current).
func (c *Coordinator) Rollout(ctx context.Context, opts RolloutOptions) (*RolloutReport, error) {
	if opts.SettleTimeout <= 0 {
		opts.SettleTimeout = 10 * time.Second
	}
	start := time.Now()
	source := c.nodes[0]
	report := &RolloutReport{Source: source.Name}

	if !opts.SkipRefresh {
		rep, err := source.Refresh(ctx)
		if err != nil {
			return nil, fmt.Errorf("refresh on %s: %w", source.Name, err)
		}
		report.Refresh = &rep
		report.Refreshed = rep.Swapped
	}

	snapshot, epoch, err := source.Snapshot(ctx)
	if err != nil {
		return nil, fmt.Errorf("snapshot from %s: %w", source.Name, err)
	}
	report.Epoch = epoch

	for _, node := range c.nodes[1:] {
		nodeStart := time.Now()
		nr := NodeRollout{Node: node.Name, ToEpoch: epoch}
		rd, err := node.Ready(ctx)
		if err != nil {
			return nil, fmt.Errorf("readiness of %s: %w", node.Name, err)
		}
		nr.FromEpoch = rd.Epoch
		if rd.Epoch >= epoch {
			// Already current (or ahead — a concurrent rollout); nothing to
			// push.
			nr.Skipped = true
			nr.ElapsedMs = float64(time.Since(nodeStart)) / float64(time.Millisecond)
			report.Nodes = append(report.Nodes, nr)
			continue
		}
		if _, err := node.Install(ctx, snapshot); err != nil {
			return nil, fmt.Errorf("install on %s: %w", node.Name, err)
		}
		if _, err := node.Activate(ctx); err != nil {
			return nil, fmt.Errorf("activate on %s: %w", node.Name, err)
		}
		if err := c.waitReadyAt(ctx, node, epoch, opts.SettleTimeout); err != nil {
			return nil, err
		}
		nr.ElapsedMs = float64(time.Since(nodeStart)) / float64(time.Millisecond)
		report.Nodes = append(report.Nodes, nr)
	}
	report.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	return report, nil
}

// waitReadyAt polls the node until it reports ready at (or past) epoch.
// The rolling wave does not advance to the next node before this one is
// back in service — that is what keeps at most one node out at a time.
func (c *Coordinator) waitReadyAt(ctx context.Context, node *NodeClient, epoch uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		rd, err := node.Ready(ctx)
		if err == nil && rd.Ready && rd.Epoch >= epoch {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s did not become ready at epoch %d within %v", node.Name, epoch, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}
