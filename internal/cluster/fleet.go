package cluster

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/lifecycle"
	"octant/internal/netsim"
	"octant/internal/probe"
	"octant/internal/serve"
)

// FleetConfig shapes a LocalFleet.
type FleetConfig struct {
	// Nodes is the fleet size (required, ≥ 1).
	Nodes int
	// Seed derives the shared simulated world.
	Seed uint64
	// Holdout hosts are excluded from the survey so they stay
	// localizable targets (0 = default 8).
	Holdout int
	// Workers per node engine (0 = default 4).
	Workers int
	// CacheSize per node engine LRU (0 = default 1024).
	CacheSize int
	// ActivateDrain bounds each node's epoch-activation drain
	// (0 = serve default).
	ActivateDrain time.Duration
	// ProbePace gives each node a bounded measurement pipeline: the node
	// has ProbeLanes concurrent probing lanes and every ping train
	// occupies one lane for this long (the initial survey builds
	// unpaced). The simulator answers instantly, so without pacing
	// co-resident nodes just contend for CPU and fleet size proves
	// nothing; with it, every node has a fixed measurement capacity —
	// the shape a real deployment gets from a small pool of raw-socket
	// pingers per machine — and scaling curves become
	// machine-independent.
	ProbePace time.Duration
	// ProbeLanes is the node's concurrent train capacity when ProbePace
	// is set (0 = default 4; 1 reproduces the single serialized pinger
	// the pre-scheduler deployment model had). A concurrent fan-out
	// overlaps up to this many trains' wire time; a serialized
	// measurement loop pays it train by train regardless.
	ProbeLanes int
	// SerializedMeasurement pins each node's localizer to the legacy
	// one-probe-at-a-time measurement loop (core MeasureWorkers < 0).
	// The cluster benchmark uses it as the baseline leg its per-node
	// throughput gate compares the concurrent scheduler against.
	SerializedMeasurement bool
	// RetryAttempts wraps every node's prober in probe.WithRetry with
	// this attempt budget (0/1 = no retries). The chaos harness uses it
	// so transient loss injected into the world is absorbed below the
	// quorum layer. Backoffs are kept tiny (1ms base, 10ms cap) because
	// the simulated wire has no real propagation delay to wait out.
	RetryAttempts int
}

// pacedProber models a node's measurement pipeline: a fixed pool of
// probing lanes, each of which carries one ping train at a time, every
// train occupying its lane for a fixed wire time. Concurrent callers
// overlap up to len(lanes) trains; beyond that they queue, which is
// what makes per-node measurement capacity (lanes/pace trains per
// second) the binding resource in the scaling harness. The underlying
// simulator answers instantly outside the lane.
type pacedProber struct {
	probe.Prober
	pace  time.Duration
	lanes chan struct{}
}

func newPacedProber(p probe.Prober, pace time.Duration, width int) *pacedProber {
	if width < 1 {
		width = 4
	}
	return &pacedProber{Prober: p, pace: pace, lanes: make(chan struct{}, width)}
}

func (p *pacedProber) Ping(src, dst string, n int) ([]float64, error) {
	p.lanes <- struct{}{}
	time.Sleep(p.pace)
	<-p.lanes
	return p.Prober.Ping(src, dst, n)
}

// FleetNode is one in-process serving node of a LocalFleet.
type FleetNode struct {
	Name   string
	URL    string
	Server *serve.Server

	mu   sync.Mutex
	addr string // the node's fixed listen address, kept across Kill/Revive
	down bool
	ln   net.Listener
	hs   *http.Server
}

// Kill drops the node off the network abruptly: the listener closes and
// every in-flight request is aborted, exactly what a crashed process
// looks like to the router. The node's engine and survey stay intact so
// Revive restores it without re-measuring.
func (n *FleetNode) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return
	}
	n.down = true
	if n.hs != nil {
		_ = n.hs.Close()
	}
	if n.ln != nil {
		_ = n.ln.Close()
	}
	n.hs, n.ln = nil, nil
}

// Revive brings a killed node back on its original address, so clients
// holding its URL reconnect without reconfiguration.
func (n *FleetNode) Revive() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.down {
		return nil
	}
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		return fmt.Errorf("revive %s: %w", n.Name, err)
	}
	hs := &http.Server{Handler: n.Server.Handler()}
	go func() { _ = hs.Serve(ln) }()
	n.ln, n.hs, n.down = ln, hs, false
	return nil
}

// Down reports whether the node is currently killed.
func (n *FleetNode) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// LocalFleet is a real multi-node Octant fleet running in one process:
// every node is a full serve stack (lifecycle manager, batch engine,
// HTTP listener on 127.0.0.1) over one shared simulated world, so
// cluster behaviour — routing, peer caching, rolling swaps — is
// exercised over genuine HTTP with genuine concurrency. Tests and the
// octant-eval cluster harness both build on it.
type LocalFleet struct {
	World   *netsim.World
	Nodes   []*FleetNode
	Targets []string
}

// StartLocalFleet builds and starts a fleet. All nodes adopt the same
// initial survey (probed once), so the fleet starts epoch-coherent and
// bit-identical — the same property a production fleet gets from
// snapshot distribution.
func StartLocalFleet(cfg FleetConfig) (*LocalFleet, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("fleet needs ≥ 1 node, got %d", cfg.Nodes)
	}
	if cfg.Holdout == 0 {
		cfg.Holdout = 8
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	prober, landmarks, err := serve.BuildProber("sim", cfg.Seed, cfg.Holdout, "")
	if err != nil {
		return nil, err
	}
	world := prober.(*probe.SimProber).World
	f := &LocalFleet{World: world}
	for _, h := range world.HostNodes()[:cfg.Holdout] {
		f.Targets = append(f.Targets, h.Name)
	}

	// One survey measurement for the whole fleet; every node gets its own
	// deserialized copy via the snapshot round trip, exactly as a replica
	// adopting a pushed epoch would, so per-node surveys are independent
	// objects with identical calibrations.
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{Probes: 10, UseHeights: true})
	if err != nil {
		f.Close()
		return nil, err
	}

	for i := 0; i < cfg.Nodes; i++ {
		nodeSurvey := survey
		if i > 0 {
			nodeSurvey, err = roundTripSurvey(survey)
			if err != nil {
				f.Close()
				return nil, err
			}
		}
		nodeProber := prober
		if cfg.ProbePace > 0 {
			nodeProber = newPacedProber(prober, cfg.ProbePace, cfg.ProbeLanes)
		}
		if cfg.RetryAttempts > 1 {
			nodeProber = probe.WithRetry(nodeProber, probe.RetryOptions{
				Attempts:    cfg.RetryAttempts,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  10 * time.Millisecond,
			})
		}
		nodeCfg := core.Config{Probes: 10}
		if cfg.SerializedMeasurement {
			nodeCfg.MeasureWorkers = -1
		}
		manager := lifecycle.New(nodeProber, nodeSurvey, nodeCfg, lifecycle.Options{Probes: 10})
		engine := batch.NewWithProvider(manager, batch.Options{
			Workers:   cfg.Workers,
			CacheSize: cfg.CacheSize,
		})
		srv := serve.New(engine, manager, serve.Options{ActivateDrain: cfg.ActivateDrain})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		f.Nodes = append(f.Nodes, &FleetNode{
			Name:   fmt.Sprintf("node-%d", i),
			URL:    "http://" + ln.Addr().String(),
			Server: srv,
			addr:   ln.Addr().String(),
			ln:     ln,
			hs:     hs,
		})
	}
	return f, nil
}

// roundTripSurvey clones a survey through the snapshot codec — the same
// path a pushed epoch takes, and the reason replica calibrations are
// bit-identical to the source's.
func roundTripSurvey(s *core.Survey) (*core.Survey, error) {
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		return nil, err
	}
	return core.ReadSnapshot(&buf)
}

// Clients returns one NodeClient per fleet member, in node order.
func (f *LocalFleet) Clients() []*NodeClient {
	out := make([]*NodeClient, len(f.Nodes))
	for i, n := range f.Nodes {
		out[i] = &NodeClient{Name: n.Name, BaseURL: n.URL}
	}
	return out
}

// Close shuts every node down immediately.
func (f *LocalFleet) Close() {
	for _, n := range f.Nodes {
		n.Kill()
	}
}
