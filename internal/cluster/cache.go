package cluster

import (
	"container/list"
	"sync"

	"octant/internal/serve"
)

// Key identifies one cacheable localization result cluster-wide. It is
// the same triple the per-node engine LRUs key on — target, options
// fingerprint ("" for a default request), and survey epoch — so a front
// door, a node LRU, and a peer lookup all name the same result the same
// way. Non-cacheable requests (custom evidence sources) never get a Key:
// the router bypasses every cache tier for them, exactly as the batch
// engine does.
type Key struct {
	Target      string
	Fingerprint string
	Epoch       uint64
}

// Cache is the front door's in-process L1 of the cluster result cache:
// an LRU of wire-form results keyed by Key. Entries are full
// TargetResultV2 values, so an L1 hit is served without touching any
// node. Epoch is part of the key, so stale epochs age out by disuse
// instead of needing invalidation — the same lazy scheme as the node
// LRUs.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[Key]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key Key
	res serve.TargetResultV2
}

// NewCache builds an L1 of at most capacity entries (capacity <= 0
// disables caching; every Get misses and Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{cap: capacity, ll: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key Key) (serve.TargetResultV2, bool) {
	if c == nil || c.cap <= 0 {
		return serve.TargetResultV2{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return serve.TargetResultV2{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put inserts a result, evicting the least recently used entry at
// capacity.
func (c *Cache) Put(key Key, res serve.TargetResultV2) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len returns the current occupancy.
func (c *Cache) Len() int {
	if c == nil || c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns (hits, misses) since construction.
func (c *Cache) Counters() (uint64, uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
