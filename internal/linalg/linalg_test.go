package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Error("At wrong")
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Error("Set wrong")
	}
	tr := m.Transpose()
	if tr.Rows != 2 || tr.Cols != 3 || tr.At(0, 1) != 3 {
		t.Error("Transpose wrong")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 9 {
		t.Error("Clone aliases data")
	}
}

func TestMulVecAndMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	x := []float64{5, 6}
	got := a.MulVec(x)
	if got[0] != 17 || got[1] != 39 {
		t.Errorf("MulVec = %v", got)
	}
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	p := a.Mul(b)
	if p.At(0, 0) != 2 || p.At(0, 1) != 1 || p.At(1, 0) != 4 || p.At(1, 1) != 3 {
		t.Errorf("Mul = %+v", p)
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: exact solution.
	a := FromRows([][]float64{
		{1, 1, 0},
		{1, 0, 1},
		{0, 1, 1},
	})
	// This is exactly the paper's §2.2 heights system for three landmarks.
	b := []float64{3, 4, 5}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 through noisy points; LS recovers it for symmetric noise.
	a := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := []float64{1.1, 2.9, 5.1, 6.9}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 0.1 || math.Abs(x[1]-1) > 0.15 {
		t.Errorf("fit = %v, want ≈ [2, 1]", x)
	}
	// Residual should be smaller than for a perturbed solution.
	r0 := Residual(a, x, b)
	r1 := Residual(a, []float64{x[0] + 0.1, x[1]}, b)
	if r0 >= r1 {
		t.Errorf("LS residual %v not minimal (perturbed %v)", r0, r1)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}) // rank 1
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Error("expected ErrSingular for rank-deficient system")
	}
	u := FromRows([][]float64{{1, 2, 3}}) // underdetermined
	if _, err := SolveLeastSquares(u, []float64{1}); err == nil {
		t.Error("expected error for underdetermined system")
	}
	if _, err := SolveLeastSquares(FromRows([][]float64{{1}, {2}}), []float64{1, 2, 3}); err == nil {
		t.Error("expected error for rhs length mismatch")
	}
}

// Property: solving A·x̂ = A·x recovers x for random well-conditioned A.
func TestSolveRecoversKnownSolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		n := 2 + rng.IntN(6)
		m := n + rng.IntN(5)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()*4 - 2
		}
		// Boost the diagonal for conditioning.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+3)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*10 - 5
		}
		b := a.MulVec(x)
		got, err := SolveLeastSquares(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	// Minimize (x−3)² + (y+1)² + 2.
	f := func(v []float64) float64 {
		return (v[0]-3)*(v[0]-3) + (v[1]+1)*(v[1]+1) + 2
	}
	x, fv := NelderMead(f, []float64{0, 0}, &NelderMeadOpts{MaxIter: 500})
	if math.Abs(x[0]-3) > 1e-3 || math.Abs(x[1]+1) > 1e-3 {
		t.Errorf("minimum at %v, want (3, −1)", x)
	}
	if math.Abs(fv-2) > 1e-5 {
		t.Errorf("minimum value %v, want 2", fv)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(v []float64) float64 {
		a := 1 - v[0]
		b := v[1] - v[0]*v[0]
		return a*a + 100*b*b
	}
	x, _ := NelderMead(f, []float64{-1.2, 1}, &NelderMeadOpts{MaxIter: 5000, Tol: 1e-14, Step: 0.5})
	if math.Abs(x[0]-1) > 0.02 || math.Abs(x[1]-1) > 0.02 {
		t.Errorf("Rosenbrock minimum at %v, want (1, 1)", x)
	}
}

func TestNelderMeadDegenerate(t *testing.T) {
	x, fv := NelderMead(func(v []float64) float64 { return 7 }, []float64{1}, nil)
	if len(x) != 1 || fv != 7 {
		t.Errorf("constant function: %v %v", x, fv)
	}
	if got, _ := NelderMead(func(v []float64) float64 { return 0 }, nil, nil); got != nil {
		t.Error("empty x0 should return nil")
	}
}
