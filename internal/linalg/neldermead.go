package linalg

import (
	"math"
	"sort"
)

// NelderMeadOpts configures the simplex minimizer.
type NelderMeadOpts struct {
	MaxIter int     // maximum iterations (default 400)
	Tol     float64 // convergence tolerance on simplex f-spread (default 1e-9)
	Step    float64 // initial simplex step per coordinate (default 1)
}

// nmVertex is one simplex vertex with its cached objective value.
type nmVertex struct {
	x []float64
	f float64
}

// nmSimplex sorts vertices by objective value. A concrete sort.Interface
// keeps the per-iteration sort allocation-free; sort.Sort and sort.Slice
// instantiate the same pdqsort template, so the swap sequence — and with
// it the tie-ordering of equal-valued vertices — is identical to the
// sort.Slice formulation this replaced.
type nmSimplex []nmVertex

func (s nmSimplex) Len() int           { return len(s) }
func (s nmSimplex) Less(i, j int) bool { return s[i].f < s[j].f }
func (s nmSimplex) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// NelderMead minimizes f starting from x0 using the Nelder–Mead downhill
// simplex method (reflection/expansion/contraction/shrink with the standard
// coefficients). It returns the best point found and its value. The method
// is derivative-free, matching the paper's need to minimize the nonlinear
// residual over (t′, t_long, t_lat) in §2.2.
func NelderMead(f func([]float64) float64, x0 []float64, opts *NelderMeadOpts) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	o := NelderMeadOpts{MaxIter: 400, Tol: 1e-9, Step: 1}
	if opts != nil {
		if opts.MaxIter > 0 {
			o.MaxIter = opts.MaxIter
		}
		if opts.Tol > 0 {
			o.Tol = opts.Tol
		}
		if opts.Step != 0 {
			o.Step = opts.Step
		}
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	simplex := make(nmSimplex, n+1)
	simplex[0] = nmVertex{append([]float64(nil), x0...), f(x0)}
	for i := 1; i <= n; i++ {
		x := append([]float64(nil), x0...)
		x[i-1] += o.Step
		simplex[i] = nmVertex{x, f(x)}
	}
	centroid := make([]float64, n)
	// Two scratch buffers cycle through the reflection/expansion/
	// contraction candidates. A candidate adopted into the simplex takes
	// the evicted worst vertex's buffer with it, so the buffer count stays
	// fixed at two for the whole run — every candidate coordinate is fully
	// overwritten before use, which keeps the arithmetic bit-identical to
	// the make-per-iteration formulation this replaced.
	bufA := make([]float64, n)
	bufB := make([]float64, n)
	// Box the simplex into sort.Interface once: the conversion inside the
	// loop would otherwise heap-allocate a slice header per iteration.
	var byF sort.Interface = simplex
	for iter := 0; iter < o.MaxIter; iter++ {
		sort.Sort(byF)
		if math.Abs(simplex[n].f-simplex[0].f) < o.Tol {
			break
		}
		// Centroid of all but worst.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		worst := simplex[n]
		refl := bufA
		for j := 0; j < n; j++ {
			refl[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := f(refl)
		switch {
		case fr < simplex[0].f:
			exp := bufB
			for j := 0; j < n; j++ {
				exp[j] = centroid[j] + gamma*(refl[j]-centroid[j])
			}
			if fe := f(exp); fe < fr {
				simplex[n] = nmVertex{exp, fe}
				bufB = worst.x
			} else {
				simplex[n] = nmVertex{refl, fr}
				bufA = worst.x
			}
		case fr < simplex[n-1].f:
			simplex[n] = nmVertex{refl, fr}
			bufA = worst.x
		default:
			contr := bufB
			for j := 0; j < n; j++ {
				contr[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			if fc := f(contr); fc < worst.f {
				simplex[n] = nmVertex{contr, fc}
				bufB = worst.x
			} else {
				// Shrink toward best.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	sort.Sort(byF)
	return simplex[0].x, simplex[0].f
}
