// Package linalg provides the small dense linear-algebra and optimization
// kernel the Octant framework needs: least-squares solves for the
// queuing-delay "heights" system (§2.2 of the paper) and Nelder–Mead simplex
// minimization for the target coordinate fit. It is deliberately minimal —
// dense row-major matrices, Householder QR, and a simplex optimizer — and
// has no dependencies beyond the standard library.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all must be equal length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: dimension mismatch in MulVec")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: dimension mismatch in Mul")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: singular or rank-deficient system")

// SolveLeastSquares solves min ‖Ax − b‖₂ via Householder QR with column
// norms as a rank check. A must have Rows ≥ Cols.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs length %d != rows %d", len(b), a.Rows)
	}
	r := a.Clone()
	y := append([]float64(nil), b...)
	m, n := r.Rows, r.Cols
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm < 1e-13 {
			return nil, ErrSingular
		}
		alpha := -norm
		if r.At(k, k) < 0 {
			alpha = norm
		}
		v := make([]float64, m-k)
		v[0] = r.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		var vnorm2 float64
		for _, vi := range v {
			vnorm2 += vi * vi
		}
		if vnorm2 < 1e-26 {
			continue
		}
		// Apply H = I − 2vvᵀ/‖v‖² to R and y.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i-k])
			}
		}
		var dot float64
		for i := k; i < m; i++ {
			dot += v[i-k] * y[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < m; i++ {
			y[i] -= f * v[i-k]
		}
	}
	// Back substitution on the upper-triangular part.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-13 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Residual returns ‖Ax − b‖₂.
func Residual(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	var s float64
	for i := range ax {
		d := ax[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
