package batch

import (
	"sync"
	"sync/atomic"
	"time"

	"octant/internal/core"
	"octant/internal/stats"
)

// Stats is a point-in-time snapshot of engine activity, shaped for the
// octant-serve /v1/stats endpoint.
type Stats struct {
	Workers int `json:"workers"`
	// Epoch is the survey epoch the engine is currently serving from
	// (the provider's latest published snapshot).
	Epoch     uint64 `json:"epoch"`
	Requests  uint64 `json:"requests"`
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts requests that had to measure (or wait on a
	// coalesced measurement).
	CacheMisses uint64 `json:"cache_misses"`
	// Coalesced counts misses that piggybacked on an identical in-flight
	// request instead of probing themselves.
	Coalesced uint64 `json:"coalesced"`
	Errors    uint64 `json:"errors"`
	// Degraded counts results served from partial evidence (landmark
	// failures absorbed by quorum, core.Result.Degraded). They are
	// successes, not Errors — but a nonzero rate means the measurement
	// substrate is unhealthy, so the counter rides /v1/stats.
	Degraded uint64 `json:"degraded"`
	InFlight int64  `json:"in_flight"`
	// CacheLen and CacheCap are the LRU's occupancy and capacity;
	// CacheLen/CacheCap is how full the cache is, which the fleet router
	// and the soak harness read when judging node balance.
	CacheLen int `json:"cache_len"`
	CacheCap int `json:"cache_cap"`
	// PeerHits counts cache entries served to cluster peers through Peek
	// (the /v1/cache/lookup endpoint) — results this node computed that
	// saved another node a measurement.
	PeerHits uint64 `json:"peer_hits"`
	// HintsDropped counts exogenous priors (rDNS hints, geo-DB records)
	// the RTT cross-validation rejected across computed results, and
	// HintConflicts counts computed results whose evidence classes
	// disagreed beyond the conflict threshold
	// (Provenance.Disagreement.Conflict). A rising drop rate means the
	// hint substrate (reverse zones, passive databases) is drifting from
	// the measured network.
	HintsDropped  uint64 `json:"hints_dropped"`
	HintConflicts uint64 `json:"hint_conflicts"`
	// FusedGroups counts multi-target Run calls served by the fused batch
	// solve (one group = one epoch × one options fingerprint), and
	// FusedTargets how many submitted targets rode in them; FusedTargets /
	// Requests is the fused rate — how much of the workload amortized its
	// rasterization through batches.
	FusedGroups  uint64 `json:"fused_groups"`
	FusedTargets uint64 `json:"fused_targets"`
	// HitRate is CacheHits / Requests (0 when idle).
	HitRate float64 `json:"hit_rate"`
	// CacheHitRatio is CacheHits / (CacheHits + CacheMisses) — the cache's
	// own efficiency, independent of how much traffic was coalesced or
	// errored before reaching it.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// P50Ms / P99Ms are localization latency quantiles over a sliding
	// window of recent uncached measurements.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// LandMasks reports the solver's land-mask cache, which all workers
	// share through the one Localizer: masters built (misses), reuses
	// (hits), and resident masters.
	LandMasks core.LandMaskStats `json:"land_masks"`
}

// latWindow is how many recent measurement latencies the quantile window
// retains.
const latWindow = 2048

// metrics holds the engine's live counters: lock-free atomics for the hot
// counts, a small mutex-guarded ring for the latency window.
type metrics struct {
	requests  atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	errors    atomic.Uint64
	degraded  atomic.Uint64
	inFlight  atomic.Int64

	fusedGroups  atomic.Uint64
	fusedTargets atomic.Uint64
	peerHits     atomic.Uint64

	hintsDropped  atomic.Uint64
	hintConflicts atomic.Uint64

	mu    sync.Mutex
	ring  [latWindow]float64 // latencies, ms
	next  int
	count int
}

func (m *metrics) begin()    { m.requests.Add(1); m.inFlight.Add(1) }
func (m *metrics) end()      { m.inFlight.Add(-1) }
func (m *metrics) hit()      { m.hits.Add(1) }
func (m *metrics) miss()     { m.misses.Add(1) }
func (m *metrics) coalesce() { m.coalesced.Add(1) }
func (m *metrics) fail()     { m.errors.Add(1) }
func (m *metrics) degrade()  { m.degraded.Add(1) }
func (m *metrics) peerHit()  { m.peerHits.Add(1) }

func (m *metrics) fused(targets int) {
	m.fusedGroups.Add(1)
	m.fusedTargets.Add(uint64(targets))
}

// observePriors harvests the hint bookkeeping from one computed result:
// cross-validation drops and evidence-class conflicts ride the result's
// Provenance (attached even without Explain, same contract as degraded
// Failures). Cached and coalesced deliveries don't re-count.
func (m *metrics) observePriors(res *core.Result) {
	if res == nil || res.Provenance == nil {
		return
	}
	if n := len(res.Provenance.DroppedHints); n > 0 {
		m.hintsDropped.Add(uint64(n))
	}
	if d := res.Provenance.Disagreement; d != nil && d.Conflict {
		m.hintConflicts.Add(1)
	}
}

func (m *metrics) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	m.ring[m.next] = ms
	m.next = (m.next + 1) % latWindow
	if m.count < latWindow {
		m.count++
	}
	m.mu.Unlock()
}

func (m *metrics) snapshot() Stats {
	s := Stats{
		Requests:     m.requests.Load(),
		CacheHits:    m.hits.Load(),
		CacheMisses:  m.misses.Load(),
		Coalesced:    m.coalesced.Load(),
		Errors:       m.errors.Load(),
		Degraded:     m.degraded.Load(),
		InFlight:     m.inFlight.Load(),
		FusedGroups:   m.fusedGroups.Load(),
		FusedTargets:  m.fusedTargets.Load(),
		PeerHits:      m.peerHits.Load(),
		HintsDropped:  m.hintsDropped.Load(),
		HintConflicts: m.hintConflicts.Load(),
	}
	if s.Requests > 0 {
		s.HitRate = float64(s.CacheHits) / float64(s.Requests)
	}
	if looked := s.CacheHits + s.CacheMisses; looked > 0 {
		s.CacheHitRatio = float64(s.CacheHits) / float64(looked)
	}
	m.mu.Lock()
	window := append([]float64(nil), m.ring[:m.count]...)
	m.mu.Unlock()
	if len(window) > 0 {
		s.P50Ms = stats.Percentile(window, 50)
		s.P99Ms = stats.Percentile(window, 99)
	}
	return s
}
