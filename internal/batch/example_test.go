package batch_test

import (
	"context"
	"fmt"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// ExampleEngine localizes a batch of simulated hosts through an 8-worker
// engine: the first four hosts are held out as targets and the rest form
// the landmark survey the workers share.
func ExampleEngine() {
	world := netsim.NewWorld(netsim.Config{Seed: 1})
	prober := probe.NewSimProber(world)
	hosts := world.HostNodes()

	targets := make([]string, 4)
	for i := range targets {
		targets[i] = hosts[i].Name
	}
	var landmarks []core.Landmark
	for _, h := range hosts[4:] {
		landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{UseHeights: true})
	if err != nil {
		panic(err)
	}

	loc := core.NewLocalizer(prober, survey, core.Config{})
	engine := batch.New(loc, batch.Options{Workers: 8})
	results, errs := engine.Collect(context.Background(), targets)

	ok := 0
	for i := range targets {
		if errs[i] == nil && !results[i].Region.IsEmpty() {
			ok++
		}
	}
	fmt.Printf("localized %d/%d targets concurrently\n", ok, len(targets))
	// Output:
	// localized 4/4 targets concurrently
}

// ExampleEngine_cache shows the LRU result cache: the second request for
// a target is served without probing, and /v1/stats-style counters track
// the hit rate.
func ExampleEngine_cache() {
	world := netsim.NewWorld(netsim.Config{Seed: 1})
	prober := probe.NewSimProber(world)
	hosts := world.HostNodes()

	var landmarks []core.Landmark
	for _, h := range hosts[1:] {
		landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{UseHeights: true})
	if err != nil {
		panic(err)
	}

	engine := batch.New(core.NewLocalizer(prober, survey, core.Config{}), batch.Options{Workers: 2})
	ctx := context.Background()
	first := engine.LocalizeItem(ctx, hosts[0].Name)
	second := engine.LocalizeItem(ctx, hosts[0].Name)
	if first.Err != nil || second.Err != nil {
		panic("localization failed")
	}

	stats := engine.Stats()
	fmt.Printf("first cached: %v, repeat cached: %v\n", first.Cached, second.Cached)
	fmt.Printf("identical estimate: %v\n", first.Result.Point == second.Result.Point)
	fmt.Printf("hits %d / requests %d (hit rate %.2f)\n", stats.CacheHits, stats.Requests, stats.HitRate)
	// Output:
	// first cached: false, repeat cached: true
	// identical estimate: true
	// hits 1 / requests 2 (hit rate 0.50)
}
