// Package batch runs many Octant localizations concurrently over a
// shared Survey snapshot.
//
// The core Localizer measures and solves one target at a time. Deployed
// geolocation workloads are batch-shaped — hint-driven measurement
// campaigns over large target sets, continuous re-localization of a
// serving population — and their wall-clock cost is dominated by
// measurement latency, which overlaps perfectly across targets. Engine
// provides that overlap: a bounded worker pool fans a target list across
// N goroutines that share one immutable Survey, with per-target
// timeout/cancellation, result streaming, an LRU cache of recent results,
// and coalescing of concurrent duplicate requests (only one worker probes
// a given target; the others wait and share its outcome).
//
// The engine does not hold the survey itself — it holds a Provider and
// borrows the current epoch's Localizer once per request. A static
// provider (New) reproduces the fixed-survey behaviour; the lifecycle
// manager is a live provider that republishes recalibrated epochs, and
// because each request borrows exactly one snapshot for its whole
// lifetime, an epoch hot-swap never torn-reads a request: in-flight
// targets finish on the epoch they started with, later requests see the
// new one. Cache entries and coalescing keys are epoch-qualified, so a
// swap implicitly invalidates stale cached results instead of serving
// them from the superseded calibration.
//
// Requests may carry per-request core.LocalizeOption values (the v2
// request API): options are resolved once per call, and both the LRU and
// the singleflight keys are additionally qualified by the options
// fingerprint, so the same target tuned two ways never shares a result,
// while identical tunings still hit and coalesce. Options that cannot be
// fingerprinted (custom evidence sources) bypass sharing entirely.
//
// A Run call is homogeneous by construction — one borrowed epoch, one
// options set — which makes it exactly one fused group: the engine hands
// the post-cache remainder of the batch to core.LocalizeBatchDeadline,
// which resolves configuration once and amortizes the epoch's shared
// rasterization and constraint allocation across the group instead of
// paying them per target (TargetTimeout still applies per target, as a
// deadline starting when a worker picks the target up). Stats reports how
// much traffic took this path (FusedGroups, FusedTargets).
//
// Workers also share the Localizer's per-survey state through their
// shallow Localizer copies: the projection context (survey-centroid
// frame, per-landmark tangent frames, land outlines projected once per
// survey) and the land-mask cache, under which the §2.5 ocean mask is
// rasterized once per (projection, cell size) and every target's coarse
// and fine solver passes reuse it, instead of each solve re-projecting
// and re-rasterizing the fixed land polygons. Stats reports the mask
// cache's hit rate.
//
// Safety: Survey, Calibration, and the undns Resolver are immutable after
// construction, and netsim.World guards its route cache internally, so
// concurrent Localize calls are safe as long as the Prober is (both
// bundled probers are). Engine never mutates the Localizer it wraps.
package batch

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"octant/internal/core"
)

// Options configures an Engine. The zero value is usable: 4 workers,
// a 1024-entry cache, no per-target timeout.
type Options struct {
	// Workers is the number of concurrent localizations (default 4).
	Workers int
	// CacheSize is the LRU capacity in results (default 1024; negative
	// disables caching entirely).
	CacheSize int
	// TargetTimeout bounds each localization, measurement included
	// (0 = no limit). Cancellation is enforced between probe calls, so
	// an expired target stops measuring at the next landmark.
	TargetTimeout time.Duration
	// TTL expires cache entries after this age (0 = never). Latency to a
	// host drifts as routes change, so long-running daemons should set it.
	TTL time.Duration
}

func (o *Options) fillDefaults() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
}

// Provider supplies the current survey epoch's Localizer. The returned
// Localizer (and everything it references) must be immutable; successive
// calls may return different snapshots as epochs are published, and the
// engine borrows exactly one snapshot per request. Implementations must
// be safe for concurrent use — an atomic pointer load is the intended
// shape (the lifecycle manager's RCU-published epoch is one).
type Provider interface {
	CurrentLocalizer() *core.Localizer
}

// staticProvider pins a single Localizer forever — the classic
// fixed-survey engine.
type staticProvider struct{ loc *core.Localizer }

func (p staticProvider) CurrentLocalizer() *core.Localizer { return p.loc }

// Engine is a concurrent batch-localization front end over the survey
// snapshots a Provider publishes. Construct with New or NewWithProvider;
// all methods are safe for concurrent use.
type Engine struct {
	provider Provider
	opts     Options
	cache    *lruCache
	flight   flightGroup
	metrics  metrics
}

// New wraps a fixed Localizer in a batch engine. The Localizer (and
// everything it references) is treated as read-only from this point on.
func New(loc *core.Localizer, opts Options) *Engine {
	return NewWithProvider(staticProvider{loc}, opts)
}

// NewWithProvider builds an engine that borrows the current Localizer
// from p once per request, picking up hot-swapped survey epochs with
// zero interruption to in-flight work.
func NewWithProvider(p Provider, opts Options) *Engine {
	opts.fillDefaults()
	e := &Engine{provider: p, opts: opts}
	if opts.CacheSize > 0 {
		e.cache = newLRU(opts.CacheSize, opts.TTL)
	}
	e.flight.calls = make(map[string]*flightCall)
	return e
}

// Item is one streamed batch outcome. Exactly one of Result/Err is set.
type Item struct {
	// Index is the position of Target in the submitted slice.
	Index  int
	Target string
	Result *core.Result
	Err    error
	// Epoch is the survey epoch this item was served under. The engine
	// borrows one epoch snapshot per request, so every measurement and
	// the solve behind Result used exactly this epoch's calibrations.
	Epoch uint64
	// Cached reports the result was served from the LRU without probing.
	Cached bool
	// Elapsed is the wall time this target took inside the engine.
	Elapsed time.Duration
}

// Localize runs (or serves from cache) a single localization. Concurrent
// calls for the same target and options are coalesced onto one
// measurement; requests for the same target under different options never
// share cache entries or measurements (keys carry the options
// fingerprint).
func (e *Engine) Localize(ctx context.Context, target string, opts ...core.LocalizeOption) (*core.Result, error) {
	item := e.localize(ctx, target, 0, resolveOpts(opts))
	return item.Result, item.Err
}

// LocalizeItem is Localize with the full item metadata (cache status,
// elapsed time) that serving front ends report per response.
func (e *Engine) LocalizeItem(ctx context.Context, target string, opts ...core.LocalizeOption) Item {
	return e.localize(ctx, target, 0, resolveOpts(opts))
}

// Run streams localizations of targets over the returned channel, using
// up to Options.Workers goroutines. Items arrive in completion order (use
// Item.Index to restore submission order) and the channel closes after the
// last one. Cancelling ctx stops the batch early: in-flight targets abort
// at their next probe and queued ones are reported with ctx's error.
// opts apply to every target of the batch; they are resolved and
// fingerprinted once here, not per target.
//
// Multi-target runs take the fused path: the whole batch is one (epoch,
// options-fingerprint) group solved by core.LocalizeBatchDeadline, which
// resolves config and options once and shares the epoch's rasterized
// geography across targets (TargetTimeout still applies per target, as a
// deadline starting when a worker picks the target up). Cache hits are
// served up front, duplicate targets within the batch coalesce onto one
// measurement, and results are bit-identical to the per-target path.
func (e *Engine) Run(ctx context.Context, targets []string, opts ...core.LocalizeOption) <-chan Item {
	ro := resolveOpts(opts)
	out := make(chan Item, e.opts.Workers)
	if len(targets) > 1 {
		go func() {
			defer close(out)
			e.runFused(ctx, targets, ro, out)
		}()
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out <- e.localize(ctx, targets[i], i, ro)
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range targets {
			select {
			case jobs <- i:
			case <-ctx.Done():
				// Report the rest as cancelled rather than dropping
				// them silently.
				for j := i; j < len(targets); j++ {
					out <- Item{Index: j, Target: targets[j], Err: ctx.Err()}
				}
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Collect runs a batch and returns results in submission order. The error
// slice is parallel to targets; results[i] is nil exactly when errs[i] is
// non-nil. opts apply to every target.
func (e *Engine) Collect(ctx context.Context, targets []string, opts ...core.LocalizeOption) (results []*core.Result, errs []error) {
	results = make([]*core.Result, len(targets))
	errs = make([]error, len(targets))
	for item := range e.Run(ctx, targets, opts...) {
		results[item.Index] = item.Result
		errs[item.Index] = item.Err
	}
	return results, errs
}

// runFused executes one homogeneous batch as a single fused group on the
// borrowed epoch. Cache hits stream out first; every remaining distinct
// (target, options) key is measured exactly once by
// core.LocalizeBatchDeadline (duplicates within the batch coalesce onto
// the first occurrence), and measured items stream out in completion
// order. Per-target metrics match the scalar path: one request per
// submitted target, hits/misses counted at the cache, coalesced counted
// per follower.
func (e *Engine) runFused(ctx context.Context, targets []string, ro resolved, out chan<- Item) {
	start := time.Now()
	for range targets {
		e.metrics.begin()
	}
	loc := e.provider.CurrentLocalizer()
	epoch := loc.Survey.Epoch
	e.metrics.fused(len(targets))

	emit := func(item Item) {
		out <- item
		e.metrics.end()
	}

	if err := ctx.Err(); err != nil {
		for i, t := range targets {
			emit(Item{Index: i, Target: t, Epoch: epoch, Err: err})
		}
		return
	}

	key := func(target string) string {
		if ro.fp != "" {
			return target + "\x1f" + ro.fp
		}
		return target
	}

	// Cache partition plus within-batch coalescing. Non-cacheable options
	// (custom evidence sources) share nothing, exactly like the scalar
	// path: no cache read, no cache insertion, no coalescing — every
	// occurrence measures independently.
	measure := make([]string, 0, len(targets))
	followers := make([][]int, 0, len(targets)) // parallel to measure
	leader := make(map[string]int, len(targets))
	for i, t := range targets {
		if ro.cacheable {
			k := key(t)
			if e.cache != nil {
				if res, ok := e.cache.get(k, epoch); ok {
					e.metrics.hit()
					emit(Item{Index: i, Target: t, Epoch: epoch, Result: res, Cached: true, Elapsed: time.Since(start)})
					continue
				}
			}
			e.metrics.miss()
			if j, ok := leader[k]; ok {
				followers[j] = append(followers[j], i)
				e.metrics.coalesce()
				continue
			}
			leader[k] = len(measure)
		} else {
			e.metrics.miss()
		}
		measure = append(measure, t)
		followers = append(followers, []int{i})
	}
	if len(measure) == 0 {
		return
	}

	loc.LocalizeBatchDeadline(ctx, measure, e.opts.Workers, e.opts.TargetTimeout, ro.opts, func(j int, res *core.Result, err error) {
		t := measure[j]
		if err != nil {
			// Match the per-target path's error shape: cancellations and
			// per-target deadline expiries surface as "batch: <target>:
			// <ctx error>".
			for _, sentinel := range []error{context.Canceled, context.DeadlineExceeded} {
				if errors.Is(err, sentinel) {
					err = fmt.Errorf("batch: %s: %w", t, sentinel)
					break
				}
			}
		} else {
			// Once per computed result (not per follower delivery), like
			// the scalar path.
			e.metrics.observePriors(res)
			if e.cache != nil && ro.cacheable && !res.Degraded {
				// Degraded results are served but never cached: the failure
				// that degraded them is transient, and a cached entry would
				// keep answering from partial evidence long after the
				// network healed.
				e.cache.put(key(t), epoch, res)
			}
		}
		elapsed := time.Since(start)
		for _, i := range followers[j] {
			item := Item{Index: i, Target: t, Epoch: epoch, Elapsed: elapsed}
			if err != nil {
				e.metrics.fail()
				item.Err = err
			} else {
				if res.Degraded {
					e.metrics.degrade()
				}
				item.Result = res
				e.metrics.observe(elapsed)
			}
			emit(item)
		}
	})
}

// resolved carries a request's pre-resolved options plus the derived
// cache-key material, computed once per Localize/Run call.
type resolved struct {
	opts *core.LocalizeOptions // nil = defaults
	// fp is the options fingerprint ("" for defaults).
	fp string
	// cacheable is false when the options cannot be fingerprinted by
	// content (custom evidence sources); such requests bypass the LRU
	// and the flight group entirely.
	cacheable bool
}

// resolveOpts resolves functional options once. The zero-option path
// stays allocation-free.
func resolveOpts(opts []core.LocalizeOption) resolved {
	if len(opts) == 0 {
		return resolved{cacheable: true}
	}
	o := core.NewLocalizeOptions(opts...)
	return resolved{opts: &o, fp: o.Fingerprint(), cacheable: o.Cacheable()}
}

// localize is the single-target path shared by Localize and Run workers.
// It borrows the provider's current epoch once, up front, and uses that
// one snapshot for the cache lookup, the coalescing key, and the
// measurement — the request is epoch-consistent end to end even if a
// swap lands mid-flight.
func (e *Engine) localize(ctx context.Context, target string, idx int, ro resolved) Item {
	start := time.Now()
	e.metrics.begin()
	defer e.metrics.end()
	loc := e.provider.CurrentLocalizer()
	epoch := loc.Survey.Epoch
	item := Item{Index: idx, Target: target, Epoch: epoch}

	if err := ctx.Err(); err != nil {
		item.Err = err
		return item
	}

	// Options-fingerprinted keying: requests tuned differently must
	// never share a cache entry or coalesce onto one measurement, while
	// identical tunings keep the full hit/coalesce behaviour. The
	// default-options key is the bare target, so v1 traffic keys exactly
	// as before.
	key := target
	if ro.fp != "" {
		key = target + "\x1f" + ro.fp
	}

	if !ro.cacheable {
		// Un-fingerprintable options (custom evidence sources): measure
		// directly, sharing nothing.
		e.metrics.miss()
		res, err := e.measure(ctx, loc, target, ro.opts)
		if err != nil {
			e.metrics.fail()
			item.Err = err
			return item
		}
		if res.Degraded {
			e.metrics.degrade()
		}
		e.metrics.observePriors(res)
		item.Result = res
		item.Elapsed = time.Since(start)
		e.metrics.observe(item.Elapsed)
		return item
	}

	if e.cache != nil {
		if res, ok := e.cache.get(key, epoch); ok {
			e.metrics.hit()
			item.Result, item.Cached, item.Elapsed = res, true, time.Since(start)
			return item
		}
	}
	e.metrics.miss()

	// Epoch-qualified coalescing: concurrent requests for one (target,
	// options) pair coalesce only within an epoch, so a follower never
	// receives a result computed on a snapshot — or under options — it
	// did not ask for.
	flightKey := strconv.FormatUint(epoch, 36) + "\x00" + key
	res, err, shared := e.flight.do(ctx, flightKey, func() (*core.Result, error) {
		return e.measure(ctx, loc, target, ro.opts)
	})
	if shared {
		e.metrics.coalesce()
	}
	if err != nil {
		e.metrics.fail()
		item.Err = err
		return item
	}
	if !shared {
		// This caller computed the result; followers sharing it don't
		// re-count its dropped hints or conflicts.
		e.metrics.observePriors(res)
	}
	if e.cache != nil && !shared && !res.Degraded {
		// See runFused: degraded results never enter the cache.
		e.cache.put(key, epoch, res)
	}
	if res.Degraded {
		e.metrics.degrade()
	}
	item.Result = res
	item.Elapsed = time.Since(start)
	e.metrics.observe(item.Elapsed)
	return item
}

// measure runs one uncached localization on the borrowed epoch snapshot
// under the per-target deadline. Context binding happens inside the
// core request path now: LocalizeWith attaches ctx to the prober, so a
// cancelled target stops at its next measurement call instead of
// probing all remaining landmarks.
func (e *Engine) measure(ctx context.Context, loc *core.Localizer, target string, o *core.LocalizeOptions) (*core.Result, error) {
	if e.opts.TargetTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.TargetTimeout)
		defer cancel()
	}
	res, err := loc.LocalizeWith(ctx, target, o)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("batch: %s: %w", target, cerr)
		}
		return nil, err
	}
	return res, nil
}

// Peek looks up a cached result for (target, fingerprint, epoch) without
// measuring, coalescing, or counting a request. It is the cluster tier's
// peer-fetch read path: a sibling node (or the fleet router) may ask
// whether this engine already holds a result it can reuse. Entries from
// non-cacheable requests never exist (they bypass the LRU on insert), so
// Peek can never leak an un-shareable result. The lookup follows the
// cache's epoch discipline: an entry from an older epoch than asked for
// is evicted as stale, an entry from a newer one is left alone.
func (e *Engine) Peek(target, fingerprint string, epoch uint64) (*core.Result, bool) {
	if e.cache == nil {
		return nil, false
	}
	key := target
	if fingerprint != "" {
		key = target + "\x1f" + fingerprint
	}
	res, ok := e.cache.get(key, epoch)
	if ok {
		e.metrics.peerHit()
	}
	return res, ok
}

// InFlight reports how many requests the engine currently has in flight —
// the cheap accessor drain loops poll (Stats snapshots the whole latency
// window).
func (e *Engine) InFlight() int64 { return e.metrics.inFlight.Load() }

// Stats returns a snapshot of the engine's counters and latency quantiles.
func (e *Engine) Stats() Stats {
	s := e.metrics.snapshot()
	if e.cache != nil {
		s.CacheLen = e.cache.len()
		s.CacheCap = e.cache.cap
	}
	s.Workers = e.opts.Workers
	loc := e.provider.CurrentLocalizer()
	s.Epoch = loc.Survey.Epoch
	s.LandMasks = loc.LandMasks().Stats()
	return s
}

// flightGroup coalesces concurrent calls for the same key onto one
// execution (the classic singleflight shape, scoped to what the engine
// needs). Followers share the leader's result and error — except
// cancellation: a follower waits under its own context, and a leader
// whose context was cancelled does not poison healthy followers (they
// retry, one of them becoming the new leader).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *core.Result
	err  error
}

func (g *flightGroup) do(ctx context.Context, key string, fn func() (*core.Result, error)) (res *core.Result, err error, shared bool) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err(), true
			}
			if c.err != nil && (errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				// The leader was cancelled or timed out under its own
				// context; that says nothing about this caller. Loop and
				// run (or re-coalesce) under our own context instead.
				continue
			}
			return c.res, c.err, true
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		c.res, c.err = fn()

		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		return c.res, c.err, false
	}
}
