package batch_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/geo"
)

// TestOptionFingerprintedCacheKeys is the cache-key contract for the v2
// options plumbing: the same target under different options must miss
// (and re-measure), while an identical options tuple must hit without
// probing.
func TestOptionFingerprintedCacheKeys(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 2})
	ctx := context.Background()
	tgt := f.targets[5]

	base, err := eng.Localize(ctx, tgt)
	if err != nil {
		t.Fatal(err)
	}
	probed := cp.pings.Load()

	// Different options: must not serve the default-options entry.
	tuned, err := eng.Localize(ctx, tgt, core.WithoutSource(core.SourceRouter))
	if err != nil {
		t.Fatal(err)
	}
	if cp.pings.Load() == probed {
		t.Error("tuned request served from the default-options cache entry")
	}
	if len(tuned.Constraints) >= len(base.Constraints) {
		t.Errorf("router-disabled request has %d constraints, default %d — options not applied",
			len(tuned.Constraints), len(base.Constraints))
	}

	// Same options again: hit, no probes, same pointer.
	probed = cp.pings.Load()
	again, err := eng.Localize(ctx, tgt, core.WithoutSource(core.SourceRouter))
	if err != nil {
		t.Fatal(err)
	}
	if cp.pings.Load() != probed {
		t.Error("identical-options repeat re-measured")
	}
	if again != tuned {
		t.Error("identical-options repeat should share the cached *Result")
	}

	// And the default entry is still alive alongside it.
	probed = cp.pings.Load()
	if res, err := eng.Localize(ctx, tgt); err != nil || res != base {
		t.Errorf("default entry lost after tuned request (err %v, shared %v)", err, res == base)
	}
	if cp.pings.Load() != probed {
		t.Error("default-options repeat re-measured")
	}
}

// TestOptionCoalescing: concurrent identical-options requests coalesce
// onto one measurement; a concurrently running different-options request
// for the same target does not join that flight.
func TestOptionCoalescing(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober, delay: time.Millisecond}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 8, CacheSize: -1})
	ctx := context.Background()
	tgt := f.targets[6]

	const n = 6
	var wg sync.WaitGroup
	tunedResults := make([]*core.Result, n)
	var defResult *core.Result
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.Localize(ctx, tgt, core.WithMinAreaKm2(40000))
			if err != nil {
				t.Error(err)
				return
			}
			tunedResults[i] = res
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := eng.Localize(ctx, tgt)
		if err != nil {
			t.Error(err)
			return
		}
		defResult = res
	}()
	wg.Wait()

	if s := eng.Stats(); s.Coalesced == 0 {
		t.Errorf("no coalescing across %d identical-options requests (stats %+v)", n, s)
	}
	for i := 1; i < n; i++ {
		if tunedResults[i] != nil && tunedResults[0] != nil && tunedResults[i].Point != tunedResults[0].Point {
			t.Errorf("tuned request %d diverged from request 0", i)
		}
	}
	if defResult != nil && tunedResults[0] != nil && defResult.AreaKm2 == tunedResults[0].AreaKm2 {
		t.Error("default-options request appears to have joined the tuned flight (same area)")
	}
}

// TestUncacheableOptionsBypassSharing: requests with custom evidence
// sources can't be fingerprinted and must bypass both the cache and the
// flight group.
type betaSource struct{ loc geo.Point }

func (betaSource) Name() string { return "beta" }
func (b betaSource) Constraints(_ context.Context, req *Request) ([]core.Constraint, core.SourceReport, error) {
	c := core.PositiveDisk(req.PCtx.Proj, b.loc, 200, 0.5, "beta")
	return []core.Constraint{c}, core.SourceReport{Source: "beta"}, nil
}

// Request aliases core.Request so the source above reads naturally.
type Request = core.Request

func TestUncacheableOptionsBypassSharing(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 2})
	ctx := context.Background()
	tgt := f.targets[7]
	src := betaSource{loc: geo.Pt(40, -75)}

	if _, err := eng.Localize(ctx, tgt, core.WithEvidenceSource(src)); err != nil {
		t.Fatal(err)
	}
	probed := cp.pings.Load()
	if _, err := eng.Localize(ctx, tgt, core.WithEvidenceSource(src)); err != nil {
		t.Fatal(err)
	}
	if cp.pings.Load() == probed {
		t.Error("custom-source request served from cache; must re-measure every time")
	}
}

// TestUncacheableSkipsCacheBothDirections pins the non-cacheable LRU
// contract in both directions and on both engine paths: custom-source
// requests must never READ a cache entry (every occurrence re-measures,
// even duplicates inside one fused batch) and must never INSERT one (the
// LRU stays empty, so they can't poison later cacheable traffic). The
// deterministic simulator makes the probe arithmetic exact: localizing
// one target always issues the same number of pings, so N occurrences
// must cost exactly N units.
func TestUncacheableSkipsCacheBothDirections(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 4})
	ctx := context.Background()
	tgt := f.targets[8]
	src := betaSource{loc: geo.Pt(40, -75)}

	// Calibrate the per-localization probe cost with one scalar call.
	if _, err := eng.Localize(ctx, tgt, core.WithEvidenceSource(src)); err != nil {
		t.Fatal(err)
	}
	unit := cp.pings.Load()
	if unit == 0 {
		t.Fatal("calibration call issued no probes")
	}
	if n := eng.Stats().CacheLen; n != 0 {
		t.Fatalf("scalar custom-source request inserted a cache entry (len %d)", n)
	}

	// Fused path: a multi-target Run with duplicates. No read (the scalar
	// call's result must not be served), no within-batch coalescing, no
	// insertion afterwards — three occurrences, exactly three measurements.
	before := cp.pings.Load()
	_, errs := eng.Collect(ctx, []string{tgt, tgt, tgt}, core.WithEvidenceSource(src))
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := cp.pings.Load() - before; got != 3*unit {
		t.Errorf("3 custom-source occurrences issued %d probes, want exactly %d (3 × %d)", got, 3*unit, unit)
	}
	s := eng.Stats()
	if s.CacheLen != 0 {
		t.Errorf("custom-source batch inserted %d cache entries", s.CacheLen)
	}
	if s.CacheHits != 0 || s.Coalesced != 0 {
		t.Errorf("custom-source traffic shared results: %d hits, %d coalesced", s.CacheHits, s.Coalesced)
	}

	// The skip is scoped to non-cacheable options: default traffic on the
	// same engine still caches normally.
	if _, err := eng.Localize(ctx, tgt); err != nil {
		t.Fatal(err)
	}
	before = cp.pings.Load()
	if _, err := eng.Localize(ctx, tgt); err != nil {
		t.Fatal(err)
	}
	if cp.pings.Load() != before {
		t.Error("cacheable repeat re-measured — default caching broken alongside the skip")
	}
	if n := eng.Stats().CacheLen; n != 1 {
		t.Errorf("cache length %d after one cacheable target, want 1", n)
	}
}

// TestMixedOptionsAcrossSwap drives concurrent mixed-option requests for
// overlapping targets across a survey hot swap, asserting zero errors
// and that every result matches a sequential localization under the
// same (epoch, options) pair. Run under -race in CI's soak step.
func TestMixedOptionsAcrossSwap(t *testing.T) {
	f := sharedFixture(t)
	locOld := core.NewLocalizer(f.prober, f.survey, core.Config{})
	next, _, err := core.RebuildSurvey(f.survey, f.survey.RTT, make([]bool, f.survey.N()), 1)
	if err != nil {
		t.Fatal(err)
	}
	locNew := core.NewLocalizer(f.prober, next, core.Config{})
	prov := &swapProvider{loc: locOld}
	eng := batch.NewWithProvider(prov, batch.Options{Workers: 8})
	ctx := context.Background()

	optionSets := [][]core.LocalizeOption{
		nil,
		{core.WithoutSource(core.SourceRouter)},
		{core.WithMinAreaKm2(40000)},
		{core.WithExplain()},
	}
	// Sequential ground truth per (epoch, optionSet, target).
	truth := make(map[int]map[int]map[string]*core.Result)
	for ei, l := range []*core.Localizer{locOld, locNew} {
		truth[ei] = make(map[int]map[string]*core.Result)
		for oi, opts := range optionSets {
			truth[ei][oi] = make(map[string]*core.Result)
			for _, tgt := range f.targets[:8] {
				res, err := l.LocalizeContext(ctx, tgt, opts...)
				if err != nil {
					t.Fatal(err)
				}
				truth[ei][oi][tgt] = res
			}
		}
	}

	var wg sync.WaitGroup
	swapped := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		prov.publish(locNew)
		close(swapped)
	}()
	const rounds = 6
	for r := 0; r < rounds; r++ {
		for oi := range optionSets {
			for _, tgt := range f.targets[:8] {
				wg.Add(1)
				go func(oi int, tgt string) {
					defer wg.Done()
					item := eng.LocalizeItem(ctx, tgt, optionSets[oi]...)
					if item.Err != nil {
						t.Errorf("opts %d %s: %v", oi, tgt, item.Err)
						return
					}
					want := truth[int(item.Epoch)][oi][tgt]
					if item.Result.Point != want.Point || item.Result.AreaKm2 != want.AreaKm2 {
						t.Errorf("opts %d %s epoch %d: point %v != sequential %v",
							oi, tgt, item.Epoch, item.Result.Point, want.Point)
					}
					if oi == 3 && item.Result.Provenance == nil {
						t.Errorf("%s: explain result served without provenance", tgt)
					}
					if oi == 0 && item.Result.Provenance != nil {
						t.Errorf("%s: default result served with provenance (cross-option cache leak)", tgt)
					}
				}(oi, tgt)
			}
		}
	}
	wg.Wait()
	<-swapped
	if s := eng.Stats(); s.Epoch != 1 {
		t.Errorf("final epoch %d, want 1", s.Epoch)
	}
}
