package batch

import (
	"container/list"
	"sync"
	"time"

	"octant/internal/core"
)

// lruCache is a mutex-guarded LRU of localization results keyed by target
// address, with optional entry TTL. Results are cached by pointer — they
// are never mutated after Localize returns, so sharing is safe.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	order *list.List // front = most recent
	byKey map[string]*list.Element
}

type lruEntry struct {
	key     string
	res     *core.Result
	created time.Time
}

func newLRU(capacity int, ttl time.Duration) *lruCache {
	return &lruCache{
		cap:   capacity,
		ttl:   ttl,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*lruEntry)
	if c.ttl > 0 && time.Since(ent.created) > c.ttl {
		c.order.Remove(el)
		delete(c.byKey, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return ent.res, true
}

func (c *lruCache) put(key string, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*lruEntry)
		ent.res, ent.created = res, time.Now()
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, res: res, created: time.Now()})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
