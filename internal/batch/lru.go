package batch

import (
	"container/list"
	"sync"
	"time"

	"octant/internal/core"
)

// lruCache is a mutex-guarded LRU of localization results keyed by target
// address (plus the request's options fingerprint when one is set — the
// engine composes the key), with optional entry TTL. Results are cached
// by pointer — they are never mutated after Localize returns, so sharing
// is safe.
//
// Each entry remembers the survey epoch it was computed under. A lookup
// for a different epoch is a miss that also evicts the stale entry: after
// a survey hot-swap every cached result from the superseded calibration
// invalidates lazily on first touch, without a stop-the-world flush.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	order *list.List // front = most recent
	byKey map[string]*list.Element
}

type lruEntry struct {
	key     string
	epoch   uint64
	res     *core.Result
	created time.Time
}

func newLRU(capacity int, ttl time.Duration) *lruCache {
	return &lruCache{
		cap:   capacity,
		ttl:   ttl,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string, epoch uint64) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*lruEntry)
	if ent.epoch > epoch {
		// The entry is from a newer epoch than this borrower's snapshot —
		// a straggler that started before a swap. Miss without evicting:
		// the entry is exactly what current-epoch requests want.
		return nil, false
	}
	if ent.epoch < epoch || (c.ttl > 0 && time.Since(ent.created) > c.ttl) {
		c.order.Remove(el)
		delete(c.byKey, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return ent.res, true
}

func (c *lruCache) put(key string, epoch uint64, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*lruEntry)
		if ent.epoch > epoch {
			// Never let a straggler's superseded-epoch result clobber a
			// fresher one.
			return
		}
		ent.res, ent.epoch, ent.created = res, epoch, time.Now()
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, epoch: epoch, res: res, created: time.Now()})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
