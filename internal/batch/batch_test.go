package batch_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// fixture builds one simulated world with the first nTargets hosts held
// out as targets and the rest surveyed as landmarks.
type fixture struct {
	prober  probe.Prober
	survey  *core.Survey
	targets []string
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

func sharedFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		world := netsim.NewWorld(netsim.Config{Seed: 7})
		prober := probe.NewSimProber(world)
		hosts := world.HostNodes()
		const nTargets = 32
		var landmarks []core.Landmark
		targets := make([]string, 0, nTargets)
		for i, h := range hosts {
			if i < nTargets {
				targets = append(targets, h.Name)
				continue
			}
			landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
		}
		survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{UseHeights: true})
		if err != nil {
			fixErr = err
			return
		}
		fix = fixture{prober: prober, survey: survey, targets: targets}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// TestEngineMatchesSequential is the concurrency-correctness gate: 32
// simulated targets through an 8-worker engine must produce exactly the
// point estimates sequential Localize produces (the sim world is
// deterministic, so any divergence is a shared-state bug).
func TestEngineMatchesSequential(t *testing.T) {
	f := sharedFixture(t)
	loc := core.NewLocalizer(f.prober, f.survey, core.Config{})

	want := make([]*core.Result, len(f.targets))
	for i, tgt := range f.targets {
		res, err := loc.Localize(tgt)
		if err != nil {
			t.Fatalf("sequential %s: %v", tgt, err)
		}
		want[i] = res
	}

	eng := batch.New(loc, batch.Options{Workers: 8})
	got, errs := eng.Collect(context.Background(), f.targets)
	for i, tgt := range f.targets {
		if errs[i] != nil {
			t.Fatalf("batch %s: %v", tgt, errs[i])
		}
		if got[i].Point != want[i].Point {
			t.Errorf("%s: batch point %v != sequential %v", tgt, got[i].Point, want[i].Point)
		}
		if got[i].AreaKm2 != want[i].AreaKm2 {
			t.Errorf("%s: batch area %v != sequential %v", tgt, got[i].AreaKm2, want[i].AreaKm2)
		}
	}
}

func TestRunStreamsAllTargetsWithIndexes(t *testing.T) {
	f := sharedFixture(t)
	loc := core.NewLocalizer(f.prober, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 4})

	seen := make(map[int]bool)
	for item := range eng.Run(context.Background(), f.targets[:8]) {
		if item.Err != nil {
			t.Fatalf("%s: %v", item.Target, item.Err)
		}
		if item.Target != f.targets[item.Index] {
			t.Errorf("index %d reports target %q, want %q", item.Index, item.Target, f.targets[item.Index])
		}
		if seen[item.Index] {
			t.Errorf("index %d delivered twice", item.Index)
		}
		seen[item.Index] = true
	}
	if len(seen) != 8 {
		t.Errorf("delivered %d items, want 8", len(seen))
	}
}

// countingProber counts Ping calls so tests can assert how many real
// measurements happened beneath the cache and the flight group.
type countingProber struct {
	probe.Prober
	pings atomic.Int64
	delay time.Duration
}

func (c *countingProber) Ping(src, dst string, n int) ([]float64, error) {
	c.pings.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return c.Prober.Ping(src, dst, n)
}

func TestCacheServesRepeatsWithoutProbing(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 2})

	first, err := eng.Localize(context.Background(), f.targets[0])
	if err != nil {
		t.Fatal(err)
	}
	probed := cp.pings.Load()
	if probed == 0 {
		t.Fatal("first localization issued no probes")
	}
	second, err := eng.Localize(context.Background(), f.targets[0])
	if err != nil {
		t.Fatal(err)
	}
	if cp.pings.Load() != probed {
		t.Errorf("cached repeat issued %d extra probes", cp.pings.Load()-probed)
	}
	if second != first {
		t.Error("cache should return the same *Result")
	}
	s := eng.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 1 || s.Requests != 2 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 2 requests", s)
	}
	if s.HitRate != 0.5 {
		t.Errorf("hit rate %v, want 0.5", s.HitRate)
	}
}

func TestCoalescingDeduplicatesConcurrentTargets(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober, delay: time.Millisecond}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	// Cache disabled so every request reaches the flight group.
	eng := batch.New(loc, batch.Options{Workers: 8, CacheSize: -1})

	const n = 8
	var wg sync.WaitGroup
	results := make([]*core.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.Localize(context.Background(), f.targets[1])
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	s := eng.Stats()
	if s.Coalesced == 0 {
		t.Errorf("no coalescing across %d concurrent identical requests (stats %+v)", n, s)
	}
	for i := 1; i < n; i++ {
		if results[i] != nil && results[0] != nil && results[i].Point != results[0].Point {
			t.Errorf("request %d got a different point than request 0", i)
		}
	}
}

// TestCancelledLeaderDoesNotPoisonFollowers: when the goroutine that is
// actually measuring a target has its context cancelled, a healthy
// concurrent request for the same target must still succeed (by retrying
// as the new leader), not inherit the cancellation error.
func TestCancelledLeaderDoesNotPoisonFollowers(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober, delay: 2 * time.Millisecond}
	// Serialized measurement keeps the leader mid-measurement for the
	// whole ~86ms the sleeps below assume; the engine-level flight group
	// under test is independent of how probes are scheduled.
	loc := core.NewLocalizer(cp, f.survey, core.Config{MeasureWorkers: -1})
	eng := batch.New(loc, batch.Options{Workers: 4, CacheSize: -1})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := eng.Localize(leaderCtx, f.targets[3])
		leaderDone <- err
	}()
	// Give the leader time to enter the flight group, then join as a
	// healthy follower and cancel the leader mid-measurement.
	time.Sleep(5 * time.Millisecond)
	followerDone := make(chan error, 1)
	go func() {
		_, err := eng.Localize(context.Background(), f.targets[3])
		followerDone <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancelLeader()

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Errorf("leader err = %v, want context.Canceled", err)
	}
	if err := <-followerDone; err != nil {
		t.Errorf("healthy follower err = %v, want success", err)
	}
}

func TestContextCancelAbortsBatch(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober, delay: 2 * time.Millisecond}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 2, CacheSize: -1})

	ctx, cancel := context.WithCancel(context.Background())
	items := eng.Run(ctx, f.targets)
	<-items // let the batch get going
	cancel()

	var cancelled int
	for item := range items {
		if errors.Is(item.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("cancel produced no context.Canceled items")
	}
}

func TestTargetTimeout(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober, delay: 5 * time.Millisecond}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 1, CacheSize: -1, TargetTimeout: time.Millisecond})

	_, err := eng.Localize(context.Background(), f.targets[2])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if s := eng.Stats(); s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
}

func TestLRUEviction(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 1, CacheSize: 2})
	ctx := context.Background()

	for _, tgt := range []string{f.targets[0], f.targets[1], f.targets[2]} {
		if _, err := eng.Localize(ctx, tgt); err != nil {
			t.Fatal(err)
		}
	}
	if n := eng.Stats().CacheLen; n != 2 {
		t.Errorf("cache length %d, want 2 after eviction", n)
	}
	before := cp.pings.Load()
	// targets[0] was evicted (LRU), so this must re-probe.
	if _, err := eng.Localize(ctx, f.targets[0]); err != nil {
		t.Fatal(err)
	}
	if cp.pings.Load() == before {
		t.Error("evicted entry served without probing")
	}
	// targets[2] is fresh and must not re-probe.
	before = cp.pings.Load()
	if _, err := eng.Localize(ctx, f.targets[2]); err != nil {
		t.Fatal(err)
	}
	if cp.pings.Load() != before {
		t.Error("fresh entry re-probed")
	}
}

// swapProvider is a mutable Provider standing in for the lifecycle
// manager: tests flip the published localizer to simulate epoch swaps.
type swapProvider struct {
	mu  sync.Mutex
	loc *core.Localizer
}

func (p *swapProvider) CurrentLocalizer() *core.Localizer {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loc
}

func (p *swapProvider) publish(loc *core.Localizer) {
	p.mu.Lock()
	p.loc = loc
	p.mu.Unlock()
}

// TestEpochSwapInvalidatesCache: a cached result from epoch 0 must not be
// served once the provider publishes epoch 1 — the request re-measures
// under the new snapshot and the item reports the new epoch.
func TestEpochSwapInvalidatesCache(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober}
	prov := &swapProvider{loc: core.NewLocalizer(cp, f.survey, core.Config{})}
	eng := batch.NewWithProvider(prov, batch.Options{Workers: 2})
	ctx := context.Background()

	item := eng.LocalizeItem(ctx, f.targets[0])
	if item.Err != nil {
		t.Fatal(item.Err)
	}
	if item.Epoch != 0 || item.Cached {
		t.Fatalf("first item = epoch %d cached %v", item.Epoch, item.Cached)
	}
	// Same epoch: served from cache, no probes.
	before := cp.pings.Load()
	item = eng.LocalizeItem(ctx, f.targets[0])
	if !item.Cached || cp.pings.Load() != before {
		t.Fatalf("same-epoch repeat not cached (cached=%v)", item.Cached)
	}

	// Publish epoch 1 over the same measurements: the stale entry must
	// invalidate even though the target did not change.
	next, _, err := core.RebuildSurvey(f.survey, f.survey.RTT, make([]bool, f.survey.N()), 1)
	if err != nil {
		t.Fatal(err)
	}
	prov.publish(core.NewLocalizer(cp, next, core.Config{}))

	before = cp.pings.Load()
	item = eng.LocalizeItem(ctx, f.targets[0])
	if item.Err != nil {
		t.Fatal(item.Err)
	}
	if item.Cached || item.Epoch != 1 {
		t.Errorf("post-swap item = epoch %d cached %v, want fresh epoch 1", item.Epoch, item.Cached)
	}
	if cp.pings.Load() == before {
		t.Error("post-swap request served without re-measuring")
	}
	if s := eng.Stats(); s.Epoch != 1 {
		t.Errorf("stats epoch = %d, want 1", s.Epoch)
	}

	// And the new epoch's result is now cached in the old entry's place.
	item = eng.LocalizeItem(ctx, f.targets[0])
	if !item.Cached || item.Epoch != 1 {
		t.Errorf("new-epoch repeat = epoch %d cached %v", item.Epoch, item.Cached)
	}
}

// TestStragglerDoesNotClobberFreshCache: a request that borrowed the
// superseded epoch must neither evict nor overwrite a current-epoch
// cache entry when it finally completes.
func TestStragglerDoesNotClobberFreshCache(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober}
	locOld := core.NewLocalizer(cp, f.survey, core.Config{})
	next, _, err := core.RebuildSurvey(f.survey, f.survey.RTT, make([]bool, f.survey.N()), 1)
	if err != nil {
		t.Fatal(err)
	}
	locNew := core.NewLocalizer(cp, next, core.Config{})
	prov := &swapProvider{loc: locOld}
	eng := batch.NewWithProvider(prov, batch.Options{Workers: 2})
	ctx := context.Background()
	tgt := f.targets[4]

	// Epoch 1 result lands in the cache first…
	prov.publish(locNew)
	if item := eng.LocalizeItem(ctx, tgt); item.Err != nil || item.Epoch != 1 {
		t.Fatalf("fresh item: %+v", item)
	}
	// …then a straggler still holding epoch 0 measures the same target.
	prov.publish(locOld)
	straggler := eng.LocalizeItem(ctx, tgt)
	if straggler.Err != nil || straggler.Epoch != 0 || straggler.Cached {
		t.Fatalf("straggler item: epoch %d cached %v err %v", straggler.Epoch, straggler.Cached, straggler.Err)
	}
	// The epoch-1 entry must have survived both the straggler's lookup
	// and its completion: a current-epoch request is still a cache hit.
	prov.publish(locNew)
	before := cp.pings.Load()
	item := eng.LocalizeItem(ctx, tgt)
	if item.Err != nil {
		t.Fatal(item.Err)
	}
	if !item.Cached || item.Epoch != 1 || cp.pings.Load() != before {
		t.Errorf("fresh entry clobbered by straggler: cached=%v epoch=%d probes+%d",
			item.Cached, item.Epoch, cp.pings.Load()-before)
	}
}

// TestFusedRunCachesAndCoalesces exercises the fused Run path's sharing
// behaviour end to end: duplicates inside one batch measure once and
// count as coalesced, measured results land in the LRU, a repeat batch is
// served entirely from cache (still counted as a fused group), and the
// fused counters report exactly the submitted traffic.
func TestFusedRunCachesAndCoalesces(t *testing.T) {
	f := sharedFixture(t)
	cp := &countingProber{Prober: f.prober}
	loc := core.NewLocalizer(cp, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 4})
	ctx := context.Background()

	// 6 submissions over 4 distinct targets: 4 measurements, 2 followers.
	targets := []string{
		f.targets[10], f.targets[11], f.targets[10],
		f.targets[12], f.targets[13], f.targets[12],
	}
	results, errs := eng.Collect(ctx, targets)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", targets[i], err)
		}
	}
	if results[2] != results[0] || results[5] != results[3] {
		t.Error("within-batch duplicates should share the leader's *Result")
	}
	s := eng.Stats()
	if s.FusedGroups != 1 || s.FusedTargets != uint64(len(targets)) {
		t.Errorf("fused counters = %d groups / %d targets, want 1 / %d", s.FusedGroups, s.FusedTargets, len(targets))
	}
	if s.Coalesced != 2 {
		t.Errorf("coalesced = %d, want 2 (one follower per duplicated target)", s.Coalesced)
	}
	if s.CacheLen != 4 {
		t.Errorf("cache length %d after fused batch, want 4", s.CacheLen)
	}

	// Repeat batch: all hits, no probes, still one more fused group.
	before := cp.pings.Load()
	_, errs = eng.Collect(ctx, targets)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if cp.pings.Load() != before {
		t.Error("repeat fused batch re-measured cached targets")
	}
	s = eng.Stats()
	if s.FusedGroups != 2 || s.FusedTargets != uint64(2*len(targets)) {
		t.Errorf("fused counters after repeat = %d groups / %d targets", s.FusedGroups, s.FusedTargets)
	}
	if s.CacheHits != uint64(len(targets)) {
		t.Errorf("cache hits = %d, want %d", s.CacheHits, len(targets))
	}

	// A generous per-target timeout keeps the fused path (deadlines apply
	// per target inside the group) and the batch still succeeds.
	slow := batch.New(loc, batch.Options{Workers: 2, TargetTimeout: time.Minute})
	if _, errs := slow.Collect(ctx, targets[:2]); errs[0] != nil || errs[1] != nil {
		t.Fatalf("timeout engine errs: %v", errs)
	}
	if s := slow.Stats(); s.FusedGroups != 1 {
		t.Errorf("TargetTimeout run skipped the fused path (%d groups)", s.FusedGroups)
	}
	// And an unmeetable one surfaces per-target deadline errors through
	// the fused group, matching the scalar path's error shape.
	tight := batch.New(loc, batch.Options{Workers: 2, CacheSize: -1, TargetTimeout: time.Nanosecond})
	_, terrs := tight.Collect(ctx, targets[:2])
	for i, err := range terrs {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("tight-timeout err[%d] = %v, want deadline exceeded", i, err)
		}
	}
}

func TestUnknownTargetReportsError(t *testing.T) {
	f := sharedFixture(t)
	loc := core.NewLocalizer(f.prober, f.survey, core.Config{})
	eng := batch.New(loc, batch.Options{Workers: 2})
	_, errs := eng.Collect(context.Background(), []string{"no.such.host"})
	if errs[0] == nil {
		t.Error("unknown target should error")
	}
	if s := eng.Stats(); s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
}
