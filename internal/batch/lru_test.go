package batch

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"octant/internal/core"
)

// resAt mints a result whose Weight encodes the epoch it was "computed"
// under, so epoch-discipline violations are visible in the value itself.
func resAt(epoch uint64) *core.Result {
	return &core.Result{Weight: float64(epoch)}
}

// TestLRUEpochDiscipline pins the cache's per-entry epoch rules in both
// directions: an entry from a NEWER epoch than the requester's snapshot
// is a miss that leaves the entry alone (it is exactly what current
// requests want), an entry from an OLDER epoch is a miss that evicts the
// stale entry, and a put can never clobber a fresher entry with a
// straggler's superseded result.
func TestLRUEpochDiscipline(t *testing.T) {
	c := newLRU(8, 0)
	c.put("k", 1, resAt(1))

	if _, ok := c.get("k", 0); ok {
		t.Fatal("epoch-0 borrower hit an epoch-1 entry")
	}
	if c.len() != 1 {
		t.Fatalf("newer entry was evicted by an older request (len %d)", c.len())
	}
	if res, ok := c.get("k", 1); !ok || res.Weight != 1 {
		t.Fatalf("same-epoch get = %v, %v; want the epoch-1 result", res, ok)
	}
	if _, ok := c.get("k", 2); ok {
		t.Fatal("epoch-2 borrower hit a stale epoch-1 entry")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry not evicted on first touch (len %d)", c.len())
	}

	c.put("k", 2, resAt(2))
	c.put("k", 1, resAt(1)) // straggler from before the swap
	if res, ok := c.get("k", 2); !ok || res.Weight != 2 {
		t.Fatalf("straggler clobbered the fresh entry: get = %v, %v", res, ok)
	}
}

func TestLRUTTLExpiry(t *testing.T) {
	c := newLRU(8, 10*time.Millisecond)
	c.put("k", 0, resAt(0))
	if _, ok := c.get("k", 0); !ok {
		t.Fatal("fresh entry missed")
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := c.get("k", 0); ok {
		t.Fatal("expired entry served")
	}
	if c.len() != 0 {
		t.Fatalf("expired entry not evicted (len %d)", c.len())
	}
}

// TestLRUConcurrentMixedEpochs hammers one cache from readers and
// writers pinned to different epochs — the live shape during a rolling
// survey swap, when stragglers on the old snapshot and requests on the
// new one share the LRU. The invariant: a hit observed at epoch e is
// always a result computed at epoch e, no matter how the interleaving
// falls. Run under -race this is also the cache's data-race test.
func TestLRUConcurrentMixedEpochs(t *testing.T) {
	const (
		workers = 8
		iters   = 2000
		nKeys   = 16
		maxE    = 3
	)
	c := newLRU(nKeys/2, 0) // undersized on purpose: eviction churn included
	var wg sync.WaitGroup
	var violations sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				// Fingerprint-qualified and bare keys mixed, as the engine
				// composes them.
				key := fmt.Sprintf("target-%d", rng.Intn(nKeys))
				if rng.Intn(2) == 0 {
					key += "\x1f" + "fpA"
				}
				epoch := uint64(rng.Intn(maxE + 1))
				if rng.Intn(2) == 0 {
					c.put(key, epoch, resAt(epoch))
					continue
				}
				if res, ok := c.get(key, epoch); ok && res.Weight != float64(epoch) {
					violations.Store(fmt.Sprintf("epoch %d served weight %v", epoch, res.Weight), true)
				}
			}
		}(w)
	}
	wg.Wait()
	violations.Range(func(k, _ any) bool {
		t.Errorf("cross-epoch hit: %s", k)
		return true
	})
	if c.len() > nKeys/2 {
		t.Errorf("cache over capacity after churn: %d > %d", c.len(), nKeys/2)
	}
	// Whatever survived, a max-epoch reader can only ever see max-epoch
	// results (older entries evict on touch).
	for i := 0; i < nKeys; i++ {
		if res, ok := c.get(fmt.Sprintf("target-%d", i), maxE); ok && res.Weight != maxE {
			t.Errorf("target-%d: max-epoch get returned epoch-%v result", i, res.Weight)
		}
	}
}

// TestFlightKeyUniqueness exercises the singleflight group with keys
// composed exactly as the engine does (epoch + target + options
// fingerprint): concurrent calls for one target under DIFFERENT
// fingerprints must run independently — coalescing them would hand a
// caller a result under options it did not ask for — while calls under
// the SAME fingerprint coalesce onto one measurement.
func TestFlightKeyUniqueness(t *testing.T) {
	g := flightGroup{calls: make(map[string]*flightCall)}
	flightKey := func(epoch uint64, target, fp string) string {
		key := target
		if fp != "" {
			key += "\x1f" + fp
		}
		return strconv.FormatUint(epoch, 36) + "\x00" + key
	}

	// Distinct fingerprints (and distinct epochs) for one target: every
	// leader must run its own fn. Leaders block on gate so the calls are
	// genuinely concurrent — coalescing would deadlock-free but report
	// shared=true and return another key's result.
	keys := []string{
		flightKey(0, "host", ""),
		flightKey(0, "host", "fpA"),
		flightKey(0, "host", "fpB"),
		flightKey(1, "host", "fpA"),
	}
	gate := make(chan struct{})
	started := make(chan int, len(keys))
	results := make([]*core.Result, len(keys))
	shareds := make([]bool, len(keys))
	var wg sync.WaitGroup
	for i, key := range keys {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			want := resAt(uint64(i))
			results[i], _, shareds[i] = g.do(context.Background(), key, func() (*core.Result, error) {
				started <- i
				<-gate
				return want, nil
			})
		}(i, key)
	}
	// All four fns must start before any finishes — proof none coalesced.
	for range keys {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("calls with distinct fingerprint keys coalesced: not all leaders started")
		}
	}
	close(gate)
	wg.Wait()
	for i := range keys {
		if shareds[i] {
			t.Errorf("call %d reported shared=true under a unique key", i)
		}
		if results[i] == nil || results[i].Weight != float64(i) {
			t.Errorf("call %d got result %+v, want its own (weight %d)", i, results[i], i)
		}
	}

	// Control: the SAME key does coalesce — one leader, one follower, one
	// shared result.
	var ran int
	gate2 := make(chan struct{})
	leaderIn := make(chan struct{})
	key := flightKey(2, "host", "fpA")
	var follower *core.Result
	var followerShared bool
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		_, _, _ = g.do(context.Background(), key, func() (*core.Result, error) {
			ran++
			close(leaderIn)
			<-gate2
			return resAt(99), nil
		})
	}()
	<-leaderIn
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		follower, _, followerShared = g.do(context.Background(), key, func() (*core.Result, error) {
			ran++
			return resAt(100), nil
		})
	}()
	// Give the follower a moment to park on the leader's call, then
	// release.
	time.Sleep(10 * time.Millisecond)
	close(gate2)
	wg2.Wait()
	if ran != 1 {
		t.Fatalf("same-key concurrent calls ran %d fns, want 1", ran)
	}
	if !followerShared || follower == nil || follower.Weight != 99 {
		t.Fatalf("follower got %+v (shared=%v), want the leader's result shared", follower, followerShared)
	}
}
