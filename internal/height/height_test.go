package height

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"octant/internal/geo"
)

func TestQueuingDelay(t *testing.T) {
	a := geo.Pt(40, -75)
	b := geo.Pt(41, -76)
	base := geo.DistanceToMinLatencyMs(a.DistanceKm(b))
	if got := QueuingDelay(base+3, a, b); math.Abs(got-3) > 1e-9 {
		t.Errorf("QueuingDelay = %v, want 3", got)
	}
	// Faster-than-light measurement clamps to 0, never negative.
	if got := QueuingDelay(base-1, a, b); got != 0 {
		t.Errorf("negative queuing delay should clamp: %v", got)
	}
}

func TestSolveLandmarksPaperExample(t *testing.T) {
	// §2.2's exact 3-landmark system: a′=1, b′=2, c′=3 gives
	// q_ab=3, q_ac=4, q_bc=5.
	q := [][]float64{
		{0, 3, 4},
		{3, 0, 5},
		{4, 5, 0},
	}
	h, err := SolveLandmarks(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-9 {
			t.Errorf("h[%d] = %v, want %v", i, h[i], want[i])
		}
	}
}

func TestSolveLandmarksMatchesQR(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		n := 3 + rng.IntN(10)
		truth := make([]float64, n)
		for i := range truth {
			truth[i] = rng.Float64() * 4
		}
		q := make([][]float64, n)
		for i := range q {
			q[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := truth[i] + truth[j] + (rng.Float64()-0.5)*0.2
				q[i][j], q[j][i] = v, v
			}
		}
		closed, err1 := SolveLandmarks(q)
		qr, err2 := SolveLandmarksQR(q)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range closed {
			if math.Abs(closed[i]-qr[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveLandmarksRecoversTruth(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 0))
	n := 20
	truth := make([]float64, n)
	for i := range truth {
		truth[i] = rng.Float64() * 3
	}
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := truth[i] + truth[j] + (rng.Float64()-0.5)*0.4 // noisy
			q[i][j], q[j][i] = v, v
		}
	}
	h, err := SolveLandmarks(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(h[i]-truth[i]) > 0.3 {
			t.Errorf("h[%d] = %.3f, truth %.3f", i, h[i], truth[i])
		}
	}
}

func TestSolveLandmarksValidation(t *testing.T) {
	if _, err := SolveLandmarks([][]float64{{0, 1}, {1, 0}}); err == nil {
		t.Error("n=2 should error")
	}
	if _, err := SolveLandmarks([][]float64{{0, 1}, {1, 0}, {1}}); err == nil {
		t.Error("ragged q should error")
	}
	if _, err := SolveLandmarksQR([][]float64{{0}}); err == nil {
		t.Error("QR n=1 should error")
	}
	// Heights never negative even with absurd inputs.
	q := [][]float64{
		{0, 0, 10},
		{0, 0, 0},
		{10, 0, 0},
	}
	h, err := SolveLandmarks(q)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range h {
		if v < 0 {
			t.Errorf("h[%d] = %v negative", i, v)
		}
	}
}

func TestSolveTargetRecoversPosition(t *testing.T) {
	// Synthetic: landmarks on a wide ring, exact distance-based RTTs plus
	// known heights. Nelder–Mead should land near the true position.
	landmarks := []geo.Point{
		geo.Pt(40.7, -74.0), geo.Pt(41.9, -87.6), geo.Pt(33.7, -84.4),
		geo.Pt(39.7, -105.0), geo.Pt(47.6, -122.3), geo.Pt(34.0, -118.2),
		geo.Pt(29.8, -95.4), geo.Pt(44.98, -93.3),
	}
	heights := []float64{1, 0.5, 2, 1.5, 0.8, 1.2, 0.3, 2.2}
	truth := geo.Pt(38.63, -90.2) // St. Louis
	const tHeight = 1.7
	rtts := make([]float64, len(landmarks))
	for i, l := range landmarks {
		rtts[i] = heights[i] + tHeight + geo.DistanceToMinLatencyMs(l.DistanceKm(truth))
	}
	res, err := SolveTarget(landmarks, heights, rtts)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Coarse.DistanceKm(truth); d > 150 {
		t.Errorf("coarse estimate %.0f km from truth (%v vs %v)", d, res.Coarse, truth)
	}
	if math.Abs(res.HeightMs-tHeight) > 0.5 {
		t.Errorf("target height %.2f, want %.2f", res.HeightMs, tHeight)
	}
	if res.Residual > 0.5 {
		t.Errorf("residual %.3f too high for noiseless input", res.Residual)
	}
}

func TestSolveTargetValidation(t *testing.T) {
	ls := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)}
	if _, err := SolveTarget(ls, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("n=2 should error")
	}
	ls = append(ls, geo.Pt(2, 2))
	if _, err := SolveTarget(ls, []float64{0}, []float64{1, 1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestAdjustRTT(t *testing.T) {
	if got := AdjustRTT(10, 2, 3); got != 5 {
		t.Errorf("AdjustRTT = %v", got)
	}
	if got := AdjustRTT(4, 3, 3); got != 0 {
		t.Errorf("over-adjustment should clamp to 0, got %v", got)
	}
}
