// Package height implements the queuing-delay "heights" of §2.2 of the
// paper: the inelastic per-host component of end-to-end latency. Landmark
// heights come from a least-squares solve over pairwise queuing-delay
// residuals (the paper's 3-landmark linear system, generalized to n); the
// target's height and coarse coordinates come from a nonlinear residual
// minimization (Nelder–Mead), mirroring the paper's note that the computed
// coordinates are "relatively high error and not used in the later stages"
// — Octant uses the heights to deflate latency measurements, not the
// coordinates.
package height

import (
	"fmt"
	"math"
	"sort"

	"octant/internal/geo"
	"octant/internal/linalg"
)

// QueuingDelay returns q = measured RTT − great-circle transmission
// estimate between two known positions, clamped at 0. This is the
// [a,b] − (a,b) residual of §2.2 (it absorbs route inflation as well as
// queuing — footnote 1 of the paper).
func QueuingDelay(rttMs float64, a, b geo.Point) float64 {
	return QueuingDelayK(rttMs, 1, a, b)
}

// QueuingDelayK is QueuingDelay with a calibrated transmission model:
// transmission ≈ κ × great-circle fiber time, where κ ≥ 1 is the typical
// route inflation (EstimateInflation). Footnote 1 of the paper observes
// that the raw residual "might embody some additional transmission delays
// stemming from the use of indirect paths"; removing the typical inflation
// before the height solve keeps the distance-proportional part of the
// residual out of the per-node heights.
func QueuingDelayK(rttMs, kappa float64, a, b geo.Point) float64 {
	q := rttMs - kappa*geo.DistanceToMinLatencyMs(a.DistanceKm(b))
	if q < 0 {
		return 0
	}
	return q
}

// EstimateInflation returns the median ratio of measured RTT to
// great-circle fiber RTT over all landmark pairs further apart than
// minDistKm (short pairs are height-dominated and excluded; default 300 km
// when minDistKm ≤ 0). The result is clamped to [1, 3].
func EstimateInflation(rtt [][]float64, locs []geo.Point, minDistKm float64) float64 {
	if minDistKm <= 0 {
		minDistKm = 300
	}
	var ratios []float64
	for i := range locs {
		for j := i + 1; j < len(locs); j++ {
			d := locs[i].DistanceKm(locs[j])
			if d < minDistKm {
				continue
			}
			base := geo.DistanceToMinLatencyMs(d)
			if base <= 0 || rtt[i][j] <= 0 {
				continue
			}
			ratios = append(ratios, rtt[i][j]/base)
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	sort.Float64s(ratios)
	k := ratios[len(ratios)/2]
	if k < 1 {
		return 1
	}
	if k > 3 {
		return 3
	}
	return k
}

// SolveLandmarks computes per-landmark heights h from the pairwise queuing
// delays q(i,j), minimizing Σ_{i<j} (h_i + h_j − q_ij)² with h clamped
// non-negative. q must be symmetric with q[i][i] ignored; n ≥ 3 landmarks
// are required (the paper's example is exactly n = 3).
//
// The normal equations have the closed form
//
//	(n−2)·h_i + Σ_k h_k = Σ_j q_ij,
//
// which this function solves directly in O(n²).
func SolveLandmarks(q [][]float64) ([]float64, error) {
	n := len(q)
	if n < 3 {
		return nil, fmt.Errorf("height: need ≥ 3 landmarks, have %d", n)
	}
	rowSum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		if len(q[i]) != n {
			return nil, fmt.Errorf("height: q is not square (row %d has %d cols)", i, len(q[i]))
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			rowSum[i] += q[i][j]
		}
		total += rowSum[i]
	}
	// Σh = total / (2n−2); h_i = (rowSum_i − Σh) / (n−2).
	sumH := total / float64(2*n-2)
	h := make([]float64, n)
	for i := 0; i < n; i++ {
		h[i] = (rowSum[i] - sumH) / float64(n-2)
		if h[i] < 0 {
			h[i] = 0
		}
	}
	return h, nil
}

// SolveLandmarksQR solves the same system via explicit least squares (QR on
// the n(n−1)/2 × n pair matrix). It exists to cross-check the closed form
// and for tests; SolveLandmarks is the production path.
func SolveLandmarksQR(q [][]float64) ([]float64, error) {
	n := len(q)
	if n < 3 {
		return nil, fmt.Errorf("height: need ≥ 3 landmarks, have %d", n)
	}
	rows := n * (n - 1) / 2
	a := linalg.NewMatrix(rows, n)
	b := make([]float64, rows)
	r := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(r, i, 1)
			a.Set(r, j, 1)
			b[r] = q[i][j]
			r++
		}
	}
	h, err := linalg.SolveLeastSquares(a, b)
	if err != nil {
		return nil, err
	}
	for i := range h {
		if h[i] < 0 {
			h[i] = 0
		}
	}
	return h, nil
}

// TargetResult is the outcome of the target-side solve.
type TargetResult struct {
	HeightMs float64   // t′: the target's inelastic delay component
	Coarse   geo.Point // coarse (t_lat, t_long) estimate — high error by design
	Residual float64   // RMS residual of the fit in ms
}

// SolveTarget fits (t′, t_lat, t_long) minimizing the residual of
//
//	h_i + t′ + (L_i, t) ≈ [L_i, t]   for every landmark i,
//
// where (L_i, t) is the great-circle transmission estimate. landmarks,
// heights and rttMs must be parallel slices with ≥ 3 entries.
func SolveTarget(landmarks []geo.Point, heights, rttMs []float64) (TargetResult, error) {
	return SolveTargetK(landmarks, heights, rttMs, 1)
}

// SolveTargetK is SolveTarget with a calibrated transmission inflation κ
// (see EstimateInflation). Residual terms are weighted by proximity
// (1/(1+rtt)): nearby landmarks see little route inflation, so they anchor
// the height; distant ones mostly carry inflation noise.
func SolveTargetK(landmarks []geo.Point, heights, rttMs []float64, kappa float64) (TargetResult, error) {
	n := len(landmarks)
	if n < 3 || len(heights) != n || len(rttMs) != n {
		return TargetResult{}, fmt.Errorf("height: need ≥ 3 parallel landmark entries (have %d/%d/%d)",
			len(landmarks), len(heights), len(rttMs))
	}
	if kappa < 1 {
		kappa = 1
	}
	// Start at the latency-weighted centroid: nearby landmarks dominate.
	var wSum float64
	var latSum, lonSum float64
	wts := make([]float64, n)
	for i, p := range landmarks {
		w := 1 / (1 + rttMs[i])
		wts[i] = w
		latSum += p.Lat * w
		lonSum += p.Lon * w
		wSum += w
	}
	start := []float64{1, latSum / wSum, lonSum / wSum} // (t′, lat, lon)

	obj := func(v []float64) float64 {
		tPrime, lat, lon := v[0], v[1], v[2]
		if tPrime < 0 {
			tPrime = 0
		}
		t := geo.Pt(clampF(lat, -89.9, 89.9), wrapLon(lon))
		var ss float64
		for i := range landmarks {
			pred := heights[i] + tPrime + kappa*geo.DistanceToMinLatencyMs(landmarks[i].DistanceKm(t))
			d := pred - rttMs[i]
			ss += wts[i] * d * d
		}
		return ss
	}
	best, fv := linalg.NelderMead(obj, start, &linalg.NelderMeadOpts{MaxIter: 2000, Step: 2, Tol: 1e-10})
	res := TargetResult{
		HeightMs: math.Max(0, best[0]),
		Coarse:   geo.Pt(clampF(best[1], -89.9, 89.9), wrapLon(best[2])),
		Residual: math.Sqrt(fv / wSum),
	}
	return res, nil
}

// AdjustRTT deflates a raw RTT by the heights of both endpoints, yielding a
// better transmission-delay estimate for calibration and constraints
// (§2.2: "each landmark can adjust their latency measurements to more
// accurately approximate the transmission delay component").
func AdjustRTT(rttMs, landmarkHeight, targetHeight float64) float64 {
	adj := rttMs - landmarkHeight - targetHeight
	if adj < 0 {
		return 0
	}
	return adj
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func wrapLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon <= -180 {
		lon += 360
	}
	return lon
}
