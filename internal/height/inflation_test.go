package height

import (
	"math"
	"testing"

	"octant/internal/geo"
)

func TestEstimateInflationRecoversFactor(t *testing.T) {
	// Landmarks on a grid; RTT = 1.6 × geodesic fiber RTT exactly.
	var locs []geo.Point
	for lat := 30.0; lat <= 45; lat += 5 {
		for lon := -120.0; lon <= -75; lon += 15 {
			locs = append(locs, geo.Pt(lat, lon))
		}
	}
	n := len(locs)
	rtt := make([][]float64, n)
	for i := range rtt {
		rtt[i] = make([]float64, n)
		for j := range rtt[i] {
			if i == j {
				continue
			}
			rtt[i][j] = 1.6 * geo.DistanceToMinLatencyMs(locs[i].DistanceKm(locs[j]))
		}
	}
	if got := EstimateInflation(rtt, locs, 0); math.Abs(got-1.6) > 0.01 {
		t.Errorf("EstimateInflation = %v, want 1.6", got)
	}
}

func TestEstimateInflationClamps(t *testing.T) {
	locs := []geo.Point{geo.Pt(40, -100), geo.Pt(40, -80), geo.Pt(30, -90)}
	mk := func(factor float64) [][]float64 {
		n := len(locs)
		rtt := make([][]float64, n)
		for i := range rtt {
			rtt[i] = make([]float64, n)
			for j := range rtt[i] {
				if i != j {
					rtt[i][j] = factor * geo.DistanceToMinLatencyMs(locs[i].DistanceKm(locs[j]))
				}
			}
		}
		return rtt
	}
	// Sub-light measurements clamp to 1 (never model faster-than-fiber).
	if got := EstimateInflation(mk(0.5), locs, 0); got != 1 {
		t.Errorf("sub-light clamp = %v", got)
	}
	// Absurd inflation clamps to 3.
	if got := EstimateInflation(mk(9), locs, 0); got != 3 {
		t.Errorf("high clamp = %v", got)
	}
	// No qualifying pairs (all closer than minDist) → 1.
	near := []geo.Point{geo.Pt(40, -100), geo.Pt(40.1, -100), geo.Pt(40.2, -100)}
	if got := EstimateInflation(mk(2), near, 5000); got != 1 {
		t.Errorf("no-pairs default = %v", got)
	}
}

func TestQueuingDelayKReducesResidual(t *testing.T) {
	a, b := geo.Pt(40, -100), geo.Pt(40, -80)
	base := geo.DistanceToMinLatencyMs(a.DistanceKm(b))
	rtt := 1.7*base + 2 // inflation + 2ms true queuing
	// With κ=1 the residual absorbs inflation; with κ=1.7 only the 2ms
	// remains.
	q1 := QueuingDelayK(rtt, 1, a, b)
	q17 := QueuingDelayK(rtt, 1.7, a, b)
	if q17 >= q1 {
		t.Errorf("κ should reduce residual: %v vs %v", q17, q1)
	}
	if math.Abs(q17-2) > 1e-9 {
		t.Errorf("residual with true κ = %v, want 2", q17)
	}
	// Over-modelled κ clamps at 0.
	if got := QueuingDelayK(rtt, 3, a, b); got != 0 {
		t.Errorf("over-κ residual = %v, want 0", got)
	}
}
