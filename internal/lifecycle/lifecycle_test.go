package lifecycle_test

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/lifecycle"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// fixture is one simulated deployment: a world trimmed to nSites sites,
// the first nTargets hosts held out as targets, the rest surveyed.
type fixture struct {
	world    *netsim.World
	prober   *probe.SimProber
	survey   *core.Survey
	targets  []string
	lmNodes  []int // node IDs of the landmark hosts, parallel to survey.Landmarks
	landmark []core.Landmark
}

func newFixture(t *testing.T, seed uint64, nSites, nTargets int) *fixture {
	t.Helper()
	world := netsim.NewWorld(netsim.Config{Seed: seed, Sites: netsim.DefaultSites[:nSites]})
	prober := probe.NewSimProber(world)
	hosts := world.HostNodes()
	f := &fixture{world: world, prober: prober}
	for i, h := range hosts {
		if i < nTargets {
			f.targets = append(f.targets, h.Name)
			continue
		}
		f.landmark = append(f.landmark, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
		f.lmNodes = append(f.lmNodes, h.ID)
	}
	survey, err := core.NewSurvey(prober, f.landmark, core.SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	f.survey = survey
	return f
}

// driftPair injects ms of RTT drift between landmarks a and b (survey
// indices). Only the landmark mesh drifts; landmark→target measurements
// stay bit-identical, so results remain a pure function of the epoch.
func (f *fixture) driftPair(a, b int, ms float64) {
	f.world.SetPairDriftMs(f.lmNodes[a], f.lmNodes[b], ms)
}

// TestScopedRefreshProbeAccounting asserts the probe cost of refreshes
// against the world's measurement counters: a full refresh pays the
// whole mesh, a scoped refresh only the pairs touching its landmarks.
func TestScopedRefreshProbeAccounting(t *testing.T) {
	f := newFixture(t, 21, 16, 8)
	m := lifecycle.New(f.prober, f.survey, core.Config{}, lifecycle.Options{})
	n := f.survey.N()
	ctx := context.Background()

	before := f.world.PingCalls()
	rep, err := m.Refresh(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := n * (n - 1) / 2
	if got := int(f.world.PingCalls() - before); got != full || rep.ProbedPairs != full {
		t.Errorf("full refresh probed %d pairs (reported %d), want %d", got, rep.ProbedPairs, full)
	}

	before = f.world.PingCalls()
	rep, err = m.Refresh(ctx, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(f.world.PingCalls() - before); got != n-1 || rep.ProbedPairs != n-1 {
		t.Errorf("scoped refresh probed %d pairs (reported %d), want %d", got, rep.ProbedPairs, n-1)
	}

	before = f.world.PingCalls()
	rep, err = m.Refresh(ctx, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*(n-2) + 1 // pairs touching {0,1}: 0↔1 plus each to the other n−2
	if got := int(f.world.PingCalls() - before); got != want || rep.ProbedPairs != want {
		t.Errorf("2-scoped refresh probed %d pairs (reported %d), want %d", got, rep.ProbedPairs, want)
	}

	if _, err := m.Refresh(ctx, []int{n}); err == nil {
		t.Error("out-of-range scope index should error")
	}
}

// TestRefreshWithoutDriftKeepsEpoch: the sim world remeasures
// bit-identically, so a refresh over a stable mesh must not publish.
func TestRefreshWithoutDriftKeepsEpoch(t *testing.T) {
	f := newFixture(t, 22, 14, 6)
	m := lifecycle.New(f.prober, f.survey, core.Config{}, lifecycle.Options{})
	loc0 := m.CurrentLocalizer()

	rep, err := m.Refresh(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Swapped || rep.Epoch != 0 || len(rep.DirtyLandmarks) != 0 {
		t.Errorf("stable refresh = %+v", rep)
	}
	if m.CurrentLocalizer() != loc0 {
		t.Error("stable refresh replaced the serving localizer")
	}
	st := m.Stats()
	if st.Refreshes != 1 || st.Swaps != 0 || st.Epoch != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestIncrementalRebuildOnlyDirty drifts one landmark pair and checks the
// published epoch rebuilt exactly the two dirty landmarks' calibrations,
// carrying every clean calibration and height forward untouched.
func TestIncrementalRebuildOnlyDirty(t *testing.T) {
	f := newFixture(t, 23, 16, 8)
	m := lifecycle.New(f.prober, f.survey, core.Config{}, lifecycle.Options{})
	prev := m.Current().Survey
	const da, db = 1, 4
	f.driftPair(da, db, 30)

	rep, err := m.Refresh(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.Epoch != 1 {
		t.Fatalf("drift refresh did not publish: %+v", rep)
	}
	if len(rep.DirtyLandmarks) != 2 || rep.RebuiltCalibs != 2 {
		t.Errorf("dirty=%v rebuilt=%d, want exactly the 2 drifted landmarks",
			rep.DirtyLandmarks, rep.RebuiltCalibs)
	}
	cur := m.Current().Survey
	if cur.Epoch != 1 || cur == prev {
		t.Fatalf("expected a new epoch-1 survey snapshot")
	}
	for i := range cur.Calibs {
		if i == da || i == db {
			if cur.Calibs[i] == prev.Calibs[i] {
				t.Errorf("dirty landmark %d calibration not rebuilt", i)
			}
			continue
		}
		if cur.Calibs[i] != prev.Calibs[i] {
			t.Errorf("clean landmark %d calibration rebuilt", i)
		}
		if cur.Heights[i] != prev.Heights[i] {
			t.Errorf("clean landmark %d height changed: %v → %v", i, prev.Heights[i], cur.Heights[i])
		}
	}
	if cur.RTT[da][db] != prev.RTT[da][db]+30 || cur.RTT[db][da] != cur.RTT[da][db] {
		t.Errorf("drifted pair RTT %v → %v, want +30 symmetric", prev.RTT[da][db], cur.RTT[da][db])
	}
	if cur.Global == prev.Global {
		t.Error("global calibration should refit when any landmark is dirty")
	}
	// prev remains fully usable after the swap (RCU safety).
	if _, err := core.NewLocalizer(f.prober, prev, core.Config{}).Localize(f.targets[0]); err != nil {
		t.Errorf("superseded epoch unusable: %v", err)
	}
}

// TestHotSwapSoak is the acceptance soak: batch localization load runs
// concurrently with ≥ 3 epoch swaps, with zero dropped or errored
// requests, and every result is bit-identical to a sequential Localize
// on the epoch snapshot it was served under. Run under -race in CI.
func TestHotSwapSoak(t *testing.T) {
	f := newFixture(t, 24, 16, 8)

	var mu sync.Mutex
	epochs := map[uint64]*lifecycle.Epoch{}
	m := lifecycle.New(f.prober, f.survey, core.Config{}, lifecycle.Options{
		OnSwap: func(e *lifecycle.Epoch, _ *lifecycle.RefreshReport) {
			mu.Lock()
			epochs[e.Number()] = e
			mu.Unlock()
		},
	})
	engine := batch.NewWithProvider(m, batch.Options{Workers: 8, CacheSize: 64})

	var stop atomic.Bool
	var items []batch.Item
	var passes atomic.Int64 // completed Run sweeps across all load workers
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for item := range engine.Run(ctx, f.targets) {
					mu.Lock()
					items = append(items, item)
					mu.Unlock()
				}
				passes.Add(1)
			}
		}()
	}
	// A third load generator drives core.LocalizeBatch directly on the
	// current epoch's snapshot — the fused group path without the engine
	// in front — so hot swaps land under both entry points. Its items
	// join the same per-epoch bit-identity audit below.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			e := m.Current()
			results, errs := e.Localizer.LocalizeBatch(ctx, f.targets[:4])
			mu.Lock()
			for i := range results {
				items = append(items, batch.Item{
					Index: i, Target: f.targets[i],
					Result: results[i], Err: errs[i],
					Epoch: e.Number(),
				})
			}
			mu.Unlock()
		}
	}()

	// waitPasses blocks until at least n full target sweeps completed, so
	// every swap lands while localization load is genuinely in flight.
	waitPasses := func(n int64) {
		for passes.Load() < n {
			time.Sleep(time.Millisecond)
		}
	}

	// Swap ≥ 3 epochs under load, each from a fresh drift, each paced so
	// at least one full sweep ran against the epoch being superseded.
	const swaps = 4
	for k := 0; k < swaps; k++ {
		waitPasses(int64(k + 1))
		f.driftPair(2*k, 2*k+1, 10+5*float64(k))
		rep, err := m.Refresh(ctx, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Swapped || rep.Epoch != uint64(k+1) {
			t.Fatalf("swap %d: %+v", k, rep)
		}
	}
	waitPasses(swaps + 1) // at least one sweep on the final epoch
	stop.Store(true)
	wg.Wait()

	if got := m.Stats().Swaps; got != swaps {
		t.Fatalf("swaps = %d, want %d", got, swaps)
	}
	if len(items) == 0 {
		t.Fatal("no load ran")
	}

	// Verify each served item bit-identically against a sequential run
	// on its epoch's snapshot. Landmark→target measurements are
	// drift-free, so per-epoch sequential replays are exact.
	type key struct {
		epoch  uint64
		target string
	}
	want := map[key]*core.Result{}
	errored := 0
	for _, item := range items {
		if item.Err != nil {
			errored++
			continue
		}
		k := key{item.Epoch, item.Target}
		ref, ok := want[k]
		if !ok {
			e := epochs[item.Epoch]
			if e == nil {
				t.Fatalf("item served under unknown epoch %d", item.Epoch)
			}
			res, err := e.Localizer.Localize(item.Target)
			if err != nil {
				t.Fatal(err)
			}
			ref, want[k] = res, res
		}
		if item.Result.Point != ref.Point || item.Result.AreaKm2 != ref.AreaKm2 ||
			item.Result.Weight != ref.Weight || item.Result.TargetHeightMs != ref.TargetHeightMs {
			t.Fatalf("epoch %d target %s: served %v/%v diverges from sequential %v/%v",
				item.Epoch, item.Target, item.Result.Point, item.Result.AreaKm2, ref.Point, ref.AreaKm2)
		}
	}
	if errored != 0 {
		t.Errorf("%d of %d requests errored during hot-swaps, want 0", errored, len(items))
	}
	// The engine's multi-target sweeps must all have run as fused groups.
	if s := engine.Stats(); s.FusedGroups == 0 || s.FusedTargets == 0 {
		t.Errorf("soak ran no fused groups (stats %d groups / %d targets)", s.FusedGroups, s.FusedTargets)
	}
	perEpoch := map[uint64]int{}
	for _, item := range items {
		perEpoch[item.Epoch]++
	}
	t.Logf("soak: %d items across epochs %v", len(items), perEpoch)
}

// TestWarmStartFromSnapshot proves the restart path: a snapshot-loaded
// survey enters the lifecycle without a single probe and serves
// bit-identical results.
func TestWarmStartFromSnapshot(t *testing.T) {
	f := newFixture(t, 25, 14, 6)
	path := filepath.Join(t.TempDir(), "survey.json")
	if err := f.survey.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	target := f.targets[0]
	origRes, err := core.NewLocalizer(f.prober, f.survey, core.Config{}).Localize(target)
	if err != nil {
		t.Fatal(err)
	}

	loaded, err := core.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	before := f.world.PingCalls()
	m := lifecycle.New(f.prober, loaded, core.Config{}, lifecycle.Options{})
	if got := f.world.PingCalls(); got != before {
		t.Errorf("warm start issued %d probes, want 0", got-before)
	}
	res, err := m.CurrentLocalizer().Localize(target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Point != origRes.Point || res.AreaKm2 != origRes.AreaKm2 {
		t.Errorf("warm-start result %v/%v != original %v/%v",
			res.Point, res.AreaKm2, origRes.Point, origRes.AreaKm2)
	}
}

// TestSnapshotAutosaveAcrossEpochs: every recalibrated epoch lands on
// disk, and the persisted file round-trips to the same epoch number. The
// initial epoch is deliberately not rewritten — on a warm start it was
// just read from that very file.
func TestSnapshotAutosaveAcrossEpochs(t *testing.T) {
	f := newFixture(t, 26, 14, 6)
	path := filepath.Join(t.TempDir(), "survey.json")
	m := lifecycle.New(f.prober, f.survey, core.Config{}, lifecycle.Options{SnapshotPath: path})

	if _, err := core.LoadSnapshotFile(path); err == nil {
		t.Fatal("initial epoch autosaved; seeding is the caller's decision")
	}

	f.driftPair(0, 3, 20)
	rep, err := m.Refresh(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.SnapshotError != "" {
		t.Fatalf("refresh = %+v", rep)
	}
	s1, err := core.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch != 1 {
		t.Errorf("autosaved epoch = %d, want 1", s1.Epoch)
	}
}
