// Package lifecycle manages the landmark survey as a versioned,
// refreshable resource instead of a startup constant.
//
// Octant's accuracy rests on per-landmark latency→distance calibrations
// (§2.1–2.2) that the paper recomputes periodically as network conditions
// change. A daemon that builds its Survey once at process start drifts
// stale within hours: routes move, peerings congest, and the convex-hull
// bounds fitted to last night's RTTs stop bounding today's. The Manager
// closes that gap with an epoch-based lifecycle:
//
//   - Each survey generation is an immutable Epoch — the Survey snapshot
//     plus its derived Localizer (projection context, land-mask cache,
//     calibrations).
//   - Refresh reprobes landmark↔landmark RTTs (all pairs, or only pairs
//     touching an explicit scope of suspect landmarks), marks landmarks
//     whose min-RTT moved beyond a drift tolerance as dirty, and asks
//     core.RebuildSurvey for the next generation — refitting only the
//     dirty landmarks' calibrations and carrying every clean fit forward
//     by pointer.
//   - The new epoch is published with an atomic RCU-style pointer swap.
//     Readers (the batch engine, octant-serve) borrow one epoch per
//     request via a single atomic load; in-flight requests finish on the
//     epoch they started with, so a swap drops nothing and blocks nobody.
//   - Published epochs can be persisted to disk (survey snapshots) so a
//     restarted daemon starts warm, serving from the last calibration
//     without reprobing the O(n²) landmark mesh.
//
// The v2 request-scoped localization API composes with all of this
// unchanged: per-request options (core.LocalizeOption) tune a request
// without touching the borrowed Localizer, so the manager keeps handing
// out one immutable epoch Localizer per request and the batch engine
// layers its options fingerprint on top of the epoch in its cache keys.
package lifecycle

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"octant/internal/core"
	"octant/internal/measure"
	"octant/internal/probe"
)

// Options tunes the survey lifecycle.
type Options struct {
	// Probes is the ping-sample count per refreshed landmark pair
	// (default 10, matching survey construction).
	Probes int
	// DriftToleranceMs is the minimum |Δ min-RTT| for a reprobed pair to
	// count as drifted (default 0.5 ms). Sub-tolerance wobble keeps the
	// previous value, so measurement jitter alone never churns epochs.
	// Set negative to treat any change as drift.
	DriftToleranceMs float64
	// Interval is Run's periodic full-refresh cadence (0 disables the
	// loop; Refresh stays available on demand).
	Interval time.Duration
	// SnapshotPath, when non-empty, persists every recalibrated epoch
	// the manager publishes, so the daemon can restart warm. The initial
	// epoch is the caller's to persist (it may itself have just been
	// loaded from this very file — rewriting it would be wasted I/O).
	SnapshotPath string
	// OnSwap, when non-nil, observes every published epoch after it
	// became current — the initial epoch with a nil report, refreshed
	// epochs with theirs. Called synchronously; keep it cheap.
	OnSwap func(*Epoch, *RefreshReport)
}

func (o *Options) fillDefaults() {
	if o.Probes == 0 {
		o.Probes = 10
	}
	if o.DriftToleranceMs == 0 {
		o.DriftToleranceMs = 0.5
	}
}

// Epoch is one immutable survey generation plus the serving state derived
// from it. Everything an Epoch references is safe for concurrent readers
// and never mutated after publication; a request that borrowed an Epoch
// may keep using it for its whole lifetime regardless of later swaps.
type Epoch struct {
	Survey    *core.Survey
	Localizer *core.Localizer
	// Published is when this epoch became current.
	Published time.Time
}

// Number returns the epoch's sequence number (Survey.Epoch).
func (e *Epoch) Number() uint64 { return e.Survey.Epoch }

// RefreshReport describes one recalibration round.
type RefreshReport struct {
	// PrevEpoch and Epoch bracket the refresh; they are equal when
	// nothing drifted and no new epoch was published.
	PrevEpoch uint64 `json:"prev_epoch"`
	Epoch     uint64 `json:"epoch"`
	// Swapped reports whether a new epoch was published.
	Swapped bool `json:"swapped"`
	// ProbedPairs is how many landmark pairs were remeasured.
	ProbedPairs int `json:"probed_pairs"`
	// DirtyLandmarks names the landmarks whose measurements drifted
	// beyond tolerance.
	DirtyLandmarks []string `json:"dirty_landmarks,omitempty"`
	// RebuiltCalibs counts per-landmark calibrations refitted; clean
	// landmarks keep their previous fit untouched.
	RebuiltCalibs int `json:"rebuilt_calibs"`
	// SnapshotError carries a non-fatal autosave failure ("" if none,
	// or if autosaving is off).
	SnapshotError string `json:"snapshot_error,omitempty"`
	// Installed marks an epoch that was pushed in from a cluster
	// coordinator (Stage + ActivateStaged) rather than probed locally.
	Installed bool `json:"installed,omitempty"`
	// ElapsedMs is the refresh wall time, probing included.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// Stats is a point-in-time view of the lifecycle, shaped for the
// octant-serve GET /v1/survey endpoint.
type Stats struct {
	Epoch      uint64  `json:"epoch"`
	Landmarks  int     `json:"landmarks"`
	Kappa      float64 `json:"kappa"`
	UseHeights bool    `json:"use_heights"`
	// EpochAgeS is how long the current epoch has been serving.
	EpochAgeS float64 `json:"epoch_age_s"`
	// Swaps counts epochs published after the initial one.
	Swaps uint64 `json:"swaps"`
	// Refreshes counts completed Refresh rounds (swapped or not).
	Refreshes uint64 `json:"refreshes"`
	// Installs counts epochs adopted from a cluster coordinator's push
	// (a subset of Swaps).
	Installs uint64 `json:"installs,omitempty"`
	// StagedEpoch is a pushed epoch waiting for activation (0 = none;
	// epoch numbers of staged snapshots are always > 0 because they must
	// exceed the current epoch).
	StagedEpoch uint64 `json:"staged_epoch,omitempty"`
	// LastRefresh is the most recent refresh round's report (nil before
	// the first).
	LastRefresh *RefreshReport `json:"last_refresh,omitempty"`
	// LastError is the most recent background-refresh failure ("" when
	// the last round succeeded).
	LastError string `json:"last_error,omitempty"`
}

// Manager owns the survey lifecycle: it holds the current epoch, reprobes
// landmark↔landmark RTTs periodically or on demand, incrementally rebuilds
// the calibrations the drift invalidated (core.RebuildSurvey), and
// publishes each new generation with an atomic RCU-style swap.
//
// Readers never lock: Current and CurrentLocalizer are single atomic
// loads, and the Epoch they return is immutable, so a swap neither blocks
// nor invalidates requests in flight — they complete on the epoch they
// borrowed while new requests pick up the new one. Manager implements
// batch.Provider, which is how the serving stack rides along.
type Manager struct {
	prober probe.Prober
	cfg    core.Config
	opts   Options

	// sched fans Refresh's pairwise reprobes out concurrently. It is the
	// manager's own uncached scheduler — never the serving Localizer's:
	// drift detection compares fresh measurements against the previous
	// epoch, and a cached RTT would silently hide drift. Nil when the
	// config asks for serialized measurement (MeasureWorkers < 0).
	sched *measure.Scheduler

	cur atomic.Pointer[Epoch]
	// mu serializes writers (Refresh, snapshot autosave); readers don't
	// take it.
	mu sync.Mutex

	swaps      atomic.Uint64
	refreshes  atomic.Uint64
	installs   atomic.Uint64
	lastReport atomic.Pointer[RefreshReport]
	lastErr    atomic.Pointer[string]

	// staged is a coordinator-pushed survey awaiting ActivateStaged.
	// Writers (Stage, ActivateStaged) serialize on mu; Stats reads the
	// pointer lock-free, so it must never block behind a long reprobe.
	staged atomic.Pointer[core.Survey]
}

// New starts a lifecycle around an existing survey — freshly probed by
// core.NewSurvey or reloaded warm from a snapshot; no probing happens
// here. cfg configures the per-epoch Localizers. When Options.Probes is
// unset it defaults to the survey's own per-pair sample count, keeping
// refresh remeasurements min-filter-comparable to the baseline.
func New(p probe.Prober, survey *core.Survey, cfg core.Config, opts Options) *Manager {
	if opts.Probes == 0 && survey.Probes > 0 {
		opts.Probes = survey.Probes
	}
	opts.fillDefaults()
	m := &Manager{prober: p, cfg: cfg, opts: opts}
	if cfg.MeasureWorkers >= 0 {
		m.sched = measure.New(measure.Config{
			Workers:     cfg.MeasureWorkers,
			PerLandmark: cfg.MeasurePerLandmark,
			MinInterval: cfg.MeasureMinInterval,
		})
	}
	e := &Epoch{
		Survey:    survey,
		Localizer: core.NewLocalizer(p, survey, cfg),
		Published: time.Now(),
	}
	m.cur.Store(e)
	if opts.OnSwap != nil {
		opts.OnSwap(e, nil)
	}
	return m
}

// NewProbed builds the initial survey by probing (core.NewSurvey) and
// starts a lifecycle around it.
func NewProbed(p probe.Prober, landmarks []core.Landmark, sopts core.SurveyOpts, cfg core.Config, opts Options) (*Manager, error) {
	survey, err := core.NewSurvey(p, landmarks, sopts)
	if err != nil {
		return nil, err
	}
	return New(p, survey, cfg, opts), nil
}

// Current returns the epoch currently serving. The result is immutable
// and remains valid after any number of later swaps.
func (m *Manager) Current() *Epoch { return m.cur.Load() }

// CurrentLocalizer implements batch.Provider: the batch engine borrows
// the current epoch's Localizer once per request.
func (m *Manager) CurrentLocalizer() *core.Localizer { return m.Current().Localizer }

// Refresh remeasures landmark pairs and, if anything drifted beyond
// tolerance, publishes a recalibrated epoch. scope selects which
// landmarks' pairs to reprobe — nil means all — and a scoped refresh
// probes only pairs with at least one endpoint in scope, making
// on-demand recalibration of a few suspect landmarks O(k·n) probes
// instead of O(n²).
//
// Only dirty landmarks' calibrations are refitted (see
// core.RebuildSurvey); a refresh in which every pair held within
// tolerance publishes nothing and leaves the current epoch — and every
// cache keyed by it — untouched. Concurrent Refresh calls serialize;
// readers are never blocked.
func (m *Manager) Refresh(ctx context.Context, scope []int) (*RefreshReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	cur := m.Current()
	s := cur.Survey
	n := s.N()

	inScope := make([]bool, n)
	if scope == nil {
		for i := range inScope {
			inScope[i] = true
		}
	} else {
		for _, i := range scope {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("lifecycle: refresh scope index %d out of range [0, %d)", i, n)
			}
			inScope[i] = true
		}
	}

	p := probe.WithContext(ctx, m.prober)
	tol := math.Max(0, m.opts.DriftToleranceMs)
	newRTT := make([][]float64, n)
	for i := range newRTT {
		newRTT[i] = append([]float64(nil), s.RTT[i]...)
	}

	// Collect the in-scope pairs, then remeasure them — concurrently
	// through the manager's scheduler when it has one, serially
	// otherwise. Fresh min-RTTs land in a flat per-pair slice; the drift
	// comparison below runs single-threaded either way, so dirty marking
	// is deterministic and race-free.
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !inScope[i] && !inScope[j] {
				continue
			}
			pairs = append(pairs, pair{i, j})
		}
	}
	mins := make([]float64, len(pairs))
	reprobe := func(slot int) error {
		pr := pairs[slot]
		samples, err := p.Ping(s.Landmarks[pr.i].Addr, s.Landmarks[pr.j].Addr, m.opts.Probes)
		if err != nil {
			return fmt.Errorf("lifecycle: refresh ping %s→%s: %w",
				s.Landmarks[pr.i].Name, s.Landmarks[pr.j].Name, err)
		}
		min, err := probe.MinRTT(samples)
		if err != nil {
			return err
		}
		mins[slot] = min
		return nil
	}
	if m.sched != nil {
		if _, err := m.sched.Run(ctx, len(pairs), func(slot int) error {
			return m.sched.Paced(ctx, s.Landmarks[pairs[slot].i].Addr, func() error {
				return reprobe(slot)
			})
		}); err != nil {
			return nil, err
		}
	} else {
		for slot := range pairs {
			if err := reprobe(slot); err != nil {
				return nil, err
			}
		}
	}
	dirty := make([]bool, n)
	probed := len(pairs)
	for slot, pr := range pairs {
		if math.Abs(mins[slot]-s.RTT[pr.i][pr.j]) > tol {
			newRTT[pr.i][pr.j], newRTT[pr.j][pr.i] = mins[slot], mins[slot]
			dirty[pr.i], dirty[pr.j] = true, true
		}
	}
	m.refreshes.Add(1)

	report := &RefreshReport{PrevEpoch: s.Epoch, Epoch: s.Epoch, ProbedPairs: probed}
	elapse := func() { report.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond) }
	defer func() { m.lastReport.Store(report) }()

	anyDirty := false
	for _, d := range dirty {
		anyDirty = anyDirty || d
	}
	if !anyDirty {
		elapse()
		return report, nil
	}

	next, rst, err := core.RebuildSurvey(s, newRTT, dirty, s.Epoch+1)
	if err != nil {
		return nil, err
	}
	for _, i := range rst.Dirty {
		report.DirtyLandmarks = append(report.DirtyLandmarks, s.Landmarks[i].Name)
	}
	report.RebuiltCalibs = rst.RebuiltCalibs
	report.Epoch = next.Epoch
	report.Swapped = true

	e := &Epoch{
		Survey: next,
		// Reuse the superseded epoch's land-mask masters and resolver:
		// the landmarks (hence the projection and outlines) are
		// unchanged, so the new epoch serves its first solve warm.
		Localizer: core.NewLocalizerReusing(m.prober, next, m.cfg, cur.Localizer),
		Published: time.Now(),
	}
	if m.opts.SnapshotPath != "" {
		if err := next.SaveSnapshotFile(m.opts.SnapshotPath); err != nil {
			report.SnapshotError = err.Error()
		}
	}
	m.cur.Store(e)
	m.swaps.Add(1)
	elapse() // before OnSwap, so observers see the real refresh duration
	if m.opts.OnSwap != nil {
		m.opts.OnSwap(e, report)
	}
	return report, nil
}

// Stage validates and parks a coordinator-pushed survey snapshot for a
// later ActivateStaged — the first half of a coordinated epoch rollout.
// The snapshot must describe the same landmark mesh (set, order,
// positions) at the same per-pair probe count, and must carry a newer
// epoch than the one currently serving; anything else is a configuration
// error surfaced to the coordinator, never adopted silently. Staging
// publishes nothing: traffic keeps serving the current epoch untouched.
func (m *Manager) Stage(survey *core.Survey) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.Current().Survey
	if survey.N() != cur.N() {
		return fmt.Errorf("lifecycle: staged survey has %d landmarks, serving survey has %d", survey.N(), cur.N())
	}
	for i := range cur.Landmarks {
		if survey.Landmarks[i] != cur.Landmarks[i] {
			return fmt.Errorf("lifecycle: staged landmark %d is %s (%s), serving survey says %s (%s)",
				i, survey.Landmarks[i].Name, survey.Landmarks[i].Addr, cur.Landmarks[i].Name, cur.Landmarks[i].Addr)
		}
	}
	if survey.Probes != cur.Probes {
		return fmt.Errorf("lifecycle: staged survey was measured with %d probes/pair, serving survey with %d", survey.Probes, cur.Probes)
	}
	if survey.Epoch <= cur.Epoch {
		return fmt.Errorf("lifecycle: staged epoch %d is not newer than serving epoch %d", survey.Epoch, cur.Epoch)
	}
	m.staged.Store(survey)
	return nil
}

// StagedEpoch reports the epoch number of a staged snapshot, if any.
func (m *Manager) StagedEpoch() (uint64, bool) {
	if s := m.staged.Load(); s != nil {
		return s.Epoch, true
	}
	return 0, false
}

// ActivateStaged publishes the staged snapshot as the current epoch with
// the same RCU swap a local refresh uses: in-flight requests finish on
// the epoch they borrowed, new requests pick up the staged one, and
// epoch-qualified caches invalidate lazily. The new epoch reuses the
// superseded Localizer's land-mask masters and resolver (the mesh is
// unchanged — Stage verified it), so it serves its first solve warm.
// Fails if nothing is staged or a newer epoch was published meanwhile.
func (m *Manager) ActivateStaged() (*Epoch, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	staged := m.staged.Load()
	if staged == nil {
		return nil, fmt.Errorf("lifecycle: no staged epoch to activate")
	}
	cur := m.Current()
	if staged.Epoch <= cur.Survey.Epoch {
		m.staged.Store(nil)
		return nil, fmt.Errorf("lifecycle: staged epoch %d superseded by serving epoch %d", staged.Epoch, cur.Survey.Epoch)
	}
	e := &Epoch{
		Survey:    staged,
		Localizer: core.NewLocalizerReusing(m.prober, staged, m.cfg, cur.Localizer),
		Published: time.Now(),
	}
	report := &RefreshReport{PrevEpoch: cur.Survey.Epoch, Epoch: staged.Epoch, Swapped: true, Installed: true}
	if m.opts.SnapshotPath != "" {
		if err := staged.SaveSnapshotFile(m.opts.SnapshotPath); err != nil {
			report.SnapshotError = err.Error()
		}
	}
	m.staged.Store(nil)
	m.cur.Store(e)
	m.swaps.Add(1)
	m.installs.Add(1)
	m.lastReport.Store(report)
	if m.opts.OnSwap != nil {
		m.opts.OnSwap(e, report)
	}
	return e, nil
}

// Run refreshes all pairs every Options.Interval until ctx is done. A
// failed round is recorded (Stats.LastError) and the loop keeps going —
// transient probe failures must not kill recalibration for good. Run
// returns immediately when Interval is 0.
func (m *Manager) Run(ctx context.Context) {
	if m.opts.Interval <= 0 {
		return
	}
	ticker := time.NewTicker(m.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_, err := m.Refresh(ctx, nil)
			if ctx.Err() != nil {
				return
			}
			var msg string
			if err != nil {
				msg = err.Error()
			}
			m.lastErr.Store(&msg)
		}
	}
}

// SaveSnapshot persists the current epoch's survey to path (see
// core.Survey.SaveSnapshotFile).
func (m *Manager) SaveSnapshot(path string) error {
	return m.Current().Survey.SaveSnapshotFile(path)
}

// Stats returns a snapshot of the lifecycle's state and counters.
func (m *Manager) Stats() Stats {
	e := m.Current()
	st := Stats{
		Epoch:       e.Survey.Epoch,
		Landmarks:   e.Survey.N(),
		Kappa:       e.Survey.Kappa,
		UseHeights:  e.Survey.UseHeights,
		EpochAgeS:   time.Since(e.Published).Seconds(),
		Swaps:       m.swaps.Load(),
		Refreshes:   m.refreshes.Load(),
		Installs:    m.installs.Load(),
		LastRefresh: m.lastReport.Load(),
	}
	if s := m.staged.Load(); s != nil {
		st.StagedEpoch = s.Epoch
	}
	if s := m.lastErr.Load(); s != nil {
		st.LastError = *s
	}
	return st
}
