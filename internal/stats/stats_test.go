package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 25: 2, 50: 3, 75: 4, 100: 5, 10: 1.4}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestMeanMinMaxMedian(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Error("Min/Max wrong")
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %v", Median(xs))
	}
	for _, f := range []func([]float64) float64{Mean, Min, Max, Median} {
		if !math.IsNaN(f(nil)) {
			t.Error("empty input should be NaN")
		}
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	cases := map[float64]float64{5: 0, 10: 0.25, 25: 0.5, 40: 1, 100: 1}
	for x, want := range cases {
		if got := c.At(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.Quantile(0.5); math.Abs(got-25) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	pts := c.Points()
	if len(pts) != 4 || pts[0] != [2]float64{10, 0.25} || pts[3] != [2]float64{40, 1} {
		t.Errorf("Points = %v", pts)
	}
	// Duplicates collapse.
	d := NewCDF([]float64{1, 1, 2})
	if got := d.Points(); len(got) != 2 || got[0][1] != 2.0/3.0 {
		t.Errorf("dup Points = %v", got)
	}
}

// Property: CDF is monotone and Quantile∘At ≈ identity on data points.
func TestCDFMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 1 + rng.IntN(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := 0.0; x <= 1000; x += 50 {
			v := c.At(x)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 1 + rng.IntN(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 || v < sorted[0]-1e-12 || v > sorted[n-1]+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSummarizeAndFormat(t *testing.T) {
	s := Summarize("octant", []float64{10, 20, 30, 40, 50})
	if s.N != 5 || s.Median != 30 || s.Worst != 50 || s.Mean != 30 {
		t.Errorf("Summary = %+v", s)
	}
	tbl := FormatTable([]Summary{s}, "mi")
	if !strings.Contains(tbl, "octant") || !strings.Contains(tbl, "median mi") {
		t.Errorf("table:\n%s", tbl)
	}
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	if len(lines) != 2 {
		t.Errorf("table should have header + 1 row, got %d lines", len(lines))
	}
}
