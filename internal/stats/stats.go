// Package stats provides the small statistical toolkit used by the
// evaluation harness: percentiles, empirical CDFs, and summary rows matching
// the series the paper plots (Figure 3 is an error CDF; Figure 2 overlays
// percentile cutoffs; §3 reports medians and worst cases).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF over xs.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1).
func (c *CDF) Quantile(q float64) float64 {
	return Percentile(c.sorted, q*100)
}

// Points returns (x, F(x)) pairs at every distinct data value, suitable for
// plotting the CDF as the paper does in Figure 3.
func (c *CDF) Points() [][2]float64 {
	n := len(c.sorted)
	out := make([][2]float64, 0, n)
	for i, x := range c.sorted {
		if i+1 < n && c.sorted[i+1] == x {
			continue
		}
		out = append(out, [2]float64{x, float64(i+1) / float64(n)})
	}
	return out
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Summary holds the row shape of the paper's §3 accuracy table.
type Summary struct {
	Name   string
	N      int
	Median float64
	P90    float64
	Worst  float64
	Mean   float64
}

// Summarize computes a Summary over xs.
func Summarize(name string, xs []float64) Summary {
	return Summary{
		Name:   name,
		N:      len(xs),
		Median: Median(xs),
		P90:    Percentile(xs, 90),
		Worst:  Max(xs),
		Mean:   Mean(xs),
	}
}

// FormatTable renders summaries as an aligned ASCII table.
func FormatTable(rows []Summary, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %12s %12s %12s %12s\n", "technique", "n",
		"median "+unit, "p90 "+unit, "worst "+unit, "mean "+unit)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6d %12.1f %12.1f %12.1f %12.1f\n",
			r.Name, r.N, r.Median, r.P90, r.Worst, r.Mean)
	}
	return b.String()
}
