package core

import (
	"math"
	"sync"
	"sync/atomic"

	"octant/internal/geo"
)

// The §2.5 ocean/land mask is a fixed input: the same coarse landmass
// polygons, projected once per survey, rasterized at whatever cell size
// the solver is using. Before this cache existed every solveOnGrid call
// re-rasterized the polygons from scratch — twice per localization
// (coarse + fine pass) and once more for every target in a batch, all
// producing near-identical masks.
//
// LandMaskCache rasterizes each (land-region set, cell size) pair once
// onto a master lattice covering the land bounding box, then answers any
// solve grid at that cell size by sampling the master. Combined with the
// solver quantizing coarse-pass cell sizes onto the {FineCellKm · 2^k}
// lattice, the handful of masters built for the first target serve every
// subsequent pass and every other target sharing the Survey.

// maxMasterCells bounds one master mask; a region set whose bounding box
// exceeds this at the requested resolution is not cached (the solver falls
// back to direct rasterization).
const maxMasterCells = 1 << 23

// defaultMaskCap is how many (region set, cell size) masters are retained.
const defaultMaskCap = 16

// maskKey fingerprints a land-region set at one cell size. The regions are
// already projected, so the projection's identity is captured by the
// region geometry itself: ring/vertex counts plus the exact bounding box.
type maskKey struct {
	cellKm                 float64
	nRegions, nVerts       int
	minX, minY, maxX, maxY float64
}

// maskEntry is one rasterized master. The mask covers [minX, minX+w·cell)
// × [minY, minY+h·cell) row-major; once built it is immutable.
type maskEntry struct {
	once       sync.Once
	minX, minY float64
	w, h       int
	mask       []bool
	lastUse    uint64
}

// LandMaskCache caches rasterized land masks across solver passes and
// across localizations sharing a Survey. Safe for concurrent use; the
// batch engine's workers all hit the one cache their shared Localizer
// carries. A nil *LandMaskCache is valid and caches nothing.
type LandMaskCache struct {
	mu      sync.Mutex
	entries map[maskKey]*maskEntry
	cap     int
	tick    uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewLandMaskCache returns an empty cache retaining up to 16 masters.
func NewLandMaskCache() *LandMaskCache {
	return &LandMaskCache{entries: make(map[maskKey]*maskEntry), cap: defaultMaskCap}
}

// LandMaskStats is a snapshot of cache effectiveness, surfaced through
// batch.Stats and octant-serve /v1/stats.
type LandMaskStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// Stats returns the cache's hit/miss counters and resident master count.
func (c *LandMaskCache) Stats() LandMaskStats {
	if c == nil {
		return LandMaskStats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return LandMaskStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// keyFor fingerprints the region set; ok is false for an empty set.
func keyFor(regions []*geo.Region, cellKm float64) (maskKey, bool) {
	k := maskKey{cellKm: cellKm, nRegions: len(regions)}
	first := true
	for _, r := range regions {
		k.nVerts += r.VertexCount()
		lo, hi, bok := r.BoundingBox()
		if !bok {
			continue
		}
		if first {
			k.minX, k.minY, k.maxX, k.maxY = lo.X, lo.Y, hi.X, hi.Y
			first = false
			continue
		}
		k.minX = math.Min(k.minX, lo.X)
		k.minY = math.Min(k.minY, lo.Y)
		k.maxX = math.Max(k.maxX, hi.X)
		k.maxY = math.Max(k.maxY, hi.Y)
	}
	return k, !first
}

// masterDims is the master lattice size for a key: the bounding box padded
// by one cell on each side, at the key's cell size.
func masterDims(key maskKey) (w, h int) {
	cell := key.cellKm
	w = int(math.Ceil((key.maxX+cell-(key.minX-cell))/cell)) + 1
	h = int(math.Ceil((key.maxY+cell-(key.minY-cell))/cell)) + 1
	return w, h
}

// entryFor returns the built master for (regions, cellKm), creating it on
// first use. Returns nil when the set is empty or too large to cache.
func (c *LandMaskCache) entryFor(regions []*geo.Region, cellKm float64) *maskEntry {
	key, ok := keyFor(regions, cellKm)
	if !ok {
		return nil
	}
	// Dimensions follow from the key alone, so an oversized region set is
	// rejected before it can evict a resident master to make room for an
	// entry whose build is doomed.
	if w, h := masterDims(key); w < 1 || h < 1 || w*h > maxMasterCells {
		c.misses.Add(1)
		return nil
	}
	c.mu.Lock()
	e, found := c.entries[key]
	if !found {
		e = &maskEntry{}
		if len(c.entries) >= c.cap {
			c.evictLocked()
		}
		c.entries[key] = e
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	// Build outside the cache lock (a master rasterization can take
	// milliseconds); per-entry Once keeps concurrent first users from
	// duplicating the work without blocking other keys.
	e.once.Do(func() { e.build(key, regions) })
	if e.mask == nil {
		// Unbuildable (bounding box too large at this resolution): drop
		// the entry so it neither occupies LRU capacity nor reads as a
		// hit while every solve falls back to direct rasterization.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	if found {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e
}

// evictLocked drops the least-recently-used master. Caller holds c.mu.
func (c *LandMaskCache) evictLocked() {
	var oldest maskKey
	var oldestUse uint64 = math.MaxUint64
	for k, e := range c.entries {
		if e.lastUse < oldestUse {
			oldest, oldestUse = k, e.lastUse
		}
	}
	delete(c.entries, oldest)
}

// build rasterizes the master lattice: the region set's bounding box
// padded by one cell, at the key's cell size.
func (e *maskEntry) build(key maskKey, regions []*geo.Region) {
	cell := key.cellKm
	minX := key.minX - cell
	minY := key.minY - cell
	w, h := masterDims(key)
	if w < 1 || h < 1 || w*h > maxMasterCells {
		return // leave mask nil: callers fall back to direct rasterization
	}
	// A weightless Grid carries just the lattice geometry for the fill.
	g := &geo.Grid{Min: geo.V2(minX, minY), CellKm: cell, W: w, H: h}
	mask := make([]bool, w*h)
	for _, r := range regions {
		g.RasterizeRegionInto(r, mask)
	}
	e.minX, e.minY, e.w, e.h, e.mask = minX, minY, w, h, mask
}

// Apply writes excluded into every cell of g whose centre does not fall on
// land, resolving membership against the cached master for g's cell size.
// Returns false (grid untouched) when the master cannot be built, in which
// case the caller should rasterize directly.
//
// Each grid cell centre is mapped to the master cell containing it, so
// grids of any origin and extent share one master; the mask can differ
// from a direct rasterization by at most the master-cell quantization of
// the coastline, well inside the deliberate coarseness of the §2.5
// outlines.
func (c *LandMaskCache) Apply(g *geo.Grid, regions []*geo.Region, excluded float64) bool {
	if c == nil {
		return false
	}
	e := c.entryFor(regions, g.CellKm)
	if e == nil {
		return false
	}
	invCell := 1 / g.CellKm
	for y := 0; y < g.H; y++ {
		cy := g.Min.Y + (float64(y)+0.5)*g.CellKm
		my := int(math.Floor((cy - e.minY) * invCell))
		row := g.Weight[y*g.W : (y+1)*g.W]
		if my < 0 || my >= e.h {
			for x := range row {
				row[x] = excluded
			}
			continue
		}
		mrow := e.mask[my*e.w : (my+1)*e.w]
		// (cx-minX)/cell for x=0, advancing by exactly 1 per cell.
		fx := (g.Min.X - e.minX + 0.5*g.CellKm) * invCell
		for x := range row {
			mx := int(math.Floor(fx + float64(x)))
			if mx < 0 || mx >= e.w || !mrow[mx] {
				row[x] = excluded
			}
		}
	}
	return true
}
