package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"octant/internal/calib"
)

// Survey snapshots let a daemon restart warm: the O(n²) inter-landmark
// probing and calibration that NewSurvey performs is captured once and
// reloaded from disk, and the reloaded survey is bit-identical in every
// localization-visible way (RTTs, heights, κ, calibration curves, epoch).
//
// The format is versioned JSON. Measurement state is stored exactly —
// Go's float64 JSON round-trip is lossless (shortest-representation
// encoding) — and the fitted calibration curves are NOT stored: each
// calibration's sample set is, and the curves are refitted on load.
// calib.New is deterministic, so the refit reproduces the original hulls
// and blend parameters exactly, and the snapshot stays robust to internal
// calibration-representation changes. Per-landmark sample sets are stored
// separately from the RTT matrix because after an incremental rebuild a
// clean landmark's calibration legitimately lags the matrix on columns of
// dirty peers (see RebuildSurvey).

// snapshotVersion is bumped on incompatible format changes.
const snapshotVersion = 1

// surveySnapshot is the on-disk shape of a Survey.
type surveySnapshot struct {
	Version       int              `json:"version"`
	Epoch         uint64           `json:"epoch"`
	Kappa         float64          `json:"kappa"`
	UseHeights    bool             `json:"use_heights"`
	Probes        int              `json:"probes"`
	Landmarks     []Landmark       `json:"landmarks"`
	RTT           [][]float64      `json:"rtt"`
	Heights       []float64        `json:"heights"`
	CalibOpts     calib.Options    `json:"calib_opts"`
	CalibSamples  [][]calib.Sample `json:"calib_samples"`
	GlobalSamples []calib.Sample   `json:"global_samples"`
}

// WriteSnapshot serializes the survey to w in the versioned JSON snapshot
// format.
func (s *Survey) WriteSnapshot(w io.Writer) error {
	snap := surveySnapshot{
		Version:       snapshotVersion,
		Epoch:         s.Epoch,
		Kappa:         s.Kappa,
		UseHeights:    s.UseHeights,
		Probes:        s.Probes,
		Landmarks:     s.Landmarks,
		RTT:           s.RTT,
		Heights:       s.Heights,
		CalibOpts:     calib.Options{CutoffPercentile: s.calibCutoff()},
		CalibSamples:  make([][]calib.Sample, len(s.Calibs)),
		GlobalSamples: s.Global.Samples,
	}
	for i, c := range s.Calibs {
		snap.CalibSamples[i] = c.Samples
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// ReadSnapshot deserializes a survey written by WriteSnapshot, refitting
// the calibrations from their stored sample sets. The result is immutable
// and ready to serve, exactly like a freshly probed survey.
func ReadSnapshot(r io.Reader) (*Survey, error) {
	var snap surveySnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding survey snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: survey snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	n := len(snap.Landmarks)
	if n < 3 {
		return nil, fmt.Errorf("core: survey snapshot has %d landmarks, need ≥ 3", n)
	}
	if len(snap.RTT) != n || len(snap.Heights) != n || len(snap.CalibSamples) != n {
		return nil, fmt.Errorf("core: survey snapshot dimensions disagree (%d landmarks, %d rtt rows, %d heights, %d calibrations)",
			n, len(snap.RTT), len(snap.Heights), len(snap.CalibSamples))
	}
	for i, row := range snap.RTT {
		if len(row) != n {
			return nil, fmt.Errorf("core: survey snapshot rtt row %d has %d cols, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("core: survey snapshot rtt[%d][%d] = %v is not a valid RTT", i, j, v)
			}
		}
	}
	s := &Survey{
		Epoch:      snap.Epoch,
		Landmarks:  snap.Landmarks,
		RTT:        snap.RTT,
		Heights:    snap.Heights,
		Kappa:      snap.Kappa,
		UseHeights: snap.UseHeights,
		Probes:     snap.Probes,
		Calibs:     make([]*calib.Calibration, n),
	}
	for i, samples := range snap.CalibSamples {
		c, err := calib.New(samples, snap.CalibOpts)
		if err != nil {
			return nil, fmt.Errorf("core: refitting calibration %d (%s): %w", i, snap.Landmarks[i].Name, err)
		}
		s.Calibs[i] = c
	}
	g, err := calib.New(snap.GlobalSamples, snap.CalibOpts)
	if err != nil {
		return nil, fmt.Errorf("core: refitting global calibration: %w", err)
	}
	s.Global = g
	return s, nil
}

// SaveSnapshotFile writes the survey snapshot to path atomically (temp
// file + rename), so a crash mid-write never leaves a truncated snapshot
// where a warm start would read it.
func (s *Survey) SaveSnapshotFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".survey-snapshot-*")
	if err != nil {
		return fmt.Errorf("core: saving survey snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving survey snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving survey snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: saving survey snapshot: %w", err)
	}
	return nil
}

// LoadSnapshotFile reads a survey snapshot from path.
func LoadSnapshotFile(path string) (*Survey, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: loading survey snapshot: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}
