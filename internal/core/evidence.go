package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"time"

	"octant/internal/geo"
	"octant/internal/height"
	"octant/internal/hints"
	"octant/internal/measure"
	"octant/internal/probe"
	"octant/internal/stats"
	"octant/internal/undns"
)

// Built-in evidence source names, usable with WithoutSource and
// WithSourceWeight.
const (
	// SourceLatency is the §2.1–2.2 landmark RTT evidence: one positive
	// disk (R(d)) and, when informative, one negative disk (r(d)) per
	// landmark, height-adjusted.
	SourceLatency = "latency"
	// SourceRouter is the §2.3 piecewise router evidence from
	// traceroutes out of the lowest-latency landmarks.
	SourceRouter = "router"
	// SourceHint is the §2.5 exogenous positive evidence: the WHOIS
	// registration record plus any caller-supplied Hints.
	SourceHint = "hint"
	// SourceRDNS is the HLOC-style reverse-DNS hint evidence: city
	// tokens (IATA/CLLI/name) mined from the target's reverse name,
	// RTT-cross-validated before use.
	SourceRDNS = "rdns"
	// SourceGeoDB is the passive geolocation-database evidence: a
	// pluggable provider's record for the target, RTT-cross-validated
	// and applied as a weighted positive prior.
	SourceGeoDB = "geodb"
	// SourceGeography is the §2.5 ocean/uninhabitable negative evidence,
	// applied as the solver's hard land mask.
	SourceGeography = "geography"
)

// Request is the per-request state threaded through the evidence
// pipeline. Sources read the immutable survey context (Survey, PCtx,
// Cfg, Opts) and communicate through the measurement fields: the
// LatencySource fills RTTs/AdjPos/AdjNeg/TargetHeightMs for everything
// downstream, and the GeographySource sets Land for the solver.
//
// A Request lives for exactly one localization and is not retained by
// the pipeline afterwards; custom sources must not keep references to it.
type Request struct {
	// Target is the address being localized.
	Target string
	// Cfg is the Localizer's Config with defaults filled and any
	// per-request overrides (e.g. WithNegHeightPercentile) applied.
	Cfg Config
	// Opts are the request's resolved options.
	Opts LocalizeOptions
	// Survey is the (immutable) calibrated landmark survey.
	Survey *Survey
	// PCtx is the survey's shared projection context.
	PCtx *ProjectionContext
	// Prober issues this request's measurements. When the request
	// context can be cancelled it is the context-bound prober, so
	// sources need no ctx plumbing of their own for measurement calls.
	Prober probe.Prober
	// Resolver maps router DNS names to locations for the RouterSource.
	Resolver *undns.Resolver
	// Hints parses end-host reverse names for the RDNSSource. Nil means
	// the source skips (a zero-value Localizer has no engine).
	Hints *hints.Engine

	// RTTs is the min-filtered RTT from each survey landmark, in
	// landmark order. Filled by the LatencySource.
	RTTs []float64
	// AdjPos and AdjNeg are the height-adjusted RTT vectors for
	// positive and negative constraints (§2.2's conservative asymmetry).
	AdjPos, AdjNeg []float64
	// TargetHeightMs is the solved target height (0 when heights are
	// disabled or the solve failed).
	TargetHeightMs float64

	// Land is the solver's hard geographic mask (nil = no mask). Set by
	// the GeographySource from the projection context.
	Land []*geo.Region

	// Failures collects the per-landmark measurement failures the
	// LatencySource absorbed instead of aborting. Non-empty marks the
	// request degraded: the result carries partial evidence, and the
	// failed landmarks' RTT slots hold NaN, which every downstream
	// consumer skips.
	Failures []ProbeFailure

	// arena, when non-nil, bump-allocates disk-constraint memory. The
	// fused batch path sets it (one arena per worker, alive for the whole
	// batch); the scalar path leaves it nil and allocates per disk.
	arena *constraintArena

	// sched, when non-nil, is the Localizer's measurement scheduler:
	// the LatencySource fans its landmark pings and the RouterSource its
	// traceroutes through it. Nil means serialized measurement (the
	// pre-scheduler loops).
	sched *measure.Scheduler

	// Exogenous-prior bookkeeping for the disagreement report: the
	// applied hint and geo-DB disk centres, and every hint/record the
	// RTT cross-validation dropped. All empty on the default path.
	hintLocs  []geo.Point
	geodbLocs []geo.Point
	dropped   []DroppedHint
}

// disk builds a disk constraint for this request, drawing its memory from
// the request's arena when one is attached. Evidence sources should
// prefer it over diskConstraint so their constraints fuse into batch
// arenas automatically.
func (req *Request) disk(kind Kind, cf, lf geo.Frame, radiusKm, weight float64, source string) Constraint {
	if req.arena != nil {
		return req.arena.disk(kind, cf, lf, radiusKm, weight, source)
	}
	return diskConstraint(kind, cf, lf, radiusKm, weight, source)
}

// priorDisk builds the standard exogenous positive prior — a weighted
// disk of the given radius around a claimed location — shared by the
// WHOIS, caller-hint, rDNS-hint, and geo-DB sources, so the prior-style
// evidence classes stay geometrically consistent.
func (req *Request) priorDisk(loc geo.Point, radiusKm, weight float64, label string) Constraint {
	return req.disk(Positive, req.PCtx.Center, geo.NewFrame(loc), radiusKm, weight, label)
}

// SourceReport is one evidence source's provenance entry. Sources fill
// Source and (when they decline to run) Skipped; the pipeline fills the
// quantitative fields when the request asked for provenance.
type SourceReport struct {
	// Source is the source's Name().
	Source string `json:"source"`
	// Constraints is how many constraints the source contributed.
	Constraints int `json:"constraints"`
	// Weight is the total weight of the contributed constraints (after
	// scaling).
	Weight float64 `json:"weight"`
	// AreaKm2 is the summed area of the source's positive constraint
	// regions — its gross area contribution before combination.
	AreaKm2 float64 `json:"area_km2"`
	// WeightScale is the per-request scale applied to the source's
	// weights (1 when untuned).
	WeightScale float64 `json:"weight_scale,omitempty"`
	// ElapsedMs is the source's wall time, measurements included.
	ElapsedMs float64 `json:"elapsed_ms"`
	// MeasureMs is the share of ElapsedMs spent waiting on the network
	// (ping fan-out, traceroutes); ElapsedMs − MeasureMs is constraint
	// construction. Filled only when provenance was requested, and only
	// by the measuring sources (latency, router).
	MeasureMs float64 `json:"measure_ms,omitempty"`
	// Skipped is the reason the source contributed nothing ("" if it ran).
	Skipped string `json:"skipped,omitempty"`
	// Failures lists per-landmark measurement failures the source
	// absorbed instead of aborting the request: ping failures the
	// LatencySource degraded around, traceroutes the RouterSource
	// skipped with reason.
	Failures []ProbeFailure `json:"failures,omitempty"`
}

// ProbeFailure records one landmark whose measurement failed during a
// request, and why. Degraded-mode localization proceeds without that
// landmark's evidence and surfaces the failure in SourceReport.Failures
// and Provenance.Failures rather than aborting — the paper's weighted
// framework exists precisely to aggregate partial, noisy evidence.
type ProbeFailure struct {
	// Landmark is the failed landmark's name.
	Landmark string `json:"landmark"`
	// Reason is the underlying measurement error.
	Reason string `json:"reason"`
}

// Provenance explains how a localization was assembled; requested with
// WithExplain and returned in Result.Provenance.
type Provenance struct {
	// Sources reports every pipeline stage in execution order.
	Sources []SourceReport `json:"sources"`
	// ExtraConstraints counts caller-supplied constraints
	// (WithConstraints).
	ExtraConstraints int `json:"extra_constraints,omitempty"`
	// TotalConstraints is the size of the solved constraint system.
	TotalConstraints int `json:"total_constraints"`
	// SolveMs is the §2.4 solver's wall time.
	SolveMs float64 `json:"solve_ms"`
	// MeasureMs is the request's total measurement wall time (the sum of
	// the sources' MeasureMs) — the measure-vs-solve split that shows
	// where a paced deployment's latency actually goes.
	MeasureMs float64 `json:"measure_ms,omitempty"`
	// Failures names every landmark whose measurement failed when the
	// result is degraded. Unlike the rest of the provenance it is filled
	// even without WithExplain: a degraded result must always say which
	// evidence it is missing.
	Failures []ProbeFailure `json:"failures,omitempty"`
	// DroppedHints names every rDNS hint and geo-DB record the RTT
	// cross-validation rejected. Like Failures it is filled even without
	// WithExplain: evidence that was discarded must always say so.
	DroppedHints []DroppedHint `json:"dropped_hints,omitempty"`
	// Disagreement quantifies how far the request's exogenous priors and
	// its latency evidence point apart. Nil when the request applied no
	// hint or geo-DB prior; like DroppedHints it is filled even without
	// WithExplain.
	Disagreement *Disagreement `json:"disagreement,omitempty"`
}

// EvidenceSource is one stage of the localization pipeline: it converts
// the request's state into weighted constraints (§2.4 treats every
// information class — latency, routers, geography, exogenous hints — as
// constraints in one system, each weighted by confidence).
//
// Implementations must be safe for concurrent use across requests: the
// built-ins are stateless, and custom sources should keep per-request
// state on the Request, not on themselves. A source may also communicate
// with later stages by setting Request fields (the LatencySource fills
// the RTT vectors this way; the GeographySource sets the land mask).
type EvidenceSource interface {
	// Name identifies the source for options (WithoutSource,
	// WithSourceWeight) and provenance.
	Name() string
	// Constraints contributes the source's evidence for the request.
	// The returned report carries at least the source name; the
	// pipeline fills the quantitative provenance fields. Returning an
	// error aborts the localization.
	Constraints(ctx context.Context, req *Request) ([]Constraint, SourceReport, error)
}

// defaultSources is the paper's pipeline, in evidence order. The
// GeographySource runs last but contributes no constraints (it sets the
// solver mask), so constraint order matches the original monolithic
// Localize exactly: latency, router, hint, then the cross-validated
// priors (rdns, geodb) — both of which contribute nothing unless the
// target's reverse name carries a city token or a provider is
// configured, keeping the default path bit-identical to the
// pre-prior pipeline.
var defaultSources = [...]EvidenceSource{
	LatencySource{}, RouterSource{}, HintSource{}, RDNSSource{}, GeoDBSource{}, GeographySource{},
}

// DefaultSources returns the built-in evidence pipeline in execution
// order: LatencySource, RouterSource, HintSource, RDNSSource,
// GeoDBSource, GeographySource.
func DefaultSources() []EvidenceSource {
	out := make([]EvidenceSource, len(defaultSources))
	copy(out, defaultSources[:])
	return out
}

// LatencySource measures the target from every survey landmark and
// converts each RTT into the §2.1 positive/negative disk pair,
// height-adjusted per §2.2. It always measures — even when disabled by
// options — because every downstream source (router ranking, height
// deflation) consumes its RTT vector; disabling it only suppresses the
// constraints.
type LatencySource struct{}

// Name implements EvidenceSource.
func (LatencySource) Name() string { return SourceLatency }

// Constraints implements EvidenceSource.
func (LatencySource) Constraints(ctx context.Context, req *Request) ([]Constraint, SourceReport, error) {
	rep := SourceReport{Source: SourceLatency}
	s := req.Survey
	cfg := &req.Cfg
	n := s.N()

	// One backing array for the three RTT vectors: they are always
	// allocated together and the result retains only RTTs (the capped
	// sub-slices keep appends from aliasing).
	buf := make([]float64, 3*n)
	rtts := buf[:n:n]
	adjPos := buf[n : 2*n : 2*n]
	adjNeg := buf[2*n:]

	// 1. Measure the target from every landmark. A landmark that fails
	// to answer is recorded, not fatal: the paper's weighted framework
	// exists to aggregate partial evidence, so the request proceeds in
	// degraded mode as long as the quorum below holds. The failed
	// landmark's RTT slot is NaN, which every downstream consumer (the
	// height solve, the constraint loop, router ranking) skips. Only
	// the caller's own context expiring aborts — the caller is gone, so
	// there is no one to serve a degraded answer to.
	//
	// With a scheduler attached the pings fan out concurrently; the
	// serialized branch below is the same loop probe-for-probe. Both
	// produce identical slots, failure lists (landmark order), and abort
	// errors: the scheduler's slot-indexed placement means completion
	// order never leaks into the outputs.
	var failures []ProbeFailure
	timing := req.Opts.Explain
	var mt0 time.Time
	if timing {
		mt0 = time.Now()
	}
	if sched := req.sched; sched != nil {
		for _, lm := range s.Landmarks {
			if lm.Addr == req.Target {
				return nil, rep, fmt.Errorf("core: target %s is landmark %s; exclude it from the survey first", req.Target, lm.Name)
			}
		}
		perrs := make([]error, n)
		sched.PingMinInto(ctx, req.Prober, req.PCtx.Addrs, req.Target, cfg.Probes, s.Epoch, rtts, perrs)
		for i, err := range perrs {
			if err == nil {
				continue
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, rep, fmt.Errorf("core: ping %s→%s: %w", s.Landmarks[i].Name, req.Target, err)
			}
			rtts[i] = math.NaN()
			failures = append(failures, ProbeFailure{Landmark: s.Landmarks[i].Name, Reason: err.Error()})
		}
	} else {
		for i, lm := range s.Landmarks {
			if lm.Addr == req.Target {
				return nil, rep, fmt.Errorf("core: target %s is landmark %s; exclude it from the survey first", req.Target, lm.Name)
			}
			samples, err := req.Prober.Ping(lm.Addr, req.Target, cfg.Probes)
			if err == nil {
				var min float64
				if min, err = probe.MinRTT(samples); err == nil {
					rtts[i] = min
					continue
				}
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, rep, fmt.Errorf("core: ping %s→%s: %w", lm.Name, req.Target, err)
			}
			rtts[i] = math.NaN()
			failures = append(failures, ProbeFailure{Landmark: lm.Name, Reason: err.Error()})
		}
	}
	if timing {
		rep.MeasureMs = float64(time.Since(mt0)) / float64(time.Millisecond)
	}
	req.RTTs = rtts

	if len(failures) > 0 {
		quorum := req.Opts.MinLandmarks
		if quorum <= 0 {
			quorum = DefaultMinLandmarks
		}
		rep.Failures = failures
		req.Failures = failures
		if answered := n - len(failures); answered < quorum {
			return nil, rep, fmt.Errorf(
				"core: only %d/%d landmarks answered for %s (quorum %d); first failure: %s: %s",
				answered, n, req.Target, quorum, failures[0].Landmark, failures[0].Reason)
		}
	}

	// 2. Target height (§2.2): solve the coarse position, then estimate
	// the target's inelastic component from the excess-latency
	// distribution. Two estimates with different conservatism: positive
	// constraints deflate by a LOW height estimate (keeping R(d) safely
	// large), negative constraints by a HIGH one (keeping r(d) safely
	// small). An erroneous deflation then loosens, never breaks, the
	// constraint.
	// A partial RTT vector skips the height solve cleanly: NaN entries
	// would poison the least-squares system, and a height estimated from
	// a biased subset of landmarks is worse than no deflation — the
	// undeflated constraints are merely looser, never wrong.
	copy(adjPos, rtts)
	copy(adjNeg, rtts)
	if !cfg.DisableHeights && len(failures) == 0 {
		locs := make([]geo.Point, n)
		for i, lm := range s.Landmarks {
			locs[i] = lm.Loc
		}
		hres, err := height.SolveTargetK(locs, s.Heights, rtts, s.Kappa)
		if err == nil {
			excess := make([]float64, n)
			for i, lm := range s.Landmarks {
				excess[i] = rtts[i] - s.Heights[i] -
					s.Kappa*geo.DistanceToMinLatencyMs(lm.Loc.DistanceKm(hres.Coarse))
			}
			req.TargetHeightMs = hres.HeightMs
			tNeg := math.Max(req.TargetHeightMs, stats.Percentile(excess, cfg.NegHeightPercentile))
			for i := range rtts {
				adjPos[i] = height.AdjustRTT(rtts[i], s.Heights[i], req.TargetHeightMs)
				adjNeg[i] = height.AdjustRTT(rtts[i], s.Heights[i], tNeg)
			}
		}
	}
	req.AdjPos, req.AdjNeg = adjPos, adjNeg

	if req.Opts.sourceOff(SourceLatency) {
		rep.Skipped = "disabled by request (measurements retained)"
		return nil, rep, nil
	}

	// 3. Latency constraints from every landmark (§2.1). Sized for the
	// worst case (positive + negative per landmark), with headroom the
	// later pipeline stages' appends reuse through appendConstraints'
	// ownership transfer.
	out := make([]Constraint, 0, 2*n)
	cf := req.PCtx.Center
	for i, lm := range s.Landmarks {
		if math.IsNaN(rtts[i]) {
			continue // failed landmark (degraded mode); in rep.Failures
		}
		rawMax := s.Calibs[i].MaxDistanceKm(adjPos[i])
		rawMin := s.Calibs[i].MinDistanceKm(adjNeg[i])
		maxKm := rawMax*(1+cfg.PadFrac) + cfg.PadKm
		minKm := rawMin*cfg.NegativeShrink*(1-cfg.PadFrac) - cfg.PadKm
		w := LatencyWeight(rtts[i], cfg.WeightHalfLifeMs)
		if cfg.Unweighted {
			w = 1
		}
		if maxKm <= 0 {
			continue
		}
		lf := req.PCtx.LandmarkFrames[i]
		out = append(out, req.disk(Positive, cf, lf, maxKm, w, lm.Name))
		if !cfg.DisableNegative && minKm > 0 && minKm < maxKm {
			wn := w * cfg.NegativeWeightFactor
			if cfg.Unweighted {
				wn = 1
			}
			out = append(out, req.disk(Negative, cf, lf, minKm, wn, lm.Name+"/neg"))
		}
	}
	return out, rep, nil
}

// RouterSource issues traceroutes from the lowest-latency landmarks and
// converts undns-localized routers on the paths into extra positive
// constraints (§2.3). It requires the LatencySource's RTT vector for
// landmark ranking and height deflation.
type RouterSource struct{}

// Name implements EvidenceSource.
func (RouterSource) Name() string { return SourceRouter }

// Constraints implements EvidenceSource.
func (RouterSource) Constraints(ctx context.Context, req *Request) ([]Constraint, SourceReport, error) {
	rep := SourceReport{Source: SourceRouter}
	if req.Cfg.DisablePiecewise {
		rep.Skipped = "disabled by config"
		return nil, rep, nil
	}
	if len(req.RTTs) == 0 {
		rep.Skipped = "no latency measurements"
		return nil, rep, nil
	}
	cs, failed, measureNs := routerConstraints(ctx, req, req.Opts.Explain)
	rep.MeasureMs = float64(measureNs) / float64(time.Millisecond)
	// A failed traceroute is a skip-with-reason, never a request abort:
	// router evidence is supplementary, and the remaining landmarks'
	// traces (plus the latency constraints) still bound the target.
	rep.Failures = failed
	if len(cs) == 0 && len(failed) > 0 && rep.Skipped == "" {
		rep.Skipped = "all traceroutes failed"
	}
	return cs, rep, nil
}

// HintSource contributes exogenous positive priors: the §2.5 WHOIS
// registration record and any caller-supplied Hints (registry-style
// regions from HLOC-like pipelines).
type HintSource struct{}

// Name implements EvidenceSource.
func (HintSource) Name() string { return SourceHint }

// Constraints implements EvidenceSource.
func (HintSource) Constraints(ctx context.Context, req *Request) ([]Constraint, SourceReport, error) {
	rep := SourceReport{Source: SourceHint}
	cfg := &req.Cfg
	var out []Constraint
	if !cfg.DisableWhois {
		if loc, _, ok := req.Prober.Whois(req.Target); ok && loc.Valid() {
			out = append(out, req.priorDisk(loc, cfg.WhoisRadiusKm, cfg.WhoisWeight, "whois"))
		}
	}
	for _, h := range req.Opts.Hints {
		radius, weight, label := h.RadiusKm, h.Weight, h.Label
		if radius <= 0 {
			radius = cfg.WhoisRadiusKm
		}
		if weight <= 0 {
			weight = cfg.WhoisWeight
		}
		if label == "" {
			label = "hint"
		}
		out = append(out, req.priorDisk(h.Loc, radius, weight, label))
	}
	if len(out) == 0 && rep.Skipped == "" {
		if cfg.DisableWhois {
			rep.Skipped = "whois disabled by config, no hints supplied"
		} else {
			rep.Skipped = "no whois record, no hints supplied"
		}
	}
	return out, rep, nil
}

// GeographySource applies the §2.5 geographic negative information: it
// restricts solutions to the survey's projected landmass outlines by
// setting the solver's hard mask. It contributes no weighted
// constraints of its own.
type GeographySource struct{}

// Name implements EvidenceSource.
func (GeographySource) Name() string { return SourceGeography }

// Constraints implements EvidenceSource.
func (GeographySource) Constraints(ctx context.Context, req *Request) ([]Constraint, SourceReport, error) {
	rep := SourceReport{Source: SourceGeography}
	if req.Cfg.DisableOceans {
		rep.Skipped = "disabled by config"
		return nil, rep, nil
	}
	req.Land = req.PCtx.Land
	return nil, rep, nil
}
