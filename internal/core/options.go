package core

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"

	"octant/internal/geo"
	"octant/internal/geodb"
)

// LocalizeOption is a per-request tuning knob for the v2 localization
// entry point, Localizer.LocalizeContext. Options never mutate the
// Localizer — each request resolves its own LocalizeOptions, so two
// concurrent requests with different options are fully independent.
type LocalizeOption func(*LocalizeOptions)

// Hint is an exogenous positive prior for the HintSource: "registry-style
// information places the target near Loc". Zero RadiusKm and Weight fall
// back to the Config WHOIS defaults (WhoisRadiusKm, WhoisWeight), which
// is the calibrated confidence for city-level registration data.
type Hint struct {
	Loc      geo.Point
	RadiusKm float64
	Weight   float64
	// Label is the constraint's Source tag (default "hint").
	Label string
}

// Secondary describes a §2 secondary landmark for a request: a node whose
// own position is only known as the estimated region Beta (e.g. a
// previously localized router) plus its measured RTT to the target.
type Secondary struct {
	Beta  *geo.Region
	RTTMs float64
}

// LocalizeOptions is the resolved form of a request's options. The zero
// value means "exactly the Localizer's configured behaviour" — the v1
// request path. Fields are exported so serving front ends can map wire
// formats onto them 1:1; most callers use the With* functional options
// instead.
type LocalizeOptions struct {
	// Disabled turns off evidence sources by name (SourceLatency,
	// SourceRouter, SourceHint, SourceGeography, or a custom source's
	// name). Disabling SourceLatency suppresses its constraints but not
	// its measurements: downstream sources (router ranking, provenance)
	// still need the RTT vector.
	Disabled map[string]bool
	// WeightScale multiplies every constraint weight a source emits
	// (keyed by source name; 0 or absent means 1). Down-weighting
	// suspect traceroute evidence is WeightScale[SourceRouter] < 1.
	WeightScale map[string]float64
	// MinAreaKm2 overrides Config.MinRegionAreaKm2 (§2.4 size
	// threshold) for this request when > 0.
	MinAreaKm2 float64
	// FineCellKm overrides the solver's refinement resolution when > 0.
	FineCellKm float64
	// NegHeightPercentile overrides Config.NegHeightPercentile when > 0.
	NegHeightPercentile float64
	// MinLandmarks is the degraded-mode quorum: the minimum number of
	// landmarks that must answer for a localization to proceed when some
	// landmark measurements fail (0 = DefaultMinLandmarks). Failures at
	// or above the quorum degrade the result (Result.Degraded) instead
	// of aborting it; below the quorum the request errors.
	MinLandmarks int
	// Explain fills Result.Provenance with per-source constraint
	// counts, weights, area contributions, and timings.
	Explain bool
	// Hints are extra positive priors consumed by the HintSource.
	Hints []Hint
	// GeoDB overrides the Localizer's configured passive-geolocation
	// provider (Config.GeoDB) for this request. Requests carrying a
	// provider are never cached or coalesced by the batch engine: a
	// provider is arbitrary code whose contents cannot be fingerprinted
	// (only its name is encoded, for debugging).
	GeoDB geodb.Provider
	// Extra are caller-supplied constraints appended verbatim after
	// every source has contributed (they are never weight-scaled).
	Extra []Constraint
	// ExtraSources run after the built-in pipeline, in order. Requests
	// carrying extra sources are never cached or coalesced by the batch
	// engine (arbitrary code cannot be fingerprinted).
	ExtraSources []EvidenceSource
	// Secondary, when non-nil, adds the §2 secondary-landmark
	// constraints and re-solves, exactly as the deprecated
	// LocalizeWithSecondary did.
	Secondary *Secondary
}

// NewLocalizeOptions resolves functional options into a LocalizeOptions.
func NewLocalizeOptions(opts ...LocalizeOption) LocalizeOptions {
	var o LocalizeOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithoutSource disables the named evidence source for this request.
func WithoutSource(name string) LocalizeOption {
	return func(o *LocalizeOptions) {
		if o.Disabled == nil {
			o.Disabled = make(map[string]bool, 2)
		}
		o.Disabled[name] = true
	}
}

// WithSourceWeight scales every constraint weight the named source emits
// by scale, which must be > 0 (non-positive scales are ignored, keeping
// the option's behaviour and its cache fingerprint in agreement — to
// remove a source's evidence entirely, use WithoutSource). Use it to
// down-weight evidence classes the caller trusts less without
// discarding them outright.
func WithSourceWeight(name string, scale float64) LocalizeOption {
	return func(o *LocalizeOptions) {
		if scale <= 0 {
			return
		}
		if o.WeightScale == nil {
			o.WeightScale = make(map[string]float64, 2)
		}
		o.WeightScale[name] = scale
	}
}

// WithMinAreaKm2 overrides the §2.4 region size threshold per request:
// smaller trades containment confidence for precision.
func WithMinAreaKm2(km2 float64) LocalizeOption {
	return func(o *LocalizeOptions) { o.MinAreaKm2 = km2 }
}

// WithFineCellKm overrides the solver's fine-pass raster resolution.
func WithFineCellKm(km float64) LocalizeOption {
	return func(o *LocalizeOptions) { o.FineCellKm = km }
}

// WithNegHeightPercentile overrides the excess-latency percentile used
// to deflate negative constraints (Config.NegHeightPercentile).
func WithNegHeightPercentile(p float64) LocalizeOption {
	return func(o *LocalizeOptions) { o.NegHeightPercentile = p }
}

// DefaultMinLandmarks is the degraded-mode quorum when WithMinLandmarks
// is unset: a localization proceeds despite landmark failures while at
// least this many landmarks answered. Three is the floor below which
// the constraint system loses its geometry (the same minimum NewSurvey
// and the Localizer enforce for the survey itself).
const DefaultMinLandmarks = 3

// WithMinLandmarks sets the request's measurement quorum: while at
// least n landmarks answer, per-landmark measurement failures degrade
// the result (Result.Degraded, with reasons in Provenance.Failures)
// instead of failing the request; with fewer answers the request
// errors. n = 0 means DefaultMinLandmarks.
func WithMinLandmarks(n int) LocalizeOption {
	return func(o *LocalizeOptions) { o.MinLandmarks = n }
}

// WithExplain makes the request fill Result.Provenance.
func WithExplain() LocalizeOption {
	return func(o *LocalizeOptions) { o.Explain = true }
}

// WithHint adds an exogenous positive prior (WHOIS/registry-style) for
// the HintSource. Zero radiusKm/weight use the Config WHOIS defaults.
func WithHint(loc geo.Point, radiusKm, weight float64, label string) LocalizeOption {
	return func(o *LocalizeOptions) {
		o.Hints = append(o.Hints, Hint{Loc: loc, RadiusKm: radiusKm, Weight: weight, Label: label})
	}
}

// WithGeoDB supplies (or, over a Localizer already configured with one,
// replaces) the passive-geolocation provider the GeoDBSource consults
// for this request. Like WithEvidenceSource, it makes the request
// uncacheable in the batch engine.
func WithGeoDB(p geodb.Provider) LocalizeOption {
	return func(o *LocalizeOptions) { o.GeoDB = p }
}

// WithConstraints appends caller-supplied constraints to the system
// after every evidence source has run.
func WithConstraints(cs ...Constraint) LocalizeOption {
	return func(o *LocalizeOptions) { o.Extra = append(o.Extra, cs...) }
}

// WithEvidenceSource appends a custom evidence source to the pipeline,
// after the built-in sources. It observes the request's measurement
// state (RTTs, heights) like any built-in.
func WithEvidenceSource(s EvidenceSource) LocalizeOption {
	return func(o *LocalizeOptions) { o.ExtraSources = append(o.ExtraSources, s) }
}

// WithSecondary adds a §2 secondary landmark — a node known only as the
// region beta with measured RTT rttMs to the target — replacing the
// deprecated LocalizeWithSecondary method.
func WithSecondary(beta *geo.Region, rttMs float64) LocalizeOption {
	return func(o *LocalizeOptions) { o.Secondary = &Secondary{Beta: beta, RTTMs: rttMs} }
}

// sourceOff reports whether the request disabled the named source.
func (o *LocalizeOptions) sourceOff(name string) bool {
	return o.Disabled != nil && o.Disabled[name]
}

// scaleFor returns the weight scale for a source (1 when unset).
func (o *LocalizeOptions) scaleFor(name string) float64 {
	if o.WeightScale == nil {
		return 1
	}
	if s := o.WeightScale[name]; s > 0 {
		return s
	}
	return 1
}

// isZero reports a fully default options value — the v1-equivalent fast
// path that must stay allocation-free and bit-identical to Localize.
func (o *LocalizeOptions) isZero() bool {
	return o == nil || (len(o.Disabled) == 0 && len(o.WeightScale) == 0 &&
		o.MinAreaKm2 == 0 && o.FineCellKm == 0 && o.NegHeightPercentile == 0 &&
		o.MinLandmarks == 0 && !o.Explain && len(o.Hints) == 0 && o.GeoDB == nil &&
		len(o.Extra) == 0 && len(o.ExtraSources) == 0 && o.Secondary == nil)
}

// Cacheable reports whether two requests resolving to the same
// Fingerprint are guaranteed to compute the same result, making the
// request safe to cache and coalesce. Requests carrying ExtraSources or
// a GeoDB provider are not: arbitrary source/provider code cannot be
// fingerprinted by content.
func (o *LocalizeOptions) Cacheable() bool {
	return o == nil || (len(o.ExtraSources) == 0 && o.GeoDB == nil)
}

// Fingerprint returns a canonical encoding of the options such that two
// requests with the same fingerprint (and target, and survey epoch)
// compute identical results. The default options fingerprint is "" —
// the hot path pays no formatting cost. The batch engine qualifies its
// LRU and singleflight keys with it so differently-tuned requests never
// collide, while identical tunings still coalesce.
func (o *LocalizeOptions) Fingerprint() string {
	if o.isZero() {
		return ""
	}
	var b strings.Builder
	if len(o.Disabled) > 0 {
		names := make([]string, 0, len(o.Disabled))
		for name, off := range o.Disabled {
			if off {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		b.WriteString("d=")
		b.WriteString(strings.Join(names, ","))
		b.WriteByte(';')
	}
	if len(o.WeightScale) > 0 {
		names := make([]string, 0, len(o.WeightScale))
		for name := range o.WeightScale {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("w=")
		for i, name := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(name)
			b.WriteByte(':')
			b.WriteString(fpFloat(o.WeightScale[name]))
		}
		b.WriteByte(';')
	}
	if o.MinAreaKm2 != 0 {
		b.WriteString("a=" + fpFloat(o.MinAreaKm2) + ";")
	}
	if o.FineCellKm != 0 {
		b.WriteString("f=" + fpFloat(o.FineCellKm) + ";")
	}
	if o.NegHeightPercentile != 0 {
		b.WriteString("p=" + fpFloat(o.NegHeightPercentile) + ";")
	}
	if o.MinLandmarks != 0 {
		b.WriteString("q=" + strconv.Itoa(o.MinLandmarks) + ";")
	}
	if o.Explain {
		b.WriteString("e;")
	}
	if len(o.Hints) > 0 {
		h := fnv.New64a()
		for _, hint := range o.Hints {
			hashFloat(h, hint.Loc.Lat)
			hashFloat(h, hint.Loc.Lon)
			hashFloat(h, hint.RadiusKm)
			hashFloat(h, hint.Weight)
			h.Write([]byte(hint.Label))
			h.Write([]byte{0})
		}
		b.WriteString("h=" + strconv.FormatUint(h.Sum64(), 36) + ";")
	}
	if len(o.Extra) > 0 {
		h := fnv.New64a()
		for _, c := range o.Extra {
			hashConstraint(h, &c)
		}
		b.WriteString("c=" + strconv.Itoa(len(o.Extra)) + ":" + strconv.FormatUint(h.Sum64(), 36) + ";")
	}
	if len(o.ExtraSources) > 0 {
		// Content is not fingerprintable; Cacheable() is false, so this
		// component only keeps the encoding lossless for debugging.
		b.WriteString("s=" + strconv.Itoa(len(o.ExtraSources)) + ";")
	}
	if o.GeoDB != nil {
		// Same caveat as ExtraSources: the provider's name keeps the
		// encoding lossless, but Cacheable() is false.
		b.WriteString("g=" + o.GeoDB.Name() + ";")
	}
	if o.Secondary != nil {
		h := fnv.New64a()
		hashRegion(h, o.Secondary.Beta)
		b.WriteString("2=" + fpFloat(o.Secondary.RTTMs) + ":" + strconv.FormatUint(h.Sum64(), 36) + ";")
	}
	return b.String()
}

// fpFloat renders a float64 exactly (hex form) for fingerprints.
func fpFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

type hash64 interface {
	Write([]byte) (int, error)
	Sum64() uint64
}

func hashFloat(h hash64, f float64) {
	var buf [8]byte
	bits := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		buf[i] = byte(bits >> (8 * i))
	}
	h.Write(buf[:])
}

func hashRegion(h hash64, r *geo.Region) {
	if r == nil {
		return
	}
	for _, ring := range r.Rings {
		var buf [1]byte
		h.Write(buf[:]) // ring separator
		for _, v := range ring {
			hashFloat(h, v.X)
			hashFloat(h, v.Y)
		}
	}
}

func hashConstraint(h hash64, c *Constraint) {
	h.Write([]byte{byte(c.Kind)})
	hashFloat(h, c.Weight)
	h.Write([]byte(c.Source))
	h.Write([]byte{0})
	hashRegion(h, c.Region)
}
