package core

import "octant/internal/geo"

// ProjectionContext is the projection-dependent state that is fixed for a
// Survey: the centroid projection and its tangent frame, each landmark's
// precomputed frame and projected position, and the §2.5 land outlines
// projected into the survey's plane. All of it used to be rebuilt per
// Localize call — the land regions twice per LocalizeWithSecondary — even
// though none of it can change while the (immutable) Survey is in use.
//
// A context is immutable after NewProjectionContext and safe to share: the
// Localizer caches one, and the batch engine's workers inherit it through
// their shallow Localizer copies, exactly like the LandMaskCache.
type ProjectionContext struct {
	// Proj is the shared azimuthal equidistant projection centred at the
	// survey centroid. Results of every localization against the survey
	// reference this one projection.
	Proj *geo.Projection
	// Center is Proj's tangent frame, the constraint-construction fast
	// path's projection target.
	Center geo.Frame
	// LandmarkFrames[i] is the precomputed tangent frame of landmark i —
	// the per-disk frame build cost paid once per survey instead of twice
	// per landmark per target. A landmark's projected position, when
	// needed, is Center.ForwardVec(LandmarkFrames[i].U).
	LandmarkFrames []geo.Frame
	// Land holds the §2.5 landmass outlines projected into Proj's plane,
	// built once and passed to every solve as SolverOpts.LandRegions.
	Land []*geo.Region
	// Addrs[i] is landmark i's probing address — the measurement
	// scheduler's fan-out source list, materialized once per survey so
	// the per-request path never rebuilds it.
	Addrs []string

	survey *Survey // identity guard for the Localizer's cache
}

// NewProjectionContext builds the shared projection state for s.
func NewProjectionContext(s *Survey) *ProjectionContext {
	pr := geo.NewProjection(s.Centroid())
	cf := pr.Frame()
	ctx := &ProjectionContext{
		Proj:           pr,
		Center:         cf,
		LandmarkFrames: make([]geo.Frame, s.N()),
		Land:           LandRegions(pr),
		Addrs:          make([]string, s.N()),
		survey:         s,
	}
	for i, lm := range s.Landmarks {
		ctx.LandmarkFrames[i] = geo.NewFrame(lm.Loc)
		ctx.Addrs[i] = lm.Addr
	}
	return ctx
}

// projContext returns the Localizer's cached context, rebuilding it only if
// the Localizer was constructed without NewLocalizer or its Survey was
// swapped afterwards.
func (l *Localizer) projContext() *ProjectionContext {
	if l.pctx != nil && l.pctx.survey == l.Survey {
		return l.pctx
	}
	return NewProjectionContext(l.Survey)
}
