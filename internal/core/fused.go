package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"octant/internal/probe"
)

// Fused multi-target solve. A Localizer pins one survey epoch, so a batch
// through this file is exactly one fused group in the engine's
// (survey epoch, options fingerprint) grouping: the batch engine borrows
// one epoch per run and resolves one options set per run, then routes the
// whole run here.
//
// What the group shares, computed or rasterized once instead of per
// target:
//
//   - the resolved Config (defaults filled, per-request overrides
//     applied) and the resolved LocalizeOptions;
//   - the context-bound prober (one probe.WithContext wrapper per batch
//     instead of one per target);
//   - the projection context — survey-centroid frame, per-landmark
//     tangent frames, land outlines projected into the plane;
//   - the §2.5 land-mask master lattices: solver grids draw their cell
//     sizes from the quantized {FineCellKm · 2^k} set, and LandMaskCache
//     keys masters by (geometry, cell size) with a once-guarded build, so
//     the first target to solve at a given cell size rasterizes the
//     shared geography and every later target samples the same master.
//     Per-target weight grids themselves come from sync.Pool'd buffers
//     (geo.NewGrid), so steady-state solves reuse rather than reallocate
//     the 1M-cell lattices.
//
// What stays per target — measurements, constraint deltas, the two-pass
// weighted solve — runs on a bounded worker pool, with each worker
// sweeping its targets' disk constraints through one constraintArena so
// the per-disk allocation cost amortizes across the batch.
//
// Per-target results are bit-identical to sequential LocalizeContext
// calls under the same options: both paths assemble a Request and run the
// same localizeRequest body; the differential parity harness in
// fused_test.go enforces this.

// defaultFusedWorkers is LocalizeBatch's worker-pool width when the
// caller passes no explicit count. Measurement latency dominates bulk
// localization and overlaps across targets, so the default intentionally
// exceeds typical core counts.
const defaultFusedWorkers = 8

// LocalizeBatch estimates the position of every target with one fused
// batch solve. opts apply to every target (one options fingerprint — one
// group). The returned slices are parallel to targets: results[i] is nil
// exactly when errs[i] is non-nil. Cancelling ctx aborts in-flight
// targets at their next measurement and reports queued ones with ctx's
// error.
//
// Each result is bit-identical to what a sequential
// LocalizeContext(ctx, targets[i], opts...) call would return; batching
// changes throughput and allocation behaviour, never answers. Duplicate
// targets are each measured (use the batch engine for caching and
// coalescing).
func (l *Localizer) LocalizeBatch(ctx context.Context, targets []string, opts ...LocalizeOption) ([]*Result, []error) {
	if len(opts) == 0 {
		return l.LocalizeBatchWith(ctx, targets, 0, nil)
	}
	o := NewLocalizeOptions(opts...)
	return l.LocalizeBatchWith(ctx, targets, 0, &o)
}

// LocalizeBatchWith is LocalizeBatch over pre-resolved options and an
// explicit worker count (≤ 0 means the default), mirroring LocalizeWith:
// callers dispatching many batches under one tuning (the batch engine)
// resolve and fingerprint the options once and reuse them.
func (l *Localizer) LocalizeBatchWith(ctx context.Context, targets []string, workers int, o *LocalizeOptions) ([]*Result, []error) {
	results := make([]*Result, len(targets))
	errs := make([]error, len(targets))
	l.LocalizeBatchFunc(ctx, targets, workers, o, func(i int, res *Result, err error) {
		results[i], errs[i] = res, err
	})
	return results, errs
}

// LocalizeBatchFunc is the streaming form of LocalizeBatchWith: emit is
// invoked once per target, from worker goroutines as each target
// completes (so emit must be safe for concurrent use), and the call
// returns after the last emit. Streaming front ends (the batch engine's
// Run) use this to deliver fused results in completion order instead of
// waiting for the slowest target in the group.
func (l *Localizer) LocalizeBatchFunc(ctx context.Context, targets []string, workers int, o *LocalizeOptions, emit func(i int, res *Result, err error)) {
	l.localizeBatch(ctx, targets, workers, 0, o, emit)
}

// LocalizeBatchDeadline is LocalizeBatchFunc with a per-target deadline:
// each target's localization (measurement included) runs under its own
// timeout context starting when a worker picks it up, so queued targets
// get a full budget — the same contract as the batch engine's
// TargetTimeout on the per-target path. A zero timeout means no limit.
func (l *Localizer) LocalizeBatchDeadline(ctx context.Context, targets []string, workers int, timeout time.Duration, o *LocalizeOptions, emit func(i int, res *Result, err error)) {
	l.localizeBatch(ctx, targets, workers, timeout, o, emit)
}

func (l *Localizer) localizeBatch(ctx context.Context, targets []string, workers int, timeout time.Duration, o *LocalizeOptions, emit func(i int, res *Result, err error)) {
	if len(targets) == 0 {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := l.Survey
	if s == nil || s.N() < 3 {
		err := fmt.Errorf("core: localizer needs a survey with ≥ 3 landmarks")
		for i := range targets {
			emit(i, nil, err)
		}
		return
	}

	// Group-shared state, resolved once (see the file comment for the
	// full inventory). Everything here matches what LocalizeWith would
	// compute per target from the same inputs.
	cfg := l.Cfg
	cfg.fillDefaults()
	if o != nil && o.NegHeightPercentile > 0 {
		cfg.NegHeightPercentile = o.NegHeightPercentile
	}
	pctx := l.projContext()
	// Without per-target deadlines the whole group shares one
	// context-bound prober; with them, each target binds its own deadline
	// context when a worker picks it up (matching the per-target path's
	// TargetTimeout semantics exactly).
	prober := l.Prober
	if timeout <= 0 && ctx.Done() != nil {
		prober = probe.WithContext(ctx, l.Prober)
	}

	if workers <= 0 {
		workers = defaultFusedWorkers
	}
	if workers > len(targets) {
		workers = len(targets)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena per worker for the whole batch: constraint
			// memory is retained by the Results, so the arena only ever
			// grows, amortizing disk allocations across the worker's
			// share of the targets.
			arena := &constraintArena{}
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					emit(i, nil, err)
					continue
				}
				tctx, tprober := ctx, prober
				var cancel context.CancelFunc
				if timeout > 0 {
					tctx, cancel = context.WithTimeout(ctx, timeout)
					tprober = probe.WithContext(tctx, l.Prober)
				}
				req := &Request{
					Target:   targets[i],
					Cfg:      cfg,
					Survey:   s,
					PCtx:     pctx,
					Prober:   tprober,
					Resolver: l.Resolver,
					Hints:    l.Hints,
					arena:    arena,
					// Workers share the Localizer's scheduler, so a
					// batch's probe traffic is landmark-major in effect:
					// concurrent targets queue on the same per-landmark
					// buckets (and share cache/dedup) instead of each
					// fanning out blind.
					sched: l.sched,
				}
				if o != nil {
					req.Opts = *o
				}
				res, err := l.localizeRequest(tctx, req)
				if cancel != nil {
					cancel()
				}
				emit(i, res, err)
			}
		}()
	}
	for i := range targets {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
