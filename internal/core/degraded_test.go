package core

import (
	"context"
	"strings"
	"testing"

	"octant/internal/netsim"
	"octant/internal/probe"
)

// degradedFixture builds a deployment keeping the world handle so tests
// can inject faults between the survey build and localization.
func degradedFixture(t *testing.T, seed uint64) (*netsim.World, *Survey, *Localizer, []*netsim.Node, *netsim.Node) {
	t.Helper()
	w := netsim.NewWorld(netsim.Config{Seed: seed})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	target := hosts[0]
	var lms []Landmark
	for _, h := range hosts[1:] {
		lms = append(lms, Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	return w, s, NewLocalizer(p, s, Config{}), hosts[1:], target
}

// TestDegradedLocalizationUnderBlackholes is the acceptance check for
// degraded mode: with 20% of landmark→target paths blackholed,
// LocalizeContext returns a Degraded result (not an error) whose
// provenance names every failed landmark — and once the faults clear,
// the answer is bit-identical to the pre-fault baseline.
func TestDegradedLocalizationUnderBlackholes(t *testing.T) {
	w, _, loc, landmarks, target := degradedFixture(t, 3)
	ctx := context.Background()

	baseline, err := loc.LocalizeContext(ctx, target.Name)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Degraded {
		t.Fatal("healthy baseline reported degraded")
	}

	nDown := len(landmarks) / 5 // 20%
	downed := map[string]bool{}
	for _, lm := range landmarks[:nDown] {
		w.SetPairBlackhole(lm.ID, target.ID, true)
		downed[lm.Inst] = true
	}

	res, err := loc.LocalizeContext(ctx, target.Name)
	if err != nil {
		t.Fatalf("20%% landmark loss must degrade, not error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded despite failed landmarks")
	}
	if res.Provenance == nil {
		t.Fatal("degraded result carries no provenance")
	}
	named := map[string]bool{}
	for _, f := range res.Provenance.Failures {
		if f.Reason == "" {
			t.Errorf("failure for %s has no reason", f.Landmark)
		}
		named[f.Landmark] = true
	}
	if len(named) != len(downed) {
		t.Fatalf("provenance names %d failed landmarks, want %d", len(named), len(downed))
	}
	for lm := range downed {
		if !named[lm] {
			t.Errorf("blackholed landmark %s missing from provenance failures", lm)
		}
	}
	// Partial RTT vectors skip the height deflation entirely: looser
	// constraints are safe, a height fit over NaNs is not.
	if res.TargetHeightMs != 0 {
		t.Errorf("degraded result solved a height (%v ms) over partial RTTs", res.TargetHeightMs)
	}

	for _, lm := range landmarks[:nDown] {
		w.SetPairBlackhole(lm.ID, target.ID, false)
	}
	healed, err := loc.LocalizeContext(ctx, target.Name)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Degraded {
		t.Fatal("result still degraded after faults cleared")
	}
	sameResult(t, target.Name, baseline, healed)
}

func TestQuorumFailureReturnsError(t *testing.T) {
	w, _, loc, landmarks, target := degradedFixture(t, 7)
	ctx := context.Background()

	// Leave only 2 landmarks reachable: below the default quorum of 3.
	for _, lm := range landmarks[:len(landmarks)-2] {
		w.SetPairBlackhole(lm.ID, target.ID, true)
	}
	_, err := loc.LocalizeContext(ctx, target.Name)
	if err == nil {
		t.Fatal("2 answering landmarks should fail the default quorum of 3")
	}
	if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("quorum failure error should say so, got: %v", err)
	}

	// A caller that accepts 2 landmarks gets a degraded answer instead.
	res, err := loc.LocalizeContext(ctx, target.Name, WithMinLandmarks(2))
	if err != nil {
		t.Fatalf("quorum 2 with 2 answering landmarks: %v", err)
	}
	if !res.Degraded {
		t.Fatal("partial-evidence result not marked degraded")
	}

	// And a strict caller fails on a single missing landmark.
	for _, lm := range landmarks[1 : len(landmarks)-2] {
		w.SetPairBlackhole(lm.ID, target.ID, false)
	}
	if _, err := loc.LocalizeContext(ctx, target.Name, WithMinLandmarks(len(landmarks))); err == nil {
		t.Fatal("full-quorum caller should error when any landmark fails")
	}
}

// tracerouteFailer passes pings through but fails every traceroute —
// the shape of an ICMP-filtered path that still answers echo.
type tracerouteFailer struct {
	probe.Prober
}

func (f tracerouteFailer) Traceroute(src, dst string) ([]probe.Hop, error) {
	return nil, probe.ErrUnreachable
}

// TestRouterSourceSkipsFailedTraceroutes: traceroute failures are a
// skip-with-reason in the router source's report, never a request
// abort.
func TestRouterSourceSkipsFailedTraceroutes(t *testing.T) {
	w, s, _, _, target := degradedFixture(t, 3)
	loc := NewLocalizer(tracerouteFailer{Prober: probe.NewSimProber(w)}, s, Config{})
	res, err := loc.LocalizeContext(context.Background(), target.Name, WithExplain())
	if err != nil {
		t.Fatalf("traceroute failures must not abort the request: %v", err)
	}
	if res.Degraded {
		t.Fatal("router-evidence loss alone should not mark the result degraded")
	}
	var routerRep *SourceReport
	for i, rep := range res.Provenance.Sources {
		if rep.Source == SourceRouter {
			routerRep = &res.Provenance.Sources[i]
		}
	}
	if routerRep == nil {
		t.Fatal("no router source report in provenance")
	}
	if routerRep.Constraints != 0 {
		t.Fatalf("router source contributed %d constraints through a failing prober", routerRep.Constraints)
	}
	if routerRep.Skipped != "all traceroutes failed" {
		t.Fatalf("router skip reason = %q, want %q", routerRep.Skipped, "all traceroutes failed")
	}
	if len(routerRep.Failures) == 0 {
		t.Fatal("router report should name the landmarks whose traceroutes failed")
	}
	for _, f := range routerRep.Failures {
		if !strings.HasPrefix(f.Reason, "traceroute:") {
			t.Errorf("router failure reason %q should be traceroute-scoped", f.Reason)
		}
	}
}

// TestHintSourceSkipReasons: the hint source reports why it contributed
// nothing instead of failing silently.
func TestHintSourceSkipReasons(t *testing.T) {
	p, lms, target := testDeployment(t, 3, 0)
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	loc := NewLocalizer(p, s, Config{DisableWhois: true})
	res, err := loc.LocalizeContext(context.Background(), target.Name, WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Provenance.Sources {
		if rep.Source != SourceHint {
			continue
		}
		if rep.Skipped != "whois disabled by config, no hints supplied" {
			t.Fatalf("hint skip reason = %q", rep.Skipped)
		}
		return
	}
	t.Fatal("no hint source report in provenance")
}
