package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"octant/internal/geo"
	"octant/internal/geodb"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// hintDeployment builds a hint-bearing world, holds targetIdx out of the
// survey, and returns a localizer plus the target node.
func hintDeployment(t *testing.T, cfg netsim.Config, lcfg Config, targetIdx int) (*Localizer, *netsim.Node, *netsim.World) {
	t.Helper()
	w := netsim.NewWorld(cfg)
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	var lms []Landmark
	for i, h := range hosts {
		if i == targetIdx {
			continue
		}
		lms = append(lms, Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewLocalizer(p, s, lcfg), hosts[targetIdx], w
}

// hintedTargetIdx finds a host carrying a synthetic reverse name.
func hintedTargetIdx(t *testing.T, cfg netsim.Config) int {
	t.Helper()
	w := netsim.NewWorld(cfg)
	for i, h := range w.HostNodes() {
		if w.ReverseName(h.ID) != h.Name {
			return i
		}
	}
	t.Fatal("no hint-bearing host in world")
	return -1
}

// A truthful reverse-name hint must survive cross-validation and appear
// as an applied rdns constraint, with the disagreement report attached.
func TestRDNSSourceAppliesTruthfulHint(t *testing.T) {
	wcfg := netsim.Config{Seed: 1, HostRDNSHintFrac: 1}
	ti := hintedTargetIdx(t, wcfg)
	loc, target, _ := hintDeployment(t, wcfg, Config{}, ti)
	res, err := loc.LocalizeContext(context.Background(), target.Name, WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for _, c := range res.Constraints {
		if strings.HasPrefix(c.Source, "rdns:") {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("no rdns constraint applied for a hint-bearing target")
	}
	if len(res.Provenance.DroppedHints) != 0 {
		t.Errorf("truthful hint dropped: %v", res.Provenance.DroppedHints)
	}
	d := res.Provenance.Disagreement
	if d == nil {
		t.Fatal("no disagreement report despite applied hints")
	}
	if d.Conflict {
		t.Errorf("truthful hint flagged as conflict: %+v", d)
	}
	// Accuracy: the hint points at the city the target actually sits near.
	if res.Point.DistanceKm(target.Loc) > 150 {
		t.Errorf("hinted localization %0.f km off", res.Point.DistanceKm(target.Loc))
	}
}

// A poisoned reverse name (city ≥ 1500 km away) must be dropped by the
// RTT cross-validation, named in Provenance even without Explain, and
// must not change the answer relative to disabling the source.
func TestRDNSSourceDropsPoisonedHint(t *testing.T) {
	wcfg := netsim.Config{Seed: 1, HostRDNSHintFrac: 1, HostRDNSWrongFrac: 1}
	ti := hintedTargetIdx(t, wcfg)
	loc, target, _ := hintDeployment(t, wcfg, Config{}, ti)
	ctx := context.Background()

	res, err := loc.LocalizeContext(ctx, target.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance == nil || len(res.Provenance.DroppedHints) == 0 {
		t.Fatal("poisoned hint not recorded as dropped (drops must attach without Explain)")
	}
	dh := res.Provenance.DroppedHints[0]
	if !strings.HasPrefix(dh.Hint, "rdns:") || !strings.Contains(dh.Reason, "RTT bounds the target") {
		t.Errorf("dropped hint = %+v", dh)
	}
	for _, c := range res.Constraints {
		if strings.HasPrefix(c.Source, "rdns:") {
			t.Errorf("dropped hint still produced constraint %q", c.Source)
		}
	}

	ref, err := loc.LocalizeContext(ctx, target.Name, WithoutSource(SourceRDNS))
	if err != nil {
		t.Fatal(err)
	}
	if res.Point != ref.Point || res.AreaKm2 != ref.AreaKm2 {
		t.Errorf("dropped hint changed the answer: %v/%v vs %v/%v",
			res.Point, res.AreaKm2, ref.Point, ref.AreaKm2)
	}
}

// The geo-DB stage: a fresh record applies (labelled by record source,
// Composite trust scaling the weight), a wrong record is cross-validated
// away, and WithGeoDB overrides Config.GeoDB.
func TestGeoDBSourceAppliesAndDrops(t *testing.T) {
	wcfg := netsim.Config{Seed: 1}
	mk := func(opts geodb.SynthOpts) func(*netsim.World) geodb.Provider {
		return func(w *netsim.World) geodb.Provider { return geodb.NewSynth(w, opts) }
	}
	ctx := context.Background()

	// Fresh DB via Config.GeoDB.
	w := netsim.NewWorld(wcfg)
	loc, target, _ := hintDeployment(t, wcfg, Config{GeoDB: mk(geodb.SynthOpts{Seed: 1})(w)}, 0)
	res, err := loc.LocalizeContext(ctx, target.Name, WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Constraints {
		if c.Source == "geodb:synth" {
			found = true
		}
	}
	if !found {
		t.Fatal("no geodb constraint applied from Config.GeoDB")
	}
	if res.Provenance.Disagreement == nil {
		t.Error("no disagreement report despite applied geo-DB prior")
	}

	// Wrong DB via WithGeoDB (overriding the configured fresh one).
	wrong := geodb.NewSynth(w, geodb.SynthOpts{Seed: 1, WrongFrac: 1})
	res, err = loc.LocalizeContext(ctx, target.Name, WithGeoDB(wrong))
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance == nil || len(res.Provenance.DroppedHints) == 0 {
		t.Fatal("wrong geo-DB record not dropped")
	}
	if dh := res.Provenance.DroppedHints[0]; !strings.HasPrefix(dh.Hint, "geodb:synth-wrong") {
		t.Errorf("dropped = %+v", dh)
	}
	for _, c := range res.Constraints {
		if strings.HasPrefix(c.Source, "geodb:") {
			t.Errorf("dropped record still produced constraint %q", c.Source)
		}
	}
}

// Composite trust and staleness reach the constraint weight: a stale
// record under a decaying composite must weigh less than the same record
// served fresh.
func TestGeoDBCompositeWeightReachesConstraint(t *testing.T) {
	wcfg := netsim.Config{Seed: 1}
	w := netsim.NewWorld(wcfg)
	stale := geodb.NewSynth(w, geodb.SynthOpts{Seed: 1, StaleFrac: 1})
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	comp := geodb.NewComposite(geodb.CompositeOpts{
		StaleHalfLife: 365 * 24 * time.Hour,
		Now:           func() time.Time { return now },
	})
	comp.AddProvider(stale, 1)

	loc, target, _ := hintDeployment(t, wcfg, Config{}, 0)
	ctx := context.Background()
	weightOf := func(p geodb.Provider) float64 {
		t.Helper()
		res, err := loc.LocalizeContext(ctx, target.Name, WithGeoDB(p))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Constraints {
			if strings.HasPrefix(c.Source, "geodb:") {
				return c.Weight
			}
		}
		// Stale records drift 300 km, which a nearby landmark's RTT bound
		// may legitimately reject; that would void the comparison.
		t.Fatalf("no geodb constraint applied for %s", p.Name())
		return 0
	}
	direct := weightOf(stale)
	decayed := weightOf(comp)
	if decayed >= direct {
		t.Errorf("composite stale weight %v not below direct %v", decayed, direct)
	}
}

// Conflicting evidence classes (hint city vs DB city far apart, both
// feasible) must set the Conflict flag once past
// DisagreementConflictKm.
func TestDisagreementConflictFlag(t *testing.T) {
	wcfg := netsim.Config{Seed: 1, HostRDNSHintFrac: 1}
	ti := hintedTargetIdx(t, wcfg)
	// A tiny conflict threshold turns even the honest hint-vs-DB spread
	// into a flagged conflict — the flag wiring is what's under test.
	loc, target, _ := hintDeployment(t, wcfg, Config{DisagreementConflictKm: 0.001}, ti)
	w := netsim.NewWorld(wcfg)
	res, err := loc.LocalizeContext(context.Background(), target.Name,
		WithGeoDB(geodb.NewSynth(w, geodb.SynthOpts{Seed: 1})))
	if err != nil {
		t.Fatal(err)
	}
	d := res.Provenance.Disagreement
	if d == nil || !d.Conflict {
		t.Fatalf("conflict not flagged: %+v", d)
	}
	if d.DisagreementKm <= 0 || d.HintGeoDBKm <= 0 {
		t.Errorf("disagreement distances not filled: %+v", d)
	}
}

// validatePrior unit coverage: feasible claims pass, infeasible ones name
// the violated landmark; NaN slots (degraded landmarks) are skipped.
func TestValidatePrior(t *testing.T) {
	loc, target, _ := hintDeployment(t, netsim.Config{Seed: 1}, Config{}, 0)
	res, err := loc.LocalizeContext(context.Background(), target.Name)
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Survey: loc.Survey, RTTs: res.RTTs}
	if reason := req.validatePrior(target.Loc, 50); reason != "" {
		t.Errorf("truth rejected: %s", reason)
	}
	antipode := geo.Pt(-target.Loc.Lat, target.Loc.Lon+180)
	if reason := req.validatePrior(antipode, 50); reason == "" {
		t.Error("antipodal claim passed validation")
	}
	// Without a full RTT vector there is nothing to validate against.
	empty := &Request{Survey: loc.Survey}
	if reason := empty.validatePrior(antipode, 50); reason != "" {
		t.Errorf("unmeasured request rejected a claim: %s", reason)
	}
}
