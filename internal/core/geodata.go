package core

import (
	"sync"

	"octant/internal/geo"
)

// Coarse landmass outlines for the §2.5 geographic negative constraints
// ("oceans, deserts, uninhabitable areas"). A target cannot be in the
// ocean, so solutions are masked to these polygons. The outlines are
// deliberately coarse — tens of vertices — because their job is to remove
// the Atlantic/Pacific from transatlantic ambiguity, not to draw coastlines.
//
// Coordinates are (lat, lon) vertex lists in counter-clockwise order.

// landNorthAmerica traces the continental US, southern Canada and northern
// Mexico.
var landNorthAmerica = []geo.Point{
	{Lat: 29.0, Lon: -115.0},
	{Lat: 31.0, Lon: -106.0},
	{Lat: 26.0, Lon: -99.0},
	{Lat: 25.0, Lon: -97.2},
	{Lat: 28.5, Lon: -95.5},
	{Lat: 29.3, Lon: -89.5},
	{Lat: 30.2, Lon: -85.0},
	{Lat: 27.0, Lon: -82.8},
	{Lat: 24.8, Lon: -81.2},
	{Lat: 26.8, Lon: -79.8},
	{Lat: 31.8, Lon: -80.8},
	{Lat: 35.0, Lon: -75.4},
	{Lat: 38.8, Lon: -74.8},
	{Lat: 40.4, Lon: -73.7},
	{Lat: 41.2, Lon: -69.8},
	{Lat: 44.5, Lon: -65.9},
	{Lat: 47.3, Lon: -60.0},
	{Lat: 49.5, Lon: -62.0},
	{Lat: 48.5, Lon: -69.5},
	{Lat: 50.5, Lon: -79.0},
	{Lat: 52.0, Lon: -90.0},
	{Lat: 52.5, Lon: -110.0},
	{Lat: 51.5, Lon: -128.0},
	{Lat: 48.0, Lon: -125.2},
	{Lat: 42.0, Lon: -124.8},
	{Lat: 38.5, Lon: -123.4},
	{Lat: 36.0, Lon: -122.2},
	{Lat: 34.2, Lon: -120.8},
	{Lat: 32.4, Lon: -117.6},
}

// landEurope traces western/central Europe including the British Isles in
// one coarse blob (the small seas it swallows are irrelevant at the
// fidelity negative geographic constraints need).
var landEurope = []geo.Point{
	{Lat: 36.0, Lon: -10.0},
	{Lat: 43.2, Lon: -10.0},
	{Lat: 48.5, Lon: -6.3},
	{Lat: 51.5, Lon: -11.0},
	{Lat: 55.5, Lon: -8.5},
	{Lat: 58.8, Lon: -6.0},
	{Lat: 61.5, Lon: 4.0},
	{Lat: 63.0, Lon: 9.5},
	{Lat: 60.0, Lon: 17.5},
	{Lat: 56.0, Lon: 21.0},
	{Lat: 54.5, Lon: 28.0},
	{Lat: 48.0, Lon: 32.0},
	{Lat: 44.5, Lon: 29.5},
	{Lat: 40.8, Lon: 26.5},
	{Lat: 36.5, Lon: 22.5},
	{Lat: 35.0, Lon: 15.0},
	{Lat: 36.2, Lon: -5.8},
}

// landOutlinePoints is the single source of truth for the landmass set:
// LandRegions (the solver's ocean mask) and OnLand (the containment
// metric) must always agree on what counts as land.
var landOutlinePoints = [][]geo.Point{landNorthAmerica, landEurope}

// LandRegions projects the coarse landmass outlines into the given
// projection plane, ready to pass to SolverOpts.LandRegions.
func LandRegions(pr *geo.Projection) []*geo.Region {
	out := make([]*geo.Region, 0, len(landOutlinePoints))
	for _, outline := range landOutlinePoints {
		ring := make(geo.Ring, len(outline))
		for i, p := range outline {
			ring[i] = pr.Forward(p)
		}
		out = append(out, geo.RegionFromRing(ring))
	}
	return out
}

// landOutlineVecs caches the unit-vector form of the landmass outlines.
// Built once; OnLand runs in containment loops, and the previous
// implementation allocated a fresh Projection and re-projected both
// outlines for every query point.
var (
	landOutlineOnce sync.Once
	landOutlineVecs [][]geo.Vec3
)

func landOutlines() [][]geo.Vec3 {
	landOutlineOnce.Do(func() {
		for _, outline := range landOutlinePoints {
			vs := make([]geo.Vec3, len(outline))
			for i, p := range outline {
				vs[i] = geo.UnitVec(p)
			}
			landOutlineVecs = append(landOutlineVecs, vs)
		}
	})
	return landOutlineVecs
}

// OnLand reports whether a geographic point falls inside the coarse land
// outlines (used by tests and by the containment metric of Figure 4).
// Containment is evaluated directly on the sphere against the precomputed
// unit-vector outlines — no projection, no allocation.
func OnLand(p geo.Point) bool {
	u := geo.UnitVec(p)
	for _, outline := range landOutlines() {
		if geo.SpherePolyContains(outline, u) {
			return true
		}
	}
	return false
}
