package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"octant/internal/netsim"
	"octant/internal/probe"
)

// snapshotFixture builds a compact survey over a trimmed world.
func snapshotFixture(t *testing.T, seed uint64) (*probe.SimProber, *Survey, string) {
	t.Helper()
	w := netsim.NewWorld(netsim.Config{Seed: seed, Sites: netsim.DefaultSites[:16]})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	var lms []Landmark
	for _, h := range hosts[1:] {
		lms = append(lms, Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	return p, s, hosts[0].Name
}

// TestSnapshotRoundTripBitIdentical is the acceptance check: a survey
// saved and reloaded from disk yields bit-identical Localize output.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	p, s, target := snapshotFixture(t, 41)
	s.Epoch = 7 // non-zero epoch must survive the round trip

	path := filepath.Join(t.TempDir(), "survey.json")
	if err := s.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if got.Epoch != s.Epoch || got.Kappa != s.Kappa || got.UseHeights != s.UseHeights || got.N() != s.N() {
		t.Fatalf("header fields differ: %+v vs %+v", got.Epoch, s.Epoch)
	}
	for i := range s.RTT {
		for j := range s.RTT[i] {
			if got.RTT[i][j] != s.RTT[i][j] {
				t.Fatalf("rtt[%d][%d] %v != %v", i, j, got.RTT[i][j], s.RTT[i][j])
			}
		}
		if got.Heights[i] != s.Heights[i] {
			t.Fatalf("height[%d] %v != %v", i, got.Heights[i], s.Heights[i])
		}
	}
	// Refitted calibrations must evaluate identically everywhere the
	// solver queries them.
	for i, c := range s.Calibs {
		for rtt := 0.25; rtt < 200; rtt *= 1.7 {
			if a, b := c.MaxDistanceKm(rtt), got.Calibs[i].MaxDistanceKm(rtt); a != b {
				t.Fatalf("calib %d R(%v): %v != %v", i, rtt, a, b)
			}
			if a, b := c.MinDistanceKm(rtt), got.Calibs[i].MinDistanceKm(rtt); a != b {
				t.Fatalf("calib %d r(%v): %v != %v", i, rtt, a, b)
			}
		}
	}

	want, err := NewLocalizer(p, s, Config{}).Localize(target)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewLocalizer(p, got, Config{}).Localize(target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Point != want.Point || res.AreaKm2 != want.AreaKm2 ||
		res.Weight != want.Weight || res.TargetHeightMs != want.TargetHeightMs {
		t.Errorf("reloaded survey localizes %v/%v, original %v/%v",
			res.Point, res.AreaKm2, want.Point, want.AreaKm2)
	}
}

// TestSnapshotPreservesIncrementalCalibState: after an incremental
// rebuild, a clean landmark's calibration samples legitimately lag the
// RTT matrix; the snapshot must preserve that exactly rather than
// re-deriving samples from the matrix.
func TestSnapshotPreservesIncrementalCalibState(t *testing.T) {
	_, s, _ := snapshotFixture(t, 42)
	n := s.N()
	rtt := make([][]float64, n)
	for i := range rtt {
		rtt[i] = append([]float64(nil), s.RTT[i]...)
	}
	dirty := make([]bool, n)
	rtt[0][1] += 40
	rtt[1][0] += 40
	dirty[0], dirty[1] = true, true
	next, _, err := RebuildSurvey(s, rtt, dirty, 1)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := next.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range next.Calibs {
		for rttMs := 0.5; rttMs < 120; rttMs *= 2 {
			if a, b := next.Calibs[i].MaxDistanceKm(rttMs), got.Calibs[i].MaxDistanceKm(rttMs); a != b {
				t.Fatalf("calib %d R(%v) %v != %v after incremental round trip", i, rttMs, a, b)
			}
		}
	}
	if got.Epoch != 1 {
		t.Errorf("epoch = %d, want 1", got.Epoch)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":    "{",
		"bad version": `{"version": 99}`,
		"too few":     `{"version": 1, "landmarks": [{}, {}]}`,
	}
	for name, body := range cases {
		if _, err := ReadSnapshot(strings.NewReader(body)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	_, s, _ := snapshotFixture(t, 43)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncated stream must not yield a survey.
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated snapshot: want error")
	}
}
