package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"octant/internal/geo"
)

// localizeFixture builds one deployment and a default localizer for the
// v2 API tests.
func localizeFixture(t *testing.T, seed uint64, targetIdx int) (*Localizer, string) {
	t.Helper()
	p, lms, target := testDeployment(t, seed, targetIdx)
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewLocalizer(p, s, Config{}), target.Name
}

// sameResult asserts bitwise equality of every solver-derived field.
func sameResult(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if a.Point != b.Point {
		t.Errorf("%s: point %v != %v", name, a.Point, b.Point)
	}
	if a.AreaKm2 != b.AreaKm2 {
		t.Errorf("%s: area %v != %v", name, a.AreaKm2, b.AreaKm2)
	}
	if a.Weight != b.Weight {
		t.Errorf("%s: weight %v != %v", name, a.Weight, b.Weight)
	}
	if a.TargetHeightMs != b.TargetHeightMs {
		t.Errorf("%s: height %v != %v", name, a.TargetHeightMs, b.TargetHeightMs)
	}
	if !reflect.DeepEqual(a.RTTs, b.RTTs) {
		t.Errorf("%s: RTT vectors differ", name)
	}
	if len(a.Constraints) != len(b.Constraints) {
		t.Fatalf("%s: %d constraints != %d", name, len(a.Constraints), len(b.Constraints))
	}
	for i := range a.Constraints {
		ca, cb := a.Constraints[i], b.Constraints[i]
		if ca.Kind != cb.Kind || ca.Weight != cb.Weight || ca.Source != cb.Source {
			t.Errorf("%s: constraint %d header differs: %v vs %v", name, i, ca, cb)
		}
		if !reflect.DeepEqual(ca.Region.Rings, cb.Region.Rings) {
			t.Errorf("%s: constraint %d (%s) region differs", name, i, ca.Source)
		}
	}
	if !reflect.DeepEqual(a.Region.Rings, b.Region.Rings) {
		t.Errorf("%s: solution regions differ", name)
	}
}

// TestLocalizeContextDefaultBitIdentical: a default-options
// LocalizeContext must be bit-identical to the deprecated Localize,
// constraint for constraint. Both entry points share the pipeline now,
// so this guards the shim and the option-resolution fast path against
// future drift; equivalence with the pre-pipeline monolith itself was
// established when the refactor landed (identical Fig3/Fig4 outputs and
// unchanged BenchmarkLocalize allocations) and is pinned ongoing by the
// eval-figure tests and the serve-layer goldens.
func TestLocalizeContextDefaultBitIdentical(t *testing.T) {
	for _, ti := range []int{0, 17, 42} {
		loc, target := localizeFixture(t, 3, ti)
		v1, err := loc.Localize(target)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := loc.LocalizeContext(context.Background(), target)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, target, v1, v2)
		if v2.Provenance != nil {
			t.Errorf("%s: default options must not attach provenance", target)
		}
	}
}

// TestWithSecondaryBitIdenticalToDeprecated: the deprecated
// LocalizeWithSecondary wrapper and the WithSecondary option must agree
// exactly (old-vs-new bit identity for the folded-in method).
func TestWithSecondaryBitIdenticalToDeprecated(t *testing.T) {
	loc, target := localizeFixture(t, 5, 12)
	base, err := loc.Localize(target)
	if err != nil {
		t.Fatal(err)
	}
	pr := base.Projection
	beta := geo.Disk(pr.Forward(geo.Pt(42.44, -76.50)), 40, 64)

	old, err := loc.LocalizeWithSecondary(target, beta, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	new2, err := loc.LocalizeContext(context.Background(), target, WithSecondary(beta, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, target, old, new2)
	found := false
	for _, c := range new2.Constraints {
		if c.Source == "secondary" {
			found = true
		}
	}
	if !found {
		t.Error("secondary constraint missing from option path")
	}

	// With explain, provenance must describe the result actually
	// returned — secondary stage included.
	expl, err := loc.LocalizeContext(context.Background(), target, WithSecondary(beta, 2.5), WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	prov := expl.Provenance
	if prov == nil || prov.TotalConstraints != len(expl.Constraints) {
		t.Fatalf("secondary provenance total %v vs %d constraints", prov, len(expl.Constraints))
	}
	secRep := SourceReport{}
	total := 0
	for _, rep := range prov.Sources {
		total += rep.Constraints
		if rep.Source == "secondary" {
			secRep = rep
		}
	}
	if secRep.Source == "" || secRep.Constraints == 0 {
		t.Errorf("no secondary stage in provenance: %+v", prov.Sources)
	}
	if total != prov.TotalConstraints {
		t.Errorf("per-source counts sum to %d, total %d", total, prov.TotalConstraints)
	}
}

// TestExplainProvenance: WithExplain must fill per-source provenance
// whose counts reconcile with the solved constraint system.
func TestExplainProvenance(t *testing.T) {
	loc, target := localizeFixture(t, 3, 7)
	plain, err := loc.LocalizeContext(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loc.LocalizeContext(context.Background(), target, WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, target, plain, res) // explain must not perturb the solve
	prov := res.Provenance
	if prov == nil || len(prov.Sources) == 0 {
		t.Fatal("WithExplain returned no provenance")
	}
	if len(prov.Sources) != len(defaultSources) {
		t.Errorf("provenance covers %d sources, want %d", len(prov.Sources), len(defaultSources))
	}
	byName := map[string]SourceReport{}
	total := 0
	for _, rep := range prov.Sources {
		byName[rep.Source] = rep
		total += rep.Constraints
	}
	if total != prov.TotalConstraints || total != len(res.Constraints) {
		t.Errorf("per-source counts sum to %d, total %d, constraints %d",
			total, prov.TotalConstraints, len(res.Constraints))
	}
	lat := byName[SourceLatency]
	if lat.Constraints < loc.Survey.N() {
		t.Errorf("latency source reports %d constraints for %d landmarks", lat.Constraints, loc.Survey.N())
	}
	if lat.Weight <= 0 || lat.AreaKm2 <= 0 {
		t.Errorf("latency source report lacks weight/area: %+v", lat)
	}
	if geoRep := byName[SourceGeography]; geoRep.Constraints != 0 {
		t.Errorf("geography source should contribute 0 weighted constraints, got %d", geoRep.Constraints)
	}
}

// TestDisableRouterChangesConstraints: disabling the RouterSource per
// request must demonstrably change the constraint count, and the
// provenance must show the skip.
func TestDisableRouterChangesConstraints(t *testing.T) {
	loc, target := localizeFixture(t, 3, 11)
	full, err := loc.LocalizeContext(context.Background(), target, WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	nRouter := 0
	for _, rep := range full.Provenance.Sources {
		if rep.Source == SourceRouter {
			nRouter = rep.Constraints
		}
	}
	if nRouter == 0 {
		t.Fatal("fixture target has no router constraints; pick another target")
	}
	off, err := loc.LocalizeContext(context.Background(), target, WithoutSource(SourceRouter), WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(off.Constraints), len(full.Constraints)-nRouter; got != want {
		t.Errorf("router-off constraint count %d, want %d (full %d − router %d)",
			got, want, len(full.Constraints), nRouter)
	}
	for _, rep := range off.Provenance.Sources {
		if rep.Source == SourceRouter && rep.Skipped == "" {
			t.Error("router report not marked skipped")
		}
	}
}

// TestSourceWeightScaling: WithSourceWeight must scale exactly the named
// source's constraint weights.
func TestSourceWeightScaling(t *testing.T) {
	loc, target := localizeFixture(t, 5, 9)
	base, err := loc.LocalizeContext(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := loc.LocalizeContext(context.Background(), target, WithSourceWeight(SourceRouter, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Constraints) != len(scaled.Constraints) {
		t.Fatalf("constraint counts differ: %d vs %d", len(base.Constraints), len(scaled.Constraints))
	}
	routers := 0
	for i := range base.Constraints {
		cb, cs := base.Constraints[i], scaled.Constraints[i]
		isRouter := len(cb.Source) > 7 && cb.Source[:7] == "router:"
		if isRouter {
			routers++
			if cs.Weight != cb.Weight*0.5 {
				t.Errorf("router constraint %s weight %v, want %v", cb.Source, cs.Weight, cb.Weight*0.5)
			}
		} else if cs.Weight != cb.Weight {
			t.Errorf("non-router constraint %s weight changed: %v vs %v", cb.Source, cs.Weight, cb.Weight)
		}
	}
	if routers == 0 {
		t.Error("no router constraints in fixture")
	}
}

// TestHintAndExtraConstraints: caller hints and extra constraints enter
// the system and show in provenance.
func TestHintAndExtraConstraints(t *testing.T) {
	loc, target := localizeFixture(t, 5, 20)
	base, err := loc.LocalizeContext(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	extra := PositiveDisk(base.Projection, base.Point, 500, 0.3, "caller")
	res, err := loc.LocalizeContext(context.Background(), target,
		WithHint(base.Point, 120, 0.6, "registry"),
		WithConstraints(extra),
		WithExplain(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Constraints), len(base.Constraints)+2; got != want {
		t.Errorf("constraints %d, want %d", got, want)
	}
	var hasHint, hasCaller bool
	for _, c := range res.Constraints {
		switch c.Source {
		case "registry":
			hasHint = true
		case "caller":
			hasCaller = true
		}
	}
	if !hasHint || !hasCaller {
		t.Errorf("hint present %v, caller constraint present %v", hasHint, hasCaller)
	}
	if res.Provenance.ExtraConstraints != 1 {
		t.Errorf("provenance extra constraints %d, want 1", res.Provenance.ExtraConstraints)
	}
}

// TestSolverOverrides: per-request solver knobs must change the solve in
// the documented direction without touching the Localizer.
func TestSolverOverrides(t *testing.T) {
	loc, target := localizeFixture(t, 3, 25)
	base, err := loc.LocalizeContext(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := loc.LocalizeContext(context.Background(), target, WithMinAreaKm2(4*base.AreaKm2))
	if err != nil {
		t.Fatal(err)
	}
	if wide.AreaKm2 < base.AreaKm2 {
		t.Errorf("larger size threshold shrank the region: %v < %v", wide.AreaKm2, base.AreaKm2)
	}
	// The Localizer itself is untouched: a follow-up default request
	// reproduces the baseline exactly.
	again, err := loc.LocalizeContext(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, target, base, again)
}

// TestLatencyDisabledStillMeasures: with the latency source disabled, a
// hint-driven localization still works and downstream sources still see
// the RTT vector.
func TestLatencyDisabledStillMeasures(t *testing.T) {
	p, lms, target := testDeployment(t, 5, 30)
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	loc := NewLocalizer(p, s, Config{})
	res, err := loc.LocalizeContext(context.Background(), target.Name,
		WithoutSource(SourceLatency),
		WithHint(target.Loc, 200, 0.9, "oracle"),
		WithExplain(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RTTs) != s.N() {
		t.Errorf("RTT vector %d, want %d (measurement must survive the disable)", len(res.RTTs), s.N())
	}
	for _, rep := range res.Provenance.Sources {
		if rep.Source == SourceLatency {
			if rep.Constraints != 0 || rep.Skipped == "" {
				t.Errorf("latency report = %+v, want skipped with 0 constraints", rep)
			}
		}
	}
	if res.Region.IsEmpty() || math.IsNaN(res.Point.Lat) {
		t.Error("hint-driven localization produced no estimate")
	}
}

// TestCancelledContextAborts: a pre-cancelled context must abort the
// measurement phase with the context error.
func TestCancelledContextAborts(t *testing.T) {
	loc, target := localizeFixture(t, 3, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := loc.LocalizeContext(ctx, target); err == nil {
		t.Error("cancelled context did not abort the localization")
	}
}

// TestCustomEvidenceSource: a request-scoped custom source contributes
// constraints and appears in provenance under its own name.
type oracleSource struct{ loc geo.Point }

func (o oracleSource) Name() string { return "oracle" }
func (o oracleSource) Constraints(_ context.Context, req *Request) ([]Constraint, SourceReport, error) {
	c := PositiveDisk(req.PCtx.Proj, o.loc, 150, 0.9, "oracle")
	return []Constraint{c}, SourceReport{Source: "oracle"}, nil
}

func TestCustomEvidenceSource(t *testing.T) {
	p, lms, target := testDeployment(t, 3, 33)
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	loc := NewLocalizer(p, s, Config{})
	res, err := loc.LocalizeContext(context.Background(), target.Name,
		WithEvidenceSource(oracleSource{loc: target.Loc}), WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rep := range res.Provenance.Sources {
		if rep.Source == "oracle" && rep.Constraints == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("custom source missing from provenance: %+v", res.Provenance.Sources)
	}
	var o LocalizeOptions
	WithEvidenceSource(oracleSource{})(&o)
	if o.Cacheable() {
		t.Error("options with extra sources must not be cacheable")
	}
}

// TestFingerprint pins the fingerprint contract the batch engine keys
// its cache on: default == "", equal options collide, different options
// never do.
func TestFingerprint(t *testing.T) {
	var def LocalizeOptions
	if fp := def.Fingerprint(); fp != "" {
		t.Errorf("default fingerprint %q, want empty", fp)
	}
	mk := func(opts ...LocalizeOption) string {
		o := NewLocalizeOptions(opts...)
		return o.Fingerprint()
	}
	a := mk(WithoutSource(SourceRouter), WithMinAreaKm2(1000))
	b := mk(WithMinAreaKm2(1000), WithoutSource(SourceRouter))
	if a == "" || a != b {
		t.Errorf("order-independent options fingerprint differently: %q vs %q", a, b)
	}
	distinct := []string{
		"",
		mk(WithoutSource(SourceRouter)),
		mk(WithoutSource(SourceGeography)),
		mk(WithSourceWeight(SourceRouter, 0.5)),
		mk(WithSourceWeight(SourceRouter, 0.25)),
		mk(WithMinAreaKm2(1000)),
		mk(WithFineCellKm(8)),
		mk(WithNegHeightPercentile(90)),
		mk(WithExplain()),
		mk(WithHint(geo.Pt(1, 2), 50, 0.5, "x")),
		mk(WithHint(geo.Pt(1, 2), 50, 0.5, "y")),
		mk(WithSecondary(geo.Disk(geo.V2(0, 0), 10, 16), 2)),
		mk(WithSecondary(geo.Disk(geo.V2(0, 0), 10, 16), 3)),
	}
	seen := map[string]int{}
	for i, fp := range distinct {
		if j, dup := seen[fp]; dup {
			t.Errorf("options %d and %d share fingerprint %q", i, j, fp)
		}
		seen[fp] = i
	}
}
