package core

import (
	"math"
	"testing"

	"octant/internal/geo"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// testDeployment builds a world, a prober, landmarks for all hosts except
// the target index, and the target host node.
func testDeployment(t *testing.T, seed uint64, targetIdx int) (*probe.SimProber, []Landmark, *netsim.Node) {
	t.Helper()
	w := netsim.NewWorld(netsim.Config{Seed: seed})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	var lms []Landmark
	for i, h := range hosts {
		if i == targetIdx {
			continue
		}
		lms = append(lms, Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	return p, lms, hosts[targetIdx]
}

func TestNewSurvey(t *testing.T) {
	p, lms, _ := testDeployment(t, 3, 0)
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != len(lms) {
		t.Fatalf("N = %d", s.N())
	}
	// RTT matrix symmetric with zero diagonal.
	for i := 0; i < s.N(); i++ {
		if s.RTT[i][i] != 0 {
			t.Errorf("RTT[%d][%d] = %v", i, i, s.RTT[i][i])
		}
		for j := i + 1; j < s.N(); j++ {
			if s.RTT[i][j] != s.RTT[j][i] {
				t.Errorf("RTT asymmetric at (%d,%d)", i, j)
			}
			if s.RTT[i][j] <= 0 {
				t.Errorf("RTT[%d][%d] = %v not positive", i, j, s.RTT[i][j])
			}
		}
	}
	// Heights non-negative and plausible.
	for i, h := range s.Heights {
		if h < 0 || h > 25 {
			t.Errorf("height[%d] = %v implausible", i, h)
		}
	}
	// Kappa in its clamp range and realistic.
	if s.Kappa < 1 || s.Kappa > 3 {
		t.Errorf("kappa = %v", s.Kappa)
	}
	if s.Global == nil || len(s.Calibs) != s.N() {
		t.Error("missing calibrations")
	}
	// Too few landmarks.
	if _, err := NewSurvey(p, lms[:2], SurveyOpts{}); err == nil {
		t.Error("2 landmarks should error")
	}
}

func TestSurveySubset(t *testing.T) {
	p, lms, _ := testDeployment(t, 3, 0)
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 5, 10, 15, 20, 25, 30}
	sub, err := s.Subset(idx)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != len(idx) {
		t.Fatalf("subset N = %d", sub.N())
	}
	// Measurements are reused, not re-measured.
	for a, i := range idx {
		for b, j := range idx {
			if sub.RTT[a][b] != s.RTT[i][j] {
				t.Fatalf("subset RTT mismatch at (%d,%d)", a, b)
			}
		}
	}
	if _, err := s.Subset([]int{1, 2}); err == nil {
		t.Error("subset of 2 should error")
	}
}

func TestLocalizeEndToEnd(t *testing.T) {
	// Localize a handful of targets; errors must be bounded and regions
	// usually contain the truth.
	var errsMi []float64
	contained := 0
	n := 0
	for _, ti := range []int{0, 10, 20, 30, 40} {
		p, lms, target := testDeployment(t, 3, ti)
		s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
		if err != nil {
			t.Fatal(err)
		}
		loc := NewLocalizer(p, s, Config{})
		res, err := loc.Localize(target.Name)
		if err != nil {
			t.Fatalf("localize %s: %v", target.Inst, err)
		}
		n++
		e := res.Point.DistanceMiles(target.Loc)
		errsMi = append(errsMi, e)
		if e > 600 {
			t.Errorf("target %s error %.0f mi is out of any plausible range", target.Inst, e)
		}
		if res.ContainsTruth(target.Loc) {
			contained++
		}
		if res.AreaKm2 <= 0 {
			t.Errorf("target %s empty region", target.Inst)
		}
		if res.TargetHeightMs < 0 {
			t.Errorf("negative height %v", res.TargetHeightMs)
		}
		if len(res.RTTs) != s.N() {
			t.Errorf("RTTs length %d", len(res.RTTs))
		}
		if len(res.Constraints) < s.N() {
			t.Errorf("expected ≥ %d constraints, got %d", s.N(), len(res.Constraints))
		}
	}
	if contained < n/2 {
		t.Errorf("only %d/%d targets contained in their regions", contained, n)
	}
	var sum float64
	for _, e := range errsMi {
		sum += e
	}
	if mean := sum / float64(n); mean > 250 {
		t.Errorf("mean error %.0f mi too high for the default config", mean)
	}
}

func TestLocalizeRejectsLandmarkTarget(t *testing.T) {
	p, lms, _ := testDeployment(t, 3, 0)
	s, err := NewSurvey(p, lms, SurveyOpts{})
	if err != nil {
		t.Fatal(err)
	}
	loc := NewLocalizer(p, s, Config{})
	if _, err := loc.Localize(lms[0].Addr); err == nil {
		t.Error("localizing a survey landmark should error")
	}
	if _, err := loc.Localize("no-such-host.example.com"); err == nil {
		t.Error("unknown target should error")
	}
}

func TestLocalizeAblationsRun(t *testing.T) {
	// Every ablation switch must produce a result (robustness of the
	// pipeline, not accuracy).
	p, lms, target := testDeployment(t, 5, 7)
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := map[string]Config{
		"no-heights":   {DisableHeights: true},
		"no-negative":  {DisableNegative: true},
		"no-piecewise": {DisablePiecewise: true},
		"no-whois":     {DisableWhois: true},
		"no-oceans":    {DisableOceans: true},
	}
	for name, cfg := range cfgs {
		loc := NewLocalizer(p, s, cfg)
		res, err := loc.Localize(target.Name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Region.IsEmpty() {
			t.Errorf("%s: empty region", name)
		}
		if e := res.Point.DistanceMiles(target.Loc); e > 900 {
			t.Errorf("%s: error %.0f mi", name, e)
		}
	}
}

func TestLocalizeUnweightedIsBrittleButRuns(t *testing.T) {
	p, lms, target := testDeployment(t, 5, 3)
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	loc := NewLocalizer(p, s, Config{Unweighted: true})
	res, err := loc.Localize(target.Name)
	if err != nil {
		t.Fatal(err)
	}
	// Either a (possibly empty) region, or a NaN point for the empty
	// case — never a crash.
	if res.Region.IsEmpty() && !math.IsNaN(res.Point.Lat) {
		t.Error("empty region should carry NaN point")
	}
}

func TestLocalizeWithSecondary(t *testing.T) {
	p, lms, target := testDeployment(t, 5, 12)
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	loc := NewLocalizer(p, s, Config{})
	base, err := loc.Localize(target.Name)
	if err != nil {
		t.Fatal(err)
	}
	// Pretend a previously localized router 100km from the target has a
	// small RTT to it.
	pr := base.Projection
	routerRegion := geo.Disk(pr.Forward(target.Loc.Destination(0, 80)), 40, 64)
	res, err := loc.LocalizeWithSecondary(target.Name, routerRegion, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Region.IsEmpty() {
		t.Fatal("secondary localization emptied the region")
	}
	if e := res.Point.DistanceMiles(target.Loc); e > 500 {
		t.Errorf("error with secondary landmark %.0f mi", e)
	}
	// The secondary constraint must be present.
	found := false
	for _, c := range res.Constraints {
		if c.Source == "secondary" {
			found = true
		}
	}
	if !found {
		t.Error("secondary constraint missing")
	}
}

func TestResultContainsTruthEmptyRegion(t *testing.T) {
	r := &Result{Region: geo.EmptyRegion(), Projection: geo.NewProjection(geo.Pt(0, 0))}
	if r.ContainsTruth(geo.Pt(0, 0)) {
		t.Error("empty region contains nothing")
	}
}

func TestLandRegionsProject(t *testing.T) {
	pr := geo.NewProjection(geo.Pt(40, -90))
	regs := LandRegions(pr)
	if len(regs) != 2 {
		t.Fatalf("expected 2 land regions, got %d", len(regs))
	}
	for _, r := range regs {
		if r.IsEmpty() {
			t.Error("land region empty after projection")
		}
	}
	// Denver projects inside North America.
	if !regs[0].Contains(pr.Forward(geo.Pt(39.74, -104.99))) {
		t.Error("Denver should be inside the North America outline")
	}
}
