package core

import (
	"testing"

	"octant/internal/geo"
)

// TestOnLandMatchesProjectedReference sweeps a lat/lon lattice and compares
// the spherical OnLand against the previous implementation (project the
// outlines into a fresh azimuthal plane centred at the query point, test
// planar containment). The comparison only applies on the outlines' own
// hemispheres: near the antipode of an outline the old path was simply
// wrong — the azimuthal projection inflates the far-away outline into a
// near-circumference ring that can swallow the query point, which is how
// stretches of the Southern Ocean used to test as "on land". Off the
// hemispheres the new implementation must report ocean, full stop.
//
// On the hemispheres the two draw polygon edges differently — great
// circles versus projected straight lines — so isolated disagreements may
// occur right at outline boundaries, but they must stay rare.
func TestOnLandMatchesProjectedReference(t *testing.T) {
	reference := func(p geo.Point) bool {
		pr := geo.NewProjection(p)
		v := pr.Forward(p)
		for _, r := range LandRegions(pr) {
			if r.Contains(v) {
				return true
			}
		}
		return false
	}
	hemiCenters := []geo.Vec3{
		geo.UnitVec(geo.Pt(42, -95)), // North America outline
		geo.UnitVec(geo.Pt(49, 10)),  // Europe outline
	}
	checked, mismatches := 0, 0
	for lat := -60.0; lat <= 72.0; lat += 1.5 {
		for lon := -180.0; lon < 180.0; lon += 1.5 {
			p := geo.Pt(lat, lon)
			u := geo.UnitVec(p)
			nearLand := false
			for _, c := range hemiCenters {
				if c.Dot(u) > 0 {
					nearLand = true
				}
			}
			if !nearLand {
				if OnLand(p) {
					t.Fatalf("%v is in the outlines' far hemisphere and must be ocean", p)
				}
				continue
			}
			checked++
			if OnLand(p) != reference(p) {
				mismatches++
			}
		}
	}
	if mismatches > checked/400 { // 0.25%: boundary-edge discretization only
		t.Errorf("OnLand disagrees with projected reference at %d of %d lattice points", mismatches, checked)
	}
}

// TestOnLandAntipode guards the winding-sum degeneracy: the antipode of a
// continental interior point must stay ocean.
func TestOnLandAntipode(t *testing.T) {
	denver := geo.Pt(39.74, -104.99)
	if !OnLand(denver) {
		t.Fatal("Denver should be on land")
	}
	antipode := geo.Pt(-39.74, 75.01) // southern Indian Ocean
	if OnLand(antipode) {
		t.Error("Denver's antipode should be ocean")
	}
}
