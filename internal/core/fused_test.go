package core

import (
	"context"
	"math/rand/v2"
	"testing"

	"octant/internal/geo"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// fusedFixture builds one world and a localizer whose survey holds out
// nHold hosts as localization targets, then returns n target addresses
// cycling over the held-out hosts (duplicates are fine: the simulated
// measurements are deterministic, so repeats must reproduce bit-identical
// results — which doubles as a parity check of its own).
func fusedFixture(t testing.TB, seed uint64, nHold, n int) (*Localizer, []string) {
	t.Helper()
	w := netsim.NewWorld(netsim.Config{Seed: seed})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	if nHold >= len(hosts)-3 {
		t.Fatalf("fixture wants %d held-out hosts of %d", nHold, len(hosts))
	}
	var lms []Landmark
	for _, h := range hosts[nHold:] {
		lms = append(lms, Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]string, n)
	for i := range targets {
		targets[i] = hosts[i%nHold].Name
	}
	return NewLocalizer(p, s, Config{}), targets
}

// sameProvenance compares the deterministic provenance fields (timings
// excluded — they can never be bit-identical across runs).
func sameProvenance(t *testing.T, name string, a, b *Provenance) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: provenance presence differs: %v vs %v", name, a != nil, b != nil)
	}
	if a == nil {
		return
	}
	if a.TotalConstraints != b.TotalConstraints || a.ExtraConstraints != b.ExtraConstraints {
		t.Errorf("%s: provenance totals differ: %d/%d vs %d/%d",
			name, a.TotalConstraints, a.ExtraConstraints, b.TotalConstraints, b.ExtraConstraints)
	}
	if len(a.Sources) != len(b.Sources) {
		t.Fatalf("%s: %d provenance sources vs %d", name, len(a.Sources), len(b.Sources))
	}
	for i := range a.Sources {
		ra, rb := a.Sources[i], b.Sources[i]
		if ra.Source != rb.Source || ra.Constraints != rb.Constraints ||
			ra.Weight != rb.Weight || ra.AreaKm2 != rb.AreaKm2 || ra.Skipped != rb.Skipped {
			t.Errorf("%s: provenance source %d differs: %+v vs %+v", name, i, ra, rb)
		}
	}
}

// batchParity runs the fused batch and the sequential reference under
// identical options and asserts bit-identity target for target.
func batchParity(t *testing.T, loc *Localizer, targets []string, workers int, opts ...LocalizeOption) {
	t.Helper()
	ctx := context.Background()
	var o *LocalizeOptions
	if len(opts) > 0 {
		ro := NewLocalizeOptions(opts...)
		o = &ro
	}
	results, errs := loc.LocalizeBatchWith(ctx, targets, workers, o)
	if len(results) != len(targets) || len(errs) != len(targets) {
		t.Fatalf("result slices %d/%d for %d targets", len(results), len(errs), len(targets))
	}
	for i, target := range targets {
		want, wantErr := loc.LocalizeContext(ctx, target, opts...)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("target %d (%s): fused err %v, sequential err %v", i, target, errs[i], wantErr)
		}
		if wantErr != nil {
			continue
		}
		if results[i] == nil {
			t.Fatalf("target %d (%s): nil result without error", i, target)
		}
		sameResult(t, target, want, results[i])
		sameProvenance(t, target, want.Provenance, results[i].Provenance)
	}
}

// TestLocalizeBatchParityTable: the differential parity harness's
// table-driven half — every option class the request API exposes, fused
// vs sequential, bit for bit.
func TestLocalizeBatchParityTable(t *testing.T) {
	loc, targets := fusedFixture(t, 9, 8, 16)
	base, err := loc.LocalizeContext(context.Background(), targets[0])
	if err != nil {
		t.Fatal(err)
	}
	beta := geo.Disk(base.Projection.Forward(base.Point), 50, 32)
	extra := PositiveDisk(base.Projection, base.Point, 800, 0.25, "caller")
	cases := []struct {
		name string
		opts []LocalizeOption
	}{
		{"default", nil},
		{"solver-overrides", []LocalizeOption{WithMinAreaKm2(4000), WithFineCellKm(8)}},
		{"no-router", []LocalizeOption{WithoutSource(SourceRouter)}},
		{"no-geography", []LocalizeOption{WithoutSource(SourceGeography)}},
		{"down-weighted", []LocalizeOption{WithSourceWeight(SourceRouter, 0.5), WithSourceWeight(SourceHint, 0.7)}},
		{"hint", []LocalizeOption{WithHint(base.Point, 150, 0.6, "registry")}},
		{"neg-percentile", []LocalizeOption{WithNegHeightPercentile(90)}},
		{"explain", []LocalizeOption{WithExplain()}},
		{"extra-constraints", []LocalizeOption{WithConstraints(extra)}},
		{"custom-source", []LocalizeOption{WithEvidenceSource(oracleSource{loc: base.Point})}},
		{"secondary", []LocalizeOption{WithSecondary(beta, 3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batchParity(t, loc, targets, 4, tc.opts...)
		})
	}
}

// TestLocalizeBatchRandomizedParity: the property-test half — seeded
// worlds, 50–200 targets with repeats, a random option mix, and a random
// worker count per round. Every fused result must match its sequential
// reference bit for bit.
func TestLocalizeBatchRandomizedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	optionPool := func(rng *rand.Rand, base *Result) []LocalizeOption {
		var opts []LocalizeOption
		if rng.IntN(2) == 0 {
			opts = append(opts, WithMinAreaKm2(1000+float64(rng.IntN(8))*1000))
		}
		if rng.IntN(3) == 0 {
			opts = append(opts, WithoutSource(SourceRouter))
		}
		if rng.IntN(3) == 0 {
			opts = append(opts, WithSourceWeight(SourceLatency, 0.5+rng.Float64()/2))
		}
		if rng.IntN(3) == 0 {
			opts = append(opts, WithHint(base.Point, 100+float64(rng.IntN(200)), 0.5, "rand-hint"))
		}
		if rng.IntN(4) == 0 {
			opts = append(opts, WithExplain())
		}
		if rng.IntN(4) == 0 {
			opts = append(opts, WithNegHeightPercentile(75+float64(rng.IntN(20))))
		}
		return opts
	}
	for _, round := range []struct {
		seed uint64
		n    int
	}{
		{seed: 11, n: 50},
		{seed: 13, n: 200},
	} {
		rng := rand.New(rand.NewPCG(round.seed, 0xfa5ed))
		loc, targets := fusedFixture(t, round.seed, 10, round.n)
		base, err := loc.LocalizeContext(context.Background(), targets[0])
		if err != nil {
			t.Fatal(err)
		}
		opts := optionPool(rng, base)
		workers := 1 + rng.IntN(8)
		batchParity(t, loc, targets, workers, opts...)
	}
}

// TestLocalizeBatchOfOne: a single-target batch exercises the degenerate
// group (the scalar-fallback shape the batch engine routes through the
// fused path anyway) and must equal the scalar call exactly.
func TestLocalizeBatchOfOne(t *testing.T) {
	loc, targets := fusedFixture(t, 21, 4, 1)
	batchParity(t, loc, targets, 3)
}

// TestLocalizeBatchPartialErrors: a target that is itself a survey
// landmark fails; its neighbours in the batch must still succeed, with
// the error pinned to the offending index only.
func TestLocalizeBatchPartialErrors(t *testing.T) {
	loc, targets := fusedFixture(t, 17, 4, 6)
	bad := loc.Survey.Landmarks[0].Addr
	targets[2] = bad
	results, errs := loc.LocalizeBatch(context.Background(), targets)
	for i := range targets {
		if i == 2 {
			if errs[i] == nil || results[i] != nil {
				t.Errorf("landmark target: err %v, result %v", errs[i], results[i])
			}
			continue
		}
		if errs[i] != nil || results[i] == nil {
			t.Errorf("target %d: err %v", i, errs[i])
		}
	}
}

// TestLocalizeBatchCancellation: a cancelled context reports every
// target with the context error and measures nothing further.
func TestLocalizeBatchCancellation(t *testing.T) {
	loc, targets := fusedFixture(t, 17, 4, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs := loc.LocalizeBatch(ctx, targets)
	for i := range targets {
		if errs[i] == nil || results[i] != nil {
			t.Errorf("target %d: err %v result %v after cancel", i, errs[i], results[i])
		}
	}
}

// TestLocalizeBatchNoSurvey: the no-survey error is reported per target,
// matching the scalar path's contract.
func TestLocalizeBatchNoSurvey(t *testing.T) {
	l := &Localizer{}
	results, errs := l.LocalizeBatch(context.Background(), []string{"a", "b"})
	for i := range errs {
		if errs[i] == nil || results[i] != nil {
			t.Errorf("target %d: err %v, result %v", i, errs[i], results[i])
		}
	}
}
