package core

import (
	"math"
	"sync"
	"testing"

	"octant/internal/geo"
)

// TestLandMaskCacheMatchesDirect checks the cached master-lattice mask
// against direct per-grid rasterization: interior land and open ocean must
// agree everywhere; disagreement is tolerated only on the thin coastline
// band where master-cell quantization can differ by one cell.
func TestLandMaskCacheMatchesDirect(t *testing.T) {
	pr := geo.NewProjection(geo.Pt(41.0, -87.0))
	regions := LandRegions(pr)
	c := NewLandMaskCache()
	const cellKm = 16.0
	const excluded = -math.MaxFloat64

	g := geo.NewGrid(geo.V2(-2500, -1800), geo.V2(2500, 1800), cellKm)
	defer g.Release()
	if !c.Apply(g, regions, excluded) {
		t.Fatal("Apply returned false for a cacheable region set")
	}

	direct := geo.NewGrid(geo.V2(-2500, -1800), geo.V2(2500, 1800), cellKm)
	defer direct.Release()
	land := make([]bool, direct.W*direct.H)
	for _, lr := range regions {
		direct.RasterizeRegionInto(lr, land)
	}

	disagree := 0
	for i := range land {
		cachedLand := g.Weight[i] != excluded
		if cachedLand != land[i] {
			disagree++
		}
	}
	if frac := float64(disagree) / float64(len(land)); frac > 0.02 {
		t.Errorf("cached mask disagrees with direct rasterization on %.1f%% of cells", frac*100)
	}
	// Deep interior (the projection centre is in the US midwest) must be
	// land; the mid-Atlantic must be masked.
	cx, cy := g.CellAt(geo.V2(0, 0))
	if g.Weight[cy*g.W+cx] == excluded {
		t.Error("projection centre (US interior) masked as ocean")
	}
	ax, ay := g.CellAt(pr.Forward(geo.Pt(40.0, -40.0)))
	if ax >= 0 && ax < g.W && ay >= 0 && ay < g.H && g.Weight[ay*g.W+ax] != excluded {
		t.Error("mid-Atlantic cell not masked")
	}
}

// TestLandMaskCacheReuse verifies that repeated applies at one cell size
// hit the cached master, and that distinct cell sizes build distinct
// masters.
func TestLandMaskCacheReuse(t *testing.T) {
	pr := geo.NewProjection(geo.Pt(41.0, -87.0))
	regions := LandRegions(pr)
	c := NewLandMaskCache()
	const excluded = -math.MaxFloat64

	for i := 0; i < 3; i++ {
		// Different extents and origins each round — only cellKm matters.
		off := float64(i) * 37.5
		g := geo.NewGrid(geo.V2(-900+off, -700), geo.V2(900+off, 700), 8)
		c.Apply(g, regions, excluded)
		g.Release()
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Entries != 1 {
		t.Errorf("after 3 applies at one cell size: %+v, want 1 miss / 2 hits / 1 entry", s)
	}
	g := geo.NewGrid(geo.V2(-900, -700), geo.V2(900, 700), 16)
	c.Apply(g, regions, excluded)
	g.Release()
	if s := c.Stats(); s.Entries != 2 || s.Misses != 2 {
		t.Errorf("second cell size should build a second master: %+v", s)
	}
	// A nil cache is inert.
	var nilCache *LandMaskCache
	g2 := geo.NewGrid(geo.V2(-10, -10), geo.V2(10, 10), 4)
	if nilCache.Apply(g2, regions, excluded) {
		t.Error("nil cache must report not-applied")
	}
	g2.Release()
}

// maskSquare builds a single-ring square region centred at (cx, cy) —
// cheap enough to rasterize at many cell sizes, and centring it
// differently yields a distinct maskKey (the key fingerprints the
// bounding box), standing in for a different survey's projected
// landmass.
func maskSquare(cx, cy, half float64) *geo.Region {
	return geo.RegionFromRing(geo.Ring{
		geo.V2(cx-half, cy-half), geo.V2(cx+half, cy-half),
		geo.V2(cx+half, cy+half), geo.V2(cx-half, cy+half),
	})
}

// TestLandMaskCacheEvictionLRU fills the cache past its master capacity
// with distinct cell sizes and checks that it sheds the least-recently
// used master, not a recently touched one, and never exceeds capacity.
func TestLandMaskCacheEvictionLRU(t *testing.T) {
	regions := []*geo.Region{maskSquare(0, 0, 400)}
	c := NewLandMaskCache()
	const excluded = -math.MaxFloat64

	apply := func(cellKm float64) {
		g := geo.NewGrid(geo.V2(-500, -500), geo.V2(500, 500), cellKm)
		if !c.Apply(g, regions, excluded) {
			t.Fatalf("Apply failed at cell size %v", cellKm)
		}
		g.Release()
	}

	// One master per cell size, exactly at capacity.
	for i := 0; i < defaultMaskCap; i++ {
		apply(float64(4 + i))
	}
	if s := c.Stats(); s.Entries != defaultMaskCap || s.Misses != defaultMaskCap {
		t.Fatalf("filling to capacity: %+v, want %d entries / %d misses", s, defaultMaskCap, defaultMaskCap)
	}

	// Touch the oldest master so the SECOND-oldest becomes LRU, then
	// overflow with a new size.
	apply(4)
	apply(float64(4 + defaultMaskCap))
	s := c.Stats()
	if s.Entries != defaultMaskCap {
		t.Errorf("after overflow: %d entries, want capacity %d", s.Entries, defaultMaskCap)
	}

	// The refreshed size must still be resident (hit); the un-touched
	// second size must have been evicted (miss that rebuilds).
	hitsBefore, missesBefore := s.Hits, s.Misses
	apply(4)
	if s := c.Stats(); s.Hits != hitsBefore+1 {
		t.Errorf("recently-used master was evicted: %+v", s)
	}
	apply(5)
	if s := c.Stats(); s.Misses != missesBefore+1 {
		t.Errorf("LRU master (cell 5) should have been evicted and rebuilt: %+v", s)
	}

	// Unbuildable masters (bounding box over maxMasterCells at this
	// resolution) must not occupy capacity or count as hits.
	entriesBefore := c.Stats().Entries
	huge := []*geo.Region{maskSquare(0, 0, 1e6)}
	g := geo.NewGrid(geo.V2(-500, -500), geo.V2(500, 500), 0.25)
	if c.Apply(g, huge, excluded) {
		t.Error("Apply should refuse a master larger than maxMasterCells")
	}
	g.Release()
	if s := c.Stats(); s.Entries != entriesBefore {
		t.Errorf("unbuildable master left a cache entry: %+v", s)
	}
}

// TestLandMaskCacheMixedSizesConcurrentSurveys hammers one cache from
// concurrent goroutines mixing two region sets (standing in for two
// surveys with different projections) and a coarse/fine spread of cell
// sizes. Every (set, size) master must be built exactly once — the
// per-entry once must absorb concurrent first users — and the resulting
// masks must match a direct rasterization. Run under -race by CI.
func TestLandMaskCacheMixedSizesConcurrentSurveys(t *testing.T) {
	type sq struct{ cx, cy, half float64 }
	surveySquares := [][]sq{
		{{-120, -80, 350}},
		{{200, 150, 275}, {-400, 300, 90}},
	}
	var surveys [][]*geo.Region
	for _, sqs := range surveySquares {
		var rs []*geo.Region
		for _, s := range sqs {
			rs = append(rs, maskSquare(s.cx, s.cy, s.half))
		}
		surveys = append(surveys, rs)
	}
	// Distance from p to the nearest square boundary — the only band where
	// the cached mask may legitimately disagree with direct rasterization
	// (master-lattice quantization plus grid-centre sampling).
	boundaryDist := func(sqs []sq, p geo.Vec2) float64 {
		best := math.MaxFloat64
		for _, s := range sqs {
			dx := math.Abs(p.X-s.cx) - s.half
			dy := math.Abs(p.Y-s.cy) - s.half
			var d float64
			if dx > 0 || dy > 0 {
				d = math.Hypot(math.Max(dx, 0), math.Max(dy, 0))
			} else {
				d = -math.Max(dx, dy)
			}
			best = math.Min(best, d)
		}
		return best
	}

	cells := []float64{4, 8, 32, 64} // fine pass through coarse passes
	c := NewLandMaskCache()
	const excluded = -math.MaxFloat64

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	const workers, iters = 8, 24
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Cycle every (survey, cell size) combination in every
				// goroutine so all masters see concurrent first use.
				combo := w*iters + i
				si := combo % len(surveys)
				cell := cells[(combo/len(surveys))%len(cells)]
				off := float64(combo%3) * 13.5 // origins differ; only cellKm keys
				g := geo.NewGrid(geo.V2(-600+off, -500), geo.V2(600+off, 500), cell)
				if !c.Apply(g, surveys[si], excluded) {
					errs <- "Apply returned false"
					g.Release()
					continue
				}
				land := make([]bool, g.W*g.H)
				for _, r := range surveys[si] {
					g.RasterizeRegionInto(r, land)
				}
				for y := 0; y < g.H; y++ {
					for x := 0; x < g.W; x++ {
						j := y*g.W + x
						if (g.Weight[j] != excluded) == land[j] {
							continue
						}
						centre := geo.V2(g.Min.X+(float64(x)+0.5)*cell, g.Min.Y+(float64(y)+0.5)*cell)
						if boundaryDist(surveySquares[si], centre) > 1.6*cell {
							errs <- "cached mask diverges from direct rasterization away from region boundaries"
						}
					}
				}
				g.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	want := uint64(len(surveys) * len(cells))
	s := c.Stats()
	if s.Misses != want || s.Entries != int(want) {
		t.Errorf("mixed concurrent load: %+v, want exactly %d masters built once each", s, want)
	}
	if s.Hits != workers*iters-want {
		t.Errorf("hits %d, want every apply after the first per (survey, size) to hit (%d)", s.Hits, workers*iters-want)
	}
}

// TestQuantizeCellKm pins the coarse-cell lattice the land-mask cache
// relies on: outputs are fine·2^k, never below fine, nearest in log space.
func TestQuantizeCellKm(t *testing.T) {
	cases := []struct{ raw, fine, want float64 }{
		{2.5, 4, 4},   // below fine clamps up
		{4, 4, 4},     // exact
		{5, 4, 4},     // nearest is 2^0
		{6.1, 4, 8},   // nearest is 2^1
		{13, 4, 16},   // 13/4=3.25 → 2^2
		{11, 4, 8},    // 11/4=2.75 → 2^1.46… rounds to 2^1? log2(2.75)=1.46 → 1 → 8
		{100, 4, 128}, // log2(25)=4.64 → 2^5
	}
	for _, tc := range cases {
		if got := quantizeCellKm(tc.raw, tc.fine); got != tc.want {
			t.Errorf("quantizeCellKm(%v, %v) = %v, want %v", tc.raw, tc.fine, got, tc.want)
		}
	}
}

// TestSolveSharesLandMasks runs two full solves with a shared cache and
// confirms the second re-uses the first's masters.
func TestSolveSharesLandMasks(t *testing.T) {
	pr := geo.NewProjection(geo.Pt(41.8, -74.0))
	cons := []Constraint{
		PositiveDisk(pr, geo.Pt(42.44, -76.50), 300, 1.0, "a"),
		PositiveDisk(pr, geo.Pt(40.71, -74.01), 280, 0.9, "b"),
	}
	cache := NewLandMaskCache()
	opts := SolverOpts{MinAreaKm2: 1500, LandRegions: LandRegions(pr), Masks: cache}
	if _, err := Solve(cons, opts); err != nil {
		t.Fatal(err)
	}
	after1 := cache.Stats()
	if after1.Misses == 0 {
		t.Fatal("first solve should build at least one master")
	}
	if _, err := Solve(cons, opts); err != nil {
		t.Fatal(err)
	}
	after2 := cache.Stats()
	if after2.Misses != after1.Misses {
		t.Errorf("second solve rebuilt masters: %d misses, want %d", after2.Misses, after1.Misses)
	}
	if after2.Hits <= after1.Hits {
		t.Errorf("second solve should hit the cache: hits %d → %d", after1.Hits, after2.Hits)
	}
}
