package core

import (
	"math"
	"testing"

	"octant/internal/geo"
)

// TestLandMaskCacheMatchesDirect checks the cached master-lattice mask
// against direct per-grid rasterization: interior land and open ocean must
// agree everywhere; disagreement is tolerated only on the thin coastline
// band where master-cell quantization can differ by one cell.
func TestLandMaskCacheMatchesDirect(t *testing.T) {
	pr := geo.NewProjection(geo.Pt(41.0, -87.0))
	regions := LandRegions(pr)
	c := NewLandMaskCache()
	const cellKm = 16.0
	const excluded = -math.MaxFloat64

	g := geo.NewGrid(geo.V2(-2500, -1800), geo.V2(2500, 1800), cellKm)
	defer g.Release()
	if !c.Apply(g, regions, excluded) {
		t.Fatal("Apply returned false for a cacheable region set")
	}

	direct := geo.NewGrid(geo.V2(-2500, -1800), geo.V2(2500, 1800), cellKm)
	defer direct.Release()
	land := make([]bool, direct.W*direct.H)
	for _, lr := range regions {
		direct.RasterizeRegionInto(lr, land)
	}

	disagree := 0
	for i := range land {
		cachedLand := g.Weight[i] != excluded
		if cachedLand != land[i] {
			disagree++
		}
	}
	if frac := float64(disagree) / float64(len(land)); frac > 0.02 {
		t.Errorf("cached mask disagrees with direct rasterization on %.1f%% of cells", frac*100)
	}
	// Deep interior (the projection centre is in the US midwest) must be
	// land; the mid-Atlantic must be masked.
	cx, cy := g.CellAt(geo.V2(0, 0))
	if g.Weight[cy*g.W+cx] == excluded {
		t.Error("projection centre (US interior) masked as ocean")
	}
	ax, ay := g.CellAt(pr.Forward(geo.Pt(40.0, -40.0)))
	if ax >= 0 && ax < g.W && ay >= 0 && ay < g.H && g.Weight[ay*g.W+ax] != excluded {
		t.Error("mid-Atlantic cell not masked")
	}
}

// TestLandMaskCacheReuse verifies that repeated applies at one cell size
// hit the cached master, and that distinct cell sizes build distinct
// masters.
func TestLandMaskCacheReuse(t *testing.T) {
	pr := geo.NewProjection(geo.Pt(41.0, -87.0))
	regions := LandRegions(pr)
	c := NewLandMaskCache()
	const excluded = -math.MaxFloat64

	for i := 0; i < 3; i++ {
		// Different extents and origins each round — only cellKm matters.
		off := float64(i) * 37.5
		g := geo.NewGrid(geo.V2(-900+off, -700), geo.V2(900+off, 700), 8)
		c.Apply(g, regions, excluded)
		g.Release()
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Entries != 1 {
		t.Errorf("after 3 applies at one cell size: %+v, want 1 miss / 2 hits / 1 entry", s)
	}
	g := geo.NewGrid(geo.V2(-900, -700), geo.V2(900, 700), 16)
	c.Apply(g, regions, excluded)
	g.Release()
	if s := c.Stats(); s.Entries != 2 || s.Misses != 2 {
		t.Errorf("second cell size should build a second master: %+v", s)
	}
	// A nil cache is inert.
	var nilCache *LandMaskCache
	g2 := geo.NewGrid(geo.V2(-10, -10), geo.V2(10, 10), 4)
	if nilCache.Apply(g2, regions, excluded) {
		t.Error("nil cache must report not-applied")
	}
	g2.Release()
}

// TestQuantizeCellKm pins the coarse-cell lattice the land-mask cache
// relies on: outputs are fine·2^k, never below fine, nearest in log space.
func TestQuantizeCellKm(t *testing.T) {
	cases := []struct{ raw, fine, want float64 }{
		{2.5, 4, 4},   // below fine clamps up
		{4, 4, 4},     // exact
		{5, 4, 4},     // nearest is 2^0
		{6.1, 4, 8},   // nearest is 2^1
		{13, 4, 16},   // 13/4=3.25 → 2^2
		{11, 4, 8},    // 11/4=2.75 → 2^1.46… rounds to 2^1? log2(2.75)=1.46 → 1 → 8
		{100, 4, 128}, // log2(25)=4.64 → 2^5
	}
	for _, tc := range cases {
		if got := quantizeCellKm(tc.raw, tc.fine); got != tc.want {
			t.Errorf("quantizeCellKm(%v, %v) = %v, want %v", tc.raw, tc.fine, got, tc.want)
		}
	}
}

// TestSolveSharesLandMasks runs two full solves with a shared cache and
// confirms the second re-uses the first's masters.
func TestSolveSharesLandMasks(t *testing.T) {
	pr := geo.NewProjection(geo.Pt(41.8, -74.0))
	cons := []Constraint{
		PositiveDisk(pr, geo.Pt(42.44, -76.50), 300, 1.0, "a"),
		PositiveDisk(pr, geo.Pt(40.71, -74.01), 280, 0.9, "b"),
	}
	cache := NewLandMaskCache()
	opts := SolverOpts{MinAreaKm2: 1500, LandRegions: LandRegions(pr), Masks: cache}
	if _, err := Solve(cons, opts); err != nil {
		t.Fatal(err)
	}
	after1 := cache.Stats()
	if after1.Misses == 0 {
		t.Fatal("first solve should build at least one master")
	}
	if _, err := Solve(cons, opts); err != nil {
		t.Fatal(err)
	}
	after2 := cache.Stats()
	if after2.Misses != after1.Misses {
		t.Errorf("second solve rebuilt masters: %d misses, want %d", after2.Misses, after1.Misses)
	}
	if after2.Hits <= after1.Hits {
		t.Errorf("second solve should hit the cache: hits %d → %d", after1.Hits, after2.Hits)
	}
}
