package core

import (
	"math"
	"testing"

	"octant/internal/calib"
	"octant/internal/height"
)

// TestRebuildNoDirtySharesEverything: a rebuild with nothing dirty is a
// relabel, not a recompute.
func TestRebuildNoDirtySharesEverything(t *testing.T) {
	_, s, _ := snapshotFixture(t, 51)
	next, st, err := RebuildSurvey(s, s.RTT, make([]bool, s.N()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 3 {
		t.Errorf("epoch = %d", next.Epoch)
	}
	if st.RebuiltCalibs != 0 || st.GlobalRebuilt || len(st.Dirty) != 0 {
		t.Errorf("stats = %+v", st)
	}
	for i := range s.Calibs {
		if next.Calibs[i] != s.Calibs[i] {
			t.Errorf("calib %d not shared", i)
		}
	}
	if next.Global != s.Global {
		t.Error("global not shared")
	}
}

// TestRebuildDirtyCalibEquivalentToFullFit: a dirty landmark's refitted
// calibration must be exactly what a from-scratch calib.New produces on
// the same refreshed samples — the incremental path buys probe and fit
// savings, never a different model.
func TestRebuildDirtyCalibEquivalentToFullFit(t *testing.T) {
	_, s, _ := snapshotFixture(t, 52)
	n := s.N()
	rtt := make([][]float64, n)
	for i := range rtt {
		rtt[i] = append([]float64(nil), s.RTT[i]...)
	}
	const d = 2
	dirty := make([]bool, n)
	dirty[d] = true
	for j := 0; j < n; j++ { // the whole row drifted
		if j == d {
			continue
		}
		rtt[d][j] += 12
		rtt[j][d] += 12
	}
	next, st, err := RebuildSurvey(s, rtt, dirty, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.RebuiltCalibs != 1 {
		t.Fatalf("rebuilt %d calibs, want 1", st.RebuiltCalibs)
	}

	// Reference fit: calib.New over the exact samples the rebuild derived
	// (same adjusted latencies, same distances).
	samples := make([]calib.Sample, 0, n-1)
	for j := 0; j < n; j++ {
		if j == d {
			continue
		}
		r := next.RTT[d][j]
		if next.UseHeights {
			r = height.AdjustRTT(r, next.Heights[d], next.Heights[j])
		}
		samples = append(samples, calib.Sample{
			LatencyMs:  r,
			DistanceKm: next.Landmarks[d].Loc.DistanceKm(next.Landmarks[j].Loc),
		})
	}
	want, err := calib.New(samples, calib.Options{CutoffPercentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	for rttMs := 0.25; rttMs < 250; rttMs *= 1.4 {
		if a, b := next.Calibs[d].MaxDistanceKm(rttMs), want.MaxDistanceKm(rttMs); a != b {
			t.Fatalf("R(%v): incremental %v != full fit %v", rttMs, a, b)
		}
		if a, b := next.Calibs[d].MinDistanceKm(rttMs), want.MinDistanceKm(rttMs); a != b {
			t.Fatalf("r(%v): incremental %v != full fit %v", rttMs, a, b)
		}
	}
}

// TestRebuildDirtyHeightLeastSquares: with one dirty landmark, the
// Gauss–Seidel height update has a closed form — the mean residual
// against the fixed clean heights — and must hit it exactly.
func TestRebuildDirtyHeightLeastSquares(t *testing.T) {
	_, s, _ := snapshotFixture(t, 53)
	n := s.N()
	rtt := make([][]float64, n)
	for i := range rtt {
		rtt[i] = append([]float64(nil), s.RTT[i]...)
	}
	const d = 1
	dirty := make([]bool, n)
	dirty[d] = true
	for j := 0; j < n; j++ {
		if j == d {
			continue
		}
		rtt[d][j] += 6
		rtt[j][d] += 6
	}
	next, _, err := RebuildSurvey(s, rtt, dirty, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for j := 0; j < n; j++ {
		if j == d {
			continue
		}
		q := height.QueuingDelayK(rtt[d][j], s.Kappa, s.Landmarks[d].Loc, s.Landmarks[j].Loc)
		sum += q - s.Heights[j]
	}
	want := math.Max(0, sum/float64(n-1))
	if math.Abs(next.Heights[d]-want) > 1e-9 {
		t.Errorf("dirty height = %v, want %v", next.Heights[d], want)
	}
	for j := 0; j < n; j++ {
		if j != d && next.Heights[j] != s.Heights[j] {
			t.Errorf("clean height %d changed", j)
		}
	}
}

func TestRebuildValidatesDimensions(t *testing.T) {
	_, s, _ := snapshotFixture(t, 54)
	if _, _, err := RebuildSurvey(s, s.RTT[:2], make([]bool, s.N()), 1); err == nil {
		t.Error("short rtt accepted")
	}
	if _, _, err := RebuildSurvey(s, s.RTT, make([]bool, 2), 1); err == nil {
		t.Error("short dirty accepted")
	}
}
