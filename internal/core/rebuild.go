package core

import (
	"fmt"
	"math"

	"octant/internal/calib"
	"octant/internal/height"
)

// RebuildStats reports what an incremental rebuild actually recomputed.
type RebuildStats struct {
	// Dirty lists the landmark indices whose measurements changed.
	Dirty []int
	// RebuiltCalibs counts per-landmark calibrations refitted (clean
	// landmarks keep their previous *Calibration by pointer).
	RebuiltCalibs int
	// GlobalRebuilt reports whether the pooled global calibration was
	// refitted.
	GlobalRebuilt bool
}

// RebuildSurvey derives the next epoch of prev from an updated RTT matrix,
// recomputing only what the dirty landmarks invalidate. rtt is the full
// n×n matrix with refreshed values on dirty pairs and the previous values
// carried forward everywhere else; dirty[i] marks landmarks whose
// measurements changed beyond the caller's drift tolerance.
//
// The rebuild is deliberately local, trading a bounded amount of staleness
// for an O(dirty) refresh instead of an O(n²) one:
//
//   - Kappa is carried forward from prev. It is a global median over all
//     pairs; a few drifted pairs cannot move it meaningfully, and keeping
//     it fixed keeps every clean landmark's calibration inputs
//     bit-identical.
//   - Heights of clean landmarks are carried forward; dirty landmarks'
//     heights are re-solved against the fixed clean heights (Gauss–Seidel
//     sweeps over the dirty set of the §2.2 least-squares system). A full
//     joint re-solve would perturb every height by coupling and dirty the
//     whole survey.
//   - Calibrations of clean landmarks are reused by pointer — including
//     their sample sets, which may now lag the RTT matrix on columns of
//     dirty peers. A calibration is a fit over one generation of that
//     landmark's measurements; it refreshes when the landmark itself goes
//     dirty (or on a full rebuild via NewSurvey), and per-pair drift below
//     the caller's tolerance is insignificant by definition.
//   - Dirty landmarks' calibrations are refitted from their refreshed RTT
//     row via (*calib.Calibration).Rebuild — identical to a fresh
//     calib.New on the same samples.
//   - The pooled global calibration is refitted from every per-landmark
//     sample set whenever at least one landmark was dirty.
//
// The result is a new immutable Survey with the given epoch; prev is not
// modified and remains fully usable (in-flight localizations against it
// are unaffected — this is what makes the lifecycle manager's RCU swap
// safe).
func RebuildSurvey(prev *Survey, rtt [][]float64, dirty []bool, epoch uint64) (*Survey, *RebuildStats, error) {
	n := prev.N()
	if len(rtt) != n || len(dirty) != n {
		return nil, nil, fmt.Errorf("core: rebuild dimensions (rtt %d, dirty %d) do not match survey (%d landmarks)",
			len(rtt), len(dirty), n)
	}
	for i := range rtt {
		if len(rtt[i]) != n {
			return nil, nil, fmt.Errorf("core: rebuild rtt row %d has %d cols, want %d", i, len(rtt[i]), n)
		}
	}
	s := &Survey{
		Epoch:      epoch,
		Landmarks:  append([]Landmark(nil), prev.Landmarks...),
		RTT:        make([][]float64, n),
		Kappa:      prev.Kappa,
		UseHeights: prev.UseHeights,
		Probes:     prev.Probes,
	}
	for i := range rtt {
		s.RTT[i] = append([]float64(nil), rtt[i]...)
	}
	st := &RebuildStats{}
	for i, d := range dirty {
		if d {
			st.Dirty = append(st.Dirty, i)
		}
	}
	if len(st.Dirty) == 0 {
		// Nothing drifted: share everything with prev under the new epoch.
		s.Heights = prev.Heights
		s.Calibs = prev.Calibs
		s.Global = prev.Global
		return s, st, nil
	}

	s.Heights = append([]float64(nil), prev.Heights...)
	solveDirtyHeights(s, st.Dirty)

	// Calibrations: clean by pointer, dirty refitted on the new row.
	s.Calibs = make([]*calib.Calibration, n)
	copy(s.Calibs, prev.Calibs)
	for _, i := range st.Dirty {
		samples := make([]calib.Sample, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r := s.RTT[i][j]
			if s.UseHeights {
				r = height.AdjustRTT(r, s.Heights[i], s.Heights[j])
			}
			samples = append(samples, calib.Sample{
				LatencyMs:  r,
				DistanceKm: s.Landmarks[i].Loc.DistanceKm(s.Landmarks[j].Loc),
			})
		}
		c, err := prev.Calibs[i].Rebuild(samples)
		if err != nil {
			return nil, nil, fmt.Errorf("core: recalibrating %s: %w", s.Landmarks[i].Name, err)
		}
		if c != prev.Calibs[i] {
			st.RebuiltCalibs++
		}
		s.Calibs[i] = c
	}

	// Global pool over each calibration's own sample generation.
	var pooled []calib.Sample
	for _, c := range s.Calibs {
		pooled = append(pooled, c.Samples...)
	}
	g, err := calib.New(pooled, calib.Options{CutoffPercentile: prev.calibCutoff()})
	if err != nil {
		return nil, nil, fmt.Errorf("core: global recalibration: %w", err)
	}
	s.Global = g
	st.GlobalRebuilt = true
	return s, st, nil
}

// solveDirtyHeights re-solves the §2.2 heights of s's dirty landmarks
// against the carried-forward clean heights: Gauss–Seidel sweeps of the
// least-squares optimum h_d = mean_j(q_dj − h_j) over the dirty set, run
// to (deterministic) convergence. With one dirty landmark a single sweep
// is exact; with several, the sweeps converge geometrically because each
// h_d's update couples to other dirty heights with weight 1/(n−1).
func solveDirtyHeights(s *Survey, dirty []int) {
	n := s.N()
	if n < 2 {
		return
	}
	// Queuing-delay rows of the dirty landmarks under the carried κ.
	q := make(map[int][]float64, len(dirty))
	for _, d := range dirty {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			if j == d {
				continue
			}
			row[j] = height.QueuingDelayK(s.RTT[d][j], s.Kappa, s.Landmarks[d].Loc, s.Landmarks[j].Loc)
		}
		q[d] = row
	}
	for iter := 0; iter < 64; iter++ {
		var maxDelta float64
		for _, d := range dirty {
			var sum float64
			for j := 0; j < n; j++ {
				if j == d {
					continue
				}
				sum += q[d][j] - s.Heights[j]
			}
			h := sum / float64(n-1)
			if h < 0 {
				h = 0
			}
			if delta := math.Abs(h - s.Heights[d]); delta > maxDelta {
				maxDelta = delta
			}
			s.Heights[d] = h
		}
		if maxDelta < 1e-12 {
			break
		}
	}
}
