package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"octant/internal/netsim"
	"octant/internal/probe"
)

// The concurrent measurement scheduler must be invisible in results: for
// any world state — healthy or faulted — a localizer fanning probes out
// must produce answers bit-identical to the serialized probe loop it
// replaced, including the order of named failures in provenance. These
// tests run the two paths side by side over one survey.

// TestParallelSerialLocalizeParity: healthy-path bit-identity across
// several targets, both result geometry and RTT vectors.
func TestParallelSerialLocalizeParity(t *testing.T) {
	w := netsim.NewWorld(netsim.Config{Seed: 11})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	var lms []Landmark
	for _, h := range hosts[4:] {
		lms = append(lms, Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel := NewLocalizer(p, s, Config{})
	serial := NewLocalizer(p, s, Config{MeasureWorkers: -1})
	ctx := context.Background()

	for _, target := range hosts[:4] {
		pr, err := parallel.LocalizeContext(ctx, target.Name)
		if err != nil {
			t.Fatalf("parallel %s: %v", target.Name, err)
		}
		sr, err := serial.LocalizeContext(ctx, target.Name)
		if err != nil {
			t.Fatalf("serial %s: %v", target.Name, err)
		}
		sameResult(t, target.Name, pr, sr)
	}
}

// TestParallelSerialDegradedParity: with landmark→target paths
// blackholed, the parallel path must name the exact same failure set, in
// the same (landmark) order, with the same reasons — the provenance
// contract degraded-mode consumers and runbooks key on.
func TestParallelSerialDegradedParity(t *testing.T) {
	w := netsim.NewWorld(netsim.Config{Seed: 5})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	target := hosts[0]
	var lms []Landmark
	for _, h := range hosts[1:] {
		lms = append(lms, Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	s, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	// Down a scattered, non-contiguous fifth of the landmark set so slot
	// order and failure order can disagree if the fan-out got it wrong.
	for i, h := range hosts[1:] {
		if i%5 == 2 {
			w.SetPairBlackhole(h.ID, target.ID, true)
		}
	}

	parallel := NewLocalizer(p, s, Config{})
	serial := NewLocalizer(p, s, Config{MeasureWorkers: -1})
	ctx := context.Background()

	pr, err := parallel.LocalizeContext(ctx, target.Name, WithExplain())
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	sr, err := serial.LocalizeContext(ctx, target.Name, WithExplain())
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if !pr.Degraded || !sr.Degraded {
		t.Fatalf("degraded flags: parallel=%v serial=%v, want both true", pr.Degraded, sr.Degraded)
	}
	if pr.Provenance == nil || sr.Provenance == nil {
		t.Fatal("missing provenance")
	}
	if !reflect.DeepEqual(pr.Provenance.Failures, sr.Provenance.Failures) {
		t.Errorf("failure lists diverge:\nparallel: %+v\nserial:   %+v",
			pr.Provenance.Failures, sr.Provenance.Failures)
	}
	// sameResult's DeepEqual can't compare degraded RTT vectors — failed
	// slots hold NaN, and NaN != NaN — so compare them element-wise with
	// NaN slots matching, then the rest of the result.
	if len(pr.RTTs) != len(sr.RTTs) {
		t.Fatalf("RTT vector lengths: %d != %d", len(pr.RTTs), len(sr.RTTs))
	}
	for i := range pr.RTTs {
		if pr.RTTs[i] != sr.RTTs[i] && !(math.IsNaN(pr.RTTs[i]) && math.IsNaN(sr.RTTs[i])) {
			t.Errorf("RTT slot %d: parallel %v != serial %v", i, pr.RTTs[i], sr.RTTs[i])
		}
	}
	pr.RTTs, sr.RTTs = nil, nil
	sameResult(t, target.Name, pr, sr)
}

// TestSurveyWorkersParity: the O(k²) pairwise survey matrix and
// everything fitted from it must not depend on the worker setting.
func TestSurveyWorkersParity(t *testing.T) {
	w := netsim.NewWorld(netsim.Config{Seed: 9})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	var lms []Landmark
	for _, h := range hosts[2:] {
		lms = append(lms, Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	par, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := NewSurvey(p, lms, SurveyOpts{UseHeights: true, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.RTT, ser.RTT) {
		t.Error("parallel survey RTT matrix differs from serialized build")
	}
	if !reflect.DeepEqual(par.Heights, ser.Heights) {
		t.Error("solved heights differ between parallel and serialized builds")
	}
	if par.Kappa != ser.Kappa {
		t.Errorf("kappa %v != %v", par.Kappa, ser.Kappa)
	}
}

// slowProber stretches every ping so a cancellation lands mid-fan-out.
type slowProber struct {
	probe.Prober
	delay time.Duration
}

func (p slowProber) Ping(src, dst string, n int) ([]float64, error) {
	time.Sleep(p.delay)
	return p.Prober.Ping(src, dst, n)
}

// TestLocalizeCancelMidFanout: a context cancelled while the landmark
// fan-out is on the wire aborts the request with the context's error —
// promptly, not after the full landmark walk.
func TestLocalizeCancelMidFanout(t *testing.T) {
	w := netsim.NewWorld(netsim.Config{Seed: 3})
	raw := probe.NewSimProber(w)
	hosts := w.HostNodes()
	target := hosts[0]
	var lms []Landmark
	for _, h := range hosts[1:] {
		lms = append(lms, Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	s, err := NewSurvey(raw, lms, SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	loc := NewLocalizer(slowProber{Prober: raw, delay: 20 * time.Millisecond}, s, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = loc.LocalizeContext(ctx, target.Name)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Serialized, the walk would take landmarks × 20 ms (≈ 1 s); the
	// abort must only drain the trains already in flight.
	if budget := 500 * time.Millisecond; elapsed > budget {
		t.Errorf("cancelled localization took %v, want < %v", elapsed, budget)
	}
}
