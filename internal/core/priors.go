package core

import (
	"context"
	"fmt"
	"math"

	"octant/internal/geo"
	"octant/internal/geodb"
)

// Cross-validated exogenous priors: the RDNSSource (HLOC-style reverse-
// name hints) and GeoDBSource (passive geolocation databases). Both turn
// third-party location claims into weighted positive disks — and both
// check each claim against the speed-of-light bound implied by the
// landmark RTTs the LatencySource already measured: a landmark r ms from
// the target cannot be farther than LatencyToMaxDistanceKm(r) from it,
// so a claimed disk entirely outside that bound is physically impossible
// and is dropped (recorded in Provenance.DroppedHints, never applied).
// This is what makes hint evidence safe: a recycled pool name or a stale
// database row costs the hint, not the answer.

// DroppedHint records one exogenous prior the RTT cross-validation
// rejected.
type DroppedHint struct {
	// Hint labels the rejected prior the way its constraint would have
	// been labelled ("rdns:chi", "geodb:synth").
	Hint string `json:"hint"`
	// Reason states the speed-of-light violation.
	Reason string `json:"reason"`
}

// Disagreement quantifies how far the applied exogenous priors and the
// latency evidence point apart: pairwise distances between the hint
// centroid, the geo-DB centroid, and the latency anchor (the
// lowest-RTT landmark's position — the cheapest latency-only proxy for
// where the measurements put the target). Absent pairs (a request with
// no geo-DB record, say) report 0.
type Disagreement struct {
	// HintGeoDBKm is the distance between the rDNS-hint centroid and the
	// geo-DB centroid.
	HintGeoDBKm float64 `json:"hint_geodb_km,omitempty"`
	// HintLatencyKm is the distance between the rDNS-hint centroid and
	// the latency anchor.
	HintLatencyKm float64 `json:"hint_latency_km,omitempty"`
	// GeoDBLatencyKm is the distance between the geo-DB centroid and the
	// latency anchor.
	GeoDBLatencyKm float64 `json:"geodb_latency_km,omitempty"`
	// DisagreementKm is the largest of the pairwise distances present.
	DisagreementKm float64 `json:"disagreement_km"`
	// Conflict marks a disagreement beyond Config.DisagreementConflictKm
	// — evidence classes pointing at different metros, worth surfacing
	// to operators (/v1/stats counts these).
	Conflict bool `json:"conflict,omitempty"`
}

// validatePrior checks a claimed position against the speed-of-light
// bounds from the measured landmark RTTs (HLOC's validation rule): the
// disk of radiusKm around loc must intersect every answering landmark's
// feasible disk. It returns "" when feasible, else the violation. With
// no RTT vector (latency source unmeasured) every claim passes —
// there is nothing to validate against.
func (req *Request) validatePrior(loc geo.Point, radiusKm float64) string {
	s := req.Survey
	if len(req.RTTs) != s.N() {
		return ""
	}
	for i, lm := range s.Landmarks {
		r := req.RTTs[i]
		if math.IsNaN(r) {
			continue // failed landmark (degraded mode)
		}
		bound := geo.LatencyToMaxDistanceKm(r)
		if d := lm.Loc.DistanceKm(loc); d-radiusKm > bound {
			return fmt.Sprintf("claimed position %.0f km from %s but %.2f ms RTT bounds the target to %.0f km",
				d, lm.Name, r, bound)
		}
	}
	return ""
}

// latencyAnchor returns the lowest-RTT landmark's position — the
// latency-only reference point for the disagreement report. ok is false
// when no landmark answered.
func (req *Request) latencyAnchor() (geo.Point, bool) {
	best := math.NaN()
	var loc geo.Point
	ok := false
	for i, r := range req.RTTs {
		if math.IsNaN(r) {
			continue
		}
		if !ok || r < best {
			best, loc, ok = r, req.Survey.Landmarks[i].Loc, true
		}
	}
	return loc, ok
}

// disagreement assembles the Disagreement report from the request's
// applied prior centres, or nil when no prior was applied.
func (req *Request) disagreement() *Disagreement {
	if len(req.hintLocs) == 0 && len(req.geodbLocs) == 0 {
		return nil
	}
	d := &Disagreement{}
	var hintC, geodbC geo.Point
	if len(req.hintLocs) > 0 {
		hintC = geo.Centroid(req.hintLocs)
	}
	if len(req.geodbLocs) > 0 {
		geodbC = geo.Centroid(req.geodbLocs)
	}
	anchor, haveAnchor := req.latencyAnchor()
	if len(req.hintLocs) > 0 && len(req.geodbLocs) > 0 {
		d.HintGeoDBKm = hintC.DistanceKm(geodbC)
	}
	if len(req.hintLocs) > 0 && haveAnchor {
		d.HintLatencyKm = hintC.DistanceKm(anchor)
	}
	if len(req.geodbLocs) > 0 && haveAnchor {
		d.GeoDBLatencyKm = geodbC.DistanceKm(anchor)
	}
	d.DisagreementKm = math.Max(d.HintGeoDBKm, math.Max(d.HintLatencyKm, d.GeoDBLatencyKm))
	d.Conflict = d.DisagreementKm > req.Cfg.DisagreementConflictKm
	return d
}

// RDNSSource mines the target's reverse-DNS name for city tokens (IATA
// airport codes, CLLI prefixes, spelled-out names) and applies each
// surviving hint as a weighted positive disk. Hints that violate the
// RTT speed-of-light bound are dropped and recorded.
type RDNSSource struct{}

// Name implements EvidenceSource.
func (RDNSSource) Name() string { return SourceRDNS }

// Constraints implements EvidenceSource.
func (RDNSSource) Constraints(ctx context.Context, req *Request) ([]Constraint, SourceReport, error) {
	rep := SourceReport{Source: SourceRDNS}
	if req.Hints == nil {
		rep.Skipped = "no hint engine"
		return nil, rep, nil
	}
	name := req.Prober.ReverseDNS(req.Target)
	if name == "" {
		rep.Skipped = "no reverse name"
		return nil, rep, nil
	}
	hs := req.Hints.Parse(name)
	if len(hs) == 0 {
		rep.Skipped = "no geographic tokens in reverse name"
		return nil, rep, nil
	}
	cfg := &req.Cfg
	var out []Constraint
	for _, h := range hs {
		label := "rdns:" + h.Code
		if reason := req.validatePrior(h.Loc, cfg.RDNSRadiusKm); reason != "" {
			req.dropped = append(req.dropped, DroppedHint{Hint: label, Reason: reason})
			continue
		}
		out = append(out, req.priorDisk(h.Loc, cfg.RDNSRadiusKm, cfg.RDNSWeight, label))
		req.hintLocs = append(req.hintLocs, h.Loc)
	}
	if len(out) == 0 {
		rep.Skipped = "all hints dropped by RTT cross-validation"
	}
	return out, rep, nil
}

// GeoDBSource consults the request's passive geolocation provider
// (WithGeoDB, falling back to Config.GeoDB) and applies its record for
// the target as a weighted positive disk. Records that violate the RTT
// speed-of-light bound are dropped and recorded. Weighted providers
// (the geodb.Composite) scale the configured base weight by their own
// per-provider trust and staleness decay.
type GeoDBSource struct{}

// Name implements EvidenceSource.
func (GeoDBSource) Name() string { return SourceGeoDB }

// Constraints implements EvidenceSource.
func (GeoDBSource) Constraints(ctx context.Context, req *Request) ([]Constraint, SourceReport, error) {
	rep := SourceReport{Source: SourceGeoDB}
	provider := req.Opts.GeoDB
	if provider == nil {
		provider = req.Cfg.GeoDB
	}
	if provider == nil {
		rep.Skipped = "no provider configured"
		return nil, rep, nil
	}
	cfg := &req.Cfg
	var rec geodb.Record
	var trust float64
	var ok bool
	if wp, isW := provider.(geodb.Weighted); isW {
		rec, trust, ok = wp.LookupWeighted(req.Target)
	} else {
		rec, ok = provider.Lookup(req.Target)
	}
	if !ok {
		rep.Skipped = "no record for target"
		return nil, rep, nil
	}
	radius := rec.RadiusKm
	if radius <= 0 {
		radius = cfg.GeoDBRadiusKm
	}
	weight := cfg.GeoDBWeight
	if trust > 0 {
		weight *= trust
	}
	source := rec.Source
	if source == "" {
		source = provider.Name()
	}
	label := "geodb:" + source
	if reason := req.validatePrior(rec.Loc, radius); reason != "" {
		req.dropped = append(req.dropped, DroppedHint{Hint: label, Reason: reason})
		rep.Skipped = "record dropped by RTT cross-validation"
		return nil, rep, nil
	}
	req.geodbLocs = append(req.geodbLocs, rec.Loc)
	return []Constraint{req.priorDisk(rec.Loc, radius, weight, label)}, rep, nil
}
