package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"octant/internal/geo"
)

// Property: adding a positive constraint never decreases the solver's best
// weight, and adding a negative constraint never increases it — the
// monotonicity that makes weighted constraint accumulation (§2.4) sound.
func TestSolverWeightMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		var cons []Constraint
		n := 3 + rng.IntN(5)
		for i := 0; i < n; i++ {
			c := geo.V2(rng.Float64()*200-100, rng.Float64()*200-100)
			cons = append(cons, Constraint{
				Kind:   Positive,
				Region: geo.Disk(c, 40+rng.Float64()*120, 64),
				Weight: 0.2 + rng.Float64(),
			})
		}
		opts := SolverOpts{MinAreaKm2: 200}
		base, err := Solve(cons, opts)
		if err != nil {
			return false
		}
		// Add a positive constraint overlapping the current best point.
		extra := Constraint{
			Kind:   Positive,
			Region: geo.Disk(base.Point, 80, 64),
			Weight: 0.5,
		}
		more, err := Solve(append(append([]Constraint{}, cons...), extra), opts)
		if err != nil {
			return false
		}
		if more.Weight < base.Weight-1e-9 {
			return false
		}
		// Add a negative constraint covering the best point.
		neg := Constraint{
			Kind:   Negative,
			Region: geo.Disk(base.Point, 80, 64),
			Weight: 0.5,
		}
		less, err := Solve(append(append([]Constraint{}, cons...), neg), opts)
		if err != nil {
			return false
		}
		return less.Weight <= base.Weight+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the solution region of a positive-only system always lies
// inside the union of the positive constraints (no invented area).
func TestSolverRegionWithinPositiveUnion(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 22))
		var cons []Constraint
		var regions []*geo.Region
		n := 2 + rng.IntN(4)
		for i := 0; i < n; i++ {
			c := geo.V2(rng.Float64()*150-75, rng.Float64()*150-75)
			r := geo.Disk(c, 50+rng.Float64()*80, 64)
			regions = append(regions, r)
			cons = append(cons, Constraint{Kind: Positive, Region: r, Weight: 1})
		}
		sol, err := Solve(cons, SolverOpts{MinAreaKm2: 100})
		if err != nil {
			return false
		}
		for _, p := range sol.Region.SamplePoints(25) {
			inAny := false
			for _, r := range regions {
				if r.Contains(p) {
					inAny = true
					break
				}
			}
			// Raster cell granularity tolerance: allow points within a
			// couple of km of some region.
			if !inAny {
				near := false
				for _, r := range regions {
					if r.DistanceTo(p) < 5 {
						near = true
						break
					}
				}
				if !near {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
