package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"octant/internal/geo"
	"octant/internal/geodb"
	"octant/internal/hints"
	"octant/internal/measure"
	"octant/internal/probe"
	"octant/internal/undns"
)

// Config controls which of the paper's mechanisms a Localizer applies.
// The zero value enables everything with the paper's defaults; the Use*
// switches exist for the ablation benchmarks.
type Config struct {
	// Probes per latency measurement (default 10, matching §3's "10
	// time-dispersed round-trip measurements").
	Probes int

	// DisableHeights turns off §2.2 queuing-delay compensation.
	DisableHeights bool
	// DisableNegative turns off negative constraints, reducing Octant to
	// positive-information-only (the prior-work regime).
	DisableNegative bool
	// DisablePiecewise turns off §2.3 router localization.
	DisablePiecewise bool
	// DisableWhois turns off the §2.5 WHOIS positive constraint.
	DisableWhois bool
	// DisableOceans turns off the §2.5 geographic negative constraints.
	DisableOceans bool
	// Unweighted makes every constraint weight 1 and requires all
	// positive constraints to hold — the brittle discrete system §2.4
	// warns about (one bad constraint empties the estimate).
	Unweighted bool
	// Exact uses the exact arrangement solver instead of the raster one.
	Exact bool

	// WeightHalfLifeMs is the latency at which constraint confidence
	// halves (default 20 ms).
	WeightHalfLifeMs float64
	// MinRegionAreaKm2 is the §2.4 size threshold (default 25000 km²).
	MinRegionAreaKm2 float64
	// PadKm widens every latency constraint conservatively: R grows and r
	// shrinks by this amount (default 15 km). The convex hull bounds only
	// the *observed* peer pairs exactly; unseen target pairs draw new
	// inflation noise, and the pad absorbs that generalization error.
	PadKm float64
	// PadFrac additionally widens constraints proportionally (default
	// 0.06): inflation noise scales with distance, so a 3000 km bound
	// deserves a far larger allowance than a 100 km one.
	PadFrac float64
	// WhoisRadiusKm is the positive-constraint radius around a WHOIS
	// location (default 60 km).
	WhoisRadiusKm float64
	// RouterCityRadiusKm pads router-derived constraints for the
	// imprecision of "router is in city X" (default 60 km).
	RouterCityRadiusKm float64
	// RouterWeightFactor scales down router-derived constraint weights
	// (default 0.9): secondary landmarks are slightly less trustworthy.
	RouterWeightFactor float64
	// NegativeWeightFactor scales down negative-constraint weights
	// (default 0.5): the lower hull generalizes worse than the upper (a
	// single fast pair pins it), so exclusion claims deserve less
	// confidence than inclusion claims.
	NegativeWeightFactor float64
	// NegativeShrink scales the negative-constraint radius r(d) (default
	// 0.75): the lower hull is the most aggressive exclusion consistent
	// with observed peers, and unseen targets routinely undershoot it.
	NegativeShrink float64
	// NegHeightPercentile is the excess-latency percentile used as the
	// target-height estimate when deflating latencies for negative
	// constraints (default 80). Higher percentiles deflate more, keeping
	// exclusion radii conservative for targets with indirect access paths.
	NegHeightPercentile float64
	// WhoisWeight is the (moderate) weight of the WHOIS constraint
	// (default 0.8): city-level, 85%-ish accurate evidence.
	WhoisWeight float64
	// RDNSRadiusKm is the positive-constraint radius around a city token
	// mined from the target's reverse-DNS name (default 100 km — a pool
	// name's city code places the subscriber in the metro area, not at
	// the city centroid).
	RDNSRadiusKm float64
	// RDNSWeight is the weight of an RTT-validated reverse-DNS hint
	// (default 0.7): operator naming is informative but unaudited.
	RDNSWeight float64
	// GeoDB is the default passive geolocation provider the GeoDBSource
	// consults (nil — the default — skips the source; WithGeoDB
	// overrides it per request).
	GeoDB geodb.Provider
	// GeoDBRadiusKm is the constraint radius for geo-DB records that do
	// not state their own precision (default 50 km).
	GeoDBRadiusKm float64
	// GeoDBWeight is the base weight of a geo-DB prior (default 0.8);
	// Weighted providers scale it by their per-provider trust and
	// staleness decay.
	GeoDBWeight float64
	// DisagreementConflictKm is the evidence-disagreement distance above
	// which Provenance.Disagreement sets its Conflict flag (default
	// 500 km — different-metro territory).
	DisagreementConflictKm float64
	// TracerouteLandmarks is how many of the lowest-latency landmarks
	// issue traceroutes for piecewise localization (default 3).
	TracerouteLandmarks int
	// MaxRouterHeightDeflationMs caps how much of the solved target
	// height is subtracted from router residuals (default 3 ms — a
	// generous last-mile delay). A solved height beyond that usually
	// hides access-path *propagation* (the target is homed far from its
	// POP), and subtracting it would turn the router constraint into a
	// tight pin at the wrong city.
	MaxRouterHeightDeflationMs float64

	// MeasureWorkers caps concurrent probes during measurement fan-out
	// (0 = the scheduler default, 16). Negative serializes measurement
	// entirely — the pre-scheduler loop, kept as the benchmark baseline
	// and the differential-parity reference.
	MeasureWorkers int
	// MeasurePerLandmark caps concurrent probe trains issued from one
	// landmark (0 = the scheduler default, 4), so target fan-out never
	// hammers a single vantage point.
	MeasurePerLandmark int
	// MeasureMinInterval additionally spaces successive probe starts
	// from one landmark (0 = no spacing).
	MeasureMinInterval time.Duration
	// RTTCacheTTL enables the scheduler's epoch-qualified min-RTT cache
	// (and in-flight probe dedup) with this entry lifetime. 0 — the
	// default — disables both: the scalar path stays allocation-lean and
	// every request measures fresh. Serving deployments that absorb
	// bursts of duplicate targets (octant-serve) turn it on.
	RTTCacheTTL time.Duration
}

func (c *Config) fillDefaults() {
	if c.Probes == 0 {
		c.Probes = 10
	}
	if c.WeightHalfLifeMs == 0 {
		c.WeightHalfLifeMs = 20
	}
	if c.MinRegionAreaKm2 == 0 {
		c.MinRegionAreaKm2 = 25000
	}
	if c.PadKm == 0 {
		c.PadKm = 15
	}
	if c.PadFrac == 0 {
		c.PadFrac = 0.06
	}
	if c.WhoisRadiusKm == 0 {
		c.WhoisRadiusKm = 60
	}
	if c.RouterCityRadiusKm == 0 {
		c.RouterCityRadiusKm = 60
	}
	if c.RouterWeightFactor == 0 {
		c.RouterWeightFactor = 0.9
	}
	if c.NegativeWeightFactor == 0 {
		c.NegativeWeightFactor = 0.5
	}
	if c.NegativeShrink == 0 {
		c.NegativeShrink = 0.75
	}
	if c.NegHeightPercentile == 0 {
		c.NegHeightPercentile = 80
	}
	if c.WhoisWeight == 0 {
		c.WhoisWeight = 0.8
	}
	if c.RDNSRadiusKm == 0 {
		c.RDNSRadiusKm = 100
	}
	if c.RDNSWeight == 0 {
		c.RDNSWeight = 0.7
	}
	if c.GeoDBRadiusKm == 0 {
		c.GeoDBRadiusKm = 50
	}
	if c.GeoDBWeight == 0 {
		c.GeoDBWeight = 0.8
	}
	if c.DisagreementConflictKm == 0 {
		c.DisagreementConflictKm = 500
	}
	if c.TracerouteLandmarks == 0 {
		c.TracerouteLandmarks = 3
	}
	if c.MaxRouterHeightDeflationMs == 0 {
		c.MaxRouterHeightDeflationMs = 3
	}
}

// Localizer runs Octant localizations against a prober using a calibrated
// landmark survey.
//
// A Localizer is safe for concurrent use by multiple goroutines provided
// its Prober is (both bundled probers are): Localize reads but never
// writes the Localizer, the Survey, and the Resolver. Concurrent callers
// wanting bounded parallelism, caching, and cancellation should use the
// batch engine rather than raw goroutines.
type Localizer struct {
	Prober   probe.Prober
	Survey   *Survey
	Cfg      Config
	Resolver *undns.Resolver // router-name resolver; defaults to undns.NewResolver()
	// Hints parses end-host reverse names for the RDNSSource; defaults
	// to hints.NewEngine(). Nil (a zero-value Localizer) skips the
	// source.
	Hints *hints.Engine

	// masks caches rasterized §2.5 land masks across the solver's coarse
	// and fine passes and across every localization sharing this
	// Localizer (the batch engine's workers shallow-copy the Localizer,
	// so they all share this one cache).
	masks *LandMaskCache

	// pctx carries the per-survey projection state (centroid frame,
	// landmark frames, projected land outlines), built once and shared by
	// Localize, LocalizeWithSecondary, and all batch workers — the same
	// shallow-copy sharing discipline as masks.
	pctx *ProjectionContext

	// sched is the concurrent measurement scheduler every request through
	// this Localizer fans its probes through — scalar and fused-batch
	// alike, so per-landmark pacing budgets and the optional RTT cache
	// are shared across concurrent targets. Nil when Cfg.MeasureWorkers
	// is negative (serialized measurement) or the Localizer was built as
	// a zero-value literal.
	sched *measure.Scheduler
}

// NewLocalizer builds a Localizer with the given configuration.
func NewLocalizer(p probe.Prober, s *Survey, cfg Config) *Localizer {
	cfg.fillDefaults()
	l := &Localizer{
		Prober:   p,
		Survey:   s,
		Cfg:      cfg,
		Resolver: undns.NewResolver(),
		Hints:    hints.NewEngine(),
		masks:    NewLandMaskCache(),
	}
	if cfg.MeasureWorkers >= 0 {
		l.sched = measure.New(measure.Config{
			Workers:     cfg.MeasureWorkers,
			PerLandmark: cfg.MeasurePerLandmark,
			MinInterval: cfg.MeasureMinInterval,
			CacheTTL:    cfg.RTTCacheTTL,
		})
	}
	if s != nil && s.N() > 0 {
		l.pctx = NewProjectionContext(s)
	}
	return l
}

// NewLocalizerReusing builds a Localizer over s that inherits prev's
// land-mask cache and router-name resolver instead of starting cold.
// Mask masters are keyed by projected geometry, so carrying the cache
// across survey epochs is safe: an epoch with the same landmarks projects
// identical land outlines and reuses the masters outright, while any
// geometry change keys fresh entries. The lifecycle manager uses this so
// an epoch swap does not re-rasterize the §2.5 masks on its first solves.
func NewLocalizerReusing(p probe.Prober, s *Survey, cfg Config, prev *Localizer) *Localizer {
	l := NewLocalizer(p, s, cfg)
	if prev != nil {
		if prev.masks != nil {
			l.masks = prev.masks
		}
		if prev.Resolver != nil {
			l.Resolver = prev.Resolver
		}
		if prev.Hints != nil {
			l.Hints = prev.Hints
		}
		if prev.sched != nil && l.sched != nil {
			// Carry the scheduler too: its per-landmark pacing budgets
			// span epochs (the landmarks haven't changed) and its RTT
			// cache is epoch-qualified, so stale generations can never
			// be served — they just stop being looked up.
			l.sched = prev.sched
		}
	}
	return l
}

// LandMasks returns the localizer's shared land-mask cache (nil for a
// zero-value Localizer built without NewLocalizer).
func (l *Localizer) LandMasks() *LandMaskCache { return l.masks }

// MeasureScheduler returns the localizer's concurrent measurement
// scheduler — nil when measurement is serialized (Cfg.MeasureWorkers <
// 0) or the Localizer was built as a zero-value literal. Serving stacks
// read its Stats for /v1/stats.
func (l *Localizer) MeasureScheduler() *measure.Scheduler { return l.sched }

// Result is one localization outcome.
type Result struct {
	Target string
	// Point is the final point estimate.
	Point geo.Point
	// Region is the estimated location region β in the projection plane.
	Region *geo.Region
	// Projection maps Region to/from geographic coordinates.
	Projection *geo.Projection
	// AreaKm2 is Region's area.
	AreaKm2 float64
	// TargetHeightMs is the solved §2.2 height of the target.
	TargetHeightMs float64
	// RTTs holds the raw min-filtered RTT from each survey landmark.
	RTTs []float64
	// Constraints are the constraints the solver consumed.
	Constraints []Constraint
	// Weight is the captured constraint weight of the solution.
	Weight float64
	// Provenance explains how the evidence pipeline assembled this
	// result (per-source constraint counts, weights, area contributions,
	// timings). Nil unless the request asked for it with WithExplain —
	// or the result is degraded, in which case a minimal Provenance
	// naming the failed landmarks (Failures) is always attached.
	Provenance *Provenance
	// Degraded marks a result computed from partial evidence: one or
	// more landmark measurements failed, but at least the request's
	// quorum (WithMinLandmarks) answered. The failed landmarks and their
	// reasons are in Provenance.Failures. Degraded results are served
	// but never cached by the batch engine or the cluster tiers — a
	// healthy re-measurement should replace them.
	Degraded bool
}

// ContainsTruth reports whether the true location falls inside the
// estimated region — the Figure 4 success metric.
func (r *Result) ContainsTruth(truth geo.Point) bool {
	if r.Region.IsEmpty() {
		return false
	}
	return r.Region.Contains(r.Projection.Forward(truth))
}

// Localize estimates the position of targetAddr with the Localizer's
// configured defaults.
//
// Deprecated: Localize is the v1 entry point, kept as a shim. Use
// LocalizeContext, which threads a context through every measurement
// and accepts per-request options; with no options it is bit-identical
// to this method.
func (l *Localizer) Localize(targetAddr string) (*Result, error) {
	return l.LocalizeWith(context.Background(), targetAddr, nil)
}

// LocalizeContext estimates the position of target. ctx bounds every
// measurement the request issues (cancellation is observed at each
// probe call, mid-measurement for probers implementing
// probe.ContextProber), and opts tune this request without touching the
// shared Localizer: evidence sources can be disabled or down-weighted,
// solver thresholds overridden, exogenous hints and caller constraints
// added, a secondary landmark folded in, and provenance requested. With
// no options the result is bit-identical to the deprecated Localize.
func (l *Localizer) LocalizeContext(ctx context.Context, target string, opts ...LocalizeOption) (*Result, error) {
	if len(opts) == 0 {
		return l.LocalizeWith(ctx, target, nil)
	}
	o := NewLocalizeOptions(opts...)
	return l.LocalizeWith(ctx, target, &o)
}

// LocalizeWith is LocalizeContext over pre-resolved options: callers
// dispatching many requests under one tuning (the batch engine) resolve
// and fingerprint the options once and reuse them. A nil o means
// defaults.
func (l *Localizer) LocalizeWith(ctx context.Context, target string, o *LocalizeOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := l.Cfg
	cfg.fillDefaults()
	if o != nil && o.NegHeightPercentile > 0 {
		cfg.NegHeightPercentile = o.NegHeightPercentile
	}
	s := l.Survey
	if s == nil || s.N() < 3 {
		return nil, fmt.Errorf("core: localizer needs a survey with ≥ 3 landmarks")
	}
	req := &Request{
		Target:   target,
		Cfg:      cfg,
		Survey:   s,
		PCtx:     l.projContext(),
		Prober:   l.Prober,
		Resolver: l.Resolver,
		Hints:    l.Hints,
		sched:    l.sched,
	}
	if o != nil {
		req.Opts = *o
	}
	if ctx.Done() != nil {
		// Bind the request context to the prober once; every source's
		// measurement call then observes cancellation without per-call
		// plumbing. A background context binds nothing, keeping the
		// default path allocation-identical to v1.
		req.Prober = probe.WithContext(ctx, l.Prober)
	}
	return l.localizeRequest(ctx, req)
}

// localizeRequest runs the evidence pipeline and solve for one assembled
// Request. It is the single body behind the scalar path (LocalizeWith)
// and the fused batch path (LocalizeBatchWith) — the batch path differs
// only in the Request it assembles (shared resolved config and prober
// binding, a per-worker constraint arena), so per-target behaviour stays
// bit-identical between the two by construction.
func (l *Localizer) localizeRequest(ctx context.Context, req *Request) (*Result, error) {
	explain := req.Opts.Explain
	var prov *Provenance
	if explain {
		prov = &Provenance{}
	}

	// Evidence pipeline: each source contributes weighted constraints
	// in a fixed order (latency, router, hint, geography, then any
	// request-scoped extra sources).
	var constraints []Constraint
	for _, src := range defaultSources {
		if name := src.Name(); name != SourceLatency && req.Opts.sourceOff(name) {
			// The LatencySource handles its own disable internally: it
			// must still measure for downstream sources.
			if explain {
				prov.Sources = append(prov.Sources, SourceReport{Source: name, Skipped: "disabled by request"})
			}
			continue
		}
		cs, rep, err := runSource(ctx, src, req, explain)
		if err != nil {
			return nil, err
		}
		constraints = appendConstraints(constraints, cs)
		if explain {
			prov.Sources = append(prov.Sources, rep)
		}
	}
	for _, src := range req.Opts.ExtraSources {
		if req.Opts.sourceOff(src.Name()) {
			if explain {
				prov.Sources = append(prov.Sources, SourceReport{Source: src.Name(), Skipped: "disabled by request"})
			}
			continue
		}
		cs, rep, err := runSource(ctx, src, req, explain)
		if err != nil {
			return nil, err
		}
		constraints = appendConstraints(constraints, cs)
		if explain {
			prov.Sources = append(prov.Sources, rep)
		}
	}
	if n := len(req.Opts.Extra); n > 0 {
		constraints = append(constraints, req.Opts.Extra...)
		if explain {
			prov.ExtraConstraints = n
		}
	}
	if len(constraints) == 0 {
		return nil, fmt.Errorf("core: no usable constraints for %s", req.Target)
	}

	// Solve (§2.4), masking oceans (§2.5) when the GeographySource ran.
	sopts := l.solverOpts(&req.Cfg, &req.Opts)
	sopts.LandRegions = req.Land
	if req.Cfg.Unweighted {
		// Discrete semantics: negatives are absolute vetoes.
		for i := range constraints {
			if constraints[i].Kind == Negative {
				constraints[i].Weight = 1e9
			}
		}
		sopts.MinAreaKm2 = 1 // take only the top weight level
	}
	var t0 time.Time
	if explain {
		t0 = time.Now()
	}
	sol, err := Solve(constraints, sopts)
	if err != nil {
		return nil, err
	}
	if explain {
		prov.SolveMs = float64(time.Since(t0)) / float64(time.Millisecond)
		prov.TotalConstraints = len(constraints)
		for i := range prov.Sources {
			prov.MeasureMs += prov.Sources[i].MeasureMs
		}
	}
	if len(req.Failures) > 0 {
		// A degraded result must name its missing evidence even when the
		// caller did not ask for provenance.
		if prov == nil {
			prov = &Provenance{TotalConstraints: len(constraints)}
		}
		prov.Failures = req.Failures
	}
	if len(req.dropped) > 0 || len(req.hintLocs) > 0 || len(req.geodbLocs) > 0 {
		// Discarded or applied exogenous priors must be reported even
		// without WithExplain, same contract as degraded-mode Failures.
		// The default path (no hints, no provider) never reaches here.
		if prov == nil {
			prov = &Provenance{TotalConstraints: len(constraints)}
		}
		prov.DroppedHints = req.dropped
		prov.Disagreement = req.disagreement()
	}
	pr := req.PCtx.Proj
	res := &Result{
		Target:         req.Target,
		Region:         sol.Region,
		Projection:     pr,
		AreaKm2:        sol.Region.Area(),
		TargetHeightMs: req.TargetHeightMs,
		RTTs:           req.RTTs,
		Constraints:    constraints,
		Weight:         sol.Weight,
		Provenance:     prov,
		Degraded:       len(req.Failures) > 0,
	}
	if sol.Region.IsEmpty() {
		// Brittle configurations (Unweighted) can produce an empty
		// estimate; report it honestly with a NaN point.
		res.Point = geo.Pt(math.NaN(), math.NaN())
	} else {
		res.Point = pr.Inverse(sol.Point)
	}
	if req.Opts.Secondary != nil {
		if err := l.applySecondary(res, req); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runSource invokes one pipeline stage, applies the request's weight
// scale for it, and (when provenance was requested) fills the report's
// quantitative fields.
func runSource(ctx context.Context, src EvidenceSource, req *Request, explain bool) ([]Constraint, SourceReport, error) {
	var t0 time.Time
	if explain {
		t0 = time.Now()
	}
	cs, rep, err := src.Constraints(ctx, req)
	if err != nil {
		return nil, rep, err
	}
	if rep.Source == "" {
		rep.Source = src.Name()
	}
	scale := req.Opts.scaleFor(src.Name())
	if scale != 1 {
		for i := range cs {
			cs[i].Weight *= scale
		}
	}
	if explain {
		rep.Constraints = len(cs)
		rep.WeightScale = scale
		for i := range cs {
			rep.Weight += cs[i].Weight
			if cs[i].Kind == Positive {
				rep.AreaKm2 += cs[i].Region.Area()
			}
		}
		rep.ElapsedMs = float64(time.Since(t0)) / float64(time.Millisecond)
	}
	return cs, rep, nil
}

// appendConstraints grows acc by cs, taking ownership of the first
// non-empty slice outright (sources hand their results over) so the
// common path allocates exactly like the pre-pipeline monolith.
func appendConstraints(acc, cs []Constraint) []Constraint {
	if len(cs) == 0 {
		return acc
	}
	if acc == nil {
		return cs
	}
	return append(acc, cs...)
}

// solverOpts assembles the §2.4 solver options from the config and the
// request's overrides.
func (l *Localizer) solverOpts(cfg *Config, o *LocalizeOptions) SolverOpts {
	sopts := SolverOpts{MinAreaKm2: cfg.MinRegionAreaKm2, Exact: cfg.Exact, Masks: l.masks}
	if o.MinAreaKm2 > 0 {
		sopts.MinAreaKm2 = o.MinAreaKm2
	}
	if o.FineCellKm > 0 {
		sopts.FineCellKm = o.FineCellKm
	}
	return sopts
}

// applySecondary folds the §2 secondary-landmark constraints into an
// already solved result and re-solves — the exact semantics of the
// deprecated LocalizeWithSecondary, expressed as WithSecondary.
func (l *Localizer) applySecondary(res *Result, req *Request) error {
	var tStart time.Time
	if res.Provenance != nil {
		tStart = time.Now()
	}
	sec := req.Opts.Secondary
	cfg := &req.Cfg
	minKm, maxKm := req.Survey.Global.Band(sec.RTTMs)
	w := LatencyWeight(sec.RTTMs, cfg.WeightHalfLifeMs) * cfg.RouterWeightFactor
	before := len(res.Constraints)
	cons := append([]Constraint(nil), res.Constraints...)
	cons = append(cons, PositiveFromRegion(sec.Beta, maxKm, w, "secondary"))
	if !cfg.DisableNegative && minKm > 0 {
		neg := NegativeFromRegion(sec.Beta, minKm, w, "secondary/neg")
		if !neg.Region.IsEmpty() {
			cons = append(cons, neg)
		}
	}
	sopts := l.solverOpts(cfg, &req.Opts)
	// res.Projection is the shared per-survey projection, so the
	// context's pre-projected land outlines apply as-is.
	sopts.LandRegions = req.Land
	var tSolve time.Time
	if res.Provenance != nil {
		tSolve = time.Now()
	}
	sol, err := Solve(cons, sopts)
	if err != nil {
		return err
	}
	if prov := res.Provenance; prov != nil {
		// Keep provenance consistent with the result actually returned:
		// the secondary stage and its re-solve are part of this request.
		// ElapsedMs covers only constraint construction (tStart→tSolve);
		// the re-solve goes into SolveMs, keeping the two disjoint as
		// they are for every other stage.
		rep := SourceReport{Source: "secondary", Constraints: len(cons) - before, WeightScale: 1}
		for _, c := range cons[before:] {
			rep.Weight += c.Weight
			if c.Kind == Positive {
				rep.AreaKm2 += c.Region.Area()
			}
		}
		rep.ElapsedMs = float64(tSolve.Sub(tStart)) / float64(time.Millisecond)
		prov.Sources = append(prov.Sources, rep)
		prov.TotalConstraints = len(cons)
		prov.SolveMs += float64(time.Since(tSolve)) / float64(time.Millisecond)
	}
	res.Region = sol.Region
	res.AreaKm2 = sol.Region.Area()
	res.Constraints = cons
	res.Weight = sol.Weight
	if !sol.Region.IsEmpty() {
		res.Point = res.Projection.Inverse(sol.Point)
	}
	return nil
}

// routerConstraints issues traceroutes from the lowest-latency landmarks
// and converts undns-localized routers on the paths into extra constraints
// (§2.3). The residual latency from a router at hop k to the target is the
// end-to-end RTT minus the cumulative RTT at hop k — the piece of the path
// the landmark's measurements cannot see. The target's solved height is
// removed from the residual before the distance lookup: the last router
// before a campus is often one metro away, and without the height
// deflation its constraint would be hundreds of km too loose.
//
// It also returns the traceroutes that failed, as skip-with-reason
// entries for the RouterSource's report; a failure never aborts the
// request. The traceroutes themselves fan out through the request's
// measurement scheduler when one is attached — slot-indexed placement
// restores rank order before any hop is processed, so the per-city
// best-constraint map (and therefore the output) is identical to the
// serialized walk. measureNs, filled only when timing is set, is the
// wall time spent in traceroute measurement.
func routerConstraints(ctx context.Context, req *Request, timing bool) (cons []Constraint, failed []ProbeFailure, measureNs int64) {
	s := req.Survey
	cfg := &req.Cfg
	rtts := req.RTTs
	cf := req.PCtx.Center
	tHeight := req.TargetHeightMs
	// Rank landmarks by latency to the target. NaN slots are landmarks
	// whose measurement failed (degraded mode): they cannot be ranked —
	// and must not be, since NaN comparisons would silently corrupt the
	// sort below.
	type lmDist struct {
		idx int
		rtt float64
	}
	order := make([]lmDist, 0, len(rtts))
	for i, r := range rtts {
		if math.IsNaN(r) {
			continue
		}
		order = append(order, lmDist{i, r})
	}
	for i := 1; i < len(order); i++ { // insertion sort: n ≤ ~50
		for j := i; j > 0 && order[j].rtt < order[j-1].rtt; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	resolver := req.Resolver
	if resolver == nil {
		resolver = undns.NewResolver()
	}
	type routerCons struct {
		loc   undns.Location
		maxKm float64
		resid float64
	}
	best := make(map[string]routerCons) // per city code, keep the tightest
	nTr := cfg.TracerouteLandmarks
	if nTr > len(order) {
		nTr = len(order)
	}
	// Measure first (concurrently when a scheduler is attached), process
	// after: hop processing is pure computation over per-slot hop lists,
	// so separating the phases changes wall-clock only.
	var hopLists [][]probe.Hop
	var terrs []error
	if sched := req.sched; sched != nil && nTr > 1 {
		srcs := make([]string, nTr)
		for k := 0; k < nTr; k++ {
			srcs[k] = s.Landmarks[order[k].idx].Addr
		}
		hopLists = make([][]probe.Hop, nTr)
		terrs = make([]error, nTr)
		var mt0 time.Time
		if timing {
			mt0 = time.Now()
		}
		sched.TracerouteInto(ctx, req.Prober, srcs, req.Target, hopLists, terrs)
		if timing {
			measureNs = int64(time.Since(mt0))
		}
	}
	for k := 0; k < nTr; k++ {
		lm := s.Landmarks[order[k].idx]
		var hops []probe.Hop
		var err error
		if hopLists != nil {
			hops, err = hopLists[k], terrs[k]
		} else {
			var t0 time.Time
			if timing {
				t0 = time.Now()
			}
			hops, err = req.Prober.Traceroute(lm.Addr, req.Target)
			if timing {
				measureNs += int64(time.Since(t0))
			}
		}
		if err != nil {
			failed = append(failed, ProbeFailure{Landmark: lm.Name, Reason: "traceroute: " + err.Error()})
			continue
		}
		if len(hops) == 0 {
			continue
		}
		total := hops[len(hops)-1].RTTMs
		deflate := math.Min(tHeight, cfg.MaxRouterHeightDeflationMs)
		for _, h := range hops[:len(hops)-1] {
			loc, ok := resolver.Resolve(h.Name)
			if !ok {
				continue
			}
			residual := total - h.RTTMs - deflate - 0.3 // 0.3ms: downstream queuing allowance
			if residual < 0.2 {
				residual = 0.2
			}
			maxKm := s.Global.MaxDistanceKm(residual) + cfg.RouterCityRadiusKm
			if prev, ok := best[loc.Code]; !ok || maxKm < prev.maxKm {
				best[loc.Code] = routerCons{loc: loc, maxKm: maxKm, resid: residual}
			}
		}
	}
	codes := make([]string, 0, len(best))
	for code := range best {
		codes = append(codes, code)
	}
	sort.Strings(codes) // deterministic constraint order
	for _, code := range codes {
		rc := best[code]
		w := LatencyWeight(rc.resid, cfg.WeightHalfLifeMs) * cfg.RouterWeightFactor
		if cfg.Unweighted {
			w = 1
		}
		cons = append(cons, req.disk(Positive, cf, geo.NewFrame(rc.loc.Loc), rc.maxKm, w, "router:"+code))
	}
	return cons, failed, measureNs
}

// LocalizeWithSecondary runs a localization that additionally uses a
// secondary landmark: a node whose own position is only known as an
// estimated region beta (e.g. a previously localized router). Positive
// constraints dilate beta by R(d); negative constraints keep only points
// within r(d) of all of beta (§2 of the paper). The secondary's latency to
// the target must be supplied by the caller.
//
// Deprecated: use LocalizeContext(ctx, target, WithSecondary(beta,
// rttMs)); this wrapper delegates to it and is bit-identical.
func (l *Localizer) LocalizeWithSecondary(targetAddr string, beta *geo.Region, rttMs float64) (*Result, error) {
	return l.LocalizeContext(context.Background(), targetAddr, WithSecondary(beta, rttMs))
}
