package core

import (
	"context"
	"fmt"

	"octant/internal/calib"
	"octant/internal/geo"
	"octant/internal/height"
	"octant/internal/measure"
	"octant/internal/probe"
)

// Landmark is a node with (at least partially) known position that issues
// measurements. Primary landmarks have exact positions; secondary landmarks
// (localized routers) enter localization separately with estimated regions.
type Landmark struct {
	Addr string // probing address (host name in the simulator)
	Name string // display name
	Loc  geo.Point
}

// Survey holds the periodic inter-landmark calibration state Octant
// maintains (§2.1–2.2): the pairwise min-filtered RTT matrix, the solved
// per-landmark heights, and each landmark's latency→distance calibration.
// It is shared by Octant and the baselines so all techniques see identical
// measurements, as in the paper's evaluation.
//
// A Survey is immutable after NewSurvey (or Subset, or RebuildSurvey)
// returns: no method writes to it, and every Calibration read path is
// pure. Any number of goroutines may therefore localize against one
// Survey concurrently without locking — the batch engine and octant-serve
// rely on this. Callers must not mutate the exported fields after
// construction. Refreshing measurements never modifies a Survey in place;
// it produces a new snapshot with a higher Epoch (see RebuildSurvey and
// the lifecycle manager).
type Survey struct {
	// Epoch versions the snapshot. A survey built by NewSurvey is epoch
	// 0; each lifecycle recalibration publishes a successor with Epoch+1.
	// Consumers (the batch engine's cache, octant-serve) use it to tell
	// snapshots apart without comparing measurement state.
	Epoch uint64

	Landmarks []Landmark
	RTT       [][]float64 // [i][j] min RTT between landmarks i and j, ms
	Heights   []float64   // per-landmark queuing heights, ms
	Calibs    []*calib.Calibration
	// Global pools every pair's (latency, distance) sample into one
	// calibration; used for nodes without their own calibration history,
	// e.g. routers promoted to landmarks during piecewise localization.
	Global *calib.Calibration

	// Kappa is the calibrated typical route-inflation factor: measured
	// RTT ≈ Kappa × great-circle fiber RTT + heights. It keeps the
	// distance-proportional part of latency out of the per-node heights.
	Kappa float64

	// Probes records the ping-sample count each pair's min-RTT was
	// filtered over. Min-of-n is biased by n, so measurements are only
	// comparable — e.g. by a refresh's drift detection — when remeasured
	// with the same count.
	Probes int

	// UseHeights records whether calibrations were built on
	// height-adjusted latencies.
	UseHeights bool
}

// SurveyOpts configures survey construction.
type SurveyOpts struct {
	Probes           int     // ping samples per pair (default 10, as in §3)
	CutoffPercentile float64 // calibration cutoff ρ percentile (default 90)
	UseHeights       bool    // adjust latencies by solved heights (§2.2)
	// Workers bounds the concurrent pairwise pings of the O(k²) survey
	// matrix (0 = the scheduler default, 16; negative = serialized, the
	// pre-scheduler loop). Pair (i,j) is always measured exactly once in
	// either mode, so a deterministic prober yields a bit-identical
	// matrix regardless of the setting.
	Workers int
}

func (o *SurveyOpts) fillDefaults() {
	if o.Probes == 0 {
		o.Probes = 10
	}
	if o.CutoffPercentile == 0 {
		o.CutoffPercentile = 90
	}
}

// NewSurvey measures all landmark pairs through the prober and fits
// heights and calibrations. It needs ≥ 3 landmarks (for the heights
// system) and O(n²) pings.
func NewSurvey(p probe.Prober, landmarks []Landmark, opts SurveyOpts) (*Survey, error) {
	opts.fillDefaults()
	n := len(landmarks)
	if n < 3 {
		return nil, fmt.Errorf("core: survey needs ≥ 3 landmarks, have %d", n)
	}
	s := &Survey{
		Landmarks:  append([]Landmark(nil), landmarks...),
		UseHeights: opts.UseHeights,
		Probes:     opts.Probes,
	}
	s.RTT = make([][]float64, n)
	for i := range s.RTT {
		s.RTT[i] = make([]float64, n)
	}
	if err := surveyPairs(p, landmarks, opts, s.RTT); err != nil {
		return nil, err
	}

	// Heights from pairwise queuing-delay residuals (§2.2), after
	// removing the typical route inflation κ so heights stay per-node.
	locs := make([]geo.Point, n)
	for i := range landmarks {
		locs[i] = landmarks[i].Loc
	}
	s.Kappa = height.EstimateInflation(s.RTT, locs, 0)
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			if i == j {
				continue
			}
			q[i][j] = height.QueuingDelayK(s.RTT[i][j], s.Kappa, landmarks[i].Loc, landmarks[j].Loc)
		}
	}
	h, err := height.SolveLandmarks(q)
	if err != nil {
		return nil, err
	}
	s.Heights = h

	// Per-landmark calibration from (optionally height-adjusted)
	// latencies against known inter-landmark distances (§2.1).
	s.Calibs = make([]*calib.Calibration, n)
	var pooled []calib.Sample
	for i := 0; i < n; i++ {
		samples := make([]calib.Sample, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			rtt := s.RTT[i][j]
			if opts.UseHeights {
				rtt = height.AdjustRTT(rtt, h[i], h[j])
			}
			samples = append(samples, calib.Sample{
				LatencyMs:  rtt,
				DistanceKm: landmarks[i].Loc.DistanceKm(landmarks[j].Loc),
			})
		}
		c, err := calib.New(samples, calib.Options{CutoffPercentile: opts.CutoffPercentile})
		if err != nil {
			return nil, fmt.Errorf("core: calibrating %s: %w", landmarks[i].Name, err)
		}
		s.Calibs[i] = c
		pooled = append(pooled, samples...)
	}
	g, err := calib.New(pooled, calib.Options{CutoffPercentile: opts.CutoffPercentile})
	if err != nil {
		return nil, fmt.Errorf("core: global calibration: %w", err)
	}
	s.Global = g
	return s, nil
}

// surveyPairs measures every landmark pair once and fills the symmetric
// RTT matrix. With a non-negative worker budget the O(k²) pings fan out
// through an ephemeral measurement scheduler (no cache — a survey is the
// baseline other measurements are compared against, so every pair is
// probed fresh); a negative budget keeps the serialized walk. Either
// way the first failing pair in (i, j) iteration order aborts with the
// same error the sequential loop raised: the scheduler dispatches slots
// in order and reports the lowest errored one.
func surveyPairs(p probe.Prober, landmarks []Landmark, opts SurveyOpts, rtt [][]float64) error {
	n := len(landmarks)
	type pair struct{ i, j int }
	pairs := make([]pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	ping := func(i, j int) error {
		samples, err := p.Ping(landmarks[i].Addr, landmarks[j].Addr, opts.Probes)
		if err != nil {
			return fmt.Errorf("core: survey ping %s→%s: %w",
				landmarks[i].Name, landmarks[j].Name, err)
		}
		min, err := probe.MinRTT(samples)
		if err != nil {
			return err
		}
		// Distinct pairs write distinct (i,j)/(j,i) cells, so concurrent
		// slots never contend.
		rtt[i][j], rtt[j][i] = min, min
		return nil
	}
	if opts.Workers < 0 {
		for _, pr := range pairs {
			if err := ping(pr.i, pr.j); err != nil {
				return err
			}
		}
		return nil
	}
	sched := measure.New(measure.Config{Workers: opts.Workers})
	_, err := sched.Run(context.Background(), len(pairs), func(slot int) error {
		pr := pairs[slot]
		return sched.Paced(context.Background(), landmarks[pr.i].Addr, func() error {
			return ping(pr.i, pr.j)
		})
	})
	return err
}

// Subset returns a survey restricted to the landmark indices in idx,
// reusing the existing measurements (recomputing heights and calibrations
// on the subset). Used by the Figure 4 landmark-count sweep.
func (s *Survey) Subset(idx []int) (*Survey, error) {
	n := len(idx)
	if n < 3 {
		return nil, fmt.Errorf("core: subset needs ≥ 3 landmarks, have %d", n)
	}
	sub := &Survey{
		Epoch:      s.Epoch, // same measurement generation, fewer landmarks
		Landmarks:  make([]Landmark, n),
		RTT:        make([][]float64, n),
		UseHeights: s.UseHeights,
		Probes:     s.Probes,
	}
	for a, i := range idx {
		sub.Landmarks[a] = s.Landmarks[i]
		sub.RTT[a] = make([]float64, n)
		for b, j := range idx {
			sub.RTT[a][b] = s.RTT[i][j]
		}
	}
	locs := make([]geo.Point, n)
	for a := range sub.Landmarks {
		locs[a] = sub.Landmarks[a].Loc
	}
	sub.Kappa = height.EstimateInflation(sub.RTT, locs, 0)
	q := make([][]float64, n)
	for a := range q {
		q[a] = make([]float64, n)
		for b := range q[a] {
			if a == b {
				continue
			}
			q[a][b] = height.QueuingDelayK(sub.RTT[a][b], sub.Kappa, sub.Landmarks[a].Loc, sub.Landmarks[b].Loc)
		}
	}
	h, err := height.SolveLandmarks(q)
	if err != nil {
		return nil, err
	}
	sub.Heights = h
	sub.Calibs = make([]*calib.Calibration, n)
	var pooled []calib.Sample
	for a := 0; a < n; a++ {
		samples := make([]calib.Sample, 0, n-1)
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			rtt := sub.RTT[a][b]
			if sub.UseHeights {
				rtt = height.AdjustRTT(rtt, h[a], h[b])
			}
			samples = append(samples, calib.Sample{
				LatencyMs:  rtt,
				DistanceKm: sub.Landmarks[a].Loc.DistanceKm(sub.Landmarks[b].Loc),
			})
		}
		c, err := calib.New(samples, calib.Options{CutoffPercentile: s.calibCutoff()})
		if err != nil {
			return nil, err
		}
		sub.Calibs[a] = c
		pooled = append(pooled, samples...)
	}
	g, err := calib.New(pooled, calib.Options{CutoffPercentile: s.calibCutoff()})
	if err != nil {
		return nil, err
	}
	sub.Global = g
	return sub, nil
}

// calibCutoff recovers the cutoff percentile used at construction (all
// calibrations share it).
func (s *Survey) calibCutoff() float64 {
	if len(s.Calibs) > 0 {
		return s.Calibs[0].Opts.CutoffPercentile
	}
	return 90
}

// N returns the number of landmarks.
func (s *Survey) N() int { return len(s.Landmarks) }

// Centroid returns the spherical centroid of landmark positions — the
// natural projection centre for a localization.
func (s *Survey) Centroid() geo.Point {
	pts := make([]geo.Point, len(s.Landmarks))
	for i, l := range s.Landmarks {
		pts[i] = l.Loc
	}
	return geo.Centroid(pts)
}
