// Package core implements the Octant framework itself — the paper's primary
// contribution. It turns network measurements into weighted positive and
// negative geographic constraints (§2), solves the constraint system with an
// error-minimizing weighted geometric solver (§2.4), refines estimates with
// queuing-delay heights (§2.2), piecewise router localization over indirect
// routes (§2.3), and geographic/demographic constraints (§2.5).
package core

import (
	"fmt"
	"math"

	"octant/internal/geo"
	"octant/internal/hull"
)

// Kind distinguishes positive from negative constraints.
type Kind int

// Constraint kinds.
const (
	// Positive constraints assert the target IS inside the region
	// ("within x miles of L").
	Positive Kind = iota
	// Negative constraints assert the target is NOT inside the region
	// ("further than y miles from L").
	Negative
)

func (k Kind) String() string {
	if k == Negative {
		return "negative"
	}
	return "positive"
}

// Constraint is a weighted region statement about the target's position.
// Regions live in the projection plane of the enclosing localization.
type Constraint struct {
	Kind   Kind
	Region *geo.Region
	Weight float64
	Source string // provenance, e.g. landmark name, "whois", "router:nyc"
}

// String summarizes the constraint.
func (c Constraint) String() string {
	return fmt.Sprintf("%s[%s w=%.3f area=%.0fkm²]", c.Kind, c.Source, c.Weight, c.Region.Area())
}

// circleSegments is the polygonalization cap for constraint disks; small
// disks use fewer vertices, chosen per radius by the chord-error bound
// below.
const circleSegments = 96

// circleChordTolKm is the chord-error (sagitta) budget that picks each
// disk's vertex count: max(0.25 km, FineCellKm/4) = 1 km for the 4 km
// fine pass Localize always solves at (SolverOpts.FineCellKm is not
// user-configurable through Config; a caller driving Solve directly at a
// custom resolution builds its own rings). A 60 km WHOIS/router disk
// polygonalized to this tolerance needs 24 vertices, not 96;
// continent-scale latency disks keep full density.
const circleChordTolKm = 1.0

// diskConstraint builds a disk constraint through the unit-vector fast
// path: the ring is generated directly at its adaptive size (no oversized
// scratch, no clone) and handed to the region whole.
func diskConstraint(kind Kind, cf, lf geo.Frame, radiusKm, weight float64, source string) Constraint {
	n := geo.CircleSegments(radiusKm, circleChordTolKm)
	ring := geo.Ring(cf.AppendGeoCircle(make([]geo.Vec2, 0, n), lf, radiusKm, n))
	return Constraint{
		Kind:   kind,
		Region: geo.NewRegion(ring),
		Weight: weight,
		Source: source,
	}
}

// Arena chunk sizes: a typical localization builds ~100 disks of ≤ 96
// vertices, so one vertex chunk and one header chunk cover most targets.
const (
	arenaVecChunk    = 8192
	arenaRingChunk   = 128
	arenaRegionChunk = 128
)

// constraintArena bump-allocates the three fixed-shape pieces of a disk
// constraint — the vertex ring, its one-entry []Ring, and the Region
// header — out of large chunks instead of three heap objects per disk.
// The fused batch path gives each worker one arena for the lifetime of
// the batch: chunk memory is retained by the Results built from it (a
// Result keeps its constraint regions), so the arena never recycles, it
// only amortizes the allocation *count* across disks and targets.
//
// An arena is single-goroutine state; the zero value is ready to use.
type constraintArena struct {
	vecs    []geo.Vec2
	rings   []geo.Ring
	regions []geo.Region
}

// disk is diskConstraint with every piece carved from the arena. The ring
// contents, orientation, and the resulting Constraint value are
// bit-identical to diskConstraint's; only the backing allocations differ.
func (a *constraintArena) disk(kind Kind, cf, lf geo.Frame, radiusKm, weight float64, source string) Constraint {
	n := geo.CircleSegments(radiusKm, circleChordTolKm)
	if len(a.vecs)+n > cap(a.vecs) {
		c := arenaVecChunk
		if n > c {
			c = n
		}
		a.vecs = make([]geo.Vec2, 0, c)
	}
	base := len(a.vecs)
	ring := geo.Ring(cf.AppendGeoCircle(a.vecs[base:base:base+n], lf, radiusKm, n))
	if len(ring) <= n {
		a.vecs = a.vecs[:base+len(ring)]
	}
	if len(a.rings) == cap(a.rings) {
		a.rings = make([]geo.Ring, 0, arenaRingChunk)
	}
	a.rings = append(a.rings, ring)
	rs := a.rings[len(a.rings)-1 : len(a.rings) : len(a.rings)]
	if len(a.regions) == cap(a.regions) {
		a.regions = make([]geo.Region, 0, arenaRegionChunk)
	}
	a.regions = append(a.regions, geo.Region{Rings: rs})
	return Constraint{
		Kind:   kind,
		Region: geo.NormalizeRegion(&a.regions[len(a.regions)-1]),
		Weight: weight,
		Source: source,
	}
}

// PositiveDisk builds a positive constraint: target within radiusKm of a
// pinpoint-known landmark at center.
func PositiveDisk(pr *geo.Projection, center geo.Point, radiusKm, weight float64, source string) Constraint {
	return diskConstraint(Positive, pr.Frame(), geo.NewFrame(center), radiusKm, weight, source)
}

// NegativeDisk builds a negative constraint: target further than radiusKm
// from a pinpoint-known landmark at center (the excluded region is the
// disk itself).
func NegativeDisk(pr *geo.Projection, center geo.Point, radiusKm, weight float64, source string) Constraint {
	return diskConstraint(Negative, pr.Frame(), geo.NewFrame(center), radiusKm, weight, source)
}

// PositiveFromRegion builds the positive constraint induced by a secondary
// landmark whose own position is only known as the region beta: the union
// of all radiusKm-disks centred at points of beta, i.e. the Minkowski
// dilation of beta (§2 of the paper: γ = ⋃_{(x,y)∈β} c(x,y,d)).
func PositiveFromRegion(beta *geo.Region, radiusKm, weight float64, source string) Constraint {
	return Constraint{
		Kind:   Positive,
		Region: geo.Buffer(beta, radiusKm, 0),
		Weight: weight,
		Source: source,
	}
}

// NegativeFromRegion builds the negative constraint induced by a secondary
// landmark region beta: only points within radiusKm of EVERY point of beta
// are ruled out (γ = ⋂_{(x,y)∈β} c(x,y,d)). Because Euclidean distance is
// convex, the intersection equals the intersection of disks centred at the
// vertices of beta's convex hull.
func NegativeFromRegion(beta *geo.Region, radiusKm, weight float64, source string) Constraint {
	verts := hullVertices(beta)
	if len(verts) == 0 {
		return Constraint{Kind: Negative, Region: geo.EmptyRegion(), Weight: weight, Source: source}
	}
	region := geo.Disk(verts[0], radiusKm, circleSegments)
	for _, v := range verts[1:] {
		region = geo.Intersect(region, geo.Disk(v, radiusKm, circleSegments), nil)
		if region.IsEmpty() {
			break
		}
	}
	return Constraint{Kind: Negative, Region: region, Weight: weight, Source: source}
}

// hullVertices returns the convex hull vertices of all ring points of r.
func hullVertices(r *geo.Region) []geo.Vec2 {
	var pts []hull.P
	for _, ring := range r.Rings {
		for _, v := range ring {
			pts = append(pts, hull.P{X: v.X, Y: v.Y})
		}
	}
	hp := hull.Convex(pts)
	out := make([]geo.Vec2, len(hp))
	for i, p := range hp {
		out[i] = geo.V2(p.X, p.Y)
	}
	return out
}

// AnnulusConstraints converts one latency measurement from a primary
// landmark into the paper's canonical pair: a positive disk of radius
// R(rtt) and a negative disk of radius r(rtt) — together an annulus when
// both apply.
func AnnulusConstraints(pr *geo.Projection, center geo.Point, minKm, maxKm, weight float64, source string) []Constraint {
	var out []Constraint
	if maxKm > 0 {
		out = append(out, PositiveDisk(pr, center, maxKm, weight, source))
	}
	if minKm > 0 && minKm < maxKm {
		out = append(out, NegativeDisk(pr, center, minKm, weight, source+"/neg"))
	}
	return out
}

// LatencyWeight is the paper's §2.4 weighting: confidence decreases
// exponentially with latency, so nearby landmarks dominate when present.
// halfLifeMs is the RTT at which weight halves (30 ms by default in
// Config).
func LatencyWeight(rttMs, halfLifeMs float64) float64 {
	if halfLifeMs <= 0 {
		return 1
	}
	if rttMs < 0 {
		rttMs = 0
	}
	return math.Exp2(-rttMs / halfLifeMs)
}
