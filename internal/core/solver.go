package core

import (
	"fmt"
	"math"
	"sort"

	"octant/internal/geo"
)

// The weighted constraint solver of §2.4. A discrete solution (pure
// intersection/subtraction) is brittle: one erroneous constraint collapses
// the estimate to the empty set. Octant instead accumulates constraint
// weights over the plane and returns the union of the highest-weight
// regions, descending by weight, until the result exceeds a size threshold.
//
// Two engines implement this:
//
//   - the raster engine overlays constraints on a weight grid
//     (positive add, negative subtract, hard masks exclude), then extracts
//     a level set — robust for dozens of overlapping constraints, and
//     refined in a second pass at fine resolution around the first answer;
//   - the exact engine maintains the full arrangement of constraint
//     regions as disjoint (region, weight) cells via pairwise boolean
//     operations — exponential in the worst case, usable for small
//     constraint counts and for cross-validating the raster engine.

// SolverOpts configures the weighted solve.
type SolverOpts struct {
	// MinAreaKm2 is the size threshold: weight levels are unioned in
	// descending order until the region reaches this area (default 500).
	MinAreaKm2 float64
	// CoarseCells is the target cell count across the larger extent axis
	// for the first raster pass (default 384).
	CoarseCells int
	// FineCellKm is the resolution of the refinement pass (default 4 km,
	// clamped so the fine grid stays within budget).
	FineCellKm float64
	// Exact switches to the exact arrangement engine.
	Exact bool
	// LandRegions, when non-empty, restricts solutions to the union of
	// these regions (the §2.5 ocean/uninhabitable negative constraint,
	// applied as a hard mask).
	LandRegions []*geo.Region
	// Masks, when non-nil, caches rasterized LandRegions masks so the
	// coarse pass, the fine pass, and every other solve sharing the cache
	// (all targets of a batch run against one Survey) skip re-rasterizing
	// the fixed land polygons. Nil falls back to direct rasterization.
	Masks *LandMaskCache
}

func (o *SolverOpts) fillDefaults() {
	if o.MinAreaKm2 == 0 {
		o.MinAreaKm2 = 500
	}
	if o.CoarseCells == 0 {
		o.CoarseCells = 384
	}
	if o.FineCellKm == 0 {
		o.FineCellKm = 4
	}
}

// Solution is the outcome of a weighted constraint solve.
type Solution struct {
	// Region is the estimated location region β.
	Region *geo.Region
	// Weight is the constraint weight captured by the region's
	// highest-weight cells.
	Weight float64
	// Point is the weight-averaged point estimate.
	Point geo.Vec2
	// CellKm is the resolution the final extraction used.
	CellKm float64
}

// Solve runs the weighted solver over the constraints.
func Solve(constraints []Constraint, opts SolverOpts) (*Solution, error) {
	opts.fillDefaults()
	var positives []Constraint
	for _, c := range constraints {
		if c.Kind == Positive && !c.Region.IsEmpty() {
			positives = append(positives, c)
		}
	}
	if len(positives) == 0 {
		return nil, fmt.Errorf("core: no positive constraints to solve")
	}
	if opts.Exact {
		return solveExact(constraints, opts)
	}

	// Pass 1: coarse grid over the union of positive-constraint extents.
	// The raw cell size span/CoarseCells is quantized onto the
	// {FineCellKm · 2^k} lattice the fine pass already uses, so the land
	// masks rasterized at coarse resolution are shared across targets
	// (each target's constraint extent differs, but the handful of
	// quantized cell sizes repeat).
	min, max := constraintExtent(positives)
	span := math.Max(max.X-min.X, max.Y-min.Y)
	coarse := quantizeCellKm(span/float64(opts.CoarseCells), opts.FineCellKm)
	sol := solveOnGrid(constraints, min, max, coarse, opts)
	if sol.Region.IsEmpty() {
		return sol, nil
	}
	// Pass 2: refine around the coarse answer when it is small enough to
	// benefit.
	rmin, rmax, ok := sol.Region.BoundingBox()
	if !ok {
		return sol, nil
	}
	pad := 4 * coarse
	rmin = geo.V2(rmin.X-pad, rmin.Y-pad)
	rmax = geo.V2(rmax.X+pad, rmax.Y+pad)
	fine := opts.FineCellKm
	// Keep the fine grid within ~1M cells.
	for (rmax.X-rmin.X)*(rmax.Y-rmin.Y)/(fine*fine) > 1<<20 {
		fine *= 2
	}
	if fine >= coarse {
		return sol, nil
	}
	refined := solveOnGrid(constraints, rmin, rmax, fine, opts)
	if refined.Region.IsEmpty() {
		return sol, nil
	}
	return refined, nil
}

// quantizeCellKm snaps a raw cell size to the nearest power-of-two
// multiple of the fine resolution (never below it). Solve grids then draw
// their cell sizes from a small shared set instead of a per-target
// continuum — the property the land-mask cache keys on.
func quantizeCellKm(raw, fine float64) float64 {
	if raw <= fine || fine <= 0 {
		return fine
	}
	k := math.Round(math.Log2(raw / fine))
	if k < 0 {
		k = 0
	}
	return fine * math.Exp2(k)
}

// constraintExtent returns the union bounding box of constraint regions.
func constraintExtent(cs []Constraint) (min, max geo.Vec2) {
	first := true
	for _, c := range cs {
		lo, hi, ok := c.Region.BoundingBox()
		if !ok {
			continue
		}
		if first {
			min, max, first = lo, hi, false
			continue
		}
		min.X = math.Min(min.X, lo.X)
		min.Y = math.Min(min.Y, lo.Y)
		max.X = math.Max(max.X, hi.X)
		max.Y = math.Max(max.Y, hi.Y)
	}
	return min, max
}

// solveOnGrid accumulates constraint weights on one grid and extracts the
// best level set exceeding the size threshold.
func solveOnGrid(constraints []Constraint, min, max geo.Vec2, cellKm float64, opts SolverOpts) *Solution {
	g := geo.NewGrid(min, max, cellKm)
	defer g.Release()
	// Batched fills: each constraint writes two difference entries per
	// span, and one prefix-sum pass resolves the whole overlay — the
	// hundred-odd disks mostly cover most of the grid, so per-cell adds
	// were the solver's dominant write cost.
	for _, c := range constraints {
		if c.Region.IsEmpty() {
			continue
		}
		switch c.Kind {
		case Positive:
			g.AddRegionBatched(c.Region, c.Weight)
		case Negative:
			g.AddRegionBatched(c.Region, -c.Weight)
		}
	}
	g.FlushAdds()
	const excluded = -math.MaxFloat64
	if len(opts.LandRegions) > 0 {
		// Hard mask: zero out everything outside land, resolving land
		// membership from the shared mask cache when one is available.
		if !opts.Masks.Apply(g, opts.LandRegions, excluded) {
			land := make([]bool, g.W*g.H)
			for _, lr := range opts.LandRegions {
				g.RasterizeRegionInto(lr, land)
			}
			for i := range g.Weight {
				if !land[i] {
					g.Weight[i] = excluded
				}
			}
		}
	}

	// Union weight levels in descending order until the size threshold.
	// LevelSets delivers every level's population in one census, replacing
	// the per-level AreaAtOrAbove rescans of the whole grid.
	levels, cells := g.LevelSets()
	if len(levels) == 0 {
		return &Solution{Region: geo.EmptyRegion(), CellKm: cellKm}
	}
	best := levels[0]
	if best <= 0 {
		return &Solution{Region: geo.EmptyRegion(), CellKm: cellKm}
	}
	level := best
	for i, l := range levels {
		if l <= 0 {
			break
		}
		level = l
		if float64(cells[i])*g.CellArea() >= opts.MinAreaKm2 {
			break
		}
	}
	region := g.Threshold(level)
	// Point estimate from the HIGHEST-weight cells only: the size
	// threshold grows the reported region (for containment guarantees)
	// without diluting the point estimate.
	var sw, sx, sy float64
	i := 0
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			w := g.Weight[i]
			i++
			if w < best {
				continue
			}
			c := g.CellCenter(x, y)
			sw += w
			sx += w * c.X
			sy += w * c.Y
		}
	}
	pt := region.Centroid()
	if sw > 0 {
		pt = geo.V2(sx/sw, sy/sw)
	}
	return &Solution{Region: region, Weight: best, Point: pt, CellKm: cellKm}
}

// solveExact maintains the exact arrangement of constraints as disjoint
// weighted cells. Worst-case exponential; intended for ≤ ~12 constraints
// and for cross-validation.
func solveExact(constraints []Constraint, opts SolverOpts) (*Solution, error) {
	type cell struct {
		region *geo.Region
		weight float64
	}
	min, max := constraintExtent(constraints)
	pad := math.Max(max.X-min.X, max.Y-min.Y)*0.05 + 10
	universe := geo.Rect(geo.V2(min.X-pad, min.Y-pad), geo.V2(max.X+pad, max.Y+pad))
	cells := []cell{{region: universe, weight: 0}}
	bopts := &geo.BoolOpts{}
	const maxCells = 4096
	for _, c := range constraints {
		if c.Region.IsEmpty() {
			continue
		}
		delta := c.Weight
		if c.Kind == Negative {
			delta = -c.Weight
		}
		var next []cell
		for _, cl := range cells {
			in := geo.Intersect(cl.region, c.Region, bopts)
			out := geo.Subtract(cl.region, c.Region, bopts)
			if !in.IsEmpty() {
				next = append(next, cell{in, cl.weight + delta})
			}
			if !out.IsEmpty() {
				next = append(next, cell{out, cl.weight})
			}
		}
		if len(next) > maxCells {
			return nil, fmt.Errorf("core: exact solver arrangement exploded (%d cells); use the raster engine", len(next))
		}
		cells = next
	}
	// Mask to land if requested.
	if len(opts.LandRegions) > 0 {
		land := geo.UnionAll(opts.LandRegions, bopts)
		var masked []cell
		for _, cl := range cells {
			in := geo.Intersect(cl.region, land, bopts)
			if !in.IsEmpty() {
				masked = append(masked, cell{in, cl.weight})
			}
		}
		cells = masked
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].weight > cells[j].weight })
	if len(cells) == 0 || cells[0].weight <= 0 {
		return &Solution{Region: geo.EmptyRegion()}, nil
	}
	var acc *geo.Region
	var area float64
	level := cells[0].weight
	for _, cl := range cells {
		if cl.weight <= 0 {
			break
		}
		if area >= opts.MinAreaKm2 && cl.weight < level {
			break
		}
		level = cl.weight
		if acc == nil {
			acc = cl.region.Clone()
		} else {
			acc = geo.Union(acc, cl.region, bopts)
		}
		area = acc.Area()
	}
	if acc == nil {
		acc = geo.EmptyRegion()
	}
	return &Solution{
		Region: acc,
		Weight: cells[0].weight,
		Point:  acc.Centroid(),
	}, nil
}
