package core

import (
	"math"
	"testing"

	"octant/internal/geo"
)

func disk(x, y, r float64) *geo.Region { return geo.Disk(geo.V2(x, y), r, 96) }

func TestSolveSingleConstraint(t *testing.T) {
	cons := []Constraint{{Kind: Positive, Region: disk(0, 0, 100), Weight: 1, Source: "a"}}
	sol, err := Solve(cons, SolverOpts{MinAreaKm2: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pi * 100 * 100
	if got := sol.Region.Area(); math.Abs(got-want) > want*0.05 {
		t.Errorf("area %v, want %v", got, want)
	}
	if sol.Point.Len() > 10 {
		t.Errorf("point %v should be near origin", sol.Point)
	}
	if sol.Weight != 1 {
		t.Errorf("weight %v", sol.Weight)
	}
}

func TestSolveIntersection(t *testing.T) {
	cons := []Constraint{
		{Kind: Positive, Region: disk(0, 0, 100), Weight: 1, Source: "a"},
		{Kind: Positive, Region: disk(150, 0, 100), Weight: 1, Source: "b"},
	}
	sol, err := Solve(cons, SolverOpts{MinAreaKm2: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Best cells are the lens around (75, 0).
	if math.Abs(sol.Point.X-75) > 10 || math.Abs(sol.Point.Y) > 10 {
		t.Errorf("point %v, want ≈ (75, 0)", sol.Point)
	}
	if sol.Weight != 2 {
		t.Errorf("weight %v, want 2", sol.Weight)
	}
	// Region contains lens points, not disk-a-only points... the region
	// may be grown past the lens by the size threshold, but the lens
	// itself must be in it.
	if !sol.Region.Contains(geo.V2(75, 0)) {
		t.Error("lens centre missing from region")
	}
}

func TestSolveNegativeConstraint(t *testing.T) {
	cons := []Constraint{
		{Kind: Positive, Region: disk(0, 0, 100), Weight: 1, Source: "a"},
		{Kind: Negative, Region: disk(0, 0, 30), Weight: 1, Source: "a/neg"},
	}
	sol, err := Solve(cons, SolverOpts{MinAreaKm2: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Region.Contains(geo.V2(0, 0)) {
		t.Error("negative constraint centre should be excluded")
	}
	if !sol.Region.Contains(geo.V2(60, 0)) {
		t.Error("annulus should be included")
	}
}

func TestSolveWeightedConflict(t *testing.T) {
	// Two disjoint high-weight clusters; one heavier. The solver must
	// pick the heavier, not fail (the §2.4 robustness argument).
	cons := []Constraint{
		{Kind: Positive, Region: disk(0, 0, 50), Weight: 1, Source: "a"},
		{Kind: Positive, Region: disk(0, 0, 50), Weight: 1, Source: "b"},
		{Kind: Positive, Region: disk(0, 0, 50), Weight: 1, Source: "c"},
		{Kind: Positive, Region: disk(500, 0, 50), Weight: 1, Source: "liar1"},
		{Kind: Positive, Region: disk(500, 0, 50), Weight: 0.5, Source: "liar2"},
	}
	sol, err := Solve(cons, SolverOpts{MinAreaKm2: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Point.Dist(geo.V2(0, 0)) > 20 {
		t.Errorf("point %v should be at the 3-vote cluster", sol.Point)
	}
	if sol.Weight != 3 {
		t.Errorf("weight %v, want 3", sol.Weight)
	}
}

func TestSolveSizeThresholdGrowsRegion(t *testing.T) {
	cons := []Constraint{
		{Kind: Positive, Region: disk(0, 0, 200), Weight: 1, Source: "a"},
		{Kind: Positive, Region: disk(0, 0, 20), Weight: 1, Source: "b"},
	}
	small, _ := Solve(cons, SolverOpts{MinAreaKm2: 100})
	big, _ := Solve(cons, SolverOpts{MinAreaKm2: 50000})
	if big.Region.Area() <= small.Region.Area() {
		t.Errorf("size threshold should grow region: %v vs %v", big.Region.Area(), small.Region.Area())
	}
	// Point estimate must not degrade with a bigger region (it comes
	// from top-weight cells in both cases).
	if small.Point.Len() > 10 || big.Point.Len() > 10 {
		t.Errorf("points drifted: %v %v", small.Point, big.Point)
	}
}

func TestSolveLandMask(t *testing.T) {
	land := geo.Rect(geo.V2(-30, -30), geo.V2(30, 30))
	cons := []Constraint{
		{Kind: Positive, Region: disk(50, 0, 60), Weight: 1, Source: "a"},
	}
	sol, err := Solve(cons, SolverOpts{MinAreaKm2: 10, LandRegions: []*geo.Region{land}})
	if err != nil {
		t.Fatal(err)
	}
	// Only the overlap of the disk with land survives.
	if sol.Region.Contains(geo.V2(50, 0)) {
		t.Error("off-land cells should be masked")
	}
	if !sol.Region.Contains(geo.V2(20, 0)) {
		t.Error("on-land disk cells should remain")
	}
}

func TestSolveNoPositive(t *testing.T) {
	if _, err := Solve(nil, SolverOpts{}); err == nil {
		t.Error("no constraints should error")
	}
	cons := []Constraint{{Kind: Negative, Region: disk(0, 0, 10), Weight: 1}}
	if _, err := Solve(cons, SolverOpts{}); err == nil {
		t.Error("negative-only should error")
	}
}

func TestSolveExactMatchesRaster(t *testing.T) {
	cons := []Constraint{
		{Kind: Positive, Region: disk(0, 0, 100), Weight: 1, Source: "a"},
		{Kind: Positive, Region: disk(120, 0, 100), Weight: 1, Source: "b"},
		{Kind: Negative, Region: disk(60, 0, 25), Weight: 0.5, Source: "n"},
	}
	raster, err := Solve(cons, SolverOpts{MinAreaKm2: 200})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Solve(cons, SolverOpts{MinAreaKm2: 200, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same top weight and nearby point estimates.
	if math.Abs(raster.Weight-exact.Weight) > 1e-9 {
		t.Errorf("weights differ: %v vs %v", raster.Weight, exact.Weight)
	}
	if raster.Point.Dist(exact.Point) > 30 {
		t.Errorf("points differ: %v vs %v", raster.Point, exact.Point)
	}
	rel := math.Abs(raster.Region.Area()-exact.Region.Area()) / exact.Region.Area()
	if rel > 0.25 {
		t.Errorf("areas differ %.0f%%: %v vs %v", rel*100, raster.Region.Area(), exact.Region.Area())
	}
}

func TestConstraintBuilders(t *testing.T) {
	pr := geo.NewProjection(geo.Pt(40, -90))
	c := PositiveDisk(pr, geo.Pt(40, -90), 100, 0.7, "lm")
	if c.Kind != Positive || c.Weight != 0.7 {
		t.Errorf("PositiveDisk = %+v", c)
	}
	want := math.Pi * 100 * 100
	if got := c.Region.Area(); math.Abs(got-want) > want*0.02 {
		t.Errorf("disk area %v", got)
	}
	n := NegativeDisk(pr, geo.Pt(40, -90), 50, 0.7, "lm")
	if n.Kind != Negative {
		t.Error("NegativeDisk kind")
	}
	anns := AnnulusConstraints(pr, geo.Pt(40, -90), 50, 100, 1, "lm")
	if len(anns) != 2 || anns[0].Kind != Positive || anns[1].Kind != Negative {
		t.Errorf("AnnulusConstraints = %v", anns)
	}
	if got := AnnulusConstraints(pr, geo.Pt(40, -90), 120, 100, 1, "lm"); len(got) != 1 {
		t.Errorf("inverted annulus should yield positive only, got %v", got)
	}
}

func TestSecondaryLandmarkConstraints(t *testing.T) {
	beta := disk(0, 0, 50) // secondary landmark region
	pos := PositiveFromRegion(beta, 100, 1, "sec")
	// Dilation: all points within 100 of any point in beta → disk radius 150.
	want := math.Pi * 150 * 150
	if got := pos.Region.Area(); math.Abs(got-want) > want*0.08 {
		t.Errorf("dilated area %v, want ≈ %v", got, want)
	}
	neg := NegativeFromRegion(beta, 100, 1, "sec")
	// Intersection of 100-disks at all hull points of a 50-disk: points
	// within 100 of EVERY point of beta → disk of radius 50 around centre.
	wantN := math.Pi * 50 * 50
	if got := neg.Region.Area(); math.Abs(got-wantN) > wantN*0.15 {
		t.Errorf("erosion-style area %v, want ≈ %v", got, wantN)
	}
	if !neg.Region.Contains(geo.V2(0, 0)) {
		t.Error("negative region should contain beta's centre")
	}
	// Radius smaller than beta's extent ⇒ empty intersection.
	negEmpty := NegativeFromRegion(beta, 20, 1, "sec")
	if !negEmpty.Region.IsEmpty() {
		t.Errorf("r < region extent should give empty exclusion, got %v", negEmpty.Region.Area())
	}
	if got := PositiveFromRegion(geo.EmptyRegion(), 100, 1, "x"); !got.Region.IsEmpty() {
		t.Error("empty beta should stay empty")
	}
}

func TestLatencyWeight(t *testing.T) {
	if w := LatencyWeight(0, 30); w != 1 {
		t.Errorf("weight at 0 = %v", w)
	}
	if w := LatencyWeight(30, 30); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("weight at half-life = %v", w)
	}
	if w := LatencyWeight(60, 30); math.Abs(w-0.25) > 1e-12 {
		t.Errorf("weight at 2×half-life = %v", w)
	}
	if w := LatencyWeight(10, 0); w != 1 {
		t.Errorf("zero half-life should disable weighting, got %v", w)
	}
	if w := LatencyWeight(-5, 30); w != 1 {
		t.Errorf("negative rtt clamps, got %v", w)
	}
	// Monotone decreasing.
	prev := 2.0
	for rtt := 0.0; rtt < 300; rtt += 10 {
		w := LatencyWeight(rtt, 30)
		if w > prev {
			t.Fatalf("weight not decreasing at %v", rtt)
		}
		prev = w
	}
}

func TestOnLand(t *testing.T) {
	onLand := []geo.Point{
		geo.Pt(42.44, -76.50),  // Ithaca
		geo.Pt(39.74, -104.99), // Denver
		geo.Pt(48.85, 2.35),    // Paris
		geo.Pt(51.51, -0.13),   // London
	}
	for _, p := range onLand {
		if !OnLand(p) {
			t.Errorf("%v should be on land", p)
		}
	}
	offLand := []geo.Point{
		geo.Pt(40, -40), // mid-Atlantic
		geo.Pt(30, -60), // Sargasso Sea
		geo.Pt(0, 0),    // Gulf of Guinea
	}
	for _, p := range offLand {
		if OnLand(p) {
			t.Errorf("%v should be ocean", p)
		}
	}
}
