package hull

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestConvexSquarePlusInterior(t *testing.T) {
	pts := []P{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {5, 5}, {3, 7}, {2, 2}}
	h := Convex(pts)
	if len(h) != 4 {
		t.Fatalf("hull size %d, want 4: %v", len(h), h)
	}
	for _, p := range []P{{5, 5}, {3, 7}} {
		for _, hp := range h {
			if hp == p {
				t.Errorf("interior point %v on hull", p)
			}
		}
	}
}

func TestConvexDegenerate(t *testing.T) {
	if h := Convex(nil); h != nil {
		t.Error("empty input should give nil")
	}
	if h := Convex([]P{{1, 1}}); len(h) != 1 {
		t.Errorf("single point hull = %v", h)
	}
	if h := Convex([]P{{1, 1}, {1, 1}, {1, 1}}); len(h) != 1 {
		t.Errorf("duplicate points hull = %v", h)
	}
	// Collinear points: hull is the two extremes.
	if h := Convex([]P{{0, 0}, {1, 1}, {2, 2}, {3, 3}}); len(h) != 2 {
		t.Errorf("collinear hull = %v", h)
	}
}

func TestUpperLowerFacets(t *testing.T) {
	// V-shaped scatter.
	pts := []P{{0, 5}, {1, 2}, {2, 0}, {3, 2}, {4, 5}, {2, 3}}
	up := UpperFacets(pts)
	lo := LowerFacets(pts)
	// Upper chain from (0,5) to (4,5) stays at the top.
	if up[0] != (P{0, 5}) || up[len(up)-1] != (P{4, 5}) {
		t.Errorf("upper facets = %v", up)
	}
	// Lower chain passes through the minimum.
	foundMin := false
	for _, p := range lo {
		if p == (P{2, 0}) {
			foundMin = true
		}
	}
	if !foundMin {
		t.Errorf("lower facets %v missing the minimum", lo)
	}
	// Every point lies between the chains.
	for _, p := range pts {
		if Chain(up).Eval(p.X) < p.Y-1e-9 {
			t.Errorf("point %v above upper chain", p)
		}
		if Chain(lo).Eval(p.X) > p.Y+1e-9 {
			t.Errorf("point %v below lower chain", p)
		}
	}
}

// Property: upper chain dominates all points; lower chain is dominated.
func TestFacetsBoundScatter(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := 5 + rng.IntN(100)
		pts := make([]P, n)
		for i := range pts {
			pts[i] = P{X: rng.Float64() * 100, Y: rng.Float64() * 4000}
		}
		up := Chain(UpperFacets(pts))
		lo := Chain(LowerFacets(pts))
		for _, p := range pts {
			if up.Eval(p.X) < p.Y-1e-6 || lo.Eval(p.X) > p.Y+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: hull contains all input points (winding test via sign of cross
// products along CCW hull).
func TestHullContainsAllPoints(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		n := 10 + rng.IntN(80)
		pts := make([]P, n)
		for i := range pts {
			pts[i] = P{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		}
		h := Convex(pts)
		if len(h) < 3 {
			return true
		}
		for _, p := range pts {
			for i := range h {
				a, b := h[i], h[(i+1)%len(h)]
				if cross(a, b, p) < -1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChainEval(t *testing.T) {
	c := Chain{{0, 0}, {10, 10}, {20, 0}}
	cases := map[float64]float64{0: 0, 5: 5, 10: 10, 15: 5, 20: 0, 25: -5, -5: -5}
	for x, want := range cases {
		if got := c.Eval(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", x, got, want)
		}
	}
	if !math.IsNaN(Chain{}.Eval(1)) {
		t.Error("empty chain should eval NaN")
	}
	if got := (Chain{{5, 7}}).Eval(99); got != 7 {
		t.Errorf("single-point chain = %v, want 7", got)
	}
}

func TestChainTruncateRight(t *testing.T) {
	c := Chain{{0, 0}, {10, 10}, {20, 0}, {30, 5}}
	tr := c.TruncateRight(15)
	if len(tr) != 2 || tr[1] != (P{10, 10}) {
		t.Errorf("TruncateRight = %v", tr)
	}
	if got := c.TruncateRight(-1); len(got) != 1 || got[0] != c[0] {
		t.Errorf("TruncateRight below range = %v", got)
	}
	if got := (Chain{}).TruncateRight(5); got != nil {
		t.Errorf("empty chain truncate = %v", got)
	}
}
