// Package hull computes planar convex hulls and their upper/lower facets.
// Octant's calibration step (§2.1 of the paper) builds, per landmark, the
// convex hull of the (latency, distance) scatter of its peers; the upper
// facet chain becomes the positive-constraint bound R_L(d) and the lower
// facet chain the negative-constraint bound r_L(d).
package hull

import (
	"math"
	"sort"
)

// P is a 2-D point (x is typically latency in ms, y distance in km).
type P struct {
	X, Y float64
}

// cross returns the z of (b−a) × (c−a).
func cross(a, b, c P) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Convex returns the convex hull of pts in counter-clockwise order using
// Andrew's monotone chain. Collinear boundary points are dropped. Inputs of
// fewer than 3 distinct points return the distinct points sorted by (x, y).
func Convex(pts []P) []P {
	n := len(pts)
	if n == 0 {
		return nil
	}
	sorted := append([]P(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Dedupe.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return uniq
	}
	lower := make([]P, 0, len(uniq))
	for _, p := range uniq {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	upper := make([]P, 0, len(uniq))
	for i := len(uniq) - 1; i >= 0; i-- {
		p := uniq[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	return append(lower[:len(lower)-1], upper[:len(upper)-1]...)
}

// UpperFacets returns the upper hull chain of pts from the leftmost to the
// rightmost point, sorted by increasing x. Evaluated as a function of x it
// is the tightest concave upper bound on the scatter.
func UpperFacets(pts []P) []P {
	return monotoneChain(pts, true)
}

// LowerFacets returns the lower hull chain of pts from leftmost to
// rightmost, sorted by increasing x: the tightest convex lower bound.
func LowerFacets(pts []P) []P {
	return monotoneChain(pts, false)
}

func monotoneChain(pts []P, upper bool) []P {
	n := len(pts)
	if n == 0 {
		return nil
	}
	sorted := append([]P(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		if upper {
			return sorted[i].Y < sorted[j].Y
		}
		return sorted[i].Y > sorted[j].Y
	})
	// For equal x keep the extreme y only.
	uniq := sorted[:0:0]
	for _, p := range sorted {
		if len(uniq) > 0 && uniq[len(uniq)-1].X == p.X {
			uniq[len(uniq)-1] = p // later sorts to the extreme for this x
			continue
		}
		uniq = append(uniq, p)
	}
	if len(uniq) < 3 {
		return uniq
	}
	chain := make([]P, 0, len(uniq))
	for _, p := range uniq {
		for len(chain) >= 2 {
			c := cross(chain[len(chain)-2], chain[len(chain)-1], p)
			if (upper && c >= 0) || (!upper && c <= 0) {
				chain = chain[:len(chain)-1]
				continue
			}
			break
		}
		chain = append(chain, p)
	}
	return chain
}

// Chain is a piecewise-linear function defined by hull facet vertices with
// strictly increasing x. Outside the vertex range it extends with the
// nearest segment's slope unless overridden by the caller.
type Chain []P

// Eval evaluates the chain at x by linear interpolation. Beyond the ends it
// extrapolates along the terminal segments (a single-point chain is
// constant).
func (c Chain) Eval(x float64) float64 {
	n := len(c)
	switch n {
	case 0:
		return math.NaN()
	case 1:
		return c[0].Y
	}
	if x <= c[0].X {
		return extrapolate(c[0], c[1], x)
	}
	if x >= c[n-1].X {
		return extrapolate(c[n-2], c[n-1], x)
	}
	i := sort.Search(n, func(i int) bool { return c[i].X >= x })
	if c[i].X == x {
		return c[i].Y
	}
	return extrapolate(c[i-1], c[i], x)
}

func extrapolate(a, b P, x float64) float64 {
	if b.X == a.X {
		return (a.Y + b.Y) / 2
	}
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}

// TruncateRight returns the sub-chain with x ≤ cutoff, always keeping at
// least one vertex (the leftmost).
func (c Chain) TruncateRight(cutoff float64) Chain {
	if len(c) == 0 {
		return nil
	}
	out := Chain{}
	for _, p := range c {
		if p.X <= cutoff {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = Chain{c[0]}
	}
	return out
}
