// Package baselines reimplements the three prior-work geolocalization
// techniques the paper compares against in §3: GeoLim (Constraint-Based
// Geolocation, Gueye et al. IMC'04), and GeoPing / GeoTrack (IP2Geo,
// Padmanabhan & Subramanian SIGCOMM'01). All three consume the same
// measurement survey as Octant, so comparisons are apples-to-apples.
package baselines

import (
	"fmt"
	"math"

	"octant/internal/core"
	"octant/internal/geo"
	"octant/internal/linalg"
	"octant/internal/probe"
)

// GeoLim implements constraint-based geolocation: each landmark converts
// its RTT to the target into a distance upper bound via a per-landmark
// "bestline" (the line above all calibration points that minimizes total
// overestimation), and the target region is the intersection of the
// resulting disks.
type GeoLim struct {
	Survey *core.Survey
	// bestlines[i] = (slope km/ms, intercept km) for landmark i.
	bestlines [][2]float64
}

// NewGeoLim fits bestlines for every landmark in the survey.
func NewGeoLim(s *core.Survey) *GeoLim {
	g := &GeoLim{Survey: s, bestlines: make([][2]float64, s.N())}
	for i := 0; i < s.N(); i++ {
		g.bestlines[i] = fitBestline(s, i)
	}
	return g
}

// fitBestline finds (m, b) minimizing Σ_j (m·d_j + b − g_j) subject to
// m·d_j + b ≥ g_j for all peers j and m > 0. The optimum passes through
// two calibration points (an LP vertex), so candidate lines are point
// pairs; O(n²) pairs with O(n) feasibility checks.
func fitBestline(s *core.Survey, i int) [2]float64 {
	type pt struct{ d, g float64 }
	var pts []pt
	for j := 0; j < s.N(); j++ {
		if j == i {
			continue
		}
		pts = append(pts, pt{s.RTT[i][j], s.Landmarks[i].Loc.DistanceKm(s.Landmarks[j].Loc)})
	}
	bestM, bestB := 0.0, 0.0
	bestCost := math.Inf(1)
	feasible := func(m, b float64) (float64, bool) {
		if m <= 0 {
			return 0, false
		}
		var cost float64
		for _, p := range pts {
			diff := m*p.d + b - p.g
			if diff < -1e-6 {
				return 0, false
			}
			cost += diff
		}
		return cost, true
	}
	for a := 0; a < len(pts); a++ {
		for b := a + 1; b < len(pts); b++ {
			if pts[a].d == pts[b].d {
				continue
			}
			m := (pts[b].g - pts[a].g) / (pts[b].d - pts[a].d)
			c := pts[a].g - m*pts[a].d
			if cost, ok := feasible(m, c); ok && cost < bestCost {
				bestCost, bestM, bestB = cost, m, c
			}
		}
	}
	if math.IsInf(bestCost, 1) {
		// Degenerate calibration: fall back to the through-origin line
		// dominating all points (slope = max g/d).
		m := 0.0
		for _, p := range pts {
			if p.d > 0 && p.g/p.d > m {
				m = p.g / p.d
			}
		}
		if m == 0 {
			m = geo.FiberSpeedKmPerMs / 2 // physical fallback
		}
		return [2]float64{m, 0}
	}
	return [2]float64{bestM, bestB}
}

// Bound returns landmark i's distance upper bound for an RTT.
func (g *GeoLim) Bound(i int, rttMs float64) float64 {
	m, b := g.bestlines[i][0], g.bestlines[i][1]
	est := m*rttMs + b
	// Physically cap at the speed-of-light distance.
	if sol := geo.LatencyToMaxDistanceKm(rttMs); est > sol {
		est = sol
	}
	if est < 0 {
		est = 0
	}
	return est
}

// GeoLimResult is a constraint-based geolocation outcome.
type GeoLimResult struct {
	Target     string
	Point      geo.Point
	Region     *geo.Region // empty when the disks over-constrain
	Projection *geo.Projection
	AreaKm2    float64
}

// ContainsTruth reports whether the truth is inside the estimated region.
func (r *GeoLimResult) ContainsTruth(truth geo.Point) bool {
	if r.Region.IsEmpty() {
		return false
	}
	return r.Region.Contains(r.Projection.Forward(truth))
}

// Localize runs constraint-based geolocation on a target.
func (g *GeoLim) Localize(p probe.Prober, targetAddr string, probes int) (*GeoLimResult, error) {
	if probes <= 0 {
		probes = 10
	}
	s := g.Survey
	pr := geo.NewProjection(s.Centroid())
	rtts := make([]float64, s.N())
	for i, lm := range s.Landmarks {
		samples, err := p.Ping(lm.Addr, targetAddr, probes)
		if err != nil {
			return nil, fmt.Errorf("baselines: geolim ping %s→%s: %w", lm.Name, targetAddr, err)
		}
		min, err := probe.MinRTT(samples)
		if err != nil {
			return nil, err
		}
		rtts[i] = min
	}
	// Intersect the disks in increasing-radius order (tightest first, so
	// over-constraint shows up early).
	type diskSpec struct {
		center geo.Point
		radius float64
	}
	disks := make([]diskSpec, s.N())
	for i, lm := range s.Landmarks {
		disks[i] = diskSpec{lm.Loc, g.Bound(i, rtts[i])}
	}
	region := geo.RegionFromRing(pr.GeoCircle(disks[0].center, math.Max(disks[0].radius, 1), 96))
	for _, d := range disks[1:] {
		next := geo.RegionFromRing(pr.GeoCircle(d.center, math.Max(d.radius, 1), 96))
		region = geo.Intersect(region, next, nil)
		if region.IsEmpty() {
			break
		}
	}
	res := &GeoLimResult{Target: targetAddr, Region: region, Projection: pr, AreaKm2: region.Area()}
	if !region.IsEmpty() {
		res.Point = pr.Inverse(region.Centroid())
		return res, nil
	}
	// Over-constrained: report the point minimizing the maximum bound
	// violation (the natural point estimate when the intersection is
	// empty), with an empty region.
	obj := func(v []float64) float64 {
		pt := geo.Pt(clamp(v[0], -89, 89), wrapLon(v[1]))
		worst := math.Inf(-1)
		for i, lm := range s.Landmarks {
			viol := lm.Loc.DistanceKm(pt) - g.Bound(i, rtts[i])
			if viol > worst {
				worst = viol
			}
		}
		return worst
	}
	c := s.Centroid()
	best, _ := linalg.NelderMead(obj, []float64{c.Lat, c.Lon}, &linalg.NelderMeadOpts{MaxIter: 1500, Step: 3})
	res.Point = geo.Pt(clamp(best[0], -89, 89), wrapLon(best[1]))
	return res, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func wrapLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon <= -180 {
		lon += 360
	}
	return lon
}
