package baselines

import (
	"fmt"
	"math"

	"octant/internal/core"
	"octant/internal/geo"
	"octant/internal/probe"
)

// GeoPing (IP2Geo) maps the target to the landmark whose network signature
// — its vector of latencies to the probing landmarks — most resembles the
// target's, then reports that landmark's location. The similarity metric
// is the RMS difference between latency vectors (the "closest latency
// characteristics" metric of §4 / RADAR).
type GeoPing struct {
	Survey *core.Survey
}

// NewGeoPing wraps a survey.
func NewGeoPing(s *core.Survey) *GeoPing { return &GeoPing{Survey: s} }

// GeoPingResult is a GeoPing outcome.
type GeoPingResult struct {
	Target string
	Point  geo.Point
	// BestLandmark is the index of the matched landmark in the survey.
	BestLandmark int
	// Score is the RMS signature distance to the matched landmark (ms).
	Score float64
}

// Localize maps targetAddr onto the most latency-similar landmark.
func (g *GeoPing) Localize(p probe.Prober, targetAddr string, probes int) (*GeoPingResult, error) {
	if probes <= 0 {
		probes = 10
	}
	s := g.Survey
	n := s.N()
	sig := make([]float64, n)
	for i, lm := range s.Landmarks {
		samples, err := p.Ping(lm.Addr, targetAddr, probes)
		if err != nil {
			return nil, fmt.Errorf("baselines: geoping %s→%s: %w", lm.Name, targetAddr, err)
		}
		min, err := probe.MinRTT(samples)
		if err != nil {
			return nil, err
		}
		sig[i] = min
	}
	best := -1
	bestScore := math.Inf(1)
	for cand := 0; cand < n; cand++ {
		// Compare the target's signature with candidate cand's own
		// latency vector over all *other* landmarks (a landmark's
		// latency to itself is zero and would bias the metric). Vectors
		// are mean-centred first so that per-host constant delay (access
		// height) does not swamp the geographic signal — two co-located
		// hosts with different last-mile delays still match.
		var sumT, sumC float64
		m := 0
		for i := 0; i < n; i++ {
			if i == cand {
				continue
			}
			sumT += sig[i]
			sumC += s.RTT[cand][i]
			m++
		}
		if m == 0 {
			continue
		}
		meanT, meanC := sumT/float64(m), sumC/float64(m)
		var ss float64
		for i := 0; i < n; i++ {
			if i == cand {
				continue
			}
			d := (sig[i] - meanT) - (s.RTT[cand][i] - meanC)
			ss += d * d
		}
		score := math.Sqrt(ss / float64(m))
		if score < bestScore {
			bestScore, best = score, cand
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("baselines: geoping found no candidate landmark")
	}
	return &GeoPingResult{
		Target:       targetAddr,
		Point:        s.Landmarks[best].Loc,
		BestLandmark: best,
		Score:        bestScore,
	}, nil
}
