package baselines

import (
	"math"
	"testing"

	"octant/internal/core"
	"octant/internal/geo"
	"octant/internal/netsim"
	"octant/internal/probe"
)

func testSetup(t *testing.T, targetIdx int) (*probe.SimProber, *core.Survey, *netsim.Node) {
	t.Helper()
	w := netsim.NewWorld(netsim.Config{Seed: 11})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	var lms []core.Landmark
	for i, h := range hosts {
		if i == targetIdx {
			continue
		}
		lms = append(lms, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	s, err := core.NewSurvey(p, lms, core.SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	return p, s, hosts[targetIdx]
}

func TestGeoLimBestlinesValid(t *testing.T) {
	_, s, _ := testSetup(t, 0)
	gl := NewGeoLim(s)
	// Every bestline must dominate its calibration points: the bound for
	// the observed RTT to a peer must be ≥ the true distance.
	for i := 0; i < s.N(); i++ {
		for j := 0; j < s.N(); j++ {
			if i == j {
				continue
			}
			d := s.Landmarks[i].Loc.DistanceKm(s.Landmarks[j].Loc)
			bound := gl.Bound(i, s.RTT[i][j])
			if bound < d-1e-3 && bound < geo.LatencyToMaxDistanceKm(s.RTT[i][j])-1e-3 {
				t.Errorf("bestline %d underestimates peer %d: bound %.1f < dist %.1f", i, j, bound, d)
			}
		}
	}
	// Bounds are physical.
	for i := 0; i < s.N(); i++ {
		for _, rtt := range []float64{1, 10, 50, 200} {
			b := gl.Bound(i, rtt)
			if b < 0 || b > geo.LatencyToMaxDistanceKm(rtt)+1e-9 {
				t.Errorf("bound(%d, %v) = %v breaks physics", i, rtt, b)
			}
		}
	}
}

func TestGeoLimLocalize(t *testing.T) {
	p, s, target := testSetup(t, 20)
	gl := NewGeoLim(s)
	res, err := gl.Localize(p, target.Name, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Point.DistanceMiles(target.Loc); e > 1200 {
		t.Errorf("GeoLim error %.0f mi absurd", e)
	}
	// A non-empty region must contain its own centroid-ish point.
	if !res.Region.IsEmpty() {
		if res.AreaKm2 <= 0 {
			t.Error("inconsistent area")
		}
	}
	if _, err := gl.Localize(p, "bogus.example.org", 3); err == nil {
		t.Error("unknown target should error")
	}
}

func TestGeoLimOverconstraintFallback(t *testing.T) {
	// Force over-constraint: bound everything to near zero by lying
	// about bestlines via a survey subset with absurd probes... instead,
	// call the violation minimizer path directly by shrinking disks:
	// craft a survey of 3 distant landmarks and a target far from all.
	p, s, target := testSetup(t, 5)
	sub, err := s.Subset([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	gl := NewGeoLim(sub)
	res, err := gl.Localize(p, target.Name, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Point.Valid() {
		t.Errorf("fallback point invalid: %v", res.Point)
	}
}

func TestGeoPingPicksNearbyLandmark(t *testing.T) {
	p, s, target := testSetup(t, 30)
	gp := NewGeoPing(s)
	res, err := gp.Localize(p, target.Name, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestLandmark < 0 || res.BestLandmark >= s.N() {
		t.Fatalf("bad landmark index %d", res.BestLandmark)
	}
	if res.Point != s.Landmarks[res.BestLandmark].Loc {
		t.Error("point must be the matched landmark's location")
	}
	// GeoPing's error is bounded by the worst nearest-landmark distance
	// only heuristically; sanity-bound it loosely.
	if e := res.Point.DistanceMiles(target.Loc); e > 1500 {
		t.Errorf("GeoPing error %.0f mi absurd", e)
	}
	if res.Score < 0 {
		t.Errorf("negative score %v", res.Score)
	}
}

func TestGeoTrackResolvesRouter(t *testing.T) {
	p, s, target := testSetup(t, 40)
	gt := NewGeoTrack(s)
	res, err := gt.Localize(p, target.Name, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Point.Valid() {
		t.Fatalf("invalid point %v", res.Point)
	}
	if res.Hops < 2 {
		t.Errorf("implausible hop count %d", res.Hops)
	}
	if e := res.Point.DistanceMiles(target.Loc); e > 1500 {
		t.Errorf("GeoTrack error %.0f mi absurd", e)
	}
}

func TestBaselinesComparableOnSameTarget(t *testing.T) {
	// All three baselines run on the same survey/target without error
	// and produce finite errors.
	p, s, target := testSetup(t, 15)
	var errs []float64
	gl, errGL := NewGeoLim(s).Localize(p, target.Name, 10)
	gp, errGP := NewGeoPing(s).Localize(p, target.Name, 10)
	gt, errGT := NewGeoTrack(s).Localize(p, target.Name, 10)
	if errGL != nil || errGP != nil || errGT != nil {
		t.Fatal(errGL, errGP, errGT)
	}
	for _, pt := range []geo.Point{gl.Point, gp.Point, gt.Point} {
		e := pt.DistanceMiles(target.Loc)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Errorf("non-finite error")
		}
		errs = append(errs, e)
	}
	_ = errs
}
