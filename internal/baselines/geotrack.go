package baselines

import (
	"fmt"

	"octant/internal/core"
	"octant/internal/geo"
	"octant/internal/probe"
	"octant/internal/undns"
)

// GeoTrack (IP2Geo) traceroutes to the target, extracts geographic hints
// from router DNS names, and localizes the target at the last router on
// the path whose position is known.
type GeoTrack struct {
	Survey   *core.Survey
	Resolver *undns.Resolver
}

// NewGeoTrack wraps a survey with the default undns resolver.
func NewGeoTrack(s *core.Survey) *GeoTrack {
	return &GeoTrack{Survey: s, Resolver: undns.NewResolver()}
}

// GeoTrackResult is a GeoTrack outcome.
type GeoTrackResult struct {
	Target string
	Point  geo.Point
	// RouterName is the DNS name of the last resolvable router.
	RouterName string
	// City is the undns city the estimate comes from.
	City string
	// Hops is the traceroute length used.
	Hops int
}

// Localize traceroutes from the lowest-latency landmark to the target and
// returns the last resolvable router's city as the estimate.
func (g *GeoTrack) Localize(p probe.Prober, targetAddr string, probes int) (*GeoTrackResult, error) {
	if probes <= 0 {
		probes = 10
	}
	s := g.Survey
	// Pick the landmark closest to the target by latency: its traceroute
	// shares the most suffix with the target's location.
	bestIdx := -1
	bestRTT := 0.0
	for i, lm := range s.Landmarks {
		samples, err := p.Ping(lm.Addr, targetAddr, probes)
		if err != nil {
			return nil, fmt.Errorf("baselines: geotrack ping %s→%s: %w", lm.Name, targetAddr, err)
		}
		min, err := probe.MinRTT(samples)
		if err != nil {
			return nil, err
		}
		if bestIdx < 0 || min < bestRTT {
			bestIdx, bestRTT = i, min
		}
	}
	hops, err := p.Traceroute(s.Landmarks[bestIdx].Addr, targetAddr)
	if err != nil {
		return nil, fmt.Errorf("baselines: geotrack traceroute: %w", err)
	}
	if len(hops) == 0 {
		return nil, fmt.Errorf("baselines: geotrack got an empty traceroute to %s", targetAddr)
	}
	var out *GeoTrackResult
	for _, h := range hops[:max(len(hops)-1, 0)] { // exclude the target itself
		if loc, ok := g.Resolver.Resolve(h.Name); ok {
			out = &GeoTrackResult{
				Target:     targetAddr,
				Point:      loc.Loc,
				RouterName: h.Name,
				City:       loc.City,
				Hops:       len(hops),
			}
		}
	}
	if out == nil {
		// No resolvable router: fall back to the probing landmark's own
		// location (the technique's weakest case).
		out = &GeoTrackResult{
			Target: targetAddr,
			Point:  s.Landmarks[bestIdx].Loc,
			City:   "",
			Hops:   len(hops),
		}
	}
	return out, nil
}
