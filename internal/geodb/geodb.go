// Package geodb defines the pluggable passive-geolocation provider
// interface and the stock providers: a static file-backed table, a
// multi-provider composite with per-provider weights and staleness decay,
// and an LRU lookup cache.
//
// Passive databases are §2.5 exogenous evidence, not answers: the
// Longitudinal Geo-DB literature shows commercial tables drift as
// addresses are reassigned, so every record carries an AsOf date, the
// composite decays a record's weight (and inflates its radius) with age,
// and the core pipeline cross-validates each database disk against the
// speed-of-light bound from measured RTTs before applying it.
package geodb

import (
	"container/list"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"octant/internal/geo"
)

// Record is one provider's claim about an address.
type Record struct {
	// Loc is the claimed position.
	Loc geo.Point
	// RadiusKm is the provider's stated precision: the claim is "within
	// RadiusKm of Loc". Zero means the provider did not state one and the
	// consumer should apply its own default.
	RadiusKm float64
	// AsOf dates the record (when the provider last verified it). The
	// zero time means undated; staleness decay treats undated records as
	// fresh.
	AsOf time.Time
	// Source names where the record came from, for provenance labels.
	Source string
}

// Provider is a passive geolocation database.
//
// Implementations must be safe for concurrent use: the core pipeline
// calls Lookup from many localizations at once.
type Provider interface {
	// Name identifies the provider (cache keys, options fingerprints,
	// provenance).
	Name() string
	// Lookup returns the provider's record for an address, ok=false when
	// it has none.
	Lookup(addr string) (Record, bool)
}

// Weighted is a Provider that also prices its own confidence. The core
// pipeline uses the returned weight (when > 0) in place of its configured
// default; the Composite implements it to express per-provider trust and
// staleness decay.
type Weighted interface {
	Provider
	// LookupWeighted is Lookup plus a confidence weight in (0, 1]. A zero
	// weight means "use your default".
	LookupWeighted(addr string) (Record, float64, bool)
}

// Static is an in-memory address→record table, the file-backed provider.
type Static struct {
	name string
	recs map[string]Record
}

// NewStatic builds an empty static provider.
func NewStatic(name string) *Static {
	return &Static{name: name, recs: make(map[string]Record)}
}

// Add registers (or replaces) the record for an address.
func (s *Static) Add(addr string, rec Record) { s.recs[addr] = rec }

// Len reports how many addresses the table covers.
func (s *Static) Len() int { return len(s.recs) }

// Name implements Provider.
func (s *Static) Name() string { return s.name }

// Lookup implements Provider.
func (s *Static) Lookup(addr string) (Record, bool) {
	rec, ok := s.recs[addr]
	return rec, ok
}

// fileRecord is the on-disk JSON shape of one record.
type fileRecord struct {
	Addr     string  `json:"addr"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	RadiusKm float64 `json:"radius_km,omitempty"`
	// AsOf is RFC 3339; empty means undated.
	AsOf   string `json:"as_of,omitempty"`
	Source string `json:"source,omitempty"`
}

// fileDB is the on-disk JSON shape of a provider.
type fileDB struct {
	Name    string       `json:"name"`
	Records []fileRecord `json:"records"`
}

// LoadFile reads a static provider from a JSON file:
//
//	{"name": "geodb-lite",
//	 "records": [{"addr": "10.1.1.2", "lat": 42.44, "lon": -76.5,
//	              "radius_km": 25, "as_of": "2024-06-01T00:00:00Z",
//	              "source": "registry"}]}
func LoadFile(path string) (*Static, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var db fileDB
	if err := json.Unmarshal(data, &db); err != nil {
		return nil, fmt.Errorf("geodb: %s: %w", path, err)
	}
	if db.Name == "" {
		db.Name = path
	}
	s := NewStatic(db.Name)
	for _, fr := range db.Records {
		rec := Record{Loc: geo.Pt(fr.Lat, fr.Lon), RadiusKm: fr.RadiusKm, Source: fr.Source}
		if fr.AsOf != "" {
			t, err := time.Parse(time.RFC3339, fr.AsOf)
			if err != nil {
				return nil, fmt.Errorf("geodb: %s: record %s: bad as_of: %w", path, fr.Addr, err)
			}
			rec.AsOf = t
		}
		if rec.Source == "" {
			rec.Source = db.Name
		}
		s.Add(fr.Addr, rec)
	}
	return s, nil
}

// CompositeOpts tunes a Composite's staleness decay.
type CompositeOpts struct {
	// StaleHalfLife halves a dated record's weight per elapsed half-life
	// (0 disables weight decay).
	StaleHalfLife time.Duration
	// StaleRadiusKmPerYear inflates a dated record's radius per year of
	// age (0 disables radius inflation) — older claims are vaguer, not
	// just less trusted.
	StaleRadiusKmPerYear float64
	// Now supplies the clock (tests and deterministic harnesses inject
	// one; nil defaults to time.Now).
	Now func() time.Time
}

// weightedProvider is one Composite member.
type weightedProvider struct {
	p Provider
	w float64
}

// Composite consults member providers in registration order and returns
// the first hit, scaled by the member's trust weight and decayed by the
// record's age. It implements Weighted.
type Composite struct {
	members []weightedProvider
	opts    CompositeOpts
	name    string
}

// NewComposite builds an empty composite.
func NewComposite(opts CompositeOpts) *Composite {
	return &Composite{opts: opts}
}

// AddProvider registers a member with a trust weight in (0, 1]; weights
// outside that range clamp to 1.
func (c *Composite) AddProvider(p Provider, weight float64) {
	if weight <= 0 || weight > 1 {
		weight = 1
	}
	c.members = append(c.members, weightedProvider{p: p, w: weight})
	names := make([]string, len(c.members))
	for i, m := range c.members {
		names[i] = m.p.Name()
	}
	c.name = "composite(" + strings.Join(names, ",") + ")"
}

// Name implements Provider.
func (c *Composite) Name() string {
	if c.name == "" {
		return "composite()"
	}
	return c.name
}

// Lookup implements Provider.
func (c *Composite) Lookup(addr string) (Record, bool) {
	rec, _, ok := c.LookupWeighted(addr)
	return rec, ok
}

// LookupWeighted implements Weighted: the first member hit, with the
// member's trust weight decayed (and the record's radius inflated) by the
// record's age.
func (c *Composite) LookupWeighted(addr string) (Record, float64, bool) {
	for _, m := range c.members {
		rec, ok := m.p.Lookup(addr)
		if !ok {
			continue
		}
		w := m.w
		if !rec.AsOf.IsZero() {
			now := time.Now
			if c.opts.Now != nil {
				now = c.opts.Now
			}
			if age := now().Sub(rec.AsOf); age > 0 {
				if hl := c.opts.StaleHalfLife; hl > 0 {
					w *= halveOver(age, hl)
				}
				if perYear := c.opts.StaleRadiusKmPerYear; perYear > 0 {
					rec.RadiusKm += perYear * age.Hours() / (365.25 * 24)
				}
			}
		}
		return rec, w, true
	}
	return Record{}, 0, false
}

// LookupAll returns every member's decayed claim for an address, in
// registration order — the disagreement-inspection view.
func (c *Composite) LookupAll(addr string) ([]Record, []float64) {
	var recs []Record
	var ws []float64
	for i := range c.members {
		sub := Composite{members: c.members[i : i+1], opts: c.opts}
		if rec, w, ok := sub.LookupWeighted(addr); ok {
			recs = append(recs, rec)
			ws = append(ws, w)
		}
	}
	return recs, ws
}

// halveOver returns 0.5^(age/halfLife).
func halveOver(age, halfLife time.Duration) float64 {
	return math.Exp2(-float64(age) / float64(halfLife))
}

// Cached wraps a provider with a fixed-capacity LRU over lookup results,
// negatives included — passive databases are consulted on every
// localization, and the working set of targets is small.
type Cached struct {
	inner Provider
	cap   int

	mu  sync.Mutex
	ll  *list.List // front = most recent; values are *cacheEntry
	idx map[string]*list.Element

	hits, misses uint64
}

// cacheEntry is one memoized lookup, hit or miss.
type cacheEntry struct {
	addr string
	rec  Record
	w    float64
	ok   bool
}

// NewCached wraps inner with an LRU of the given capacity (≤ 0 defaults
// to 1024).
func NewCached(inner Provider, capacity int) *Cached {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cached{inner: inner, cap: capacity, ll: list.New(), idx: make(map[string]*list.Element)}
}

// Name implements Provider.
func (c *Cached) Name() string { return c.inner.Name() }

// Lookup implements Provider.
func (c *Cached) Lookup(addr string) (Record, bool) {
	rec, _, ok := c.LookupWeighted(addr)
	return rec, ok
}

// LookupWeighted implements Weighted. When the inner provider is not
// Weighted the cached weight is 0 ("use your default"), matching what the
// consumer would get from the raw provider.
func (c *Cached) LookupWeighted(addr string) (Record, float64, bool) {
	c.mu.Lock()
	if el, ok := c.idx[addr]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.hits++
		c.mu.Unlock()
		return ent.rec, ent.w, ent.ok
	}
	c.misses++
	c.mu.Unlock()

	ent := &cacheEntry{addr: addr}
	if w, ok := c.inner.(Weighted); ok {
		ent.rec, ent.w, ent.ok = w.LookupWeighted(addr)
	} else {
		ent.rec, ent.ok = c.inner.Lookup(addr)
	}

	c.mu.Lock()
	if el, ok := c.idx[addr]; ok {
		// Raced with another looker-up; keep the resident entry.
		c.ll.MoveToFront(el)
	} else {
		c.idx[addr] = c.ll.PushFront(ent)
		if c.ll.Len() > c.cap {
			old := c.ll.Back()
			c.ll.Remove(old)
			delete(c.idx, old.Value.(*cacheEntry).addr)
		}
	}
	c.mu.Unlock()
	return ent.rec, ent.w, ent.ok
}

// Stats reports the cache's hit/miss counters and occupancy.
func (c *Cached) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// SortedAddrs returns a static provider's covered addresses in sorted
// order (test and tooling convenience).
func (s *Static) SortedAddrs() []string {
	out := make([]string, 0, len(s.recs))
	for a := range s.recs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
