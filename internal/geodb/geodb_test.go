package geodb

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"octant/internal/geo"
	"octant/internal/netsim"
)

func TestStaticLookup(t *testing.T) {
	s := NewStatic("test")
	rec := Record{Loc: geo.Pt(42.44, -76.50), RadiusKm: 25, Source: "registry"}
	s.Add("10.1.1.2", rec)
	got, ok := s.Lookup("10.1.1.2")
	if !ok || got != rec {
		t.Fatalf("Lookup = %v %v, want %v", got, ok, rec)
	}
	if _, ok := s.Lookup("10.9.9.9"); ok {
		t.Fatal("Lookup of unknown address succeeded")
	}
	if s.Len() != 1 || s.Name() != "test" {
		t.Errorf("Len/Name = %d/%q", s.Len(), s.Name())
	}
}

func TestLoadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	body := `{"name": "geodb-lite", "records": [
		{"addr": "h1", "lat": 42.44, "lon": -76.5, "radius_km": 25,
		 "as_of": "2024-06-01T00:00:00Z", "source": "registry"},
		{"addr": "h2", "lat": 40.71, "lon": -74.0}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "geodb-lite" || s.Len() != 2 {
		t.Fatalf("Name/Len = %q/%d", s.Name(), s.Len())
	}
	r1, ok := s.Lookup("h1")
	if !ok || r1.RadiusKm != 25 || r1.Source != "registry" {
		t.Errorf("h1 = %v %v", r1, ok)
	}
	if want := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC); !r1.AsOf.Equal(want) {
		t.Errorf("h1 AsOf = %v, want %v", r1.AsOf, want)
	}
	// Unstated fields: undated, no radius, source falls back to the DB name.
	r2, ok := s.Lookup("h2")
	if !ok || !r2.AsOf.IsZero() || r2.RadiusKm != 0 || r2.Source != "geodb-lite" {
		t.Errorf("h2 = %v %v", r2, ok)
	}
}

func TestLoadFileBadDate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	body := `{"records": [{"addr": "h1", "lat": 1, "lon": 2, "as_of": "yesterday"}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("bad as_of loaded without error")
	}
}

// The composite returns the first member hit, scaled by the member's
// trust weight and decayed by the record's age under an injected clock.
func TestCompositeWeightsAndStaleness(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	halfLife := 365 * 24 * time.Hour

	fresh := NewStatic("fresh")
	fresh.Add("h1", Record{Loc: geo.Pt(1, 1), RadiusKm: 20, AsOf: now})
	stale := NewStatic("stale")
	stale.Add("h2", Record{Loc: geo.Pt(2, 2), RadiusKm: 20, AsOf: now.Add(-2 * halfLife)})
	stale.Add("h1", Record{Loc: geo.Pt(9, 9)}) // shadowed by fresh

	c := NewComposite(CompositeOpts{
		StaleHalfLife:        halfLife,
		StaleRadiusKmPerYear: 50,
		Now:                  func() time.Time { return now },
	})
	c.AddProvider(fresh, 0.9)
	c.AddProvider(stale, 0.5)
	if c.Name() != "composite(fresh,stale)" {
		t.Errorf("Name = %q", c.Name())
	}

	// h1: first member wins, fresh record keeps the full trust weight.
	rec, w, ok := c.LookupWeighted("h1")
	if !ok || rec.Loc != geo.Pt(1, 1) {
		t.Fatalf("h1 = %v %v", rec, ok)
	}
	if math.Abs(w-0.9) > 1e-12 {
		t.Errorf("fresh weight = %v, want 0.9", w)
	}
	if rec.RadiusKm != 20 {
		t.Errorf("fresh radius = %v, want 20 (no inflation)", rec.RadiusKm)
	}

	// h2: two half-lives old → trust quartered, radius inflated ~2 years.
	rec, w, ok = c.LookupWeighted("h2")
	if !ok {
		t.Fatal("h2 missed")
	}
	if want := 0.5 * 0.25; math.Abs(w-want) > 1e-9 {
		t.Errorf("stale weight = %v, want %v", w, want)
	}
	wantRadius := 20 + 50*(2*halfLife).Hours()/(365.25*24)
	if math.Abs(rec.RadiusKm-wantRadius) > 0.01 {
		t.Errorf("stale radius = %v, want %v", rec.RadiusKm, wantRadius)
	}

	if _, _, ok := c.LookupWeighted("h3"); ok {
		t.Error("unknown address hit")
	}
}

func TestCompositeUndatedRecordsStayFresh(t *testing.T) {
	s := NewStatic("undated")
	s.Add("h1", Record{Loc: geo.Pt(1, 1), RadiusKm: 10})
	c := NewComposite(CompositeOpts{
		StaleHalfLife:        time.Hour,
		StaleRadiusKmPerYear: 1000,
		Now:                  func() time.Time { return time.Date(2099, 1, 1, 0, 0, 0, 0, time.UTC) },
	})
	c.AddProvider(s, 0.8)
	rec, w, ok := c.LookupWeighted("h1")
	if !ok || w != 0.8 || rec.RadiusKm != 10 {
		t.Errorf("undated record decayed: %v w=%v ok=%v", rec, w, ok)
	}
}

// countingProvider counts how often the inner table is consulted.
type countingProvider struct {
	*Static
	calls int
}

func (p *countingProvider) Lookup(addr string) (Record, bool) {
	p.calls++
	return p.Static.Lookup(addr)
}

func TestCachedMemoizesHitsAndMisses(t *testing.T) {
	inner := &countingProvider{Static: NewStatic("inner")}
	inner.Add("h1", Record{Loc: geo.Pt(1, 1)})
	c := NewCached(inner, 8)
	if c.Name() != "inner" {
		t.Errorf("Name = %q", c.Name())
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.Lookup("h1"); !ok {
			t.Fatal("h1 missed")
		}
		if _, ok := c.Lookup("absent"); ok {
			t.Fatal("absent hit")
		}
	}
	if inner.calls != 2 {
		t.Errorf("inner consulted %d times, want 2 (one per distinct address, negatives cached too)", inner.calls)
	}
	hits, misses, size := c.Stats()
	if hits != 4 || misses != 2 || size != 2 {
		t.Errorf("Stats = %d/%d/%d, want 4/2/2", hits, misses, size)
	}
}

func TestCachedEvictsLRU(t *testing.T) {
	inner := &countingProvider{Static: NewStatic("inner")}
	inner.Add("a", Record{})
	inner.Add("b", Record{})
	inner.Add("c", Record{})
	c := NewCached(inner, 2)
	c.Lookup("a")
	c.Lookup("b")
	c.Lookup("a") // refresh a; b is now LRU
	c.Lookup("c") // evicts b
	inner.calls = 0
	c.Lookup("a")
	c.Lookup("c")
	if inner.calls != 0 {
		t.Errorf("resident entries re-consulted inner %d times", inner.calls)
	}
	c.Lookup("b")
	if inner.calls != 1 {
		t.Errorf("evicted entry consulted inner %d times, want 1", inner.calls)
	}
}

func TestCachedPassesThroughWeights(t *testing.T) {
	s := NewStatic("s")
	s.Add("h1", Record{Loc: geo.Pt(1, 1), AsOf: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)})
	comp := NewComposite(CompositeOpts{
		StaleHalfLife: 365 * 24 * time.Hour,
		Now:           func() time.Time { return time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC) },
	})
	comp.AddProvider(s, 1)
	c := NewCached(comp, 4)
	_, w1, ok := c.LookupWeighted("h1")
	if !ok || w1 <= 0 || w1 >= 1 {
		t.Fatalf("weighted passthrough = %v %v, want decayed weight in (0,1)", w1, ok)
	}
	_, w2, _ := c.LookupWeighted("h1")
	if w2 != w1 {
		t.Errorf("cached weight %v != first %v", w2, w1)
	}
	// Non-Weighted inner: cached weight is 0 ("use your default").
	plain := NewCached(s, 4)
	if _, w, _ := plain.LookupWeighted("h1"); w != 0 {
		t.Errorf("non-weighted inner produced weight %v", w)
	}
}

func TestSynthKnobs(t *testing.T) {
	w := netsim.NewWorld(netsim.Config{Seed: 1})
	hosts := w.HostNodes()

	fresh := NewSynth(w, SynthOpts{Seed: 1})
	if fresh.Len() != 2*len(hosts) {
		t.Fatalf("Len = %d, want %d (name + IP per host)", fresh.Len(), 2*len(hosts))
	}
	for _, h := range hosts {
		rec, ok := fresh.Lookup(h.Name)
		if !ok {
			t.Fatalf("no record for %s", h.Name)
		}
		byIP, ok := fresh.Lookup(h.IP)
		if !ok || byIP != rec {
			t.Errorf("%s: IP record differs from name record", h.Name)
		}
		if d := rec.Loc.DistanceKm(h.Loc); d > 18 {
			t.Errorf("%s: fresh record %0.f km off (want ≤ 18)", h.Name, d)
		}
		if rec.Source != "synth" || rec.RadiusKm != 40 || rec.AsOf.IsZero() {
			t.Errorf("%s: rec = %+v", h.Name, rec)
		}
	}

	// Determinism: same (world, opts) → identical records.
	again := NewSynth(w, SynthOpts{Seed: 1})
	for _, h := range hosts {
		a, _ := fresh.Lookup(h.Name)
		b, _ := again.Lookup(h.Name)
		if a != b {
			t.Fatalf("%s: synth not deterministic", h.Name)
		}
	}

	wrong := NewSynth(w, SynthOpts{Seed: 1, WrongFrac: 1})
	for _, h := range hosts {
		rec, _ := wrong.Lookup(h.Name)
		if rec.Source != "synth-wrong" {
			t.Errorf("%s: WrongFrac 1 produced %q", h.Name, rec.Source)
			continue
		}
		if d := rec.Loc.DistanceKm(h.Loc); d < 1500 {
			t.Errorf("%s: wrong record only %.0f km off", h.Name, d)
		}
	}

	stale := NewSynth(w, SynthOpts{Seed: 1, StaleFrac: 1})
	for _, h := range hosts {
		rec, _ := stale.Lookup(h.Name)
		if rec.Source != "synth-stale" {
			t.Errorf("%s: StaleFrac 1 produced %q", h.Name, rec.Source)
			continue
		}
		if age := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Sub(rec.AsOf); age < 2*365*24*time.Hour {
			t.Errorf("%s: stale record only %v old", h.Name, age)
		}
		if d := rec.Loc.DistanceKm(h.Loc); math.Abs(d-300) > 1 {
			t.Errorf("%s: stale drift %.0f km, want ~300", h.Name, d)
		}
	}
}
