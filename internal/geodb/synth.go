package geodb

import (
	"math"
	"math/rand/v2"
	"time"

	"octant/internal/netsim"
)

// SynthOpts controls synthetic database generation.
type SynthOpts struct {
	// Seed keys the generator's deterministic randomness.
	Seed uint64
	// OffsetKm bounds how far a correct record's claimed position is
	// displaced from the host's true position (city-granular precision;
	// default 18, matching the simulated WHOIS registry).
	OffsetKm float64
	// RadiusKm is the stated precision written into every record
	// (default 40).
	RadiusKm float64
	// WrongFrac is the fraction of records pointing at a far-away city
	// (≥ 1500 km) — reassigned address blocks the database never
	// re-verified.
	WrongFrac float64
	// StaleFrac is the fraction of records that are old: their AsOf is
	// StaleAge before the base date and their claimed position has
	// drifted by StaleOffsetKm — the Longitudinal Geo-DB failure mode the
	// composite's decay is for.
	StaleFrac float64
	// StaleAge is how far in the past stale records are dated (default 3
	// years).
	StaleAge time.Duration
	// StaleOffsetKm is how far stale records' positions have drifted
	// (default 300).
	StaleOffsetKm float64
	// AsOf is the base date written into fresh records (default
	// 2026-01-01 UTC, so generation is deterministic).
	AsOf time.Time
}

func (o *SynthOpts) fillDefaults() {
	if o.OffsetKm == 0 {
		o.OffsetKm = 18
	}
	if o.RadiusKm == 0 {
		o.RadiusKm = 40
	}
	if o.StaleAge == 0 {
		o.StaleAge = 3 * 365 * 24 * time.Hour
	}
	if o.StaleOffsetKm == 0 {
		o.StaleOffsetKm = 300
	}
	if o.AsOf.IsZero() {
		o.AsOf = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	}
}

// NewSynth builds a static provider covering every host in a simulated
// world, keyed by both DNS name and IP. Record quality follows opts:
// correct records are city-granular (small random offset), a WrongFrac
// slice points at far-away cities, and a StaleFrac slice is old and
// drifted. Deterministic given (world, opts).
func NewSynth(w *netsim.World, opts SynthOpts) *Static {
	opts.fillDefaults()
	rng := rand.New(rand.NewPCG(opts.Seed, 0x9e0db))
	s := NewStatic("synth")
	for _, id := range w.Hosts {
		n := w.NodeByID(id)
		bearing := rng.Float64() * 2 * math.Pi
		rec := Record{
			Loc:      n.Loc.Destination(bearing, 2+rng.Float64()*(opts.OffsetKm-2)),
			RadiusKm: opts.RadiusKm,
			AsOf:     opts.AsOf,
			Source:   "synth",
		}
		switch r := rng.Float64(); {
		case r < opts.WrongFrac:
			// Reassigned block: the record claims a city ≥ 1500 km away.
			far := farCities(n, 1500)
			if len(far) > 0 {
				rec.Loc = far[rng.IntN(len(far))].Loc()
				rec.Source = "synth-wrong"
			}
		case r < opts.WrongFrac+opts.StaleFrac:
			// Old record: dated StaleAge back, position drifted.
			rec.AsOf = opts.AsOf.Add(-opts.StaleAge)
			rec.Loc = n.Loc.Destination(rng.Float64()*2*math.Pi, opts.StaleOffsetKm)
			rec.Source = "synth-stale"
		}
		s.Add(n.Name, rec)
		s.Add(n.IP, rec)
	}
	return s
}

// farCities lists POP cities at least minKm from the node, in table order
// (deterministic indexing).
func farCities(n *netsim.Node, minKm float64) []netsim.City {
	var out []netsim.City
	for _, c := range netsim.POPCities {
		if n.Loc.DistanceKm(c.Loc()) >= minKm {
			out = append(out, c)
		}
	}
	return out
}
