// Package eval is the experiment harness: it reproduces every figure in
// the paper's evaluation section (§3) over the simulated PlanetLab
// deployment, printing the same series and summary rows the paper plots.
//
//	Figure 2 — latency/distance scatter + convex hull + percentile cutoffs
//	           + spline approximation + 2/3·c line for one landmark
//	Figure 3 — CDF of localization error for Octant, GeoLim, GeoPing,
//	           GeoTrack over the 51-node leave-one-out evaluation, with the
//	           §3 median/worst summary table
//	Figure 4 — fraction of targets inside the estimated region vs number
//	           of landmarks, Octant vs GeoLim
package eval

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"octant/internal/baselines"
	"octant/internal/core"
	"octant/internal/netsim"
	"octant/internal/probe"
	"octant/internal/stats"
)

// Deployment bundles the simulated world with the full-survey measurement
// state shared by all experiments.
type Deployment struct {
	World  *netsim.World
	Prober probe.Prober
	// Landmarks lists all 51 sites as landmark descriptors (each also
	// serves as a target, leave-one-out, per §3).
	Landmarks []core.Landmark
	// Survey is the full 51-node survey; experiments subset it.
	Survey *core.Survey
}

// NewDeployment builds the §3 testbed: the default 51-site world.
func NewDeployment(seed uint64) (*Deployment, error) {
	w := netsim.NewWorld(netsim.Config{Seed: seed})
	p := probe.NewSimProber(w)
	hosts := w.HostNodes()
	lms := make([]core.Landmark, len(hosts))
	for i, h := range hosts {
		lms[i] = core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc}
	}
	s, err := core.NewSurvey(p, lms, core.SurveyOpts{UseHeights: true})
	if err != nil {
		return nil, err
	}
	return &Deployment{World: w, Prober: p, Landmarks: lms, Survey: s}, nil
}

// leaveOneOut returns the survey with landmark ti removed.
func (d *Deployment) leaveOneOut(ti int) (*core.Survey, error) {
	idx := make([]int, 0, len(d.Landmarks)-1)
	for i := range d.Landmarks {
		if i != ti {
			idx = append(idx, i)
		}
	}
	return d.Survey.Subset(idx)
}

// Fig3Row is one technique's error samples.
type Fig3Row struct {
	Name   string
	Errors []float64 // miles, one per target
	// Contained counts targets whose true position fell inside the
	// technique's estimated region (region-based techniques only).
	Contained int
	// HasRegion marks region-producing techniques.
	HasRegion bool
}

// Fig3Result holds the full comparison.
type Fig3Result struct {
	Rows    []Fig3Row
	Targets int
}

// RunFig3 reproduces Figure 3 and the §3 accuracy table: leave-one-out
// localization of every node by all four techniques. octantCfg customizes
// Octant (zero value = paper defaults); step localizes every step-th node
// (1 = all 51; larger steps for quick runs and benchmarks).
func (d *Deployment) RunFig3(octantCfg core.Config, step int) (*Fig3Result, error) {
	if step < 1 {
		step = 1
	}
	rows := map[string]*Fig3Row{
		"Octant":   {Name: "Octant", HasRegion: true},
		"GeoLim":   {Name: "GeoLim", HasRegion: true},
		"GeoPing":  {Name: "GeoPing"},
		"GeoTrack": {Name: "GeoTrack"},
	}
	targets := 0
	for ti := 0; ti < len(d.Landmarks); ti += step {
		target := d.Landmarks[ti]
		sub, err := d.leaveOneOut(ti)
		if err != nil {
			return nil, err
		}
		targets++

		loc := core.NewLocalizer(d.Prober, sub, octantCfg)
		ores, err := loc.Localize(target.Addr)
		if err != nil {
			return nil, fmt.Errorf("eval: octant on %s: %w", target.Name, err)
		}
		octRow := rows["Octant"]
		octRow.Errors = append(octRow.Errors, ores.Point.DistanceMiles(target.Loc))
		if ores.ContainsTruth(target.Loc) {
			octRow.Contained++
		}

		gl := baselines.NewGeoLim(sub)
		gres, err := gl.Localize(d.Prober, target.Addr, octantCfg.Probes)
		if err != nil {
			return nil, fmt.Errorf("eval: geolim on %s: %w", target.Name, err)
		}
		glRow := rows["GeoLim"]
		glRow.Errors = append(glRow.Errors, gres.Point.DistanceMiles(target.Loc))
		if gres.ContainsTruth(target.Loc) {
			glRow.Contained++
		}

		gp := baselines.NewGeoPing(sub)
		pres, err := gp.Localize(d.Prober, target.Addr, octantCfg.Probes)
		if err != nil {
			return nil, fmt.Errorf("eval: geoping on %s: %w", target.Name, err)
		}
		rows["GeoPing"].Errors = append(rows["GeoPing"].Errors, pres.Point.DistanceMiles(target.Loc))

		gt := baselines.NewGeoTrack(sub)
		tres, err := gt.Localize(d.Prober, target.Addr, octantCfg.Probes)
		if err != nil {
			return nil, fmt.Errorf("eval: geotrack on %s: %w", target.Name, err)
		}
		rows["GeoTrack"].Errors = append(rows["GeoTrack"].Errors, tres.Point.DistanceMiles(target.Loc))
	}
	out := &Fig3Result{Targets: targets}
	for _, name := range []string{"Octant", "GeoLim", "GeoPing", "GeoTrack"} {
		out.Rows = append(out.Rows, *rows[name])
	}
	return out, nil
}

// Summaries converts the Fig3 rows into the §3 text-table shape.
func (r *Fig3Result) Summaries() []stats.Summary {
	out := make([]stats.Summary, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, stats.Summarize(row.Name, row.Errors))
	}
	return out
}

// FormatCDF renders the Figure 3 CDF as aligned text columns: for each
// technique, (error mi, cumulative fraction) pairs at each decile.
func (r *Fig3Result) FormatCDF() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "fraction")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12s", row.Name)
	}
	b.WriteString("\n")
	for q := 0.1; q <= 1.0001; q += 0.1 {
		fmt.Fprintf(&b, "%-10.1f", q)
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%12.1f", stats.Percentile(row.Errors, q*100))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig4Point is one (landmark count, containment) measurement.
type Fig4Point struct {
	Landmarks   int
	OctantPct   float64
	GeoLimPct   float64
	OctantArea  float64 // median region area (mi²) for context
	TrialsCount int
}

// RunFig4 reproduces Figure 4: the percentage of targets whose true
// position lies inside the estimated region, as a function of the number
// of landmarks, for Octant and GeoLim. counts defaults to 10..50 step 5.
// Each count is averaged over trials random landmark subsets (targets are
// the remaining nodes).
func (d *Deployment) RunFig4(octantCfg core.Config, counts []int, trials int, seed uint64) ([]Fig4Point, error) {
	if len(counts) == 0 {
		counts = []int{10, 15, 20, 25, 30, 35, 40, 45, 50}
	}
	if trials < 1 {
		trials = 2
	}
	rng := rand.New(rand.NewPCG(seed, 0xf16))
	var out []Fig4Point
	for _, k := range counts {
		if k >= len(d.Landmarks) {
			k = len(d.Landmarks) - 1
		}
		var octIn, octTot, glIn, glTot int
		var areas []float64
		// Keep the per-count sample size roughly constant: with few
		// remaining targets (large k), run more random subsets.
		kTrials := trials
		if remaining := len(d.Landmarks) - k; remaining*kTrials < 30 {
			kTrials = (30 + remaining - 1) / remaining
		}
		for t := 0; t < kTrials; t++ {
			perm := rng.Perm(len(d.Landmarks))
			lmIdx := append([]int(nil), perm[:k]...)
			sort.Ints(lmIdx)
			sub, err := d.Survey.Subset(lmIdx)
			if err != nil {
				return nil, err
			}
			isLandmark := make(map[int]bool, k)
			for _, i := range lmIdx {
				isLandmark[i] = true
			}
			loc := core.NewLocalizer(d.Prober, sub, octantCfg)
			gl := baselines.NewGeoLim(sub)
			// Evaluate on every non-landmark node. The Octant side is one
			// homogeneous batch per subset survey, so it runs through the
			// fused batch solve (bit-identical to per-target Localize, see
			// TestFig4FusedParity) and shares rasterized geography across
			// the whole trial.
			var evalIdx []int
			var addrs []string
			for ti := 0; ti < len(d.Landmarks); ti++ {
				if !isLandmark[ti] {
					evalIdx = append(evalIdx, ti)
					addrs = append(addrs, d.Landmarks[ti].Addr)
				}
			}
			oress, oerrs := loc.LocalizeBatch(context.Background(), addrs)
			for bi, ti := range evalIdx {
				target := d.Landmarks[ti]
				if ores := oress[bi]; oerrs[bi] == nil {
					octTot++
					if ores.ContainsTruth(target.Loc) {
						octIn++
					}
					areas = append(areas, ores.AreaKm2*geo2mi2)
				}
				gres, err := gl.Localize(d.Prober, target.Addr, octantCfg.Probes)
				if err == nil {
					glTot++
					if gres.ContainsTruth(target.Loc) {
						glIn++
					}
				}
			}
		}
		pt := Fig4Point{Landmarks: k, TrialsCount: kTrials}
		if octTot > 0 {
			pt.OctantPct = 100 * float64(octIn) / float64(octTot)
		}
		if glTot > 0 {
			pt.GeoLimPct = 100 * float64(glIn) / float64(glTot)
		}
		pt.OctantArea = stats.Median(areas)
		out = append(out, pt)
	}
	return out, nil
}

// geo2mi2 converts km² to mi².
const geo2mi2 = 0.386102

// FormatFig4 renders the Figure 4 series as text.
func FormatFig4(pts []Fig4Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %18s\n", "landmarks", "Octant %", "GeoLim %", "median area mi²")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-10d %12.1f %12.1f %18.0f\n", p.Landmarks, p.OctantPct, p.GeoLimPct, p.OctantArea)
	}
	return b.String()
}
