package eval

import (
	"context"
	"strings"
	"testing"

	"octant/internal/core"
	"octant/internal/stats"
)

func testDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := NewDeployment(1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeployment(t *testing.T) {
	d := testDeployment(t)
	if len(d.Landmarks) != 51 {
		t.Fatalf("landmarks = %d, want the paper's 51", len(d.Landmarks))
	}
	if d.Survey.N() != 51 {
		t.Fatalf("survey N = %d", d.Survey.N())
	}
}

func TestFig2(t *testing.T) {
	d := testDeployment(t)
	f, err := d.RunFig2("rochester")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Scatter) != 50 {
		t.Errorf("scatter size %d, want 50 peers", len(f.Scatter))
	}
	// Hull facets bracket the scatter.
	if len(f.UpperFacets) < 2 || len(f.LowerFacets) < 2 {
		t.Errorf("facets too small: %d upper, %d lower", len(f.UpperFacets), len(f.LowerFacets))
	}
	// Percentiles ordered.
	if !(f.Percentiles[50] <= f.Percentiles[75] && f.Percentiles[75] <= f.Percentiles[90]) {
		t.Errorf("percentiles not ordered: %v", f.Percentiles)
	}
	// The speed-of-light line dominates the scatter (physics).
	for _, s := range f.Scatter {
		solAt := 0.0
		for _, p := range f.SpeedOfLite {
			if p[0] >= s.LatencyMs {
				solAt = p[1]
				break
			}
		}
		if solAt > 0 && s.DistanceKm > solAt*1.05 {
			t.Errorf("scatter point (%.1f, %.0f) above speed of light", s.LatencyMs, s.DistanceKm)
		}
	}
	if len(f.Spline) == 0 {
		t.Error("missing spline approximation series")
	}
	txt := f.Format()
	for _, want := range []string{"Figure 2", "convex hull upper facets", "spline", "2/3c"} {
		if !strings.Contains(txt, want) {
			t.Errorf("formatted output missing %q", want)
		}
	}
	if _, err := d.RunFig2("not-a-landmark"); err == nil {
		t.Error("unknown landmark should error")
	}
}

func TestFig3QuickShape(t *testing.T) {
	// Step 5 → 11 targets: fast but statistically meaningful for shape.
	d := testDeployment(t)
	res, err := d.RunFig3(core.Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 11 {
		t.Fatalf("targets = %d", res.Targets)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]stats.Summary{}
	for _, s := range res.Summaries() {
		byName[s.Name] = s
	}
	// Core paper shape: Octant beats the two latency-based baselines.
	if byName["Octant"].Median >= byName["GeoLim"].Median {
		t.Errorf("Octant median %.1f should beat GeoLim %.1f",
			byName["Octant"].Median, byName["GeoLim"].Median)
	}
	if byName["Octant"].Median >= byName["GeoPing"].Median {
		t.Errorf("Octant median %.1f should beat GeoPing %.1f",
			byName["Octant"].Median, byName["GeoPing"].Median)
	}
	// All errors finite and plausible.
	for _, row := range res.Rows {
		if len(row.Errors) != res.Targets {
			t.Errorf("%s has %d errors", row.Name, len(row.Errors))
		}
		for _, e := range row.Errors {
			if e < 0 || e > 3000 {
				t.Errorf("%s error %v implausible", row.Name, e)
			}
		}
	}
	// CDF formatting.
	cdf := res.FormatCDF()
	if !strings.Contains(cdf, "Octant") || !strings.Contains(cdf, "GeoTrack") {
		t.Errorf("CDF table malformed:\n%s", cdf)
	}
}

// TestFig3FusedParity drives the Figure 3 leave-one-out golden through
// the fused batch solve: each held-out target is its own survey, so each
// is a fused group of one, and every group must reproduce the scalar
// Localize result bit-for-bit — the figure's error series is identical
// whichever path computes it.
func TestFig3FusedParity(t *testing.T) {
	d := testDeployment(t)
	const step = 5
	scalar, err := d.RunFig3(core.Config{}, step)
	if err != nil {
		t.Fatal(err)
	}
	var octErrors []float64
	for _, row := range scalar.Rows {
		if row.Name == "Octant" {
			octErrors = row.Errors
		}
	}
	ctx := context.Background()
	bi := 0
	for ti := 0; ti < len(d.Landmarks); ti += step {
		target := d.Landmarks[ti]
		sub, err := d.leaveOneOut(ti)
		if err != nil {
			t.Fatal(err)
		}
		loc := core.NewLocalizer(d.Prober, sub, core.Config{})
		results, errs := loc.LocalizeBatch(ctx, []string{target.Addr})
		if errs[0] != nil {
			t.Fatalf("fused leave-one-out on %s: %v", target.Name, errs[0])
		}
		if got := results[0].Point.DistanceMiles(target.Loc); got != octErrors[bi] {
			t.Errorf("%s: fused error %.6f mi, scalar golden %.6f mi", target.Name, got, octErrors[bi])
		}
		bi++
	}
}

// TestFig4FusedParity pins the Figure 4 production path: one subset
// survey's full target sweep through LocalizeBatch must be bit-identical
// (point, area, containment) to per-target scalar localization, so the
// batched RunFig4 reproduces the pre-fused golden exactly.
func TestFig4FusedParity(t *testing.T) {
	d := testDeployment(t)
	const k = 20
	lmIdx := make([]int, k)
	for i := range lmIdx {
		lmIdx[i] = i * 2 // deterministic spread of 20 landmark sites
	}
	sub, err := d.Survey.Subset(lmIdx)
	if err != nil {
		t.Fatal(err)
	}
	isLandmark := make(map[int]bool, k)
	for _, i := range lmIdx {
		isLandmark[i] = true
	}
	loc := core.NewLocalizer(d.Prober, sub, core.Config{})
	var targets []core.Landmark
	var addrs []string
	for ti := range d.Landmarks {
		if !isLandmark[ti] {
			targets = append(targets, d.Landmarks[ti])
			addrs = append(addrs, d.Landmarks[ti].Addr)
		}
	}
	results, errs := loc.LocalizeBatch(context.Background(), addrs)
	for i, target := range targets {
		sres, serr := loc.Localize(target.Addr)
		if (serr == nil) != (errs[i] == nil) {
			t.Fatalf("%s: scalar err %v, fused err %v", target.Name, serr, errs[i])
		}
		if serr != nil {
			continue
		}
		fres := results[i]
		if fres.Point != sres.Point || fres.AreaKm2 != sres.AreaKm2 ||
			fres.ContainsTruth(target.Loc) != sres.ContainsTruth(target.Loc) {
			t.Errorf("%s: fused (%v, %.6f km²) diverges from scalar (%v, %.6f km²)",
				target.Name, fres.Point, fres.AreaKm2, sres.Point, sres.AreaKm2)
		}
	}
}

func TestFig4QuickShape(t *testing.T) {
	d := testDeployment(t)
	pts, err := d.RunFig4(core.Config{}, []int{15, 40}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.OctantPct < 0 || p.OctantPct > 100 || p.GeoLimPct < 0 || p.GeoLimPct > 100 {
			t.Errorf("percentages out of range: %+v", p)
		}
	}
	// The paper's Figure 4 claim: Octant's containment exceeds GeoLim's.
	// Averaged across counts to damp single-trial subset noise.
	var octSum, glSum float64
	for _, p := range pts {
		octSum += p.OctantPct
		glSum += p.GeoLimPct
	}
	if octSum <= glSum {
		t.Errorf("mean Octant containment %.0f%% should beat GeoLim %.0f%%",
			octSum/float64(len(pts)), glSum/float64(len(pts)))
	}
	out := FormatFig4(pts)
	if !strings.Contains(out, "landmarks") {
		t.Errorf("fig4 table malformed:\n%s", out)
	}
}
