package eval

import (
	"fmt"
	"strings"

	"octant/internal/calib"
	"octant/internal/geo"
	"octant/internal/hull"
)

// Fig2Data is everything Figure 2 plots for one landmark: the scatter of
// (latency, distance) points to its peers, the convex-hull facets that
// become R_L and r_L, the 50/75/90th-percentile latency cutoffs, the
// natural-cubic-spline approximation of the scatter, and the 2/3·c
// speed-of-light line.
type Fig2Data struct {
	Landmark    string
	Scatter     []calib.Sample
	UpperFacets []hull.P
	LowerFacets []hull.P
	Percentiles map[int]float64 // 50, 75, 90 → latency ms
	Spline      [][2]float64    // (latency, km) samples of the spline
	SpeedOfLite [][2]float64    // (latency, km) samples of the 2/3·c line
	Rho         float64
}

// RunFig2 builds the Figure 2 data for the named landmark (the paper uses
// planetlab1.cs.rochester.edu; we match by survey landmark name).
func (d *Deployment) RunFig2(landmarkName string) (*Fig2Data, error) {
	idx := -1
	for i, lm := range d.Survey.Landmarks {
		if lm.Name == landmarkName || lm.Addr == landmarkName {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("eval: unknown landmark %q", landmarkName)
	}
	c := d.Survey.Calibs[idx]
	out := &Fig2Data{
		Landmark:    d.Survey.Landmarks[idx].Name,
		Scatter:     c.SortedSamples(),
		UpperFacets: c.UpperFacets(),
		LowerFacets: c.LowerFacets(),
		Percentiles: map[int]float64{
			50: c.LatencyPercentile(50),
			75: c.LatencyPercentile(75),
			90: c.LatencyPercentile(90),
		},
		Rho: c.Rho(),
	}
	if sp := c.SplineApproximation(12); sp != nil {
		maxLat := out.Scatter[len(out.Scatter)-1].LatencyMs
		for x := 0.0; x <= maxLat; x += maxLat / 60 {
			out.Spline = append(out.Spline, [2]float64{x, sp.Eval(x)})
		}
	}
	maxLat := out.Scatter[len(out.Scatter)-1].LatencyMs
	for x := 0.0; x <= maxLat; x += maxLat / 60 {
		out.SpeedOfLite = append(out.SpeedOfLite, [2]float64{x, geo.LatencyToMaxDistanceKm(x)})
	}
	return out, nil
}

// Format renders the Figure 2 series as aligned text (scatter plus the
// overlay curves at matching latencies).
func (f *Fig2Data) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — latency vs distance for landmark %s\n", f.Landmark)
	fmt.Fprintf(&b, "percentile cutoffs: 50%%=%.1fms 75%%=%.1fms 90%%=%.1fms (ρ=%.1fms)\n\n",
		f.Percentiles[50], f.Percentiles[75], f.Percentiles[90], f.Rho)
	fmt.Fprintf(&b, "scatter (%d peers):\n%-12s %-12s\n", len(f.Scatter), "latency ms", "distance km")
	for _, s := range f.Scatter {
		fmt.Fprintf(&b, "%-12.2f %-12.0f\n", s.LatencyMs, s.DistanceKm)
	}
	fmt.Fprintf(&b, "\nconvex hull upper facets (R_L):\n")
	for _, p := range f.UpperFacets {
		fmt.Fprintf(&b, "%-12.2f %-12.0f\n", p.X, p.Y)
	}
	fmt.Fprintf(&b, "\nconvex hull lower facets (r_L):\n")
	for _, p := range f.LowerFacets {
		fmt.Fprintf(&b, "%-12.2f %-12.0f\n", p.X, p.Y)
	}
	fmt.Fprintf(&b, "\n%-12s %-14s %-14s\n", "latency ms", "spline km", "2/3c km")
	for i := range f.SpeedOfLite {
		sp := ""
		if i < len(f.Spline) {
			sp = fmt.Sprintf("%.0f", f.Spline[i][1])
		}
		fmt.Fprintf(&b, "%-12.2f %-14s %-14.0f\n", f.SpeedOfLite[i][0], sp, f.SpeedOfLite[i][1])
	}
	return b.String()
}
