package probe

import (
	"fmt"
	"net"
	"time"

	"octant/internal/geo"
)

// TCPProber measures real round-trip times by timing TCP handshakes with
// net.Dialer. It is the unprivileged stand-in for ICMP echo: the three-way
// handshake completes in one RTT (plus kernel overhead), so connect time is
// a sound, slightly conservative RTT estimator. Traceroute and WHOIS are
// not available at this privilege level and report empty results; Octant
// degrades gracefully to pure latency constraints in that configuration.
//
// The src argument of Ping is ignored — a process can only measure from
// itself. Targets are "host:port" strings.
type TCPProber struct {
	// Timeout bounds each connection attempt (default 2s).
	Timeout time.Duration
	// Spacing separates consecutive probes so they sample different queue
	// states (default 10ms; the paper uses time-dispersed probes).
	Spacing time.Duration
}

var _ Prober = (*TCPProber)(nil)

// NewTCPProber returns a TCPProber with defaults suitable for tests.
func NewTCPProber() *TCPProber {
	return &TCPProber{Timeout: 2 * time.Second, Spacing: 10 * time.Millisecond}
}

// Ping implements Prober by timing n TCP connects to dst ("host:port").
func (p *TCPProber) Ping(_, dst string, n int) ([]float64, error) {
	if n <= 0 {
		n = 1
	}
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	out := make([]float64, 0, n)
	var lastErr error
	for i := 0; i < n; i++ {
		if i > 0 && p.Spacing > 0 {
			time.Sleep(p.Spacing)
		}
		start := time.Now()
		conn, err := d.Dial("tcp", dst)
		if err != nil {
			lastErr = err
			continue
		}
		rtt := time.Since(start)
		_ = conn.Close()
		out = append(out, float64(rtt)/float64(time.Millisecond))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("probe: all %d connects to %s failed: %w", n, dst, lastErr)
	}
	return out, nil
}

// Traceroute implements Prober. TCP-level probing cannot enumerate router
// hops without raw sockets, so it returns an empty path.
func (p *TCPProber) Traceroute(_, _ string) ([]Hop, error) {
	return nil, nil
}

// ReverseDNS implements Prober via the system resolver.
func (p *TCPProber) ReverseDNS(addr string) string {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr
	}
	names, err := net.LookupAddr(host)
	if err != nil || len(names) == 0 {
		return ""
	}
	return names[0]
}

// Whois implements Prober; unavailable without external services.
func (p *TCPProber) Whois(string) (geo.Point, string, bool) {
	return geo.Point{}, "", false
}
