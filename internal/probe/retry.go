package probe

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"octant/internal/geo"
)

// RetryOptions tunes a RetryProber. The zero value gets sensible
// defaults from WithRetry.
type RetryOptions struct {
	// Attempts is the total number of tries per measurement, first
	// attempt included (0 = default 3; 1 disables retrying).
	Attempts int
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it (0 = default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (0 = default 2s).
	MaxBackoff time.Duration
	// Jitter spreads each backoff uniformly over ±Jitter fraction of its
	// nominal value, de-synchronizing retry storms across landmarks
	// (0 = default 0.2; negative disables).
	Jitter float64
	// AttemptTimeout bounds each individual attempt. An attempt that
	// exceeds it is classified as a transient probe timeout — unlike the
	// caller's own deadline, which stays permanent (0 = no per-attempt
	// bound).
	AttemptTimeout time.Duration

	// Test seams: sleep replaces the inter-attempt wait and rand the
	// jitter draw, so unit tests can run the backoff schedule against a
	// fake clock. Nil selects the real clock and math/rand.
	sleep func(ctx context.Context, d time.Duration) error
	rand  func() float64
}

// RetryStats is a snapshot of a RetryProber's counters.
type RetryStats struct {
	// Attempts counts every measurement attempt issued, including firsts.
	Attempts uint64
	// Retries counts re-attempts after a transient failure.
	Retries uint64
	// Exhausted counts measurements that failed every attempt.
	Exhausted uint64
}

// RetryProber wraps a Prober with bounded retries: transient failures
// (see Transient) are re-attempted up to Attempts times with capped
// exponential backoff plus jitter, each attempt optionally bounded by
// its own timeout. Permanent failures — unknown addresses, the caller's
// context expiring — return immediately. Survey calibration and the
// evidence pipeline sit on top of this wrapper so a single lost probe
// train does not void minutes of measurement work.
//
// RetryProber implements ContextProber: cancellation is observed between
// attempts and during backoff sleeps, and is forwarded into each attempt
// when the underlying prober is context-aware.
type RetryProber struct {
	p Prober
	o RetryOptions

	attempts  atomic.Uint64
	retries   atomic.Uint64
	exhausted atomic.Uint64
}

var (
	_ Prober        = (*RetryProber)(nil)
	_ ContextProber = (*RetryProber)(nil)
)

// WithRetry wraps p with retry behaviour. See RetryProber.
func WithRetry(p Prober, o RetryOptions) *RetryProber {
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.sleep == nil {
		o.sleep = sleepCtx
	}
	if o.rand == nil {
		o.rand = rand.Float64
	}
	return &RetryProber{p: p, o: o}
}

// Stats returns a snapshot of the retry counters.
func (r *RetryProber) Stats() RetryStats {
	return RetryStats{
		Attempts:  r.attempts.Load(),
		Retries:   r.retries.Load(),
		Exhausted: r.exhausted.Load(),
	}
}

// Ping implements Prober.
func (r *RetryProber) Ping(src, dst string, n int) ([]float64, error) {
	return r.PingContext(context.Background(), src, dst, n)
}

// PingContext implements ContextProber.
func (r *RetryProber) PingContext(ctx context.Context, src, dst string, n int) ([]float64, error) {
	var out []float64
	err := r.retry(ctx, func(actx context.Context) error {
		var e error
		out, e = pingIn(actx, r.p, src, dst, n)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Traceroute implements Prober.
func (r *RetryProber) Traceroute(src, dst string) ([]Hop, error) {
	return r.TracerouteContext(context.Background(), src, dst)
}

// TracerouteContext implements ContextProber.
func (r *RetryProber) TracerouteContext(ctx context.Context, src, dst string) ([]Hop, error) {
	var out []Hop
	err := r.retry(ctx, func(actx context.Context) error {
		var e error
		out, e = tracerouteIn(actx, r.p, src, dst)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReverseDNS implements Prober. Metadata lookups are cheap and local;
// they pass straight through.
func (r *RetryProber) ReverseDNS(addr string) string { return r.p.ReverseDNS(addr) }

// Whois implements Prober.
func (r *RetryProber) Whois(addr string) (loc geo.Point, zip string, ok bool) { return r.p.Whois(addr) }

// retry runs attempt until it succeeds, fails permanently, or the
// attempt budget is spent.
func (r *RetryProber) retry(ctx context.Context, attempt func(context.Context) error) error {
	backoff := r.o.BaseBackoff
	var err error
	for a := 0; a < r.o.Attempts; a++ {
		r.attempts.Add(1)
		err = r.oneAttempt(ctx, attempt)
		if err == nil {
			return nil
		}
		if !Transient(err) {
			return err
		}
		if a == r.o.Attempts-1 {
			break
		}
		r.retries.Add(1)
		if serr := r.o.sleep(ctx, r.jittered(backoff)); serr != nil {
			// Cancelled mid-backoff: the caller's error wins over the
			// transient one that triggered the wait.
			return serr
		}
		if backoff *= 2; backoff > r.o.MaxBackoff {
			backoff = r.o.MaxBackoff
		}
	}
	r.exhausted.Add(1)
	return fmt.Errorf("probe: gave up after %d attempts: %w", r.o.Attempts, err)
}

// oneAttempt runs attempt under the per-attempt timeout, reclassifying a
// blown per-attempt deadline as a transient probe timeout when the
// caller's own context is still live.
func (r *RetryProber) oneAttempt(ctx context.Context, attempt func(context.Context) error) error {
	actx := ctx
	var cancel context.CancelFunc
	if r.o.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, r.o.AttemptTimeout)
		defer cancel()
	}
	err := attempt(actx)
	if err != nil && cancel != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		return fmt.Errorf("probe: attempt %w after %v", ErrTimeout, r.o.AttemptTimeout)
	}
	return err
}

// jittered spreads d over ±Jitter of its nominal value.
func (r *RetryProber) jittered(d time.Duration) time.Duration {
	if r.o.Jitter <= 0 {
		return d
	}
	f := 1 + r.o.Jitter*(2*r.o.rand()-1)
	return time.Duration(float64(d) * f)
}

// pingIn issues one ping attempt under ctx, using the native
// context-aware call when the prober has one.
func pingIn(ctx context.Context, p Prober, src, dst string, n int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cp, ok := p.(ContextProber); ok {
		return cp.PingContext(ctx, src, dst, n)
	}
	return p.Ping(src, dst, n)
}

// tracerouteIn issues one traceroute attempt under ctx.
func tracerouteIn(ctx context.Context, p Prober, src, dst string) ([]Hop, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cp, ok := p.(ContextProber); ok {
		return cp.TracerouteContext(ctx, src, dst)
	}
	return p.Traceroute(src, dst)
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
