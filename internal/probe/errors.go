package probe

import (
	"context"
	"errors"
	"net"
)

// Measurement error classification. A prober distinguishes two broad
// failure families: conditions that a later attempt might not see
// (losses, timeouts, a crashed-but-rebooting host) and conditions no
// amount of retrying fixes (an address that does not resolve, a caller
// that has given up). RetryProber and the degraded-mode evidence
// pipeline both branch on this split, so the sentinels live here rather
// than in any one implementation.

// ErrUnreachable marks a measurement that failed because an endpoint or
// the path between them is down — probes are not answered at all.
var ErrUnreachable = errors.New("unreachable")

// ErrTimeout marks a measurement whose probes were all lost within the
// attempt's budget: the path exists but nothing came back in time.
var ErrTimeout = errors.New("timed out")

// Transient reports whether err is worth retrying: probe-level
// unreachability and timeouts (including net.Error timeouts from real
// sockets) are transient; context cancellation, expired caller
// deadlines, and everything else (unknown addresses, protocol errors)
// are permanent.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrUnreachable) || errors.Is(err, ErrTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
