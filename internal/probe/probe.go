// Package probe defines the measurement interface between the Octant
// framework and the network, plus its two implementations: SimProber, which
// measures the synthetic Internet in internal/netsim, and TCPProber, which
// measures real RTTs with TCP handshake timing via net.Dialer (the standard
// unprivileged substitute for ICMP, which needs raw sockets).
//
// Octant's algorithms depend only on the Prober interface, so moving the
// framework from the simulator to a real deployment is a constructor swap.
package probe

import (
	"fmt"
	"sort"

	"octant/internal/geo"
)

// Hop is one traceroute step as seen by the framework.
type Hop struct {
	Addr  string  // IP or opaque address of the router
	Name  string  // reverse-DNS name ("" if unresolvable)
	RTTMs float64 // cumulative round-trip latency to this hop
}

// Prober is the measurement surface Octant needs from the network.
type Prober interface {
	// Ping returns n time-dispersed RTT samples in milliseconds from src
	// to dst, identified by address.
	Ping(src, dst string, n int) ([]float64, error)
	// Traceroute returns the router-level path from src to dst.
	Traceroute(src, dst string) ([]Hop, error)
	// ReverseDNS resolves an address to a DNS name ("" if unknown).
	ReverseDNS(addr string) string
	// Whois returns the registration location hint for an address.
	// ok is false when no record exists.
	Whois(addr string) (loc geo.Point, zip string, ok bool)
}

// MinRTT returns the minimum of samples, or an error for empty input. The
// min over time-dispersed probes is the estimator every technique in the
// paper consumes.
func MinRTT(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("probe: no samples")
	}
	m := samples[0]
	for _, s := range samples[1:] {
		if s < m {
			m = s
		}
	}
	return m, nil
}

// MedianRTT returns the median of samples, or an error for empty input.
func MedianRTT(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("probe: no samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}
