package probe

import (
	"sync"
	"testing"

	"octant/internal/netsim"
)

// TestConcurrentPingWithFaultsRace is the measurement stack's shared-state
// audit in executable form (run under -race in CI): many goroutines ping
// through one RetryProber over one simulated world while another goroutine
// injects and clears node-down, blackhole, and loss faults mid-flight.
// The world's fault maps, its probe/loss counters, and the retry
// prober's stats are all supposed to be independently synchronized; this
// test is what holds them to it. It also pins the coherence of the retry
// counters themselves: every retry and every exhaustion implies a
// counted attempt.
func TestConcurrentPingWithFaultsRace(t *testing.T) {
	w := netsim.NewWorld(netsim.Config{Seed: 2})
	p := WithRetry(NewSimProber(w), RetryOptions{
		Attempts:    2,
		BaseBackoff: 1, // nanoseconds: keep the schedule, skip the waiting
		MaxBackoff:  1,
	})
	hosts := w.HostNodes()
	if len(hosts) < 8 {
		t.Fatalf("world too small: %d hosts", len(hosts))
	}
	target := hosts[0]
	landmarks := hosts[1:8]

	var wg sync.WaitGroup
	stop := make(chan struct{})
	injectorDone := make(chan struct{})

	// Fault injector: cycles each landmark→target path through loss,
	// blackhole, node-down, and healthy states while probes are in flight.
	go func() {
		defer close(injectorDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lm := landmarks[i%len(landmarks)]
			switch i % 4 {
			case 0:
				w.SetPairLossRate(lm.ID, target.ID, 0.5)
			case 1:
				w.SetPairLossRate(lm.ID, target.ID, 0)
				w.SetPairBlackhole(lm.ID, target.ID, true)
			case 2:
				w.SetPairBlackhole(lm.ID, target.ID, false)
				w.SetNodeDown(lm.ID, true)
			case 3:
				w.SetNodeDown(lm.ID, false)
			}
		}
	}()

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lm := landmarks[(g+i)%len(landmarks)]
				// Errors are expected while faults are active; what this
				// test asserts is that concurrent faulted probing is
				// race-free and the counters stay coherent.
				samples, err := p.Ping(lm.Name, target.Name, 4)
				if err == nil {
					if _, merr := MinRTT(samples); merr != nil && len(samples) > 0 {
						t.Errorf("MinRTT over %d samples: %v", len(samples), merr)
					}
				}
				if (g+i)%3 == 0 {
					if _, err := p.Traceroute(lm.Name, target.Name); err != nil {
						continue // downed paths legitimately have no route
					}
				}
			}
		}(g)
	}
	// Stop the injector only after every prober goroutine drained, so
	// probes race against live fault flips for the whole test.
	wg.Wait()
	close(stop)
	<-injectorDone

	st := p.Stats()
	if st.Attempts == 0 {
		t.Fatal("retry prober counted no attempts")
	}
	if st.Retries+st.Exhausted > st.Attempts {
		t.Errorf("incoherent retry stats: attempts=%d retries=%d exhausted=%d",
			st.Attempts, st.Retries, st.Exhausted)
	}
	if w.PingCalls() == 0 {
		t.Error("world's ping counter never advanced under concurrent load")
	}

	// Faults cleared: the world must be healthy again for every pair.
	for _, lm := range landmarks {
		w.SetPairLossRate(lm.ID, target.ID, 0)
		w.SetPairBlackhole(lm.ID, target.ID, false)
		w.SetNodeDown(lm.ID, false)
		if f := w.PathFault(lm.ID, target.ID); f != "" {
			t.Errorf("path %s→%s still faulted after clear: %s", lm.Name, target.Name, f)
		}
	}
}
