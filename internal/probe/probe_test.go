package probe

import (
	"math"
	"net"
	"testing"
	"time"

	"octant/internal/netsim"
)

func TestMinMedianRTT(t *testing.T) {
	if _, err := MinRTT(nil); err == nil {
		t.Error("MinRTT(nil) should error")
	}
	if _, err := MedianRTT(nil); err == nil {
		t.Error("MedianRTT(nil) should error")
	}
	m, err := MinRTT([]float64{5, 3, 9})
	if err != nil || m != 3 {
		t.Errorf("MinRTT = %v %v", m, err)
	}
	md, err := MedianRTT([]float64{5, 3, 9})
	if err != nil || md != 5 {
		t.Errorf("MedianRTT odd = %v %v", md, err)
	}
	md, err = MedianRTT([]float64{1, 2, 3, 4})
	if err != nil || md != 2.5 {
		t.Errorf("MedianRTT even = %v %v", md, err)
	}
	// Input not mutated.
	in := []float64{3, 1, 2}
	if _, err := MedianRTT(in); err != nil || in[0] != 3 {
		t.Error("MedianRTT mutated input")
	}
}

func TestSimProber(t *testing.T) {
	w := netsim.NewWorld(netsim.Config{Seed: 5})
	p := NewSimProber(w)
	hosts := w.HostNodes()
	src, dst := hosts[0].Name, hosts[10].Name

	samples, err := p.Ping(src, dst, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("got %d samples", len(samples))
	}
	min, _ := MinRTT(samples)
	if min <= 0 || math.IsInf(min, 0) {
		t.Errorf("min RTT = %v", min)
	}
	// Matches the world's own view.
	a, _ := w.HostByName(src)
	b, _ := w.HostByName(dst)
	if want := w.MinPing(a.ID, b.ID, 10); min != want {
		t.Errorf("prober min %v != world min %v", min, want)
	}

	hops, err := p.Traceroute(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) < 2 {
		t.Fatalf("too few hops: %d", len(hops))
	}
	if hops[len(hops)-1].Name != dst {
		t.Errorf("last hop %q, want %q", hops[len(hops)-1].Name, dst)
	}
	// Hop addresses reverse-resolve to their names.
	if got := p.ReverseDNS(hops[0].Addr); got != hops[0].Name {
		t.Errorf("ReverseDNS(%s) = %q, want %q", hops[0].Addr, got, hops[0].Name)
	}

	if _, err := p.Ping("bogus.example.com", dst, 3); err == nil {
		t.Error("unknown src should error")
	}
	if _, err := p.Traceroute(src, "bogus.example.com"); err == nil {
		t.Error("unknown dst should error")
	}

	loc, zip, ok := p.Whois(src)
	if !ok || zip == "" || !loc.Valid() {
		t.Errorf("Whois(%s) = %v %q %v", src, loc, zip, ok)
	}
	if _, _, ok := p.Whois("bogus.example.com"); ok {
		t.Error("unknown addr should have no WHOIS")
	}
}

// TestTCPProberLoopback exercises the real-network prober against local
// listeners: RTT ordering should reflect the artificial delay we add on
// accept (a real, observable network path through the kernel).
func TestTCPProberLoopback(t *testing.T) {
	fast, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	go func() {
		for {
			c, err := fast.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()

	p := NewTCPProber()
	p.Spacing = time.Millisecond
	samples, err := p.Ping("", fast.Addr().String(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples", len(samples))
	}
	min, _ := MinRTT(samples)
	if min <= 0 {
		t.Errorf("loopback RTT must be positive, got %v", min)
	}
	if min > 100 {
		t.Errorf("loopback RTT %v ms implausibly high", min)
	}

	// Unreachable target errors.
	if _, err := (&TCPProber{Timeout: 200 * time.Millisecond}).Ping("", "127.0.0.1:1", 2); err == nil {
		t.Error("connect to closed port should error")
	}

	// Traceroute/Whois degrade gracefully.
	if hops, err := p.Traceroute("", fast.Addr().String()); err != nil || hops != nil {
		t.Errorf("TCP traceroute = %v %v, want empty", hops, err)
	}
	if _, _, ok := p.Whois(fast.Addr().String()); ok {
		t.Error("TCP Whois should be unavailable")
	}
}
