package probe

import (
	"fmt"

	"octant/internal/geo"
	"octant/internal/netsim"
)

// SimProber adapts a netsim.World to the Prober interface. Nodes are
// addressed by DNS host name (hosts) or IP (any node).
//
// SimProber is safe for concurrent use: the world's topology is immutable
// after NewWorld, its route cache is internally synchronized, and each
// measurement derives its noise from a stateless per-pair RNG.
type SimProber struct {
	World *netsim.World
}

// NewSimProber wraps a simulated world.
func NewSimProber(w *netsim.World) *SimProber { return &SimProber{World: w} }

var _ Prober = (*SimProber)(nil)

// resolve maps a host name or IP to a node ID.
func (p *SimProber) resolve(addr string) (int, error) {
	if n, ok := p.World.HostByName(addr); ok {
		return n.ID, nil
	}
	for _, n := range p.World.Nodes {
		if n.IP == addr {
			return n.ID, nil
		}
	}
	return 0, fmt.Errorf("probe: unknown address %q", addr)
}

// Ping implements Prober. Faults injected into the world surface as
// classified errors: a downed endpoint or blackholed pair is
// ErrUnreachable, an attempt that lost every sample to a lossy pair is
// ErrTimeout — both transient, so RetryProber re-attempts them.
func (p *SimProber) Ping(src, dst string, n int) ([]float64, error) {
	s, err := p.resolve(src)
	if err != nil {
		return nil, err
	}
	d, err := p.resolve(dst)
	if err != nil {
		return nil, err
	}
	if reason := p.World.PathFault(s, d); reason != "" {
		return nil, fmt.Errorf("probe: ping %s→%s %w: %s", src, dst, ErrUnreachable, reason)
	}
	samples := p.World.Ping(s, d, n)
	if len(samples) == 0 {
		return nil, fmt.Errorf("probe: ping %s→%s %w: all probes lost", src, dst, ErrTimeout)
	}
	return samples, nil
}

// Traceroute implements Prober. A downed endpoint or blackholed pair is
// a transient ErrUnreachable; a downed intermediate router is not an
// error — the trace just truncates at the last live hop.
func (p *SimProber) Traceroute(src, dst string) ([]Hop, error) {
	s, err := p.resolve(src)
	if err != nil {
		return nil, err
	}
	d, err := p.resolve(dst)
	if err != nil {
		return nil, err
	}
	if reason := p.World.PathFault(s, d); reason != "" {
		return nil, fmt.Errorf("probe: traceroute %s→%s %w: %s", src, dst, ErrUnreachable, reason)
	}
	simHops := p.World.Traceroute(s, d, 3)
	hops := make([]Hop, len(simHops))
	for i, h := range simHops {
		hops[i] = Hop{Addr: h.IP, Name: h.Name, RTTMs: h.RTTMs}
	}
	return hops, nil
}

// ReverseDNS implements Prober. Hosts addressed by DNS name resolve to
// their reverse name (identical to the forward name unless the world
// synthesized an operator pool name for them); other addresses go
// through the world's IP-indexed reverse table.
func (p *SimProber) ReverseDNS(addr string) string {
	if n, ok := p.World.HostByName(addr); ok {
		return p.World.ReverseName(n.ID)
	}
	return p.World.ReverseDNS(addr)
}

// Whois implements Prober.
func (p *SimProber) Whois(addr string) (geo.Point, string, bool) {
	id, err := p.resolve(addr)
	if err != nil {
		return geo.Point{}, "", false
	}
	rec, ok := p.World.Whois(p.World.Nodes[id].IP)
	if !ok {
		return geo.Point{}, "", false
	}
	return rec.Loc, rec.Zip, true
}
