package probe

import (
	"context"
	"testing"

	"octant/internal/netsim"
)

// recordingCtxProber implements ContextProber and records whether the
// context-aware entry points were used.
type recordingCtxProber struct {
	*SimProber
	pingCtx, trCtx bool
}

func (p *recordingCtxProber) PingContext(ctx context.Context, src, dst string, n int) ([]float64, error) {
	p.pingCtx = true
	return p.Ping(src, dst, n)
}

func (p *recordingCtxProber) TracerouteContext(ctx context.Context, src, dst string) ([]Hop, error) {
	p.trCtx = true
	return p.Traceroute(src, dst)
}

func ctxTestWorld() (*SimProber, string, string) {
	w := netsim.NewWorld(netsim.Config{Seed: 9, Sites: netsim.DefaultSites[:6]})
	hosts := w.HostNodes()
	return NewSimProber(w), hosts[0].Name, hosts[1].Name
}

func TestWithContextPassThrough(t *testing.T) {
	sim, a, b := ctxTestWorld()
	p := WithContext(context.Background(), sim)

	samples, err := p.Ping(a, b, 3)
	if err != nil || len(samples) != 3 {
		t.Fatalf("Ping = %v, %v", samples, err)
	}
	want, _ := sim.Ping(a, b, 3)
	for i := range samples {
		if samples[i] != want[i] {
			t.Errorf("bound Ping diverges from direct: %v != %v", samples[i], want[i])
		}
	}
	if hops, err := p.Traceroute(a, b); err != nil || len(hops) == 0 {
		t.Errorf("Traceroute = %v, %v", hops, err)
	}
	if p.ReverseDNS(a) != sim.ReverseDNS(a) {
		t.Error("ReverseDNS not pass-through")
	}
	gl, gz, gok := p.Whois(a)
	wl, wz, wok := sim.Whois(a)
	if gl != wl || gz != wz || gok != wok {
		t.Error("Whois not pass-through")
	}
}

func TestWithContextCancellation(t *testing.T) {
	sim, a, b := ctxTestWorld()
	ctx, cancel := context.WithCancel(context.Background())
	p := WithContext(ctx, sim)
	cancel()

	if _, err := p.Ping(a, b, 3); err != context.Canceled {
		t.Errorf("Ping after cancel: %v, want context.Canceled", err)
	}
	if _, err := p.Traceroute(a, b); err != context.Canceled {
		t.Errorf("Traceroute after cancel: %v, want context.Canceled", err)
	}
	// Metadata lookups stay available — they are local and cheap.
	if p.ReverseDNS(a) == "" {
		t.Error("ReverseDNS blocked by cancellation")
	}
}

// TestWithContextDelegatesToNative: a ContextProber's own context-aware
// calls are preferred over the between-calls check.
func TestWithContextDelegatesToNative(t *testing.T) {
	sim, a, b := ctxTestWorld()
	rec := &recordingCtxProber{SimProber: sim}
	p := WithContext(context.Background(), rec)
	if _, err := p.Ping(a, b, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Traceroute(a, b); err != nil {
		t.Fatal(err)
	}
	if !rec.pingCtx || !rec.trCtx {
		t.Errorf("native context calls unused: ping %v, traceroute %v", rec.pingCtx, rec.trCtx)
	}
}

// TestWithContextStacks: every bound context is observed — an outer
// application binding keeps cancelling measurements after an inner
// per-request binding is layered on top, and vice versa.
func TestWithContextStacks(t *testing.T) {
	sim, a, b := ctxTestWorld()
	appCtx, cancelApp := context.WithCancel(context.Background())
	p := WithContext(appCtx, sim)               // application binding
	req := WithContext(context.Background(), p) // live per-request binding

	if _, err := req.Ping(a, b, 1); err != nil {
		t.Fatalf("both contexts live: %v", err)
	}
	cancelApp()
	if _, err := req.Ping(a, b, 1); err != context.Canceled {
		t.Errorf("cancelled application context ignored through request binding: %v", err)
	}

	reqCtx, cancelReq := context.WithCancel(context.Background())
	req2 := WithContext(reqCtx, WithContext(context.Background(), sim))
	cancelReq()
	if _, err := req2.Ping(a, b, 1); err != context.Canceled {
		t.Errorf("cancelled request context ignored: %v", err)
	}
}
