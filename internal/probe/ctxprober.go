package probe

import (
	"context"

	"octant/internal/geo"
)

// ContextProber is a Prober whose expensive measurement calls natively
// observe a context: a prober backed by real sockets can abort an
// in-flight measurement the moment the context is cancelled, rather than
// merely declining to start the next one. The metadata lookups
// (ReverseDNS, Whois) stay context-free — they are cheap and local in
// every implementation.
type ContextProber interface {
	Prober
	// PingContext is Ping bounded by ctx.
	PingContext(ctx context.Context, src, dst string, n int) ([]float64, error)
	// TracerouteContext is Traceroute bounded by ctx.
	TracerouteContext(ctx context.Context, src, dst string) ([]Hop, error)
}

// WithContext binds ctx to p: the returned Prober fails Ping and
// Traceroute with ctx's error once the context is done. When p implements
// ContextProber the native context-aware calls are used, so cancellation
// can interrupt a measurement mid-flight; otherwise cancellation is
// enforced between measurement calls, which is where localization spends
// its wall-clock anyway (one Ping per landmark, one Traceroute per
// selected landmark).
//
// Binding an already bound prober stacks: every bound context is
// observed, so a caller-supplied application binding keeps cancelling
// measurements after a per-request binding is layered on top. The batch
// engine binds each request from the Localizer's original prober, so its
// stacks never grow beyond the caller's depth plus one.
func WithContext(ctx context.Context, p Prober) Prober {
	return &boundProber{ctx: ctx, p: p}
}

// boundProber is the WithContext adapter.
type boundProber struct {
	ctx context.Context
	p   Prober
}

var _ Prober = (*boundProber)(nil)

func (b *boundProber) Ping(src, dst string, n int) ([]float64, error) {
	if err := b.ctx.Err(); err != nil {
		return nil, err
	}
	if cp, ok := b.p.(ContextProber); ok {
		return cp.PingContext(b.ctx, src, dst, n)
	}
	return b.p.Ping(src, dst, n)
}

func (b *boundProber) Traceroute(src, dst string) ([]Hop, error) {
	if err := b.ctx.Err(); err != nil {
		return nil, err
	}
	if cp, ok := b.p.(ContextProber); ok {
		return cp.TracerouteContext(b.ctx, src, dst)
	}
	return b.p.Traceroute(src, dst)
}

func (b *boundProber) ReverseDNS(addr string) string { return b.p.ReverseDNS(addr) }

func (b *boundProber) Whois(addr string) (geo.Point, string, bool) { return b.p.Whois(addr) }
