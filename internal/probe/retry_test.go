package probe

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"octant/internal/geo"
	"octant/internal/netsim"
)

// flakyProber fails its first failures calls with err, then succeeds.
type flakyProber struct {
	nilProber
	failures int
	err      error
	calls    int
}

type nilProber struct{}

func (nilProber) Ping(src, dst string, n int) ([]float64, error) { return []float64{1}, nil }
func (nilProber) Traceroute(src, dst string) ([]Hop, error)      { return nil, nil }
func (nilProber) ReverseDNS(addr string) string                  { return "" }
func (nilProber) Whois(addr string) (loc geo.Point, zip string, ok bool) {
	return geo.Point{}, "", false
}

func (f *flakyProber) Ping(src, dst string, n int) ([]float64, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, f.err
	}
	return []float64{42}, nil
}

func TestTransientClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("wrapped: %w", ErrTimeout), true},
		{fmt.Errorf("wrapped: %w", ErrUnreachable), true},
		{context.Canceled, false},
		{fmt.Errorf("op: %w", context.DeadlineExceeded), false},
		{errors.New("unknown address"), false},
		{nil, false},
	} {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestSimProberFaultErrors(t *testing.T) {
	w := netsim.NewWorld(netsim.Config{Seed: 5})
	p := NewSimProber(w)
	hosts := w.HostNodes()
	a, b := hosts[0], hosts[1]

	if _, err := p.Ping(a.Name, b.Name, 4); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}

	// Downed destination: unreachable, transient (it may come back).
	w.SetNodeDown(b.ID, true)
	_, err := p.Ping(a.Name, b.Name, 4)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("ping to downed node: err = %v, want ErrUnreachable", err)
	}
	if !Transient(err) {
		t.Fatal("node-down ping error should classify transient")
	}
	if _, err := p.Traceroute(a.Name, b.Name); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("traceroute to downed node: err = %v, want ErrUnreachable", err)
	}
	w.SetNodeDown(b.ID, false)

	// Blackholed pair: same shape.
	w.SetPairBlackhole(a.ID, b.ID, true)
	if _, err := p.Ping(a.Name, b.Name, 4); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("ping across blackhole: err = %v, want ErrUnreachable", err)
	}
	w.SetPairBlackhole(a.ID, b.ID, false)

	// Total loss: the path is fine but every probe vanishes — a timeout.
	w.SetPairLossRate(a.ID, b.ID, 1.0)
	if _, err := p.Ping(a.Name, b.Name, 4); !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping under total loss: err = %v, want ErrTimeout", err)
	}
	w.SetPairLossRate(a.ID, b.ID, 0)

	if _, err := p.Ping(a.Name, b.Name, 4); err != nil {
		t.Fatalf("ping after clearing faults: %v", err)
	}

	// Unknown address stays permanent.
	if _, err := p.Ping(a.Name, "no-such-host", 4); err == nil || Transient(err) {
		t.Fatalf("unknown address: err = %v, want a permanent error", err)
	}
}

// TestRetryBackoffSchedule drives the retry loop against a fake clock
// and checks the exact wait sequence: base, doubled, capped, and no
// sleep after the final attempt.
func TestRetryBackoffSchedule(t *testing.T) {
	under := &flakyProber{failures: 10, err: fmt.Errorf("probe: %w", ErrTimeout)}
	var slept []time.Duration
	r := WithRetry(under, RetryOptions{
		Attempts:    5,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  25 * time.Millisecond,
		Jitter:      -1, // exact schedule, no spread
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	})
	_, err := r.Ping("a", "b", 4)
	if err == nil || !errors.Is(err, ErrTimeout) {
		t.Fatalf("exhausted retry: err = %v, want wrapped ErrTimeout", err)
	}
	want := []time.Duration{
		10 * time.Millisecond, // base
		20 * time.Millisecond, // doubled
		25 * time.Millisecond, // capped
		25 * time.Millisecond, // stays capped; none after the last attempt
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(slept), slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v", i, slept[i], want[i])
		}
	}
	st := r.Stats()
	if st.Attempts != 5 || st.Retries != 4 || st.Exhausted != 1 {
		t.Errorf("stats = %+v, want 5 attempts / 4 retries / 1 exhausted", st)
	}
}

func TestRetryJitterSpread(t *testing.T) {
	under := &flakyProber{failures: 1, err: fmt.Errorf("probe: %w", ErrTimeout)}
	var slept []time.Duration
	r := WithRetry(under, RetryOptions{
		Attempts:    2,
		BaseBackoff: 100 * time.Millisecond,
		Jitter:      0.5,
		rand:        func() float64 { return 1 }, // top of the jitter band
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	})
	if _, err := r.Ping("a", "b", 4); err != nil {
		t.Fatalf("second attempt should have succeeded: %v", err)
	}
	if len(slept) != 1 || slept[0] != 150*time.Millisecond {
		t.Fatalf("jittered backoff = %v, want [150ms]", slept)
	}
}

func TestRetryRecoversWithinBudget(t *testing.T) {
	under := &flakyProber{failures: 2, err: fmt.Errorf("probe: %w", ErrUnreachable)}
	r := WithRetry(under, RetryOptions{
		Attempts: 3,
		sleep:    func(ctx context.Context, d time.Duration) error { return nil },
	})
	out, err := r.Ping("a", "b", 4)
	if err != nil || len(out) != 1 || out[0] != 42 {
		t.Fatalf("Ping = %v, %v; want the third attempt's samples", out, err)
	}
	if st := r.Stats(); st.Attempts != 3 || st.Retries != 2 || st.Exhausted != 0 {
		t.Errorf("stats = %+v, want 3 attempts / 2 retries / 0 exhausted", st)
	}
}

func TestRetryPermanentErrorStops(t *testing.T) {
	under := &flakyProber{failures: 10, err: errors.New("unknown host")}
	r := WithRetry(under, RetryOptions{
		Attempts: 5,
		sleep: func(ctx context.Context, d time.Duration) error {
			t.Fatal("permanent error must not back off")
			return nil
		},
	})
	if _, err := r.Ping("a", "b", 4); err == nil {
		t.Fatal("want the permanent error back")
	}
	if under.calls != 1 {
		t.Fatalf("underlying prober called %d times, want 1", under.calls)
	}
}

func TestRetryCancelledMidBackoff(t *testing.T) {
	under := &flakyProber{failures: 10, err: fmt.Errorf("probe: %w", ErrTimeout)}
	ctx, cancel := context.WithCancel(context.Background())
	r := WithRetry(under, RetryOptions{
		Attempts: 5,
		sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the caller walks away while we wait
			return ctx.Err()
		},
	})
	_, err := r.PingContext(ctx, "a", "b", 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if under.calls != 1 {
		t.Fatalf("underlying prober called %d times after cancel, want 1", under.calls)
	}
	// And a context already dead never reaches the prober at all.
	under2 := &flakyProber{}
	r2 := WithRetry(under2, RetryOptions{Attempts: 3})
	if _, err := r2.PingContext(ctx, "a", "b", 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context ping: err = %v, want context.Canceled", err)
	}
	if under2.calls != 0 {
		t.Fatalf("dead context still reached the prober %d times", under2.calls)
	}
}

// TestRetryAttemptTimeoutReclassified: a blown per-attempt deadline is a
// transient probe timeout (retry), while the caller's own deadline stays
// permanent (stop).
func TestRetryAttemptTimeoutReclassified(t *testing.T) {
	under := &slowProber{delay: 50 * time.Millisecond}
	r := WithRetry(under, RetryOptions{
		Attempts:       2,
		AttemptTimeout: 5 * time.Millisecond,
		sleep:          func(ctx context.Context, d time.Duration) error { return nil },
	})
	_, err := r.PingContext(context.Background(), "a", "b", 4)
	if err == nil || !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want reclassified ErrTimeout", err)
	}
	if under.calls != 2 {
		t.Fatalf("attempt-timeout failures retried %d times, want 2 attempts", under.calls)
	}
}

// slowProber blocks until its context dies.
type slowProber struct {
	flakyProber
	delay time.Duration
	calls int
}

func (s *slowProber) PingContext(ctx context.Context, src, dst string, n int) ([]float64, error) {
	s.calls++
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(s.delay):
		return []float64{1}, nil
	}
}

func (s *slowProber) TracerouteContext(ctx context.Context, src, dst string) ([]Hop, error) {
	return nil, ctx.Err()
}
