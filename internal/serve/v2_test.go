package serve

import (
	"bufio"
	"encoding/json"
	"testing"
)

// TestV2NoOptionsMatchesV1: an empty v2 request is exactly a v1 request
// plus the epoch field — same point, area, constraint count.
func TestV2NoOptionsMatchesV1(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.Handler()
	tgt := s.targets[1]

	rec := postJSON(t, h, "/v2/localize", map[string]any{"target": tgt})
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var v2 TargetResultV2
	if err := json.Unmarshal(rec.Body.Bytes(), &v2); err != nil {
		t.Fatal(err)
	}
	want := s.seq[tgt]
	if v2.Lat == nil || *v2.Lat != want.Point.Lat || *v2.Lon != want.Point.Lon {
		t.Errorf("v2 point (%v,%v) != sequential %v", v2.Lat, v2.Lon, want.Point)
	}
	if v2.AreaKm2 != want.AreaKm2 || v2.Constraints != len(want.Constraints) {
		t.Errorf("v2 area/constraints %v/%d != %v/%d", v2.AreaKm2, v2.Constraints, want.AreaKm2, len(want.Constraints))
	}
	if v2.Provenance != nil {
		t.Error("no-options v2 response carries provenance")
	}
	if v2.Epoch != s.srv.Manager().Current().Number() {
		t.Errorf("epoch %d, want %d", v2.Epoch, s.srv.Manager().Current().Number())
	}
}

// TestV2OptionsApplied: explain returns per-source provenance; disabling
// the router source changes the constraint count.
func TestV2OptionsApplied(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.Handler()
	tgt := s.targets[2]

	rec := postJSON(t, h, "/v2/localize", map[string]any{
		"target":  tgt,
		"options": map[string]any{"explain": true},
	})
	if rec.Code != 200 {
		t.Fatalf("explain status %d: %s", rec.Code, rec.Body)
	}
	var full TargetResultV2
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if full.Provenance == nil || len(full.Provenance.Sources) == 0 {
		t.Fatal("explain response has no provenance")
	}
	if full.Provenance.TotalConstraints != full.Constraints {
		t.Errorf("provenance total %d != constraints %d", full.Provenance.TotalConstraints, full.Constraints)
	}
	nRouter := 0
	for _, rep := range full.Provenance.Sources {
		if rep.Source == "router" {
			nRouter = rep.Constraints
		}
	}

	rec = postJSON(t, h, "/v2/localize", map[string]any{
		"target":  tgt,
		"options": map[string]any{"disable": []string{"router"}},
	})
	if rec.Code != 200 {
		t.Fatalf("disable status %d: %s", rec.Code, rec.Body)
	}
	var noRouter TargetResultV2
	if err := json.Unmarshal(rec.Body.Bytes(), &noRouter); err != nil {
		t.Fatal(err)
	}
	if nRouter > 0 && noRouter.Constraints != full.Constraints-nRouter {
		t.Errorf("router-disabled constraints %d, want %d", noRouter.Constraints, full.Constraints-nRouter)
	}
}

// TestV2Validation: malformed options must 400 with a useful message.
func TestV2Validation(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.Handler()
	tgt := s.targets[0]

	cases := []map[string]any{
		{"target": tgt, "options": map[string]any{"disable": []string{"sonar"}}},
		{"target": tgt, "options": map[string]any{"weights": map[string]float64{"router": -1}}},
		{"target": tgt, "options": map[string]any{"weights": map[string]float64{"sonar": 1}}},
		{"target": tgt, "options": map[string]any{"min_area_km2": -5}},
		{"target": tgt, "options": map[string]any{"neg_height_percentile": 150}},
		{"target": tgt, "options": map[string]any{"hints": []map[string]any{{"lat": 200, "lon": 0}}}},
		{"options": map[string]any{}},
		// Misspelled option keys must 400 (DisallowUnknownFields), not
		// silently run — and cache — the request under server defaults.
		{"target": tgt, "options": map[string]any{"weight": map[string]float64{"router": 0.5}}},
		{"target": tgt, "options": map[string]any{"min_area_km": 1000}},
	}
	for i, body := range cases {
		if rec := postJSON(t, h, "/v2/localize", body); rec.Code != 400 {
			t.Errorf("case %d: status %d, want 400 (%s)", i, rec.Code, rec.Body)
		}
	}
}

// TestV2BatchStream: batch options apply to every line of the stream.
func TestV2BatchStream(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.Handler()
	targets := s.targets[:4]

	rec := postJSON(t, h, "/v2/localize/batch", map[string]any{
		"targets": targets,
		"options": map[string]any{"explain": true},
	})
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	seen := 0
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var tr TargetResultV2
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if tr.Error != "" {
			t.Fatalf("%s: %s", tr.Target, tr.Error)
		}
		if tr.Provenance == nil || len(tr.Provenance.Sources) == 0 {
			t.Errorf("%s: batch explain line has no provenance", tr.Target)
		}
		seen++
	}
	if seen != len(targets) {
		t.Errorf("streamed %d lines, want %d", seen, len(targets))
	}

	// Hints flow through the batch body too: an oracle hint at the
	// true location must add one constraint per target.
	var base TargetResultV2
	rec = postJSON(t, h, "/v2/localize", map[string]any{"target": targets[0]})
	if err := json.Unmarshal(rec.Body.Bytes(), &base); err != nil {
		t.Fatal(err)
	}
	node, ok := s.world.HostByName(targets[0])
	if !ok {
		t.Fatalf("no such host %s", targets[0])
	}
	rec = postJSON(t, h, "/v2/localize/batch", map[string]any{
		"targets": targets[:1],
		"options": map[string]any{
			"hints": []map[string]any{{"lat": node.Loc.Lat, "lon": node.Loc.Lon, "label": "oracle"}},
		},
	})
	sc = bufio.NewScanner(rec.Body)
	if !sc.Scan() {
		t.Fatal("no batch line")
	}
	var hinted TargetResultV2
	if err := json.Unmarshal(sc.Bytes(), &hinted); err != nil {
		t.Fatal(err)
	}
	if hinted.Constraints != base.Constraints+1 {
		t.Errorf("hinted constraints %d, want %d", hinted.Constraints, base.Constraints+1)
	}
}

// TestV1CacheSharedWithDefaultV2: the v1 adapter and a default-options
// v2 request are the same request — the second must be a cache hit of
// the first.
func TestV1CacheSharedWithDefaultV2(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.Handler()
	tgt := s.targets[3]

	if rec := postJSON(t, h, "/v1/localize", map[string]string{"target": tgt}); rec.Code != 200 {
		t.Fatalf("v1 status %d", rec.Code)
	}
	rec := postJSON(t, h, "/v2/localize", map[string]any{"target": tgt})
	var v2 TargetResultV2
	if err := json.Unmarshal(rec.Body.Bytes(), &v2); err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Error("default v2 request after v1 request was not a cache hit")
	}

	// An options-qualified v2 request must NOT be served from that entry.
	rec = postJSON(t, h, "/v2/localize", map[string]any{
		"target":  tgt,
		"options": map[string]any{"disable": []string{"router"}},
	})
	var tuned TargetResultV2
	if err := json.Unmarshal(rec.Body.Bytes(), &tuned); err != nil {
		t.Fatal(err)
	}
	if tuned.Cached {
		t.Error("options-qualified request hit the default cache entry")
	}
}
