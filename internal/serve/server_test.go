package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/lifecycle"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// testServer builds a serve stack over the simulated world with the first
// 32 hosts held out as targets, mirroring what octant-serve wires up.
type testStack struct {
	srv     *Server
	world   *netsim.World
	targets []string
	seq     map[string]*core.Result // sequential ground truth per target
}

var (
	stackOnce sync.Once
	stack     testStack
	stackErr  error
)

// buildStack wires a full serve stack (prober → survey → lifecycle →
// engine → server) over a fresh simulated world.
func buildStack(seed uint64, holdout int) (testStack, error) {
	prober, landmarks, err := BuildProber("sim", seed, holdout, "")
	if err != nil {
		return testStack{}, err
	}
	world := prober.(*probe.SimProber).World
	targets := make([]string, 0, holdout)
	for _, h := range world.HostNodes()[:holdout] {
		targets = append(targets, h.Name)
	}
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{UseHeights: true})
	if err != nil {
		return testStack{}, err
	}
	manager := lifecycle.New(prober, survey, core.Config{}, lifecycle.Options{})
	seq := make(map[string]*core.Result, len(targets))
	loc := manager.CurrentLocalizer()
	for _, tgt := range targets {
		res, err := loc.Localize(tgt)
		if err != nil {
			return testStack{}, err
		}
		seq[tgt] = res
	}
	engine := batch.NewWithProvider(manager, batch.Options{Workers: 8})
	srv := New(engine, manager, Options{MaxBatch: 256})
	return testStack{srv: srv, world: world, targets: targets, seq: seq}, nil
}

func sharedStack(t *testing.T) testStack {
	t.Helper()
	stackOnce.Do(func() { stack, stackErr = buildStack(3, 32) })
	if stackErr != nil {
		t.Fatal(stackErr)
	}
	return stack
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestBatchEndpointEndToEnd drives POST /v1/localize/batch with all 32
// held-out targets and checks every NDJSON line against the sequential
// Localize ground truth.
func TestBatchEndpointEndToEnd(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.Handler()

	rec := postJSON(t, h, "/v1/localize/batch", map[string]any{"targets": s.targets})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	seen := make(map[string]bool)
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var tr TargetResult
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if tr.Error != "" {
			t.Fatalf("%s: %s", tr.Target, tr.Error)
		}
		want, ok := s.seq[tr.Target]
		if !ok {
			t.Fatalf("unrequested target %q in response", tr.Target)
		}
		if seen[tr.Target] {
			t.Fatalf("target %q answered twice", tr.Target)
		}
		seen[tr.Target] = true
		if tr.Lat == nil || tr.Lon == nil {
			t.Fatalf("%s: missing point", tr.Target)
		}
		if *tr.Lat != want.Point.Lat || *tr.Lon != want.Point.Lon {
			t.Errorf("%s: served (%v,%v) != sequential %v", tr.Target, *tr.Lat, *tr.Lon, want.Point)
		}
		if tr.AreaKm2 != want.AreaKm2 {
			t.Errorf("%s: area %v != %v", tr.Target, tr.AreaKm2, want.AreaKm2)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(s.targets) {
		t.Errorf("answered %d of %d targets", len(seen), len(s.targets))
	}
}

func TestSingleLocalizeAndCacheFlag(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.Handler()
	tgt := s.targets[0]

	var trs [2]TargetResult
	for i := range trs {
		rec := postJSON(t, h, "/v1/localize", map[string]string{"target": tgt})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &trs[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := s.seq[tgt]
	for i, tr := range trs {
		if tr.Lat == nil || *tr.Lat != want.Point.Lat {
			t.Errorf("call %d: wrong point", i)
		}
	}
	// The batch endpoint already localized every target, so this is a hit
	// both times.
	if !trs[0].Cached || !trs[1].Cached {
		t.Errorf("expected cached repeats, got %v / %v", trs[0].Cached, trs[1].Cached)
	}
}

func TestValidationErrors(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.Handler()

	if rec := postJSON(t, h, "/v1/localize", map[string]string{}); rec.Code != http.StatusBadRequest {
		t.Errorf("missing target: status %d", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/localize", map[string]string{"target": "no.such.host"}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown target: status %d", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/localize/batch", map[string]any{"targets": []string{}}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", rec.Code)
	}
	big := make([]string, 257)
	for i := range big {
		big[i] = "x"
	}
	if rec := postJSON(t, h, "/v1/localize/batch", map[string]any{"targets": big}); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/localize", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET localize: status %d", rec.Code)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := sharedStack(t)
	h := s.srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var hz struct {
		Status    string `json:"status"`
		Landmarks int    `json:"landmarks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Landmarks != s.srv.Manager().Current().Survey.N() {
		t.Errorf("healthz = %+v", hz)
	}

	// A multi-target batch through the HTTP surface is one fused group;
	// /v1/stats must report it.
	if rec := postJSON(t, h, "/v2/localize/batch", map[string]any{"targets": s.targets[:2]}); rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var st batch.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 {
		t.Error("stats report zero requests after traffic")
	}
	if st.FusedGroups == 0 || st.FusedTargets < 2 {
		t.Errorf("stats report no fused traffic after a batch (%d groups, %d targets)",
			st.FusedGroups, st.FusedTargets)
	}
	if st.Workers != 8 {
		t.Errorf("workers = %d, want 8", st.Workers)
	}
	if st.CacheHits+st.CacheMisses > 0 && st.CacheHitRatio == 0 && st.CacheHits > 0 {
		t.Error("cache_hit_ratio not derived from hits/misses")
	}
	if st.LandMasks.Misses == 0 {
		t.Error("stats report no land-mask masters built after localizations")
	}
	if st.LandMasks.Hits == 0 {
		t.Error("stats report no land-mask reuse across localizations")
	}
}

// TestReadyzLifecycle verifies readiness flips with draining while
// liveness stays green.
func TestReadyzLifecycle(t *testing.T) {
	s, err := buildStack(17, 40)
	if err != nil {
		t.Fatal(err)
	}
	h := s.srv.Handler()

	get := func(path string) (*httptest.ResponseRecorder, Readiness) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		var rd Readiness
		_ = json.Unmarshal(rec.Body.Bytes(), &rd)
		return rec, rd
	}

	rec, rd := get("/v1/readyz")
	if rec.Code != http.StatusOK || !rd.Ready {
		t.Fatalf("fresh node not ready: %d %+v", rec.Code, rd)
	}

	s.srv.SetDraining(true)
	rec, rd = get("/v1/readyz")
	if rec.Code != http.StatusServiceUnavailable || rd.Ready || rd.Reason != "draining" {
		t.Errorf("draining node still ready: %d %+v", rec.Code, rd)
	}
	// Liveness must stay green while draining: the process is healthy, it
	// just should not receive new routed work.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz failed while draining: %d", rec.Code)
	}
	s.srv.SetDraining(false)
	rec, rd = get("/v1/readyz")
	if rec.Code != http.StatusOK || !rd.Ready {
		t.Errorf("node not ready after drain cleared: %d %+v", rec.Code, rd)
	}
}

// TestPprofGating verifies /debug/pprof/ is served only behind the -pprof
// flag.
func TestPprofGating(t *testing.T) {
	s := sharedStack(t)

	rec := httptest.NewRecorder()
	s.srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", rec.Code)
	}

	enabled := New(s.srv.Engine(), s.srv.Manager(), Options{MaxBatch: 256, Pprof: true})
	rec = httptest.NewRecorder()
	enabled.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: status %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	enabled.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d, want 200", rec.Code)
	}
}

func TestLoadLandmarksParsing(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/lm.csv"
	csv := strings.Join([]string{
		"# comment",
		"host-a:80, Site A, 42.44, -76.50",
		"host-b:80, Site B, 40.71, -74.01",
		"host-c:80, Site C, 37.77, -122.42",
		"",
	}, "\n")
	if err := writeFile(path, csv); err != nil {
		t.Fatal(err)
	}
	lms, err := LoadLandmarks(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) != 3 || lms[0].Addr != "host-a:80" || lms[2].Loc.Lon != -122.42 {
		t.Errorf("parsed %+v", lms)
	}
	if err := writeFile(path, "one,two,three\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLandmarks(path); err == nil {
		t.Error("malformed line should error")
	}
	dupName := "a:80, Site X, 1, 2\nb:80, Site X, 3, 4\nc:80, Site Z, 5, 6\n"
	if err := writeFile(path, dupName); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLandmarks(path); err == nil {
		t.Error("duplicate landmark name should error (names address scoped refreshes)")
	}
	dupAddr := "a:80, Site X, 1, 2\na:80, Site Y, 3, 4\nc:80, Site Z, 5, 6\n"
	if err := writeFile(path, dupAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLandmarks(path); err == nil {
		t.Error("duplicate landmark address should error")
	}
}

// writeFile is a tiny helper so the parsing test reads naturally.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestSurveyRefreshEndpoints drives the admin surface on its own stack
// (epoch swaps would invalidate the shared stack's ground truth): a
// refresh with no drift publishes nothing, a refresh after injected RTT
// drift hot-swaps epoch 1 under the same engine, and /v1/survey +
// /v1/stats report the progression.
func TestSurveyRefreshEndpoints(t *testing.T) {
	s, err := buildStack(11, 40)
	if err != nil {
		t.Fatal(err)
	}
	h := s.srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/survey", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("survey status %d: %s", rec.Code, rec.Body)
	}
	var sv lifecycle.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Epoch != 0 || sv.Landmarks == 0 {
		t.Errorf("initial survey view = %+v", sv)
	}

	// Stable world: refresh must not publish.
	rec = postJSON(t, h, "/v1/survey/refresh", map[string]any{})
	if rec.Code != http.StatusOK {
		t.Fatalf("refresh status %d: %s", rec.Code, rec.Body)
	}
	var rep lifecycle.RefreshReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Swapped || rep.Epoch != 0 {
		t.Errorf("no-drift refresh = %+v", rep)
	}

	// Drift one landmark pair beyond tolerance and refresh again.
	survey := s.srv.Manager().Current().Survey
	a, _ := s.world.HostByName(survey.Landmarks[0].Addr)
	b, _ := s.world.HostByName(survey.Landmarks[1].Addr)
	s.world.SetPairDriftMs(a.ID, b.ID, 25)
	rec = postJSON(t, h, "/v1/survey/refresh", map[string]any{})
	if rec.Code != http.StatusOK {
		t.Fatalf("refresh status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Swapped || rep.Epoch != 1 || len(rep.DirtyLandmarks) != 2 {
		t.Errorf("drift refresh = %+v", rep)
	}

	// Unknown landmark names in a scoped refresh are rejected.
	if rec := postJSON(t, h, "/v1/survey/refresh", map[string]any{"landmarks": []string{"no-such"}}); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown landmark: status %d", rec.Code)
	}

	// The engine serves the new epoch.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st batch.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Errorf("engine epoch = %d, want 1", st.Epoch)
	}
}

// TestSnapshotInstallActivate drives the cluster coordination surface on
// one node pair: pull a snapshot from a source stack that has advanced an
// epoch, install it on a second stack, activate, and verify the replica
// serves the pushed epoch without having probed for it.
func TestSnapshotInstallActivate(t *testing.T) {
	src, err := buildStack(19, 40)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := buildStack(19, 40)
	if err != nil {
		t.Fatal(err)
	}
	hs, hd := src.srv.Handler(), dst.srv.Handler()

	// Advance the source to epoch 1 via injected drift.
	survey := src.srv.Manager().Current().Survey
	a, _ := src.world.HostByName(survey.Landmarks[0].Addr)
	b, _ := src.world.HostByName(survey.Landmarks[1].Addr)
	src.world.SetPairDriftMs(a.ID, b.ID, 25)
	if rec := postJSON(t, hs, "/v1/survey/refresh", map[string]any{}); rec.Code != http.StatusOK {
		t.Fatalf("refresh: %d %s", rec.Code, rec.Body)
	}

	// Pull the snapshot.
	rec := httptest.NewRecorder()
	hs.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/survey/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Octant-Epoch"); got != "1" {
		t.Errorf("snapshot epoch header = %q, want 1", got)
	}
	snap := rec.Body.Bytes()

	// Install on the replica: staged, not yet serving.
	rec = httptest.NewRecorder()
	hd.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/survey/install", bytes.NewReader(snap)))
	if rec.Code != http.StatusOK {
		t.Fatalf("install: %d %s", rec.Code, rec.Body)
	}
	var inst struct {
		Staged  uint64 `json:"staged_epoch"`
		Serving uint64 `json:"serving_epoch"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &inst); err != nil {
		t.Fatal(err)
	}
	if inst.Staged != 1 || inst.Serving != 0 {
		t.Errorf("install = %+v, want staged 1 serving 0", inst)
	}
	before := dst.world.PingCalls()

	// Activate: the replica swaps to the staged epoch.
	rec = postJSON(t, hd, "/v1/survey/activate", map[string]any{})
	if rec.Code != http.StatusOK {
		t.Fatalf("activate: %d %s", rec.Code, rec.Body)
	}
	var act struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &act); err != nil {
		t.Fatal(err)
	}
	if act.Epoch != 1 {
		t.Errorf("activated epoch %d, want 1", act.Epoch)
	}
	if got := dst.world.PingCalls() - before; got != 0 {
		t.Errorf("install+activate issued %d probes, want 0 (probe-free rollout)", got)
	}
	rec = httptest.NewRecorder()
	hd.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st batch.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Errorf("replica engine epoch %d, want 1", st.Epoch)
	}

	// A second activate with nothing staged is a conflict.
	if rec := postJSON(t, hd, "/v1/survey/activate", map[string]any{}); rec.Code != http.StatusConflict {
		t.Errorf("re-activate: %d, want 409", rec.Code)
	}
	// Re-installing the now-serving epoch is a conflict (epoch must advance).
	rec = httptest.NewRecorder()
	hd.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/survey/install", bytes.NewReader(snap)))
	if rec.Code != http.StatusConflict {
		t.Errorf("stale install: %d, want 409", rec.Code)
	}
}

// TestCacheLookupEndpoint verifies the peer-cache surface: a result this
// node computed is served by key, a cold key 404s, and lookups never
// trigger measurements.
func TestCacheLookupEndpoint(t *testing.T) {
	s, err := buildStack(23, 40)
	if err != nil {
		t.Fatal(err)
	}
	h := s.srv.Handler()
	tgt := s.world.HostNodes()[0].Name

	// Warm the cache through the normal path.
	if rec := postJSON(t, h, "/v1/localize", map[string]string{"target": tgt}); rec.Code != http.StatusOK {
		t.Fatalf("localize: %d %s", rec.Code, rec.Body)
	}
	before := s.world.PingCalls()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cache/lookup?target="+tgt+"&epoch=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("warm lookup: %d %s", rec.Code, rec.Body)
	}
	var tr TargetResultV2
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Target != tgt || !tr.Cached || tr.Lat == nil {
		t.Errorf("lookup = %+v", tr)
	}
	if tr.Epoch != 0 {
		t.Errorf("lookup epoch = %d, want 0", tr.Epoch)
	}

	// Cold key: miss, no side effects.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cache/lookup?target="+s.world.HostNodes()[1].Name+"&epoch=0", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("cold lookup: %d, want 404", rec.Code)
	}
	// Wrong epoch: miss.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/cache/lookup?target="+tgt+"&epoch=7", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("future-epoch lookup: %d, want 404", rec.Code)
	}
	if got := s.world.PingCalls() - before; got != 0 {
		t.Errorf("cache lookups issued %d probes, want 0", got)
	}
}

// TestWarmStartSkipsProbing is the daemon-level acceptance check for
// -survey-snapshot: with a snapshot on disk, startup issues zero
// landmark probes and serves the persisted epoch.
func TestWarmStartSkipsProbing(t *testing.T) {
	prober, landmarks, err := BuildProber("sim", 13, 45, "")
	if err != nil {
		t.Fatal(err)
	}
	world := prober.(*probe.SimProber).World
	path := t.TempDir() + "/survey.json"

	// Cold path: no file yet → probes the mesh and seeds the snapshot.
	cold, err := LoadOrProbeSurvey(prober, landmarks, 10, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cold start did not seed the snapshot: %v", err)
	}

	before := world.PingCalls()
	warm, err := LoadOrProbeSurvey(prober, landmarks, 10, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := world.PingCalls() - before; got != 0 {
		t.Errorf("warm start issued %d landmark probes, want 0", got)
	}
	if warm.N() != cold.N() || warm.Epoch != cold.Epoch || warm.Kappa != cold.Kappa {
		t.Errorf("warm survey differs: n %d/%d κ %v/%v", warm.N(), cold.N(), warm.Kappa, cold.Kappa)
	}
	// A corrupt snapshot must fail loudly, not silently reprobe.
	if err := writeFile(path, "{"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrProbeSurvey(prober, landmarks, 10, path); err == nil {
		t.Error("corrupt snapshot silently ignored")
	}
	// So must a snapshot for a different landmark set: the flags, not
	// the stale file, define the mesh.
	if err := cold.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrProbeSurvey(prober, landmarks[1:], 10, path); err == nil {
		t.Error("snapshot with mismatched landmark set silently served")
	}
	renamed := append([]core.Landmark(nil), landmarks...)
	renamed[0].Name = "someone-else"
	if _, err := LoadOrProbeSurvey(prober, renamed, 10, path); err == nil {
		t.Error("snapshot with renamed landmark silently served")
	}
	// …and so must a probe-count mismatch: min-of-n baselines are only
	// drift-comparable at the same n.
	if _, err := LoadOrProbeSurvey(prober, landmarks, 30, path); err == nil {
		t.Error("snapshot with different probe count silently served")
	}
}

// delayProber slows Ping so a localization is reliably in flight when
// shutdown starts.
type delayProber struct {
	probe.Prober
	d time.Duration
}

func (p delayProber) Ping(src, dst string, n int) ([]float64, error) {
	time.Sleep(p.d)
	return p.Prober.Ping(src, dst, n)
}

// TestGracefulShutdownDrains starts a real listener, gets a localization
// in flight, triggers shutdown, and requires the in-flight request to
// complete successfully while new connections are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	prober, landmarks, err := BuildProber("sim", 5, 45, "")
	if err != nil {
		t.Fatal(err)
	}
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	slow := delayProber{Prober: prober, d: 4 * time.Millisecond}
	manager := lifecycle.New(slow, survey, core.Config{}, lifecycle.Options{})
	engine := batch.NewWithProvider(manager, batch.Options{Workers: 2})
	srv := New(engine, manager, Options{MaxBatch: 16})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- ServeUntilShutdown(ctx, &http.Server{Handler: srv.Handler()}, ln, 10*time.Second)
	}()

	target := prober.(*probe.SimProber).World.HostNodes()[0].Name
	url := fmt.Sprintf("http://%s/v1/localize", ln.Addr())
	resc := make(chan error, 1)
	go func() {
		resp, err := http.Post(url, "application/json",
			strings.NewReader(fmt.Sprintf(`{"target": %q}`, target)))
		if err != nil {
			resc <- err
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			resc <- fmt.Errorf("in-flight request: status %d: %s", resp.StatusCode, body)
			return
		}
		resc <- nil
	}()

	// Let the request get measuring (≥ 3 landmarks × 4 ms each), then
	// pull the plug.
	time.Sleep(20 * time.Millisecond)
	cancel()

	if err := <-resc; err != nil {
		t.Errorf("in-flight request not drained: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serveUntilShutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilShutdown did not return")
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", ln.Addr())); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
