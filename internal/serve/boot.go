package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"octant/internal/core"
	"octant/internal/geo"
	"octant/internal/netsim"
	"octant/internal/probe"
)

// Bootstrap helpers shared by cmd/octant-serve and the cluster tier's
// local fleets: prober/landmark assembly, warm-start snapshot loading,
// and the drain-on-shutdown serving loop.

// ServeUntilShutdown serves httpSrv on ln until ctx is cancelled, then
// drains: the listener closes immediately, in-flight requests (batch
// streams included) get up to grace to complete, and only then does the
// function return. A nil return means every accepted request finished.
func ServeUntilShutdown(ctx context.Context, httpSrv *http.Server, ln net.Listener, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before any shutdown was requested
	case <-ctx.Done():
	}
	shCtx := context.Background()
	if grace > 0 {
		var cancel context.CancelFunc
		shCtx, cancel = context.WithTimeout(shCtx, grace)
		defer cancel()
	}
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// LoadOrProbeSurvey starts warm from an existing snapshot when one is
// available, otherwise probes the full landmark mesh and seeds the
// snapshot file if a path was given (the lifecycle manager rewrites it
// on every recalibrated epoch).
func LoadOrProbeSurvey(prober probe.Prober, landmarks []core.Landmark, probes int, snapshot string) (*core.Survey, error) {
	if snapshot != "" {
		switch _, err := os.Stat(snapshot); {
		case err == nil:
			survey, err := core.LoadSnapshotFile(snapshot)
			if err != nil {
				return nil, fmt.Errorf("%s exists but is unusable (%w); move it aside to reprobe", snapshot, err)
			}
			// A snapshot silently overriding the configured landmark set
			// would make the -seed/-holdout/-landmarks flags dead and the
			// calibrations wrong for the mesh the operator asked for.
			if err := landmarksMatch(survey.Landmarks, landmarks); err != nil {
				return nil, fmt.Errorf("%s does not match the configured landmark set (%w); move it aside to reprobe", snapshot, err)
			}
			// Min-of-n RTTs are only comparable at the same n: a probe
			// count mismatch would bias every later drift comparison.
			if survey.Probes != probes {
				return nil, fmt.Errorf("%s was measured with -probes %d, configuration says %d; move it aside to reprobe", snapshot, survey.Probes, probes)
			}
			log.Printf("warm start from %s: epoch %d, %d landmarks, no probing (κ=%.2f)",
				snapshot, survey.Epoch, survey.N(), survey.Kappa)
			return survey, nil
		case !errors.Is(err, fs.ErrNotExist):
			// Permission or I/O trouble is a misconfiguration to surface,
			// not a license to reprobe on every restart.
			return nil, fmt.Errorf("checking snapshot %s: %w", snapshot, err)
		}
	}
	log.Printf("surveying %d landmarks (O(n²) pings + calibration)…", len(landmarks))
	start := time.Now()
	survey, err := core.NewSurvey(prober, landmarks, core.SurveyOpts{Probes: probes, UseHeights: true})
	if err != nil {
		return nil, err
	}
	log.Printf("survey ready in %v (κ=%.2f)", time.Since(start).Round(time.Millisecond), survey.Kappa)
	if snapshot != "" {
		if err := survey.SaveSnapshotFile(snapshot); err != nil {
			return nil, fmt.Errorf("seeding snapshot: %w", err)
		}
		log.Printf("seeded snapshot %s", snapshot)
	}
	return survey, nil
}

// landmarksMatch reports whether a snapshot's landmark set is exactly the
// configured one (same order, addresses, names, positions).
func landmarksMatch(snap, cfg []core.Landmark) error {
	if len(snap) != len(cfg) {
		return fmt.Errorf("snapshot has %d landmarks, configuration has %d", len(snap), len(cfg))
	}
	for i := range snap {
		if snap[i] != cfg[i] {
			return fmt.Errorf("landmark %d is %s (%s), configuration says %s (%s)",
				i, snap[i].Name, snap[i].Addr, cfg[i].Name, cfg[i].Addr)
		}
	}
	return nil
}

// BuildProber assembles the measurement source and its landmark set.
// kind is "sim" (a netsim world derived from seed, with the first
// holdout hosts excluded from the survey so they stay localizable
// targets) or "tcp" (handshake probing against a landmark CSV).
func BuildProber(kind string, seed uint64, holdout int, lmFile string) (probe.Prober, []core.Landmark, error) {
	switch kind {
	case "sim":
		world := netsim.NewWorld(netsim.Config{Seed: seed})
		hosts := world.HostNodes()
		if holdout < 0 || holdout > len(hosts)-3 {
			return nil, nil, fmt.Errorf("holdout %d leaves fewer than 3 landmarks", holdout)
		}
		var landmarks []core.Landmark
		for _, h := range hosts[holdout:] {
			landmarks = append(landmarks, core.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
		}
		return probe.NewSimProber(world), landmarks, nil
	case "tcp":
		if lmFile == "" {
			return nil, nil, fmt.Errorf("-prober tcp requires -landmarks")
		}
		landmarks, err := LoadLandmarks(lmFile)
		if err != nil {
			return nil, nil, err
		}
		return probe.NewTCPProber(), landmarks, nil
	default:
		return nil, nil, fmt.Errorf("unknown prober %q (want sim|tcp)", kind)
	}
}

// LoadLandmarks parses "addr,name,lat,lon" lines ('#' comments allowed).
func LoadLandmarks(path string) ([]core.Landmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []core.Landmark
	seenName := make(map[string]int)
	seenAddr := make(map[string]int)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("%s:%d: want addr,name,lat,lon", path, ln+1)
		}
		lat, err1 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		lon, err2 := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: bad coordinates", path, ln+1)
		}
		lm := core.Landmark{
			Addr: strings.TrimSpace(parts[0]),
			Name: strings.TrimSpace(parts[1]),
			Loc:  geo.Pt(lat, lon),
		}
		// Names address landmarks in the admin API (scoped refresh) and
		// addresses identify probe endpoints; ambiguity in either would
		// silently misdirect recalibration.
		if prev, ok := seenName[lm.Name]; ok {
			return nil, fmt.Errorf("%s:%d: duplicate landmark name %q (first at line %d)", path, ln+1, lm.Name, prev)
		}
		if prev, ok := seenAddr[lm.Addr]; ok {
			return nil, fmt.Errorf("%s:%d: duplicate landmark address %q (first at line %d)", path, ln+1, lm.Addr, prev)
		}
		seenName[lm.Name], seenAddr[lm.Addr] = ln+1, ln+1
		out = append(out, lm)
	}
	if len(out) < 3 {
		return nil, fmt.Errorf("%s: need ≥ 3 landmarks, have %d", path, len(out))
	}
	return out, nil
}
