package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// The /v2 contract tests pin the wire format with golden request/response
// JSON pairs under testdata/: a request body is replayed verbatim against
// a deterministic serving stack and the (normalized) response must match
// the archived golden byte-for-byte in structure and value. Regenerate
// with:
//
//	go test ./internal/serve -run TestV2Contract -update
var update = flag.Bool("update", false, "rewrite the /v2 contract goldens from the current responses")

// normalizeWire strips the response fields that legitimately vary run to
// run (timings, cache status) so the goldens pin only the contract:
// shapes, names, counts, and deterministic solver outputs.
func normalizeWire(v any) any {
	switch x := v.(type) {
	case map[string]any:
		delete(x, "elapsed_ms")
		delete(x, "cached")
		delete(x, "solve_ms")
		delete(x, "measure_ms")
		for k, val := range x {
			x[k] = normalizeWire(val)
		}
		return x
	case []any:
		for i := range x {
			x[i] = normalizeWire(x[i])
		}
		return x
	default:
		return v
	}
}

// wireEqual compares decoded JSON values with a small relative float
// tolerance, so goldens generated on one architecture hold on another.
func wireEqual(a, b any, path string) error {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: object vs %T", path, b)
		}
		if len(av) != len(bv) {
			return fmt.Errorf("%s: %d keys vs %d", path, len(av), len(bv))
		}
		for k, x := range av {
			y, ok := bv[k]
			if !ok {
				return fmt.Errorf("%s.%s: missing in response", path, k)
			}
			if err := wireEqual(x, y, path+"."+k); err != nil {
				return err
			}
		}
		return nil
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return fmt.Errorf("%s: array mismatch", path)
		}
		for i := range av {
			if err := wireEqual(av[i], bv[i], fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	case float64:
		bf, ok := b.(float64)
		if !ok {
			return fmt.Errorf("%s: number vs %T", path, b)
		}
		if av == bf {
			return nil
		}
		if math.Abs(av-bf) > 1e-9*math.Max(1, math.Max(math.Abs(av), math.Abs(bf))) {
			return fmt.Errorf("%s: %v != %v", path, av, bf)
		}
		return nil
	default:
		if !jsonScalarEqual(a, b) {
			return fmt.Errorf("%s: %v != %v", path, a, b)
		}
		return nil
	}
}

func jsonScalarEqual(a, b any) bool { return a == b }

// contractStack builds a dedicated deterministic stack so the goldens
// never depend on what other tests have already cached or swapped.
func contractStack(t *testing.T) testStack {
	t.Helper()
	s, err := buildStack(17, 36)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runContractCase(t *testing.T, h http.Handler, path, reqFile, goldenFile string, batch bool) {
	t.Helper()
	reqBody, err := os.ReadFile(filepath.Join("testdata", reqFile))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(reqBody))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body)
	}

	// Decode the response into comparable structure: one object for the
	// single endpoint, a target-sorted array for the NDJSON stream
	// (stream order is completion order, which is not contractual).
	var got any
	if batch {
		var lines []map[string]any
		sc := bufio.NewScanner(rec.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var m map[string]any
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			lines = append(lines, m)
		}
		sort.Slice(lines, func(i, j int) bool {
			ti, _ := lines[i]["target"].(string)
			tj, _ := lines[j]["target"].(string)
			return ti < tj
		})
		arr := make([]any, len(lines))
		for i, m := range lines {
			arr[i] = m
		}
		got = arr
	} else {
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		got = m
	}
	got = normalizeWire(got)

	goldenPath := filepath.Join("testdata", goldenFile)
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	goldenData, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want any
	if err := json.Unmarshal(goldenData, &want); err != nil {
		t.Fatal(err)
	}
	if err := wireEqual(want, got, goldenFile); err != nil {
		t.Errorf("contract drift vs %s: %v", goldenFile, err)
	}
}

// TestV2Contract replays the archived /v2 request bodies — including a
// WithExplain provenance payload — and pins the responses.
func TestV2Contract(t *testing.T) {
	s := contractStack(t)
	h := s.srv.Handler()
	runContractCase(t, h, "/v2/localize", "v2_localize_request.json", "v2_localize_golden.json", false)
	runContractCase(t, h, "/v2/localize/batch", "v2_batch_request.json", "v2_batch_golden.json", true)
}

// TestV1Contract pins the v1 adapter the same way: the legacy surface
// must not drift while it remains published.
func TestV1Contract(t *testing.T) {
	s := contractStack(t)
	h := s.srv.Handler()
	runContractCase(t, h, "/v1/localize", "v1_localize_request.json", "v1_localize_golden.json", false)
}
