// Package serve is the HTTP serving layer of the Octant daemon: the
// route table, wire formats, and admin surface that cmd/octant-serve
// mounts over a batch engine and a survey lifecycle manager. It lives in
// its own package (rather than inside the binary) so the cluster tier
// can embed real serving nodes — in-process fleets for tests and the
// soak harness — and so the octant-cluster front door speaks exactly
// these wire types.
//
// Endpoints:
//
//	POST /v1/localize        {"target": "host"}            → JSON result
//	POST /v1/localize/batch  {"targets": ["h1", "h2", …]}  → NDJSON stream
//	POST /v2/localize        {"target", "options"}         → result + epoch (+ provenance)
//	POST /v2/localize/batch  {"targets", "options"}        → NDJSON stream of v2 results
//	POST /v1/survey/refresh  {"landmarks": ["name", …]?}   → reprobe + recalibrate
//	POST /v1/survey/install  (survey snapshot JSON)        → stage a pushed epoch
//	POST /v1/survey/activate                               → drain + RCU-swap the staged epoch
//	GET  /v1/survey/snapshot                               → current epoch as snapshot JSON
//	GET  /v1/survey                                        → epoch, κ, swap/refresh counters
//	GET  /v1/cache/lookup?target=&fp=&epoch=               → peer cache read (404 on miss)
//	GET  /v1/healthz                                       → liveness
//	GET  /v1/readyz                                        → readiness (epoch published, not draining)
//	GET  /v1/stats                                         → engine counters and latency quantiles
//	GET  /debug/pprof/…                                    → live profiling (Options.Pprof)
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"octant/internal/batch"
	"octant/internal/core"
	"octant/internal/geo"
	"octant/internal/lifecycle"
	"octant/internal/measure"
)

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxBatch bounds targets per batch request (0 = default 1024).
	MaxBatch int
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/ so
	// production hot paths can be profiled live.
	Pprof bool
	// ActivateDrain bounds how long /v1/survey/activate waits for
	// in-flight requests to finish before swapping the staged epoch
	// (0 = default 2s). The wait is belt and braces — the engine's
	// per-request epoch borrow already keeps every response
	// single-epoch — but it lets a rolling rollout hand a quiesced node
	// to the swap.
	ActivateDrain time.Duration
}

// Server is the HTTP surface over a batch engine and its survey lifecycle
// manager. All state it touches is either immutable (epoch snapshots) or
// internally synchronized (the engine, the manager), so the handlers need
// no locking of their own.
type Server struct {
	engine  *batch.Engine
	manager *lifecycle.Manager
	started time.Time
	opts    Options
	// draining flips readiness off while an epoch activation (or process
	// shutdown) is quiescing the node; the cluster router routes around
	// not-ready nodes, which is what makes rolling swaps zero-error.
	draining atomic.Bool
}

// New builds a Server over an engine and a lifecycle manager.
func New(engine *batch.Engine, manager *lifecycle.Manager, opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 1024
	}
	if opts.ActivateDrain <= 0 {
		opts.ActivateDrain = 2 * time.Second
	}
	return &Server{engine: engine, manager: manager, started: time.Now(), opts: opts}
}

// Engine returns the batch engine the server fronts.
func (s *Server) Engine() *batch.Engine { return s.engine }

// Manager returns the lifecycle manager the server fronts.
func (s *Server) Manager() *lifecycle.Manager { return s.manager }

// SetDraining flips the node's readiness. The process shutdown path sets
// it before the listener closes so fleet routers stop sending new work a
// beat before connections start being refused.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/localize", s.handleLocalize)
	mux.HandleFunc("/v1/localize/batch", s.handleBatch)
	mux.HandleFunc("/v2/localize", s.handleLocalizeV2)
	mux.HandleFunc("/v2/localize/batch", s.handleBatchV2)
	mux.HandleFunc("/v1/survey", s.handleSurvey)
	mux.HandleFunc("/v1/survey/refresh", s.handleRefresh)
	mux.HandleFunc("/v1/survey/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/survey/install", s.handleInstall)
	mux.HandleFunc("/v1/survey/activate", s.handleActivate)
	mux.HandleFunc("/v1/cache/lookup", s.handleCacheLookup)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	if s.opts.Pprof {
		// Explicit registration: the daemon serves its own mux, so the
		// side-effect registrations on http.DefaultServeMux from importing
		// net/http/pprof never reach clients unless mounted here.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// TargetResult is the wire form of one localization outcome. Latitude and
// longitude are pointers because an empty estimated region has no point
// (NaN is not representable in JSON).
type TargetResult struct {
	Target      string   `json:"target"`
	Lat         *float64 `json:"lat,omitempty"`
	Lon         *float64 `json:"lon,omitempty"`
	AreaKm2     float64  `json:"area_km2,omitempty"`
	HeightMs    float64  `json:"height_ms,omitempty"`
	Constraints int      `json:"constraints,omitempty"`
	EmptyRegion bool     `json:"empty_region,omitempty"`
	Cached      bool     `json:"cached,omitempty"`
	// Degraded marks a result computed from partial evidence: some
	// landmarks failed to answer but the request's quorum held. The
	// failed landmarks ride the v2 provenance (failures list).
	Degraded  bool    `json:"degraded,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// ToTargetResult converts a batch item to its wire form.
func ToTargetResult(item batch.Item) TargetResult {
	tr := TargetResult{Target: item.Target}
	if item.Err != nil {
		tr.Error = item.Err.Error()
		return tr
	}
	res := item.Result
	tr.AreaKm2 = res.AreaKm2
	tr.HeightMs = res.TargetHeightMs
	tr.Constraints = len(res.Constraints)
	tr.Cached = item.Cached
	tr.Degraded = res.Degraded
	tr.ElapsedMs = float64(item.Elapsed) / float64(time.Millisecond)
	if math.IsNaN(res.Point.Lat) {
		tr.EmptyRegion = true
	} else {
		lat, lon := res.Point.Lat, res.Point.Lon
		tr.Lat, tr.Lon = &lat, &lon
	}
	return tr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// --- v2 wire format ---
//
// The v2 surface maps request bodies 1:1 onto the core.LocalizeOption
// set: every knob a library caller can turn, a wire caller can too.

// WireHint is one exogenous positive prior (core.Hint) on the wire.
type WireHint struct {
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	RadiusKm float64 `json:"radius_km,omitempty"`
	Weight   float64 `json:"weight,omitempty"`
	Label    string  `json:"label,omitempty"`
}

// WireOptions is the JSON form of a request's options. Zero values mean
// "server default" throughout, so an empty object is exactly a v1
// request. The cluster router decodes it both to validate requests at
// the front door and to derive the options fingerprint its cache tiers
// key on.
type WireOptions struct {
	// Disable lists evidence sources to skip: "latency", "router",
	// "hint", "rdns", "geodb", "geography".
	Disable []string `json:"disable,omitempty"`
	// Weights scales each named source's constraint weights (> 0).
	Weights map[string]float64 `json:"weights,omitempty"`
	// MinAreaKm2 overrides the §2.4 region size threshold.
	MinAreaKm2 float64 `json:"min_area_km2,omitempty"`
	// FineCellKm overrides the solver's fine-pass resolution.
	FineCellKm float64 `json:"fine_cell_km,omitempty"`
	// NegHeightPercentile overrides the negative-constraint height
	// percentile.
	NegHeightPercentile float64 `json:"neg_height_percentile,omitempty"`
	// MinLandmarks sets the degraded-mode quorum: the minimum number of
	// landmarks that must answer before landmark failures degrade the
	// result instead of failing the request (0 = server default).
	MinLandmarks int `json:"min_landmarks,omitempty"`
	// Explain attaches per-source provenance to the response.
	Explain bool `json:"explain,omitempty"`
	// Hints are extra positive priors for the hint source.
	Hints []WireHint `json:"hints,omitempty"`
}

// knownSources guards source names on the wire: a typo must 400, not
// silently no-op.
var knownSources = map[string]bool{
	core.SourceLatency:   true,
	core.SourceRouter:    true,
	core.SourceHint:      true,
	core.SourceRDNS:      true,
	core.SourceGeoDB:     true,
	core.SourceGeography: true,
}

// Options converts the wire options (nil = none) into request options.
func (wo *WireOptions) Options() ([]core.LocalizeOption, error) {
	if wo == nil {
		return nil, nil
	}
	var opts []core.LocalizeOption
	for _, name := range wo.Disable {
		if !knownSources[name] {
			return nil, fmt.Errorf("unknown source %q in disable (want latency|router|hint|rdns|geodb|geography)", name)
		}
		opts = append(opts, core.WithoutSource(name))
	}
	for name, scale := range wo.Weights {
		if !knownSources[name] {
			return nil, fmt.Errorf("unknown source %q in weights (want latency|router|hint|rdns|geodb|geography)", name)
		}
		if scale <= 0 {
			return nil, fmt.Errorf("weight scale for %q must be > 0, got %v", name, scale)
		}
		opts = append(opts, core.WithSourceWeight(name, scale))
	}
	if wo.MinAreaKm2 < 0 || wo.FineCellKm < 0 {
		return nil, fmt.Errorf("min_area_km2 and fine_cell_km must be ≥ 0")
	}
	if wo.MinAreaKm2 > 0 {
		opts = append(opts, core.WithMinAreaKm2(wo.MinAreaKm2))
	}
	if wo.FineCellKm > 0 {
		opts = append(opts, core.WithFineCellKm(wo.FineCellKm))
	}
	if wo.NegHeightPercentile != 0 {
		if wo.NegHeightPercentile < 0 || wo.NegHeightPercentile > 100 {
			return nil, fmt.Errorf("neg_height_percentile must be in (0, 100], got %v", wo.NegHeightPercentile)
		}
		opts = append(opts, core.WithNegHeightPercentile(wo.NegHeightPercentile))
	}
	if wo.MinLandmarks != 0 {
		if wo.MinLandmarks < 0 {
			return nil, fmt.Errorf("min_landmarks must be ≥ 0, got %d", wo.MinLandmarks)
		}
		opts = append(opts, core.WithMinLandmarks(wo.MinLandmarks))
	}
	if wo.Explain {
		opts = append(opts, core.WithExplain())
	}
	for i, h := range wo.Hints {
		loc := geo.Pt(h.Lat, h.Lon)
		if !loc.Valid() {
			return nil, fmt.Errorf("hint %d: invalid coordinates (%v, %v)", i, h.Lat, h.Lon)
		}
		if h.RadiusKm < 0 || h.Weight < 0 {
			return nil, fmt.Errorf("hint %d: radius_km and weight must be ≥ 0", i)
		}
		opts = append(opts, core.WithHint(loc, h.RadiusKm, h.Weight, h.Label))
	}
	return opts, nil
}

// TargetResultV2 extends the v1 wire result with the serving epoch and,
// when the request asked to explain itself, the evidence provenance.
type TargetResultV2 struct {
	TargetResult
	Epoch      uint64           `json:"epoch"`
	Provenance *core.Provenance `json:"provenance,omitempty"`
}

// ToTargetResultV2 converts a batch item to its v2 wire form.
func ToTargetResultV2(item batch.Item) TargetResultV2 {
	tr := TargetResultV2{TargetResult: ToTargetResult(item), Epoch: item.Epoch}
	if item.Err == nil && item.Result.Provenance != nil {
		tr.Provenance = item.Result.Provenance
	}
	return tr
}

// handleLocalize serves POST /v1/localize: {"target": "..."} → one
// result. It is a thin adapter over the same request path as /v2 with no
// options, kept for wire compatibility.
func (s *Server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Target string `json:"target"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, "missing target")
		return
	}
	// r.Context() cancels on client disconnect, aborting the measurement
	// at its next probe.
	item := s.engine.LocalizeItem(r.Context(), req.Target)
	if item.Err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", item.Err)
		return
	}
	writeJSON(w, http.StatusOK, ToTargetResult(item))
}

// handleLocalizeV2 serves POST /v2/localize:
// {"target": "...", "options": {...}} → one result with epoch and
// optional provenance. Options map 1:1 onto core.LocalizeOption.
func (s *Server) handleLocalizeV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Target  string       `json:"target"`
		Options *WireOptions `json:"options"`
	}
	// DisallowUnknownFields: /v2 is a new surface, so a misspelled
	// option key ("weight" for "weights") must 400 rather than silently
	// run — and cache — the request under server defaults.
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, "missing target")
		return
	}
	opts, err := req.Options.Options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad options: %v", err)
		return
	}
	item := s.engine.LocalizeItem(r.Context(), req.Target, opts...)
	if item.Err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", item.Err)
		return
	}
	writeJSON(w, http.StatusOK, ToTargetResultV2(item))
}

// handleBatch serves POST /v1/localize/batch: {"targets": [...]} → one
// NDJSON line per target, streamed in completion order as the worker pool
// drains the batch. A thin adapter over the /v2 stream with no options.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Targets []string `json:"targets"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.streamBatch(w, r, req.Targets, nil, func(item batch.Item) any {
		return ToTargetResult(item)
	})
}

// handleBatchV2 serves POST /v2/localize/batch:
// {"targets": [...], "options": {...}} → NDJSON stream of v2 results.
// The options apply to every target of the batch.
func (s *Server) handleBatchV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Targets []string     `json:"targets"`
		Options *WireOptions `json:"options"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	opts, err := req.Options.Options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad options: %v", err)
		return
	}
	s.streamBatch(w, r, req.Targets, opts, func(item batch.Item) any {
		return ToTargetResultV2(item)
	})
}

// streamBatch validates the target list and streams one encoded line per
// completed target — the shared engine of both batch endpoints.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, targets []string, opts []core.LocalizeOption, encode func(batch.Item) any) {
	if len(targets) == 0 {
		writeError(w, http.StatusBadRequest, "missing targets")
		return
	}
	if len(targets) > s.opts.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"%d targets exceeds the %d per-request limit", len(targets), s.opts.MaxBatch)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	items := s.engine.Run(r.Context(), targets, opts...)
	for item := range items {
		if err := enc.Encode(encode(item)); err != nil {
			// Client went away. The engine still owns worker goroutines
			// blocked on this channel; drain it so they can exit (fast,
			// because r.Context() is already cancelled).
			for range items {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSurvey serves GET /v1/survey: the lifecycle view — current
// epoch, calibration parameters, swap/refresh counters, and the last
// refresh report.
func (s *Server) handleSurvey(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.manager.Stats())
}

// handleRefresh serves POST /v1/survey/refresh: reprobe the landmark mesh
// and hot-swap a recalibrated epoch if anything drifted. An optional body
// {"landmarks": ["name", …]} scopes the reprobe to pairs touching the
// named landmarks (on-demand recalibration of suspects at O(k·n) probes);
// an empty or absent body refreshes every pair. Responds with the refresh
// report; traffic is served uninterrupted throughout.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Landmarks []string `json:"landmarks"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	var scope []int
	if len(req.Landmarks) > 0 {
		survey := s.manager.Current().Survey
		// A name maps to every landmark carrying it: landmark sets are
		// validated for uniqueness at load, but if duplicates slip in
		// (e.g. an older snapshot) a scoped refresh must cover them all
		// rather than silently reprobing one.
		byName := make(map[string][]int, survey.N())
		for i, lm := range survey.Landmarks {
			byName[lm.Name] = append(byName[lm.Name], i)
		}
		for _, name := range req.Landmarks {
			idx, ok := byName[name]
			if !ok {
				writeError(w, http.StatusBadRequest, "unknown landmark %q", name)
				return
			}
			scope = append(scope, idx...)
		}
	}
	report, err := s.manager.Refresh(r.Context(), scope)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// handleSnapshot serves GET /v1/survey/snapshot: the current epoch's
// survey in the versioned-JSON snapshot format — what a cluster
// coordinator pulls from the refresh source and pushes to replicas for a
// probe-free warm adoption.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	e := s.manager.Current()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Octant-Epoch", strconv.FormatUint(e.Number(), 10))
	if err := e.Survey.WriteSnapshot(w); err != nil {
		// Headers are already gone; cut the stream so the client sees a
		// truncated body instead of a silently short snapshot.
		panic(http.ErrAbortHandler)
	}
}

// handleInstall serves POST /v1/survey/install: the request body is a
// survey snapshot (the exact bytes /v1/survey/snapshot emits) which is
// validated against the serving mesh and staged for a later activate.
// Staging changes nothing observable — traffic stays on the current
// epoch until /v1/survey/activate.
func (s *Server) handleInstall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	survey, err := core.ReadSnapshot(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad snapshot: %v", err)
		return
	}
	if err := s.manager.Stage(survey); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"staged_epoch":  survey.Epoch,
		"serving_epoch": s.manager.Current().Number(),
	})
}

// handleActivate serves POST /v1/survey/activate: flip readiness off,
// give in-flight requests a bounded drain window, RCU-swap the staged
// epoch in, and flip readiness back on. The drain is cooperative — the
// engine's per-request epoch borrow already guarantees no response mixes
// epochs — but it means a router honoring readiness sees the node go
// not-ready → swapped → ready with no request ever landing mid-swap.
func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if _, ok := s.manager.StagedEpoch(); !ok {
		writeError(w, http.StatusConflict, "no staged epoch to activate")
		return
	}
	s.draining.Store(true)
	deadline := time.Now().Add(s.opts.ActivateDrain)
	for s.engine.InFlight() > 0 && time.Now().Before(deadline) {
		select {
		case <-r.Context().Done():
			s.draining.Store(false)
			writeError(w, http.StatusUnprocessableEntity, "activate cancelled: %v", r.Context().Err())
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
	e, err := s.manager.ActivateStaged()
	s.draining.Store(false)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": e.Number()})
}

// handleCacheLookup serves GET /v1/cache/lookup?target=&fp=&epoch=: the
// cluster cache tier's peer-fetch read path. It consults the engine's
// LRU without measuring; a hit answers with the full v2 wire result
// (marked cached), a miss is 404. Results from non-cacheable requests
// can never be served here — they are never inserted into the LRU in the
// first place.
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	target := q.Get("target")
	if target == "" {
		writeError(w, http.StatusBadRequest, "missing target")
		return
	}
	epoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad epoch: %v", err)
		return
	}
	res, ok := s.engine.Peek(target, q.Get("fp"), epoch)
	if !ok {
		writeError(w, http.StatusNotFound, "miss")
		return
	}
	writeJSON(w, http.StatusOK, ToTargetResultV2(batch.Item{
		Target: target,
		Result: res,
		Epoch:  epoch,
		Cached: true,
	}))
}

// handleHealthz serves GET /v1/healthz — pure liveness: the process is up
// and handling HTTP. Readiness (should this node receive traffic?) is
// /v1/readyz; a draining node is alive but not ready.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	e := s.manager.Current()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"landmarks": e.Survey.N(),
		"epoch":     e.Number(),
		"uptime_s":  time.Since(s.started).Seconds(),
	})
}

// Readiness is the readyz wire shape — also what the cluster router's
// health prober decodes.
type Readiness struct {
	Ready bool   `json:"ready"`
	Epoch uint64 `json:"epoch"`
	// Reason explains a not-ready state ("draining").
	Reason string `json:"reason,omitempty"`
}

// handleReadyz serves GET /v1/readyz: 200 when the node should receive
// traffic — a survey epoch is published and the engine is accepting work
// — and 503 while draining (epoch activation or shutdown). Rolling
// rollouts and the cluster router key off this, not healthz: a draining
// node is still alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := Readiness{Ready: !s.draining.Load(), Epoch: s.manager.Current().Number()}
	status := http.StatusOK
	if !rd.Ready {
		rd.Reason = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

// statsPayload is the /v1/stats wire shape: the engine's counters plus,
// when the serving Localizer measures through a concurrent scheduler,
// its probe counters under "measure". Existing consumers decoding into
// batch.Stats are unaffected — the embedded fields keep their keys.
type statsPayload struct {
	batch.Stats
	Measure *measure.Stats `json:"measure,omitempty"`
}

// handleStats serves GET /v1/stats: the engine's counters, cache hit
// rate, in-flight count, latency quantiles, and the measurement
// scheduler's probe/cache/dedup counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := statsPayload{Stats: s.engine.Stats()}
	if sched := s.manager.CurrentLocalizer().MeasureScheduler(); sched != nil {
		ms := sched.Stats()
		st.Measure = &ms
	}
	writeJSON(w, http.StatusOK, st)
}
