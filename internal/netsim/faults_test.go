package netsim

import (
	"strings"
	"testing"
)

// twoHosts returns the node IDs of two distinct end hosts.
func twoHosts(t *testing.T, w *World) (int, int) {
	t.Helper()
	hosts := w.HostNodes()
	if len(hosts) < 2 {
		t.Fatal("world has fewer than two hosts")
	}
	return hosts[0].ID, hosts[1].ID
}

func TestNodeDownFaults(t *testing.T) {
	w := testWorld(t)
	a, b := twoHosts(t, w)

	if got := w.Ping(a, b, 5); len(got) != 5 {
		t.Fatalf("healthy ping returned %d samples, want 5", len(got))
	}
	if reason := w.PathFault(a, b); reason != "" {
		t.Fatalf("healthy path reports fault %q", reason)
	}

	w.SetNodeDown(b, true)
	if !w.NodeDown(b) {
		t.Fatal("NodeDown(b) false after SetNodeDown")
	}
	if got := w.Ping(a, b, 5); got != nil {
		t.Fatalf("ping to downed node returned %d samples, want none", len(got))
	}
	if got := w.Ping(b, a, 5); got != nil {
		t.Fatal("ping from downed node returned samples")
	}
	if reason := w.PathFault(a, b); !strings.Contains(reason, "down") {
		t.Fatalf("PathFault = %q, want a node-down reason", reason)
	}
	if hops := w.Traceroute(a, b, 3); hops != nil {
		t.Fatal("traceroute to downed endpoint returned hops")
	}

	w.SetNodeDown(b, false)
	if w.NodeDown(b) {
		t.Fatal("NodeDown(b) still true after clearing")
	}
	if got := w.Ping(a, b, 5); len(got) != 5 {
		t.Fatal("ping did not recover after clearing node-down")
	}
}

func TestDownedRouterTruncatesTraceroute(t *testing.T) {
	w := testWorld(t)
	a, b := twoHosts(t, w)
	healthy := w.Traceroute(a, b, 3)
	if len(healthy) < 2 {
		t.Skipf("path %d→%d too short to truncate", a, b)
	}
	// Down the first intermediate hop: the trace must stop before it.
	first := healthy[0].NodeID
	w.SetNodeDown(first, true)
	defer w.SetNodeDown(first, false)
	truncated := w.Traceroute(a, b, 3)
	if len(truncated) >= len(healthy) {
		t.Fatalf("trace through downed router has %d hops, healthy had %d", len(truncated), len(healthy))
	}
	for _, h := range truncated {
		if h.NodeID == first {
			t.Fatal("truncated trace still includes the downed router")
		}
	}
}

func TestPairBlackhole(t *testing.T) {
	w := testWorld(t)
	hosts := w.HostNodes()
	a, b, c := hosts[0].ID, hosts[1].ID, hosts[2].ID

	w.SetPairBlackhole(a, b, true)
	if !w.PairBlackhole(a, b) || !w.PairBlackhole(b, a) {
		t.Fatal("blackhole not symmetric")
	}
	if got := w.Ping(a, b, 5); got != nil {
		t.Fatal("ping across blackholed pair returned samples")
	}
	if got := w.Ping(b, a, 5); got != nil {
		t.Fatal("reverse ping across blackholed pair returned samples")
	}
	if reason := w.PathFault(a, b); !strings.Contains(reason, "blackhole") {
		t.Fatalf("PathFault = %q, want a blackhole reason", reason)
	}
	// Other pairs are untouched: faults are per-pair, not per-node.
	if got := w.Ping(a, c, 5); len(got) != 5 {
		t.Fatal("blackhole on (a,b) leaked into (a,c)")
	}

	w.SetPairBlackhole(a, b, false)
	if got := w.Ping(a, b, 5); len(got) != 5 {
		t.Fatal("ping did not recover after clearing blackhole")
	}
}

func TestPairLossRate(t *testing.T) {
	w := testWorld(t)
	a, b := twoHosts(t, w)

	// Total loss: pings succeed as calls but return no samples — the
	// shape of a timed-out probe train, distinct from an unreachable
	// path (PathFault stays empty).
	w.SetPairLossRate(a, b, 1.0)
	if got := w.Ping(a, b, 8); len(got) != 0 {
		t.Fatalf("100%% loss returned %d samples", len(got))
	}
	if reason := w.PathFault(a, b); reason != "" {
		t.Fatalf("loss should not be a path fault, got %q", reason)
	}

	// Partial loss: across many trains, some samples drop and some
	// survive, and successive calls see fresh loss draws.
	w.SetPairLossRate(a, b, 0.5)
	total, kept := 0, 0
	sizes := map[int]bool{}
	for i := 0; i < 20; i++ {
		got := w.Ping(a, b, 10)
		total += 10
		kept += len(got)
		sizes[len(got)] = true
	}
	if kept == 0 || kept == total {
		t.Fatalf("50%% loss kept %d/%d samples", kept, total)
	}
	if len(sizes) == 1 {
		t.Fatal("every lossy train kept the same count; retries would see a frozen loss pattern")
	}

	w.SetPairLossRate(a, b, 0)
	if got := w.Ping(a, b, 8); len(got) != 8 {
		t.Fatal("ping did not recover after clearing loss")
	}
}

// TestFaultsClearBitIdentical is the zero-fault identity guarantee:
// injecting and clearing faults must leave the world's measurements bit
// for bit where they were, and faults on one pair must not perturb the
// jitter stream of another.
func TestFaultsClearBitIdentical(t *testing.T) {
	w := testWorld(t)
	hosts := w.HostNodes()
	a, b, c := hosts[0].ID, hosts[1].ID, hosts[2].ID

	before := w.Ping(a, b, 10)

	// Faults elsewhere: (a,c) lossy, c down.
	w.SetPairLossRate(a, c, 0.9)
	w.SetNodeDown(c, true)
	during := w.Ping(a, b, 10)
	for i := range before {
		if before[i] != during[i] {
			t.Fatalf("sample %d changed while faults were active elsewhere: %v vs %v", i, before[i], during[i])
		}
	}

	// Fault the pair itself, then clear everything.
	w.SetPairLossRate(a, b, 0.7)
	w.SetPairBlackhole(a, b, true)
	w.SetPairBlackhole(a, b, false)
	w.SetPairLossRate(a, b, 0)
	w.SetNodeDown(c, false)
	w.SetPairLossRate(a, c, 0)

	after := w.Ping(a, b, 10)
	if len(after) != len(before) {
		t.Fatalf("sample count changed after clearing faults: %d vs %d", len(after), len(before))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("sample %d not bit-identical after clearing faults: %v vs %v", i, before[i], after[i])
		}
	}
}
