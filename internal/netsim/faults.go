package netsim

import (
	"sync/atomic"
)

// Fault injection. Robustness tests need a network that can misbehave on
// demand: a landmark that crashes, a path that silently eats packets, a
// lossy peering. The methods here inject those conditions into a live
// world without touching the topology or the probe-noise streams —
// loss decisions draw from their own RNG stream, so a world with zero
// faults injected produces measurements bit-identical to one where the
// fault API was never called.
//
// All fault state lives in independently synchronized maps (the
// SetPairDriftMs pattern), so faults may be injected and cleared while
// measurements are in flight. The zero-fault fast path is one atomic
// load: faultCount tracks the number of active fault entries, and every
// per-measurement check exits immediately while it is zero.

// SetNodeDown marks a node crashed (down=true) or revived (down=false).
// Pings to or from a downed node return no samples, traceroutes through
// it truncate at the last live router, and traceroutes to or from it
// return nothing — exactly what a crashed landmark or target looks like
// from the outside.
func (w *World) SetNodeDown(id int, down bool) {
	if down {
		if _, loaded := w.downNodes.LoadOrStore(id, true); !loaded {
			w.faultCount.Add(1)
		}
		return
	}
	if _, loaded := w.downNodes.LoadAndDelete(id); loaded {
		w.faultCount.Add(-1)
	}
}

// NodeDown reports whether the node is currently marked down.
func (w *World) NodeDown(id int) bool {
	if w.faultCount.Load() == 0 {
		return false
	}
	_, down := w.downNodes.Load(id)
	return down
}

// SetPairBlackhole silently discards all probe traffic between a and b
// (both directions) — the filtered-ICMP / null-routed failure mode where
// the endpoints are alive but this particular path never answers. Other
// pairs involving a or b are unaffected.
func (w *World) SetPairBlackhole(a, b int, on bool) {
	key := pairKey(a, b)
	if on {
		if _, loaded := w.blackholes.LoadOrStore(key, true); !loaded {
			w.faultCount.Add(1)
		}
		return
	}
	if _, loaded := w.blackholes.LoadAndDelete(key); loaded {
		w.faultCount.Add(-1)
	}
}

// PairBlackhole reports whether the pair is currently blackholed.
func (w *World) PairBlackhole(a, b int) bool {
	if w.faultCount.Load() == 0 {
		return false
	}
	_, on := w.blackholes.Load(pairKey(a, b))
	return on
}

// SetPairLossRate makes each probe sample between a and b be lost
// independently with the given probability (clamped to [0,1]; ≤ 0 clears
// the loss). A Ping that loses every sample returns an empty slice — the
// all-probes-timed-out outcome retry logic exists for. Loss draws come
// from a dedicated RNG stream advanced per call, so retries observe
// fresh loss patterns while the jitter stream (and therefore every
// surviving sample's value) stays bit-identical to a loss-free world.
func (w *World) SetPairLossRate(a, b int, rate float64) {
	key := pairKey(a, b)
	if rate <= 0 {
		if _, loaded := w.loss.LoadAndDelete(key); loaded {
			w.faultCount.Add(-1)
		}
		return
	}
	if rate > 1 {
		rate = 1
	}
	if _, loaded := w.loss.LoadOrStore(key, rate); loaded {
		w.loss.Store(key, rate)
	} else {
		w.faultCount.Add(1)
	}
}

// PairLossRate returns the loss probability currently injected between a
// and b (0 = lossless).
func (w *World) PairLossRate(a, b int) float64 {
	if w.faultCount.Load() == 0 {
		return 0
	}
	v, ok := w.loss.Load(pairKey(a, b))
	if !ok {
		return 0
	}
	return v.(float64)
}

// PathFault reports why probe traffic between src and dst cannot
// complete: "" while the path is healthy, otherwise a short human
// reason. Loss is not a path fault — a lossy pair still delivers its
// surviving samples.
func (w *World) PathFault(src, dst int) string {
	if w.faultCount.Load() == 0 {
		return ""
	}
	if w.NodeDown(src) {
		return "node " + w.Nodes[src].Name + " down"
	}
	if w.NodeDown(dst) {
		return "node " + w.Nodes[dst].Name + " down"
	}
	if _, on := w.blackholes.Load(pairKey(src, dst)); on {
		return "path blackholed"
	}
	return ""
}

// dropLost filters Ping samples through the pair's loss process. The
// draws come from stream 0x1055 keyed additionally by a per-pair call
// ordinal, so (a) the 0xfeed jitter stream is never touched — surviving
// samples keep their loss-free values — and (b) consecutive calls see
// different loss patterns, so a retry can deterministically succeed
// where the first attempt lost everything.
func (w *World) dropLost(samples []float64, src, dst int, rate float64) []float64 {
	seqv, _ := w.lossSeq.LoadOrStore(pairKey(src, dst), new(atomic.Uint64))
	seq := seqv.(*atomic.Uint64).Add(1)
	p := getRNG(w.probeSeed(src, dst), 0x1055<<32|seq)
	kept := samples[:0]
	for _, s := range samples {
		if p.rng.Float64() >= rate {
			kept = append(kept, s)
		}
	}
	prngPool.Put(p)
	return kept
}
