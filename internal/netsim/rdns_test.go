package netsim

import (
	"strings"
	"testing"
)

// Host rDNS is off by default: no host may carry a synthetic reverse
// name, so every construction byte stays bit-identical to pre-hint
// worlds.
func TestDefaultWorldHasNoHostRDNS(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	for _, id := range w.Hosts {
		if rdns := w.Nodes[id].RDNS; rdns != "" {
			t.Errorf("host %s has RDNS %q in a default world", w.Nodes[id].Name, rdns)
		}
		if got := w.ReverseName(id); got != w.Nodes[id].Name {
			t.Errorf("ReverseName(%d) = %q, want the DNS name %q", id, got, w.Nodes[id].Name)
		}
	}
}

// Same seed, same config → byte-identical reverse names, and the hint
// pass must not perturb anything else about the world.
func TestHostRDNSDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, HostRDNSHintFrac: 0.85, HostRDNSWrongFrac: 0.3}
	a, b := NewWorld(cfg), NewWorld(cfg)
	for _, id := range a.Hosts {
		if an, bn := a.ReverseName(id), b.ReverseName(id); an != bn {
			t.Errorf("host %d: ReverseName %q vs %q across same-seed worlds", id, an, bn)
		}
	}
	plain := NewWorld(Config{Seed: 7})
	if len(plain.Nodes) != len(a.Nodes) {
		t.Fatalf("hint pass changed node count: %d vs %d", len(a.Nodes), len(plain.Nodes))
	}
	for i, n := range plain.Nodes {
		if n.Name != a.Nodes[i].Name || n.Loc != a.Nodes[i].Loc {
			t.Errorf("node %d differs between hinted and plain same-seed worlds", i)
		}
	}
}

// HostRDNSHintFrac = 1 names every eligible host (nearest POP within
// hostRDNSMaxHintKm), in one of the two operator shapes, with a truthful
// city token.
func TestHostRDNSHintBearingNames(t *testing.T) {
	w := NewWorld(Config{Seed: 1, HostRDNSHintFrac: 1})
	named := 0
	for _, id := range w.Hosts {
		n := w.Nodes[id]
		code, km := nearestPOPCity(n.Loc)
		if km > hostRDNSMaxHintKm {
			if n.RDNS != "" {
				t.Errorf("host %s is %0.f km from any POP but got RDNS %q", n.Name, km, n.RDNS)
			}
			continue
		}
		if n.RDNS == "" {
			t.Errorf("eligible host %s (POP %s, %.0f km) got no RDNS at frac 1", n.Name, code, km)
			continue
		}
		named++
		iata, clli := hostRDNSIATA(id, code), hostRDNSCLLI(id, CLLIByCode[code])
		if n.RDNS != iata && n.RDNS != clli {
			t.Errorf("host %s RDNS %q is neither %q nor %q", n.Name, n.RDNS, iata, clli)
		}
	}
	if named < 10 {
		t.Errorf("only %d hosts named — the default site list should yield far more eligible hosts", named)
	}
}

// HostRDNSWrongFrac = 1 poisons every assigned name: its city token must
// belong to a POP at least hostRDNSWrongMinKm from the host.
func TestHostRDNSWrongNamesPointFar(t *testing.T) {
	w := NewWorld(Config{Seed: 1, HostRDNSHintFrac: 1, HostRDNSWrongFrac: 1})
	codeLoc := make(map[string]int, len(POPCities))
	for i := range POPCities {
		codeLoc[POPCities[i].Code] = i
	}
	poisoned := 0
	for _, id := range w.Hosts {
		n := w.Nodes[id]
		if n.RDNS == "" {
			continue
		}
		var code string
		for c := range codeLoc {
			if strings.Contains(n.RDNS, "."+c+".") || strings.Contains(n.RDNS, "."+CLLIByCode[c]+"01.") {
				code = c
				break
			}
		}
		if code == "" {
			t.Errorf("host %s RDNS %q carries no recognizable POP token", n.Name, n.RDNS)
			continue
		}
		if d := n.Loc.DistanceKm(POPCities[codeLoc[code]].Loc()); d < hostRDNSWrongMinKm {
			t.Errorf("host %s wrong-name token %s is only %.0f km away (want ≥ %d)", n.Name, code, d, hostRDNSWrongMinKm)
		}
		poisoned++
	}
	if poisoned == 0 {
		t.Fatal("no poisoned names assigned at frac 1")
	}
}

// The measurement surface must serve the synthetic names: ReverseDNS by
// IP and the hint pass only touching Hosts, never routers.
func TestHostRDNSOnMeasurementSurface(t *testing.T) {
	w := NewWorld(Config{Seed: 1, HostRDNSHintFrac: 1})
	for _, id := range w.Hosts {
		n := w.Nodes[id]
		if n.RDNS == "" {
			continue
		}
		if got := w.ReverseDNS(n.IP); got != n.RDNS {
			t.Errorf("ReverseDNS(%s) = %q, want %q", n.IP, got, n.RDNS)
		}
		return // one is enough
	}
	t.Fatal("no named host found")
}
