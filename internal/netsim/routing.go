package netsim

import "container/heap"

// Routing: Dijkstra shortest paths on the policy-weighted link metric.
// Because the metric is fiber length times a per-link policy factor, the
// chosen paths deviate from great circles — exactly the indirect-route
// phenomenon §2.3 of the paper compensates for with piecewise localization.

type pqItem struct {
	node int
	dist float64
}

type priorityQueue []pqItem

func (pq priorityQueue) Len() int           { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)      { pq[i], pq[j] = pq[j], pq[i] }
func (pq *priorityQueue) Push(x any)        { *pq = append(*pq, x.(pqItem)) }
func (pq *priorityQueue) Pop() any {
	old := *pq
	n := len(old)
	item := old[n-1]
	*pq = old[:n-1]
	return item
}

// routeTable holds the shortest-path tree from one source.
type routeTable struct {
	prev []int
	cost []float64
}

// shortestTree computes (and caches, per World) the Dijkstra tree from src.
func (w *World) shortestTree(src int) *routeTable {
	if t, ok := w.routes.Load(src); ok {
		return t.(*routeTable)
	}
	n := len(w.Nodes)
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = 1e18
		prev[i] = -1
	}
	dist[src] = 0
	pq := &priorityQueue{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range w.adj[it.node] {
			l := w.Links[e.link]
			nd := dist[it.node] + l.CostKm
			if nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = it.node
				heap.Push(pq, pqItem{e.to, nd})
			}
		}
	}
	t := &routeTable{prev: prev, cost: dist}
	w.routes.Store(src, t)
	return t
}

// Route returns the node-ID path from src to dst (inclusive of both), or
// nil if dst is unreachable. The tree walk runs twice — once to count,
// once to fill — so the path is built in one exact-size allocation
// (Route sits under every Ping; append-grown paths dominated the
// simulator's allocation profile).
func (w *World) Route(src, dst int) []int {
	t := w.shortestTree(src)
	if t.cost[dst] >= 1e18 {
		return nil
	}
	n := 0
	for cur := dst; cur != -1; cur = t.prev[cur] {
		n++
		if cur == src {
			break
		}
	}
	path := make([]int, n)
	i := n - 1
	for cur := dst; cur != -1; cur = t.prev[cur] {
		path[i] = cur
		i--
		if cur == src {
			break
		}
	}
	if path[0] != src {
		return nil
	}
	return path
}

// linkBetween returns the link index connecting a and b, or -1.
func (w *World) linkBetween(a, b int) int {
	for _, e := range w.adj[a] {
		if e.to == b {
			return e.link
		}
	}
	return -1
}

// PathFiberKm returns the total fiber length along a node path.
func (w *World) PathFiberKm(path []int) float64 {
	var total float64
	for i := 0; i+1 < len(path); i++ {
		li := w.linkBetween(path[i], path[i+1])
		if li < 0 {
			return 0
		}
		total += w.Links[li].FiberKm
	}
	return total
}

// PathInflation returns the ratio of routed fiber length to great-circle
// distance between the endpoints of the path (≥ 1 in practice).
func (w *World) PathInflation(path []int) float64 {
	if len(path) < 2 {
		return 1
	}
	gc := w.Nodes[path[0]].Loc.DistanceKm(w.Nodes[path[len(path)-1]].Loc)
	if gc < 1 {
		return 1
	}
	return w.PathFiberKm(path) / gc
}
