package netsim

import (
	"math"
	"strings"
	"testing"

	"octant/internal/geo"
	"octant/internal/stats"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	return NewWorld(Config{Seed: 1})
}

func TestWorldConstruction(t *testing.T) {
	w := testWorld(t)
	if len(w.Hosts) != len(DefaultSites) {
		t.Fatalf("hosts = %d, want %d", len(w.Hosts), len(DefaultSites))
	}
	if len(DefaultSites) != 51 {
		t.Errorf("default deployment should have 51 sites like the paper, has %d", len(DefaultSites))
	}
	// One host per institution.
	insts := map[string]bool{}
	for _, h := range w.HostNodes() {
		if insts[h.Inst] {
			t.Errorf("duplicate institution %q", h.Inst)
		}
		insts[h.Inst] = true
		if h.Kind != KindHost {
			t.Errorf("host %s has kind %v", h.Name, h.Kind)
		}
		if !h.Loc.Valid() {
			t.Errorf("host %s has invalid location", h.Name)
		}
	}
	// IPs unique.
	ips := map[string]bool{}
	for _, n := range w.Nodes {
		if ips[n.IP] {
			t.Errorf("duplicate IP %s", n.IP)
		}
		ips[n.IP] = true
	}
}

func TestWorldDeterminism(t *testing.T) {
	w1 := NewWorld(Config{Seed: 42})
	w2 := NewWorld(Config{Seed: 42})
	if len(w1.Nodes) != len(w2.Nodes) || len(w1.Links) != len(w2.Links) {
		t.Fatal("same seed produced different topologies")
	}
	a, b := w1.Hosts[0], w1.Hosts[10]
	p1 := w1.Ping(a, b, 10)
	p2 := w2.Ping(a, b, 10)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed, different ping sample %d: %v vs %v", i, p1[i], p2[i])
		}
	}
	// Different seed should differ somewhere.
	w3 := NewWorld(Config{Seed: 43})
	p3 := w3.Ping(a, b, 10)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical measurements")
	}
}

func TestPingPhysicality(t *testing.T) {
	w := testWorld(t)
	hosts := w.Hosts
	for i := 0; i < len(hosts); i += 7 {
		for j := 1; j < len(hosts); j += 11 {
			if i == j {
				continue
			}
			a, b := hosts[i], hosts[j]
			rtt := w.MinPing(a, b, 10)
			gc := w.Nodes[a].Loc.DistanceKm(w.Nodes[b].Loc)
			// Physical bound: RTT must be at least the speed-of-light time.
			floor := geo.DistanceToMinLatencyMs(gc)
			if rtt < floor {
				t.Errorf("%s→%s: RTT %.2f ms beats light (%.2f ms for %.0f km)",
					w.Nodes[a].Name, w.Nodes[b].Name, rtt, floor, gc)
			}
			// And not absurdly inflated (sim sanity).
			if gc > 100 && rtt > floor*6+40 {
				t.Errorf("%s→%s: RTT %.2f ms looks broken (floor %.2f)",
					w.Nodes[a].Name, w.Nodes[b].Name, rtt, floor)
			}
		}
	}
}

func TestPingSymmetryAndSelf(t *testing.T) {
	w := testWorld(t)
	a, b := w.Hosts[3], w.Hosts[30]
	// Base RTT is symmetric (same path both ways under symmetric metric).
	if d := math.Abs(w.BaseRTTMs(a, b) - w.BaseRTTMs(b, a)); d > 1e-9 {
		t.Errorf("BaseRTT asymmetry %v", d)
	}
	if got := w.Ping(a, a, 5); len(got) != 5 || got[0] != 0 {
		t.Errorf("self ping = %v", got)
	}
}

func TestMinPingConvergesToBase(t *testing.T) {
	w := testWorld(t)
	a, b := w.Hosts[0], w.Hosts[25]
	base := w.BaseRTTMs(a, b)
	min50 := w.MinPing(a, b, 50)
	if min50 < base {
		t.Fatalf("min ping %.3f below base %.3f", min50, base)
	}
	if min50-base > 1.0 {
		t.Errorf("min of 50 probes should be within 1ms of base: %.3f vs %.3f", min50, base)
	}
}

func TestLatencyDistanceCorrelation(t *testing.T) {
	// The Fig. 2 premise: latency correlates with distance, tighter than
	// the speed-of-light bound, with an empty lower-right region.
	w := testWorld(t)
	hosts := w.Hosts
	var ratios []float64
	for i := range hosts {
		for j := i + 1; j < len(hosts); j++ {
			gc := w.Nodes[hosts[i]].Loc.DistanceKm(w.Nodes[hosts[j]].Loc)
			if gc < 200 {
				continue
			}
			rtt := w.MinPing(hosts[i], hosts[j], 10)
			maxD := geo.LatencyToMaxDistanceKm(rtt)
			ratios = append(ratios, gc/maxD) // ≤ 1 by physics
		}
	}
	med := stats.Median(ratios)
	if med < 0.45 || med > 0.98 {
		t.Errorf("median geographic efficiency %.3f: want realistic 0.45–0.98", med)
	}
	if stats.Max(ratios) > 1.0 {
		t.Errorf("some pair beats the speed of light: %.3f", stats.Max(ratios))
	}
}

func TestRouteProperties(t *testing.T) {
	w := testWorld(t)
	a, b := w.Hosts[1], w.Hosts[20]
	path := w.Route(a, b)
	if path == nil || path[0] != a || path[len(path)-1] != b {
		t.Fatalf("bad route %v", path)
	}
	// Interior nodes are routers.
	for _, id := range path[1 : len(path)-1] {
		if w.Nodes[id].Kind == KindHost {
			t.Errorf("route transits a host: %s", w.Nodes[id].Name)
		}
	}
	// Inflation ≥ 1 and not crazy.
	infl := w.PathInflation(path)
	if infl < 1 || infl > 5 {
		t.Errorf("path inflation %.2f out of range", infl)
	}
	// Reverse route mirrors under symmetric metric.
	rev := w.Route(b, a)
	if len(rev) != len(path) {
		t.Errorf("forward/reverse length mismatch %d vs %d", len(path), len(rev))
	}
}

func TestTraceroute(t *testing.T) {
	w := testWorld(t)
	a, b := w.Hosts[2], w.Hosts[40]
	hops := w.Traceroute(a, b, 3)
	if len(hops) < 3 {
		t.Fatalf("too few hops: %d", len(hops))
	}
	// Last hop is the destination host.
	if hops[len(hops)-1].NodeID != b {
		t.Errorf("last hop %v, want destination %d", hops[len(hops)-1], b)
	}
	// Cumulative RTT roughly non-decreasing (jitter may wiggle slightly,
	// allow 5ms backwardness).
	for i := 1; i < len(hops); i++ {
		if hops[i].RTTMs < hops[i-1].RTTMs-5 {
			t.Errorf("hop %d RTT %.2f way below previous %.2f", i, hops[i].RTTMs, hops[i-1].RTTMs)
		}
	}
	// Router names carry POP codes.
	foundCode := false
	for _, h := range hops[:len(hops)-1] {
		if strings.Contains(h.Name, ".simnet.net") {
			foundCode = true
		}
	}
	if !foundCode {
		t.Error("no simnet router names in traceroute")
	}
	// Self-traceroute.
	if hops := w.Traceroute(a, a, 1); len(hops) != 0 {
		t.Errorf("self traceroute = %v", hops)
	}
}

func TestReverseDNSAndHostByName(t *testing.T) {
	w := testWorld(t)
	h := w.Nodes[w.Hosts[0]]
	if got := w.ReverseDNS(h.IP); got != h.Name {
		t.Errorf("ReverseDNS(%s) = %q, want %q", h.IP, got, h.Name)
	}
	if got := w.ReverseDNS("203.0.113.9"); got != "" {
		t.Errorf("unknown IP resolved to %q", got)
	}
	n, ok := w.HostByName(h.Name)
	if !ok || n.ID != h.ID {
		t.Errorf("HostByName(%q) = %v %v", h.Name, n, ok)
	}
	if _, ok := w.HostByName("nope.example.com"); ok {
		t.Error("unknown name should not resolve")
	}
}

func TestWhoisRecords(t *testing.T) {
	w := testWorld(t)
	nErr := 0
	for _, id := range w.Hosts {
		n := w.Nodes[id]
		rec, ok := w.Whois(n.IP)
		if !ok {
			t.Fatalf("missing WHOIS for %s", n.Name)
		}
		if rec.Correct {
			if rec.City != n.City || rec.Zip != n.Zip {
				t.Errorf("correct record mismatch for %s: %+v", n.Name, rec)
			}
		} else {
			nErr++
			if rec.Loc.DistanceKm(n.Loc) < 1 {
				t.Errorf("incorrect record for %s points at the true city", n.Name)
			}
		}
	}
	// Error rate near the configured 15%.
	rate := float64(nErr) / float64(len(w.Hosts))
	if rate < 0.02 || rate > 0.40 {
		t.Errorf("WHOIS error rate %.2f implausible for cfg 0.15", rate)
	}
	if _, ok := w.Whois("198.51.100.7"); ok {
		t.Error("unknown IP should have no WHOIS record")
	}
}

func TestAccessHeightGroundTruth(t *testing.T) {
	w := testWorld(t)
	for _, id := range w.Hosts {
		h := w.AccessHeight(id)
		if h < 0.1 || h > w.Cfg.MaxAccessMs {
			t.Errorf("host %s height %.3f outside [0.1, %.1f]", w.Nodes[id].Name, h, w.Cfg.MaxAccessMs)
		}
	}
	// Routers have no access height.
	for _, n := range w.Nodes {
		if n.Kind != KindHost && w.AccessHeight(n.ID) != 0 {
			t.Errorf("router %s has nonzero height", n.Name)
		}
	}
}

func TestIndirectRoutesExist(t *testing.T) {
	// §2.3 premise: some pairs see materially inflated routes.
	w := testWorld(t)
	n := 0
	inflated := 0
	for i := 0; i < len(w.Hosts); i += 3 {
		for j := i + 1; j < len(w.Hosts); j += 5 {
			path := w.Route(w.Hosts[i], w.Hosts[j])
			gc := w.Nodes[w.Hosts[i]].Loc.DistanceKm(w.Nodes[w.Hosts[j]].Loc)
			if gc < 300 {
				continue
			}
			n++
			if w.PathInflation(path) > 1.35 {
				inflated++
			}
		}
	}
	if n == 0 {
		t.Fatal("no pairs sampled")
	}
	if inflated == 0 {
		t.Error("no indirect routes in the topology; §2.3 machinery untestable")
	}
}

func TestCityByCode(t *testing.T) {
	if c := CityByCode("chi"); c == nil || c.Name != "Chicago" {
		t.Errorf("CityByCode(chi) = %v", c)
	}
	if c := CityByCode("zzz"); c != nil {
		t.Errorf("unknown code returned %v", c)
	}
}
