package netsim

import (
	"math"
	"math/rand/v2"
	"sync"

	"octant/internal/geo"
)

// Measurement simulation. An RTT sample between two hosts decomposes as
//
//	RTT = 2·(Σ link fiber propagation + Σ router min-queue)  [path base]
//	    + height(src) + height(dst)                          [access delay]
//	    + jitter                                             [per-probe ≥ 0]
//
// matching the paper's model: an inelastic per-host component (§2.2 heights)
// on top of transmission delay over an indirect route (§2.3), plus elastic
// queuing that min-filtering over time-dispersed probes mostly removes.

// Hop is one traceroute step.
type Hop struct {
	NodeID int
	Name   string // reverse-DNS name of the router
	IP     string
	RTTMs  float64 // cumulative round-trip time to this hop
	Loc    geo.Point
}

// BaseRTTMs returns the deterministic floor RTT between two nodes: the
// minimum any probe can observe (including any injected pair drift).
func (w *World) BaseRTTMs(src, dst int) float64 {
	if src == dst {
		return 0
	}
	path := w.Route(src, dst)
	if path == nil {
		return math.Inf(1)
	}
	return w.pathBaseRTT(path) + w.Nodes[src].accessMs + w.Nodes[dst].accessMs + w.PairDriftMs(src, dst)
}

// SetPairDriftMs injects an extra symmetric RTT of ms between nodes a and
// b, on top of the topology-derived base. It models the network changing
// underneath a long-running deployment — a rerouted path, a congested
// peering — which is exactly what the survey lifecycle's recalibration
// exists to absorb. Setting ms = 0 removes the drift. Safe to call while
// measurements are in flight; probes observe the new floor immediately.
//
// Drift is end-to-end per pair (applied in BaseRTTMs, hence Ping), not
// per-link: it deliberately leaves every other pair's measurements
// bit-identical, so tests can drift landmark↔landmark pairs while
// landmark→target probing stays untouched.
func (w *World) SetPairDriftMs(a, b int, ms float64) {
	key := pairKey(a, b)
	if ms == 0 {
		w.drift.Delete(key)
		return
	}
	w.drift.Store(key, ms)
}

// PairDriftMs returns the drift currently injected between a and b.
func (w *World) PairDriftMs(a, b int) float64 {
	v, ok := w.drift.Load(pairKey(a, b))
	if !ok {
		return 0
	}
	return v.(float64)
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// PingCalls returns how many Ping calls this world has served (each call
// issues n probe samples; calls are what measurement budgets count).
func (w *World) PingCalls() uint64 { return w.pingCalls.Load() }

// TracerouteCalls returns how many Traceroute calls this world has served.
func (w *World) TracerouteCalls() uint64 { return w.tracerouteCalls.Load() }

// pathBaseRTT is the round-trip propagation plus min-queuing along a path,
// excluding endpoint access heights.
func (w *World) pathBaseRTT(path []int) float64 {
	var oneWay float64
	for i := 0; i+1 < len(path); i++ {
		li := w.linkBetween(path[i], path[i+1])
		if li < 0 {
			return math.Inf(1)
		}
		oneWay += w.Links[li].FiberKm / geo.FiberSpeedKmPerMs
	}
	for _, id := range path[1 : len(path)-1] {
		oneWay += w.Nodes[id].minQueueMs
	}
	return 2 * oneWay
}

// probeSeed derives the deterministic first seed word for ordered probe
// traffic between two nodes; the second word is the caller's stream tag.
func (w *World) probeSeed(src, dst int) uint64 {
	k := w.seed ^ 0x9e3779b97f4a7c15
	k ^= uint64(src+1) * 0xbf58476d1ce4e5b9
	k ^= uint64(dst+1) * 0x94d049bb133111eb
	return k
}

// prng is a pooled, reseedable probe-noise generator. rand.Rand holds no
// stream state of its own and PCG.Seed(a, b) puts the generator in
// exactly the state NewPCG(a, b) constructs, so reseeding a pooled pair
// reproduces the per-call-constructed stream bit for bit — without the
// two heap objects per probe call (the Rand's source is consumed through
// an interface, which defeats stack allocation of a fresh pair).
type prng struct {
	pcg *rand.PCG
	rng *rand.Rand
}

var prngPool = sync.Pool{New: func() any {
	p := rand.NewPCG(0, 0)
	return &prng{pcg: p, rng: rand.New(p)}
}}

// getRNG returns a generator seeded as rand.New(rand.NewPCG(seed,
// stream)) would be; return it with prngPool.Put when done.
func getRNG(seed, stream uint64) *prng {
	p := prngPool.Get().(*prng)
	p.pcg.Seed(seed, stream)
	return p
}

// jitter draws one per-probe elastic delay: exponential with a heavy tail
// (10% of probes hit congested queues and see ~8× the mean).
func jitter(rng *rand.Rand, meanMs float64) float64 {
	j := rng.ExpFloat64() * meanMs
	if rng.Float64() < 0.10 {
		j += rng.ExpFloat64() * meanMs * 8
	}
	return j
}

// Ping returns n RTT samples (ms) between two nodes, simulating
// time-dispersed ICMP probes. Samples are deterministic for a given
// (world seed, src, dst) and independent of call order. A downed
// endpoint or blackholed pair yields no samples at all; a lossy pair
// (SetPairLossRate) may return fewer than n, down to zero.
func (w *World) Ping(src, dst, n int) []float64 {
	w.pingCalls.Add(1)
	if n <= 0 {
		n = 1
	}
	if w.PathFault(src, dst) != "" {
		return nil
	}
	out := make([]float64, n)
	if src == dst {
		return out
	}
	base := w.BaseRTTMs(src, dst)
	p := getRNG(w.probeSeed(src, dst), 0xfeed)
	for i := range out {
		out[i] = base + jitter(p.rng, w.Cfg.JitterMeanMs)
	}
	prngPool.Put(p)
	if rate := w.PairLossRate(src, dst); rate > 0 {
		out = w.dropLost(out, src, dst, rate)
	}
	return out
}

// MinPing returns the minimum of n time-dispersed RTT samples — the
// standard latency estimator the paper's calibration consumes.
func (w *World) MinPing(src, dst, n int) float64 {
	samples := w.Ping(src, dst, n)
	m := math.Inf(1)
	for _, s := range samples {
		if s < m {
			m = s
		}
	}
	return m
}

// Traceroute returns the router-level path from src to dst with cumulative
// per-hop RTTs (each hop measured with nProbe probes, min-filtered). The
// destination host is the final hop. Router hops expose the DNS names that
// the undns rules parse.
func (w *World) Traceroute(src, dst, nProbe int) []Hop {
	w.tracerouteCalls.Add(1)
	if nProbe <= 0 {
		nProbe = 3
	}
	path := w.Route(src, dst)
	if path == nil {
		return nil
	}
	if w.PathFault(src, dst) != "" {
		return nil
	}
	p := getRNG(w.probeSeed(src, dst), 0x7ace)
	defer prngPool.Put(p)
	rng := p.rng
	hops := make([]Hop, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		if w.NodeDown(path[i]) {
			// Probes beyond a dead router never answer: the trace
			// truncates at the last live hop, as on the real Internet.
			break
		}
		sub := path[:i+1]
		base := w.pathBaseRTT(sub) + w.Nodes[src].accessMs
		node := w.Nodes[path[i]]
		if node.Kind == KindHost {
			base += node.accessMs
		}
		best := math.Inf(1)
		for p := 0; p < nProbe; p++ {
			if v := base + jitter(rng, w.Cfg.JitterMeanMs); v < best {
				best = v
			}
		}
		hops = append(hops, Hop{
			NodeID: node.ID,
			Name:   node.Name,
			IP:     node.IP,
			RTTMs:  best,
			Loc:    node.Loc,
		})
	}
	return hops
}

// ReverseDNS returns the reverse-DNS name for an IP address, or "" if
// unknown. For hosts carrying a synthetic operator name (buildHostRDNS)
// this is the operator name, not the forward DNS name.
func (w *World) ReverseDNS(ip string) string {
	for _, n := range w.Nodes {
		if n.IP == ip {
			return w.ReverseName(n.ID)
		}
	}
	return ""
}
