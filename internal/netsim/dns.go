package netsim

import "fmt"

// Router naming. Real backbone routers encode their POP city in DNS names
// ("sl-bb21-chi-14-0.sprintlink.net"); the paper's GeoTrack baseline and
// Octant's piecewise localization both exploit this via undns-style rules.
// The simulator emits the same shapes so the parsing path is exercised for
// real.

// backboneName formats a backbone router name for a POP city, e.g.
// "so-0-1-0.bb1.chi.simnet.net".
func backboneName(code string, index int) string {
	return fmt.Sprintf("so-0-%d-0.bb%d.%s.simnet.net", index%4, index, code)
}

// backboneNameOpaque formats a backbone router name that carries no city
// token (interface-numbered only). A meaningful fraction of real backbone
// routers are named this way, which is what gives traceroute-based
// localization its long error tail: when the last hop's name is opaque,
// the technique falls back to a router one or more backbone hops upstream.
func backboneNameOpaque(id int) string {
	return fmt.Sprintf("p64-%d-0-0.r%d.simnet.net", id%8, 20+id)
}

// accessName formats an access/aggregation router name for an institution
// homed at a POP, e.g. "ge-2-3.car1.cornell-gw.nyc.simnet.net".
func accessName(inst, popCode string) string {
	return fmt.Sprintf("ge-2-3.car1.%s-gw.%s.simnet.net", inst, popCode)
}

// accessNameOpaque formats a customer-named gateway with no geographic
// token, e.g. "ge-2-3.car1.cornell-gw.simnet.net" — the common real-world
// case undns cannot parse.
func accessNameOpaque(inst string) string {
	return fmt.Sprintf("ge-2-3.car1.%s-gw.simnet.net", inst)
}

// hostRDNSIATA formats an end-host reverse name carrying an airport-code
// city token, e.g. "pool-17.chi.edge.simnet.net" — the ISP pool-name shape
// HLOC-style hint extraction targets.
func hostRDNSIATA(id int, code string) string {
	return fmt.Sprintf("pool-%d.%s.edge.simnet.net", id, code)
}

// hostRDNSCLLI formats an end-host reverse name carrying a CLLI-style
// place token, e.g. "dsl-17.chcgil01.access.simnet.net" — the telco
// access-gear shape.
func hostRDNSCLLI(id int, clli string) string {
	return fmt.Sprintf("dsl-%d.%s01.access.simnet.net", id, clli)
}
