package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"octant/internal/geo"
)

// NodeKind distinguishes simulated node roles.
type NodeKind int

// Node kinds.
const (
	KindHost NodeKind = iota // end host (landmark or target)
	KindAccess
	KindBackbone
)

func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindAccess:
		return "access"
	case KindBackbone:
		return "backbone"
	}
	return "unknown"
}

// Node is a simulated host or router.
type Node struct {
	ID   int
	Kind NodeKind
	Name string // DNS name
	IP   string
	Loc  geo.Point
	City string // city name
	Code string // POP city code for routers; "" for hosts
	Zip  string // postal code (hosts)
	Inst string // institution (hosts)
	// RDNS is the node's reverse-DNS name when it differs from Name:
	// operator-assigned pool names for end hosts, possibly carrying an
	// IATA or CLLI city token (see buildHostRDNS). Empty means reverse
	// lookups return Name, as before.
	RDNS string

	// minQueueMs is the irreducible per-traversal queuing delay this node
	// adds in each direction (routers). accessMs is the per-host access
	// delay added to every RTT — the "height" of §2.2.
	minQueueMs float64
	accessMs   float64
}

// Link is an undirected edge between two nodes.
type Link struct {
	A, B    int
	DistKm  float64 // great-circle distance between endpoints
	FiberKm float64 // actual fiber path length (≥ DistKm)
	CostKm  float64 // routing metric (policy-weighted)
}

// Config controls world construction.
type Config struct {
	Seed  uint64
	Sites []SiteSpec // defaults to DefaultSites

	// MeanQueueMs is the mean of the exponential per-router minimum
	// queuing delay (default 0.15 ms — research-network backbones run
	// largely uncongested).
	MeanQueueMs float64
	// MaxAccessMs bounds the per-host access delay drawn uniformly from
	// [0.1, MaxAccessMs] (default 3 ms).
	MaxAccessMs float64
	// FiberSlackMax bounds per-link fiber path inflation drawn uniformly
	// from [1.05, FiberSlackMax] (default 1.25).
	FiberSlackMax float64
	// JitterMeanMs is the mean of the exponential per-probe jitter
	// (default 0.5 ms), with a heavy tail (10% of probes ×8).
	JitterMeanMs float64
	// NeighborLinks is the number of nearest-neighbour backbone links per
	// POP (default 3).
	NeighborLinks int
	// WhoisErrorRate is the fraction of WHOIS records pointing at the
	// registrant's national HQ instead of the host city (default 0.15).
	WhoisErrorRate float64

	// HostRDNSHintFrac is the fraction of eligible end hosts (those whose
	// nearest POP is close enough that its code is a truthful hint) given
	// operator-style reverse-DNS names carrying an IATA or CLLI city
	// token. Zero (the default) leaves every host's reverse name equal to
	// its DNS name — worlds built without this knob are bit-identical to
	// worlds built before it existed.
	HostRDNSHintFrac float64
	// HostRDNSWrongFrac is the fraction of hint-bearing reverse names
	// whose city token points at a far-away POP instead of the true one —
	// the misconfigured/recycled-name case RTT cross-validation exists to
	// catch. Only consulted when HostRDNSHintFrac > 0.
	HostRDNSWrongFrac float64
}

func (c *Config) fillDefaults() {
	if c.Sites == nil {
		c.Sites = DefaultSites
	}
	if c.MeanQueueMs == 0 {
		c.MeanQueueMs = 0.15
	}
	if c.MaxAccessMs == 0 {
		c.MaxAccessMs = 3
	}
	if c.FiberSlackMax == 0 {
		c.FiberSlackMax = 1.25
	}
	if c.JitterMeanMs == 0 {
		c.JitterMeanMs = 0.5
	}
	if c.NeighborLinks == 0 {
		c.NeighborLinks = 3
	}
	if c.WhoisErrorRate == 0 {
		c.WhoisErrorRate = 0.15
	}
}

// World is the simulated Internet. After NewWorld returns, the topology
// and every lookup table are read-only; the lazily filled Dijkstra route
// cache is a sync.Map, so all measurement methods (Ping, Traceroute,
// Route, Whois, ReverseDNS) are safe to call from many goroutines.
//
// The mutable measurement state is the pair-drift table (SetPairDriftMs),
// which models network conditions changing underneath a long-running
// deployment, and the fault tables (SetNodeDown, SetPairBlackhole,
// SetPairLossRate — see faults.go), which model the network breaking
// outright. Each is synchronized independently, so drift and faults may
// be injected while measurements are in flight.
type World struct {
	Cfg     Config
	Nodes   []*Node
	Links   []Link
	adj     [][]adjEdge // adjacency: node → edges
	Hosts   []int       // node IDs of end hosts, in site order
	seed    uint64
	whois   map[string]WhoisRecord // by IP
	nameIdx map[string]int         // DNS name → node ID
	routes  sync.Map               // src node ID → *routeTable

	// drift holds per-pair RTT offsets injected after construction
	// (SetPairDriftMs): [2]int{min,max} node IDs → extra ms.
	drift sync.Map
	// Fault-injection state (faults.go). faultCount tracks active fault
	// entries across all three maps; while it is zero every fault check
	// is a single atomic load, keeping the healthy measurement path
	// allocation- and bit-identical to a world without the fault API.
	downNodes  sync.Map // node ID (int) → true
	blackholes sync.Map // [2]int{min,max} node IDs → true
	loss       sync.Map // [2]int{min,max} node IDs → loss probability
	lossSeq    sync.Map // [2]int{min,max} node IDs → *atomic.Uint64 call ordinal
	faultCount atomic.Int64
	// pingCalls / tracerouteCalls account every measurement issued
	// against this world, so tests can assert how much probing a survey
	// build or an incremental recalibration actually performed.
	pingCalls       atomic.Uint64
	tracerouteCalls atomic.Uint64
}

type adjEdge struct {
	to   int
	link int // index into Links
}

// NewWorld builds a deterministic simulated Internet from cfg.
func NewWorld(cfg Config) *World {
	cfg.fillDefaults()
	w := &World{Cfg: cfg, seed: cfg.Seed, nameIdx: make(map[string]int)}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x0c7a47))

	// Backbone routers at POP cities. A quarter of them carry opaque,
	// city-free DNS names, as on the real Internet — undns coverage is
	// never complete.
	popID := make(map[string]int, len(POPCities))
	for i, city := range POPCities {
		name := backboneName(city.Code, 1)
		if rng.Float64() < 0.25 {
			name = backboneNameOpaque(i)
		}
		id := w.addNode(&Node{
			Kind:       KindBackbone,
			Name:       name,
			Loc:        city.Loc(),
			City:       city.Name,
			Code:       city.Code,
			minQueueMs: expClamped(rng, cfg.MeanQueueMs, 0.02, 2.5),
		})
		popID[city.Code] = id
	}

	// Backbone mesh: nearest neighbours + explicit long-haul corridors.
	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	addBackboneLink := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if seen[pair{a, b}] {
			return
		}
		seen[pair{a, b}] = true
		w.addLink(a, b, rng, cfg)
	}
	for _, city := range POPCities { // slice order: deterministic RNG use
		id := popID[city.Code]
		near := w.nearestPOPs(popID, city.Code, cfg.NeighborLinks)
		for _, n := range near {
			addBackboneLink(id, n)
		}
	}
	for _, lh := range longHaulLinks {
		a, aok := popID[lh[0]]
		b, bok := popID[lh[1]]
		if !aok || !bok {
			panic(fmt.Sprintf("netsim: unknown long-haul city %v", lh))
		}
		addBackboneLink(a, b)
	}

	// Sites: one access router + one host each. A site does not always
	// attach to its geographically nearest POP: some campus traffic rides
	// a regional aggregation network to a bigger hub first, so the
	// upstream is drawn from the three nearest POPs (90/8/2%). This
	// heterogeneity is what §2.3's piecewise localization exists to
	// handle, and it is what keeps traceroute-based techniques honest —
	// the last recognizable router can sit a few hundred km from the
	// target.
	for i, site := range cfg.Sites {
		candidates := w.nearestPOPsToPoint(popID, site.Loc(), 3)
		up := candidates[0]
		switch r := rng.Float64(); {
		case r > 0.98 && len(candidates) > 2:
			up = candidates[2]
		case r > 0.90 && len(candidates) > 1:
			up = candidates[1]
		}
		// Most campus gateway routers carry no city token in their DNS
		// names (customer links are named after the customer, not the
		// city); a minority embed the POP code.
		name := accessNameOpaque(site.Inst)
		if rng.Float64() < 0.4 {
			name = accessName(site.Inst, w.Nodes[up].Code)
		}
		access := w.addNode(&Node{
			Kind:       KindAccess,
			Name:       name,
			Loc:        site.Loc(),
			City:       site.City,
			Code:       w.Nodes[up].Code,
			minQueueMs: expClamped(rng, cfg.MeanQueueMs*1.5, 0.05, 3),
		})
		w.addLink(access, up, rng, cfg)
		host := w.addNode(&Node{
			Kind:     KindHost,
			Name:     site.Host,
			IP:       fmt.Sprintf("10.%d.%d.2", 1+i/200, 1+i%200),
			Loc:      site.Loc(),
			City:     site.City,
			Zip:      site.Zip,
			Inst:     site.Inst,
			accessMs: 0.1 + rng.Float64()*(cfg.MaxAccessMs-0.1),
		})
		w.addLink(host, access, rng, cfg)
		w.Hosts = append(w.Hosts, host)
	}
	w.buildAdjacency()
	w.ensureConnected(rng, cfg)
	w.buildWhois(rng, cfg)
	// Host reverse-DNS names draw from their own dedicated stream, after
	// all construction randomness above, so enabling them never perturbs
	// the topology, delays, or WHOIS records of an existing seed.
	if cfg.HostRDNSHintFrac > 0 {
		w.buildHostRDNS(cfg)
	}
	return w
}

func (w *World) addNode(n *Node) int {
	n.ID = len(w.Nodes)
	if n.IP == "" {
		n.IP = fmt.Sprintf("192.0.%d.%d", 2+n.ID/250, 1+n.ID%250)
	}
	w.Nodes = append(w.Nodes, n)
	w.nameIdx[n.Name] = n.ID
	return n.ID
}

func (w *World) addLink(a, b int, rng *rand.Rand, cfg Config) {
	na, nb := w.Nodes[a], w.Nodes[b]
	d := na.Loc.DistanceKm(nb.Loc)
	slack := 1.05 + rng.Float64()*(cfg.FiberSlackMax-1.05)
	// Policy bias: a few links are administratively expensive, diverting
	// traffic through detours (the §2.3 indirect-route effect).
	policy := 1.0
	if na.Kind == KindBackbone && nb.Kind == KindBackbone && rng.Float64() < 0.15 {
		policy = 1.5 + rng.Float64()
	}
	fiber := d*slack + 5 // +5km: local loops are never zero length
	w.Links = append(w.Links, Link{
		A: a, B: b,
		DistKm:  d,
		FiberKm: fiber,
		CostKm:  fiber * policy,
	})
}

func (w *World) buildAdjacency() {
	w.adj = make([][]adjEdge, len(w.Nodes))
	for li, l := range w.Links {
		w.adj[l.A] = append(w.adj[l.A], adjEdge{to: l.B, link: li})
		w.adj[l.B] = append(w.adj[l.B], adjEdge{to: l.A, link: li})
	}
}

// nearestPOPs returns node IDs of the k nearest POPs to the named one.
func (w *World) nearestPOPs(popID map[string]int, code string, k int) []int {
	self := popID[code]
	type cand struct {
		id int
		d  float64
	}
	var cands []cand
	for _, city := range POPCities {
		if city.Code == code {
			continue
		}
		id := popID[city.Code]
		cands = append(cands, cand{id, w.Nodes[self].Loc.DistanceKm(w.Nodes[id].Loc)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// nearestPOPsToPoint returns the k nearest POP node IDs to p, closest
// first, iterating deterministically.
func (w *World) nearestPOPsToPoint(popID map[string]int, p geo.Point, k int) []int {
	type cand struct {
		id int
		d  float64
	}
	cands := make([]cand, 0, len(popID))
	for _, city := range POPCities {
		id, ok := popID[city.Code]
		if !ok {
			continue
		}
		cands = append(cands, cand{id, p.DistanceKm(w.Nodes[id].Loc)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// ensureConnected links any disconnected components to the main one (safety
// net; the default topology is connected by construction).
func (w *World) ensureConnected(rng *rand.Rand, cfg Config) {
	comp := make([]int, len(w.Nodes))
	for i := range comp {
		comp[i] = -1
	}
	nc := 0
	for i := range w.Nodes {
		if comp[i] != -1 {
			continue
		}
		// BFS.
		queue := []int{i}
		comp[i] = nc
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range w.adj[cur] {
				if comp[e.to] == -1 {
					comp[e.to] = nc
					queue = append(queue, e.to)
				}
			}
		}
		nc++
	}
	if nc <= 1 {
		return
	}
	// Connect every extra component to component 0 via its backbone node
	// nearest to any component-0 backbone node.
	for c := 1; c < nc; c++ {
		bestA, bestB := -1, -1
		bestD := math.Inf(1)
		for i, ni := range w.Nodes {
			if comp[i] != c {
				continue
			}
			for j, nj := range w.Nodes {
				if comp[j] != 0 {
					continue
				}
				if d := ni.Loc.DistanceKm(nj.Loc); d < bestD {
					bestD, bestA, bestB = d, i, j
				}
			}
		}
		if bestA >= 0 {
			w.addLink(bestA, bestB, rng, cfg)
		}
	}
	w.buildAdjacency()
}

// HostByName returns the host node with the given DNS name.
func (w *World) HostByName(name string) (*Node, bool) {
	id, ok := w.nameIdx[name]
	if !ok {
		return nil, false
	}
	return w.Nodes[id], true
}

// NodeByID returns the node with the given ID (panics if out of range).
func (w *World) NodeByID(id int) *Node { return w.Nodes[id] }

// HostNodes returns the end-host nodes in site order.
func (w *World) HostNodes() []*Node {
	out := make([]*Node, len(w.Hosts))
	for i, id := range w.Hosts {
		out[i] = w.Nodes[id]
	}
	return out
}

// AccessHeight returns the true access delay ("height") of a host — the
// ground truth the §2.2 solver estimates. It returns 0 for routers.
func (w *World) AccessHeight(id int) float64 { return w.Nodes[id].accessMs }

// expClamped draws an exponential with the given mean, clamped to [lo, hi].
func expClamped(rng *rand.Rand, mean, lo, hi float64) float64 {
	v := rng.ExpFloat64() * mean
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
