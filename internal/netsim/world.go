// Package netsim implements the synthetic Internet that stands in for the
// paper's PlanetLab testbed (51 nodes, §3). It builds a router-level
// topology over real city coordinates, routes with policy-biased shortest
// paths (producing the indirect routes §2.3 compensates for), and simulates
// ICMP-style ping and traceroute with per-router queuing delay, per-host
// access delay ("heights", §2.2), and heavy-tailed per-probe jitter.
//
// Everything is deterministic given the World seed: probe noise streams are
// keyed by (seed, src, dst, probe index), so measurements are reproducible
// regardless of call order.
package netsim

import "octant/internal/geo"

// SiteSpec describes a landmark/target host site: a university campus with
// externally known coordinates, mirroring the paper's setup where "no two
// hosts reside in the same institution".
type SiteSpec struct {
	Host string // DNS host name of the PlanetLab-style node
	Inst string // institution code (unique)
	City string // city name
	Zip  string // postal code (used for WHOIS records)
	Lat  float64
	Lon  float64
}

// Loc returns the site's geographic position.
func (s SiteSpec) Loc() geo.Point { return geo.Pt(s.Lat, s.Lon) }

// DefaultSites is the 51-site deployment used throughout the evaluation:
// North American and European universities at their real coordinates, one
// host per institution (matching §3 of the paper).
var DefaultSites = []SiteSpec{
	{"planetlab1.csail.mit.edu", "mit", "Cambridge", "02139", 42.3601, -71.0942},
	{"planetlab2.cs.cornell.edu", "cornell", "Ithaca", "14853", 42.4534, -76.4735},
	{"planetlab1.cs.rochester.edu", "rochester", "Rochester", "14627", 43.1566, -77.6088},
	{"planetlab1.cs.cmu.edu", "cmu", "Pittsburgh", "15213", 40.4433, -79.9436},
	{"planetlab1.cs.princeton.edu", "princeton", "Princeton", "08544", 40.3573, -74.6672},
	{"planetlab1.cs.columbia.edu", "columbia", "New York", "10027", 40.8075, -73.9626},
	{"planetlab1.seas.upenn.edu", "upenn", "Philadelphia", "19104", 39.9522, -75.1932},
	{"planetlab1.cs.jhu.edu", "jhu", "Baltimore", "21218", 39.3299, -76.6205},
	{"planetlab1.umiacs.umd.edu", "umd", "College Park", "20742", 38.9869, -76.9426},
	{"planetlab1.cs.duke.edu", "duke", "Durham", "27708", 36.0014, -78.9382},
	{"planetlab1.cc.gatech.edu", "gatech", "Atlanta", "30332", 33.7756, -84.3963},
	{"planetlab1.cise.ufl.edu", "ufl", "Gainesville", "32611", 29.6436, -82.3549},
	{"planetlab1.cs.utexas.edu", "utexas", "Austin", "78712", 30.2849, -97.7341},
	{"planetlab1.cs.rice.edu", "rice", "Houston", "77005", 29.7174, -95.4018},
	{"planetlab1.ucsd.edu", "ucsd", "La Jolla", "92093", 32.8801, -117.2340},
	{"planetlab1.cs.ucla.edu", "ucla", "Los Angeles", "90095", 34.0689, -118.4452},
	{"planetlab1.caltech.edu", "caltech", "Pasadena", "91125", 34.1377, -118.1253},
	{"planetlab1.cs.ucsb.edu", "ucsb", "Santa Barbara", "93106", 34.4140, -119.8489},
	{"planetlab1.stanford.edu", "stanford", "Stanford", "94305", 37.4275, -122.1697},
	{"planetlab1.cs.berkeley.edu", "berkeley", "Berkeley", "94720", 37.8719, -122.2585},
	{"planetlab1.cs.washington.edu", "uw", "Seattle", "98195", 47.6553, -122.3035},
	{"planetlab1.cs.uoregon.edu", "uoregon", "Eugene", "97403", 44.0448, -123.0726},
	{"planetlab1.cs.ubc.ca", "ubc", "Vancouver", "V6T1Z4", 49.2606, -123.2460},
	{"planetlab1.cs.toronto.edu", "utoronto", "Toronto", "M5S1A1", 43.6629, -79.3957},
	{"planetlab1.cs.mcgill.ca", "mcgill", "Montreal", "H3A0G4", 45.5048, -73.5772},
	{"planetlab1.cs.uchicago.edu", "uchicago", "Chicago", "60637", 41.7886, -87.5987},
	{"planetlab1.cs.northwestern.edu", "northwestern", "Evanston", "60208", 42.0565, -87.6753},
	{"planetlab1.cs.uiuc.edu", "uiuc", "Urbana", "61801", 40.1020, -88.2272},
	{"planetlab1.eecs.umich.edu", "umich", "Ann Arbor", "48109", 42.2780, -83.7382},
	{"planetlab1.cs.wisc.edu", "wisc", "Madison", "53706", 43.0766, -89.4125},
	{"planetlab1.cs.umn.edu", "umn", "Minneapolis", "55455", 44.9740, -93.2277},
	{"planetlab1.cse.wustl.edu", "wustl", "St. Louis", "63130", 38.6488, -90.3108},
	{"planetlab1.ittc.ku.edu", "ku", "Lawrence", "66045", 38.9543, -95.2558},
	{"planetlab1.cs.colorado.edu", "colorado", "Boulder", "80309", 40.0076, -105.2659},
	{"planetlab1.flux.utah.edu", "utah", "Salt Lake City", "84112", 40.7649, -111.8421},
	{"planetlab1.eas.asu.edu", "asu", "Tempe", "85281", 33.4242, -111.9281},
	{"planetlab1.cs.unm.edu", "unm", "Albuquerque", "87131", 35.0844, -106.6198},
	{"planetlab1.cse.ohio-state.edu", "osu", "Columbus", "43210", 40.0067, -83.0305},
	{"planetlab1.cs.purdue.edu", "purdue", "West Lafayette", "47907", 40.4237, -86.9212},
	{"planetlab1.vuse.vanderbilt.edu", "vanderbilt", "Nashville", "37235", 36.1447, -86.8027},
	{"planetlab1.eecs.tulane.edu", "tulane", "New Orleans", "70118", 29.9403, -90.1205},
	{"planetlab1.cs.virginia.edu", "uva", "Charlottesville", "22904", 38.0336, -78.5080},
	{"planetlab1.cs.vt.edu", "vt", "Blacksburg", "24061", 37.2284, -80.4234},
	{"planetlab1.cs.dartmouth.edu", "dartmouth", "Hanover", "03755", 43.7044, -72.2887},
	{"planetlab1.cs.yale.edu", "yale", "New Haven", "06520", 41.3163, -72.9223},
	{"planetlab1.cs.brown.edu", "brown", "Providence", "02912", 41.8268, -71.4025},
	{"planetlab1.cs.umass.edu", "umass", "Amherst", "01003", 42.3868, -72.5301},
	{"planetlab1.cs.rpi.edu", "rpi", "Troy", "12180", 42.7298, -73.6789},
	{"planetlab1.cl.cam.ac.uk", "cambridge", "Cambridge UK", "CB21TN", 52.2043, 0.1149},
	{"planetlab1.ethz.ch", "ethz", "Zurich", "8092", 47.3769, 8.5417},
	{"planetlab1.epfl.ch", "epfl", "Lausanne", "1015", 46.5191, 6.5668},
}

// City is a backbone point-of-presence location. Code is the airport-style
// token that appears in router DNS names (the structure undns exploits).
type City struct {
	Name    string
	Code    string // 3-letter token used in router names
	Country string
	Lat     float64
	Lon     float64
}

// Loc returns the city's geographic position.
func (c City) Loc() geo.Point { return geo.Pt(c.Lat, c.Lon) }

// POPCities are the backbone point-of-presence cities. Every site attaches
// to its nearest POP through an access router; backbone links interconnect
// POPs (nearest-neighbour mesh plus explicit long-haul and transatlantic
// links).
var POPCities = []City{
	{"New York", "nyc", "US", 40.7128, -74.0060},
	{"Boston", "bos", "US", 42.3601, -71.0589},
	{"Philadelphia", "phl", "US", 39.9526, -75.1652},
	{"Washington", "wdc", "US", 38.9072, -77.0369},
	{"Atlanta", "atl", "US", 33.7490, -84.3880},
	{"Miami", "mia", "US", 25.7617, -80.1918},
	{"Orlando", "orl", "US", 28.5383, -81.3792},
	{"Charlotte", "clt", "US", 35.2271, -80.8431},
	{"Raleigh", "rdu", "US", 35.7796, -78.6382},
	{"Pittsburgh", "pit", "US", 40.4406, -79.9959},
	{"Cleveland", "cle", "US", 41.4993, -81.6944},
	{"Columbus", "cmh", "US", 39.9612, -82.9988},
	{"Detroit", "dtw", "US", 42.3314, -83.0458},
	{"Indianapolis", "ind", "US", 39.7684, -86.1581},
	{"Chicago", "chi", "US", 41.8781, -87.6298},
	{"Minneapolis", "msp", "US", 44.9778, -93.2650},
	{"St. Louis", "stl", "US", 38.6270, -90.1994},
	{"Kansas City", "mci", "US", 39.0997, -94.5786},
	{"Nashville", "bna", "US", 36.1627, -86.7816},
	{"Memphis", "mem", "US", 35.1495, -90.0490},
	{"New Orleans", "msy", "US", 29.9511, -90.0715},
	{"Houston", "iah", "US", 29.7604, -95.3698},
	{"Dallas", "dfw", "US", 32.7767, -96.7970},
	{"Austin", "aus", "US", 30.2672, -97.7431},
	{"Denver", "den", "US", 39.7392, -104.9903},
	{"Salt Lake City", "slc", "US", 40.7608, -111.8910},
	{"Phoenix", "phx", "US", 33.4484, -112.0740},
	{"Albuquerque", "abq", "US", 35.0844, -106.6504},
	{"Las Vegas", "las", "US", 36.1699, -115.1398},
	{"Los Angeles", "lax", "US", 34.0522, -118.2437},
	{"San Diego", "san", "US", 32.7157, -117.1611},
	{"San Jose", "sjc", "US", 37.3382, -121.8863},
	{"San Francisco", "sfo", "US", 37.7749, -122.4194},
	{"Sacramento", "smf", "US", 38.5816, -121.4944},
	{"Portland", "pdx", "US", 45.5152, -122.6784},
	{"Seattle", "sea", "US", 47.6062, -122.3321},
	{"Vancouver", "yvr", "CA", 49.2827, -123.1207},
	{"Toronto", "yyz", "CA", 43.6532, -79.3832},
	{"Montreal", "yul", "CA", 45.5017, -73.5673},
	{"Buffalo", "buf", "US", 42.8864, -78.8784},
	{"Albany", "alb", "US", 42.6526, -73.7562},
	{"London", "lon", "GB", 51.5074, -0.1278},
	{"Amsterdam", "ams", "NL", 52.3676, 4.9041},
	{"Frankfurt", "fra", "DE", 50.1109, 8.6821},
	{"Paris", "par", "FR", 48.8566, 2.3522},
	{"Zurich", "zrh", "CH", 47.3769, 8.5417},
	{"Geneva", "gva", "CH", 46.2044, 6.1432},
}

// longHaulLinks are explicit backbone links guaranteeing realistic transit
// corridors beyond the nearest-neighbour mesh (city code pairs).
var longHaulLinks = [][2]string{
	{"nyc", "chi"}, {"nyc", "wdc"}, {"nyc", "bos"}, {"nyc", "atl"},
	{"wdc", "atl"}, {"atl", "dfw"}, {"atl", "mia"}, {"chi", "den"},
	{"chi", "dfw"}, {"chi", "msp"}, {"den", "sfo"}, {"den", "slc"},
	{"den", "dfw"}, {"dfw", "lax"}, {"dfw", "iah"}, {"slc", "sea"},
	{"sfo", "sea"}, {"sfo", "lax"}, {"lax", "phx"}, {"sea", "yvr"},
	{"chi", "yyz"}, {"yyz", "yul"}, {"nyc", "yyz"},
	// Transatlantic and intra-European corridors.
	{"nyc", "lon"}, {"wdc", "lon"}, {"lon", "ams"}, {"lon", "par"},
	{"ams", "fra"}, {"par", "fra"}, {"fra", "zrh"}, {"par", "gva"},
	{"zrh", "gva"},
}

// CLLIByCode maps POP city codes to the CLLI-style place prefixes that
// telco operators embed in access-gear reverse names ("dsl-7.chcgil01…"
// → Chicago, IL). The hint engine registers these alongside the IATA
// codes; the simulator draws on them when emitting CLLI-flavoured host
// reverse names.
var CLLIByCode = map[string]string{
	"nyc": "nycmny", "bos": "bstnma", "phl": "phlapa", "wdc": "washdc",
	"atl": "atlnga", "mia": "miamfl", "orl": "orldfl", "clt": "chrlnc",
	"rdu": "rlghnc", "pit": "ptsbpa", "cle": "clevoh", "cmh": "clmboh",
	"dtw": "dtrtmi", "ind": "ipllin", "chi": "chcgil", "msp": "mplsmn",
	"stl": "stlsmo", "mci": "knscmo", "bna": "nshvtn", "mem": "mmphtn",
	"msy": "nworla", "iah": "hstntx", "dfw": "dllstx", "aus": "austtx",
	"den": "dnvrco", "slc": "sltlut", "phx": "phnxaz", "abq": "albqnm",
	"las": "lsvgnv", "lax": "lsanca", "san": "sndgca", "sjc": "snjsca",
	"sfo": "snfcca", "smf": "scrmca", "pdx": "ptldor", "sea": "sttlwa",
	"yvr": "vancbc", "yyz": "trnton", "yul": "mtrlpq", "buf": "bfflny",
	"alb": "albyny", "lon": "londen", "ams": "amstnl", "fra": "frnkde",
	"par": "parsfr", "zrh": "zurhch", "gva": "genvch",
}

// CityByCode returns the POP city with the given code, or nil.
func CityByCode(code string) *City {
	for i := range POPCities {
		if POPCities[i].Code == code {
			return &POPCities[i]
		}
	}
	return nil
}
