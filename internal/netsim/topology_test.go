package netsim

import (
	"sort"
	"strings"
	"testing"
)

func TestTopologyInvariants(t *testing.T) {
	w := NewWorld(Config{Seed: 9})

	// Node counts: one backbone per POP, one access + one host per site.
	var hosts, access, backbone int
	for _, n := range w.Nodes {
		switch n.Kind {
		case KindHost:
			hosts++
		case KindAccess:
			access++
		case KindBackbone:
			backbone++
		}
	}
	if hosts != len(DefaultSites) || access != len(DefaultSites) {
		t.Errorf("hosts=%d access=%d, want %d each", hosts, access, len(DefaultSites))
	}
	if backbone != len(POPCities) {
		t.Errorf("backbone=%d, want %d", backbone, len(POPCities))
	}

	// Links: fiber ≥ geodesic, cost ≥ fiber.
	for i, l := range w.Links {
		if l.FiberKm < l.DistKm {
			t.Errorf("link %d: fiber %.1f < distance %.1f", i, l.FiberKm, l.DistKm)
		}
		if l.CostKm < l.FiberKm-1e-9 {
			t.Errorf("link %d: cost %.1f < fiber %.1f", i, l.CostKm, l.FiberKm)
		}
	}

	// Full connectivity: every host can route to every other host.
	for i := 0; i < len(w.Hosts); i += 10 {
		for j := 1; j < len(w.Hosts); j += 13 {
			if i == j {
				continue
			}
			if w.Route(w.Hosts[i], w.Hosts[j]) == nil {
				t.Fatalf("no route between hosts %d and %d", i, j)
			}
		}
	}
}

func TestSiteUpstreamIsAmongNearestPOPs(t *testing.T) {
	w := NewWorld(Config{Seed: 9})
	// For each host, the access router's POP code must belong to one of
	// the three nearest POP cities.
	for _, id := range w.Hosts {
		host := w.Nodes[id]
		// The access router is the host's only neighbour.
		if len(w.adj[id]) != 1 {
			t.Fatalf("host %s has %d links", host.Name, len(w.adj[id]))
		}
		acc := w.Nodes[w.adj[id][0].to]
		if acc.Kind != KindAccess {
			t.Fatalf("host %s neighbour is %v", host.Name, acc.Kind)
		}
		type cand struct {
			code string
			d    float64
		}
		var cands []cand
		for _, c := range POPCities {
			cands = append(cands, cand{c.Code, host.Loc.DistanceKm(c.Loc())})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		ok := false
		for _, c := range cands[:3] {
			if c.code == acc.Code {
				ok = true
			}
		}
		if !ok {
			t.Errorf("host %s attached to POP %q, not among 3 nearest (%v %v %v)",
				host.Name, acc.Code, cands[0].code, cands[1].code, cands[2].code)
		}
	}
}

func TestRouterNamingMix(t *testing.T) {
	w := NewWorld(Config{Seed: 9})
	var coded, opaque int
	for _, n := range w.Nodes {
		if n.Kind != KindAccess {
			continue
		}
		// Coded access names embed the POP code as a label.
		if strings.Contains(n.Name, "."+n.Code+".") {
			coded++
		} else {
			opaque++
		}
	}
	total := coded + opaque
	if total == 0 {
		t.Fatal("no access routers")
	}
	frac := float64(coded) / float64(total)
	if frac < 0.15 || frac > 0.70 {
		t.Errorf("coded access-name fraction %.2f implausible for cfg 0.4", frac)
	}
	// Some backbone routers must be opaquely named too.
	var bbOpaque int
	for _, n := range w.Nodes {
		if n.Kind == KindBackbone && !strings.Contains(n.Name, "."+n.Code+".") {
			bbOpaque++
		}
	}
	if bbOpaque == 0 {
		t.Error("expected some opaque backbone names")
	}
	if bbOpaque > len(POPCities)/2 {
		t.Errorf("too many opaque backbones: %d", bbOpaque)
	}
}

func TestRouteIsShortestUnderCostMetric(t *testing.T) {
	w := NewWorld(Config{Seed: 9})
	a, b := w.Hosts[0], w.Hosts[30]
	path := w.Route(a, b)
	if path == nil {
		t.Fatal("no route")
	}
	// The route's total cost must match the Dijkstra tree cost.
	var cost float64
	for i := 0; i+1 < len(path); i++ {
		li := w.linkBetween(path[i], path[i+1])
		if li < 0 {
			t.Fatal("broken path")
		}
		cost += w.Links[li].CostKm
	}
	tree := w.shortestTree(a)
	if diff := cost - tree.cost[b]; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("path cost %.3f != tree cost %.3f", cost, tree.cost[b])
	}
	// Unreachable node sentinel.
	if w.Route(a, a) == nil {
		t.Error("self route should be the trivial path")
	}
}

func TestPathFiberAndInflation(t *testing.T) {
	w := NewWorld(Config{Seed: 9})
	a, b := w.Hosts[3], w.Hosts[44]
	path := w.Route(a, b)
	fiber := w.PathFiberKm(path)
	gc := w.Nodes[a].Loc.DistanceKm(w.Nodes[b].Loc)
	if fiber < gc {
		t.Errorf("fiber %.0f < geodesic %.0f", fiber, gc)
	}
	if infl := w.PathInflation(path); infl < 1 {
		t.Errorf("inflation %.2f < 1", infl)
	}
	if got := w.PathInflation(nil); got != 1 {
		t.Errorf("empty path inflation = %v", got)
	}
	if got := w.PathFiberKm([]int{a}); got != 0 {
		t.Errorf("single-node path fiber = %v", got)
	}
}
