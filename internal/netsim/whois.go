package netsim

import (
	"math"
	"math/rand/v2"

	"octant/internal/geo"
)

// WhoisRecord is a simulated WHOIS registration for an IP prefix. As on the
// real Internet, a fraction of records point at the registrant's national
// headquarters rather than the host's actual city — which is why the paper
// treats WHOIS-derived zip codes as weighted, fallible positive constraints
// (§2.5) rather than ground truth.
type WhoisRecord struct {
	IP      string
	OrgName string
	City    string
	Zip     string
	Loc     geo.Point // location the record implies
	Correct bool      // whether the record matches the host's true city
}

// hqCity is where erroneous WHOIS records point: a national registrar
// headquarters (we use the Washington, DC POP).
const hqCityCode = "wdc"

// buildWhois assigns a WHOIS record to every host IP. Correct records are
// city-granular, not host-granular: the implied location is the zip-code
// centroid, displaced up to ~18 km from the actual machine — matching the
// real registry precision that makes the paper treat WHOIS as a weak
// constraint rather than an answer.
func (w *World) buildWhois(rng *rand.Rand, cfg Config) {
	w.whois = make(map[string]WhoisRecord, len(w.Hosts))
	hq := CityByCode(hqCityCode)
	for _, id := range w.Hosts {
		n := w.Nodes[id]
		bearing := rng.Float64() * 2 * math.Pi
		offsetKm := 2 + rng.Float64()*16
		rec := WhoisRecord{
			IP:      n.IP,
			OrgName: n.Inst,
			City:    n.City,
			Zip:     n.Zip,
			Loc:     n.Loc.Destination(bearing, offsetKm),
			Correct: true,
		}
		if rng.Float64() < cfg.WhoisErrorRate {
			rec.City = hq.Name
			rec.Zip = "20001"
			rec.Loc = hq.Loc()
			rec.Correct = false
		}
		w.whois[n.IP] = rec
	}
}

// Whois looks up the WHOIS record for an IP. ok is false for unknown IPs.
func (w *World) Whois(ip string) (WhoisRecord, bool) {
	rec, ok := w.whois[ip]
	return rec, ok
}
