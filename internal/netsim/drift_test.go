package netsim

import (
	"math"
	"testing"
)

// TestPairDriftShiftsOnlyThatPair: injected drift raises the drifted
// pair's RTT floor by exactly the offset, symmetrically, while every
// other pair — including pairs sharing an endpoint — measures
// bit-identically to the pre-drift world.
func TestPairDriftShiftsOnlyThatPair(t *testing.T) {
	w := NewWorld(Config{Seed: 4, Sites: DefaultSites[:10]})
	hosts := w.Hosts
	a, b, c := hosts[0], hosts[1], hosts[2]

	baseAB := w.BaseRTTMs(a, b)
	baseAC := w.BaseRTTMs(a, c)
	pingAB := w.Ping(a, b, 5)
	pingAC := w.Ping(a, c, 5)

	w.SetPairDriftMs(a, b, 17.5)
	if got := w.BaseRTTMs(a, b); got != baseAB+17.5 {
		t.Errorf("drifted base = %v, want %v", got, baseAB+17.5)
	}
	if got := w.BaseRTTMs(b, a); got != baseAB+17.5 {
		t.Errorf("drift not symmetric: %v", got)
	}
	if got := w.BaseRTTMs(a, c); got != baseAC {
		t.Errorf("undrifted pair moved: %v != %v", got, baseAC)
	}
	for i, v := range w.Ping(a, b, 5) {
		// base+drift is summed before jitter, so allow one ulp of
		// reassociation; the jitter stream itself must not reroll.
		if math.Abs(v-(pingAB[i]+17.5)) > 1e-9 {
			t.Errorf("drifted ping[%d] = %v, want %v (jitter stream must not reroll)", i, v, pingAB[i]+17.5)
		}
	}
	for i, v := range w.Ping(a, c, 5) {
		if v != pingAC[i] {
			t.Errorf("undrifted ping[%d] moved: %v != %v", i, v, pingAC[i])
		}
	}

	// Removing the drift restores the original floor exactly.
	w.SetPairDriftMs(b, a, 0)
	if got := w.BaseRTTMs(a, b); got != baseAB {
		t.Errorf("drift removal left %v, want %v", got, baseAB)
	}
	if d := w.PairDriftMs(a, b); d != 0 {
		t.Errorf("residual drift %v", d)
	}
}

// TestProbeCallAccounting: the world counts every Ping and Traceroute it
// serves, so higher layers can assert measurement budgets.
func TestProbeCallAccounting(t *testing.T) {
	w := NewWorld(Config{Seed: 5, Sites: DefaultSites[:8]})
	hosts := w.Hosts
	p0, t0 := w.PingCalls(), w.TracerouteCalls()

	w.Ping(hosts[0], hosts[1], 10)
	w.Ping(hosts[1], hosts[2], 1)
	w.MinPing(hosts[2], hosts[3], 4)
	w.Traceroute(hosts[0], hosts[3], 3)

	if got := w.PingCalls() - p0; got != 3 {
		t.Errorf("ping calls = %d, want 3", got)
	}
	if got := w.TracerouteCalls() - t0; got != 1 {
		t.Errorf("traceroute calls = %d, want 1", got)
	}
}
