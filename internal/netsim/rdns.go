package netsim

import (
	"math/rand/v2"
	"sort"

	"octant/internal/geo"
)

// Host reverse-DNS synthesis. Real access networks assign end hosts
// operator pool names ("pool-17.chi.edge.example.net",
// "dsl-42.chcgil01.access.example.net") whose city tokens — airport codes
// or CLLI place prefixes — are the hostname hints HLOC-style localization
// mines. The simulator reproduces both shapes, plus the failure mode that
// makes RTT cross-validation necessary: a configurable fraction of names
// carry the code of a far-away city (recycled names, misconfigured
// reverse zones).

// hostRDNSMaxHintKm bounds which hosts can carry a truthful hint: only
// hosts whose nearest POP is within this range get names, because a
// "correct" code for a POP hundreds of km away would itself be a wrong
// hint. Pure geometry — no randomness — so the eligible set is a fixed
// property of the site list.
const hostRDNSMaxHintKm = 75

// hostRDNSWrongMinKm is how far a wrong-hint city must be from the host's
// true position — far enough that the speed-of-light bound from any
// nearby landmark exposes it.
const hostRDNSWrongMinKm = 1500

// buildHostRDNS assigns reverse-DNS names to eligible hosts. It draws
// from a stream disjoint from every other construction draw (NewWorld
// calls it last, and only when HostRDNSHintFrac > 0), so the same seed
// yields the same topology with and without host rDNS.
func (w *World) buildHostRDNS(cfg Config) {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x2d5a1f))
	for _, id := range w.Hosts {
		n := w.Nodes[id]
		code, nearKm := nearestPOPCity(n.Loc)
		if nearKm > hostRDNSMaxHintKm {
			continue
		}
		if rng.Float64() >= cfg.HostRDNSHintFrac {
			continue
		}
		if rng.Float64() < cfg.HostRDNSWrongFrac {
			far := farPOPCodes(n.Loc)
			if len(far) == 0 {
				continue
			}
			code = far[rng.IntN(len(far))]
		}
		if rng.Float64() < 0.5 {
			n.RDNS = hostRDNSIATA(id, code)
		} else {
			n.RDNS = hostRDNSCLLI(id, CLLIByCode[code])
		}
	}
}

// nearestPOPCity returns the code and distance of the POP city nearest to
// p, deterministically (slice order breaks ties).
func nearestPOPCity(p geo.Point) (code string, km float64) {
	best := -1.0
	for i := range POPCities {
		if d := p.DistanceKm(POPCities[i].Loc()); best < 0 || d < best {
			best, code = d, POPCities[i].Code
		}
	}
	return code, best
}

// farPOPCodes lists POP codes at least hostRDNSWrongMinKm from p, sorted
// for deterministic indexing.
func farPOPCodes(p geo.Point) []string {
	var out []string
	for i := range POPCities {
		if p.DistanceKm(POPCities[i].Loc()) >= hostRDNSWrongMinKm {
			out = append(out, POPCities[i].Code)
		}
	}
	sort.Strings(out)
	return out
}

// ReverseName returns the node's reverse-DNS name: the synthetic
// operator name when one was assigned, else the node's DNS name.
func (w *World) ReverseName(id int) string {
	if n := w.Nodes[id]; n.RDNS != "" {
		return n.RDNS
	}
	return w.Nodes[id].Name
}
