// Package measure is the concurrent measurement scheduler: it fans
// probe traffic (pings, traceroutes, pairwise survey matrices) out
// through a bounded worker pool while keeping the *results* shaped
// exactly like the sequential loops it replaces.
//
// The solver hot path is sub-millisecond, so end-to-end localization
// latency is measurement wall-clock: one serialized ping train per
// landmark, one traceroute per selected landmark, O(k²) pings per survey
// build. The scheduler overlaps those probes under three rules:
//
//   - Bounded fan-out. A global in-flight cap (Config.Workers) bounds
//     concurrent probes across every round sharing the scheduler, and a
//     per-landmark token bucket (Config.PerLandmark concurrent trains,
//     optionally spaced Config.MinInterval apart) keeps parallelism from
//     hammering any single vantage point — the property a real
//     deployment needs so 16-way target fan-out never looks like an
//     attack to one landmark's rate limiter.
//
//   - Slot-indexed placement. Every fan-out writes result i into the
//     caller's slot i, so downstream consumers see landmark order —
//     failure lists, provenance, and NaN degraded slots are bit-identical
//     to the sequential path regardless of completion order. Error
//     selection follows the same rule: the lowest errored slot is the
//     round's error, which is exactly the "first error in loop order"
//     the sequential code reported (slots are dispatched in order, so
//     every slot below a failed one was dispatched before it).
//
//   - Reuse before re-probe. An optional TTL'd cache keyed by
//     (src, dst, probe count, survey epoch) lets fused batches and
//     back-to-back requests reuse fresh min-RTTs, and in-flight
//     singleflight dedup lets concurrent requests for the same (src,
//     dst) share one train. Cache commits are staged per round and
//     applied only when the round finishes un-cancelled, so a cancelled
//     fan-out leaves no partial entries behind. Both are off unless
//     Config.CacheTTL is set: the default scalar path must not pay their
//     allocations, and survey refresh must never see a cached value
//     where drift detection expects a fresh measurement.
package measure

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"octant/internal/probe"
)

// Config shapes a Scheduler. The zero value means "defaults": 16
// concurrent probes, 4 per landmark, no pacing interval, no cache.
type Config struct {
	// Workers caps concurrent probes across all rounds sharing the
	// scheduler (default 16).
	Workers int
	// PerLandmark caps concurrent probe trains issued from one source
	// landmark (default 4).
	PerLandmark int
	// MinInterval additionally spaces successive probe starts from one
	// source landmark (0 = no spacing, the buckets act as pure
	// concurrency limits).
	MinInterval time.Duration
	// CacheTTL enables the epoch-qualified min-RTT cache (and in-flight
	// singleflight dedup) with this entry lifetime. 0 disables both.
	CacheTTL time.Duration
}

func (c *Config) fillDefaults() {
	if c.Workers == 0 {
		c.Workers = 16
	}
	if c.PerLandmark == 0 {
		c.PerLandmark = 4
	}
}

// Scheduler is a concurrent probe scheduler. One Scheduler is shared by
// everything measuring against one survey generation chain — the scalar
// localization path, every fused-batch worker, and (via its own
// uncached instance) the lifecycle refresher — so its buckets express a
// real per-landmark budget, not a per-request one. All methods are safe
// for concurrent use.
type Scheduler struct {
	cfg Config

	global chan struct{} // global in-flight probe cap

	mu      sync.Mutex
	buckets map[string]*bucket

	cache  *rttCache // nil when CacheTTL == 0
	flight *flightGroup

	pings          atomic.Uint64
	pingFailures   atomic.Uint64
	traceroutes    atomic.Uint64
	traceFailures  atomic.Uint64
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	deduped        atomic.Uint64
	rounds         atomic.Uint64
	cancelledRound atomic.Uint64
}

// New builds a Scheduler.
func New(cfg Config) *Scheduler {
	cfg.fillDefaults()
	s := &Scheduler{
		cfg:     cfg,
		global:  make(chan struct{}, cfg.Workers),
		buckets: make(map[string]*bucket),
	}
	if cfg.CacheTTL > 0 {
		s.cache = newRTTCache(cfg.CacheTTL)
		s.flight = newFlightGroup()
	}
	return s
}

// Stats is a point-in-time snapshot of scheduler activity, shaped for
// the octant-serve /v1/stats "measure" section.
type Stats struct {
	// Workers and PerLandmark echo the configured caps.
	Workers     int `json:"workers"`
	PerLandmark int `json:"per_landmark"`
	// Pings counts probe trains actually issued (cache hits and deduped
	// followers excluded); PingFailures the subset that errored.
	Pings        uint64 `json:"pings"`
	PingFailures uint64 `json:"ping_failures"`
	// Traceroutes / TracerouteFailures mirror Pings for path probes.
	Traceroutes        uint64 `json:"traceroutes"`
	TracerouteFailures uint64 `json:"traceroute_failures"`
	// CacheHits / CacheMisses count RTT-cache lookups (both 0 when the
	// cache is disabled); CacheEntries is current occupancy.
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	// Deduped counts probes that piggybacked on an identical in-flight
	// (src, dst) train instead of probing themselves.
	Deduped uint64 `json:"deduped"`
	// Rounds counts fan-out rounds; CancelledRounds the subset whose
	// context expired mid-round (their staged cache entries were
	// discarded).
	Rounds          uint64 `json:"rounds"`
	CancelledRounds uint64 `json:"cancelled_rounds"`
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Workers:            s.cfg.Workers,
		PerLandmark:        s.cfg.PerLandmark,
		Pings:              s.pings.Load(),
		PingFailures:       s.pingFailures.Load(),
		Traceroutes:        s.traceroutes.Load(),
		TracerouteFailures: s.traceFailures.Load(),
		CacheHits:          s.cacheHits.Load(),
		CacheMisses:        s.cacheMisses.Load(),
		Deduped:            s.deduped.Load(),
		Rounds:             s.rounds.Load(),
		CancelledRounds:    s.cancelledRound.Load(),
	}
	if s.cache != nil {
		st.CacheEntries = s.cache.len()
	}
	return st
}

// bucket is one landmark's token bucket: a semaphore bounding concurrent
// trains plus, when MinInterval is set, a pacer spacing their starts.
type bucket struct {
	sem  chan struct{}
	mu   sync.Mutex
	next time.Time // earliest next start (MinInterval mode)
}

func (s *Scheduler) bucket(src string) *bucket {
	s.mu.Lock()
	b := s.buckets[src]
	if b == nil {
		b = &bucket{sem: make(chan struct{}, s.cfg.PerLandmark)}
		s.buckets[src] = b
	}
	s.mu.Unlock()
	return b
}

// acquire takes one probe slot for src: per-landmark token first, then
// the global cap. Only the acquisition order matters for liveness —
// global-slot holders are always probing, never waiting on a landmark
// token, so the two semaphores cannot deadlock.
func (s *Scheduler) acquire(ctx context.Context, src string) (*bucket, error) {
	b := s.bucket(src)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case b.sem <- struct{}{}:
	case <-done:
		return nil, ctx.Err()
	}
	if s.cfg.MinInterval > 0 {
		b.mu.Lock()
		now := time.Now()
		at := b.next
		if at.Before(now) {
			at = now
		}
		b.next = at.Add(s.cfg.MinInterval)
		b.mu.Unlock()
		if d := time.Until(at); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				<-b.sem
				return nil, ctx.Err()
			}
		}
	}
	select {
	case s.global <- struct{}{}:
	case <-done:
		<-b.sem
		return nil, ctx.Err()
	}
	return b, nil
}

func (s *Scheduler) release(b *bucket) {
	<-s.global
	<-b.sem
}

// fan is one fan-out round: slots dispatched in order off an atomic
// counter to min(Workers, n) goroutines. Dispatch-in-order is what makes
// lowest-errored-slot equal the sequential loop's first error.
type fan struct {
	s    *Scheduler
	ctx  context.Context
	n    int
	job  func(slot int) error
	errs []error
	// stopOnErr aborts dispatch after the first error (survey semantics:
	// the sequential loop returned at its first failed pair). Without it
	// every slot settles (localization semantics: failures degrade, they
	// don't abort).
	stopOnErr bool

	next    atomic.Int64
	aborted atomic.Bool
	wg      sync.WaitGroup
}

func (f *fan) work() {
	defer f.wg.Done()
	for {
		slot := int(f.next.Add(1)) - 1
		if slot >= f.n {
			return
		}
		if f.stopOnErr && f.aborted.Load() {
			return
		}
		if err := f.job(slot); err != nil {
			f.errs[slot] = err
			if f.stopOnErr {
				f.aborted.Store(true)
			}
		}
	}
}

// run executes the round and blocks until every dispatched slot settled
// — cancellation makes jobs return fast, it never orphans a goroutine.
func (s *Scheduler) run(f *fan) {
	s.rounds.Add(1)
	workers := s.cfg.Workers
	if workers > f.n {
		workers = f.n
	}
	f.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go f.work()
	}
	f.wg.Wait()
	if f.ctx != nil && f.ctx.Err() != nil {
		s.cancelledRound.Add(1)
	}
}

// PingMinInto fans out Ping(srcs[i], dst, n) for every i and writes the
// min-filtered RTT into out[i]; errs[i] records slot i's failure (probe
// error or min-filter error), nil on success. Slots settle independently
// — a failed landmark never aborts the others — and all slots have
// settled when the call returns. epoch qualifies cache entries so a
// survey swap never serves a stale generation's measurement.
//
// out and errs must have len(srcs). The prober p is called as-is, so
// retry wrappers (probe.WithRetry) and context binding compose under the
// scheduler unchanged.
func (s *Scheduler) PingMinInto(ctx context.Context, p probe.Prober, srcs []string, dst string, n int, epoch uint64, out []float64, errs []error) {
	var st *stagedEntries
	if s.cache != nil {
		st = newStagedEntries(len(srcs))
	}
	f := &fan{
		s:   s,
		ctx: ctx,
		n:   len(srcs),
		job: func(i int) error {
			min, err := s.pingMinSlot(ctx, p, srcs[i], dst, n, epoch, st)
			if err != nil {
				return err
			}
			out[i] = min
			return nil
		},
		errs: errs,
	}
	s.run(f)
	if st != nil && (ctx == nil || ctx.Err() == nil) {
		s.cache.commit(st)
	}
}

// pingMinSlot resolves one slot: cache, then singleflight, then a paced
// probe train.
func (s *Scheduler) pingMinSlot(ctx context.Context, p probe.Prober, src, dst string, n int, epoch uint64, st *stagedEntries) (float64, error) {
	if s.cache == nil {
		return s.pingMinProbe(ctx, p, src, dst, n)
	}
	key := rttKey{src: src, dst: dst, n: n, epoch: epoch}
	if v, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		return v, nil
	}
	s.cacheMisses.Add(1)
	c, leader := s.flight.join(key)
	if !leader {
		s.deduped.Add(1)
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-c.done:
		case <-done:
			return 0, ctx.Err()
		}
		if c.err != nil && isCtxErr(c.err) && (ctx == nil || ctx.Err() == nil) {
			// The leader's round was cancelled but ours was not: its
			// abort is not our measurement failure. Probe ourselves.
			return s.pingMinLed(ctx, p, key, st)
		}
		if c.err == nil {
			st.add(key, c.min)
		}
		return c.min, c.err
	}
	min, err := s.pingMinProbe(ctx, p, src, dst, n)
	c.min, c.err = min, err
	s.flight.leave(key, c)
	if err == nil {
		st.add(key, min)
	}
	return min, err
}

// pingMinLed is a follower re-probing after its leader was cancelled; it
// goes through join again so concurrent orphaned followers elect one new
// leader among themselves instead of all probing.
func (s *Scheduler) pingMinLed(ctx context.Context, p probe.Prober, key rttKey, st *stagedEntries) (float64, error) {
	c, leader := s.flight.join(key)
	if !leader {
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-c.done:
		case <-done:
			return 0, ctx.Err()
		}
		if c.err == nil {
			st.add(key, c.min)
		}
		return c.min, c.err
	}
	min, err := s.pingMinProbe(ctx, p, key.src, key.dst, key.n)
	c.min, c.err = min, err
	s.flight.leave(key, c)
	if err == nil {
		st.add(key, min)
	}
	return min, err
}

func isCtxErr(err error) bool {
	return err == context.Canceled || err == context.DeadlineExceeded
}

// pingMinProbe issues one paced probe train and min-filters it — the
// exact Ping+MinRTT sequence of the sequential loops, so per-slot
// outcomes (values and error identities) are unchanged.
func (s *Scheduler) pingMinProbe(ctx context.Context, p probe.Prober, src, dst string, n int) (float64, error) {
	b, err := s.acquire(ctx, src)
	if err != nil {
		return 0, err
	}
	samples, err := p.Ping(src, dst, n)
	s.release(b)
	s.pings.Add(1)
	if err == nil {
		var min float64
		if min, err = probe.MinRTT(samples); err == nil {
			return min, nil
		}
	}
	s.pingFailures.Add(1)
	return 0, err
}

// TracerouteInto fans out Traceroute(srcs[i], dst) for every i, writing
// hop lists into hops[i] and failures into errs[i]. Traceroutes are
// paced per source like pings but never cached: paths are consumed once
// per request and carry no epoch-stable min-filter.
func (s *Scheduler) TracerouteInto(ctx context.Context, p probe.Prober, srcs []string, dst string, hops [][]probe.Hop, errs []error) {
	f := &fan{
		s:   s,
		ctx: ctx,
		n:   len(srcs),
		job: func(i int) error {
			b, err := s.acquire(ctx, srcs[i])
			if err != nil {
				s.traceFailures.Add(1)
				return err
			}
			h, err := p.Traceroute(srcs[i], dst)
			s.release(b)
			s.traceroutes.Add(1)
			if err != nil {
				s.traceFailures.Add(1)
				return err
			}
			hops[i] = h
			return nil
		},
		errs: errs,
	}
	s.run(f)
}

// Run fans out n arbitrary measurement jobs — the generic entry the
// pairwise survey matrix and the lifecycle refresher build on. job(slot)
// performs slot's measurement (acquiring pacing through Paced) and
// writes its own results; writes to distinct slots need no locking. The
// round stops dispatching after the first error, drains in-flight slots,
// and returns the lowest errored slot with its error — the pair the
// sequential loop would have aborted on. Returns (-1, nil) when every
// slot succeeded.
func (s *Scheduler) Run(ctx context.Context, n int, job func(slot int) error) (int, error) {
	if n <= 0 {
		return -1, nil
	}
	f := &fan{s: s, ctx: ctx, n: n, job: job, errs: make([]error, n), stopOnErr: true}
	s.run(f)
	for i, err := range f.errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}

// Paced runs fn under src's token bucket and the global cap, counting it
// as one ping train. Run jobs use it so generic fan-outs pace exactly
// like PingMinInto's.
func (s *Scheduler) Paced(ctx context.Context, src string, fn func() error) error {
	b, err := s.acquire(ctx, src)
	if err != nil {
		return err
	}
	err = fn()
	s.release(b)
	s.pings.Add(1)
	if err != nil {
		s.pingFailures.Add(1)
	}
	return err
}
