package measure

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"octant/internal/geo"
	"octant/internal/probe"
)

// fakeProber is a controllable Prober: deterministic RTTs derived from
// the (src, dst) pair, optional per-call delay, optional per-src
// failures, and concurrency accounting (current and high-water in-flight
// counts, globally and per source).
type fakeProber struct {
	delay time.Duration

	mu      sync.Mutex
	calls   int
	bySrc   map[string]int
	inSrc   map[string]int
	maxSrc  map[string]int
	in      int
	max     int
	failSrc map[string]error
	starts  map[string][]time.Time
}

func newFakeProber(delay time.Duration) *fakeProber {
	return &fakeProber{
		delay:   delay,
		bySrc:   make(map[string]int),
		inSrc:   make(map[string]int),
		maxSrc:  make(map[string]int),
		failSrc: make(map[string]error),
		starts:  make(map[string][]time.Time),
	}
}

func (f *fakeProber) rtt(src, dst string) float64 {
	return float64(len(src)*7+len(dst)*3) / 10
}

func (f *fakeProber) Ping(src, dst string, n int) ([]float64, error) {
	f.mu.Lock()
	f.calls++
	f.bySrc[src]++
	f.in++
	f.inSrc[src]++
	if f.in > f.max {
		f.max = f.in
	}
	if f.inSrc[src] > f.maxSrc[src] {
		f.maxSrc[src] = f.inSrc[src]
	}
	f.starts[src] = append(f.starts[src], time.Now())
	failErr := f.failSrc[src]
	f.mu.Unlock()

	if f.delay > 0 {
		time.Sleep(f.delay)
	}

	f.mu.Lock()
	f.in--
	f.inSrc[src]--
	f.mu.Unlock()

	if failErr != nil {
		return nil, failErr
	}
	base := f.rtt(src, dst)
	out := make([]float64, n)
	for i := range out {
		out[i] = base + float64(i)
	}
	return out, nil
}

func (f *fakeProber) Traceroute(src, dst string) ([]probe.Hop, error) {
	f.mu.Lock()
	f.calls++
	failErr := f.failSrc[src]
	f.mu.Unlock()
	if failErr != nil {
		return nil, failErr
	}
	return []probe.Hop{{Addr: src, RTTMs: 0}, {Addr: dst, RTTMs: f.rtt(src, dst)}}, nil
}

func (f *fakeProber) ReverseDNS(addr string) string { return "" }

func (f *fakeProber) Whois(addr string) (geo.Point, string, bool) {
	return geo.Point{}, "", false
}

func (f *fakeProber) totalCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func srcNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("lm-%02d", i)
	}
	return out
}

// TestPingMinIntoMatchesSequential pins the scheduler's core contract:
// slot i holds exactly MinRTT(Ping(srcs[i], dst, n)) — same values, same
// per-slot error identities — regardless of completion order.
func TestPingMinIntoMatchesSequential(t *testing.T) {
	p := newFakeProber(0)
	boom := errors.New("vantage down")
	p.failSrc["lm-03"] = boom
	srcs := srcNames(12)
	s := New(Config{Workers: 5})

	out := make([]float64, len(srcs))
	errs := make([]error, len(srcs))
	s.PingMinInto(context.Background(), p, srcs, "target", 10, 0, out, errs)

	for i, src := range srcs {
		if src == "lm-03" {
			if !errors.Is(errs[i], boom) {
				t.Errorf("slot %d: err = %v, want %v", i, errs[i], boom)
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("slot %d: unexpected error %v", i, errs[i])
			continue
		}
		want := p.rtt(src, "target")
		if math.Abs(out[i]-want) > 1e-12 {
			t.Errorf("slot %d: min = %v, want %v", i, out[i], want)
		}
	}
	st := s.Stats()
	if st.Pings != uint64(len(srcs)) || st.PingFailures != 1 {
		t.Errorf("stats: pings=%d failures=%d, want %d/1", st.Pings, st.PingFailures, len(srcs))
	}
}

// TestConcurrencyCaps drives many concurrent rounds over a few sources
// and asserts neither the global worker cap nor the per-landmark token
// bucket is ever exceeded.
func TestConcurrencyCaps(t *testing.T) {
	p := newFakeProber(2 * time.Millisecond)
	srcs := srcNames(4)
	s := New(Config{Workers: 6, PerLandmark: 2})

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, len(srcs))
			errs := make([]error, len(srcs))
			s.PingMinInto(context.Background(), p, srcs, "target", 4, 0, out, errs)
		}()
	}
	wg.Wait()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.max > 6 {
		t.Errorf("observed %d concurrent probes, global cap is 6", p.max)
	}
	for src, m := range p.maxSrc {
		if m > 2 {
			t.Errorf("source %s saw %d concurrent trains, per-landmark cap is 2", src, m)
		}
	}
}

// TestMinIntervalPacing asserts the bucket pacer spaces successive train
// starts from one source by at least MinInterval.
func TestMinIntervalPacing(t *testing.T) {
	p := newFakeProber(0)
	const interval = 5 * time.Millisecond
	s := New(Config{Workers: 8, PerLandmark: 4, MinInterval: interval})

	const rounds = 4
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, 1)
			errs := make([]error, 1)
			s.PingMinInto(context.Background(), p, []string{"lm-00"}, "target", 4, 0, out, errs)
		}()
	}
	wg.Wait()

	p.mu.Lock()
	starts := append([]time.Time(nil), p.starts["lm-00"]...)
	p.mu.Unlock()
	if len(starts) != rounds {
		t.Fatalf("got %d trains, want %d", len(starts), rounds)
	}
	var first, last time.Time
	for _, at := range starts {
		if first.IsZero() || at.Before(first) {
			first = at
		}
		if at.After(last) {
			last = at
		}
	}
	// All four trains share one source, so the pacer must stretch the
	// burst over at least (rounds-1) intervals. Sleep-based timing only
	// ever overshoots, so the lower bound is safe to assert.
	if spread := last.Sub(first); spread < (rounds-1)*interval {
		t.Errorf("4 paced trains started within %v, want ≥ %v", spread, (rounds-1)*interval)
	}
}

// TestCacheTTLAndEpoch covers the reuse-before-reprobe rules: a warm key
// is served from cache, a different survey epoch misses, and an expired
// entry is re-probed.
func TestCacheTTLAndEpoch(t *testing.T) {
	p := newFakeProber(0)
	srcs := srcNames(6)
	const ttl = 50 * time.Millisecond
	s := New(Config{CacheTTL: ttl})
	ctx := context.Background()
	out := make([]float64, len(srcs))
	errs := make([]error, len(srcs))

	s.PingMinInto(ctx, p, srcs, "target", 10, 7, out, errs)
	if got := p.totalCalls(); got != len(srcs) {
		t.Fatalf("cold round issued %d probes, want %d", got, len(srcs))
	}

	warm := make([]float64, len(srcs))
	s.PingMinInto(ctx, p, srcs, "target", 10, 7, warm, errs)
	if got := p.totalCalls(); got != len(srcs) {
		t.Errorf("warm round issued %d extra probes, want 0 (cache hit)", got-len(srcs))
	}
	for i := range warm {
		if warm[i] != out[i] {
			t.Errorf("slot %d: cached %v != measured %v", i, warm[i], out[i])
		}
	}
	if st := s.Stats(); st.CacheHits != uint64(len(srcs)) || st.CacheEntries != len(srcs) {
		t.Errorf("stats: hits=%d entries=%d, want %d/%d", st.CacheHits, st.CacheEntries, len(srcs), len(srcs))
	}

	// A new survey generation must never see the old epoch's minima.
	s.PingMinInto(ctx, p, srcs, "target", 10, 8, warm, errs)
	if got := p.totalCalls(); got != 2*len(srcs) {
		t.Errorf("epoch-8 round reused epoch-7 entries (%d probes total, want %d)", got, 2*len(srcs))
	}

	time.Sleep(ttl + 20*time.Millisecond)
	s.PingMinInto(ctx, p, srcs, "target", 10, 8, warm, errs)
	if got := p.totalCalls(); got != 3*len(srcs) {
		t.Errorf("expired entries were served (%d probes total, want %d)", got, 3*len(srcs))
	}
}

// TestSingleflightDedup runs two concurrent rounds over the same keys
// against a slow prober: the second must piggyback on the first's
// in-flight trains instead of probing itself.
func TestSingleflightDedup(t *testing.T) {
	p := newFakeProber(20 * time.Millisecond)
	srcs := srcNames(4)
	s := New(Config{CacheTTL: time.Second})
	ctx := context.Background()

	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, len(srcs))
			errs := make([]error, len(srcs))
			s.PingMinInto(ctx, p, srcs, "target", 10, 0, out, errs)
			for i, err := range errs {
				if err != nil {
					t.Errorf("slot %d: %v", i, err)
				}
			}
		}()
	}
	wg.Wait()

	if got := p.totalCalls(); got != len(srcs) {
		t.Errorf("two identical rounds issued %d probes, want %d (singleflight)", got, len(srcs))
	}
	if st := s.Stats(); st.Deduped != uint64(len(srcs)) {
		t.Errorf("deduped = %d, want %d", st.Deduped, len(srcs))
	}
}

// TestCancelMidFanout is the satellite-(c) contract: a context cancelled
// mid-round returns promptly, leaves no goroutines behind, and commits
// nothing to the RTT cache.
func TestCancelMidFanout(t *testing.T) {
	before := runtime.NumGoroutine()

	p := newFakeProber(30 * time.Millisecond)
	srcs := srcNames(40)
	s := New(Config{Workers: 4, CacheTTL: time.Second})
	ctx, cancel := context.WithCancel(context.Background())

	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	out := make([]float64, len(srcs))
	errs := make([]error, len(srcs))
	start := time.Now()
	s.PingMinInto(ctx, p, srcs, "target", 10, 0, out, errs)
	elapsed := time.Since(start)

	// 40 slots / 4 workers would take ≥ 300 ms uncancelled; the abort
	// must only wait out the trains already on the wire.
	if elapsed > 200*time.Millisecond {
		t.Errorf("cancelled round took %v, want prompt abort", elapsed)
	}
	var cancelled int
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no slot reported context.Canceled")
	}
	st := s.Stats()
	if st.CacheEntries != 0 {
		t.Errorf("cancelled round committed %d cache entries, want 0 (staged commit)", st.CacheEntries)
	}
	if st.CancelledRounds != 1 {
		t.Errorf("cancelled rounds = %d, want 1", st.CancelledRounds)
	}

	// A clean retry against the same scheduler must work and fill every
	// slot — no poisoned singleflight calls, no stale partial state.
	// (Fresh errs: slots only write their slot on failure, like the
	// sequential loop's append-on-error.)
	p2 := newFakeProber(0)
	errs = make([]error, len(srcs))
	s.PingMinInto(context.Background(), p2, srcs, "target", 10, 0, out, errs)
	for i, err := range errs {
		if err != nil {
			t.Errorf("post-cancel slot %d: %v", i, err)
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after settle window", before, runtime.NumGoroutine())
}

// TestRunLowestErroredSlot pins Run's error selection to the sequential
// loop's semantics: when several slots fail, the reported one is the
// lowest — the pair a serialized walk would have aborted on — even if a
// higher slot failed first in wall-clock order.
func TestRunLowestErroredSlot(t *testing.T) {
	s := New(Config{Workers: 16})
	errLow := errors.New("low slot")
	errHigh := errors.New("high slot")
	slot, err := s.Run(context.Background(), 10, func(i int) error {
		switch i {
		case 3:
			time.Sleep(20 * time.Millisecond) // fails last in wall-clock order
			return errLow
		case 7:
			return errHigh // fails first
		}
		return nil
	})
	if slot != 3 || !errors.Is(err, errLow) {
		t.Errorf("Run = (%d, %v), want (3, %v)", slot, err, errLow)
	}

	slot, err = s.Run(context.Background(), 10, func(int) error { return nil })
	if slot != -1 || err != nil {
		t.Errorf("clean Run = (%d, %v), want (-1, nil)", slot, err)
	}
}

// TestTracerouteInto checks slot placement and per-slot failures for the
// path fan-out.
func TestTracerouteInto(t *testing.T) {
	p := newFakeProber(0)
	boom := errors.New("no route")
	p.failSrc["lm-01"] = boom
	srcs := srcNames(5)
	s := New(Config{})

	hops := make([][]probe.Hop, len(srcs))
	errs := make([]error, len(srcs))
	s.TracerouteInto(context.Background(), p, srcs, "target", hops, errs)
	for i, src := range srcs {
		if src == "lm-01" {
			if !errors.Is(errs[i], boom) {
				t.Errorf("slot %d: err = %v, want %v", i, errs[i], boom)
			}
			continue
		}
		if errs[i] != nil || len(hops[i]) != 2 || hops[i][0].Addr != src {
			t.Errorf("slot %d: hops = %v, err = %v", i, hops[i], errs[i])
		}
	}
	// Traceroutes counts issued probes (failures included), mirroring
	// the Pings counter's semantics.
	if st := s.Stats(); st.Traceroutes != 5 || st.TracerouteFailures != 1 {
		t.Errorf("stats: traceroutes=%d failures=%d, want 5/1", st.Traceroutes, st.TracerouteFailures)
	}
}

// TestCancelledLeaderDoesNotPoisonFollowers: a follower whose leader was
// cancelled — but whose own context is alive — must re-probe instead of
// inheriting the leader's context error.
func TestCancelledLeaderDoesNotPoisonFollowers(t *testing.T) {
	p := newFakeProber(30 * time.Millisecond)
	srcs := srcNames(1)
	s := New(Config{CacheTTL: time.Second})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var followerErr error
	var followerMin float64

	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]float64, 1)
		errs := make([]error, 1)
		s.PingMinInto(leaderCtx, p, srcs, "target", 10, 0, out, errs)
	}()
	time.Sleep(5 * time.Millisecond) // leader is mid-train
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]float64, 1)
		errs := make([]error, 1)
		s.PingMinInto(context.Background(), p, srcs, "target", 10, 0, out, errs)
		followerMin, followerErr = out[0], errs[0]
	}()
	time.Sleep(5 * time.Millisecond)
	cancelLeader()
	wg.Wait()

	// The leader finishes its train regardless (Ping is not
	// interruptible), so depending on timing the follower either shares
	// the completed train or re-probes — both must succeed.
	if followerErr != nil {
		t.Fatalf("follower err = %v, want success after leader cancel", followerErr)
	}
	if want := p.rtt("lm-00", "target"); followerMin != want {
		t.Errorf("follower min = %v, want %v", followerMin, want)
	}
}

// TestSchedulerRace hammers one scheduler from every entry point at once
// (meaningful under -race): cached ping rounds, traceroute rounds,
// generic Run jobs, Stats reads, and a cancelling client.
func TestSchedulerRace(t *testing.T) {
	p := newFakeProber(time.Millisecond)
	srcs := srcNames(8)
	s := New(Config{Workers: 8, PerLandmark: 2, CacheTTL: 20 * time.Millisecond})
	var wg sync.WaitGroup
	var epoch atomic.Uint64

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				out := make([]float64, len(srcs))
				errs := make([]error, len(srcs))
				ctx := context.Background()
				if w == 3 && i%2 == 0 {
					c, cancel := context.WithTimeout(ctx, 3*time.Millisecond)
					defer cancel()
					ctx = c
				}
				s.PingMinInto(ctx, p, srcs, fmt.Sprintf("t%d", i%3), 4, epoch.Load(), out, errs)
				if i%4 == 0 {
					epoch.Add(1)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			hops := make([][]probe.Hop, len(srcs))
			errs := make([]error, len(srcs))
			s.TracerouteInto(context.Background(), p, srcs, "t0", hops, errs)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_, _ = s.Run(context.Background(), 6, func(slot int) error {
				return s.Paced(context.Background(), srcs[slot%len(srcs)], func() error { return nil })
			})
			_ = s.Stats()
		}
	}()
	wg.Wait()
}
