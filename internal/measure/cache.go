package measure

import (
	"sync"
	"time"
)

// rttKey identifies one cached min-RTT: the probing source, the target,
// the per-train sample count (min-of-n is biased by n, so trains with
// different counts are not comparable), and the survey epoch (a swap
// must never serve the previous generation's measurements).
type rttKey struct {
	src, dst string
	n        int
	epoch    uint64
}

type rttEntry struct {
	min float64
	at  time.Time
}

// rttCache is the TTL'd min-RTT cache. Entries expire lazily on read;
// commit sweeps expired entries whenever occupancy crosses the high-water
// mark, which bounds memory without a background goroutine.
type rttCache struct {
	ttl time.Duration

	mu sync.RWMutex
	m  map[rttKey]rttEntry
}

// cacheHighWater is the occupancy at which a commit sweeps expired
// entries.
const cacheHighWater = 1 << 16

func newRTTCache(ttl time.Duration) *rttCache {
	return &rttCache{ttl: ttl, m: make(map[rttKey]rttEntry)}
}

func (c *rttCache) get(key rttKey) (float64, bool) {
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if !ok || time.Since(e.at) > c.ttl {
		return 0, false
	}
	return e.min, true
}

// stagedEntries is a round's pending cache writes. Rounds stage
// successful min-RTTs locally and commit the whole set only after the
// round finishes with its context intact, so a cancelled fan-out —
// however far it got — contributes nothing: the cache never holds a
// partial round.
type stagedEntries struct {
	mu      sync.Mutex
	keys    []rttKey
	entries []float64
}

func newStagedEntries(capHint int) *stagedEntries {
	return &stagedEntries{
		keys:    make([]rttKey, 0, capHint),
		entries: make([]float64, 0, capHint),
	}
}

func (st *stagedEntries) add(key rttKey, min float64) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.keys = append(st.keys, key)
	st.entries = append(st.entries, min)
	st.mu.Unlock()
}

func (c *rttCache) commit(st *stagedEntries) {
	st.mu.Lock()
	keys, entries := st.keys, st.entries
	st.keys, st.entries = nil, nil
	st.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	now := time.Now()
	c.mu.Lock()
	for i, k := range keys {
		c.m[k] = rttEntry{min: entries[i], at: now}
	}
	if len(c.m) > cacheHighWater {
		for k, e := range c.m {
			if now.Sub(e.at) > c.ttl {
				delete(c.m, k)
			}
		}
	}
	c.mu.Unlock()
}

func (c *rttCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// flightGroup is in-flight singleflight dedup: concurrent probes of one
// rttKey elect a leader that measures while followers wait on its call.
type flightGroup struct {
	mu sync.Mutex
	m  map[rttKey]*flightCall
}

type flightCall struct {
	done chan struct{}
	min  float64
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[rttKey]*flightCall)}
}

// join returns the key's in-flight call and whether the caller is its
// leader (first joiner, responsible for measuring and leaving).
func (g *flightGroup) join(key rttKey) (*flightCall, bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()
	return c, true
}

// leave publishes the leader's result: the key is removed before done is
// closed, so a post-completion joiner starts a fresh measurement rather
// than adopting a finished one (the cache, not the flight group, is the
// reuse layer).
func (g *flightGroup) leave(key rttKey, c *flightCall) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
}
