// Package calib implements Octant's landmark calibration (§2.1 of the
// paper): converting a landmark's latency measurement into a tight
// [r_L(d), R_L(d)] distance band.
//
// Each landmark periodically pings its peer landmarks, producing a
// (latency, distance) scatter like Figure 2. The convex hull around the
// scatter gives the empirically tightest bounds consistent with all
// observations: the upper facets form R_L (the positive-constraint radius),
// the lower facets r_L (the negative-constraint radius). Past a percentile
// cutoff ρ the hull is discarded as statistically unsupported, r_L is held
// constant, and R_L blends linearly toward the speed-of-light bound through
// a fictitious far-away sentinel datapoint — exactly the construction in
// the paper.
package calib

import (
	"fmt"
	"math"
	"sort"

	"octant/internal/geo"
	"octant/internal/hull"
	"octant/internal/stats"
)

// Sample is one calibration observation: the min-filtered RTT to a peer
// landmark and the known great-circle distance to it.
type Sample struct {
	LatencyMs  float64
	DistanceKm float64
}

// Options tunes calibration.
type Options struct {
	// CutoffPercentile is the latency percentile ρ beyond which hull
	// facets are considered statistically unsupported (default 90).
	CutoffPercentile float64
	// SentinelLatencyMs places the fictitious sentinel datapoint z
	// (default: 4× the cutoff latency, at the speed-of-light distance).
	SentinelLatencyMs float64
}

func (o *Options) fillDefaults() {
	if o.CutoffPercentile == 0 {
		o.CutoffPercentile = 90
	}
}

// Calibration is a fitted latency→distance model for one landmark.
type Calibration struct {
	Samples []Sample
	Opts    Options

	upper     hull.Chain // truncated R_L facets (exposed for Figure 2)
	lower     hull.Chain // truncated r_L facets (exposed for Figure 2)
	fullUpper hull.Chain // untruncated chains used for evaluation left of ρ
	fullLower hull.Chain
	rho       float64 // cutoff latency
	// Linear blend R(x) = slopeR·(x−ρ) + R(ρ) for x ≥ ρ.
	slopeR float64
	rAtRho float64 // R_L(ρ)
	rLow   float64 // r_L(ρ), held constant beyond ρ
}

// ErrTooFewSamples is returned when calibration lacks data.
var ErrTooFewSamples = fmt.Errorf("calib: need at least 2 samples")

// New fits a calibration from peer measurements.
func New(samples []Sample, opts Options) (*Calibration, error) {
	if len(samples) < 2 {
		return nil, ErrTooFewSamples
	}
	opts.fillDefaults()
	c := &Calibration{Samples: append([]Sample(nil), samples...), Opts: opts}

	pts := make([]hull.P, len(samples))
	lats := make([]float64, len(samples))
	for i, s := range samples {
		pts[i] = hull.P{X: s.LatencyMs, Y: s.DistanceKm}
		lats[i] = s.LatencyMs
	}
	c.rho = stats.Percentile(lats, opts.CutoffPercentile)

	// The upper hull can descend at its right edge when the
	// highest-latency peer happens to be close by; as a *bound* on unseen
	// nodes that descent is meaningless (extra latency never certifies a
	// smaller maximum distance), so R_L uses the monotone envelope.
	c.fullUpper = monotoneEnvelope(hull.Chain(hull.UpperFacets(pts)))
	c.fullLower = hull.Chain(hull.LowerFacets(pts))
	c.upper = c.fullUpper.TruncateRight(c.rho)
	c.lower = c.fullLower.TruncateRight(c.rho)

	// R_L(ρ) and r_L(ρ), evaluated on the full chains and bounded by
	// physics.
	c.rAtRho = math.Min(c.fullUpper.Eval(c.rho), geo.LatencyToMaxDistanceKm(c.rho))
	c.rLow = math.Max(0, c.fullLower.Eval(c.rho))

	// Sentinel z on the speed-of-light line, far to the right; the R_L
	// blend approaches the conservative bound smoothly (§2.1).
	xz := opts.SentinelLatencyMs
	if xz <= c.rho {
		xz = 4 * c.rho
		if xz < c.rho+50 {
			xz = c.rho + 50
		}
	}
	yz := geo.LatencyToMaxDistanceKm(xz)
	c.slopeR = (yz - c.rAtRho) / (xz - c.rho)
	return c, nil
}

// Rebuild returns the calibration fitted to samples, reusing c when the
// sample set is unchanged: if samples equals c.Samples element-wise the
// receiver itself is returned — hulls, cutoff, and sentinel blend intact,
// with no refit work — otherwise a fresh calibration is fitted with c's
// options, identical to calling New(samples, c.Opts) directly. This is
// the incremental-recalibration primitive: a survey refresh calls Rebuild
// on every landmark it reprobed and pays the hull fit only where the
// measurements actually moved.
func (c *Calibration) Rebuild(samples []Sample) (*Calibration, error) {
	if len(samples) == len(c.Samples) {
		same := true
		for i, s := range samples {
			if s != c.Samples[i] {
				same = false
				break
			}
		}
		if same {
			return c, nil
		}
	}
	return New(samples, c.Opts)
}

// Rho returns the percentile cutoff latency ρ.
func (c *Calibration) Rho() float64 { return c.rho }

// MaxDistanceKm returns R_L(rtt): the largest distance at which a node with
// this round-trip time can plausibly be. It is always bounded by the
// speed-of-light distance and never negative.
func (c *Calibration) MaxDistanceKm(rttMs float64) float64 {
	sol := geo.LatencyToMaxDistanceKm(rttMs)
	var r float64
	if rttMs >= c.rho {
		r = c.rAtRho + c.slopeR*(rttMs-c.rho)
	} else {
		r = c.fullUpper.Eval(rttMs)
	}
	if math.IsNaN(r) || r > sol {
		r = sol
	}
	if r < 0 {
		r = 0
	}
	return r
}

// MinDistanceKm returns r_L(rtt): the smallest distance at which a node
// with this round-trip time can plausibly be (the negative-constraint
// radius). Beyond ρ it is held at r_L(ρ) per the paper.
func (c *Calibration) MinDistanceKm(rttMs float64) float64 {
	var r float64
	if rttMs >= c.rho {
		r = c.rLow
	} else {
		r = c.fullLower.Eval(rttMs)
	}
	if math.IsNaN(r) || r < 0 {
		r = 0
	}
	// Never above the corresponding upper bound.
	if up := c.MaxDistanceKm(rttMs); r > up {
		r = up
	}
	return r
}

// Band returns [r_L(rtt), R_L(rtt)] in one call.
func (c *Calibration) Band(rttMs float64) (minKm, maxKm float64) {
	return c.MinDistanceKm(rttMs), c.MaxDistanceKm(rttMs)
}

// UpperFacets exposes the truncated upper hull chain (for Figure 2 output).
func (c *Calibration) UpperFacets() []hull.P { return append([]hull.P(nil), c.upper...) }

// LowerFacets exposes the truncated lower hull chain (for Figure 2 output).
func (c *Calibration) LowerFacets() []hull.P { return append([]hull.P(nil), c.lower...) }

// LatencyPercentile returns the latency below which pct% of calibration
// samples fall — the vertical reference lines in Figure 2.
func (c *Calibration) LatencyPercentile(pct float64) float64 {
	lats := make([]float64, len(c.Samples))
	for i, s := range c.Samples {
		lats[i] = s.LatencyMs
	}
	return stats.Percentile(lats, pct)
}

// SortedSamples returns the calibration scatter sorted by latency (for
// rendering Figure 2).
func (c *Calibration) SortedSamples() []Sample {
	out := append([]Sample(nil), c.Samples...)
	sort.Slice(out, func(i, j int) bool { return out[i].LatencyMs < out[j].LatencyMs })
	return out
}

// monotoneEnvelope returns the non-decreasing upper envelope of a chain:
// descending runs flatten at the running maximum.
func monotoneEnvelope(c hull.Chain) hull.Chain {
	if len(c) == 0 {
		return c
	}
	out := make(hull.Chain, 0, len(c))
	runMax := math.Inf(-1)
	for _, p := range c {
		if p.Y > runMax {
			runMax = p.Y
		}
		out = append(out, hull.P{X: p.X, Y: runMax})
	}
	return out
}
