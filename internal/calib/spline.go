package calib

import (
	"math"
	"sort"
)

// Natural cubic spline approximation of the latency/distance scatter — the
// "Spline approximation" series of Figure 2. The scatter is binned by
// latency, bin means become knots, and a natural cubic spline interpolates
// the knots.

// Spline is a natural cubic spline over strictly increasing knots.
type Spline struct {
	xs, ys []float64
	m      []float64 // second derivatives at knots
}

// NewSpline fits a natural cubic spline through the given knots (sorted by
// x internally; duplicate x collapse to their mean y). It returns nil when
// fewer than 2 distinct knots exist.
func NewSpline(xs, ys []float64) *Spline {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil
	}
	type knot struct{ x, y float64 }
	ks := make([]knot, len(xs))
	for i := range xs {
		ks[i] = knot{xs[i], ys[i]}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].x < ks[j].x })
	// Collapse duplicate x.
	var ux, uy []float64
	for i := 0; i < len(ks); {
		j := i
		sum := 0.0
		for j < len(ks) && ks[j].x == ks[i].x {
			sum += ks[j].y
			j++
		}
		ux = append(ux, ks[i].x)
		uy = append(uy, sum/float64(j-i))
		i = j
	}
	if len(ux) < 2 {
		return nil
	}
	n := len(ux)
	// Solve the tridiagonal system for natural spline second derivatives.
	m := make([]float64, n)
	if n > 2 {
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		for i := 1; i < n-1; i++ {
			h0 := ux[i] - ux[i-1]
			h1 := ux[i+1] - ux[i]
			a[i] = h0
			b[i] = 2 * (h0 + h1)
			c[i] = h1
			d[i] = 6 * ((uy[i+1]-uy[i])/h1 - (uy[i]-uy[i-1])/h0)
		}
		// Thomas algorithm on interior rows.
		for i := 2; i < n-1; i++ {
			f := a[i] / b[i-1]
			b[i] -= f * c[i-1]
			d[i] -= f * d[i-1]
		}
		for i := n - 2; i >= 1; i-- {
			m[i] = (d[i] - c[i]*m[i+1]) / b[i]
		}
	}
	return &Spline{xs: ux, ys: uy, m: m}
}

// Eval evaluates the spline at x, extrapolating linearly beyond the knots.
func (s *Spline) Eval(x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		return s.ys[0] + s.derivAt(0)*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		return s.ys[n-1] + s.derivAt(n-1)*(x-s.xs[n-1])
	}
	i := sort.SearchFloat64s(s.xs, x)
	if s.xs[i] == x {
		return s.ys[i]
	}
	i--
	h := s.xs[i+1] - s.xs[i]
	t0 := (s.xs[i+1] - x) / h
	t1 := (x - s.xs[i]) / h
	return t0*s.ys[i] + t1*s.ys[i+1] +
		((t0*t0*t0-t0)*s.m[i]+(t1*t1*t1-t1)*s.m[i+1])*h*h/6
}

// derivAt returns the first derivative at knot i (for linear extrapolation).
func (s *Spline) derivAt(i int) float64 {
	n := len(s.xs)
	switch {
	case i == 0:
		h := s.xs[1] - s.xs[0]
		return (s.ys[1]-s.ys[0])/h - h/6*(2*s.m[0]+s.m[1])
	case i == n-1:
		h := s.xs[n-1] - s.xs[n-2]
		return (s.ys[n-1]-s.ys[n-2])/h + h/6*(s.m[n-2]+2*s.m[n-1])
	default:
		return 0
	}
}

// Knots returns the spline's knot coordinates.
func (s *Spline) Knots() (xs, ys []float64) {
	return append([]float64(nil), s.xs...), append([]float64(nil), s.ys...)
}

// SplineApproximation bins the calibration scatter into nBins latency bins
// and fits a natural cubic spline through the bin means — the Figure 2
// overlay curve. It returns nil when the scatter is too sparse.
func (c *Calibration) SplineApproximation(nBins int) *Spline {
	if nBins < 2 {
		nBins = 8
	}
	if len(c.Samples) < 2 {
		return nil
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, s := range c.Samples {
		minX = math.Min(minX, s.LatencyMs)
		maxX = math.Max(maxX, s.LatencyMs)
	}
	if maxX <= minX {
		return nil
	}
	sumY := make([]float64, nBins)
	sumX := make([]float64, nBins)
	cnt := make([]int, nBins)
	for _, s := range c.Samples {
		b := int((s.LatencyMs - minX) / (maxX - minX) * float64(nBins))
		if b >= nBins {
			b = nBins - 1
		}
		sumY[b] += s.DistanceKm
		sumX[b] += s.LatencyMs
		cnt[b]++
	}
	var xs, ys []float64
	for b := 0; b < nBins; b++ {
		if cnt[b] == 0 {
			continue
		}
		xs = append(xs, sumX[b]/float64(cnt[b]))
		ys = append(ys, sumY[b]/float64(cnt[b]))
	}
	return NewSpline(xs, ys)
}
