package calib

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"octant/internal/geo"
)

// syntheticScatter builds a latency/distance scatter with distance roughly
// 60–95% of the speed-of-light bound (an efficiency band, like Figure 2).
func syntheticScatter(seed uint64, n int) []Sample {
	rng := rand.New(rand.NewPCG(seed, 77))
	out := make([]Sample, n)
	for i := range out {
		lat := 2 + rng.Float64()*90
		eff := 0.60 + rng.Float64()*0.35
		out[i] = Sample{LatencyMs: lat, DistanceKm: geo.LatencyToMaxDistanceKm(lat) * eff}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty samples should error")
	}
	if _, err := New([]Sample{{1, 100}}, Options{}); err == nil {
		t.Error("single sample should error")
	}
	if _, err := New([]Sample{{1, 100}, {2, 150}}, Options{}); err != nil {
		t.Errorf("two samples should calibrate: %v", err)
	}
}

func TestBandsBracketSamples(t *testing.T) {
	samples := syntheticScatter(1, 60)
	c, err := New(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		lo, hi := c.Band(s.LatencyMs)
		if s.DistanceKm < lo-1e-6 || s.DistanceKm > hi+1e-6 {
			// Samples beyond ρ may legitimately escape the truncated
			// bounds only on the low side (r is held constant).
			if s.LatencyMs <= c.Rho() {
				t.Errorf("sample (%.1f ms, %.0f km) outside band [%.0f, %.0f]",
					s.LatencyMs, s.DistanceKm, lo, hi)
			}
		}
	}
}

func TestBoundsRespectPhysics(t *testing.T) {
	c, err := New(syntheticScatter(2, 40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rtt := 0.5; rtt < 500; rtt *= 1.4 {
		lo, hi := c.Band(rtt)
		sol := geo.LatencyToMaxDistanceKm(rtt)
		if hi > sol+1e-9 {
			t.Errorf("R(%.1f) = %.1f beats speed of light %.1f", rtt, hi, sol)
		}
		if lo < 0 || lo > hi+1e-9 {
			t.Errorf("band inverted at %.1f ms: [%.1f, %.1f]", rtt, lo, hi)
		}
	}
}

func TestCutoffBehaviour(t *testing.T) {
	samples := syntheticScatter(3, 80)
	c, err := New(samples, Options{CutoffPercentile: 75})
	if err != nil {
		t.Fatal(err)
	}
	rho := c.Rho()
	// Beyond ρ, r is constant.
	r1 := c.MinDistanceKm(rho + 10)
	r2 := c.MinDistanceKm(rho + 200)
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("r beyond ρ not constant: %.2f vs %.2f", r1, r2)
	}
	// Beyond ρ, R approaches the speed-of-light line: the gap at the
	// sentinel is much smaller than at ρ.
	gapAt := func(x float64) float64 {
		return geo.LatencyToMaxDistanceKm(x) - c.MaxDistanceKm(x)
	}
	if g1, g2 := gapAt(rho+5), gapAt(4*rho); g2 > g1+1e-6 {
		t.Errorf("R does not blend toward speed of light: gap %.1f → %.1f", g1, g2)
	}
	// Higher cutoff percentile ⇒ larger ρ.
	c95, _ := New(samples, Options{CutoffPercentile: 95})
	if c95.Rho() < rho {
		t.Errorf("ρ(95) = %.1f < ρ(75) = %.1f", c95.Rho(), rho)
	}
}

func TestMonotoneUpperBound(t *testing.T) {
	// R_L should be (weakly) increasing in latency: more latency can
	// never shrink the feasible disk. The hull facets of an efficiency
	// scatter satisfy this.
	f := func(seed uint64) bool {
		c, err := New(syntheticScatter(seed, 50), Options{})
		if err != nil {
			return false
		}
		prev := -1.0
		for rtt := 1.0; rtt < 300; rtt += 3 {
			v := c.MaxDistanceKm(rtt)
			if v < prev-1e-6 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTighterThanSpeedOfLight(t *testing.T) {
	// The whole point of §2.1: hull bounds beat the conservative bound in
	// the calibrated range.
	c, err := New(syntheticScatter(7, 80), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mid := c.Rho() / 2
	if got, sol := c.MaxDistanceKm(mid), geo.LatencyToMaxDistanceKm(mid); got >= sol*0.99 {
		t.Errorf("calibrated bound %.0f not tighter than speed of light %.0f", got, sol)
	}
	if got := c.MinDistanceKm(mid); got <= 0 {
		t.Errorf("negative-constraint radius should be positive at %.1f ms, got %.1f", mid, got)
	}
}

func TestLatencyPercentileAndSortedSamples(t *testing.T) {
	samples := []Sample{{30, 1000}, {10, 300}, {20, 700}}
	c, err := New(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LatencyPercentile(50); got != 20 {
		t.Errorf("median latency = %v", got)
	}
	ss := c.SortedSamples()
	if ss[0].LatencyMs != 10 || ss[2].LatencyMs != 30 {
		t.Errorf("SortedSamples = %v", ss)
	}
	if up := c.UpperFacets(); len(up) == 0 {
		t.Error("no upper facets")
	}
	if lo := c.LowerFacets(); len(lo) == 0 {
		t.Error("no lower facets")
	}
}

// TestMonotoneEnvelopeDuplicateX: equal-latency samples with different
// distances (two peers behind one POP, or quantized RTT clocks) must not
// break the monotone upper envelope — it stays non-decreasing, the fit
// succeeds, and the bound covers the larger of the duplicates.
func TestMonotoneEnvelopeDuplicateX(t *testing.T) {
	samples := []Sample{
		{LatencyMs: 10, DistanceKm: 800},
		{LatencyMs: 10, DistanceKm: 300}, // duplicate x, smaller y
		{LatencyMs: 10, DistanceKm: 650}, // duplicate x, middle y
		{LatencyMs: 25, DistanceKm: 900},
		{LatencyMs: 25, DistanceKm: 1700},
		{LatencyMs: 40, DistanceKm: 1200}, // upper hull would descend here
		{LatencyMs: 60, DistanceKm: 2600},
	}
	c, err := New(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for rtt := 1.0; rtt <= 80; rtt += 0.5 {
		r := c.MaxDistanceKm(rtt)
		if r < prev-1e-9 {
			t.Fatalf("R(%v) = %v < R(prev) = %v: envelope not monotone", rtt, r, prev)
		}
		prev = r
	}
	for _, s := range samples {
		if r := c.MaxDistanceKm(s.LatencyMs); r+1e-9 < s.DistanceKm {
			t.Errorf("R(%v) = %v fails to cover observed %v", s.LatencyMs, r, s.DistanceKm)
		}
	}
	// All-duplicate input: a vertical scatter still fits (degenerate hull).
	vert := []Sample{
		{LatencyMs: 12, DistanceKm: 100},
		{LatencyMs: 12, DistanceKm: 900},
		{LatencyMs: 12, DistanceKm: 400},
	}
	cv, err := New(vert, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := cv.MaxDistanceKm(12); r < 900-1e-9 {
		t.Errorf("vertical scatter: R(12) = %v, want ≥ 900", r)
	}
}

// TestLatencyPercentileBounds pins the endpoint and out-of-range
// behaviour: 0 and below clamp to the minimum sample, 100 and above to
// the maximum, and percentiles never leave [min, max].
func TestLatencyPercentileBounds(t *testing.T) {
	samples := syntheticScatter(9, 40)
	c, err := New(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		min = math.Min(min, s.LatencyMs)
		max = math.Max(max, s.LatencyMs)
	}
	for _, pct := range []float64{-10, 0} {
		if got := c.LatencyPercentile(pct); got != min {
			t.Errorf("LatencyPercentile(%v) = %v, want min %v", pct, got, min)
		}
	}
	for _, pct := range []float64{100, 250} {
		if got := c.LatencyPercentile(pct); got != max {
			t.Errorf("LatencyPercentile(%v) = %v, want max %v", pct, got, max)
		}
	}
	for pct := 5.0; pct < 100; pct += 5 {
		got := c.LatencyPercentile(pct)
		if got < min || got > max {
			t.Errorf("LatencyPercentile(%v) = %v outside [%v, %v]", pct, got, min, max)
		}
	}
	if lo, hi := c.LatencyPercentile(25), c.LatencyPercentile(75); lo > hi {
		t.Errorf("percentiles not monotone: p25 %v > p75 %v", lo, hi)
	}
}

// TestRebuildEquivalence: Rebuild on changed samples must be
// indistinguishable from a from-scratch New, and Rebuild on identical
// samples must return the receiver itself.
func TestRebuildEquivalence(t *testing.T) {
	orig := syntheticScatter(21, 30)
	c, err := New(orig, Options{CutoffPercentile: 85})
	if err != nil {
		t.Fatal(err)
	}

	// Identical samples (fresh slice, same values): pointer reuse.
	same, err := c.Rebuild(append([]Sample(nil), orig...))
	if err != nil {
		t.Fatal(err)
	}
	if same != c {
		t.Error("Rebuild with identical samples refit instead of reusing")
	}

	// Drifted samples: exact agreement with New under the same options.
	drifted := append([]Sample(nil), orig...)
	for i := range drifted {
		if i%3 == 0 {
			drifted[i].LatencyMs += 7.5
		}
	}
	inc, err := c.Rebuild(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if inc == c {
		t.Fatal("Rebuild with drifted samples returned the stale fit")
	}
	want, err := New(drifted, Options{CutoffPercentile: 85})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Rho() != want.Rho() {
		t.Errorf("rho %v != %v", inc.Rho(), want.Rho())
	}
	for rtt := 0.25; rtt < 300; rtt *= 1.3 {
		if a, b := inc.MaxDistanceKm(rtt), want.MaxDistanceKm(rtt); a != b {
			t.Errorf("R(%v): rebuild %v != new %v", rtt, a, b)
		}
		if a, b := inc.MinDistanceKm(rtt), want.MinDistanceKm(rtt); a != b {
			t.Errorf("r(%v): rebuild %v != new %v", rtt, a, b)
		}
	}

	// A sample-count change is a change.
	shorter, err := c.Rebuild(orig[:len(orig)-1])
	if err != nil {
		t.Fatal(err)
	}
	if shorter == c {
		t.Error("Rebuild with fewer samples reused the old fit")
	}
}

func TestSpline(t *testing.T) {
	// Exact interpolation at knots.
	s := NewSpline([]float64{0, 1, 2, 3}, []float64{0, 1, 4, 9})
	for i, x := range []float64{0, 1, 2, 3} {
		want := []float64{0, 1, 4, 9}[i]
		if got := s.Eval(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", x, got, want)
		}
	}
	// Smooth between knots (bounded by neighbours for convex data).
	if v := s.Eval(1.5); v < 1 || v > 4 {
		t.Errorf("Eval(1.5) = %v out of [1,4]", v)
	}
	// Linear data stays linear, including extrapolation.
	lin := NewSpline([]float64{0, 1, 2}, []float64{0, 2, 4})
	for _, x := range []float64{-1, 0.5, 1.7, 3} {
		if got := lin.Eval(x); math.Abs(got-2*x) > 1e-9 {
			t.Errorf("linear spline Eval(%v) = %v, want %v", x, got, 2*x)
		}
	}
	// Degenerate inputs.
	if NewSpline([]float64{1}, []float64{2}) != nil {
		t.Error("single knot should be nil")
	}
	if NewSpline([]float64{1, 1}, []float64{2, 4}) != nil {
		t.Error("duplicate-x-only knots should be nil")
	}
	// Duplicate x among others: collapses to mean.
	dup := NewSpline([]float64{0, 1, 1, 2}, []float64{0, 1, 3, 4})
	if got := dup.Eval(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("duplicate knot mean = %v, want 2", got)
	}
}

func TestSplineApproximation(t *testing.T) {
	c, err := New(syntheticScatter(9, 120), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp := c.SplineApproximation(10)
	if sp == nil {
		t.Fatal("no spline")
	}
	// The spline tracks the scatter: within the hull band at mid-range.
	mid := c.Rho() / 2
	lo, hi := c.Band(mid)
	if v := sp.Eval(mid); v < lo-100 || v > hi+100 {
		t.Errorf("spline %.0f far outside hull band [%.0f, %.0f] at %.1f ms", v, lo, hi, mid)
	}
	xs, ys := sp.Knots()
	if len(xs) != len(ys) || len(xs) < 3 {
		t.Errorf("knots %d/%d", len(xs), len(ys))
	}
}
