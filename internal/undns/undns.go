// Package undns maps router DNS names to geographic locations by exploiting
// the structured naming conventions of backbone operators, replacing the
// closed-source undns tool from Rocketfuel that the paper uses in §2.3.
//
// Backbone routers commonly embed a city token — usually an airport code or
// an abbreviated city name — in their reverse-DNS names:
//
//	sl-bb21-chi-14-0.sprintlink.net       → Chicago
//	so-0-1-0.bb1.nyc.simnet.net           → New York
//	ae-2.r20.londen03.uk.bb.gin.ntt.net   → London
//
// Rules tokenize names on [.-] and look tokens up in a city-code table,
// preferring tokens closer to the domain root (operator site codes appear
// in the host-specific labels, not the operator domain).
package undns

import (
	"strings"

	"octant/internal/geo"
	"octant/internal/netsim"
)

// Location is a resolved router position.
type Location struct {
	City    string
	Code    string
	Country string
	Loc     geo.Point
}

// Resolver parses router names against a city-code table. Resolve is a
// pure lookup, so a Resolver is safe for concurrent use once populated;
// call Add only before sharing it across goroutines.
type Resolver struct {
	byCode map[string]Location
	// extra name fragments → code, for city-name style tokens
	// ("chicago" → chi) with minimum length 4 to avoid false hits.
	byName map[string]string
}

// NewResolver builds a resolver over the simulator's POP city table plus
// full-name aliases.
func NewResolver() *Resolver {
	r := &Resolver{
		byCode: make(map[string]Location),
		byName: make(map[string]string),
	}
	for _, c := range netsim.POPCities {
		r.Add(c.Code, c.Name, c.Country, c.Loc())
	}
	return r
}

// Add registers a city code with its location. Full-name aliases (lowercase,
// spaces stripped) are registered automatically.
//
// Collisions resolve order-independently: when two cities register the
// same code (or the same name alias), the winner is chosen by comparing
// the entries themselves — lexicographically smaller city name first,
// then country — never by insertion order. Callers populating a
// Resolver from an unordered source (a map of custom rules, concurrent
// table merges) therefore always build the same table, and Resolve
// stays deterministic for any fixed rule set.
func (r *Resolver) Add(code, name, country string, loc geo.Point) {
	l := Location{City: name, Code: code, Country: country, Loc: loc}
	key := strings.ToLower(code)
	if prev, ok := r.byCode[key]; !ok || lessLocation(l, prev) {
		r.byCode[key] = l
	}
	alias := strings.ToLower(strings.ReplaceAll(name, " ", ""))
	if len(alias) >= 4 {
		if prev, ok := r.byName[alias]; !ok || key < prev {
			r.byName[alias] = key
		}
	}
}

// lessLocation orders locations deterministically for collision
// resolution: by city name, then country.
func lessLocation(a, b Location) bool {
	if a.City != b.City {
		return a.City < b.City
	}
	return a.Country < b.Country
}

// suffixesToStrip are generic label fragments that never carry geography.
var suffixesToStrip = map[string]bool{
	"net": true, "com": true, "org": true, "edu": true, "gov": true,
	"ip": true, "bb": true, "core": true, "gw": true, "rtr": true,
	"router": true, "gin": true, "alter": true, "ntt": true,
	"simnet": true, "sprintlink": true, "level3": true, "cogentco": true,
}

// Resolve attempts to extract a location from a router DNS name. ok is
// false when no token matches. Tokens are scanned right-to-left across
// labels (skipping the operator domain) and left-to-right within a label,
// so the most site-specific match wins.
func (r *Resolver) Resolve(name string) (Location, bool) {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	if name == "" {
		return Location{}, false
	}
	labels := strings.Split(name, ".")
	// Drop the TLD and registrable domain: geography never lives there.
	if len(labels) > 2 {
		labels = labels[:len(labels)-2]
	}
	// Scan host-specific labels from the rightmost (closest to the
	// operator domain, where site codes conventionally sit) inward.
	for i := len(labels) - 1; i >= 0; i-- {
		for _, tok := range strings.Split(labels[i], "-") {
			tok = strings.TrimFunc(tok, func(r rune) bool { return r >= '0' && r <= '9' })
			if tok == "" || suffixesToStrip[tok] {
				continue
			}
			if loc, ok := r.byCode[tok]; ok && len(tok) >= 3 {
				return loc, true
			}
			if code, ok := r.byName[tok]; ok {
				return r.byCode[code], true
			}
		}
	}
	return Location{}, false
}

// ResolvePath resolves every hop name it can, returning parallel slices of
// the input indices that resolved and their locations.
func (r *Resolver) ResolvePath(names []string) (idx []int, locs []Location) {
	for i, n := range names {
		if loc, ok := r.Resolve(n); ok {
			idx = append(idx, i)
			locs = append(locs, loc)
		}
	}
	return idx, locs
}
