package undns

import (
	"testing"

	"octant/internal/geo"
	"octant/internal/netsim"
)

func TestResolveSimulatorNames(t *testing.T) {
	r := NewResolver()
	cases := map[string]string{
		"so-0-1-0.bb1.chi.simnet.net":           "Chicago",
		"so-0-2-0.bb2.nyc.simnet.net":           "New York",
		"ge-2-3.car1.cornell-gw.alb.simnet.net": "Albany",
		"ge-2-3.car1.mit-gw.bos.simnet.net":     "Boston",
	}
	for name, wantCity := range cases {
		loc, ok := r.Resolve(name)
		if !ok {
			t.Errorf("Resolve(%q) failed", name)
			continue
		}
		if loc.City != wantCity {
			t.Errorf("Resolve(%q) = %q, want %q", name, loc.City, wantCity)
		}
	}
}

func TestResolveRealWorldShapes(t *testing.T) {
	r := NewResolver()
	cases := map[string]string{
		"sl-bb21-chi-14-0.sprintlink.net":    "Chicago",
		"ae-2.r20.nyc5.alter.net":            "New York",
		"xe-1-2-0.sea03.level3.net":          "Seattle",
		"te0-7-0-2.ccr21.atl01.cogentco.com": "Atlanta",
	}
	for name, wantCity := range cases {
		loc, ok := r.Resolve(name)
		if !ok {
			t.Errorf("Resolve(%q) failed", name)
			continue
		}
		if loc.City != wantCity {
			t.Errorf("Resolve(%q) = %q, want %q", name, loc.City, wantCity)
		}
	}
}

func TestResolveFullCityNames(t *testing.T) {
	r := NewResolver()
	loc, ok := r.Resolve("core1.chicago.backbone.example.net")
	if !ok || loc.City != "Chicago" {
		t.Errorf("full-name resolve = %v %v", loc, ok)
	}
}

func TestResolveNegative(t *testing.T) {
	r := NewResolver()
	for _, name := range []string{
		"",
		"planetlab1.cs.cornell.edu", // host, no POP token
		"core1.backbone.example.net",
		"a-b-c.example.com",
	} {
		if loc, ok := r.Resolve(name); ok {
			t.Errorf("Resolve(%q) unexpectedly = %v", name, loc)
		}
	}
}

func TestResolveDoesNotMatchDomainTokens(t *testing.T) {
	r := NewResolver()
	// "lon" appears in the registrable domain here; must not match.
	if loc, ok := r.Resolve("router1.lon-net.com"); ok {
		t.Errorf("domain token matched: %v", loc)
	}
}

func TestAddCustomCity(t *testing.T) {
	r := NewResolver()
	r.Add("ith", "Ithaca", "US", geo.Pt(42.4440, -76.5019))
	loc, ok := r.Resolve("ge-0-0-0.car2.ith.simnet.net")
	if !ok || loc.City != "Ithaca" {
		t.Errorf("custom city resolve = %v %v", loc, ok)
	}
	loc, ok = r.Resolve("core3.ithaca.upstate.example.net")
	if !ok || loc.Code != "ith" {
		t.Errorf("custom alias resolve = %v %v", loc, ok)
	}
}

func TestResolvePath(t *testing.T) {
	r := NewResolver()
	names := []string{
		"unknown.example.com",
		"so-0-1-0.bb1.den.simnet.net",
		"",
		"so-0-1-0.bb1.sfo.simnet.net",
	}
	idx, locs := r.ResolvePath(names)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("idx = %v", idx)
	}
	if locs[0].City != "Denver" || locs[1].City != "San Francisco" {
		t.Errorf("locs = %v", locs)
	}
}

// Colliding registrations must resolve the same way regardless of
// insertion order: the winner is picked by comparing the entries (city,
// then country), never by which Add happened first. Regression test for
// the map-iteration nondeterminism a caller populating from a Go map
// would otherwise inherit.
func TestAddCollisionOrderIndependent(t *testing.T) {
	a := Location{City: "Aachen", Code: "aaa", Country: "DE", Loc: geo.Pt(50.78, 6.08)}
	b := Location{City: "Zagreb", Code: "aaa", Country: "HR", Loc: geo.Pt(45.81, 15.98)}

	r1 := NewResolver()
	r1.Add(a.Code, a.City, a.Country, a.Loc)
	r1.Add(b.Code, b.City, b.Country, b.Loc)
	r2 := NewResolver()
	r2.Add(b.Code, b.City, b.Country, b.Loc)
	r2.Add(a.Code, a.City, a.Country, a.Loc)

	for _, name := range []string{
		"so-0-1-0.bb1.aaa.simnet.net", // code token
		"core3.aachen.example.net",    // name alias
		"core3.zagreb.example.net",
	} {
		l1, ok1 := r1.Resolve(name)
		l2, ok2 := r2.Resolve(name)
		if ok1 != ok2 || l1 != l2 {
			t.Errorf("Resolve(%q) order-dependent: %v/%v vs %v/%v", name, l1, ok1, l2, ok2)
		}
	}
	// The deterministic winner is the lexicographically smaller city.
	if l, ok := r1.Resolve("so-0-1-0.bb1.aaa.simnet.net"); !ok || l.City != "Aachen" {
		t.Errorf("collision winner = %v %v, want Aachen", l, ok)
	}
}

func TestAllPOPCodesResolve(t *testing.T) {
	r := NewResolver()
	for _, c := range netsim.POPCities {
		name := "so-1-1-1.bb3." + c.Code + ".simnet.net"
		loc, ok := r.Resolve(name)
		if !ok {
			t.Errorf("POP code %q did not resolve", c.Code)
			continue
		}
		if loc.Loc.DistanceKm(c.Loc()) > 1 {
			t.Errorf("POP %q resolved to wrong location", c.Code)
		}
	}
}
