package hints

import (
	"testing"

	"octant/internal/geo"
	"octant/internal/netsim"
)

func TestParseOperatorShapes(t *testing.T) {
	e := NewEngine()
	cases := map[string]struct {
		code string
		kind Kind
	}{
		"pool-17.chi.edge.simnet.net":          {"chi", KindIATA},
		"dsl-42.chcgil01.access.simnet.net":    {"chi", KindCLLI},
		"static-7.sea.edge.example.net":        {"sea", KindIATA},
		"cable-99.sttlwa01.access.example.net": {"sea", KindCLLI},
		"host-3.chicago.res.example.net":       {"chi", KindName},
	}
	for name, want := range cases {
		hs := e.Parse(name)
		if len(hs) != 1 {
			t.Errorf("Parse(%q) = %v, want one hint", name, hs)
			continue
		}
		if hs[0].Code != want.code || hs[0].Kind != want.kind {
			t.Errorf("Parse(%q) = %s/%s, want %s/%s", name, hs[0].Code, hs[0].Kind, want.code, want.kind)
		}
	}
}

func TestParseHintless(t *testing.T) {
	e := NewEngine()
	for _, name := range []string{
		"",
		".",
		"planetlab2.cs.cornell.edu",
		"pool-17.edge.simnet.net", // operator vocabulary only
		"router1.lon-net.com",     // token in the dropped registrable domain
		"a-b-c.example.com",
	} {
		if hs := e.Parse(name); hs != nil {
			t.Errorf("Parse(%q) = %v, want nil", name, hs)
		}
	}
}

// A hintless parse must not allocate: the rDNS stage runs on every
// localization, and almost every real target name carries no hint.
func TestParseHintlessAllocFree(t *testing.T) {
	e := NewEngine()
	allocs := testing.AllocsPerRun(100, func() {
		if hs := e.Parse("planetlab2.cs.cornell.edu"); hs != nil {
			t.Fatal("unexpected hint")
		}
	})
	if allocs != 0 {
		t.Errorf("hintless Parse allocates %.1f/op, want 0", allocs)
	}
}

func TestParseDedupAndOrder(t *testing.T) {
	e := NewEngine()
	// chi appears twice (IATA + CLLI); nyc once. Rightmost label scans
	// first, so chi (closer to the operator domain) leads.
	hs := e.Parse("nyc-5.chcgil01.chi.edge.example.net")
	if len(hs) != 2 {
		t.Fatalf("Parse = %v, want chi then nyc", hs)
	}
	if hs[0].Code != "chi" || hs[1].Code != "nyc" {
		t.Errorf("Parse order = [%s %s], want [chi nyc]", hs[0].Code, hs[1].Code)
	}
}

func TestParseStripsDigits(t *testing.T) {
	e := NewEngine()
	hs := e.Parse("pool-1742.chi3.edge.example.net")
	if len(hs) != 1 || hs[0].Code != "chi" {
		t.Errorf("digit-suffixed token: Parse = %v", hs)
	}
}

func TestAddCityCustom(t *testing.T) {
	e := NewEngine()
	loc := geo.Pt(42.4440, -76.5019)
	e.AddCity("ith", "ithcny", "Ithaca", loc)
	for _, name := range []string{
		"pool-9.ith.edge.example.net",
		"dsl-2.ithcny01.access.example.net",
		"host-1.ithaca.example.net",
	} {
		hs := e.Parse(name)
		if len(hs) != 1 || hs[0].Loc != loc {
			t.Errorf("Parse(%q) = %v, want Ithaca", name, hs)
			continue
		}
	}
}

// Every POP city must be reachable through all three token classes the
// gazetteer registers for it.
func TestGazetteerCoversAllPOPs(t *testing.T) {
	e := NewEngine()
	for _, c := range netsim.POPCities {
		clli := netsim.CLLIByCode[c.Code]
		if clli == "" {
			t.Errorf("POP %s has no CLLI entry", c.Code)
			continue
		}
		for _, name := range []string{
			"pool-1." + c.Code + ".edge.simnet.net",
			"dsl-1." + clli + "01.access.simnet.net",
		} {
			hs := e.Parse(name)
			if len(hs) != 1 || hs[0].Code != c.Code {
				t.Errorf("Parse(%q) = %v, want %s", name, hs, c.Code)
			}
		}
	}
}

// The simulator's synthetic host names must round-trip through the
// gazetteer: whatever netsim assigns, the engine recognizes, and the
// truthful hint points within the eligibility bound of the host.
func TestParseNetsimHostNames(t *testing.T) {
	e := NewEngine()
	w := netsim.NewWorld(netsim.Config{Seed: 1, HostRDNSHintFrac: 1})
	parsed := 0
	for _, id := range w.Hosts {
		n := w.Nodes[id]
		if n.RDNS == "" {
			continue
		}
		hs := e.Parse(n.RDNS)
		if len(hs) != 1 {
			t.Errorf("netsim name %q parsed to %v, want one hint", n.RDNS, hs)
			continue
		}
		if d := hs[0].Loc.DistanceKm(n.Loc); d > 100 {
			t.Errorf("hint for %q points %.0f km from the host", n.RDNS, d)
		}
		parsed++
	}
	if parsed < 10 {
		t.Errorf("only %d netsim names parsed", parsed)
	}
}
