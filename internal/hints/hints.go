// Package hints mines geographic hints from end-host reverse-DNS names,
// the HLOC-style complement to undns's router-name rules: ISPs embed city
// tokens — IATA airport codes ("pool-17.chi.edge.isp.net") and CLLI place
// prefixes ("dsl-42.chcgil01.access.telco.net") — in the operator names
// they assign to subscriber and access gear.
//
// A hint is never trusted on its own. The core pipeline cross-validates
// each hint disk against the speed-of-light bound implied by measured
// landmark RTTs and drops (but records) any hint the physics rules out,
// so a recycled or misconfigured name can only ever cost the hint, not
// the answer.
package hints

import (
	"strings"

	"octant/internal/geo"
	"octant/internal/netsim"
)

// Kind classifies where in a reverse name a hint token was recognized.
type Kind int

// Hint token kinds.
const (
	// KindIATA is a 3-letter airport-style city code ("chi").
	KindIATA Kind = iota
	// KindCLLI is a 6-letter CLLI place prefix ("chcgil").
	KindCLLI
	// KindName is a spelled-out city name token ("chicago").
	KindName
)

func (k Kind) String() string {
	switch k {
	case KindIATA:
		return "iata"
	case KindCLLI:
		return "clli"
	case KindName:
		return "name"
	}
	return "unknown"
}

// Hint is one geographic token recognized in a reverse-DNS name.
type Hint struct {
	// Code is the canonical (IATA-style) city code the token resolved to.
	Code string
	// City is the city's display name.
	City string
	// Kind is the token class that matched.
	Kind Kind
	// Loc is the city's position.
	Loc geo.Point
}

// entry is one gazetteer city.
type entry struct {
	code string
	city string
	loc  geo.Point
}

// Engine parses reverse names against IATA, CLLI, and city-name tables.
// Parse is a pure lookup, so an Engine is safe for concurrent use once
// populated; call AddCity only before sharing it across goroutines.
type Engine struct {
	byIATA map[string]entry
	byCLLI map[string]entry
	byName map[string]string // city-name alias (≥ 4 chars) → IATA code
	skip   map[string]bool
}

// NewEngine builds an engine over the simulator's POP city table: every
// city's IATA code, CLLI prefix (netsim.CLLIByCode), and full-name alias.
func NewEngine() *Engine {
	e := &Engine{
		byIATA: make(map[string]entry),
		byCLLI: make(map[string]entry),
		byName: make(map[string]string),
		skip:   operatorSuffixes(),
	}
	for _, c := range netsim.POPCities {
		e.AddCity(c.Code, netsim.CLLIByCode[c.Code], c.Name, c.Loc())
	}
	return e
}

// AddCity registers a city under its IATA code, optional CLLI prefix, and
// full-name alias (lowercase, spaces stripped, ≥ 4 chars).
func (e *Engine) AddCity(code, clli, name string, loc geo.Point) {
	ent := entry{code: strings.ToLower(code), city: name, loc: loc}
	e.byIATA[ent.code] = ent
	if clli != "" {
		e.byCLLI[strings.ToLower(clli)] = ent
	}
	alias := strings.ToLower(strings.ReplaceAll(name, " ", ""))
	if len(alias) >= 4 {
		e.byName[alias] = ent.code
	}
}

// operatorSuffixes are label fragments that never carry geography: the
// undns set plus the access-network vocabulary of subscriber pool names.
func operatorSuffixes() map[string]bool {
	return map[string]bool{
		"net": true, "com": true, "org": true, "edu": true, "gov": true,
		"ip": true, "bb": true, "core": true, "gw": true, "rtr": true,
		"router": true, "gin": true, "alter": true, "ntt": true,
		"simnet": true, "sprintlink": true, "level3": true, "cogentco": true,
		"edge": true, "access": true, "pool": true, "dsl": true,
		"cable": true, "static": true, "dyn": true, "dynamic": true,
		"res": true, "hsd": true, "host": true, "cust": true, "dhcp": true,
	}
}

// Parse extracts every geographic hint from a reverse-DNS name,
// deduplicated by city code, most site-specific (rightmost label,
// leftmost token) first. It returns nil — without allocating — when the
// name carries no recognizable token, which is the common case.
func (e *Engine) Parse(name string) []Hint {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	if name == "" {
		return nil
	}
	// Drop the TLD and registrable domain: geography never lives there.
	if last := strings.LastIndexByte(name, '.'); last >= 0 {
		if prev := strings.LastIndexByte(name[:last], '.'); prev >= 0 {
			name = name[:prev]
		}
	}
	var out []Hint
	// Scan host-specific labels from the rightmost (closest to the
	// operator domain, where site codes conventionally sit) inward,
	// slicing label and token boundaries by hand so a hintless name
	// costs no allocations.
	for len(name) > 0 {
		label := name
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			label = name[i+1:]
			name = name[:i]
		} else {
			name = ""
		}
		for len(label) > 0 {
			tok := label
			if j := strings.IndexByte(label, '-'); j >= 0 {
				tok = label[:j]
				label = label[j+1:]
			} else {
				label = ""
			}
			tok = strings.TrimFunc(tok, func(r rune) bool { return r >= '0' && r <= '9' })
			if tok == "" || e.skip[tok] {
				continue
			}
			if h, ok := e.match(tok); ok && !containsCode(out, h.Code) {
				out = append(out, h)
			}
		}
	}
	return out
}

// match resolves one cleaned token against the three tables.
func (e *Engine) match(tok string) (Hint, bool) {
	switch {
	case len(tok) == 3:
		if ent, ok := e.byIATA[tok]; ok {
			return Hint{Code: ent.code, City: ent.city, Kind: KindIATA, Loc: ent.loc}, true
		}
	case len(tok) == 6:
		if ent, ok := e.byCLLI[tok]; ok {
			return Hint{Code: ent.code, City: ent.city, Kind: KindCLLI, Loc: ent.loc}, true
		}
	}
	if len(tok) >= 4 {
		if code, ok := e.byName[tok]; ok {
			ent := e.byIATA[code]
			return Hint{Code: ent.code, City: ent.city, Kind: KindName, Loc: ent.loc}, true
		}
	}
	return Hint{}, false
}

func containsCode(hs []Hint, code string) bool {
	for _, h := range hs {
		if h.Code == code {
			return true
		}
	}
	return false
}
