package geo

import "math"

// Vec2 is a point or vector in the projection plane, in kilometres.
type Vec2 struct {
	X, Y float64
}

// V2 is shorthand for Vec2{x, y}.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the cross product v × w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns the squared length of v.
func (v Vec2) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return math.Hypot(v.X-w.X, v.Y-w.Y) }

// Normalize returns v scaled to unit length, or the zero vector if v is zero.
func (v Vec2) Normalize() Vec2 {
	l := v.Len()
	if l == 0 {
		return Vec2{}
	}
	return Vec2{v.X / l, v.Y / l}
}

// Perp returns v rotated 90° counter-clockwise.
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// Lerp returns the linear interpolation between v and w at parameter t.
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// Angle returns the angle of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// segDistance returns the distance from point p to the segment a-b.
func segDistance(p, a, b Vec2) float64 {
	ab := b.Sub(a)
	l2 := ab.Len2()
	if l2 == 0 {
		return p.Dist(a)
	}
	t := clamp(p.Sub(a).Dot(ab)/l2, 0, 1)
	return p.Dist(a.Add(ab.Scale(t)))
}

// segIntersect computes the intersection of segments p1-p2 and q1-q2. It
// returns the parametric positions (s along p, t along q) and whether the
// segments properly intersect (both parameters strictly inside (0,1) up to
// eps tolerance).
func segIntersect(p1, p2, q1, q2 Vec2) (s, t float64, ok bool) {
	d1 := p2.Sub(p1)
	d2 := q2.Sub(q1)
	den := d1.Cross(d2)
	if math.Abs(den) < 1e-12 {
		return 0, 0, false
	}
	w := q1.Sub(p1)
	s = w.Cross(d2) / den
	t = w.Cross(d1) / den
	const eps = 1e-9
	if s < eps || s > 1-eps || t < eps || t > 1-eps {
		return s, t, false
	}
	return s, t, true
}
