package geo

import (
	"math"
	"runtime"
	"sync"
)

// The active-edge-table scanline engine behind Grid's region fills.
//
// The naive rasterizer (scanRow, retained as the reference implementation
// for the equivalence property test) walks every edge of every ring for
// every grid row — O(rows × edges) per fill. An EdgeTable instead buckets
// each non-horizontal edge by the first row it can cross and maintains an
// incrementally-updated active list during the sweep, so a fill costs
// O(edges + Σ active-per-row) — for the convex-ish constraint disks the
// solver rasterizes, a handful of active edges per row instead of the
// whole ring.
//
// Bit-exactness: row membership and crossing coordinates are computed with
// the same floating-point comparisons and expressions as scanRow (see
// tableEdge), and crossings are ordered by the same deterministic
// comparator (sortCrossings), so the edge-table and naive rasterizers
// produce cell-for-cell identical output.

// tableEdge is one non-horizontal ring edge prepared for scanline sweeps.
// Endpoints keep their original ring order so the crossing coordinate is
// computed with exactly the expression scanRow uses.
type tableEdge struct {
	ax, ay, bx, by float64
	// The edge crosses scanline yc iff lo <= yc < hi — the same half-open
	// predicate scanRow evaluates ((a.Y <= yc && b.Y > yc) for upward
	// edges, (b.Y <= yc && a.Y > yc) for downward), on the same floats.
	lo, hi float64
	dir    int8 // winding direction: +1 upward (ay < by), -1 downward
}

// EdgeTable holds a region's edges bucketed by starting grid row, ready
// for one or more scanline sweeps over rows [y0, y1] of a grid. Buckets
// use a CSR layout (starts/items) rather than a slice per row, so building
// a table costs a handful of allocations no matter how many rows it spans.
// A table is immutable once built; concurrent sweeps over disjoint row
// ranges share it freely (the row-parallel fill path does exactly that).
//
// Tables are drawn from a sync.Pool: a localization rasterizes a hundred-odd
// constraint rings per solver pass, and before pooling those per-fill table
// buffers were the dominant allocation of the whole pipeline. release
// returns a table (and the build scratch it carries) for reuse.
type EdgeTable struct {
	edges  []tableEdge
	starts []int32 // CSR offsets into items, len rows+1
	items  []int32 // edge indices grouped by first eligible row
	y0, y1 int     // inclusive sweep row range

	rowOf []int32 // build scratch: first eligible row per edge
	next  []int32 // build scratch: counting-sort placement cursor
}

var edgeTablePool = sync.Pool{New: func() any { return new(EdgeTable) }}

// release returns the table's buffers to the pool. The caller must not use
// the table afterwards; sweeps (including parallel workers) must be done.
func (t *EdgeTable) release() { edgeTablePool.Put(t) }

// resize32 reslices s to length n, reallocating only when capacity falls
// short. Contents are unspecified.
func resize32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// bucket returns the edges first eligible at row y.
func (t *EdgeTable) bucket(y int) []int32 {
	bi := y - t.y0
	return t.items[t.starts[bi]:t.starts[bi+1]]
}

// newEdgeTable buckets the edges of r for sweeps over grid rows [y0, y1].
// Bucket rows are conservative (an edge may enter its bucket a row early);
// the sweep re-checks the exact crossing predicate every row, so the
// bounds only have to never be late.
func newEdgeTable(r *Region, g *Grid, y0, y1 int) *EdgeTable {
	t := edgeTablePool.Get().(*EdgeTable)
	t.y0, t.y1 = y0, y1
	t.edges = t.edges[:0]
	rowOf := t.rowOf[:0] // first eligible row per edge, relative to y0
	inv := 1 / g.CellKm
	for _, ring := range r.Rings {
		n := len(ring)
		for i := 0; i < n; i++ {
			a := ring[i]
			b := ring[(i+1)%n]
			if a.Y == b.Y {
				continue
			}
			e := tableEdge{ax: a.X, ay: a.Y, bx: b.X, by: b.Y}
			if a.Y < b.Y {
				e.lo, e.hi, e.dir = a.Y, b.Y, 1
			} else {
				e.lo, e.hi, e.dir = b.Y, a.Y, -1
			}
			// Row y has centre yc = Min.Y + (y+0.5)·cell; the true active
			// range solves lo <= yc < hi. Widen by one row on each side to
			// absorb floating-point rounding of the division.
			first := int(math.Floor((e.lo-g.Min.Y)*inv-0.5)) - 1
			last := int(math.Ceil((e.hi-g.Min.Y)*inv-0.5)) + 1
			if last < y0 || first > y1 {
				continue
			}
			if first < y0 {
				first = y0
			}
			t.edges = append(t.edges, e)
			rowOf = append(rowOf, int32(first-y0))
		}
	}
	t.rowOf = rowOf
	rows := y1 - y0 + 1
	t.starts = resize32(t.starts, rows+1)
	clear(t.starts)
	for _, ri := range rowOf {
		t.starts[ri+1]++
	}
	for i := 1; i <= rows; i++ {
		t.starts[i] += t.starts[i-1]
	}
	// items and next are fully overwritten below, so reused capacity needs
	// no clearing: the counting sort writes every items slot exactly once.
	t.items = resize32(t.items, len(t.edges))
	t.next = append(t.next[:0], t.starts[:rows]...)
	next := t.next
	// Counting-sort placement preserves edge order within a bucket, so the
	// active list admits edges in the same order per-row append buckets
	// would — keeping crossing order, and therefore output, deterministic.
	for i, ri := range rowOf {
		t.items[next[ri]] = int32(i)
		next[ri]++
	}
	return t
}

// sweep scans rows r0..r1 (a sub-range of the table's [y0, y1]), invoking
// fn(y, x0, x1) for every maximal run of row-y cells whose centres lie
// inside the region. Rows ascend; the active list admits edges from their
// buckets and retires them once the scanline passes their upper end.
func (t *EdgeTable) sweep(g *Grid, r0, r1 int, fn func(y, x0, x1 int)) {
	sc := sweepPool.Get().(*sweepScratch)
	active := sc.active[:0]
	// A sweep starting mid-grid (a parallel worker) must consider edges
	// bucketed at earlier rows that may still span r0; the per-row
	// predicate discards the dead ones on the first iteration.
	active = append(active, t.items[:t.starts[r0-t.y0]]...)
	cross := sc.cross[:0]
	for y := r0; y <= r1; y++ {
		active = append(active, t.bucket(y)...)
		if len(active) == 0 {
			continue
		}
		yc := g.Min.Y + (float64(y)+0.5)*g.CellKm
		cross = cross[:0]
		keep := active[:0]
		for _, ei := range active {
			e := &t.edges[ei]
			if yc >= e.hi {
				continue // scanline passed the edge: retire it
			}
			keep = append(keep, ei)
			if e.lo > yc {
				continue // bucketed conservatively early; not active yet
			}
			// Identical expression to scanRow, bit for bit.
			tt := (yc - e.ay) / (e.by - e.ay)
			cross = append(cross, crossing{x: e.ax + tt*(e.bx-e.ax), dir: int(e.dir)})
		}
		active = keep
		if len(cross) == 0 {
			continue
		}
		sortCrossings(cross)
		emitSpans(g, cross, y, fn)
	}
	sc.active, sc.cross = active, cross
	sweepPool.Put(sc)
}

// sweepScratch holds one sweep's active list and crossing buffer, pooled so
// the per-fill (and per-parallel-worker) scratch never hits the allocator
// in steady state.
type sweepScratch struct {
	active []int32
	cross  []crossing
}

var sweepPool = sync.Pool{New: func() any {
	return &sweepScratch{active: make([]int32, 0, 32), cross: make([]crossing, 0, 32)}
}}

// sortCrossings orders crossings by (x, dir) with a zero-allocation
// insertion sort (active lists are small). The dir tie-break makes the
// order a deterministic function of the crossing multiset, which is what
// lets the naive and edge-table rasterizers agree bit-for-bit: equal
// (x, dir) crossings are interchangeable for span extraction.
func sortCrossings(buf []crossing) {
	for i := 1; i < len(buf); i++ {
		c := buf[i]
		j := i - 1
		for j >= 0 && (buf[j].x > c.x || (buf[j].x == c.x && buf[j].dir > c.dir)) {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = c
	}
}

// emitSpans converts one row's sorted crossings into cell spans under the
// non-zero winding rule, invoking fn for each maximal inside-run.
func emitSpans(g *Grid, buf []crossing, y int, fn func(y, x0, x1 int)) {
	wind := 0
	var openX float64
	for i := 0; i < len(buf); i++ {
		prev := wind
		wind += buf[i].dir
		if prev == 0 && wind != 0 {
			openX = buf[i].x
		} else if prev != 0 && wind == 0 {
			x0 := int(math.Ceil((openX-g.Min.X)/g.CellKm - 0.5))
			x1 := int(math.Floor((buf[i].x-g.Min.X)/g.CellKm - 0.5))
			if x0 < 0 {
				x0 = 0
			}
			if x1 >= g.W {
				x1 = g.W - 1
			}
			if x0 <= x1 {
				fn(y, x0, x1)
			}
		}
	}
}

// parallelFillMinCells is the bounding-box cell count above which a fill
// partitions its rows across GOMAXPROCS workers. A variable rather than a
// constant so tests can force the parallel path onto small grids.
var parallelFillMinCells = 1 << 17

// forEachSpan rasterizes r over the grid, invoking fn(y, x0, x1) for every
// maximal inside-run of cells. This is the single span visitor behind
// AddRegion, MaskRegion, and RasterizeRegion.
//
// Small fills sweep rows sequentially in ascending order. Above
// parallelFillMinCells bounding-box cells, the row range is partitioned
// into contiguous chunks swept concurrently: every row's spans depend only
// on that row's scanline, and each fn invocation touches only row y, so
// the parallel fill is race-free and bit-identical to the sequential one.
func (g *Grid) forEachSpan(r *Region, fn func(y, x0, x1 int)) {
	if r == nil || len(r.Rings) == 0 {
		return
	}
	min, max, ok := r.BoundingBox()
	if !ok {
		return
	}
	y0 := int(math.Floor((min.Y - g.Min.Y) / g.CellKm))
	y1 := int(math.Ceil((max.Y - g.Min.Y) / g.CellKm))
	if y0 < 0 {
		y0 = 0
	}
	if y1 > g.H-1 {
		y1 = g.H - 1
	}
	if y0 > y1 {
		return
	}
	t := newEdgeTable(r, g, y0, y1)
	defer t.release()
	if len(t.edges) == 0 {
		return
	}
	rows := y1 - y0 + 1
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 || rows < 2*workers || rows*g.W < parallelFillMinCells {
		t.sweep(g, y0, y1, fn)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for r0 := y0; r0 <= y1; r0 += chunk {
		r1 := r0 + chunk - 1
		if r1 > y1 {
			r1 = y1
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			t.sweep(g, r0, r1, fn)
		}(r0, r1)
	}
	wg.Wait()
}
