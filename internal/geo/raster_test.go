package geo

import (
	"math"
	"strings"
	"testing"
)

func TestGridAddRegionAndThreshold(t *testing.T) {
	g := NewGrid(V2(-20, -20), V2(20, 20), 0.25)
	d := Disk(V2(0, 0), 10, 128)
	g.AddRegion(d, 1)
	out := g.Threshold(1)
	want := math.Pi * 100
	if got := out.Area(); math.Abs(got-want) > want*0.02 {
		t.Errorf("thresholded disk area %v, want %v", got, want)
	}
	if !out.Contains(V2(0, 0)) || out.Contains(V2(15, 15)) {
		t.Error("thresholded region containment wrong")
	}
}

func TestGridWeightAccumulation(t *testing.T) {
	g := NewGrid(V2(-30, -30), V2(30, 30), 0.5)
	g.AddRegion(Disk(V2(-5, 0), 12, 128), 1)
	g.AddRegion(Disk(V2(5, 0), 12, 128), 1)
	if m := g.MaxWeight(); m != 2 {
		t.Fatalf("MaxWeight = %v, want 2", m)
	}
	// Weight-2 region is the lens.
	lens := g.Threshold(2)
	want := lensArea(12, 10)
	if got := lens.Area(); math.Abs(got-want) > want*0.05 {
		t.Errorf("lens area %v, want %v", got, want)
	}
	// Weight-1 region is the union.
	union := g.Threshold(1)
	wantU := 2*math.Pi*144 - want
	if got := union.Area(); math.Abs(got-wantU) > wantU*0.05 {
		t.Errorf("union area %v, want %v", got, wantU)
	}
	levels := g.WeightLevels()
	if len(levels) != 3 || levels[0] != 2 || levels[1] != 1 || levels[2] != 0 {
		t.Errorf("WeightLevels = %v", levels)
	}
}

func TestGridMaskRegion(t *testing.T) {
	g := NewGrid(V2(-30, -30), V2(30, 30), 0.5)
	g.AddRegion(Disk(V2(0, 0), 20, 128), 1)
	g.MaskRegion(Disk(V2(0, 0), 8, 128), -1000)
	out := g.Threshold(1)
	want := math.Pi * (400 - 64)
	if got := out.Area(); math.Abs(got-want) > want*0.05 {
		t.Errorf("masked area %v, want %v", got, want)
	}
	if out.Contains(V2(0, 0)) {
		t.Error("masked centre should be excluded")
	}
}

func TestGridThresholdHole(t *testing.T) {
	g := NewGrid(V2(-30, -30), V2(30, 30), 0.25)
	g.AddRegion(Annulus(V2(0, 0), 10, 20, 128), 1)
	out := g.Threshold(1)
	if out.Contains(V2(0, 0)) {
		t.Error("annulus hole should survive raster round trip")
	}
	if !out.Contains(V2(15, 0)) {
		t.Error("annulus body missing")
	}
	// Must contain a CW ring (the hole).
	hasHole := false
	for _, ring := range out.Rings {
		if !ring.IsCCW() {
			hasHole = true
		}
	}
	if !hasHole {
		t.Error("expected an explicit hole ring")
	}
}

func TestGridAreaAtOrAbove(t *testing.T) {
	g := NewGrid(V2(0, 0), V2(10, 10), 1)
	g.AddRegion(Rect(V2(0, 0), V2(10, 5)), 1)
	if got := g.AreaAtOrAbove(1); math.Abs(got-50) > 10 {
		t.Errorf("AreaAtOrAbove(1) = %v, want ≈ 50", got)
	}
	if got := g.AreaAtOrAbove(0); math.Abs(got-100) > 1e-9 {
		t.Errorf("AreaAtOrAbove(0) = %v, want 100", got)
	}
}

func TestGridCellCap(t *testing.T) {
	// Requesting an absurd resolution must degrade, not explode.
	g := NewGrid(V2(0, 0), V2(100000, 100000), 0.001)
	if g.W*g.H > 1<<22 {
		t.Errorf("grid exceeded cell cap: %d", g.W*g.H)
	}
}

func TestCellAtCenterInverse(t *testing.T) {
	g := NewGrid(V2(-10, -10), V2(10, 10), 0.5)
	for _, cell := range [][2]int{{0, 0}, {5, 7}, {g.W - 1, g.H - 1}} {
		c := g.CellCenter(cell[0], cell[1])
		x, y := g.CellAt(c)
		if x != cell[0] || y != cell[1] {
			t.Errorf("CellAt(CellCenter(%v)) = (%d,%d)", cell, x, y)
		}
	}
}

func TestTraceBoundaryDiagonalSaddle(t *testing.T) {
	// Two cells touching only at a corner: the saddle case. Tracing must
	// produce two separate rings, not a figure-eight.
	g := NewGrid(V2(0, 0), V2(2, 2), 1)
	inside := []bool{true, false, false, true} // (0,0) and (1,1)
	reg := g.traceBoundary(inside)
	if len(reg.Rings) != 2 {
		t.Fatalf("saddle should trace 2 rings, got %d: %v", len(reg.Rings), reg)
	}
	if math.Abs(reg.Area()-2) > 1e-9 {
		t.Errorf("saddle area %v, want 2", reg.Area())
	}
}

func TestGeoJSONExport(t *testing.T) {
	pr := NewProjection(Pt(40, -95))
	reg := Annulus(V2(0, 0), 50, 150, 64)
	js, err := reg.ToGeoJSON(pr, map[string]any{"name": "test"})
	if err != nil {
		t.Fatal(err)
	}
	s := string(js)
	for _, want := range []string{`"MultiPolygon"`, `"Feature"`, `"name": "test"`} {
		if !strings.Contains(s, want) {
			t.Errorf("GeoJSON missing %s", want)
		}
	}
	if _, err := reg.ToGeoJSON(nil, nil); err == nil {
		t.Error("nil projection should error")
	}
	empty, err := EmptyRegion().ToGeoJSON(pr, nil)
	if err != nil || !strings.Contains(string(empty), `"coordinates": []`) {
		t.Errorf("empty region GeoJSON: %v %s", err, empty)
	}
}
