package geo

import "math"

// Ring is a closed polygonal loop in the projection plane. The closing edge
// from the last vertex back to the first is implicit. Counter-clockwise
// rings enclose area positively (outer boundaries); clockwise rings are
// holes.
type Ring []Vec2

// signedArea returns the signed area of the ring via the shoelace formula
// (positive for counter-clockwise).
func signedArea(r []Vec2) float64 {
	n := len(r)
	if n < 3 {
		return 0
	}
	var a float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	return a / 2
}

// Area returns the absolute area of the ring in km².
func (r Ring) Area() float64 { return math.Abs(signedArea(r)) }

// SignedArea returns the signed area (positive if counter-clockwise).
func (r Ring) SignedArea() float64 { return signedArea(r) }

// IsCCW reports whether the ring winds counter-clockwise.
func (r Ring) IsCCW() bool { return signedArea(r) > 0 }

// Perimeter returns the total boundary length of the ring in km.
func (r Ring) Perimeter() float64 {
	n := len(r)
	if n < 2 {
		return 0
	}
	var l float64
	for i := 0; i < n; i++ {
		l += r[i].Dist(r[(i+1)%n])
	}
	return l
}

// Centroid returns the area centroid of the ring. For degenerate rings the
// vertex mean is returned.
func (r Ring) Centroid() Vec2 {
	a := signedArea(r)
	if math.Abs(a) < 1e-12 {
		var c Vec2
		for _, v := range r {
			c = c.Add(v)
		}
		if len(r) > 0 {
			c = c.Scale(1 / float64(len(r)))
		}
		return c
	}
	var cx, cy float64
	n := len(r)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		f := r[i].X*r[j].Y - r[j].X*r[i].Y
		cx += (r[i].X + r[j].X) * f
		cy += (r[i].Y + r[j].Y) * f
	}
	return Vec2{cx / (6 * a), cy / (6 * a)}
}

// Contains reports whether p lies strictly inside the ring, using the
// non-zero winding rule with an even-odd fallback for points on edges.
func (r Ring) Contains(p Vec2) bool {
	return windingNumber(r, p) != 0
}

// windingNumber computes the winding number of ring r around p.
func windingNumber(r []Vec2, p Vec2) int {
	n := len(r)
	if n < 3 {
		return 0
	}
	wn := 0
	for i := 0; i < n; i++ {
		a := r[i]
		b := r[(i+1)%n]
		if a.Y <= p.Y {
			if b.Y > p.Y && isLeft(a, b, p) > 0 {
				wn++
			}
		} else {
			if b.Y <= p.Y && isLeft(a, b, p) < 0 {
				wn--
			}
		}
	}
	return wn
}

// isLeft returns >0 if p is left of the directed line a→b, <0 right, 0 on.
func isLeft(a, b, p Vec2) float64 {
	return (b.X-a.X)*(p.Y-a.Y) - (p.X-a.X)*(b.Y-a.Y)
}

// BoundingBox returns the axis-aligned bounding box of the ring.
func (r Ring) BoundingBox() (min, max Vec2) {
	if len(r) == 0 {
		return Vec2{}, Vec2{}
	}
	min, max = r[0], r[0]
	for _, v := range r[1:] {
		min.X = math.Min(min.X, v.X)
		min.Y = math.Min(min.Y, v.Y)
		max.X = math.Max(max.X, v.X)
		max.Y = math.Max(max.Y, v.Y)
	}
	return min, max
}

// DistanceTo returns the minimum distance from p to the ring boundary.
func (r Ring) DistanceTo(p Vec2) float64 {
	n := len(r)
	if n == 0 {
		return math.Inf(1)
	}
	if n == 1 {
		return p.Dist(r[0])
	}
	d := math.Inf(1)
	for i := 0; i < n; i++ {
		d = math.Min(d, segDistance(p, r[i], r[(i+1)%n]))
	}
	return d
}

// MaxDistanceTo returns the maximum distance from p to any vertex of the
// ring. Because Euclidean distance is convex, the maximum over the ring's
// enclosed (convex hull of) area is attained at a vertex.
func (r Ring) MaxDistanceTo(p Vec2) float64 {
	var d float64
	for _, v := range r {
		if dd := p.Dist(v); dd > d {
			d = dd
		}
	}
	return d
}

// Clone returns a deep copy of the ring.
func (r Ring) Clone() Ring {
	out := make(Ring, len(r))
	copy(out, r)
	return out
}

// Simplify returns a copy of the ring with vertices closer than tol to the
// line through their neighbours removed (Ramer–Douglas–Peucker applied to the
// closed loop, split at the two farthest-apart vertices).
func (r Ring) Simplify(tol float64) Ring {
	n := len(r)
	if n <= 4 || tol <= 0 {
		return r.Clone()
	}
	// Split at index 0 and the vertex farthest from vertex 0.
	far := 0
	var fd float64
	for i := 1; i < n; i++ {
		if d := r[0].Dist(r[i]); d > fd {
			fd, far = d, i
		}
	}
	if far == 0 {
		return r.Clone()
	}
	a := rdp(append([]Vec2{}, r[:far+1]...), tol)
	closed := append([]Vec2{}, r[far:]...)
	closed = append(closed, r[0])
	b := rdp(closed, tol)
	out := make(Ring, 0, len(a)+len(b))
	out = append(out, a...)
	if len(b) > 2 {
		out = append(out, b[1:len(b)-1]...)
	}
	if len(out) < 3 {
		return r.Clone()
	}
	return out
}

// rdp is the Ramer–Douglas–Peucker polyline simplification.
func rdp(pts []Vec2, tol float64) []Vec2 {
	if len(pts) < 3 {
		return pts
	}
	var maxD float64
	idx := 0
	a, b := pts[0], pts[len(pts)-1]
	for i := 1; i < len(pts)-1; i++ {
		if d := segDistance(pts[i], a, b); d > maxD {
			maxD, idx = d, i
		}
	}
	if maxD <= tol {
		return []Vec2{a, b}
	}
	left := rdp(pts[:idx+1], tol)
	right := rdp(pts[idx:], tol)
	return append(left[:len(left)-1], right...)
}
