package geo

import (
	"math"
	"math/rand"
	"testing"
)

// propertyCenters are projection centres chosen to stress the fast path's
// agreement with the reference spherical implementation: equator, both
// high-latitude bands, and both sides of the antimeridian.
var propertyCenters = []Point{
	{Lat: 0, Lon: 0},
	{Lat: 0, Lon: 90},
	{Lat: 40, Lon: -95},
	{Lat: 75, Lon: 10},
	{Lat: -75, Lon: -130},
	{Lat: 12, Lon: 179.8},
	{Lat: -33, Lon: -179.9},
	{Lat: 51.5, Lon: -0.1},
}

const propertyTolKm = 0.001 // < 1 m

// TestFrameForwardMatchesReference checks the unit-vector Forward against
// the retained haversine+bearing reference over random points around each
// stress centre.
func TestFrameForwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range propertyCenters {
		pr := NewProjection(c)
		for i := 0; i < 500; i++ {
			// Random destination up to ~8000 km away, sampled on the
			// sphere so antimeridian wraps and pole proximity occur
			// naturally.
			p := c.Destination(2*math.Pi*rng.Float64(), 8000*rng.Float64())
			fast := pr.Forward(p)
			ref := pr.forwardReference(p)
			if d := fast.Dist(ref); d > propertyTolKm {
				t.Fatalf("Forward mismatch at centre %v point %v: fast %v ref %v (Δ %.6f km)",
					c, p, fast, ref, d)
			}
		}
	}
}

// TestFusedGeoCircleMatchesReference checks the fused unit-vector circle
// construction (frame circle + tangent-plane projection) vertex-by-vertex
// against the reference Destination→Forward chain, across the adaptive
// vertex counts and radii from city disks to continental bounds.
func TestFusedGeoCircleMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	radii := []float64{1, 30, 60, 250, 1000, 3000, 6000}
	for _, c := range propertyCenters {
		pr := NewProjection(c)
		for i := 0; i < 40; i++ {
			lm := c.Destination(2*math.Pi*rng.Float64(), 5000*rng.Float64())
			r := radii[i%len(radii)] * (0.5 + rng.Float64())
			for _, n := range []int{24, 32, 48, 96} {
				fast := pr.GeoCircle(lm, r, n)
				ref := pr.geoCircleReference(lm, r, n)
				if len(fast) != len(ref) {
					t.Fatalf("vertex count mismatch: %d vs %d", len(fast), len(ref))
				}
				for j := range fast {
					if d := fast[j].Dist(ref[j]); d > propertyTolKm {
						t.Fatalf("GeoCircle mismatch centre %v landmark %v r=%.1f n=%d vertex %d: fast %v ref %v (Δ %.6f km)",
							c, lm, r, n, j, fast[j], ref[j], d)
					}
				}
			}
		}
	}
}

// TestGeoCircleNonDivisorCount exercises the sincos fallback for vertex
// counts that do not divide the bearing table.
func TestGeoCircleNonDivisorCount(t *testing.T) {
	pr := NewProjection(Pt(40, -95))
	lm := Pt(42, -90)
	for _, n := range []int{7, 17, 50, 100} {
		fast := pr.GeoCircle(lm, 500, n)
		ref := pr.geoCircleReference(lm, 500, n)
		for j := range fast {
			if d := fast[j].Dist(ref[j]); d > propertyTolKm {
				t.Fatalf("n=%d vertex %d: Δ %.6f km", n, j, d)
			}
		}
	}
}

// TestCircleSegments pins the adaptive polygonalization: the chord error
// of the chosen count stays within tolerance, counts never leave
// [24, 96], and they divide the bearing table.
func TestCircleSegments(t *testing.T) {
	const tol = 1.0
	for _, r := range []float64{0.5, 10, 60, 120, 300, 900, 3000, 20000} {
		n := CircleSegments(r, tol)
		if n < 24 || n > 96 || circleTableN%n != 0 {
			t.Fatalf("CircleSegments(%g) = %d: outside [24, 96] or not a table divisor", r, n)
		}
		sagitta := r * (1 - math.Cos(math.Pi/float64(n)))
		if n < 96 && sagitta > tol {
			t.Errorf("CircleSegments(%g) = %d: sagitta %.3f km exceeds tolerance", r, n, sagitta)
		}
	}
	if n := CircleSegments(60, tol); n != 24 {
		t.Errorf("a 60 km disk should polygonalize at the 24-vertex floor, got %d", n)
	}
	if n := CircleSegments(3000, tol); n != 96 {
		t.Errorf("a 3000 km disk should stay at the 96-vertex cap, got %d", n)
	}
}

// TestSpherePolyContains checks spherical containment on a geodesic
// quadrilateral straddling the antimeridian.
func TestSpherePolyContains(t *testing.T) {
	quad := []Vec3{
		UnitVec(Pt(-10, 170)),
		UnitVec(Pt(-10, -160)),
		UnitVec(Pt(15, -160)),
		UnitVec(Pt(15, 170)),
	}
	inside := []Point{Pt(0, 180), Pt(5, 175), Pt(-5, -170)}
	outside := []Point{Pt(0, 150), Pt(0, -140), Pt(30, 180), Pt(-30, 180), Pt(0, 0)}
	for _, p := range inside {
		if !SpherePolyContains(quad, UnitVec(p)) {
			t.Errorf("%v should be inside", p)
		}
	}
	for _, p := range outside {
		if SpherePolyContains(quad, UnitVec(p)) {
			t.Errorf("%v should be outside", p)
		}
	}
}

// TestUnitVecRoundTrip sanity-checks the Vec3 <-> Point conversion.
func TestUnitVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := Pt(rng.Float64()*180-90, rng.Float64()*360-180)
		q := UnitVec(p).Point()
		if p.DistanceKm(q) > 1e-6 {
			t.Fatalf("round trip moved %v to %v", p, q)
		}
	}
}
