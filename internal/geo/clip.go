package geo

import "math"

// This file implements Greiner–Hormann polygon clipping for pairs of simple
// rings. It is the exact boolean engine; the raster engine (raster.go)
// handles arbitrary multi-ring regions and is used to cross-validate this
// one in property tests. Degenerate configurations (shared vertices,
// edge-touching) are handled by deterministic micro-perturbation and retry.

// BoolOp selects a boolean operation.
type BoolOp int

// Boolean operations on regions.
const (
	OpIntersect BoolOp = iota
	OpUnion
	OpSubtract // a \ b
)

func (op BoolOp) String() string {
	switch op {
	case OpIntersect:
		return "intersect"
	case OpUnion:
		return "union"
	case OpSubtract:
		return "subtract"
	}
	return "unknown"
}

type ghNode struct {
	p          Vec2
	next, prev *ghNode
	neighbor   *ghNode
	intersect  bool
	entry      bool
	processed  bool
	alpha      float64
}

// buildList creates a circular doubly linked list from ring vertices.
func buildList(ring Ring) *ghNode {
	var first, last *ghNode
	for _, p := range ring {
		n := &ghNode{p: p}
		if first == nil {
			first = n
			last = n
			continue
		}
		last.next = n
		n.prev = last
		last = n
	}
	last.next = first
	first.prev = last
	return first
}

// insertBetween inserts an intersection node between a and the next
// non-intersection node, ordered by alpha.
func insertBetween(n *ghNode, a, b *ghNode) {
	c := a
	for c != b && c.next != b && c.next.alpha <= n.alpha && c.next.intersect {
		c = c.next
	}
	// Walk forward among intersection nodes keeping alpha order.
	for c.next != b && c.next.intersect && c.next.alpha < n.alpha {
		c = c.next
	}
	n.next = c.next
	n.prev = c
	c.next.prev = n
	c.next = n
}

// clipRings performs op on two simple rings via Greiner–Hormann.
// ok is false when the configuration was too degenerate even after
// perturbation; callers fall back to the raster engine.
func clipRings(subject, clip Ring, op BoolOp) (*Region, bool) {
	s := subject.Clone()
	ensureCCW(s)
	c := clip.Clone()
	ensureCCW(c)
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			c = perturbRing(c, attempt)
		}
		reg, ok := clipOnce(s, c, op)
		if ok {
			return reg, true
		}
	}
	return nil, false
}

// perturbRing returns ring translated by a tiny deterministic offset.
func perturbRing(r Ring, attempt int) Ring {
	d := 1e-6 * float64(attempt)
	out := make(Ring, len(r))
	for i, p := range r {
		out[i] = Vec2{p.X + d*1.13, p.Y - d*0.71}
	}
	return out
}

func clipOnce(subject, clip Ring, op BoolOp) (*Region, bool) {
	sList := buildList(subject)
	cList := buildList(clip)

	// Phase 1: find intersections and insert paired nodes.
	degenerate := false
	nIntersections := 0
	forEachEdge(sList, func(s1, s2 *ghNode) {
		forEachEdge(cList, func(c1, c2 *ghNode) {
			a, b, ok := segIntersectFull(s1.p, s2.p, c1.p, c2.p)
			if !ok {
				return
			}
			const eps = 1e-9
			if a < eps || a > 1-eps || b < eps || b > 1-eps {
				degenerate = true
				return
			}
			p := s1.p.Lerp(s2.p, a)
			ns := &ghNode{p: p, intersect: true, alpha: a}
			nc := &ghNode{p: p, intersect: true, alpha: b}
			ns.neighbor = nc
			nc.neighbor = ns
			insertBetween(ns, s1, s2)
			insertBetween(nc, c1, c2)
			nIntersections++
		})
	})
	if degenerate {
		return nil, false
	}

	if nIntersections == 0 {
		return noIntersectionResult(subject, clip, op), true
	}
	if nIntersections%2 != 0 {
		// Numerically inconsistent crossing count; retry perturbed.
		return nil, false
	}

	// Phase 2: entry/exit marking.
	clipReg := RegionFromRing(clip)
	subjReg := RegionFromRing(subject)
	sEntry := !clipReg.Contains(firstNonIntersect(sList).p)
	cEntry := !subjReg.Contains(firstNonIntersect(cList).p)
	switch op {
	case OpUnion:
		sEntry = !sEntry
		cEntry = !cEntry
	case OpSubtract:
		// For A ∖ B the traversal follows A's boundary where it is
		// OUTSIDE B, so the subject's entry parity flips (the clip is
		// walked backward along its inside-A arcs via the unchanged
		// clip marks).
		sEntry = !sEntry
	}
	markEntries(sList, sEntry)
	markEntries(cList, cEntry)

	// Phase 3: trace result rings.
	var rings []Ring
	for {
		start := unprocessedIntersection(sList)
		if start == nil {
			break
		}
		var ring Ring
		cur := start
		for {
			cur.processed = true
			if cur.neighbor != nil {
				cur.neighbor.processed = true
			}
			if cur.entry {
				for {
					cur = cur.next
					ring = append(ring, cur.p)
					if cur.intersect {
						break
					}
				}
			} else {
				for {
					cur = cur.prev
					ring = append(ring, cur.p)
					if cur.intersect {
						break
					}
				}
			}
			cur = cur.neighbor
			if cur == nil || cur.processed && cur != start {
				break
			}
			if cur == start || cur.neighbor == start {
				break
			}
			if len(ring) > 4*(len(subject)+len(clip)+nIntersections) {
				return nil, false // runaway trace: inconsistent marking
			}
		}
		ring = dedupeRing(ring)
		if len(ring) >= 3 && ring.Area() > 1e-12 {
			rings = append(rings, ring)
		}
	}
	if op == OpSubtract && len(rings) == 0 {
		// Subject possibly entirely inside clip.
		if clipReg.Contains(subject[0]) {
			return EmptyRegion(), true
		}
	}
	return NewRegion(rings...), true
}

// segIntersectFull returns parametric intersection of segments including
// endpoint hits (ok=false only for parallel/no-hit).
func segIntersectFull(p1, p2, q1, q2 Vec2) (s, t float64, ok bool) {
	d1 := p2.Sub(p1)
	d2 := q2.Sub(q1)
	den := d1.Cross(d2)
	if math.Abs(den) < 1e-14 {
		return 0, 0, false
	}
	w := q1.Sub(p1)
	s = w.Cross(d2) / den
	t = w.Cross(d1) / den
	if s < 0 || s > 1 || t < 0 || t > 1 {
		return s, t, false
	}
	return s, t, true
}

func forEachEdge(list *ghNode, fn func(a, b *ghNode)) {
	// Iterate over original (non-intersection) vertices only; edges run
	// between consecutive originals.
	var originals []*ghNode
	n := list
	for {
		if !n.intersect {
			originals = append(originals, n)
		}
		n = n.next
		if n == list {
			break
		}
	}
	for i, a := range originals {
		b := originals[(i+1)%len(originals)]
		fn(a, b)
	}
}

func firstNonIntersect(list *ghNode) *ghNode {
	n := list
	for n.intersect {
		n = n.next
		if n == list {
			return list
		}
	}
	return n
}

func markEntries(list *ghNode, entry bool) {
	n := list
	for {
		if n.intersect {
			n.entry = entry
			entry = !entry
		}
		n = n.next
		if n == list {
			break
		}
	}
}

func unprocessedIntersection(list *ghNode) *ghNode {
	n := list
	for {
		if n.intersect && !n.processed {
			return n
		}
		n = n.next
		if n == list {
			return nil
		}
	}
}

// dedupeRing removes consecutive (near-)duplicate vertices.
func dedupeRing(r Ring) Ring {
	if len(r) < 2 {
		return r
	}
	out := r[:0:0]
	for _, p := range r {
		if len(out) == 0 || out[len(out)-1].Dist(p) > 1e-9 {
			out = append(out, p)
		}
	}
	for len(out) > 1 && out[0].Dist(out[len(out)-1]) <= 1e-9 {
		out = out[:len(out)-1]
	}
	return out
}

// noIntersectionResult handles the disjoint / nested cases. With no edge
// intersections, either one ring lies entirely inside the other or they are
// disjoint, so testing a *boundary vertex* (never shared territory, unlike an
// interior point) decides which.
func noIntersectionResult(subject, clip Ring, op BoolOp) *Region {
	subjReg := RegionFromRing(subject)
	clipReg := RegionFromRing(clip)
	sInC := clipReg.Contains(subject[0])
	cInS := subjReg.Contains(clip[0])
	switch op {
	case OpIntersect:
		if sInC {
			return subjReg
		}
		if cInS {
			return clipReg
		}
		return EmptyRegion()
	case OpUnion:
		if sInC {
			return clipReg
		}
		if cInS {
			return subjReg
		}
		out := subjReg.Clone()
		out.Rings = append(out.Rings, clipReg.Rings...)
		return out
	case OpSubtract:
		if sInC {
			return EmptyRegion()
		}
		if cInS {
			out := subjReg.Clone()
			hole := clipReg.Rings[0].Clone()
			reverseRing(hole)
			out.Rings = append(out.Rings, hole)
			return out
		}
		return subjReg
	}
	return EmptyRegion()
}
