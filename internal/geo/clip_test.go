package geo

import (
	"math"
	"testing"
)

func triangle(a, b, c Vec2) Ring { return Ring{a, b, c} }

func TestClipTrianglesOverlap(t *testing.T) {
	// Two overlapping triangles with a quadrilateral intersection.
	a := triangle(V2(0, 0), V2(10, 0), V2(5, 10))
	b := triangle(V2(0, 6), V2(10, 6), V2(5, -4))
	reg, ok := clipRings(a, b, OpIntersect)
	if !ok {
		t.Fatal("clip failed")
	}
	if reg.IsEmpty() {
		t.Fatal("intersection should be non-empty")
	}
	// Intersection area bounded by both inputs.
	if reg.Area() > a.Area() || reg.Area() > b.Area() {
		t.Errorf("intersection area %v exceeds inputs (%v, %v)", reg.Area(), a.Area(), b.Area())
	}
	// The centroid region of overlap contains (5, 3).
	if !reg.Contains(V2(5, 3)) {
		t.Error("overlap centre missing")
	}
	if reg.Contains(V2(5, 9)) {
		t.Error("apex of a outside b should be excluded")
	}
}

func TestClipSharedVertexPerturbation(t *testing.T) {
	// Squares sharing a corner exactly: a degenerate configuration that
	// must survive via perturbation (or fall back) rather than crash.
	a := square(0, 0, 5)
	b := square(10, 10, 5) // corner (5,5) touches
	reg := Intersect(RegionFromRing(a), RegionFromRing(b), &BoolOpts{Engine: EngineClip})
	// Touching squares intersect in (numerically) nothing.
	if reg.Area() > 1 {
		t.Errorf("corner-touching squares should have ≈0 intersection, got %v", reg.Area())
	}
}

func TestClipIdenticalRings(t *testing.T) {
	a := Disk(V2(0, 0), 10, 64)
	got := Intersect(a, a.Clone(), nil)
	if math.Abs(got.Area()-a.Area()) > a.Area()*0.05 {
		t.Errorf("self-intersection area %v, want %v", got.Area(), a.Area())
	}
	u := Union(a, a.Clone(), nil)
	if math.Abs(u.Area()-a.Area()) > a.Area()*0.05 {
		t.Errorf("self-union area %v, want %v", u.Area(), a.Area())
	}
	d := Subtract(a, a.Clone(), nil)
	if d.Area() > a.Area()*0.05 {
		t.Errorf("self-difference area %v, want ≈0", d.Area())
	}
}

func TestClipCrossShapes(t *testing.T) {
	// A plus-sign overlap: horizontal bar ∩ vertical bar = centre square.
	h := Rect(V2(-10, -2), V2(10, 2))
	v := Rect(V2(-2, -10), V2(2, 10))
	got := Intersect(h, v, &BoolOpts{Engine: EngineClip}).Area()
	if math.Abs(got-16) > 1 {
		t.Errorf("cross intersection = %v, want 16", got)
	}
	// Union = 2 bars − overlap.
	u := Union(h, v, &BoolOpts{Engine: EngineClip}).Area()
	want := h.Area() + v.Area() - 16
	if math.Abs(u-want) > 2 {
		t.Errorf("cross union = %v, want %v", u, want)
	}
	// Subtraction leaves two stubs of the horizontal bar.
	s := Subtract(h, v, &BoolOpts{Engine: EngineClip})
	if math.Abs(s.Area()-(h.Area()-16)) > 2 {
		t.Errorf("cross difference = %v, want %v", s.Area(), h.Area()-16)
	}
	if len(s.Rings) != 2 {
		t.Errorf("difference should split into 2 rings, got %d", len(s.Rings))
	}
}

func TestClipSubtractBites(t *testing.T) {
	// Subtracting an overlapping disk bites a chunk out of the square.
	sq := RegionFromRing(square(0, 0, 10))
	bite := Disk(V2(10, 0), 6, 64)
	got := Subtract(sq, bite, nil)
	// Half the disk overlaps the square.
	want := sq.Area() - math.Pi*36/2
	if math.Abs(got.Area()-want) > want*0.05 {
		t.Errorf("bitten area %v, want ≈ %v", got.Area(), want)
	}
	if got.Contains(V2(9, 0)) {
		t.Error("bitten zone should be excluded")
	}
	if !got.Contains(V2(-9, 0)) {
		t.Error("far side should remain")
	}
}

func TestClipCWInputNormalized(t *testing.T) {
	// clipRings must handle CW input rings by normalizing them.
	a := square(0, 0, 5)
	reverseRing(a)
	b := square(3, 0, 5)
	reg, ok := clipRings(a, b, OpIntersect)
	if !ok || reg.IsEmpty() {
		t.Fatalf("CW input clip failed: %v %v", reg, ok)
	}
	want := 7.0 * 10.0 // overlap is 7 wide, 10 tall
	if math.Abs(reg.Area()-want) > 1 {
		t.Errorf("area %v, want %v", reg.Area(), want)
	}
}
