package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name   string
		a, b   Point
		wantKm float64
		tolKm  float64
	}{
		{"NYC-LA", Pt(40.7128, -74.0060), Pt(34.0522, -118.2437), 3936, 30},
		{"London-Paris", Pt(51.5074, -0.1278), Pt(48.8566, 2.3522), 344, 5},
		{"same-point", Pt(42.44, -76.50), Pt(42.44, -76.50), 0, 1e-9},
		{"antipodal-ish", Pt(0, 0), Pt(0, 180), math.Pi * EarthRadiusKm, 1},
		{"pole-to-pole", Pt(90, 0), Pt(-90, 0), math.Pi * EarthRadiusKm, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.a.DistanceKm(c.b)
			if !almostEq(got, c.wantKm, c.tolKm) {
				t.Errorf("DistanceKm(%v, %v) = %.2f, want %.2f ± %.2f", c.a, c.b, got, c.wantKm, c.tolKm)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Pt(math.Mod(lat1, 90), math.Mod(lon1, 180))
		b := Pt(math.Mod(lat2, 90), math.Mod(lon2, 180))
		return almostEq(a.DistanceKm(b), b.DistanceKm(a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Pt(math.Mod(lat1, 90), math.Mod(lon1, 180))
		b := Pt(math.Mod(lat2, 90), math.Mod(lon2, 180))
		c := Pt(math.Mod(lat3, 90), math.Mod(lon3, 180))
		return a.DistanceKm(b)+b.DistanceKm(c) >= a.DistanceKm(c)-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(lat, lon, bearing, dist float64) bool {
		p := Pt(math.Mod(lat, 80), math.Mod(lon, 180)) // avoid poles
		d := math.Mod(math.Abs(dist), 5000) + 1
		b := math.Mod(math.Abs(bearing), 2*math.Pi)
		q := p.Destination(b, d)
		return almostEq(p.DistanceKm(q), d, d*1e-6+1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationBearingConsistency(t *testing.T) {
	p := Pt(42.44, -76.50) // Ithaca
	for _, d := range []float64{10, 100, 1000, 3000} {
		for _, b := range []float64{0, math.Pi / 4, math.Pi / 2, math.Pi, 3 * math.Pi / 2} {
			q := p.Destination(b, d)
			back := p.BearingTo(q)
			diff := math.Abs(back - b)
			if diff > math.Pi {
				diff = 2*math.Pi - diff
			}
			if diff > 1e-6 {
				t.Errorf("Destination bearing %.3f dist %.0f: BearingTo gives %.6f (diff %.2e)", b, d, back, diff)
			}
		}
	}
}

func TestMidpoint(t *testing.T) {
	a := Pt(40.7128, -74.0060)
	b := Pt(34.0522, -118.2437)
	m := a.Midpoint(b)
	da := a.DistanceKm(m)
	db := b.DistanceKm(m)
	if !almostEq(da, db, 1e-6) {
		t.Errorf("midpoint not equidistant: %.6f vs %.6f", da, db)
	}
	if !almostEq(da+db, a.DistanceKm(b), 1e-6) {
		t.Errorf("midpoint not on great circle")
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(10, 10), Pt(10, 20), Pt(20, 10), Pt(20, 20)}
	c := Centroid(pts)
	if !almostEq(c.Lat, 15.05, 0.2) || !almostEq(c.Lon, 15, 0.2) {
		t.Errorf("Centroid = %v, want ≈ (15, 15)", c)
	}
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v, want zero", got)
	}
	one := Centroid([]Point{Pt(42, -76)})
	if !almostEq(one.Lat, 42, 1e-9) || !almostEq(one.Lon, -76, 1e-9) {
		t.Errorf("Centroid single = %v", one)
	}
}

func TestLatencyDistanceConversion(t *testing.T) {
	// 10 ms RTT → 5 ms one-way → ~999 km at 2/3 c.
	d := LatencyToMaxDistanceKm(10)
	if !almostEq(d, 5*FiberSpeedKmPerMs, 1e-9) {
		t.Errorf("LatencyToMaxDistanceKm(10) = %.3f", d)
	}
	// Round-trips are inverse.
	for _, km := range []float64{0, 10, 500, 4000} {
		if got := LatencyToMaxDistanceKm(DistanceToMinLatencyMs(km)); !almostEq(got, km, 1e-9) {
			t.Errorf("inverse mismatch at %.0f km: %.6f", km, got)
		}
	}
	if LatencyToMaxDistanceKm(-5) != 0 {
		t.Error("negative latency should clamp to 0 distance")
	}
	if DistanceToMinLatencyMs(-5) != 0 {
		t.Error("negative distance should clamp to 0 latency")
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{Pt(0, 0), Pt(90, 180), Pt(-90, -180), Pt(42.44, -76.5)}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{Pt(91, 0), Pt(0, 181), Pt(math.NaN(), 0), Pt(-90.01, 0)}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestNormalizeLon(t *testing.T) {
	cases := map[float64]float64{190: -170, -190: 170, 360: 0, 180: 180, -180: 180, 0: 0}
	for in, want := range cases {
		if got := normalizeLonDeg(in); !almostEq(got, want, 1e-9) {
			t.Errorf("normalizeLonDeg(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(Pt(40, -95)) // central US
	pts := []Point{
		Pt(40, -95), Pt(42.44, -76.5), Pt(34.05, -118.24),
		Pt(47.6, -122.3), Pt(25.76, -80.19), Pt(51.5, -0.12),
	}
	for _, p := range pts {
		v := pr.Forward(p)
		q := pr.Inverse(v)
		if d := p.DistanceKm(q); d > 1e-6 {
			t.Errorf("round trip %v → %v → %v (err %.3g km)", p, v, q, d)
		}
	}
}

func TestProjectionPreservesCentralDistances(t *testing.T) {
	pr := NewProjection(Pt(40, -95))
	f := func(lat, lon float64) bool {
		p := Pt(math.Mod(math.Abs(lat), 60), -60-math.Mod(math.Abs(lon), 60))
		v := pr.Forward(p)
		// Azimuthal equidistant: distance from centre is exact.
		return almostEq(v.Len(), pr.Center.DistanceKm(p), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoCircle(t *testing.T) {
	pr := NewProjection(Pt(40, -95))
	center := Pt(42.44, -76.5)
	const r = 250.0
	ring := Ring(pr.GeoCircle(center, r, 72))
	if !ring.IsCCW() {
		t.Error("GeoCircle ring should be CCW")
	}
	// Every vertex should be at geodesic distance r from center.
	for i, v := range ring {
		p := pr.Inverse(v)
		if d := center.DistanceKm(p); !almostEq(d, r, r*1e-6) {
			t.Fatalf("vertex %d at distance %.4f, want %.1f", i, d, r)
		}
	}
	// Area should approximate πr².
	if a := ring.Area(); !almostEq(a, math.Pi*r*r, math.Pi*r*r*0.02) {
		t.Errorf("circle area %.1f, want ≈ %.1f", a, math.Pi*r*r)
	}
}
