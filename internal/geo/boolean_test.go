package geo

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// lensArea is the exact area of the intersection of two circles of radius r
// whose centres are d apart.
func lensArea(r, d float64) float64 {
	if d >= 2*r {
		return 0
	}
	if d <= 0 {
		return math.Pi * r * r
	}
	return 2*r*r*math.Acos(d/(2*r)) - d/2*math.Sqrt(4*r*r-d*d)
}

func TestIntersectDisksExactArea(t *testing.T) {
	for _, engine := range []Engine{EngineClip, EngineRaster} {
		a := Disk(V2(0, 0), 10, 256)
		b := Disk(V2(12, 0), 10, 256)
		got := Intersect(a, b, &BoolOpts{Engine: engine, CellKm: 0.08}).Area()
		want := lensArea(10, 12)
		if math.Abs(got-want) > want*0.03 {
			t.Errorf("engine %v: lens area = %.3f, want %.3f", engine, got, want)
		}
	}
}

func TestUnionDisksExactArea(t *testing.T) {
	for _, engine := range []Engine{EngineClip, EngineRaster} {
		a := Disk(V2(0, 0), 10, 256)
		b := Disk(V2(12, 0), 10, 256)
		got := Union(a, b, &BoolOpts{Engine: engine, CellKm: 0.08}).Area()
		want := 2*math.Pi*100 - lensArea(10, 12)
		if math.Abs(got-want) > want*0.03 {
			t.Errorf("engine %v: union area = %.3f, want %.3f", engine, got, want)
		}
	}
}

func TestSubtractDisks(t *testing.T) {
	for _, engine := range []Engine{EngineClip, EngineRaster} {
		a := Disk(V2(0, 0), 10, 256)
		b := Disk(V2(12, 0), 10, 256)
		got := Subtract(a, b, &BoolOpts{Engine: engine, CellKm: 0.08}).Area()
		want := math.Pi*100 - lensArea(10, 12)
		if math.Abs(got-want) > want*0.03 {
			t.Errorf("engine %v: difference area = %.3f, want %.3f", engine, got, want)
		}
	}
}

func TestBooleanDisjointAndNested(t *testing.T) {
	big := Disk(V2(0, 0), 20, 128)
	small := Disk(V2(0, 0), 5, 128)
	far := Disk(V2(100, 0), 5, 128)

	if got := Intersect(big, far, nil); !got.IsEmpty() {
		t.Errorf("disjoint intersect should be empty, got area %v", got.Area())
	}
	if got := Intersect(big, small, nil).Area(); math.Abs(got-small.Area()) > small.Area()*0.01 {
		t.Errorf("nested intersect = %v, want inner area %v", got, small.Area())
	}
	if got := Union(big, small, nil).Area(); math.Abs(got-big.Area()) > big.Area()*0.01 {
		t.Errorf("nested union = %v, want outer area %v", got, big.Area())
	}
	u := Union(big, far, nil)
	wantU := big.Area() + far.Area()
	if math.Abs(u.Area()-wantU) > wantU*0.01 {
		t.Errorf("disjoint union area = %v, want %v", u.Area(), wantU)
	}
	if len(u.Rings) != 2 {
		t.Errorf("disjoint union should have 2 rings, got %d", len(u.Rings))
	}
	// big \ small = annulus with a hole.
	diff := Subtract(big, small, nil)
	wantD := big.Area() - small.Area()
	if math.Abs(diff.Area()-wantD) > wantD*0.01 {
		t.Errorf("nested subtract area = %v, want %v", diff.Area(), wantD)
	}
	if diff.Contains(V2(0, 0)) {
		t.Error("hole centre should be excluded after subtraction")
	}
	if !diff.Contains(V2(10, 0)) {
		t.Error("annulus interior should be included")
	}
	// small \ big = empty.
	if got := Subtract(small, big, nil); !got.IsEmpty() {
		t.Errorf("inner minus outer should be empty, got %v", got.Area())
	}
}

func TestBooleanWithEmpty(t *testing.T) {
	d := Disk(V2(0, 0), 10, 64)
	e := EmptyRegion()
	if !Intersect(d, e, nil).IsEmpty() || !Intersect(e, d, nil).IsEmpty() {
		t.Error("intersect with empty should be empty")
	}
	if got := Union(d, e, nil).Area(); math.Abs(got-d.Area()) > 1e-9 {
		t.Error("union with empty should be identity")
	}
	if got := Subtract(d, e, nil).Area(); math.Abs(got-d.Area()) > 1e-9 {
		t.Error("subtract empty should be identity")
	}
	if !Subtract(e, d, nil).IsEmpty() {
		t.Error("empty minus anything should be empty")
	}
}

// Property test: the two boolean engines agree on intersection area for
// random disk pairs. This cross-validates Greiner–Hormann against the
// raster tracer.
func TestEnginesAgreeOnRandomDisks(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		r1 := 5 + 15*rng.Float64()
		r2 := 5 + 15*rng.Float64()
		d := 30 * rng.Float64()
		a := Disk(V2(0, 0), r1, 128)
		b := Disk(V2(d, 0), r2, 128)
		clipA := Intersect(a, b, &BoolOpts{Engine: EngineClip}).Area()
		rastA := Intersect(a, b, &BoolOpts{Engine: EngineRaster, CellKm: 0.15}).Area()
		tol := 0.05*math.Max(clipA, rastA) + 3.0
		return math.Abs(clipA-rastA) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is commutative and monotone (area ≤ both inputs).
func TestIntersectionProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		a := Disk(V2(rng.Float64()*20, rng.Float64()*20), 5+10*rng.Float64(), 96)
		b := Disk(V2(rng.Float64()*20, rng.Float64()*20), 5+10*rng.Float64(), 96)
		ab := Intersect(a, b, nil).Area()
		ba := Intersect(b, a, nil).Area()
		tol := 0.03*math.Max(ab, ba) + 2
		if math.Abs(ab-ba) > tol {
			return false
		}
		return ab <= a.Area()+tol && ab <= b.Area()+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: union area = A + B − intersection (inclusion–exclusion).
func TestInclusionExclusion(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		a := Disk(V2(0, 0), 8+8*rng.Float64(), 128)
		b := Disk(V2(20*rng.Float64(), 10*rng.Float64()), 8+8*rng.Float64(), 128)
		opts := &BoolOpts{Engine: EngineClip}
		u := Union(a, b, opts).Area()
		i := Intersect(a, b, opts).Area()
		want := a.Area() + b.Area() - i
		return math.Abs(u-want) <= 0.02*want+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIntersectAllShortCircuits(t *testing.T) {
	regs := []*Region{
		Disk(V2(0, 0), 10, 64),
		Disk(V2(5, 0), 10, 64),
		Disk(V2(100, 0), 2, 64), // disjoint: forces empty
		Disk(V2(0, 0), 1, 64),
	}
	if got := IntersectAll(regs, nil); !got.IsEmpty() {
		t.Errorf("expected empty intersection, got %v", got.Area())
	}
	two := IntersectAll(regs[:2], nil)
	want := lensArea(10, 5)
	if math.Abs(two.Area()-want) > want*0.05 {
		t.Errorf("2-way intersection area %v, want %v", two.Area(), want)
	}
	if !IntersectAll(nil, nil).IsEmpty() {
		t.Error("IntersectAll(nil) should be empty")
	}
}

func TestUnionAll(t *testing.T) {
	regs := []*Region{
		Disk(V2(0, 0), 5, 64),
		Disk(V2(20, 0), 5, 64),
		Disk(V2(40, 0), 5, 64),
	}
	u := UnionAll(regs, nil)
	want := 3 * math.Pi * 25
	if math.Abs(u.Area()-want) > want*0.03 {
		t.Errorf("UnionAll area %v, want %v", u.Area(), want)
	}
	if len(u.Rings) != 3 {
		t.Errorf("expected 3 disjoint rings, got %d", len(u.Rings))
	}
	if !UnionAll(nil, nil).IsEmpty() {
		t.Error("UnionAll(nil) should be empty")
	}
}

func TestBufferDilateErode(t *testing.T) {
	d := Disk(V2(0, 0), 10, 128)
	grown := Buffer(d, 5, 0.2)
	wantG := math.Pi * 15 * 15
	if math.Abs(grown.Area()-wantG) > wantG*0.05 {
		t.Errorf("dilated area %v, want ≈ %v", grown.Area(), wantG)
	}
	shrunk := Buffer(d, -5, 0.2)
	wantS := math.Pi * 5 * 5
	if math.Abs(shrunk.Area()-wantS) > wantS*0.10 {
		t.Errorf("eroded area %v, want ≈ %v", shrunk.Area(), wantS)
	}
	// Eroding past the radius empties the region.
	if got := Buffer(d, -11, 0.2); !got.IsEmpty() {
		t.Errorf("over-erosion should be empty, got %v", got.Area())
	}
	// Buffer(0) is identity.
	if got := Buffer(d, 0, 0); math.Abs(got.Area()-d.Area()) > 1e-9 {
		t.Error("Buffer(0) should be identity")
	}
	if !Buffer(EmptyRegion(), 5, 0).IsEmpty() {
		t.Error("buffering empty should stay empty")
	}
}

func TestBufferDilationContainsOriginal(t *testing.T) {
	d := Disk(V2(3, -2), 8, 96)
	grown := Buffer(d, 3, 0.2)
	for _, p := range d.SamplePoints(60) {
		if !grown.Contains(p) {
			t.Errorf("dilation lost original point %v", p)
		}
	}
	shrunk := Buffer(d, -3, 0.2)
	for _, p := range shrunk.SamplePoints(60) {
		if !d.Contains(p) {
			t.Errorf("erosion produced point outside original: %v", p)
		}
	}
}
