package geo

import (
	"encoding/json"
	"fmt"
)

// GeoJSON export: regions live in a projection plane, so export needs the
// projection to map ring vertices back to (lon, lat). Output is a standard
// Feature with a MultiPolygon geometry, ready for geojson.io or any GIS
// tool — the practical way to inspect an Octant estimated location region.

type geoJSONGeometry struct {
	Type        string          `json:"type"`
	Coordinates [][][][]float64 `json:"coordinates"`
}

type geoJSONFeature struct {
	Type       string          `json:"type"`
	Properties map[string]any  `json:"properties"`
	Geometry   geoJSONGeometry `json:"geometry"`
}

// ToGeoJSON serializes the region as a GeoJSON Feature (MultiPolygon) using
// the given projection to recover geographic coordinates. properties may be
// nil. Rings are grouped into polygons by assigning each hole (CW ring) to
// the smallest outer ring that contains it.
func (r *Region) ToGeoJSON(pr *Projection, properties map[string]any) ([]byte, error) {
	if pr == nil {
		return nil, fmt.Errorf("geo: ToGeoJSON requires a projection")
	}
	if properties == nil {
		properties = map[string]any{}
	}
	type polyGroup struct {
		outer Ring
		holes []Ring
	}
	var outers []*polyGroup
	var holes []Ring
	if r != nil {
		for _, ring := range r.Rings {
			if len(ring) < 3 {
				continue
			}
			if ring.IsCCW() {
				outers = append(outers, &polyGroup{outer: ring})
			} else {
				holes = append(holes, ring)
			}
		}
	}
	for _, h := range holes {
		p := ringInteriorPoint(h)
		var best *polyGroup
		bestArea := 0.0
		for _, g := range outers {
			if g.outer.Contains(p) {
				a := g.outer.Area()
				if best == nil || a < bestArea {
					best, bestArea = g, a
				}
			}
		}
		if best != nil {
			best.holes = append(best.holes, h)
		}
	}
	coords := make([][][][]float64, 0, len(outers))
	ringCoords := func(ring Ring) [][]float64 {
		out := make([][]float64, 0, len(ring)+1)
		for _, v := range ring {
			p := pr.Inverse(v)
			out = append(out, []float64{round6(p.Lon), round6(p.Lat)})
		}
		if len(out) > 0 {
			out = append(out, out[0]) // GeoJSON rings are explicitly closed
		}
		return out
	}
	for _, g := range outers {
		poly := [][][]float64{ringCoords(g.outer)}
		for _, h := range g.holes {
			poly = append(poly, ringCoords(h))
		}
		coords = append(coords, poly)
	}
	f := geoJSONFeature{
		Type:       "Feature",
		Properties: properties,
		Geometry:   geoJSONGeometry{Type: "MultiPolygon", Coordinates: coords},
	}
	return json.MarshalIndent(f, "", "  ")
}

func round6(v float64) float64 {
	const s = 1e6
	if v >= 0 {
		return float64(int64(v*s+0.5)) / s
	}
	return float64(int64(v*s-0.5)) / s
}
