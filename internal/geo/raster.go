package geo

import (
	"math"
	"sort"
)

// Grid is a uniform weight-accumulation grid over a rectangle of the
// projection plane. It is the robust geometry engine behind Octant's
// weighted constraint solver (§2.4): constraint regions add (or mask)
// weight, and a level set of the accumulated weight field is extracted back
// into a Region by boundary tracing.
type Grid struct {
	Min    Vec2      // lower-left corner of cell (0,0)
	CellKm float64   // cell edge length
	W, H   int       // cells in x and y
	Weight []float64 // W*H weights, row-major (y*W + x)
}

// NewGrid creates a grid covering [min, max] with the given cell size.
// The extent is expanded to a whole number of cells.
func NewGrid(min, max Vec2, cellKm float64) *Grid {
	if cellKm <= 0 {
		cellKm = 1
	}
	w := int(math.Ceil((max.X - min.X) / cellKm))
	h := int(math.Ceil((max.Y - min.Y) / cellKm))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	const maxCells = 1 << 22 // 4M cells hard cap
	for w*h > maxCells {
		cellKm *= 2
		w = int(math.Ceil((max.X - min.X) / cellKm))
		h = int(math.Ceil((max.Y - min.Y) / cellKm))
		if w < 1 {
			w = 1
		}
		if h < 1 {
			h = 1
		}
	}
	return &Grid{Min: min, CellKm: cellKm, W: w, H: h, Weight: make([]float64, w*h)}
}

// CellCenter returns the plane coordinate of the centre of cell (x, y).
func (g *Grid) CellCenter(x, y int) Vec2 {
	return Vec2{
		X: g.Min.X + (float64(x)+0.5)*g.CellKm,
		Y: g.Min.Y + (float64(y)+0.5)*g.CellKm,
	}
}

// CellAt returns the cell indices containing plane point p (may be out of
// range; callers check).
func (g *Grid) CellAt(p Vec2) (int, int) {
	return int(math.Floor((p.X - g.Min.X) / g.CellKm)),
		int(math.Floor((p.Y - g.Min.Y) / g.CellKm))
}

// crossing is an x-coordinate where a ring edge crosses a scanline, with the
// winding direction of the edge.
type crossing struct {
	x   float64
	dir int
}

// scanRow collects winding crossings of all rings of r with the horizontal
// line y=yc, appending to buf, and returns the result sorted by x.
func scanRow(r *Region, yc float64, buf []crossing) []crossing {
	buf = buf[:0]
	for _, ring := range r.Rings {
		n := len(ring)
		for i := 0; i < n; i++ {
			a := ring[i]
			b := ring[(i+1)%n]
			if a.Y == b.Y {
				continue
			}
			dir := 0
			if a.Y <= yc && b.Y > yc {
				dir = 1
			} else if a.Y > yc && b.Y <= yc {
				dir = -1
			} else {
				continue
			}
			t := (yc - a.Y) / (b.Y - a.Y)
			buf = append(buf, crossing{x: a.X + t*(b.X-a.X), dir: dir})
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].x < buf[j].x })
	return buf
}

// rowSpans invokes fn(x0, x1) for every maximal run of cells in row y whose
// centres are inside region r (non-zero winding).
func (g *Grid) rowSpans(r *Region, y int, buf []crossing, fn func(x0, x1 int)) []crossing {
	yc := g.Min.Y + (float64(y)+0.5)*g.CellKm
	buf = scanRow(r, yc, buf)
	if len(buf) == 0 {
		return buf
	}
	wind := 0
	for i := 0; i < len(buf); i++ {
		prev := wind
		wind += buf[i].dir
		if prev == 0 && wind != 0 {
			// span opens at buf[i].x
			continue
		}
		if prev != 0 && wind == 0 {
			// span closes: from the x where it opened to here
			openX := buf[spanOpenIndex(buf, i)].x
			x0 := int(math.Ceil((openX-g.Min.X)/g.CellKm - 0.5))
			x1 := int(math.Floor((buf[i].x-g.Min.X)/g.CellKm - 0.5))
			if x0 < 0 {
				x0 = 0
			}
			if x1 >= g.W {
				x1 = g.W - 1
			}
			if x0 <= x1 {
				fn(x0, x1)
			}
		}
	}
	return buf
}

// spanOpenIndex walks backwards from close index i to find where the winding
// became non-zero.
func spanOpenIndex(buf []crossing, i int) int {
	wind := 0
	open := 0
	for j := 0; j <= i; j++ {
		prev := wind
		wind += buf[j].dir
		if prev == 0 && wind != 0 {
			open = j
		}
	}
	return open
}

// AddRegion adds weight w to every cell whose centre lies inside r.
func (g *Grid) AddRegion(r *Region, w float64) {
	if r == nil || len(r.Rings) == 0 {
		return
	}
	min, max, ok := r.BoundingBox()
	if !ok {
		return
	}
	y0 := int(math.Floor((min.Y - g.Min.Y) / g.CellKm))
	y1 := int(math.Ceil((max.Y - g.Min.Y) / g.CellKm))
	if y0 < 0 {
		y0 = 0
	}
	if y1 > g.H-1 {
		y1 = g.H - 1
	}
	var buf []crossing
	for y := y0; y <= y1; y++ {
		row := y * g.W
		buf = g.rowSpans(r, y, buf, func(x0, x1 int) {
			for x := x0; x <= x1; x++ {
				g.Weight[row+x] += w
			}
		})
	}
}

// MaskRegion forces the weight of every cell inside r to the given value
// (used for hard negative constraints: cells ruled out entirely).
func (g *Grid) MaskRegion(r *Region, value float64) {
	if r == nil || len(r.Rings) == 0 {
		return
	}
	min, max, ok := r.BoundingBox()
	if !ok {
		return
	}
	y0 := int(math.Floor((min.Y - g.Min.Y) / g.CellKm))
	y1 := int(math.Ceil((max.Y - g.Min.Y) / g.CellKm))
	if y0 < 0 {
		y0 = 0
	}
	if y1 > g.H-1 {
		y1 = g.H - 1
	}
	var buf []crossing
	for y := y0; y <= y1; y++ {
		row := y * g.W
		buf = g.rowSpans(r, y, buf, func(x0, x1 int) {
			for x := x0; x <= x1; x++ {
				g.Weight[row+x] = value
			}
		})
	}
}

// MaxWeight returns the maximum cell weight (0 for an empty grid).
func (g *Grid) MaxWeight() float64 {
	var m float64
	first := true
	for _, w := range g.Weight {
		if first || w > m {
			m, first = w, false
		}
	}
	return m
}

// WeightLevels returns the distinct weight values present, descending.
func (g *Grid) WeightLevels() []float64 {
	seen := make(map[float64]struct{})
	for _, w := range g.Weight {
		seen[quantizeWeight(w)] = struct{}{}
	}
	out := make([]float64, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// quantizeWeight collapses floating-point dust so that equal-weight cells
// compare equal.
func quantizeWeight(w float64) float64 {
	return math.Round(w*1e9) / 1e9
}

// Threshold extracts the region of all cells with weight ≥ level, tracing
// the cell boundary into properly oriented rings (outer CCW, holes CW).
func (g *Grid) Threshold(level float64) *Region {
	inside := make([]bool, len(g.Weight))
	any := false
	for i, w := range g.Weight {
		if w >= level {
			inside[i] = true
			any = true
		}
	}
	if !any {
		return EmptyRegion()
	}
	return g.traceBoundary(inside)
}

// CellArea returns the area of one cell in km².
func (g *Grid) CellArea() float64 { return g.CellKm * g.CellKm }

// AreaAtOrAbove returns the total area of cells with weight ≥ level.
func (g *Grid) AreaAtOrAbove(level float64) float64 {
	n := 0
	for _, w := range g.Weight {
		if w >= level {
			n++
		}
	}
	return float64(n) * g.CellArea()
}

// vkey is an integer grid-vertex coordinate in [0..W]x[0..H].
type vkey struct{ x, y int32 }

// traceBoundary converts a binary cell mask into a Region. Directed
// boundary edges are emitted with the inside on the left, then linked into
// loops, producing CCW outer rings and CW holes without post-processing.
func (g *Grid) traceBoundary(inside []bool) *Region {
	// Directed edges keyed by start vertex.
	edges := make(map[vkey][]vkey)
	add := func(x0, y0, x1, y1 int) {
		k := vkey{int32(x0), int32(y0)}
		edges[k] = append(edges[k], vkey{int32(x1), int32(y1)})
	}
	in := func(x, y int) bool {
		if x < 0 || y < 0 || x >= g.W || y >= g.H {
			return false
		}
		return inside[y*g.W+x]
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if !in(x, y) {
				continue
			}
			if !in(x, y-1) { // bottom edge, rightward
				add(x, y, x+1, y)
			}
			if !in(x, y+1) { // top edge, leftward
				add(x+1, y+1, x, y+1)
			}
			if !in(x-1, y) { // left edge, downward
				add(x, y+1, x, y)
			}
			if !in(x+1, y) { // right edge, upward
				add(x+1, y, x+1, y+1)
			}
		}
	}
	var rings []Ring
	for len(edges) > 0 {
		// Start from the smallest keyed vertex so ring order and vertex
		// rotation are deterministic: map iteration order would otherwise
		// vary the float accumulation order of Area/centroid sums between
		// runs, making identical localizations differ in low-order bits.
		start := minVkey(edges)
		var loop []vkey
		cur := start
		prev := vkey{-1 << 30, -1 << 30}
		for {
			nexts := edges[cur]
			if len(nexts) == 0 {
				break // should not happen on a well-formed mask
			}
			var next vkey
			if len(nexts) == 1 {
				next = nexts[0]
				delete(edges, cur)
			} else {
				// Saddle: prefer the sharpest left turn relative to the
				// incoming direction to keep loops from merging.
				next = pickLeftmost(prev, cur, nexts)
				rest := nexts[:0]
				for _, n := range nexts {
					if n != next {
						rest = append(rest, n)
					}
				}
				if len(rest) == 0 {
					delete(edges, cur)
				} else {
					edges[cur] = rest
				}
			}
			loop = append(loop, cur)
			prev = cur
			cur = next
			if cur == start {
				break
			}
		}
		if len(loop) >= 4 {
			ring := make(Ring, 0, len(loop))
			for _, v := range loop {
				ring = append(ring, Vec2{
					X: g.Min.X + float64(v.x)*g.CellKm,
					Y: g.Min.Y + float64(v.y)*g.CellKm,
				})
			}
			ring = collapseCollinear(ring)
			if len(ring) >= 3 {
				rings = append(rings, ring)
			}
		}
	}
	return &Region{Rings: rings}
}

// minVkey returns the smallest start vertex present (row-major order).
func minVkey(edges map[vkey][]vkey) vkey {
	first := true
	var min vkey
	for k := range edges {
		if first || k.y < min.y || (k.y == min.y && k.x < min.x) {
			min, first = k, false
		}
	}
	return min
}

// pickLeftmost chooses, among candidate next vertices from cur, the one that
// turns most sharply left relative to the incoming direction prev→cur.
func pickLeftmost(prev, cur vkey, nexts []vkey) vkey {
	inDir := Vec2{float64(cur.x - prev.x), float64(cur.y - prev.y)}
	if prev.x < -1<<29 { // no incoming direction yet
		return nexts[0]
	}
	best := nexts[0]
	bestScore := -math.MaxFloat64
	for _, n := range nexts {
		out := Vec2{float64(n.x - cur.x), float64(n.y - cur.y)}
		// Left turns have positive cross; score by angle turned left.
		score := math.Atan2(inDir.Cross(out), inDir.Dot(out))
		if score > bestScore {
			bestScore = score
			best = n
		}
	}
	return best
}

// collapseCollinear removes interior vertices that lie on a straight line
// between their neighbours (axis-aligned grid output produces long runs).
func collapseCollinear(ring Ring) Ring {
	n := len(ring)
	if n < 3 {
		return ring
	}
	out := make(Ring, 0, n)
	for i := 0; i < n; i++ {
		a := ring[(i+n-1)%n]
		b := ring[i]
		c := ring[(i+1)%n]
		if math.Abs(isLeft(a, c, b)) > 1e-12 {
			out = append(out, b)
		}
	}
	if len(out) < 3 {
		return ring
	}
	return out
}

// RasterizeRegion computes the binary inside-mask of r on grid geometry.
func (g *Grid) RasterizeRegion(r *Region) []bool {
	inside := make([]bool, g.W*g.H)
	if r == nil {
		return inside
	}
	var buf []crossing
	for y := 0; y < g.H; y++ {
		row := y * g.W
		buf = g.rowSpans(r, y, buf, func(x0, x1 int) {
			for x := x0; x <= x1; x++ {
				inside[row+x] = true
			}
		})
	}
	return inside
}

// rasterBool combines two regions with a boolean cell operation on a shared
// grid and traces the result.
func rasterBool(a, b *Region, cellKm float64, op func(x, y bool) bool) *Region {
	min, max, ok := unionBBox(a, b)
	if !ok {
		// One or both empty.
		if op(true, false) { // op keeps a-only cells: result is a (or b by symmetry)
			if a != nil && !a.IsEmpty() {
				return a.Clone()
			}
		}
		if op(false, true) {
			if b != nil && !b.IsEmpty() {
				return b.Clone()
			}
		}
		return EmptyRegion()
	}
	pad := cellKm * 2
	min = Vec2{min.X - pad, min.Y - pad}
	max = Vec2{max.X + pad, max.Y + pad}
	g := NewGrid(min, max, cellKm)
	ma := g.RasterizeRegion(a)
	mb := g.RasterizeRegion(b)
	out := make([]bool, len(ma))
	any := false
	for i := range out {
		if op(ma[i], mb[i]) {
			out[i] = true
			any = true
		}
	}
	if !any {
		return EmptyRegion()
	}
	return g.traceBoundary(out)
}

// unionBBox returns the combined bounding box of two regions.
func unionBBox(a, b *Region) (min, max Vec2, ok bool) {
	amin, amax, aok := a.BoundingBox()
	bmin, bmax, bok := b.BoundingBox()
	switch {
	case aok && bok:
		return Vec2{math.Min(amin.X, bmin.X), math.Min(amin.Y, bmin.Y)},
			Vec2{math.Max(amax.X, bmax.X), math.Max(amax.Y, bmax.Y)}, true
	case aok:
		return amin, amax, true
	case bok:
		return bmin, bmax, true
	}
	return Vec2{}, Vec2{}, false
}
