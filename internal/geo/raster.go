package geo

import (
	"math"
	"sort"
	"sync"
)

// Grid is a uniform weight-accumulation grid over a rectangle of the
// projection plane. It is the robust geometry engine behind Octant's
// weighted constraint solver (§2.4): constraint regions add (or mask)
// weight, and a level set of the accumulated weight field is extracted back
// into a Region by boundary tracing.
//
// Region fills run on the active-edge-table scanline engine (edgetable.go);
// grids above a size threshold fill row-parallel. Weight buffers come from
// a pool — callers that are done with a grid should Release it so the next
// solve reuses the allocation.
type Grid struct {
	Min    Vec2      // lower-left corner of cell (0,0)
	CellKm float64   // cell edge length
	W, H   int       // cells in x and y
	Weight []float64 // W*H weights, row-major (y*W + x)

	// diff is the lazily-created row-difference buffer behind
	// AddRegionBatched, (W+1)*H entries, returned to the pool by FlushAdds
	// or Release.
	diff []float64

	// batchFn is the span callback AddRegionBatched hands to forEachSpan,
	// built once per grid: the solver overlays ~a hundred constraints per
	// grid, and a fresh closure per overlay was a measurable slice of the
	// per-target allocation count. The weight travels through batchW
	// (written before each fill, read-only during it, so the row-parallel
	// fill path stays race-free).
	batchW  float64
	batchFn func(y, x0, x1 int)
}

// weightPool and maskPool recycle the two large per-solve buffers (a 1M-cell
// fine-pass grid is an 8 MB weight buffer). Both store pointers to slices so
// Put does not allocate.
var (
	weightPool sync.Pool // *[]float64
	maskPool   sync.Pool // *[]bool
)

func getWeightBuf(n int) []float64 {
	if v := weightPool.Get(); v != nil {
		buf := *v.(*[]float64)
		if cap(buf) >= n {
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]float64, n)
}

func getMaskBuf(n int) []bool {
	if v := maskPool.Get(); v != nil {
		buf := *v.(*[]bool)
		if cap(buf) >= n {
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]bool, n)
}

func putMaskBuf(buf []bool) {
	if buf != nil {
		maskPool.Put(&buf)
	}
}

// NewGrid creates a grid covering [min, max] with the given cell size.
// The extent is expanded to a whole number of cells.
func NewGrid(min, max Vec2, cellKm float64) *Grid {
	if cellKm <= 0 {
		cellKm = 1
	}
	w := int(math.Ceil((max.X - min.X) / cellKm))
	h := int(math.Ceil((max.Y - min.Y) / cellKm))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	const maxCells = 1 << 22 // 4M cells hard cap
	for w*h > maxCells {
		cellKm *= 2
		w = int(math.Ceil((max.X - min.X) / cellKm))
		h = int(math.Ceil((max.Y - min.Y) / cellKm))
		if w < 1 {
			w = 1
		}
		if h < 1 {
			h = 1
		}
	}
	return &Grid{Min: min, CellKm: cellKm, W: w, H: h, Weight: getWeightBuf(w * h)}
}

// Release returns the grid's weight buffer to the pool. The grid must not
// be used afterwards. Releasing is optional (an unreleased buffer is
// ordinary garbage) and idempotent.
func (g *Grid) Release() {
	if g == nil {
		return
	}
	if g.diff != nil {
		buf := g.diff
		g.diff = nil
		weightPool.Put(&buf)
	}
	if g.Weight == nil {
		return
	}
	buf := g.Weight
	g.Weight = nil
	weightPool.Put(&buf)
}

// CellCenter returns the plane coordinate of the centre of cell (x, y).
func (g *Grid) CellCenter(x, y int) Vec2 {
	return Vec2{
		X: g.Min.X + (float64(x)+0.5)*g.CellKm,
		Y: g.Min.Y + (float64(y)+0.5)*g.CellKm,
	}
}

// CellAt returns the cell indices containing plane point p (may be out of
// range; callers check).
func (g *Grid) CellAt(p Vec2) (int, int) {
	return int(math.Floor((p.X - g.Min.X) / g.CellKm)),
		int(math.Floor((p.Y - g.Min.Y) / g.CellKm))
}

// crossing is an x-coordinate where a ring edge crosses a scanline, with the
// winding direction of the edge.
type crossing struct {
	x   float64
	dir int
}

// scanRow collects winding crossings of all rings of r with the horizontal
// line y=yc, appending to buf, and returns the result sorted by (x, dir).
//
// This is the naive reference rasterizer: it touches every edge of every
// ring for the row, so filling a grid with it is O(rows × edges). The
// production fills go through the edge table (forEachSpan); scanRow is
// retained because the equivalence property test checks the edge table
// cell-for-cell against it.
func scanRow(r *Region, yc float64, buf []crossing) []crossing {
	buf = buf[:0]
	for _, ring := range r.Rings {
		n := len(ring)
		for i := 0; i < n; i++ {
			a := ring[i]
			b := ring[(i+1)%n]
			if a.Y == b.Y {
				continue
			}
			dir := 0
			if a.Y <= yc && b.Y > yc {
				dir = 1
			} else if a.Y > yc && b.Y <= yc {
				dir = -1
			} else {
				continue
			}
			t := (yc - a.Y) / (b.Y - a.Y)
			buf = append(buf, crossing{x: a.X + t*(b.X-a.X), dir: dir})
		}
	}
	sortCrossings(buf)
	return buf
}

// rowSpans invokes fn(x0, x1) for every maximal run of cells in row y whose
// centres are inside region r (non-zero winding), using the naive scanRow.
func (g *Grid) rowSpans(r *Region, y int, buf []crossing, fn func(x0, x1 int)) []crossing {
	yc := g.Min.Y + (float64(y)+0.5)*g.CellKm
	buf = scanRow(r, yc, buf)
	emitSpans(g, buf, y, func(_, x0, x1 int) { fn(x0, x1) })
	return buf
}

// AddRegion adds weight w to every cell whose centre lies inside r.
func (g *Grid) AddRegion(r *Region, w float64) {
	g.forEachSpan(r, func(y, x0, x1 int) {
		row := g.Weight[y*g.W+x0 : y*g.W+x1+1]
		for i := range row {
			row[i] += w
		}
	})
}

// AddRegionBatched records the same weight addition as AddRegion but as
// row-difference updates: two writes per span instead of one per cell.
// The additions take effect only after FlushAdds resolves the buffer with
// one prefix-sum pass — the solver overlays ~a hundred constraint disks,
// most spanning most of the grid, so batching turns its dominant
// cells×constraints write cost into cells+spans.
func (g *Grid) AddRegionBatched(r *Region, w float64) {
	if g.diff == nil {
		g.diff = getWeightBuf((g.W + 1) * g.H)
	}
	if g.batchFn == nil {
		g.batchFn = func(y, x0, x1 int) {
			stride := g.W + 1
			g.diff[y*stride+x0] += g.batchW
			g.diff[y*stride+x1+1] -= g.batchW
		}
	}
	g.batchW = w
	g.forEachSpan(r, g.batchFn)
}

// FlushAdds applies all AddRegionBatched updates to the weight field and
// releases the difference buffer. A no-op when nothing was batched.
func (g *Grid) FlushAdds() {
	if g.diff == nil {
		return
	}
	stride := g.W + 1
	for y := 0; y < g.H; y++ {
		drow := g.diff[y*stride : y*stride+g.W] // last diff entry only ends spans
		wrow := g.Weight[y*g.W : (y+1)*g.W]
		run := 0.0
		for x, d := range drow {
			run += d
			wrow[x] += run
		}
	}
	buf := g.diff
	g.diff = nil
	weightPool.Put(&buf)
}

// MaskRegion forces the weight of every cell inside r to the given value
// (used for hard negative constraints: cells ruled out entirely).
func (g *Grid) MaskRegion(r *Region, value float64) {
	g.forEachSpan(r, func(y, x0, x1 int) {
		row := g.Weight[y*g.W+x0 : y*g.W+x1+1]
		for i := range row {
			row[i] = value
		}
	})
}

// MaxWeight returns the maximum cell weight (0 for an empty grid).
func (g *Grid) MaxWeight() float64 {
	var m float64
	first := true
	for _, w := range g.Weight {
		if first || w > m {
			m, first = w, false
		}
	}
	return m
}

// LevelSets returns the distinct quantized cell weights in descending
// order and, parallel to it, the number of cells with raw weight at or
// above each level — cells[i] equals AreaAtOrAbove(levels[i])/CellArea(),
// computed for every level in two grid passes instead of one scan per
// level. Because fills write constant-weight spans, consecutive cells
// usually repeat and cost a single comparison each.
func (g *Grid) LevelSets() (levels []float64, cells []int) {
	// Pass 1: distinct quantized weights, kept ascending. The raw-value
	// cache makes span-constant runs skip the quantization rounding too.
	lastRaw := math.NaN()
	last := math.NaN()
	for _, w := range g.Weight {
		if w == lastRaw {
			continue
		}
		lastRaw = w
		q := quantizeWeight(w)
		if q == last {
			continue
		}
		last = q
		lo, hi := 0, len(levels)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if levels[mid] < q {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(levels) && levels[lo] == q {
			continue
		}
		levels = append(levels, 0)
		copy(levels[lo+1:], levels[lo:])
		levels[lo] = q
	}
	// Pass 2: census with the RAW >= comparison Threshold and
	// AreaAtOrAbove use (a raw 0.89999… quantizes to the 0.9 level but
	// does not clear it). Each cell is binned at the highest level its raw
	// weight reaches; a descending prefix sum then yields the cumulative
	// populations.
	exact := make([]int, len(levels))
	lastW := math.NaN()
	lastIdx := -2
	for _, w := range g.Weight {
		if w == lastW {
			if lastIdx >= 0 {
				exact[lastIdx]++
			}
			continue
		}
		lo, hi := 0, len(levels)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if levels[mid] <= w {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		lastW, lastIdx = w, lo-1
		if lastIdx >= 0 {
			exact[lastIdx]++
		}
	}
	for i, j := 0, len(levels)-1; i < j; i, j = i+1, j-1 {
		levels[i], levels[j] = levels[j], levels[i]
		exact[i], exact[j] = exact[j], exact[i]
	}
	for i := 1; i < len(exact); i++ {
		exact[i] += exact[i-1]
	}
	return levels, exact
}

// WeightLevels returns the distinct weight values present, descending.
func (g *Grid) WeightLevels() []float64 {
	levels, _ := g.LevelSets()
	return levels
}

// quantizeWeight collapses floating-point dust so that equal-weight cells
// compare equal.
func quantizeWeight(w float64) float64 {
	return math.Round(w*1e9) / 1e9
}

// Threshold extracts the region of all cells with weight ≥ level, tracing
// the cell boundary into properly oriented rings (outer CCW, holes CW).
func (g *Grid) Threshold(level float64) *Region {
	inside := getMaskBuf(len(g.Weight))
	defer putMaskBuf(inside)
	any := false
	for i, w := range g.Weight {
		if w >= level {
			inside[i] = true
			any = true
		}
	}
	if !any {
		return EmptyRegion()
	}
	return g.traceBoundary(inside)
}

// CellArea returns the area of one cell in km².
func (g *Grid) CellArea() float64 { return g.CellKm * g.CellKm }

// AreaAtOrAbove returns the total area of cells with weight ≥ level.
func (g *Grid) AreaAtOrAbove(level float64) float64 {
	n := 0
	for _, w := range g.Weight {
		if w >= level {
			n++
		}
	}
	return float64(n) * g.CellArea()
}

// vkey is an integer grid-vertex coordinate in [0..W]x[0..H].
type vkey struct{ x, y int32 }

// dirEdge is one directed boundary edge between grid vertices.
type dirEdge struct{ from, to vkey }

// vkeyLess orders vertices row-major (y, then x).
func vkeyLess(a, b vkey) bool {
	return a.y < b.y || (a.y == b.y && a.x < b.x)
}

// edgesByFrom stable-sorts boundary edges by start vertex. The concrete
// sort.Interface shares the stable-sort template with the sort.SliceStable
// call it replaced, so the edge order — and every ring traced from it —
// is byte-identical, without the per-call closure/swapper allocations.
type edgesByFrom []dirEdge

func (e edgesByFrom) Len() int           { return len(e) }
func (e edgesByFrom) Less(i, j int) bool { return vkeyLess(e[i].from, e[j].from) }
func (e edgesByFrom) Swap(i, j int)      { e[i], e[j] = e[j], e[i] }

// traceScratch pools the per-trace working set: the directed-edge table,
// its used bitmap, and the current loop. Rings are retained by the caller
// and stay off the scratch.
type traceScratch struct {
	edges []dirEdge
	used  []bool
	loop  []vkey
}

var tracePool = sync.Pool{New: func() any { return new(traceScratch) }}

// traceBoundary converts a binary cell mask into a Region. Directed
// boundary edges are emitted with the inside on the left, then linked into
// loops, producing CCW outer rings and CW holes without post-processing.
//
// Edges live in one flat slice sorted by start vertex (a map of per-vertex
// adjacency lists costs an allocation per boundary vertex, which dominated
// the solver's allocation profile); tracing consumes them via binary search
// over the sorted slice plus a used bitmap.
func (g *Grid) traceBoundary(inside []bool) *Region {
	in := func(x, y int) bool {
		if x < 0 || y < 0 || x >= g.W || y >= g.H {
			return false
		}
		return inside[y*g.W+x]
	}
	ts := tracePool.Get().(*traceScratch)
	defer tracePool.Put(ts)
	edges := ts.edges[:0]
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if !in(x, y) {
				continue
			}
			if !in(x, y-1) { // bottom edge, rightward
				edges = append(edges, dirEdge{vkey{int32(x), int32(y)}, vkey{int32(x + 1), int32(y)}})
			}
			if !in(x, y+1) { // top edge, leftward
				edges = append(edges, dirEdge{vkey{int32(x + 1), int32(y + 1)}, vkey{int32(x), int32(y + 1)}})
			}
			if !in(x-1, y) { // left edge, downward
				edges = append(edges, dirEdge{vkey{int32(x), int32(y + 1)}, vkey{int32(x), int32(y)}})
			}
			if !in(x+1, y) { // right edge, upward
				edges = append(edges, dirEdge{vkey{int32(x + 1), int32(y)}, vkey{int32(x + 1), int32(y + 1)}})
			}
		}
	}
	ts.edges = edges
	// Stable sort keeps edges sharing a start vertex in emission order, so
	// saddle resolution sees candidates in the same order the adjacency-map
	// representation produced (and ring output stays byte-identical).
	sort.Stable(edgesByFrom(edges))
	// findFrom returns the [i, j) range of edges starting at v.
	findFrom := func(v vkey) (int, int) {
		i := sort.Search(len(edges), func(k int) bool { return !vkeyLess(edges[k].from, v) })
		j := i
		for j < len(edges) && edges[j].from == v {
			j++
		}
		return i, j
	}
	used := ts.used
	if cap(used) >= len(edges) {
		used = used[:len(edges)]
		clear(used)
	} else {
		used = make([]bool, len(edges))
	}
	ts.used = used
	remaining := len(edges)
	cursor := 0 // edges before cursor are all used
	var rings []Ring
	loop := ts.loop
	for remaining > 0 {
		for used[cursor] {
			cursor++
		}
		// Sorted order makes edges[cursor].from the smallest keyed vertex
		// remaining, so ring order and vertex rotation are deterministic:
		// varying start points would vary the float accumulation order of
		// Area/centroid sums between runs, making identical localizations
		// differ in low-order bits.
		start := edges[cursor].from
		cur := start
		prev := vkey{-1 << 30, -1 << 30}
		loop = loop[:0]
		for {
			i, j := findFrom(cur)
			pick := -1
			nc := 0
			var cands [4]int
			for k := i; k < j; k++ {
				if !used[k] {
					cands[nc] = k
					nc++
				}
			}
			if nc == 0 {
				break // should not happen on a well-formed mask
			}
			if nc == 1 {
				pick = cands[0]
			} else {
				// Saddle: prefer the sharpest left turn relative to the
				// incoming direction to keep loops from merging.
				pick = cands[0]
				if prev.x >= -1<<29 {
					inDir := Vec2{float64(cur.x - prev.x), float64(cur.y - prev.y)}
					bestScore := -math.MaxFloat64
					for _, k := range cands[:nc] {
						n := edges[k].to
						out := Vec2{float64(n.x - cur.x), float64(n.y - cur.y)}
						// Left turns have positive cross; score by angle
						// turned left.
						score := math.Atan2(inDir.Cross(out), inDir.Dot(out))
						if score > bestScore {
							bestScore = score
							pick = k
						}
					}
				}
			}
			used[pick] = true
			remaining--
			loop = append(loop, cur)
			prev = cur
			cur = edges[pick].to
			if cur == start {
				break
			}
		}
		if len(loop) >= 4 {
			ring := make(Ring, 0, len(loop))
			for _, v := range loop {
				ring = append(ring, Vec2{
					X: g.Min.X + float64(v.x)*g.CellKm,
					Y: g.Min.Y + float64(v.y)*g.CellKm,
				})
			}
			ring = collapseCollinear(ring)
			if len(ring) >= 3 {
				rings = append(rings, ring)
			}
		}
	}
	ts.loop = loop
	return &Region{Rings: rings}
}

// collapseCollinear removes interior vertices that lie on a straight line
// between their neighbours (axis-aligned grid output produces long runs).
func collapseCollinear(ring Ring) Ring {
	n := len(ring)
	if n < 3 {
		return ring
	}
	out := make(Ring, 0, n)
	for i := 0; i < n; i++ {
		a := ring[(i+n-1)%n]
		b := ring[i]
		c := ring[(i+1)%n]
		if math.Abs(isLeft(a, c, b)) > 1e-12 {
			out = append(out, b)
		}
	}
	if len(out) < 3 {
		return ring
	}
	return out
}

// RasterizeRegion computes the binary inside-mask of r on grid geometry.
func (g *Grid) RasterizeRegion(r *Region) []bool {
	inside := make([]bool, g.W*g.H)
	g.RasterizeRegionInto(r, inside)
	return inside
}

// RasterizeRegionInto sets mask[i] = true for every cell whose centre lies
// inside r, leaving other entries untouched (so masks of several regions
// can be OR-combined without temporaries). mask must have length W*H.
func (g *Grid) RasterizeRegionInto(r *Region, mask []bool) {
	if r == nil {
		return
	}
	g.forEachSpan(r, func(y, x0, x1 int) {
		row := mask[y*g.W+x0 : y*g.W+x1+1]
		for i := range row {
			row[i] = true
		}
	})
}

// rasterBool combines two regions with a boolean cell operation on a shared
// grid and traces the result.
func rasterBool(a, b *Region, cellKm float64, op func(x, y bool) bool) *Region {
	min, max, ok := unionBBox(a, b)
	if !ok {
		// One or both empty.
		if op(true, false) { // op keeps a-only cells: result is a (or b by symmetry)
			if a != nil && !a.IsEmpty() {
				return a.Clone()
			}
		}
		if op(false, true) {
			if b != nil && !b.IsEmpty() {
				return b.Clone()
			}
		}
		return EmptyRegion()
	}
	pad := cellKm * 2
	min = Vec2{min.X - pad, min.Y - pad}
	max = Vec2{max.X + pad, max.Y + pad}
	g := NewGrid(min, max, cellKm)
	defer g.Release()
	ma := getMaskBuf(g.W * g.H)
	defer putMaskBuf(ma)
	mb := getMaskBuf(g.W * g.H)
	defer putMaskBuf(mb)
	g.RasterizeRegionInto(a, ma)
	g.RasterizeRegionInto(b, mb)
	out := getMaskBuf(len(ma))
	defer putMaskBuf(out)
	any := false
	for i := range out {
		if op(ma[i], mb[i]) {
			out[i] = true
			any = true
		}
	}
	if !any {
		return EmptyRegion()
	}
	return g.traceBoundary(out)
}

// unionBBox returns the combined bounding box of two regions.
func unionBBox(a, b *Region) (min, max Vec2, ok bool) {
	amin, amax, aok := a.BoundingBox()
	bmin, bmax, bok := b.BoundingBox()
	switch {
	case aok && bok:
		return Vec2{math.Min(amin.X, bmin.X), math.Min(amin.Y, bmin.Y)},
			Vec2{math.Max(amax.X, bmax.X), math.Max(amax.Y, bmax.Y)}, true
	case aok:
		return amin, amax, true
	case bok:
		return bmin, bmax, true
	}
	return Vec2{}, Vec2{}, false
}
