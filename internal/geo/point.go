// Package geo implements the geometric substrate of the Octant framework:
// spherical primitives (great-circle distance, bearings, destination points),
// an azimuthal equidistant projection used to bring the localization problem
// into the plane, Bezier curves, polygonal regions with boolean operations
// (two independent engines: Greiner–Hormann clipping and a raster engine),
// morphological buffering for secondary-landmark constraints, and GeoJSON
// export.
//
// All planar computation is done in kilometres in a projection plane; all
// geographic positions use degrees of latitude and longitude on a spherical
// Earth model (authalic radius).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius of the spherical model, in km.
const EarthRadiusKm = 6371.0088

// KmPerMile converts statute miles to kilometres. The paper reports errors in
// miles; the implementation computes in kilometres.
const KmPerMile = 1.609344

// MilesPerKm converts kilometres to statute miles.
const MilesPerKm = 1 / KmPerMile

// SpeedOfLightKmPerMs is the speed of light in vacuum, in km per millisecond.
const SpeedOfLightKmPerMs = 299.792458

// FiberSpeedKmPerMs is the propagation speed of light in fiber, approximately
// 2/3 the speed of light in vacuum (§2.1 of the paper), in km/ms.
const FiberSpeedKmPerMs = SpeedOfLightKmPerMs * 2 / 3

// Point is a position on the globe in degrees.
type Point struct {
	Lat float64 // latitude, degrees north, [-90, 90]
	Lon float64 // longitude, degrees east, (-180, 180]
}

// Pt is shorthand for Point{lat, lon}.
func Pt(lat, lon float64) Point { return Point{Lat: lat, Lon: lon} }

// String formats the point as "lat,lon" with 4 decimal places.
func (p Point) String() string { return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon) }

// Valid reports whether the point is a plausible geographic coordinate.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// DistanceKm returns the great-circle distance between p and q in kilometres,
// computed with the haversine formula (numerically stable for small angles).
func (p Point) DistanceKm(q Point) float64 {
	lat1, lon1 := deg2rad(p.Lat), deg2rad(p.Lon)
	lat2, lon2 := deg2rad(q.Lat), deg2rad(q.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// DistanceMiles returns the great-circle distance between p and q in statute
// miles.
func (p Point) DistanceMiles(q Point) float64 { return p.DistanceKm(q) * MilesPerKm }

// BearingTo returns the initial great-circle bearing from p to q in radians,
// measured clockwise from north, in [0, 2π).
func (p Point) BearingTo(q Point) float64 {
	lat1, lon1 := deg2rad(p.Lat), deg2rad(p.Lon)
	lat2, lon2 := deg2rad(q.Lat), deg2rad(q.Lon)
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	b := math.Atan2(y, x)
	if b < 0 {
		b += 2 * math.Pi
	}
	return b
}

// Destination returns the point reached by travelling distKm kilometres from
// p along the initial bearing (radians, clockwise from north).
func (p Point) Destination(bearing, distKm float64) Point {
	lat1, lon1 := deg2rad(p.Lat), deg2rad(p.Lon)
	ad := distKm / EarthRadiusKm
	sinLat2 := math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(bearing)
	lat2 := math.Asin(clamp(sinLat2, -1, 1))
	y := math.Sin(bearing) * math.Sin(ad) * math.Cos(lat1)
	x := math.Cos(ad) - math.Sin(lat1)*math.Sin(lat2)
	lon2 := lon1 + math.Atan2(y, x)
	return Point{Lat: rad2deg(lat2), Lon: normalizeLonDeg(rad2deg(lon2))}
}

// Midpoint returns the great-circle midpoint between p and q.
func (p Point) Midpoint(q Point) Point {
	d := p.DistanceKm(q)
	if d == 0 {
		return p
	}
	return p.Destination(p.BearingTo(q), d/2)
}

// normalizeLonDeg wraps a longitude into (-180, 180].
func normalizeLonDeg(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon <= -180 {
		lon += 360
	}
	return lon
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Centroid returns the spherical centroid (normalized 3-vector mean) of the
// given points. It returns the zero Point if pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var x, y, z float64
	for _, p := range pts {
		lat, lon := deg2rad(p.Lat), deg2rad(p.Lon)
		x += math.Cos(lat) * math.Cos(lon)
		y += math.Cos(lat) * math.Sin(lon)
		z += math.Sin(lat)
	}
	n := float64(len(pts))
	x, y, z = x/n, y/n, z/n
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm == 0 {
		return pts[0]
	}
	lat := math.Asin(clamp(z/norm, -1, 1))
	lon := math.Atan2(y, x)
	return Point{Lat: rad2deg(lat), Lon: rad2deg(lon)}
}

// LatencyToMaxDistanceKm converts a round-trip latency in milliseconds to the
// physically maximal one-way geographic distance in kilometres, assuming
// propagation at 2/3 the speed of light in both directions (§2.1). This is
// the conservative speed-of-light bound.
func LatencyToMaxDistanceKm(rttMs float64) float64 {
	if rttMs < 0 {
		return 0
	}
	return rttMs / 2 * FiberSpeedKmPerMs
}

// DistanceToMinLatencyMs is the inverse of LatencyToMaxDistanceKm: the
// minimum possible round-trip time in milliseconds to a host distKm away.
func DistanceToMinLatencyMs(distKm float64) float64 {
	if distKm < 0 {
		return 0
	}
	return 2 * distKm / FiberSpeedKmPerMs
}
