package geo

import "math"

// Projection is an azimuthal equidistant projection centred at a reference
// point. Distances and bearings from the centre are preserved exactly, which
// makes the projection the natural choice for constraint regions defined as
// distance bounds from landmarks near the centre (the projection error of a
// disk a few thousand km from the centre is a small fraction of its radius,
// and Octant's own error budget dominates it).
//
// Forward maps geographic points to plane coordinates in kilometres; Inverse
// maps back. The zero Projection is centred at (0°, 0°) and usable.
type Projection struct {
	Center Point
}

// NewProjection returns a projection centred at c.
func NewProjection(c Point) *Projection { return &Projection{Center: c} }

// Forward projects a geographic point into the plane (km east, km north of
// the centre along the azimuthal equidistant mapping).
func (pr *Projection) Forward(p Point) Vec2 {
	d := pr.Center.DistanceKm(p)
	if d == 0 {
		return Vec2{}
	}
	b := pr.Center.BearingTo(p)
	// Bearing is clockwise from north; plane x is east, y is north.
	return Vec2{X: d * math.Sin(b), Y: d * math.Cos(b)}
}

// Inverse maps a plane coordinate back to a geographic point.
func (pr *Projection) Inverse(v Vec2) Point {
	d := v.Len()
	if d == 0 {
		return pr.Center
	}
	bearing := math.Atan2(v.X, v.Y) // from north, clockwise
	if bearing < 0 {
		bearing += 2 * math.Pi
	}
	return pr.Center.Destination(bearing, d)
}

// ForwardAll projects a slice of points.
func (pr *Projection) ForwardAll(pts []Point) []Vec2 {
	out := make([]Vec2, len(pts))
	for i, p := range pts {
		out[i] = pr.Forward(p)
	}
	return out
}

// InverseAll unprojects a slice of plane coordinates.
func (pr *Projection) InverseAll(vs []Vec2) []Point {
	out := make([]Point, len(vs))
	for i, v := range vs {
		out[i] = pr.Inverse(v)
	}
	return out
}

// GeoCircle returns a polygonal approximation (n vertices, counter-clockwise)
// of the set of plane points at great-circle distance radiusKm from the
// geographic point center. The circle is sampled on the sphere and each
// sample projected, so the result is exact up to sampling even far from the
// projection centre.
func (pr *Projection) GeoCircle(center Point, radiusKm float64, n int) []Vec2 {
	if n < 3 {
		n = 3
	}
	out := make([]Vec2, n)
	for i := 0; i < n; i++ {
		b := 2 * math.Pi * float64(i) / float64(n)
		out[i] = pr.Forward(center.Destination(b, radiusKm))
	}
	ensureCCW(out)
	return out
}

// ensureCCW reverses ring in place if it is clockwise.
func ensureCCW(ring []Vec2) {
	if signedArea(ring) < 0 {
		reverseRing(ring)
	}
}

func reverseRing(ring []Vec2) {
	for i, j := 0, len(ring)-1; i < j; i, j = i+1, j-1 {
		ring[i], ring[j] = ring[j], ring[i]
	}
}
