package geo

import "math"

// Projection is an azimuthal equidistant projection centred at a reference
// point. Distances and bearings from the centre are preserved exactly, which
// makes the projection the natural choice for constraint regions defined as
// distance bounds from landmarks near the centre (the projection error of a
// disk a few thousand km from the centre is a small fraction of its radius,
// and Octant's own error budget dominates it).
//
// Forward maps geographic points to plane coordinates in kilometres; Inverse
// maps back. The zero Projection is centred at (0°, 0°) and usable.
//
// Projections built with NewProjection carry the centre's precomputed
// tangent frame, putting Forward and GeoCircle on the unit-vector fast
// path (see sphere.go); a zero Projection rebuilds the frame per call.
type Projection struct {
	Center Point

	frame    Frame
	hasFrame bool
}

// NewProjection returns a projection centred at c.
func NewProjection(c Point) *Projection {
	return &Projection{Center: c, frame: NewFrame(c), hasFrame: true}
}

// Frame returns the centre's tangent frame (precomputed by NewProjection,
// rebuilt on the fly for a zero Projection).
func (pr *Projection) Frame() Frame {
	if pr.hasFrame {
		return pr.frame
	}
	return NewFrame(pr.Center)
}

// Forward projects a geographic point into the plane (km east, km north of
// the centre along the azimuthal equidistant mapping).
func (pr *Projection) Forward(p Point) Vec2 {
	if pr.hasFrame {
		return pr.frame.Forward(p)
	}
	return NewFrame(pr.Center).Forward(p)
}

// forwardReference is the original spherical Forward — the haversine +
// bearing chain — retained as the property-test reference for the
// unit-vector fast path.
func (pr *Projection) forwardReference(p Point) Vec2 {
	d := pr.Center.DistanceKm(p)
	if d == 0 {
		return Vec2{}
	}
	b := pr.Center.BearingTo(p)
	// Bearing is clockwise from north; plane x is east, y is north.
	return Vec2{X: d * math.Sin(b), Y: d * math.Cos(b)}
}

// Inverse maps a plane coordinate back to a geographic point.
func (pr *Projection) Inverse(v Vec2) Point {
	d := v.Len()
	if d == 0 {
		return pr.Center
	}
	bearing := math.Atan2(v.X, v.Y) // from north, clockwise
	if bearing < 0 {
		bearing += 2 * math.Pi
	}
	return pr.Center.Destination(bearing, d)
}

// ForwardAll projects a slice of points.
func (pr *Projection) ForwardAll(pts []Point) []Vec2 {
	f := pr.Frame()
	out := make([]Vec2, len(pts))
	for i, p := range pts {
		out[i] = f.Forward(p)
	}
	return out
}

// InverseAll unprojects a slice of plane coordinates.
func (pr *Projection) InverseAll(vs []Vec2) []Point {
	out := make([]Point, len(vs))
	for i, v := range vs {
		out[i] = pr.Inverse(v)
	}
	return out
}

// GeoCircle returns a polygonal approximation (n vertices, counter-clockwise)
// of the set of plane points at great-circle distance radiusKm from the
// geographic point center. The circle is sampled on the sphere and each
// sample projected, so the result is exact up to sampling even far from the
// projection centre.
func (pr *Projection) GeoCircle(center Point, radiusKm float64, n int) []Vec2 {
	if n < 3 {
		n = 3
	}
	return pr.Frame().AppendGeoCircle(make([]Vec2, 0, n), NewFrame(center), radiusKm, n)
}

// geoCircleReference is the original spherical GeoCircle — per-vertex
// Destination followed by the reference Forward — retained as the
// property-test reference for the fused fast path.
func (pr *Projection) geoCircleReference(center Point, radiusKm float64, n int) []Vec2 {
	if n < 3 {
		n = 3
	}
	out := make([]Vec2, n)
	for i := 0; i < n; i++ {
		b := 2 * math.Pi * float64(i) / float64(n)
		out[i] = pr.forwardReference(center.Destination(b, radiusKm))
	}
	ensureCCW(out)
	return out
}

// ensureCCW reverses ring in place if it is clockwise.
func ensureCCW(ring []Vec2) {
	if signedArea(ring) < 0 {
		reverseRing(ring)
	}
}

func reverseRing(ring []Vec2) {
	for i, j := 0, len(ring)-1; i < j; i, j = i+1, j-1 {
		ring[i], ring[j] = ring[j], ring[i]
	}
}
