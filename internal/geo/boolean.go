package geo

import "math"

// Engine selects which boolean-operation implementation to use.
type Engine int

// Boolean engines.
const (
	// EngineAuto uses exact clipping for single-ring pairs and the raster
	// engine otherwise.
	EngineAuto Engine = iota
	// EngineClip forces Greiner–Hormann clipping (single-ring pairs only;
	// falls back to raster when it cannot apply).
	EngineClip
	// EngineRaster forces the raster engine.
	EngineRaster
)

// BoolOpts configures boolean operations.
type BoolOpts struct {
	Engine Engine
	// CellKm is the raster resolution. ≤0 chooses automatically from the
	// operand extents (≈1/400 of the bounding-box diagonal, clamped to
	// [0.2km, 25km]).
	CellKm float64
}

// autoCell picks a raster resolution from the combined extent of operands.
func autoCell(a, b *Region, requested float64) float64 {
	if requested > 0 {
		return requested
	}
	min, max, ok := unionBBox(a, b)
	if !ok {
		return 1
	}
	diag := max.Sub(min).Len()
	return clamp(diag/400, 0.2, 25)
}

// Intersect returns a ∩ b.
func Intersect(a, b *Region, opts *BoolOpts) *Region {
	return boolOp(a, b, OpIntersect, opts)
}

// Union returns a ∪ b.
func Union(a, b *Region, opts *BoolOpts) *Region {
	return boolOp(a, b, OpUnion, opts)
}

// Subtract returns a \ b.
func Subtract(a, b *Region, opts *BoolOpts) *Region {
	return boolOp(a, b, OpSubtract, opts)
}

func boolOp(a, b *Region, op BoolOp, opts *BoolOpts) *Region {
	if opts == nil {
		opts = &BoolOpts{}
	}
	aEmpty := a.IsEmpty()
	bEmpty := b.IsEmpty()
	switch op {
	case OpIntersect:
		if aEmpty || bEmpty {
			return EmptyRegion()
		}
	case OpUnion:
		if aEmpty && bEmpty {
			return EmptyRegion()
		}
		if aEmpty {
			return b.Clone()
		}
		if bEmpty {
			return a.Clone()
		}
	case OpSubtract:
		if aEmpty {
			return EmptyRegion()
		}
		if bEmpty {
			return a.Clone()
		}
	}
	useClip := false
	switch opts.Engine {
	case EngineClip:
		useClip = true
	case EngineAuto:
		useClip = len(a.Rings) == 1 && len(b.Rings) == 1
	}
	if useClip && len(a.Rings) == 1 && len(b.Rings) == 1 {
		if reg, ok := clipRings(a.Rings[0], b.Rings[0], op); ok {
			return reg
		}
	}
	cell := autoCell(a, b, opts.CellKm)
	switch op {
	case OpIntersect:
		return rasterBool(a, b, cell, func(x, y bool) bool { return x && y })
	case OpUnion:
		return rasterBool(a, b, cell, func(x, y bool) bool { return x || y })
	default:
		return rasterBool(a, b, cell, func(x, y bool) bool { return x && !y })
	}
}

// IntersectAll intersects all regions in order, short-circuiting on empty.
func IntersectAll(regions []*Region, opts *BoolOpts) *Region {
	if len(regions) == 0 {
		return EmptyRegion()
	}
	acc := regions[0].Clone()
	for _, r := range regions[1:] {
		acc = Intersect(acc, r, opts)
		if acc.IsEmpty() {
			return EmptyRegion()
		}
	}
	return acc
}

// UnionAll unions all regions (divide and conquer to keep intermediate
// complexity balanced).
func UnionAll(regions []*Region, opts *BoolOpts) *Region {
	switch len(regions) {
	case 0:
		return EmptyRegion()
	case 1:
		return regions[0].Clone()
	}
	mid := len(regions) / 2
	return Union(UnionAll(regions[:mid], opts), UnionAll(regions[mid:], opts), opts)
}

// Buffer morphologically grows (d > 0) or shrinks (d < 0) the region by
// |d| km: the dilation is the Minkowski sum with a disk of radius d — the
// "union of all circles of radius d at all points inside β" construction the
// paper uses for positive constraints from secondary landmarks — and the
// erosion is its dual used for negative constraints.
//
// The implementation thresholds the Euclidean distance field of the region
// on a raster: robust for any topology. cellKm ≤ 0 picks a resolution
// proportional to the buffered extent.
func Buffer(r *Region, d float64, cellKm float64) *Region {
	if r.IsEmpty() {
		return EmptyRegion()
	}
	if d == 0 {
		return r.Clone()
	}
	min, max, _ := r.BoundingBox()
	grow := math.Max(d, 0) + 1
	min = Vec2{min.X - grow - 2, min.Y - grow - 2}
	max = Vec2{max.X + grow + 2, max.Y + grow + 2}
	if cellKm <= 0 {
		diag := max.Sub(min).Len()
		cellKm = clamp(diag/400, 0.2, 25)
		if d != 0 {
			cellKm = math.Min(cellKm, math.Abs(d)/3)
		}
		cellKm = math.Max(cellKm, 0.05)
	}
	g := NewGrid(min, max, cellKm)
	inside := g.RasterizeRegion(r)
	out := make([]bool, len(inside))
	any := false
	if d > 0 {
		// Dilation: cell is in the result if inside, or within d of the
		// boundary.
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				i := y*g.W + x
				if inside[i] {
					out[i] = true
					any = true
					continue
				}
				p := g.CellCenter(x, y)
				if distToRings(r, p) <= d {
					out[i] = true
					any = true
				}
			}
		}
	} else {
		// Erosion: keep cells strictly deeper than |d| from the boundary.
		dd := -d
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				i := y*g.W + x
				if !inside[i] {
					continue
				}
				p := g.CellCenter(x, y)
				if distToRings(r, p) >= dd {
					out[i] = true
					any = true
				}
			}
		}
	}
	if !any {
		return EmptyRegion()
	}
	return g.traceBoundary(out)
}

// distToRings is the unsigned distance from p to the nearest ring boundary.
func distToRings(r *Region, p Vec2) float64 {
	d := math.Inf(1)
	for _, ring := range r.Rings {
		d = math.Min(d, ring.DistanceTo(p))
	}
	return d
}
