package geo

import "math"

// CubicBezier is a cubic Bezier segment in the projection plane. Octant
// represents region boundaries as chains of these (§1–2 of the paper):
// compact, closed under affine transforms, and able to bound non-convex and
// disconnected areas. The computational kernels operate on adaptively
// flattened polylines; FitBeziers converts polylines back into compact
// Bezier chains.
type CubicBezier struct {
	P0, P1, P2, P3 Vec2
}

// Eval returns the curve point at parameter t ∈ [0, 1] (de Casteljau).
func (c CubicBezier) Eval(t float64) Vec2 {
	u := 1 - t
	a := c.P0.Scale(u * u * u)
	b := c.P1.Scale(3 * u * u * t)
	d := c.P2.Scale(3 * u * t * t)
	e := c.P3.Scale(t * t * t)
	return a.Add(b).Add(d).Add(e)
}

// Derivative returns the tangent vector at parameter t.
func (c CubicBezier) Derivative(t float64) Vec2 {
	u := 1 - t
	a := c.P1.Sub(c.P0).Scale(3 * u * u)
	b := c.P2.Sub(c.P1).Scale(6 * u * t)
	d := c.P3.Sub(c.P2).Scale(3 * t * t)
	return a.Add(b).Add(d)
}

// Split subdivides the curve at parameter t into two cubic segments.
func (c CubicBezier) Split(t float64) (CubicBezier, CubicBezier) {
	p01 := c.P0.Lerp(c.P1, t)
	p12 := c.P1.Lerp(c.P2, t)
	p23 := c.P2.Lerp(c.P3, t)
	p012 := p01.Lerp(p12, t)
	p123 := p12.Lerp(p23, t)
	mid := p012.Lerp(p123, t)
	return CubicBezier{c.P0, p01, p012, mid}, CubicBezier{mid, p123, p23, c.P3}
}

// flatEnough reports whether the control polygon deviates from the chord by
// at most tol.
func (c CubicBezier) flatEnough(tol float64) bool {
	d1 := segDistance(c.P1, c.P0, c.P3)
	d2 := segDistance(c.P2, c.P0, c.P3)
	return math.Max(d1, d2) <= tol
}

// Flatten appends a polyline approximation of the curve (excluding P0,
// including P3) to dst, with maximum deviation tol.
func (c CubicBezier) Flatten(tol float64, dst []Vec2) []Vec2 {
	if tol <= 0 {
		tol = 0.1
	}
	return flattenRec(c, tol, dst, 0)
}

func flattenRec(c CubicBezier, tol float64, dst []Vec2, depth int) []Vec2 {
	if depth > 24 || c.flatEnough(tol) {
		return append(dst, c.P3)
	}
	l, r := c.Split(0.5)
	dst = flattenRec(l, tol, dst, depth+1)
	return flattenRec(r, tol, dst, depth+1)
}

// Length returns the arc length approximated by flattening at tolerance tol.
func (c CubicBezier) Length(tol float64) float64 {
	pts := c.Flatten(tol, []Vec2{})
	prev := c.P0
	var l float64
	for _, p := range pts {
		l += prev.Dist(p)
		prev = p
	}
	return l
}

// BoundingBox returns the control-polygon bounding box (contains the curve).
func (c CubicBezier) BoundingBox() (min, max Vec2) {
	min = c.P0
	max = c.P0
	for _, p := range []Vec2{c.P1, c.P2, c.P3} {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}

// BezierPath is a chain of cubic segments, closed when the last segment ends
// at the first segment's start.
type BezierPath []CubicBezier

// Flatten converts the path to a polyline ring at tolerance tol.
func (bp BezierPath) Flatten(tol float64) Ring {
	if len(bp) == 0 {
		return nil
	}
	pts := []Vec2{bp[0].P0}
	for _, c := range bp {
		pts = c.Flatten(tol, pts)
	}
	// Closed path: drop the duplicated final point.
	if len(pts) > 1 && pts[0].Dist(pts[len(pts)-1]) < 1e-9 {
		pts = pts[:len(pts)-1]
	}
	return Ring(pts)
}

// circleKappa is the control-point offset ratio for approximating a quarter
// circle with one cubic Bezier: 4/3·tan(π/8).
var circleKappa = 4.0 / 3.0 * math.Tan(math.Pi/8)

// CircleBezier returns a 4-segment closed Bezier path approximating a circle
// (max radial error ≈ 2.7e-4 · r).
func CircleBezier(center Vec2, r float64) BezierPath {
	k := circleKappa * r
	p := func(dx, dy float64) Vec2 { return Vec2{center.X + dx, center.Y + dy} }
	return BezierPath{
		{p(r, 0), p(r, k), p(k, r), p(0, r)},
		{p(0, r), p(-k, r), p(-r, k), p(-r, 0)},
		{p(-r, 0), p(-r, -k), p(-k, -r), p(0, -r)},
		{p(0, -r), p(k, -r), p(r, -k), p(r, 0)},
	}
}

// FitBeziers fits a closed polyline ring with a chain of cubic Beziers whose
// maximum deviation from the input vertices is at most tol (Schneider's
// least-squares fitting with corner splitting). The result is the compact
// boundary representation used when serializing regions.
//
// The ring is first split at sharp corners (turn angle above ~50°) so each
// smooth piece is fitted independently with polyline-aligned end tangents;
// a smooth ring without corners is split into two halves to avoid the
// degenerate closed-curve fit.
func FitBeziers(ring Ring, tol float64) BezierPath {
	n := len(ring)
	if n < 3 {
		return nil
	}
	if tol <= 0 {
		tol = 0.5
	}
	corners := cornerIndices(ring, 50*math.Pi/180)
	if len(corners) < 2 {
		corners = []int{0, n / 2}
	}
	var out BezierPath
	for i, ci := range corners {
		cj := corners[(i+1)%len(corners)]
		seg := ringSlice(ring, ci, cj)
		seg = dedupePolyline(seg)
		if len(seg) < 2 {
			continue
		}
		tHat1 := seg[1].Sub(seg[0]).Normalize()
		tHat2 := seg[len(seg)-2].Sub(seg[len(seg)-1]).Normalize()
		fitCubicRec(seg, tHat1, tHat2, tol, &out, 0)
	}
	return out
}

// cornerIndices returns the indices of vertices whose exterior turn angle
// exceeds threshold radians.
func cornerIndices(ring Ring, threshold float64) []int {
	n := len(ring)
	var out []int
	for i := 0; i < n; i++ {
		a := ring[(i+n-1)%n]
		b := ring[i]
		c := ring[(i+1)%n]
		v1 := b.Sub(a)
		v2 := c.Sub(b)
		if v1.Len() == 0 || v2.Len() == 0 {
			continue
		}
		turn := math.Abs(math.Atan2(v1.Cross(v2), v1.Dot(v2)))
		if turn > threshold {
			out = append(out, i)
		}
	}
	return out
}

// ringSlice extracts the closed-ring vertex run from index i to index j
// inclusive, wrapping around (i == j yields the whole loop closed back to i).
func ringSlice(ring Ring, i, j int) []Vec2 {
	n := len(ring)
	var out []Vec2
	k := i
	for {
		out = append(out, ring[k])
		if k == j && len(out) > 1 {
			break
		}
		k = (k + 1) % n
		if k == i { // full loop: close it
			out = append(out, ring[i])
			break
		}
	}
	return out
}

// dedupePolyline removes consecutive duplicate points from an open polyline.
func dedupePolyline(pts []Vec2) []Vec2 {
	out := pts[:0:0]
	for _, p := range pts {
		if len(out) == 0 || out[len(out)-1].Dist(p) > 1e-12 {
			out = append(out, p)
		}
	}
	return out
}

func fitCubicRec(pts []Vec2, tHat1, tHat2 Vec2, tol float64, out *BezierPath, depth int) {
	n := len(pts)
	if n == 2 {
		d := pts[1].Dist(pts[0]) / 3
		*out = append(*out, CubicBezier{
			pts[0],
			pts[0].Add(tHat1.Scale(d)),
			pts[1].Add(tHat2.Scale(d)),
			pts[1],
		})
		return
	}
	u := chordLengthParams(pts)
	bez := generateBezier(pts, u, tHat1, tHat2)
	maxErr, splitIdx := maxFitError(pts, bez, u)
	if maxErr <= tol || depth > 24 {
		*out = append(*out, bez)
		return
	}
	// One round of Newton–Raphson reparameterization before splitting.
	if maxErr <= tol*tol*4 {
		u = reparameterize(pts, bez, u)
		bez = generateBezier(pts, u, tHat1, tHat2)
		maxErr, splitIdx = maxFitError(pts, bez, u)
		if maxErr <= tol {
			*out = append(*out, bez)
			return
		}
	}
	if splitIdx <= 0 || splitIdx >= n-1 {
		splitIdx = n / 2
	}
	centerTangent := pts[splitIdx-1].Sub(pts[splitIdx+1]).Normalize()
	fitCubicRec(pts[:splitIdx+1], tHat1, centerTangent, tol, out, depth+1)
	fitCubicRec(pts[splitIdx:], centerTangent.Scale(-1), tHat2, tol, out, depth+1)
}

func chordLengthParams(pts []Vec2) []float64 {
	u := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		u[i] = u[i-1] + pts[i].Dist(pts[i-1])
	}
	total := u[len(u)-1]
	if total == 0 {
		total = 1
	}
	for i := range u {
		u[i] /= total
	}
	return u
}

func generateBezier(pts []Vec2, u []float64, tHat1, tHat2 Vec2) CubicBezier {
	n := len(pts)
	first, last := pts[0], pts[n-1]
	// Least squares for the two tangent magnitudes (standard Schneider).
	var c00, c01, c11, x0, x1 float64
	for i := 0; i < n; i++ {
		t := u[i]
		b0 := (1 - t) * (1 - t) * (1 - t)
		b1 := 3 * t * (1 - t) * (1 - t)
		b2 := 3 * t * t * (1 - t)
		b3 := t * t * t
		a1 := tHat1.Scale(b1)
		a2 := tHat2.Scale(b2)
		c00 += a1.Dot(a1)
		c01 += a1.Dot(a2)
		c11 += a2.Dot(a2)
		tmp := pts[i].Sub(first.Scale(b0 + b1)).Sub(last.Scale(b2 + b3))
		x0 += a1.Dot(tmp)
		x1 += a2.Dot(tmp)
	}
	det := c00*c11 - c01*c01
	var alpha1, alpha2 float64
	if math.Abs(det) > 1e-12 {
		alpha1 = (x0*c11 - x1*c01) / det
		alpha2 = (c00*x1 - c01*x0) / det
	}
	segLen := first.Dist(last)
	eps := 1e-6 * segLen
	if alpha1 < eps || alpha2 < eps {
		alpha1 = segLen / 3
		alpha2 = segLen / 3
	}
	return CubicBezier{
		first,
		first.Add(tHat1.Scale(alpha1)),
		last.Add(tHat2.Scale(alpha2)),
		last,
	}
}

func maxFitError(pts []Vec2, bez CubicBezier, u []float64) (maxErr float64, idx int) {
	for i := 1; i < len(pts)-1; i++ {
		d := bez.Eval(u[i]).Dist(pts[i])
		if d > maxErr {
			maxErr = d
			idx = i
		}
	}
	return maxErr, idx
}

func reparameterize(pts []Vec2, bez CubicBezier, u []float64) []float64 {
	out := make([]float64, len(u))
	for i := range u {
		out[i] = newtonRaphsonRoot(bez, pts[i], u[i])
	}
	return out
}

func newtonRaphsonRoot(bez CubicBezier, p Vec2, u float64) float64 {
	d := bez.Eval(u).Sub(p)
	d1 := bez.Derivative(u)
	// Second derivative of a cubic.
	d2 := bez.P2.Sub(bez.P1.Scale(2)).Add(bez.P0).Scale(6 * (1 - u)).
		Add(bez.P3.Sub(bez.P2.Scale(2)).Add(bez.P1).Scale(6 * u))
	num := d.Dot(d1)
	den := d1.Dot(d1) + d.Dot(d2)
	if math.Abs(den) < 1e-12 {
		return u
	}
	return clamp(u-num/den, 0, 1)
}

// BezierBoundary returns the region's boundary as one Bezier path per ring,
// fitted at tolerance tol (km).
func (r *Region) BezierBoundary(tol float64) []BezierPath {
	if r == nil {
		return nil
	}
	out := make([]BezierPath, 0, len(r.Rings))
	for _, ring := range r.Rings {
		if bp := FitBeziers(ring, tol); len(bp) > 0 {
			out = append(out, bp)
		}
	}
	return out
}

// RegionFromBezier builds a region by flattening Bezier boundary paths at
// tolerance tol.
func RegionFromBezier(paths []BezierPath, tol float64) *Region {
	rings := make([]Ring, 0, len(paths))
	for _, bp := range paths {
		ring := bp.Flatten(tol)
		if len(ring) >= 3 {
			rings = append(rings, ring)
		}
	}
	return NewRegion(rings...)
}
