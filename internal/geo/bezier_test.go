package geo

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBezierEvalEndpoints(t *testing.T) {
	c := CubicBezier{V2(0, 0), V2(1, 2), V2(3, 2), V2(4, 0)}
	if p := c.Eval(0); p != c.P0 {
		t.Errorf("Eval(0) = %v", p)
	}
	if p := c.Eval(1); p != c.P3 {
		t.Errorf("Eval(1) = %v", p)
	}
	mid := c.Eval(0.5)
	if mid.Y <= 0 {
		t.Errorf("Eval(0.5) = %v, should bulge upward", mid)
	}
}

func TestBezierSplitContinuity(t *testing.T) {
	c := CubicBezier{V2(0, 0), V2(1, 3), V2(4, 3), V2(5, 0)}
	f := func(tRaw float64) bool {
		tt := math.Mod(math.Abs(tRaw), 1)
		if tt == 0 {
			tt = 0.5
		}
		l, r := c.Split(tt)
		// Split point matches Eval, and endpoints are preserved.
		join := c.Eval(tt)
		return l.P0 == c.P0 && r.P3 == c.P3 &&
			l.P3.Dist(join) < 1e-9 && r.P0.Dist(join) < 1e-9 &&
			l.Eval(1).Dist(r.Eval(0)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBezierSplitMatchesEval(t *testing.T) {
	c := CubicBezier{V2(0, 0), V2(2, 5), V2(6, -1), V2(8, 2)}
	l, r := c.Split(0.3)
	// l at param u corresponds to c at 0.3u; r at u corresponds to c at 0.3+0.7u.
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if d := l.Eval(u).Dist(c.Eval(0.3 * u)); d > 1e-9 {
			t.Errorf("left segment mismatch at u=%v: %v", u, d)
		}
		if d := r.Eval(u).Dist(c.Eval(0.3 + 0.7*u)); d > 1e-9 {
			t.Errorf("right segment mismatch at u=%v: %v", u, d)
		}
	}
}

func TestFlattenTolerance(t *testing.T) {
	c := CubicBezier{V2(0, 0), V2(0, 10), V2(10, 10), V2(10, 0)}
	for _, tol := range []float64{1, 0.1, 0.01} {
		pts := c.Flatten(tol, []Vec2{c.P0})
		// Every curve sample must be within tol (plus slack) of the polyline.
		for i := 0; i <= 100; i++ {
			p := c.Eval(float64(i) / 100)
			best := math.Inf(1)
			for j := 0; j+1 < len(pts); j++ {
				best = math.Min(best, segDistance(p, pts[j], pts[j+1]))
			}
			if best > tol*1.5 {
				t.Errorf("tol %v: curve point %v is %.4f from polyline", tol, p, best)
			}
		}
	}
}

func TestCircleBezierAccuracy(t *testing.T) {
	const r = 100.0
	path := CircleBezier(V2(0, 0), r)
	if len(path) != 4 {
		t.Fatalf("expected 4 segments, got %d", len(path))
	}
	for _, seg := range path {
		for i := 0; i <= 20; i++ {
			p := seg.Eval(float64(i) / 20)
			if err := math.Abs(p.Len() - r); err > r*3e-4 {
				t.Errorf("radial error %.5f at %v", err, p)
			}
		}
	}
	ring := path.Flatten(0.05)
	want := math.Pi * r * r
	if got := ring.Area(); math.Abs(got-want) > want*0.01 {
		t.Errorf("flattened circle area %v, want %v", got, want)
	}
	if !ring.IsCCW() {
		t.Error("circle path should flatten CCW")
	}
}

func TestFitBeziersRoundTrip(t *testing.T) {
	// Fit a flattened circle and check the Bezier chain reproduces it.
	orig := Disk(V2(5, 5), 50, 200).Rings[0]
	const tol = 0.5
	path := FitBeziers(orig, tol)
	if len(path) == 0 {
		t.Fatal("no segments fitted")
	}
	if len(path) >= len(orig) {
		t.Errorf("fit should compress: %d segments for %d points", len(path), len(orig))
	}
	back := path.Flatten(0.05)
	// Area preserved.
	if math.Abs(back.Area()-orig.Area()) > orig.Area()*0.02 {
		t.Errorf("area after round trip %v, want %v", back.Area(), orig.Area())
	}
	// Every original vertex close to the fitted boundary.
	for _, p := range orig {
		best := math.Inf(1)
		n := len(back)
		for j := 0; j < n; j++ {
			best = math.Min(best, segDistance(p, back[j], back[(j+1)%n]))
		}
		if best > tol*2 {
			t.Errorf("vertex %v deviates %.3f from fitted boundary", p, best)
		}
	}
}

func TestFitBeziersSquareCorners(t *testing.T) {
	sq := square(0, 0, 10)
	path := FitBeziers(sq, 0.25)
	back := path.Flatten(0.05)
	if math.Abs(back.Area()-400) > 400*0.05 {
		t.Errorf("square fit area %v, want 400", back.Area())
	}
}

func TestRegionBezierBoundaryRoundTrip(t *testing.T) {
	reg := Annulus(V2(0, 0), 20, 60, 128)
	paths := reg.BezierBoundary(0.5)
	if len(paths) != 2 {
		t.Fatalf("annulus should fit 2 boundary paths, got %d", len(paths))
	}
	back := RegionFromBezier(paths, 0.1)
	if math.Abs(back.Area()-reg.Area()) > reg.Area()*0.03 {
		t.Errorf("round-trip area %v, want %v", back.Area(), reg.Area())
	}
	if back.Contains(V2(0, 0)) {
		t.Error("round-trip should preserve the hole")
	}
	if !back.Contains(V2(40, 0)) {
		t.Error("round-trip should preserve the annulus body")
	}
}

func TestBezierLength(t *testing.T) {
	// Straight-line cubic: length equals endpoint distance.
	c := CubicBezier{V2(0, 0), V2(1, 0), V2(2, 0), V2(3, 0)}
	if got := c.Length(0.01); math.Abs(got-3) > 1e-3 {
		t.Errorf("straight length = %v, want 3", got)
	}
	// Quarter circle ≈ πr/2.
	q := CircleBezier(V2(0, 0), 10)[0]
	want := math.Pi * 10 / 2
	if got := q.Length(0.001); math.Abs(got-want) > want*0.001 {
		t.Errorf("quarter-circle length = %v, want %v", got, want)
	}
}

func TestBezierBoundingBox(t *testing.T) {
	c := CubicBezier{V2(0, 0), V2(1, 5), V2(3, -2), V2(4, 1)}
	min, max := c.BoundingBox()
	for i := 0; i <= 50; i++ {
		p := c.Eval(float64(i) / 50)
		if p.X < min.X-1e-9 || p.X > max.X+1e-9 || p.Y < min.Y-1e-9 || p.Y > max.Y+1e-9 {
			t.Errorf("curve point %v escapes control bbox [%v, %v]", p, min, max)
		}
	}
}

func TestFitBeziersRandomStars(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 24 + rng.IntN(60)
		ring := make(Ring, n)
		for i := range ring {
			a := 2 * math.Pi * float64(i) / float64(n)
			r := 30 + 10*math.Sin(3*a) + 4*rng.Float64()
			ring[i] = V2(r*math.Cos(a), r*math.Sin(a))
		}
		path := FitBeziers(ring, 1.0)
		if len(path) == 0 {
			return false
		}
		// The fit contract: every input vertex lies within tol of the
		// fitted boundary (area is NOT preserved on jagged inputs — the
		// fit legitimately smooths sub-tolerance zigzag).
		back := path.Flatten(0.05)
		m := len(back)
		for _, p := range ring {
			best := math.Inf(1)
			for j := 0; j < m; j++ {
				best = math.Min(best, segDistance(p, back[j], back[(j+1)%m]))
			}
			if best > 2.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
