package geo

import "math"

// The unit-vector fast path for constraint geometry.
//
// Constraint construction is dominated by trigonometry: the reference
// spherical pipeline pays Destination + haversine + BearingTo (~15 libm
// calls) per circle vertex. Representing positions as 3D unit vectors with
// precomputed orthonormal tangent frames removes almost all of it: a
// geodesic circle of radius r about a landmark L̂ is
//
//	v(θ) = cos(a)·L̂ + sin(a)·(cosθ·N̂ + sinθ·Ê),  a = r/R,
//
// with cos(a), sin(a) computed once per disk and cosθ/sinθ drawn from a
// fixed package-level bearing table — zero libm calls per vertex — and
// projecting v(θ) into the azimuthal-equidistant plane needs only one
// atan2 + one sqrt per vertex (distance and direction read off the
// projection centre's own tangent frame).
//
// The reference spherical implementations are retained (forwardReference,
// geoCircleReference) and the fused path is property-tested against them
// to < 1 m over random centres and radii, including antimeridian and
// high-latitude cases.

// Vec3 is a 3-vector in the Earth-centred unit-sphere model: X towards
// (0°, 0°), Y towards (0°, 90°E), Z towards the north pole.
type Vec3 struct {
	X, Y, Z float64
}

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// UnitVec returns the unit vector of a geographic point.
func UnitVec(p Point) Vec3 {
	sinLat, cosLat := math.Sincos(deg2rad(p.Lat))
	sinLon, cosLon := math.Sincos(deg2rad(p.Lon))
	return Vec3{X: cosLat * cosLon, Y: cosLat * sinLon, Z: sinLat}
}

// Point converts a unit vector back to geographic coordinates.
func (v Vec3) Point() Point {
	return Point{
		Lat: rad2deg(math.Asin(clamp(v.Z, -1, 1))),
		Lon: rad2deg(math.Atan2(v.Y, v.X)),
	}
}

// Frame is a position on the sphere with its orthonormal tangent frame:
// U the unit position vector, E the unit east tangent, N the unit north
// tangent. A Frame is immutable and safe to share between goroutines;
// precomputing one per landmark (and one per projection centre) is what
// lets circle construction and projection run libm-free per vertex.
type Frame struct {
	Origin  Point
	U, E, N Vec3
}

// NewFrame builds the tangent frame at p.
func NewFrame(p Point) Frame {
	sinLat, cosLat := math.Sincos(deg2rad(p.Lat))
	sinLon, cosLon := math.Sincos(deg2rad(p.Lon))
	return Frame{
		Origin: p,
		U:      Vec3{X: cosLat * cosLon, Y: cosLat * sinLon, Z: sinLat},
		E:      Vec3{X: -sinLon, Y: cosLon, Z: 0},
		N:      Vec3{X: -sinLat * cosLon, Y: -sinLat * sinLon, Z: cosLat},
	}
}

// ForwardVec projects a unit vector into f's azimuthal-equidistant plane
// (km east, km north of f.Origin): the angular distance comes from one
// atan2 and the direction from the vector's components in f's tangent
// frame — no haversine/bearing chain.
func (f Frame) ForwardVec(v Vec3) Vec2 {
	e := v.Dot(f.E)
	n := v.Dot(f.N)
	u := v.Dot(f.U)
	rho := math.Sqrt(e*e + n*n)
	if rho == 0 {
		if u >= 0 {
			return Vec2{} // the centre itself
		}
		// Antipode: distance πR, direction undefined; pick north, matching
		// the reference path's bearing-0 convention for degenerate input.
		return Vec2{X: 0, Y: math.Pi * EarthRadiusKm}
	}
	s := EarthRadiusKm * math.Atan2(rho, u) / rho
	return Vec2{X: e * s, Y: n * s}
}

// Forward projects a geographic point into f's plane.
func (f Frame) Forward(p Point) Vec2 { return f.ForwardVec(UnitVec(p)) }

// circleTableN is the size of the shared bearing table. Adaptive vertex
// counts are restricted to divisors of it, so every disk strides the one
// table instead of paying per-vertex sincos.
const circleTableN = 96

var (
	circleSin, circleCos [circleTableN]float64

	// circleCounts are the allowed polygonalization densities (divisors of
	// circleTableN), ascending; circleSagitta[i] is the relative chord
	// error 1-cos(π/n) of an n-gon, so a disk of radius r sampled at
	// circleCounts[i] deviates from the true circle by at most
	// r·circleSagitta[i].
	circleCounts  = [...]int{24, 32, 48, circleTableN}
	circleSagitta [len(circleCounts)]float64
)

func init() {
	for i := range circleSin {
		circleSin[i], circleCos[i] = math.Sincos(2 * math.Pi * float64(i) / circleTableN)
	}
	for i, n := range circleCounts {
		circleSagitta[i] = 1 - math.Cos(math.Pi/float64(n))
	}
}

// CircleSegments picks the polygonalization density for a disk of the
// given radius from a chord-error bound: the smallest allowed vertex count
// whose sagitta r·(1-cos(π/n)) stays within chordTolKm, floor 24, cap 96.
// Small disks (60 km WHOIS/router constraints) stop paying 96 vertices
// while continent-scale latency disks keep full density.
func CircleSegments(radiusKm, chordTolKm float64) int {
	if chordTolKm <= 0 || radiusKm <= 0 {
		return circleTableN
	}
	for i, n := range circleCounts {
		if radiusKm*circleSagitta[i] <= chordTolKm {
			return n
		}
	}
	return circleTableN
}

// AppendGeoCircle appends to dst an n-vertex counter-clockwise polygonal
// approximation of the geodesic circle of radius radiusKm about lm,
// projected into f's plane. This is the fused fast path: cos/sin of the
// radius once per call, bearings from the shared table (per-vertex sincos
// only when n does not divide the table size), one atan2 + one sqrt per
// vertex for the projection. Equivalent to the reference
// Destination→DistanceKm→BearingTo chain to well under a metre.
func (f Frame) AppendGeoCircle(dst []Vec2, lm Frame, radiusKm float64, n int) []Vec2 {
	if n < 3 {
		n = 3
	}
	sinA, cosA := math.Sincos(radiusKm / EarthRadiusKm)
	stride := 0
	if n <= circleTableN && circleTableN%n == 0 {
		stride = circleTableN / n
	}
	base := len(dst)
	for i, ti := 0, 0; i < n; i, ti = i+1, ti+stride {
		var st, ct float64
		if stride > 0 {
			st, ct = circleSin[ti], circleCos[ti]
		} else {
			st, ct = math.Sincos(2 * math.Pi * float64(i) / float64(n))
		}
		// d = cosθ·N̂ + sinθ·Ê is the departure direction at the landmark;
		// v = cos(a)·L̂ + sin(a)·d is the circle vertex on the sphere.
		v := Vec3{
			X: cosA*lm.U.X + sinA*(ct*lm.N.X+st*lm.E.X),
			Y: cosA*lm.U.Y + sinA*(ct*lm.N.Y+st*lm.E.Y),
			Z: cosA*lm.U.Z + sinA*(ct*lm.N.Z+st*lm.E.Z),
		}
		dst = append(dst, f.ForwardVec(v))
	}
	ensureCCW(dst[base:])
	return dst
}

// SpherePolyContains reports whether the unit vector u lies inside the
// spherical polygon with the given unit-vector vertices (edges are minor
// great-circle arcs). It sums the signed angles the edges subtend at u:
// ±2π inside, ~0 outside. Intended for polygons smaller than a hemisphere
// and query points off the boundary — exactly the coarse landmass
// outlines of the §2.5 geographic constraints.
func SpherePolyContains(verts []Vec3, u Vec3) bool {
	if len(verts) < 3 {
		return false
	}
	// The angle sum is ±2π at the antipode of an interior point too;
	// restrict to the polygon's own hemisphere (its vertex mean points
	// into it for any polygon smaller than a hemisphere).
	var mean Vec3
	for _, v := range verts {
		mean.X += v.X
		mean.Y += v.Y
		mean.Z += v.Z
	}
	if mean.Dot(u) <= 0 {
		return false
	}
	var total float64
	prev := verts[len(verts)-1]
	pu := prev.Dot(u)
	for _, v := range verts {
		vu := v.Dot(u)
		// Signed angle at u between the tangent directions towards prev
		// and v: the u-terms of the tangent projections cancel inside the
		// triple product, leaving u·(prev×v).
		sin := u.Dot(prev.Cross(v))
		cos := prev.Dot(v) - pu*vu
		total += math.Atan2(sin, cos)
		prev, pu = v, vu
	}
	return math.Abs(total) > math.Pi
}
