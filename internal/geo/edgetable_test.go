package geo

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// naiveFillMask rasterizes r with the retained naive reference (scanRow via
// rowSpans): every edge of every ring is tested against every grid row.
func naiveFillMask(g *Grid, r *Region) []bool {
	mask := make([]bool, g.W*g.H)
	if r == nil || len(r.Rings) == 0 {
		return mask
	}
	var buf []crossing
	for y := 0; y < g.H; y++ {
		row := y * g.W
		buf = g.rowSpans(r, y, buf, func(x0, x1 int) {
			for x := x0; x <= x1; x++ {
				mask[row+x] = true
			}
		})
	}
	return mask
}

// randomRegion builds an adversarial region: 1–3 rings of 3–40 random
// vertices each (self-intersections and degenerate slivers welcome — the
// winding rule must handle them), optionally reversed rings acting as
// holes, sometimes disconnected, sometimes hanging off the grid edge.
func randomRegion(rng *rand.Rand) *Region {
	nRings := 1 + rng.Intn(3)
	rings := make([]Ring, 0, nRings)
	for r := 0; r < nRings; r++ {
		n := 3 + rng.Intn(38)
		cx := rng.Float64()*60 - 30
		cy := rng.Float64()*60 - 30
		scale := 2 + rng.Float64()*25
		ring := make(Ring, n)
		for i := range ring {
			ring[i] = Vec2{
				X: cx + (rng.Float64()*2-1)*scale,
				Y: cy + (rng.Float64()*2-1)*scale,
			}
		}
		if rng.Intn(3) == 0 {
			reverseRing(ring)
		}
		// Occasionally snap vertices onto cell-centre rows to exercise the
		// inclusive/exclusive scanline boundaries.
		if rng.Intn(4) == 0 {
			for i := range ring {
				ring[i].Y = math.Round(ring[i].Y*2) / 2
			}
		}
		rings = append(rings, ring)
	}
	return &Region{Rings: rings}
}

// TestEdgeTableMatchesNaive is the equivalence property test: across
// randomized non-convex, self-intersecting, disconnected, and holed
// regions, the edge-table rasterizer must produce cell-for-cell identical
// output to the naive scanRow reference.
func TestEdgeTableMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := randomRegion(rng)
		cell := 0.3 + rng.Float64()*2
		g := NewGrid(V2(-25, -25), V2(25, 25), cell)
		got := g.RasterizeRegion(r)
		want := naiveFillMask(g, r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: cell (%d,%d) edge-table=%v naive=%v (region %v)",
					seed, i%g.W, i/g.W, got[i], want[i], r)
			}
		}
		g.Release()
	}
}

// TestEdgeTableMatchesNaiveStructured repeats the equivalence check on the
// structured shapes the solver actually rasterizes: disks, annuli (holes),
// and disjoint unions.
func TestEdgeTableMatchesNaiveStructured(t *testing.T) {
	shapes := []*Region{
		Disk(V2(0, 0), 18, 96),
		Annulus(V2(-4, 3), 7, 17, 128),
		{Rings: append(append([]Ring{}, Disk(V2(-12, -12), 6, 64).Rings...),
			Disk(V2(12, 12), 6, 64).Rings...)}, // disconnected
		Rect(V2(-20, -3), V2(20, 3)),
	}
	for si, r := range shapes {
		g := NewGrid(V2(-25, -25), V2(25, 25), 0.4)
		got := g.RasterizeRegion(r)
		want := naiveFillMask(g, r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %d: cell (%d,%d) edge-table=%v naive=%v",
					si, i%g.W, i/g.W, got[i], want[i])
			}
		}
		g.Release()
	}
}

// TestBatchedFillMatchesAddRegion pins the row-difference fill path — the
// solver's only weight-write path since the batched rewrite — to the
// per-cell AddRegion reference over randomized constraint stacks. The
// prefix-sum arithmetic is not bit-identical to sequential adds (span
// entry/exit cancellation can leave one-ULP residue), so agreement is
// required to well inside the solver's 1e-9 weight quantum.
func TestBatchedFillMatchesAddRegion(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nCons := 1 + rng.Intn(6)
		regions := make([]*Region, nCons)
		weights := make([]float64, nCons)
		for i := range regions {
			regions[i] = randomRegion(rng)
			weights[i] = (rng.Float64()*2 - 0.5) * (1 + rng.Float64())
		}
		cell := 0.3 + rng.Float64()*2
		ref := NewGrid(V2(-25, -25), V2(25, 25), cell)
		bat := NewGrid(V2(-25, -25), V2(25, 25), cell)
		for i, r := range regions {
			ref.AddRegion(r, weights[i])
			bat.AddRegionBatched(r, weights[i])
		}
		bat.FlushAdds()
		for i := range ref.Weight {
			if d := math.Abs(ref.Weight[i] - bat.Weight[i]); d > 1e-12 {
				t.Fatalf("seed %d: cell (%d,%d) AddRegion=%g batched=%g (Δ %g)",
					seed, i%ref.W, i/ref.W, ref.Weight[i], bat.Weight[i], d)
			}
		}
		ref.Release()
		bat.Release()
	}
}

// TestFlushAddsIdempotent checks that FlushAdds with nothing batched is a
// no-op and that a flushed grid can batch and flush again.
func TestFlushAddsIdempotent(t *testing.T) {
	g := NewGrid(V2(-10, -10), V2(10, 10), 1)
	defer g.Release()
	g.FlushAdds() // nothing batched
	disk := Disk(V2(0, 0), 5, 32)
	g.AddRegionBatched(disk, 1)
	g.FlushAdds()
	g.AddRegionBatched(disk, 1)
	g.FlushAdds()
	g.FlushAdds()
	want := NewGrid(V2(-10, -10), V2(10, 10), 1)
	defer want.Release()
	want.AddRegion(disk, 2)
	for i := range want.Weight {
		if math.Abs(want.Weight[i]-g.Weight[i]) > 1e-12 {
			t.Fatalf("cell %d: want %g got %g", i, want.Weight[i], g.Weight[i])
		}
	}
}

// forceParallelFill lowers the parallel threshold for the duration of a
// test so small grids exercise the row-parallel path, and restores it.
func forceParallelFill(t *testing.T) {
	t.Helper()
	old := parallelFillMinCells
	parallelFillMinCells = 1
	t.Cleanup(func() { parallelFillMinCells = old })
}

// TestParallelFillMatchesSequential forces the row-parallel path and
// checks bit-identical weights against a sequential fill of the same
// constraint stack — including accumulated (+=) weights, whose per-row
// add order must not change. Run under -race this doubles as the data-race
// test for the parallel fill.
func TestParallelFillMatchesSequential(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >1 CPU for a meaningful parallel fill")
	}
	fill := func(g *Grid) {
		g.AddRegion(Disk(V2(-5, 2), 20, 96), 1.0)
		g.AddRegion(Disk(V2(8, -3), 15, 96), 0.7)
		g.AddRegion(Annulus(V2(0, 0), 6, 25, 128), 0.25)
		g.MaskRegion(Disk(V2(2, 2), 3, 64), -1000)
	}
	seq := NewGrid(V2(-40, -40), V2(40, 40), 0.25)
	fill(seq)

	forceParallelFill(t)
	par := NewGrid(V2(-40, -40), V2(40, 40), 0.25)
	fill(par)
	for i := range seq.Weight {
		if seq.Weight[i] != par.Weight[i] {
			t.Fatalf("cell (%d,%d): sequential %v != parallel %v",
				i%seq.W, i/seq.W, seq.Weight[i], par.Weight[i])
		}
	}
	seq.Release()
	par.Release()
}

// TestParallelFillConcurrentGrids hammers the parallel path from several
// goroutines filling independent grids that share pooled buffers — the
// shape of a batch solve — so -race can observe pool and edge-table misuse.
func TestParallelFillConcurrentGrids(t *testing.T) {
	forceParallelFill(t)
	region := Annulus(V2(0, 0), 8, 22, 256)
	want := math.Pi * (22*22 - 8*8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				g := NewGrid(V2(-30, -30), V2(30, 30), 0.25)
				g.AddRegion(region, 1)
				if got := g.AreaAtOrAbove(1); math.Abs(got-want) > want*0.05 {
					t.Errorf("annulus area %v, want ≈ %v", got, want)
				}
				g.Release()
			}
		}()
	}
	wg.Wait()
}

// TestLevelSetsMatchesAreaAtOrAbove cross-checks the one-pass level census
// against the brute-force per-level scan.
func TestLevelSetsMatchesAreaAtOrAbove(t *testing.T) {
	g := NewGrid(V2(-30, -30), V2(30, 30), 0.5)
	g.AddRegion(Disk(V2(-5, 0), 12, 96), 1)
	g.AddRegion(Disk(V2(5, 0), 12, 96), 0.6)
	g.AddRegion(Disk(V2(0, 5), 9, 96), 0.3)
	levels, cells := g.LevelSets()
	if len(levels) != len(cells) {
		t.Fatalf("levels/cells length mismatch: %d vs %d", len(levels), len(cells))
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] >= levels[i-1] {
			t.Fatalf("levels not strictly descending: %v", levels)
		}
	}
	for i, l := range levels {
		want := g.AreaAtOrAbove(l)
		got := float64(cells[i]) * g.CellArea()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("level %v: census area %v, AreaAtOrAbove %v", l, got, want)
		}
	}
	g.Release()
}

// annulus512 is the worst observed constraint shape: a 512-vertex annulus
// (positive disk + negative ring) at fine solver resolution.
func annulus512() (*Grid, *Region) {
	g := NewGrid(V2(-600, -600), V2(600, 600), 4)
	return g, Annulus(V2(0, 0), 380, 520, 512)
}

// BenchmarkAddRegionAnnulus512 measures one AddRegion of the 512-vertex
// annulus at fine (4 km) resolution — the worst observed shape.
func BenchmarkAddRegionAnnulus512(b *testing.B) {
	g, r := annulus512()
	defer g.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddRegion(r, 1)
	}
}

// BenchmarkAddRegionAnnulus512Naive is the same fill through the naive
// reference rasterizer, for the edge-table speedup headline.
func BenchmarkAddRegionAnnulus512Naive(b *testing.B) {
	g, r := annulus512()
	defer g.Release()
	b.ReportAllocs()
	b.ResetTimer()
	var buf []crossing
	for i := 0; i < b.N; i++ {
		for y := 0; y < g.H; y++ {
			row := y * g.W
			buf = g.rowSpans(r, y, buf, func(x0, x1 int) {
				for x := x0; x <= x1; x++ {
					g.Weight[row+x]++
				}
			})
		}
	}
}
