package geo

import (
	"fmt"
	"math"
)

// Region is an area of the projection plane bounded by one or more closed
// rings. Counter-clockwise rings contribute area; clockwise rings are holes.
// Regions may be non-convex and disconnected — the two properties §2 of the
// paper relies on ("the enclosed area may be non-convex and even consist of
// disconnected regions").
//
// Rings are stored as adaptively sampled polylines; a compact Bezier boundary
// is available via BezierBoundary (and is how regions serialize). Boolean
// operations run on the polyline form.
type Region struct {
	Rings []Ring
}

// EmptyRegion returns a region with no area.
func EmptyRegion() *Region { return &Region{} }

// NewRegion builds a region from rings, normalizing ring orientation so that
// rings that enclose area are CCW and rings inside an odd number of other
// rings are CW holes.
func NewRegion(rings ...Ring) *Region {
	r := &Region{Rings: rings}
	r.normalize()
	return r
}

// NormalizeRegion orients r's rings in place exactly as NewRegion does
// (area rings CCW, odd-depth rings CW holes) and returns r. It exists for
// callers that place the Region header and ring slice in caller-owned
// memory (the constraint arena) instead of letting NewRegion allocate
// them.
func NormalizeRegion(r *Region) *Region {
	r.normalize()
	return r
}

// RegionFromRing wraps a single ring (made CCW) as a region.
func RegionFromRing(ring Ring) *Region {
	rr := ring.Clone()
	ensureCCW(rr)
	return &Region{Rings: []Ring{rr}}
}

// normalize orients rings by containment depth: a ring contained in an even
// number of other rings is an outer boundary (CCW); odd, a hole (CW). A ring
// can only be contained in a ring of strictly larger area, so the area guard
// prevents a large ring's interior point (which may fall inside a smaller
// ring) from inverting the nesting test.
func (r *Region) normalize() {
	for i, ring := range r.Rings {
		if len(ring) < 3 {
			continue
		}
		depth := 0
		p := ring[0]
		area := ring.Area()
		for j, other := range r.Rings {
			if i == j || len(other) < 3 || other.Area() <= area {
				continue
			}
			if other.Contains(p) {
				depth++
			}
		}
		ccw := ring.IsCCW()
		wantCCW := depth%2 == 0
		if ccw != wantCCW {
			reverseRing(r.Rings[i])
		}
	}
}

// ringInteriorPoint returns a point in the interior of the ring (the centroid
// if it is inside; otherwise a point nudged inward from the midpoint of the
// longest edge).
func ringInteriorPoint(ring Ring) Vec2 {
	c := ring.Centroid()
	if windingNumber(ring, c) != 0 {
		return c
	}
	// Fall back: walk candidate points just inside each edge midpoint.
	n := len(ring)
	for i := 0; i < n; i++ {
		a, b := ring[i], ring[(i+1)%n]
		mid := a.Lerp(b, 0.5)
		normal := b.Sub(a).Perp().Normalize()
		eps := math.Max(1e-6, a.Dist(b)*1e-3)
		for _, s := range []float64{eps, -eps} {
			p := mid.Add(normal.Scale(s))
			if windingNumber(ring, p) != 0 {
				return p
			}
		}
	}
	return c
}

// IsEmpty reports whether the region encloses (numerically) no area.
func (r *Region) IsEmpty() bool {
	return r == nil || r.Area() < 1e-9
}

// Area returns the enclosed area in km² (holes subtract).
func (r *Region) Area() float64 {
	if r == nil {
		return 0
	}
	var a float64
	for _, ring := range r.Rings {
		a += ring.SignedArea()
	}
	if a < 0 {
		return 0
	}
	return a
}

// Contains reports whether p is inside the region (non-zero total winding).
func (r *Region) Contains(p Vec2) bool {
	if r == nil {
		return false
	}
	wn := 0
	for _, ring := range r.Rings {
		wn += windingNumber(ring, p)
	}
	return wn != 0
}

// BoundingBox returns the bounding box of all rings. ok is false for an
// empty region.
func (r *Region) BoundingBox() (min, max Vec2, ok bool) {
	if r == nil || len(r.Rings) == 0 {
		return Vec2{}, Vec2{}, false
	}
	first := true
	for _, ring := range r.Rings {
		if len(ring) == 0 {
			continue
		}
		lo, hi := ring.BoundingBox()
		if first {
			min, max, first = lo, hi, false
			continue
		}
		min.X = math.Min(min.X, lo.X)
		min.Y = math.Min(min.Y, lo.Y)
		max.X = math.Max(max.X, hi.X)
		max.Y = math.Max(max.Y, hi.Y)
	}
	return min, max, !first
}

// Centroid returns the area-weighted centroid of the region. For empty
// regions the zero vector is returned.
func (r *Region) Centroid() Vec2 {
	if r == nil {
		return Vec2{}
	}
	var cx, cy, atot float64
	for _, ring := range r.Rings {
		a := ring.SignedArea()
		c := ring.Centroid()
		cx += c.X * a
		cy += c.Y * a
		atot += a
	}
	if math.Abs(atot) < 1e-12 {
		// Degenerate: average vertices.
		var c Vec2
		n := 0
		for _, ring := range r.Rings {
			for _, v := range ring {
				c = c.Add(v)
				n++
			}
		}
		if n > 0 {
			return c.Scale(1 / float64(n))
		}
		return Vec2{}
	}
	return Vec2{cx / atot, cy / atot}
}

// Clone returns a deep copy.
func (r *Region) Clone() *Region {
	if r == nil {
		return nil
	}
	out := &Region{Rings: make([]Ring, len(r.Rings))}
	for i, ring := range r.Rings {
		out.Rings[i] = ring.Clone()
	}
	return out
}

// Simplify returns a copy with every ring simplified to tolerance tol (km).
func (r *Region) Simplify(tol float64) *Region {
	out := &Region{}
	for _, ring := range r.Rings {
		s := ring.Simplify(tol)
		if len(s) >= 3 && s.Area() > 1e-9 {
			out.Rings = append(out.Rings, s)
		}
	}
	return out
}

// VertexCount returns the total number of vertices across rings.
func (r *Region) VertexCount() int {
	n := 0
	for _, ring := range r.Rings {
		n += len(ring)
	}
	return n
}

// String summarizes the region.
func (r *Region) String() string {
	return fmt.Sprintf("Region{rings=%d area=%.1fkm²}", len(r.Rings), r.Area())
}

// DistanceTo returns the minimum distance from p to the region: 0 if p is
// inside, otherwise the distance to the nearest boundary.
func (r *Region) DistanceTo(p Vec2) float64 {
	if r.Contains(p) {
		return 0
	}
	d := math.Inf(1)
	for _, ring := range r.Rings {
		d = math.Min(d, ring.DistanceTo(p))
	}
	return d
}

// MaxDistanceTo returns the maximum distance from p to any point of the
// region (attained at a ring vertex, since distance is convex).
func (r *Region) MaxDistanceTo(p Vec2) float64 {
	var d float64
	for _, ring := range r.Rings {
		if dd := ring.MaxDistanceTo(p); dd > d {
			d = dd
		}
	}
	return d
}

// SamplePoints returns up to n points inside the region, drawn from a
// deterministic grid over the bounding box. Useful for expressing "union of
// disks over all points of β" style constructions and for tests.
func (r *Region) SamplePoints(n int) []Vec2 {
	min, max, ok := r.BoundingBox()
	if !ok || n <= 0 {
		return nil
	}
	w := max.X - min.X
	h := max.Y - min.Y
	if w <= 0 {
		w = 1e-6
	}
	if h <= 0 {
		h = 1e-6
	}
	// Grid slightly denser than n to survive rejection.
	side := int(math.Ceil(math.Sqrt(float64(n) * 4)))
	if side < 2 {
		side = 2
	}
	var out []Vec2
	for iy := 0; iy < side && len(out) < n; iy++ {
		for ix := 0; ix < side && len(out) < n; ix++ {
			p := Vec2{
				X: min.X + w*(float64(ix)+0.5)/float64(side),
				Y: min.Y + h*(float64(iy)+0.5)/float64(side),
			}
			if r.Contains(p) {
				out = append(out, p)
			}
		}
	}
	if len(out) == 0 {
		out = append(out, r.Centroid())
	}
	return out
}

// Disk returns a circular region of the given radius around the centre, as a
// polygonal ring with n vertices (n defaults to 64 when ≤ 0).
func Disk(center Vec2, radiusKm float64, n int) *Region {
	if n <= 0 {
		n = 64
	}
	if radiusKm <= 0 {
		return EmptyRegion()
	}
	ring := make(Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		ring[i] = Vec2{
			X: center.X + radiusKm*math.Cos(a),
			Y: center.Y + radiusKm*math.Sin(a),
		}
	}
	return &Region{Rings: []Ring{ring}}
}

// Annulus returns the region between rInner and rOuter around centre.
func Annulus(center Vec2, rInner, rOuter float64, n int) *Region {
	if rOuter <= rInner {
		return EmptyRegion()
	}
	outer := Disk(center, rOuter, n)
	if rInner <= 0 {
		return outer
	}
	inner := Disk(center, rInner, n)
	hole := inner.Rings[0].Clone()
	reverseRing(hole) // make it a CW hole
	outer.Rings = append(outer.Rings, hole)
	return outer
}

// Rect returns a rectangular region.
func Rect(min, max Vec2) *Region {
	if max.X <= min.X || max.Y <= min.Y {
		return EmptyRegion()
	}
	return &Region{Rings: []Ring{{
		{min.X, min.Y}, {max.X, min.Y}, {max.X, max.Y}, {min.X, max.Y},
	}}}
}
