package geo

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func square(cx, cy, half float64) Ring {
	return Ring{
		{cx - half, cy - half}, {cx + half, cy - half},
		{cx + half, cy + half}, {cx - half, cy + half},
	}
}

func TestRingBasics(t *testing.T) {
	r := square(0, 0, 5) // 10x10 square
	if got := r.Area(); !almostEq(got, 100, 1e-9) {
		t.Errorf("Area = %v, want 100", got)
	}
	if !r.IsCCW() {
		t.Error("square should be CCW")
	}
	if got := r.Perimeter(); !almostEq(got, 40, 1e-9) {
		t.Errorf("Perimeter = %v, want 40", got)
	}
	c := r.Centroid()
	if !almostEq(c.X, 0, 1e-9) || !almostEq(c.Y, 0, 1e-9) {
		t.Errorf("Centroid = %v, want origin", c)
	}
	if !r.Contains(V2(0, 0)) || !r.Contains(V2(4.9, 4.9)) {
		t.Error("Contains should include interior points")
	}
	if r.Contains(V2(5.1, 0)) || r.Contains(V2(0, -6)) {
		t.Error("Contains should exclude exterior points")
	}
	rev := r.Clone()
	reverseRing(rev)
	if rev.IsCCW() {
		t.Error("reversed square should be CW")
	}
	if !almostEq(rev.SignedArea(), -100, 1e-9) {
		t.Errorf("reversed SignedArea = %v", rev.SignedArea())
	}
}

func TestRingDistances(t *testing.T) {
	r := square(0, 0, 5)
	if d := r.DistanceTo(V2(10, 0)); !almostEq(d, 5, 1e-9) {
		t.Errorf("DistanceTo = %v, want 5", d)
	}
	if d := r.DistanceTo(V2(0, 0)); !almostEq(d, 5, 1e-9) {
		t.Errorf("DistanceTo centre = %v, want 5 (boundary distance)", d)
	}
	if d := r.MaxDistanceTo(V2(0, 0)); !almostEq(d, 5*math.Sqrt2, 1e-9) {
		t.Errorf("MaxDistanceTo = %v, want %v", d, 5*math.Sqrt2)
	}
}

func TestRegionWithHole(t *testing.T) {
	outer := square(0, 0, 10)
	inner := square(0, 0, 4)
	reg := NewRegion(outer, inner)
	want := 400.0 - 64.0
	if got := reg.Area(); !almostEq(got, want, 1e-9) {
		t.Errorf("Area = %v, want %v", got, want)
	}
	if reg.Contains(V2(0, 0)) {
		t.Error("hole interior should not be contained")
	}
	if !reg.Contains(V2(7, 0)) {
		t.Error("annular area should be contained")
	}
	if reg.Contains(V2(11, 0)) {
		t.Error("outside should not be contained")
	}
}

func TestRegionNormalizeOrientations(t *testing.T) {
	// Both rings CCW on input; normalize should flip the inner to a hole.
	outer := square(0, 0, 10)
	inner := square(0, 0, 4)
	if !inner.IsCCW() {
		t.Fatal("precondition: inner CCW")
	}
	reg := NewRegion(outer.Clone(), inner.Clone())
	nHoles := 0
	for _, ring := range reg.Rings {
		if !ring.IsCCW() {
			nHoles++
		}
	}
	if nHoles != 1 {
		t.Errorf("normalize produced %d holes, want 1", nHoles)
	}
}

func TestDiskAndAnnulus(t *testing.T) {
	d := Disk(V2(3, 4), 10, 128)
	if got, want := d.Area(), math.Pi*100; math.Abs(got-want) > want*0.01 {
		t.Errorf("disk area = %v, want ≈ %v", got, want)
	}
	if !d.Contains(V2(3, 4)) || d.Contains(V2(3, 15)) {
		t.Error("disk containment wrong")
	}
	an := Annulus(V2(0, 0), 5, 10, 128)
	wantA := math.Pi * (100 - 25)
	if got := an.Area(); math.Abs(got-wantA) > wantA*0.01 {
		t.Errorf("annulus area = %v, want ≈ %v", got, wantA)
	}
	if an.Contains(V2(0, 0)) {
		t.Error("annulus should exclude inner disk")
	}
	if !an.Contains(V2(7, 0)) {
		t.Error("annulus should contain ring area")
	}
	if !Annulus(V2(0, 0), 10, 5, 32).IsEmpty() {
		t.Error("inverted annulus should be empty")
	}
	if !Disk(V2(0, 0), -1, 32).IsEmpty() {
		t.Error("negative-radius disk should be empty")
	}
}

func TestRegionCentroidBBox(t *testing.T) {
	reg := RegionFromRing(square(10, -5, 2))
	c := reg.Centroid()
	if !almostEq(c.X, 10, 1e-9) || !almostEq(c.Y, -5, 1e-9) {
		t.Errorf("Centroid = %v", c)
	}
	min, max, ok := reg.BoundingBox()
	if !ok || !almostEq(min.X, 8, 1e-9) || !almostEq(max.Y, -3, 1e-9) {
		t.Errorf("BoundingBox = %v %v %v", min, max, ok)
	}
	if _, _, ok := EmptyRegion().BoundingBox(); ok {
		t.Error("empty region should have no bbox")
	}
	var nilReg *Region
	if !nilReg.IsEmpty() || nilReg.Area() != 0 || nilReg.Contains(V2(0, 0)) {
		t.Error("nil region should behave as empty")
	}
}

func TestSamplePoints(t *testing.T) {
	reg := Disk(V2(0, 0), 10, 64)
	pts := reg.SamplePoints(50)
	if len(pts) == 0 {
		t.Fatal("no sample points")
	}
	for _, p := range pts {
		if !reg.Contains(p) {
			t.Errorf("sample point %v outside region", p)
		}
	}
}

func TestSimplifyPreservesArea(t *testing.T) {
	d := Disk(V2(0, 0), 100, 256)
	s := d.Simplify(0.5)
	if s.VertexCount() >= d.VertexCount() {
		t.Errorf("Simplify did not reduce vertices: %d → %d", d.VertexCount(), s.VertexCount())
	}
	if rel := math.Abs(s.Area()-d.Area()) / d.Area(); rel > 0.02 {
		t.Errorf("Simplify changed area by %.2f%%", rel*100)
	}
}

func TestRingSimplifyDegenerate(t *testing.T) {
	short := Ring{{0, 0}, {1, 0}, {0, 1}}
	if got := short.Simplify(10); len(got) != 3 {
		t.Errorf("simplifying a triangle should keep it, got %d vertices", len(got))
	}
}

// Property: a random convex-ish polygon's centroid is inside it, and
// signedArea flips under reversal.
func TestRingProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 5 + rng.IntN(30)
		ring := make(Ring, n)
		for i := range ring {
			a := 2 * math.Pi * float64(i) / float64(n)
			r := 5 + 10*rng.Float64()
			ring[i] = V2(r*math.Cos(a), r*math.Sin(a))
		}
		area := ring.SignedArea()
		rev := ring.Clone()
		reverseRing(rev)
		if !almostEq(area, -rev.SignedArea(), 1e-9) {
			return false
		}
		// Star-shaped around origin → origin inside.
		return ring.Contains(V2(0, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
