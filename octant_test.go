package octant_test

import (
	"math"
	"testing"

	"octant"
)

// TestPublicAPIEndToEnd drives a complete localization through the public
// façade only, as a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	world := octant.NewWorld(octant.WorldConfig{Seed: 2})
	prober := octant.NewSimProber(world)
	hosts := world.HostNodes()

	target := hosts[5]
	var landmarks []octant.Landmark
	for i, h := range hosts {
		if i == 5 {
			continue
		}
		landmarks = append(landmarks, octant.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
	}
	survey, err := octant.NewSurvey(prober, landmarks, octant.SurveyOpts{UseHeights: true})
	if err != nil {
		t.Fatal(err)
	}
	loc := octant.NewLocalizer(prober, survey, octant.Config{})
	res, err := loc.Localize(target.Name)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Point.DistanceMiles(target.Loc); e > 600 {
		t.Errorf("error %.0f mi out of plausible range", e)
	}
	if res.AreaKm2 <= 0 {
		t.Error("empty region")
	}

	// Baselines run through the façade too.
	if _, err := octant.NewGeoLim(survey).Localize(prober, target.Name, 10); err != nil {
		t.Errorf("GeoLim: %v", err)
	}
	if _, err := octant.NewGeoPing(survey).Localize(prober, target.Name, 10); err != nil {
		t.Errorf("GeoPing: %v", err)
	}
	if _, err := octant.NewGeoTrack(survey).Localize(prober, target.Name, 10); err != nil {
		t.Errorf("GeoTrack: %v", err)
	}
}

func TestPublicGeometryHelpers(t *testing.T) {
	p := octant.Pt(42.44, -76.50)
	q := octant.Pt(40.71, -74.01)
	if d := p.DistanceKm(q); d < 250 || d > 320 {
		t.Errorf("Ithaca–NYC distance %v km", d)
	}
	pr := octant.NewProjection(p)
	a := octant.Disk(pr.Forward(p), 100, 64)
	b := octant.Disk(pr.Forward(q), 100, 64)
	if !octant.Intersect(a, b, nil).IsEmpty() {
		t.Error("100km disks around Ithaca and NYC should not intersect")
	}
	u := octant.Union(a, b, nil)
	want := 2 * math.Pi * 100 * 100
	if got := u.Area(); math.Abs(got-want) > want*0.03 {
		t.Errorf("union area %v, want %v", got, want)
	}
	if got := octant.Subtract(a, b, nil).Area(); math.Abs(got-a.Area()) > 1 {
		t.Error("disjoint subtract should be identity")
	}
	if octant.Buffer(a, 10, 0).Area() <= a.Area() {
		t.Error("dilation should grow")
	}
	// Latency conversion round trip.
	if got := octant.LatencyToMaxDistanceKm(octant.DistanceToMinLatencyMs(500)); math.Abs(got-500) > 1e-9 {
		t.Errorf("latency conversion round trip = %v", got)
	}
	// Constraint builders compose with Solve.
	cons := []octant.Constraint{
		octant.PositiveDisk(pr, p, 150, 1, "a"),
		octant.NegativeDisk(pr, p, 40, 1, "a/neg"),
	}
	sol, err := octant.Solve(cons, octant.SolverOpts{MinAreaKm2: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Region.IsEmpty() {
		t.Error("annulus solve empty")
	}
	if sol.Region.Contains(pr.Forward(p)) {
		t.Error("negative centre should be excluded")
	}
}

func TestDefaultSitesExported(t *testing.T) {
	if len(octant.DefaultSites) != 51 {
		t.Errorf("DefaultSites = %d, want 51", len(octant.DefaultSites))
	}
	if octant.DefaultSites[1].Inst != "cornell" {
		t.Errorf("unexpected site order: %v", octant.DefaultSites[1])
	}
}

func TestNewDeploymentFacade(t *testing.T) {
	d, err := octant.NewDeployment(9)
	if err != nil {
		t.Fatal(err)
	}
	if d.Survey.N() != 51 {
		t.Errorf("deployment survey N = %d", d.Survey.N())
	}
}
