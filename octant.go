// Package octant is a from-scratch Go implementation of Octant, the
// constraint-based framework for geolocalizing Internet hosts from network
// measurements (Wong, Stoyanov, Sirer — NSDI).
//
// Octant poses geolocalization as error-minimizing constraint satisfaction:
// landmarks with (at least partially) known positions convert latency
// measurements into weighted positive constraints ("the target is within R
// km of me") and negative constraints ("the target is farther than r km"),
// plus constraints from router localization, WHOIS records, and geography.
// The solver combines them geometrically and returns both a location region
// — possibly non-convex and disconnected, bounded by Bezier curves — and a
// point estimate.
//
// # Quick start
//
//	ctx := context.Background()                             // bounds every measurement
//	world := octant.NewWorld(octant.WorldConfig{Seed: 1})  // simulated Internet
//	prober := octant.NewSimProber(world)
//	hosts := world.HostNodes()
//
//	var landmarks []octant.Landmark
//	for _, h := range hosts[1:] {
//		landmarks = append(landmarks, octant.Landmark{Addr: h.Name, Name: h.Inst, Loc: h.Loc})
//	}
//	survey, _ := octant.NewSurvey(prober, landmarks, octant.SurveyOpts{UseHeights: true})
//	loc := octant.NewLocalizer(prober, survey, octant.Config{})
//	res, _ := loc.LocalizeContext(ctx, hosts[0].Name)
//	fmt.Println(res.Point, res.AreaKm2)
//
// The same Localizer runs over any measurement source implementing Prober —
// the bundled simulator, the TCP-handshake prober, or your own.
//
// # Request-scoped options
//
// LocalizeContext accepts per-request options that tune one localization
// without touching the shared Localizer. Evidence enters through an
// ordered pipeline of EvidenceSource stages (latency, router, hint,
// geography — §2 of the paper treats them all as weighted constraints in
// one system), and every stage is addressable per request:
//
//	res, _ := loc.LocalizeContext(ctx, target,
//	    octant.WithoutSource(octant.SourceRouter),      // drop §2.3 evidence
//	    octant.WithSourceWeight(octant.SourceHint, 0.5), // distrust WHOIS 2×
//	    octant.WithHint(octant.Pt(40.7, -74.0), 100, 0.8, "registry"),
//	    octant.WithMinAreaKm2(5000),                     // tighter region
//	    octant.WithExplain(),                            // fill res.Provenance
//	)
//
// The older Localize(target) and LocalizeWithSecondary methods remain as
// deprecated shims over this path; a default-options LocalizeContext is
// bit-identical to them.
//
// # Serving
//
// For batch and serving workloads, wrap a Localizer in a BatchEngine: a
// bounded worker pool that fans targets across goroutines sharing one
// immutable Survey, with per-target timeout/cancellation, streamed
// results, an LRU cache of recent localizations, and coalescing of
// concurrent duplicate requests.
//
//	engine := octant.NewBatchEngine(loc, octant.BatchOptions{Workers: 8})
//	for item := range engine.Run(ctx, targets) {
//		fmt.Println(item.Target, item.Result.Point)
//	}
//
// cmd/octant-serve exposes the same engine over HTTP (POST /v1/localize,
// POST /v1/localize/batch streaming NDJSON, GET /v1/healthz, GET
// /v1/stats), and the octant CLI's -parallel flag uses it for multi-target
// runs.
//
// # Survey lifecycle
//
// Long-running deployments should not pin the survey they booted with:
// the paper recomputes calibrations as network conditions change. Wrap
// the survey in a SurveyManager and hand the manager to the engine — it
// reprobes the landmark mesh periodically or on demand, refits only the
// calibrations that drifted, and hot-swaps each new epoch atomically
// under live traffic:
//
//	manager := octant.NewSurveyManager(prober, survey, octant.Config{},
//		octant.SurveyManagerOptions{Interval: 15 * time.Minute})
//	engine := octant.NewBatchEngineWithProvider(manager, octant.BatchOptions{Workers: 8})
//	go manager.Run(ctx)
//
// Epoch snapshots serialize to disk (Survey.SaveSnapshotFile,
// LoadSurveySnapshot) so a restarted daemon starts warm without
// reprobing.
package octant

import (
	"context"

	"octant/internal/baselines"
	"octant/internal/batch"
	"octant/internal/calib"
	"octant/internal/core"
	"octant/internal/eval"
	"octant/internal/geo"
	"octant/internal/geodb"
	"octant/internal/hints"
	"octant/internal/lifecycle"
	"octant/internal/netsim"
	"octant/internal/probe"
	"octant/internal/undns"
)

// Geometry substrate.
type (
	// Point is a geographic position in degrees.
	Point = geo.Point
	// Vec2 is a point in a localization's projection plane (km).
	Vec2 = geo.Vec2
	// Region is an area bounded by one or more rings; possibly
	// non-convex and disconnected.
	Region = geo.Region
	// Ring is one closed boundary loop.
	Ring = geo.Ring
	// Projection maps geographic points to the plane and back.
	Projection = geo.Projection
	// BezierPath is a chain of cubic Bezier segments bounding a ring.
	BezierPath = geo.BezierPath
	// CubicBezier is a single cubic Bezier segment.
	CubicBezier = geo.CubicBezier
	// BoolOpts configures region boolean operations.
	BoolOpts = geo.BoolOpts
)

// Framework types.
type (
	// Landmark is a node with known position that issues measurements.
	Landmark = core.Landmark
	// Survey is the calibrated inter-landmark measurement state.
	Survey = core.Survey
	// SurveyOpts configures survey construction.
	SurveyOpts = core.SurveyOpts
	// Config selects and tunes the Octant mechanisms.
	Config = core.Config
	// Localizer runs localizations.
	Localizer = core.Localizer
	// Result is a localization outcome.
	Result = core.Result
	// Constraint is one weighted positive or negative region statement.
	Constraint = core.Constraint
	// Calibration is a landmark's latency→distance model.
	Calibration = calib.Calibration
)

// Request-scoped localization API (v2). A request is
// Localizer.LocalizeContext(ctx, target, opts...): the context bounds
// every measurement and the options tune this one request — evidence
// sources on/off and re-weighted, solver overrides, exogenous hints,
// extra constraints, custom sources, and provenance — without touching
// the shared Localizer.
type (
	// LocalizeOption tunes one localization request.
	LocalizeOption = core.LocalizeOption
	// LocalizeOptions is the resolved form of a request's options.
	LocalizeOptions = core.LocalizeOptions
	// EvidenceSource is one stage of the localization pipeline.
	EvidenceSource = core.EvidenceSource
	// EvidenceRequest is the per-request state evidence sources consume.
	EvidenceRequest = core.Request
	// SourceReport is one source's provenance entry.
	SourceReport = core.SourceReport
	// ProbeFailure names a landmark whose measurement failed and why
	// (SourceReport.Failures, Provenance.Failures).
	ProbeFailure = core.ProbeFailure
	// Provenance explains how a localization was assembled
	// (Result.Provenance, filled by WithExplain).
	Provenance = core.Provenance
	// LocationHint is an exogenous positive prior for the hint source.
	LocationHint = core.Hint
	// SecondaryLandmark is a §2 secondary landmark (region + RTT).
	SecondaryLandmark = core.Secondary
	// LatencySource is the built-in §2.1–2.2 landmark RTT evidence.
	LatencySource = core.LatencySource
	// RouterSource is the built-in §2.3 router evidence.
	RouterSource = core.RouterSource
	// HintSource is the built-in §2.5 WHOIS/hint evidence.
	HintSource = core.HintSource
	// RDNSSource is the built-in reverse-DNS hint evidence: city tokens
	// (IATA, CLLI, spelled-out names) mined from the target's reverse
	// name, each cross-validated against the measured RTT bounds.
	RDNSSource = core.RDNSSource
	// GeoDBSource is the built-in passive geolocation-database evidence
	// (WithGeoDB / Config.GeoDB), cross-validated like RDNSSource.
	GeoDBSource = core.GeoDBSource
	// GeographySource is the built-in §2.5 ocean/land-mask evidence.
	GeographySource = core.GeographySource
	// DroppedHint records one exogenous prior the RTT cross-validation
	// rejected (Provenance.DroppedHints).
	DroppedHint = core.DroppedHint
	// Disagreement quantifies how far the hint, geo-DB, and latency
	// evidence point apart (Provenance.Disagreement).
	Disagreement = core.Disagreement
	// HintEngine parses reverse-DNS names into location hints against an
	// IATA/CLLI/city-name gazetteer.
	HintEngine = hints.Engine
	// GazetteerHint is one parsed reverse-DNS location hint.
	GazetteerHint = hints.Hint
	// GeoDBProvider is a passive geolocation database the GeoDBSource
	// consults.
	GeoDBProvider = geodb.Provider
	// GeoDBRecord is one provider answer: position, confidence radius,
	// snapshot date, and source tag.
	GeoDBRecord = geodb.Record
	// GeoDBStatic is an in-memory file-backed provider.
	GeoDBStatic = geodb.Static
	// GeoDBComposite consults member providers in order with per-provider
	// trust weights and staleness decay.
	GeoDBComposite = geodb.Composite
	// GeoDBCompositeOpts tunes composite staleness decay.
	GeoDBCompositeOpts = geodb.CompositeOpts
	// GeoDBCached wraps a provider in an LRU lookup cache.
	GeoDBCached = geodb.Cached
)

// Built-in evidence source names for WithoutSource / WithSourceWeight.
const (
	SourceLatency   = core.SourceLatency
	SourceRouter    = core.SourceRouter
	SourceHint      = core.SourceHint
	SourceRDNS      = core.SourceRDNS
	SourceGeoDB     = core.SourceGeoDB
	SourceGeography = core.SourceGeography
)

// Survey lifecycle types.
type (
	// SurveyManager owns the survey as a versioned resource: epoch
	// snapshots, incremental recalibration, atomic hot-swap.
	SurveyManager = lifecycle.Manager
	// SurveyEpoch is one immutable survey generation plus its Localizer.
	SurveyEpoch = lifecycle.Epoch
	// SurveyManagerOptions tunes refresh cadence, drift tolerance, and
	// snapshot persistence.
	SurveyManagerOptions = lifecycle.Options
	// RefreshReport describes one recalibration round.
	RefreshReport = lifecycle.RefreshReport
	// SurveyStats is the lifecycle view served by GET /v1/survey.
	SurveyStats = lifecycle.Stats
	// RebuildStats reports what an incremental survey rebuild recomputed.
	RebuildStats = core.RebuildStats
)

// Measurement types.
type (
	// Prober is the measurement interface Octant consumes.
	Prober = probe.Prober
	// ContextProber is a Prober whose measurements natively observe a
	// context (see ProberWithContext).
	ContextProber = probe.ContextProber
	// SimProber probes the simulated Internet.
	SimProber = probe.SimProber
	// TCPProber measures real RTTs via TCP handshakes.
	TCPProber = probe.TCPProber
	// Hop is a traceroute step.
	Hop = probe.Hop
	// World is the simulated Internet.
	World = netsim.World
	// WorldConfig configures the simulated Internet.
	WorldConfig = netsim.Config
	// SiteSpec describes one simulated host site.
	SiteSpec = netsim.SiteSpec
	// UndnsResolver maps router DNS names to locations.
	UndnsResolver = undns.Resolver
)

// Batch and serving types.
type (
	// BatchEngine runs many localizations concurrently over one Survey,
	// with caching, coalescing, and per-target cancellation.
	BatchEngine = batch.Engine
	// BatchOptions configures a BatchEngine.
	BatchOptions = batch.Options
	// BatchItem is one streamed batch outcome.
	BatchItem = batch.Item
	// BatchStats is a snapshot of engine counters and latency quantiles.
	BatchStats = batch.Stats
)

// Baseline and evaluation types.
type (
	// GeoLim is the constraint-based geolocation baseline (CBG).
	GeoLim = baselines.GeoLim
	// GeoPing is the latency-signature baseline (IP2Geo).
	GeoPing = baselines.GeoPing
	// GeoTrack is the traceroute/DNS baseline (IP2Geo).
	GeoTrack = baselines.GeoTrack
	// Deployment is the paper's 51-node evaluation testbed.
	Deployment = eval.Deployment
)

// Pt builds a Point from latitude and longitude in degrees.
func Pt(lat, lon float64) Point { return geo.Pt(lat, lon) }

// NewProjection returns an azimuthal equidistant projection centred at c.
func NewProjection(c Point) *Projection { return geo.NewProjection(c) }

// NewWorld builds a deterministic simulated Internet.
func NewWorld(cfg WorldConfig) *World { return netsim.NewWorld(cfg) }

// NewSimProber adapts a simulated world to the Prober interface.
func NewSimProber(w *World) *SimProber { return probe.NewSimProber(w) }

// NewTCPProber returns a prober measuring real RTTs via TCP handshakes.
func NewTCPProber() *TCPProber { return probe.NewTCPProber() }

// NewSurvey measures all landmark pairs and fits heights and calibrations.
func NewSurvey(p Prober, landmarks []Landmark, opts SurveyOpts) (*Survey, error) {
	return core.NewSurvey(p, landmarks, opts)
}

// NewLocalizer builds an Octant localizer over a calibrated survey.
func NewLocalizer(p Prober, s *Survey, cfg Config) *Localizer {
	return core.NewLocalizer(p, s, cfg)
}

// Request-scoped localization options (v2), re-exported from core.

// NewLocalizeOptions resolves functional options into a LocalizeOptions.
func NewLocalizeOptions(opts ...LocalizeOption) LocalizeOptions {
	return core.NewLocalizeOptions(opts...)
}

// DefaultEvidenceSources returns the built-in evidence pipeline in
// execution order: latency, router, hint, rdns, geodb, geography.
func DefaultEvidenceSources() []EvidenceSource { return core.DefaultSources() }

// WithoutSource disables the named evidence source for one request.
func WithoutSource(name string) LocalizeOption { return core.WithoutSource(name) }

// WithSourceWeight scales the named source's constraint weights (> 0).
func WithSourceWeight(name string, scale float64) LocalizeOption {
	return core.WithSourceWeight(name, scale)
}

// WithMinAreaKm2 overrides the §2.4 region size threshold per request.
func WithMinAreaKm2(km2 float64) LocalizeOption { return core.WithMinAreaKm2(km2) }

// WithFineCellKm overrides the solver's fine-pass resolution per request.
func WithFineCellKm(km float64) LocalizeOption { return core.WithFineCellKm(km) }

// WithNegHeightPercentile overrides the negative-constraint height
// percentile per request.
func WithNegHeightPercentile(p float64) LocalizeOption { return core.WithNegHeightPercentile(p) }

// WithExplain fills Result.Provenance with per-source evidence detail.
func WithExplain() LocalizeOption { return core.WithExplain() }

// WithMinLandmarks sets the request's landmark quorum: when some
// landmarks fail to answer but at least n do, the localization proceeds
// on partial evidence and the Result is marked Degraded, with the
// failed landmarks named in its Provenance; below n the request errors
// (0 = the default quorum of 3).
func WithMinLandmarks(n int) LocalizeOption { return core.WithMinLandmarks(n) }

// WithHint adds an exogenous positive prior for the hint source.
func WithHint(loc Point, radiusKm, weight float64, label string) LocalizeOption {
	return core.WithHint(loc, radiusKm, weight, label)
}

// WithConstraints appends caller-supplied constraints to the request.
func WithConstraints(cs ...Constraint) LocalizeOption { return core.WithConstraints(cs...) }

// WithEvidenceSource appends a custom evidence source to the request's
// pipeline, after the built-ins.
func WithEvidenceSource(s EvidenceSource) LocalizeOption { return core.WithEvidenceSource(s) }

// WithSecondary folds a §2 secondary landmark (region beta + RTT) into
// the request, replacing the deprecated LocalizeWithSecondary method.
func WithSecondary(beta *Region, rttMs float64) LocalizeOption {
	return core.WithSecondary(beta, rttMs)
}

// WithGeoDB consults the given passive geolocation provider for this one
// request (overriding Config.GeoDB). Such requests are never cached or
// coalesced — the provider's answers may change between calls.
func WithGeoDB(p GeoDBProvider) LocalizeOption { return core.WithGeoDB(p) }

// NewHintEngine builds the reverse-DNS gazetteer over the simulator's
// POP city table (IATA codes, CLLI codes, spelled-out names).
func NewHintEngine() *HintEngine { return hints.NewEngine() }

// NewGeoDBStatic builds an empty in-memory geolocation provider.
func NewGeoDBStatic(name string) *GeoDBStatic { return geodb.NewStatic(name) }

// LoadGeoDB reads a static geolocation database from a JSON file (the
// octant-serve -geodb format).
func LoadGeoDB(path string) (*GeoDBStatic, error) { return geodb.LoadFile(path) }

// NewGeoDBComposite layers providers with per-provider trust weights and
// staleness decay; lookups take the first member that answers.
func NewGeoDBComposite(opts GeoDBCompositeOpts) *GeoDBComposite { return geodb.NewComposite(opts) }

// NewGeoDBCached wraps a provider in an LRU lookup cache (capacity ≤ 0
// means the 1024-entry default).
func NewGeoDBCached(inner GeoDBProvider, capacity int) *GeoDBCached {
	return geodb.NewCached(inner, capacity)
}

// NewBatchEngine wraps a fixed Localizer in a concurrent batch engine.
func NewBatchEngine(l *Localizer, opts BatchOptions) *BatchEngine {
	return batch.New(l, opts)
}

// NewBatchEngineWithProvider builds an engine that borrows the current
// survey epoch's Localizer from p once per request — pass a
// *SurveyManager to serve hot-swapped recalibrations with zero dropped
// requests.
func NewBatchEngineWithProvider(p batch.Provider, opts BatchOptions) *BatchEngine {
	return batch.NewWithProvider(p, opts)
}

// NewSurveyManager starts a survey lifecycle around an existing survey
// (freshly probed, or warm from LoadSurveySnapshot).
func NewSurveyManager(p Prober, s *Survey, cfg Config, opts SurveyManagerOptions) *SurveyManager {
	return lifecycle.New(p, s, cfg, opts)
}

// NewSurveyManagerProbed probes the full landmark mesh and starts a
// survey lifecycle around the result.
func NewSurveyManagerProbed(p Prober, landmarks []Landmark, sopts SurveyOpts, cfg Config, opts SurveyManagerOptions) (*SurveyManager, error) {
	return lifecycle.NewProbed(p, landmarks, sopts, cfg, opts)
}

// RebuildSurvey derives the next epoch of a survey from refreshed RTTs,
// refitting only dirty landmarks' calibrations (most callers use
// SurveyManager.Refresh instead).
func RebuildSurvey(prev *Survey, rtt [][]float64, dirty []bool, epoch uint64) (*Survey, *RebuildStats, error) {
	return core.RebuildSurvey(prev, rtt, dirty, epoch)
}

// LoadSurveySnapshot reads a survey snapshot written by
// Survey.SaveSnapshotFile (or the octant-serve -survey-snapshot flag),
// ready to serve without reprobing.
func LoadSurveySnapshot(path string) (*Survey, error) {
	return core.LoadSnapshotFile(path)
}

// ProberWithContext binds ctx to a Prober so its measurement calls fail
// once the context is done, using p's native ContextProber support when
// available.
func ProberWithContext(ctx context.Context, p Prober) Prober {
	return probe.WithContext(ctx, p)
}

// LocalizeAll is the one-call batch convenience: localize every target
// with the given parallelism and return results in submission order
// (errs[i] is non-nil exactly where results[i] is nil).
func LocalizeAll(ctx context.Context, l *Localizer, targets []string, workers int) ([]*Result, []error) {
	return NewBatchEngine(l, BatchOptions{Workers: workers}).Collect(ctx, targets)
}

// NewGeoLim builds the CBG baseline over a survey.
func NewGeoLim(s *Survey) *GeoLim { return baselines.NewGeoLim(s) }

// NewGeoPing builds the latency-signature baseline over a survey.
func NewGeoPing(s *Survey) *GeoPing { return baselines.NewGeoPing(s) }

// NewGeoTrack builds the traceroute/DNS baseline over a survey.
func NewGeoTrack(s *Survey) *GeoTrack { return baselines.NewGeoTrack(s) }

// NewDeployment builds the 51-node evaluation testbed from the paper's §3.
func NewDeployment(seed uint64) (*Deployment, error) { return eval.NewDeployment(seed) }

// NewUndnsResolver returns the router-DNS-name → city resolver.
func NewUndnsResolver() *UndnsResolver { return undns.NewResolver() }

// DefaultSites is the 51-site deployment used throughout the evaluation.
var DefaultSites = netsim.DefaultSites

// Region constructors and boolean operations, re-exported for building
// custom constraints (Figure 1-style compositions).

// Disk returns a circular region in the projection plane.
func Disk(center Vec2, radiusKm float64, segments int) *Region {
	return geo.Disk(center, radiusKm, segments)
}

// Annulus returns the region between two radii.
func Annulus(center Vec2, rInner, rOuter float64, segments int) *Region {
	return geo.Annulus(center, rInner, rOuter, segments)
}

// Intersect returns a ∩ b.
func Intersect(a, b *Region, opts *BoolOpts) *Region { return geo.Intersect(a, b, opts) }

// Union returns a ∪ b.
func Union(a, b *Region, opts *BoolOpts) *Region { return geo.Union(a, b, opts) }

// Subtract returns a \ b.
func Subtract(a, b *Region, opts *BoolOpts) *Region { return geo.Subtract(a, b, opts) }

// Buffer grows (d>0) or shrinks (d<0) a region by |d| km.
func Buffer(r *Region, d, cellKm float64) *Region { return geo.Buffer(r, d, cellKm) }

// LatencyToMaxDistanceKm converts a round-trip time to the maximal
// geographic distance assuming propagation at 2/3 the speed of light
// (§2.1's conservative bound).
func LatencyToMaxDistanceKm(rttMs float64) float64 { return geo.LatencyToMaxDistanceKm(rttMs) }

// DistanceToMinLatencyMs is the inverse of LatencyToMaxDistanceKm.
func DistanceToMinLatencyMs(distKm float64) float64 { return geo.DistanceToMinLatencyMs(distKm) }

// Constraint builders (§2 of the paper).

// PositiveDisk asserts the target is within radiusKm of a known point.
func PositiveDisk(pr *Projection, center Point, radiusKm, weight float64, source string) Constraint {
	return core.PositiveDisk(pr, center, radiusKm, weight, source)
}

// NegativeDisk asserts the target is farther than radiusKm from a point.
func NegativeDisk(pr *Projection, center Point, radiusKm, weight float64, source string) Constraint {
	return core.NegativeDisk(pr, center, radiusKm, weight, source)
}

// PositiveFromRegion dilates a secondary landmark's region by radiusKm.
func PositiveFromRegion(beta *Region, radiusKm, weight float64, source string) Constraint {
	return core.PositiveFromRegion(beta, radiusKm, weight, source)
}

// NegativeFromRegion intersects radiusKm-disks over a secondary landmark's
// region.
func NegativeFromRegion(beta *Region, radiusKm, weight float64, source string) Constraint {
	return core.NegativeFromRegion(beta, radiusKm, weight, source)
}

// Solve runs the weighted constraint solver directly (most callers use
// Localizer instead).
func Solve(constraints []Constraint, opts SolverOpts) (*Solution, error) {
	return core.Solve(constraints, opts)
}

// SolverOpts configures a direct Solve call.
type SolverOpts = core.SolverOpts

// Solution is the outcome of a direct Solve call.
type Solution = core.Solution
